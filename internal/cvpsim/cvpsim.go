// Package cvpsim models the CVP-1 championship's own reference simulator —
// the infrastructure the Qualcomm traces were originally scored on — at the
// fidelity the paper's introduction discusses. Two documented flaws of that
// simulator motivate the paper's work, and both are reproduced here behind
// a flag (CVP2Fixes) so their impact is measurable:
//
//  1. Footprint over-estimation: "the total access size of the instruction
//     is computed as the transfer size times the number of output
//     registers. However, since one of the outputs is not populated from
//     memory, the total access size is actually incorrect" (§1).
//  2. Base-update serialization: the updated base register of a pre/post-
//     indexing memory instruction "becomes available to dependents when
//     data comes back from the memory system", not after a one-cycle
//     addition — "any instruction depending on the base register may, in
//     the worst case, have to wait for a DRAM access to compute its
//     address" (§1). This was patched in the cancelled CVP-2's simulator.
//
// The model is a simplified in-order-fetch/out-of-order-complete dataflow
// machine over raw CVP-1 traces (no conversion), with a small cache
// hierarchy — enough to expose both effects, which is all the championship
// infrastructure aimed for.
package cvpsim

import (
	"io"

	"tracerebase/internal/cvp"
	"tracerebase/internal/sim/mem"
)

// Config parameterizes the reference model.
type Config struct {
	// Width is instructions fetched/completed per cycle.
	Width int
	// WindowSize bounds in-flight instructions.
	WindowSize int
	// CVP2Fixes applies the two CVP-2-era corrections: base registers
	// become available at ALU latency, and the memory footprint excludes
	// non-memory destination registers.
	CVP2Fixes bool
	// Hierarchy sizes the data-side cache hierarchy.
	Hierarchy mem.HierarchyConfig
}

// DefaultConfig returns the championship-like configuration.
func DefaultConfig() Config {
	return Config{Width: 8, WindowSize: 256, Hierarchy: mem.DefaultHierarchyConfig()}
}

// Stats is the outcome of one run.
type Stats struct {
	Instructions, Cycles uint64
	// MemBytes is the total data memory footprint the model believes the
	// trace touched — the quantity flaw #1 inflates.
	MemBytes uint64
	// L1DMisses counts demand data misses.
	L1DMisses uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Run executes a CVP-1 trace on the reference model.
func Run(src cvp.Source, cfg Config) (Stats, error) {
	if cfg.Width <= 0 {
		cfg.Width = 8
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 256
	}
	hier := mem.NewHierarchy(cfg.Hierarchy)

	var st Stats
	// regReady holds the cycle each architectural register's value is
	// available.
	var regReady [cvp.NumRegs]uint64
	// retireAt holds completion cycles of the in-flight window (ring).
	window := make([]uint64, cfg.WindowSize)
	wpos := 0

	cycle := uint64(0)
	issuedThisCycle := 0
	bump := func() {
		issuedThisCycle++
		if issuedThisCycle >= cfg.Width {
			cycle++
			issuedThisCycle = 0
		}
	}

	for {
		in, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		st.Instructions++

		// The window bounds how far fetch runs ahead of completion.
		if old := window[wpos]; old > cycle {
			cycle = old
			issuedThisCycle = 0
		}

		// Source operands.
		ready := cycle
		for _, s := range in.SrcRegs {
			if regReady[s] > ready {
				ready = regReady[s]
			}
		}

		var complete uint64
		switch {
		case in.Class.IsMem():
			complete = runMem(in, cfg, hier, ready, &st, regReady[:])
		case in.Class == cvp.ClassFP:
			complete = ready + 3
		case in.Class == cvp.ClassSlowALU:
			complete = ready + 6
		default:
			complete = ready + 1
		}

		// Non-memory destination writes (memory handled in runMem).
		if !in.Class.IsMem() {
			for _, d := range in.DstRegs {
				regReady[d] = complete
			}
		}

		window[wpos] = complete
		wpos = (wpos + 1) % cfg.WindowSize
		bump()
	}
	// Drain: the run ends when the youngest instruction completes.
	for _, c := range window {
		if c > cycle {
			cycle = c
		}
	}
	st.Cycles = cycle
	return st, nil
}

// runMem models a load or store, reproducing (or fixing) the two flaws.
func runMem(in *cvp.Instruction, cfg Config, hier *mem.Hierarchy, ready uint64, st *Stats, regReady []uint64) uint64 {
	// ---- Flaw #1: footprint accounting ----
	// CVP-1: total size = transfer size x number of output registers,
	// even though a base-update output is not populated from memory.
	outputs := len(in.DstRegs)
	if outputs == 0 {
		outputs = 1
	}
	size := uint64(in.MemSize) * uint64(outputs)
	if cfg.CVP2Fixes {
		data := len(in.DstRegs)
		if isBaseUpdate(in) {
			data--
		}
		if data < 1 {
			data = 1
		}
		size = uint64(in.MemSize) * uint64(data)
	}
	st.MemBytes += size

	// The access itself.
	kind := mem.Read
	if in.IsStore() {
		kind = mem.Write
	}
	before := hier.L1D.Stats().Misses
	done := hier.L1D.AccessIP(in.EffAddr, in.PC, ready, kind)
	// Accesses spanning extra cachelines under the inflated size touch
	// the following lines too.
	first := in.EffAddr / mem.LineSize
	last := (in.EffAddr + size - 1) / mem.LineSize
	for ln := first + 1; ln <= last; ln++ {
		d := hier.L1D.AccessIP(ln*mem.LineSize, in.PC, ready, kind)
		if d > done {
			done = d
		}
	}
	st.L1DMisses += hier.L1D.Stats().Misses - before

	complete := done
	if in.IsStore() {
		complete = ready + 1
	}

	// ---- Flaw #2: base register availability ----
	// CVP-1 attaches the latency to the INSTRUCTION: every destination,
	// including an updated base register, becomes ready when the memory
	// access completes. The CVP-2 fix releases the base at ALU latency.
	for _, d := range in.DstRegs {
		if cfg.CVP2Fixes && isBaseUpdateReg(in, d) {
			regReady[d] = ready + 1
			continue
		}
		regReady[d] = complete
	}
	return complete
}

// isBaseUpdate reports whether the instruction looks like a base-register
// writeback (a destination that is also a source, with the written value
// adjacent to the effective address).
func isBaseUpdate(in *cvp.Instruction) bool {
	for _, d := range in.DstRegs {
		if isBaseUpdateReg(in, d) {
			return true
		}
	}
	return false
}

func isBaseUpdateReg(in *cvp.Instruction, d uint8) bool {
	if !in.ReadsReg(d) {
		return false
	}
	v, ok := in.DstValue(d)
	if !ok {
		return false
	}
	delta := int64(v - in.EffAddr)
	return delta >= -512 && delta <= 512
}
