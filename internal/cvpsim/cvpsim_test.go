package cvpsim

import (
	"testing"

	"tracerebase/internal/cvp"
	simmem "tracerebase/internal/sim/mem"
	"tracerebase/internal/synth"
)

func run(t *testing.T, instrs []*cvp.Instruction, fixes bool) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CVP2Fixes = fixes
	st, err := Run(cvp.NewSliceSource(instrs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// writebackChain builds a pointer-walking loop of pre-index loads: the base
// register of each load feeds the next load's address — the §1 scenario
// where CVP-1's instruction-granularity latency serializes on memory.
func writebackChain(n int) []*cvp.Instruction {
	out := make([]*cvp.Instruction, 0, n)
	base := uint64(0x10000000)
	for i := 0; i < n; i++ {
		eff := base + 64 // pre-index: new base == effective address
		out = append(out, &cvp.Instruction{
			PC: 0x400000 + uint64(i%64)*4, Class: cvp.ClassLoad,
			EffAddr: eff, MemSize: 8,
			SrcRegs:   []uint8{8},
			DstRegs:   []uint8{1, 8},
			DstValues: []uint64{0xdead, eff},
		})
		base = eff
	}
	return out
}

// TestBaseUpdateFlawSerializes reproduces flaw #2: without the CVP-2 fix,
// each load's address waits for the previous load's DATA; with the fix the
// base releases at ALU latency and the chain pipelines.
func TestBaseUpdateFlawSerializes(t *testing.T) {
	instrs := writebackChain(4000)
	flawed := run(t, instrs, false)
	fixed := run(t, instrs, true)
	if fixed.IPC() <= flawed.IPC()*1.2 {
		t.Fatalf("CVP-2 fix should unserialize the writeback chain: %.3f -> %.3f IPC",
			flawed.IPC(), fixed.IPC())
	}
}

// TestFootprintFlawOverestimates reproduces flaw #1: the flawed accounting
// doubles the footprint of base-update loads (2 outputs x transfer size),
// the fixed accounting counts only the memory-populated register.
func TestFootprintFlawOverestimates(t *testing.T) {
	instrs := writebackChain(1000)
	flawed := run(t, instrs, false)
	fixed := run(t, instrs, true)
	if flawed.MemBytes != 2*fixed.MemBytes {
		t.Fatalf("flawed footprint %d bytes, fixed %d — want exactly 2x for 8B pre-index loads",
			flawed.MemBytes, fixed.MemBytes)
	}
	if fixed.MemBytes != 1000*8 {
		t.Fatalf("fixed footprint = %d, want %d", fixed.MemBytes, 1000*8)
	}
}

// Plain loads (no writeback) are identical under both accountings.
func TestPlainLoadsUnaffected(t *testing.T) {
	var instrs []*cvp.Instruction
	for i := 0; i < 2000; i++ {
		instrs = append(instrs, &cvp.Instruction{
			PC: 0x400000 + uint64(i%64)*4, Class: cvp.ClassLoad,
			EffAddr: 0x20000000 + uint64(i%512)*64, MemSize: 8,
			SrcRegs:   []uint8{8},
			DstRegs:   []uint8{1},
			DstValues: []uint64{uint64(i)},
		})
	}
	flawed := run(t, instrs, false)
	fixed := run(t, instrs, true)
	if flawed.MemBytes != fixed.MemBytes {
		t.Fatalf("plain loads diverge: %d vs %d bytes", flawed.MemBytes, fixed.MemBytes)
	}
	if flawed.IPC() != fixed.IPC() {
		t.Fatalf("plain loads diverge in IPC: %.3f vs %.3f", flawed.IPC(), fixed.IPC())
	}
}

func TestRunsSyntheticTrace(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 12)
	instrs, err := p.Generate(30000)
	if err != nil {
		t.Fatal(err)
	}
	flawed := run(t, instrs, false)
	fixed := run(t, instrs, true)
	if flawed.Instructions != 30000 || fixed.Instructions != 30000 {
		t.Fatalf("instruction counts: %d, %d", flawed.Instructions, fixed.Instructions)
	}
	if flawed.IPC() <= 0 || fixed.IPC() <= 0 {
		t.Fatal("degenerate IPC")
	}
	// The fixes never hurt: footprint shrinks or holds, IPC rises or holds.
	if fixed.MemBytes > flawed.MemBytes {
		t.Errorf("fixed footprint %d > flawed %d", fixed.MemBytes, flawed.MemBytes)
	}
	if fixed.IPC() < flawed.IPC()*0.999 {
		t.Errorf("fixes slowed the model: %.3f -> %.3f", flawed.IPC(), fixed.IPC())
	}
}

func TestWindowBoundsRunahead(t *testing.T) {
	// A tiny window on a slow chain forces fetch to wait: cycles grow.
	instrs := writebackChain(500)
	small := DefaultConfig()
	small.WindowSize = 4
	big := DefaultConfig()
	big.WindowSize = 512
	stSmall, err := Run(cvp.NewSliceSource(instrs), small)
	if err != nil {
		t.Fatal(err)
	}
	stBig, err := Run(cvp.NewSliceSource(instrs), big)
	if err != nil {
		t.Fatal(err)
	}
	if stSmall.Cycles < stBig.Cycles {
		t.Fatalf("smaller window finished faster: %d < %d cycles", stSmall.Cycles, stBig.Cycles)
	}
}

func TestDefaults(t *testing.T) {
	st, err := Run(cvp.NewSliceSource(writebackChain(100)), Config{Hierarchy: simmem.DefaultHierarchyConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 100 {
		t.Fatalf("instructions = %d", st.Instructions)
	}
}
