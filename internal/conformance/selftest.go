package conformance

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"sync"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
	"tracerebase/internal/synth"
)

// SelfTestConfig parameterizes SelfTest.
type SelfTestConfig struct {
	// Suite lists the synthetic profiles to run the differential battery
	// over; nil selects the full 135-trace public suite.
	Suite []synth.Profile
	// Instructions is the per-trace length of the differential battery
	// (0 = 4000). The battery converts every trace under all ten variants
	// through three redundant code paths, so this dominates runtime.
	Instructions int
	// SimInstructions is the per-trace length of the simulator-based
	// metamorphic checks (0 = 2000).
	SimInstructions int
	// Warmup is the warm-up of the simulator-based checks.
	Warmup uint64
	// Parallelism bounds concurrent per-trace differential checks
	// (0 = NumCPU).
	Parallelism int
	// TraceFiles lists user-supplied trace files to validate after the
	// built-in suite.
	TraceFiles []string
	// GoldenFS overrides the corpus location (nil = the embedded corpus) —
	// used by tests to point at a deliberately corrupted copy.
	GoldenFS fs.FS
	// Log, when non-nil, receives one line per completed check.
	Log io.Writer
}

func (c *SelfTestConfig) fill() {
	if c.Suite == nil {
		c.Suite = synth.PublicSuite()
	}
	if c.Instructions <= 0 {
		c.Instructions = 4000
	}
	if c.SimInstructions <= 0 {
		c.SimInstructions = 2000
	}
	if c.Warmup == 0 {
		c.Warmup = 500
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// SelfTest runs the full conformance suite: golden-corpus verification, the
// differential battery over the synthetic suite, the metamorphic simulator
// checks, and validation of any user-supplied trace files. It returns nil
// only when every check passes.
func SelfTest(cfg SelfTestConfig) error {
	cfg.fill()
	r := &Report{Log: cfg.Log}

	// 1. Golden corpus.
	golden := cfg.GoldenFS
	if golden == nil {
		golden = Golden()
	}
	if err := VerifyGolden(golden, r); err != nil {
		r.fail(err)
	}

	// 2. Differential battery over the synthetic suite, parallelized the
	// same way the sweep engine parallelizes simulations.
	type outcome struct {
		name string
		err  error
	}
	jobs := make(chan synth.Profile)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				instrs, err := p.GenerateBatch(cfg.Instructions)
				if err == nil {
					err = CheckTrace(instrs, nil)
				}
				results <- outcome{p.Name, err}
			}
		}()
	}
	go func() {
		for _, p := range cfg.Suite {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	failed := 0
	for o := range results {
		if o.err != nil {
			failed++
			r.fail(fmt.Errorf("differential %s: %w", o.name, o.err))
		}
	}
	if failed == 0 {
		r.okf("differential battery: %d traces x %d variants x 3 convert paths, %d instructions each",
			len(cfg.Suite), len(experiments.Variants()), cfg.Instructions)
	}

	// 3. Metamorphic checks on a spread of categories. compute_int_1 is
	// ILP-bound (ROB knob), compute_fp_1 is memory-streaming (cache knob),
	// srv_3 exercises the call-stack paths.
	detProfiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 1),
		synth.PublicProfile(synth.Server, 3),
	}
	for _, p := range detProfiles {
		p := p
		r.run(fmt.Sprintf("determinism: %s simulated twice, identical stats", p.Name), func() error {
			return CheckSimDeterminism(p, cfg.SimInstructions, cfg.Warmup)
		})
		r.run(fmt.Sprintf("determinism: %s generated twice, identical trace", p.Name), func() error {
			return CheckGenerateDeterminism(p, cfg.Instructions)
		})
	}
	sweepProfiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 2),
		synth.PublicProfile(synth.Crypto, 1),
		synth.PublicProfile(synth.Server, 8),
	}
	// Goroutine-level parallelism does not need spare CPUs, so the sweep
	// comparison always uses several workers even on a single-core host.
	sweepPar := cfg.Parallelism
	if sweepPar < 2 {
		sweepPar = 4
	}
	r.run(fmt.Sprintf("determinism: sweep of %d traces, -parallel 1 vs -parallel %d byte-identical",
		len(sweepProfiles), sweepPar), func() error {
		return CheckSweepParallelism(sweepProfiles, cfg.SimInstructions, cfg.Warmup, sweepPar)
	})
	robProfile := synth.PublicProfile(synth.ComputeInt, 1)
	r.run(fmt.Sprintf("monotonicity: %s IPC vs ROB size", robProfile.Name), func() error {
		return CheckROBMonotonic(robProfile, cfg.SimInstructions, cfg.Warmup)
	})
	cacheProfile := synth.PublicProfile(synth.ComputeFP, 1)
	r.run(fmt.Sprintf("monotonicity: %s L1D misses vs cache size", cacheProfile.Name), func() error {
		return CheckCacheMonotonic(cacheProfile, cfg.SimInstructions, cfg.Warmup)
	})

	// 4. Result-cache transparency: cached, warm, and corruption-recovery
	// sweeps must render byte-identically to the uncached engine.
	resultCacheProfiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 3),
		synth.PublicProfile(synth.Server, 5),
	}
	r.run(fmt.Sprintf("result cache: uncached vs cold vs warm vs corrupted sweeps of %d traces byte-identical",
		len(resultCacheProfiles)), func() error {
		return CheckCacheTransparency(resultCacheProfiles, cfg.SimInstructions, cfg.Warmup)
	})
	r.run(fmt.Sprintf("cache tiers: off vs cold vs warm-memory vs warm-remote sweeps of %d traces byte-identical",
		len(resultCacheProfiles)), func() error {
		return CheckTierTransparency(resultCacheProfiles, cfg.SimInstructions, cfg.Warmup)
	})

	// 5. Slab-store transparency: sweeps fed from the compiled-trace store
	// — cold, warm (second process), and with a slab corrupted or truncated
	// on disk — must render byte-identically to the streaming engine, with
	// damaged slabs discarded and reconverted, never served.
	r.run(fmt.Sprintf("trace store: store-off vs cold vs warm vs corrupted vs truncated sweeps of %d traces byte-identical",
		len(resultCacheProfiles)), func() error {
		return CheckSlabTransparency(resultCacheProfiles, cfg.SimInstructions, cfg.Warmup)
	})

	// 6. Experiment-store transparency: sweeps that append every result
	// cell to the columnar store and read their results back out of it —
	// cold, warm (second process, full dedup), and with a block corrupted
	// on disk — must render byte-identically to the store-off engine, with
	// damaged blocks discarded, warned about, and their cells re-appended
	// by the next sweep; pruned queries must match the brute-force scan.
	r.run(fmt.Sprintf("exp store: store-off vs cold vs warm vs corrupted sweeps of %d traces byte-identical, pruned query == full scan",
		len(resultCacheProfiles)), func() error {
		return CheckExpStoreTransparency(resultCacheProfiles, cfg.SimInstructions, cfg.Warmup)
	})

	// 7. Cycle-skip transparency: sweeps over the golden-corpus profiles
	// with event-horizon skipping enabled must be byte-identical to
	// -no-skip on both the develop and IPC-1 models.
	r.run(fmt.Sprintf("cycle skipping: skip-on vs -no-skip sweeps of %d traces byte-identical (develop + ipc1)",
		len(goldenProfiles())), func() error {
		return CheckCycleSkipTransparency(goldenProfiles(), cfg.SimInstructions, cfg.Warmup)
	})

	// 8. Sampling: sampled runs must replay deterministically, resume from
	// checkpoints without divergence, key apart from exact results, and
	// stay scheduling-independent under parallel sweeps. The accuracy of
	// sampled IPC itself is pinned by the golden corpus (step 1).
	sampleProfiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 1),
		synth.PublicProfile(synth.Server, 3),
	}
	for _, p := range sampleProfiles {
		p := p
		r.run(fmt.Sprintf("sampling: %s sampled twice, identical stats", p.Name), func() error {
			return CheckSampledDeterminism(p, cfg.SimInstructions, cfg.Warmup)
		})
		r.run(fmt.Sprintf("sampling: %s checkpoint resume == uninterrupted run (sampled + exact)", p.Name), func() error {
			return CheckCheckpointResume(p, cfg.SimInstructions, cfg.Warmup)
		})
	}
	keyProfile := synth.PublicProfile(synth.ComputeInt, 1)
	r.run(fmt.Sprintf("sampling: %s exact and sampled cache keys pairwise disjoint", keyProfile.Name), func() error {
		return CheckSampledKeyDisjoint(keyProfile, cfg.SimInstructions, cfg.Warmup)
	})
	r.run(fmt.Sprintf("sampling: sampled sweep of %d traces, -parallel 1 vs %d byte-identical",
		len(sweepProfiles), sweepPar), func() error {
		return CheckSampledParallelism(sweepProfiles, cfg.SimInstructions, cfg.Warmup, sweepPar)
	})

	// 9. Multi-core: the N-core lockstep engine must degenerate exactly to
	// the single-core behavior (idle neighbors), stay scheduling- and
	// label-independent, and keep cycle skipping invisible at N > 1.
	idleProfile := synth.PublicProfile(synth.ComputeInt, 1)
	r.run(fmt.Sprintf("multi-core: %s on 4 cores with idle neighbors byte-identical to single-core", idleProfile.Name), func() error {
		return CheckIdleNeighborIdentity(idleProfile, 4, cfg.SimInstructions, cfg.Warmup)
	})
	r.run(fmt.Sprintf("multi-core: 2-core srvcrypto sweep, -parallel 1 vs %d byte-identical", sweepPar), func() error {
		return CheckMultiParallelism("srvcrypto", 2, cfg.SimInstructions, cfg.Warmup, sweepPar)
	})
	r.run("multi-core: permuted workload->core assignment permutes per-core stats, aggregate bit-identical", func() error {
		return CheckCorePermutation("srvcrypto", 4, cfg.SimInstructions, cfg.Warmup)
	})
	r.run("multi-core: 2-core thrash with cycle skipping vs -no-skip byte-identical", func() error {
		return CheckMultiSkipTransparency("thrash", 2, cfg.SimInstructions, cfg.Warmup)
	})

	// 10. User-supplied traces.
	for _, path := range cfg.TraceFiles {
		rep, err := ValidateTraceFile(path)
		if err != nil {
			r.fail(fmt.Errorf("trace %s: %w", path, err))
			continue
		}
		r.okf("trace %s: valid %s trace, %d records%s", path, rep.Format, rep.Records, rep.Extra)
	}

	if err := r.Err(); err != nil {
		return err
	}
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "selftest: all %d checks passed\n", r.Passed())
	}
	return nil
}

// TraceFileReport summarizes a validated user-supplied trace file.
type TraceFileReport struct {
	Path string
	// Format is "cvp" or "champsim".
	Format  string
	Records uint64
	// Extra carries format-specific detail for display.
	Extra string
}

// ValidateTraceFile validates a trace file in the field: it decodes the
// file as CVP-1 (running the full differential battery on its contents) or,
// failing that, as a ChampSim trace, and reports what it found. Gzipped
// files are handled by extension, as in the artifact.
func ValidateTraceFile(path string) (*TraceFileReport, error) {
	cvpRep, cvpErr := validateCVPFile(path)
	if cvpErr == nil {
		return cvpRep, nil
	}
	champRep, champErr := validateChampFile(path)
	if champErr == nil {
		return champRep, nil
	}
	return nil, fmt.Errorf("not a valid trace in either format:\n  as CVP-1: %v\n  as ChampSim: %v", cvpErr, champErr)
}

func validateCVPFile(path string) (*TraceFileReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, closer, err := cvp.OpenReader(path, f)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	instrPtrs, err := cvp.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(instrPtrs) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	instrs := make([]cvp.Instruction, len(instrPtrs))
	classes := make(map[cvp.InstClass]uint64)
	for i, in := range instrPtrs {
		instrs[i] = *in
		classes[in.Class]++
	}
	// The decoded contents must survive the same differential battery the
	// synthetic suite runs: round-trip plus converter path agreement.
	if err := CheckTrace(instrs, nil); err != nil {
		return nil, fmt.Errorf("conformance battery failed: %w", err)
	}
	branches := classes[cvp.ClassCondBranch] + classes[cvp.ClassUncondDirect] + classes[cvp.ClassUncondIndirect]
	mems := classes[cvp.ClassLoad] + classes[cvp.ClassStore]
	return &TraceFileReport{
		Path:    path,
		Format:  "cvp",
		Records: uint64(len(instrs)),
		Extra: fmt.Sprintf(" (%.1f%% mem, %.1f%% branch; all %d variants convert consistently)",
			100*float64(mems)/float64(len(instrs)),
			100*float64(branches)/float64(len(instrs)),
			len(experiments.Variants())),
	}, nil
}

func validateChampFile(path string) (*TraceFileReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, closer, err := champtrace.OpenReader(path, f)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	recs, err := champtrace.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	vals := make([]champtrace.Instruction, len(recs))
	branches := uint64(0)
	for i, rec := range recs {
		vals[i] = *rec
		if rec.IsBranch {
			branches++
		}
	}
	if err := CheckChampRoundTrip(vals); err != nil {
		return nil, fmt.Errorf("round trip failed: %w", err)
	}
	return &TraceFileReport{
		Path:    path,
		Format:  "champsim",
		Records: uint64(len(recs)),
		Extra:   fmt.Sprintf(" (%.1f%% branch)", 100*float64(branches)/float64(len(recs))),
	}, nil
}

// encodeCVP renders a slab as CVP-1 trace bytes; shared by tests and the
// fuzz seed builders.
func encodeCVP(instrs []cvp.Instruction) ([]byte, error) {
	var buf bytes.Buffer
	w := cvp.NewWriter(&buf)
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// optionsFromBits maps the low six bits of b onto the six improvement
// flags — the encoding the convert fuzzer uses to explore option space.
// It is core's canonical packing, shared with the result cache's keys.
func optionsFromBits(b uint8) core.Options { return core.OptionsFromBits(b) }
