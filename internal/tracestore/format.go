// Package tracestore is a content-addressed store of converted,
// simulation-ready instruction slabs. Each entry is one whole trace after
// conversion under one converter-option class, persisted in a flat
// fixed-stride binary format that loads zero-copy: the record region is
// page-aligned and laid out exactly as []champtrace.Instruction in memory,
// so opening a slab is an mmap plus a checksum pass — no decode, no
// per-record allocation — and the mapping is shared read-only across
// variants, workers, and (through the page cache) processes.
//
// The store reuses the resultcache discipline: SHA-256 content keys,
// sharded v<version>/<hh>/<key>.slab paths, atomic CreateTemp+Rename
// writes, mtime-seeded LRU eviction under a byte budget, and single-flight
// conversion. Unlike resultcache entries, slabs are keyed WITHOUT the build
// fingerprint — they survive rebuilds — so correctness is gated by explicit
// algorithm versions (core.ConverterVersion, synth.GeneratorVersion,
// FormatVersion) that must be bumped when output can change, backstopped by
// the slab-transparency conformance oracle.
package tracestore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"unsafe"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/frame"
	"tracerebase/internal/resultcache"
)

// Key is the 32-byte content address of a slab, produced by the
// resultcache Hasher over the profile canonical form, the algorithm
// versions, the instruction count, and the converter-option bits.
type Key = resultcache.Key

// FormatVersion identifies the on-disk slab layout. Bump it for any change
// to the header, footer, or record framing; old-version files then read as
// misses and are overwritten in place.
const FormatVersion = 1

const (
	// headerSize is one page: records start page-aligned so the mmap view
	// can be reinterpreted as []champtrace.Instruction with natural
	// alignment.
	headerSize = 4096
	// footerSize is the data CRC plus the end magic.
	footerSize = 8

	headerMagic = "TSLB"
	footerMagic = "TSLE"

	// recordSize is the native in-memory stride of one instruction. The
	// compile-time assertion below pins it to the encoded RecordSize: the
	// struct has no padding, so the memory image IS the file image.
	recordSize = int(unsafe.Sizeof(champtrace.Instruction{}))
)

// The zero-copy contract: champtrace.Instruction's in-memory layout must be
// exactly its 64-byte wire size, with no padding. If a field is ever added
// or reordered this fails to compile instead of silently corrupting slabs.
var _ [champtrace.RecordSize]byte = [unsafe.Sizeof(champtrace.Instruction{})]byte{}

// layoutSig fingerprints the native record layout — field offsets, struct
// size, and byte order — so a slab written on a foreign architecture (or by
// a hypothetical differently-padded build) reads as a miss rather than as
// garbage records. Misses of this kind do not delete the file: the native
// writer atomically replaces it.
var layoutSig = layoutSignature()

func layoutSignature() uint64 {
	var in champtrace.Instruction
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	sig := uint64(offset64)
	mix := func(v uint64) {
		sig ^= v
		sig *= prime64
	}
	mix(uint64(unsafe.Sizeof(in)))
	mix(uint64(unsafe.Offsetof(in.IP)))
	mix(uint64(unsafe.Offsetof(in.IsBranch)))
	mix(uint64(unsafe.Offsetof(in.Taken)))
	mix(uint64(unsafe.Offsetof(in.DestRegs)))
	mix(uint64(unsafe.Offsetof(in.SrcRegs)))
	mix(uint64(unsafe.Offsetof(in.DestMem)))
	mix(uint64(unsafe.Offsetof(in.SrcMem)))
	probe := uint64(0x0102030405060708)
	mix(uint64(*(*byte)(unsafe.Pointer(&probe)))) // endianness: 8 on LE, 1 on BE
	return sig
}

// header is the decoded form of the fixed 4 KiB slab header.
//
// On-disk layout (all integers little-endian):
//
//	[0:4)    magic "TSLB"
//	[4:8)    format version (u32)
//	[8:16)   native layout signature (u64)
//	[16:24)  record count (u64)
//	[24:32)  meta length in bytes (u64)
//	[32:64)  content key (32 bytes)
//	[64:68)  CRC-32C of bytes [0:64) (u32)
//	[68:4096) zero padding to the page boundary
//
// The record region starts at offset 4096 (count × 64 bytes, native
// layout), immediately followed by the gob-encoded converter statistics
// (meta), then the footer: CRC-32C of records+meta (u32) and "TSLE".
type header struct {
	count   int
	metaLen int
	key     Key
}

const headerCRCOff = 64

func encodeHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:4], headerMagic)
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint64(buf[8:16], layoutSig)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.count))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.metaLen))
	copy(buf[32:64], h.key[:])
	crc := frame.Checksum(buf[:headerCRCOff])
	binary.LittleEndian.PutUint32(buf[headerCRCOff:headerCRCOff+4], crc)
	return buf
}

// headerVerdict classifies a parsed header.
type headerVerdict int

const (
	headerOK headerVerdict = iota
	// headerCorrupt: the file is damaged (bad magic, bad CRC) — remove it.
	headerCorrupt
	// headerForeign: intact but unusable here (other format version or
	// architecture, or a key mismatch) — treat as a miss, leave the file
	// for the native writer to replace atomically.
	headerForeign
)

func parseHeader(buf []byte, want Key) (header, headerVerdict) {
	var h header
	if len(buf) < headerSize || string(buf[0:4]) != headerMagic {
		return h, headerCorrupt
	}
	crc := frame.Checksum(buf[:headerCRCOff])
	if binary.LittleEndian.Uint32(buf[headerCRCOff:headerCRCOff+4]) != crc {
		return h, headerCorrupt
	}
	if binary.LittleEndian.Uint32(buf[4:8]) != FormatVersion {
		return h, headerForeign
	}
	if binary.LittleEndian.Uint64(buf[8:16]) != layoutSig {
		return h, headerForeign
	}
	h.count = int(binary.LittleEndian.Uint64(buf[16:24]))
	h.metaLen = int(binary.LittleEndian.Uint64(buf[24:32]))
	copy(h.key[:], buf[32:64])
	if h.key != want {
		return h, headerForeign
	}
	return h, headerOK
}

// recordBytes reinterprets a record slab as its raw byte image. The
// compile-time layout assertion above makes this exact.
func recordBytes(recs []champtrace.Instruction) []byte {
	if len(recs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&recs[0])), len(recs)*recordSize)
}

// viewRecords reinterprets the page-aligned record region of a mapping as
// instruction values. The caller has validated count against the file size.
func viewRecords(data []byte, count int) []champtrace.Instruction {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*champtrace.Instruction)(unsafe.Pointer(&data[headerSize])), count)
}

func encodeMeta(conv core.Stats) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(conv); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeMeta(b []byte) (core.Stats, error) {
	var conv core.Stats
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&conv)
	return conv, err
}

// fileSize returns the exact byte size a slab file with this header must
// have.
func (h header) fileSize() int64 {
	return int64(headerSize) + int64(h.count)*int64(recordSize) + int64(h.metaLen) + footerSize
}

// metaRegion returns the gob-encoded converter statistics between the
// record region and the footer. Valid only after checkFooter has accepted
// the mapping (which pins the file size to the header's count and metaLen).
func metaRegion(data []byte, h header) []byte {
	metaOff := int64(headerSize) + int64(h.count)*int64(recordSize)
	return data[metaOff : metaOff+int64(h.metaLen)]
}

// checkFooter validates the data CRC and end magic over a complete mapping.
// It touches every page of the record region, which doubles as the
// prefetch warm.
func checkFooter(data []byte, h header) bool {
	end := h.fileSize()
	if int64(len(data)) != end {
		return false
	}
	body := data[headerSize : end-footerSize]
	crc := frame.Checksum(body)
	if binary.LittleEndian.Uint32(data[end-footerSize:end-4]) != crc {
		return false
	}
	return string(data[end-4:end]) == footerMagic
}

// encodeFooter frames an incrementally-computed data CRC (over
// records+meta) so the writer can stream the body without buffering it.
func encodeFooter(crc uint32) []byte {
	buf := make([]byte, footerSize)
	binary.LittleEndian.PutUint32(buf[0:4], crc)
	copy(buf[4:], footerMagic)
	return buf
}
