// Package snap is the compact binary codec for microarchitectural state
// snapshots. Checkpointed components (caches, TLBs, BTB, TAGE/ITTAGE
// tables, predictor histories) serialize their warmed state through a
// Writer and restore it through a Reader; the encoding is fixed-width
// little-endian with per-component section tags, so a snapshot taken by
// one pipeline restores bit-exactly into a freshly constructed pipeline of
// identical warm-relevant configuration.
//
// The codec is hand-rolled rather than gob/reflect-based for two reasons:
// the serialized structures keep their fields unexported (gob cannot see
// them), and the byte stream doubles as an equality witness — the
// functional-warming tests compare raw snapshot bytes of two predictors to
// prove bit-identical state.
package snap

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates a snapshot. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated snapshot.
func (w *Writer) Bytes() []byte { return w.buf }

// Mark writes a section tag. Restore sides call Reader.Expect with the
// same tag, turning any encode/decode drift into an immediate error
// instead of silently misaligned state.
func (w *Writer) Mark(tag uint32) { w.U32(tag) }

// U64 appends a fixed-width uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// U32 appends a fixed-width uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U16 appends a fixed-width uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// I8 appends a signed byte.
func (w *Writer) I8(v int8) { w.buf = append(w.buf, uint8(v)) }

// I64 appends a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// U64s appends a length-prefixed slice of uint64.
func (w *Writer) U64s(s []uint64) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.U64(v)
	}
}

// Reader decodes a snapshot produced by Writer. Decoding errors latch:
// after the first failure every read returns zero and Err reports the
// failure, so restore code can decode a whole component and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Done reports an error if decoding failed or trailing bytes remain.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("snap: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Failf latches a caller-detected decode failure (e.g. a geometry
// mismatch between the snapshot and the restoring structure).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: truncated snapshot reading %s at offset %d", what, r.off)
	}
}

func (r *Reader) take(n int, what string) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Expect consumes a section tag and fails if it does not match.
func (r *Reader) Expect(tag uint32) {
	got := r.U32()
	if r.err == nil && got != tag {
		r.err = fmt.Errorf("snap: section tag mismatch: got %#x, want %#x", got, tag)
	}
}

// U64 reads a fixed-width uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a fixed-width uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U16 reads a fixed-width uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// I8 reads a signed byte.
func (r *Reader) I8() int8 { return int8(r.U8()) }

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U64s reads a length-prefixed slice of uint64 into dst, which must have
// exactly the serialized length (snapshots restore into structures of
// identical geometry).
func (r *Reader) U64s(dst []uint64) {
	n := int(r.U32())
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.err = fmt.Errorf("snap: slice length mismatch: snapshot has %d, structure has %d", n, len(dst))
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}

// Len is the number of elements announced by a length prefix; helper for
// variable-length sections.
func (r *Reader) Len() int { return int(r.U32()) }
