package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestTieredReadThroughPromotion(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	defer tiered.Close()

	key, want := bkey("promote"), []byte("warm me up")
	// Seed only the slow tier, as if written by an earlier process.
	if err := disk.Put(key, want); err != nil {
		t.Fatal(err)
	}

	got, src, err := tiered.GetWithSource(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) || src != "disk" {
		t.Fatalf("first read = %q from %q, want %q from disk", got, src, want)
	}
	// The hit must have been promoted into the memory tier.
	if _, src, err = tiered.GetWithSource(key); err != nil || src != "memory" {
		t.Fatalf("second read src=%q err=%v, want memory hit", src, err)
	}
	if _, err := mem.Get(key); err != nil {
		t.Fatal("promotion should have populated the memory tier")
	}
}

func TestTieredWriteBackAndFlush(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	defer tiered.Close()

	key, want := bkey("writeback"), []byte("durable")
	if err := tiered.Put(key, want); err != nil {
		t.Fatal(err)
	}
	// The fast tier is written synchronously.
	if _, err := mem.Get(key); err != nil {
		t.Fatal("memory tier must be written synchronously")
	}
	// After Flush the slow tier must hold the entry too.
	tiered.Flush()
	got, err := disk.Get(key)
	if err != nil {
		t.Fatalf("disk tier after Flush: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("disk payload = %q, want %q", got, want)
	}
}

func TestTieredCloseDrainsPendingWrites(t *testing.T) {
	mem := NewMemory(0)
	dir := t.TempDir()
	disk, err := NewDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)

	var keys []Key
	for i := 0; i < 50; i++ {
		k := bkey(fmt.Sprintf("drain-%d", i))
		keys = append(keys, k)
		if err := tiered.Put(k, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything written before Close must be durable: a fresh disk backend
	// over the same directory sees all 50 entries.
	reopened, err := NewDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, err := reopened.Get(k); err != nil {
			t.Fatalf("entry %s lost across Close: %v", k, err)
		}
	}
}

func TestTieredPutAfterCloseIsSynchronous(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	if err := tiered.Close(); err != nil {
		t.Fatal(err)
	}
	key, want := bkey("late"), []byte("after close")
	if err := tiered.Put(key, want); err != nil {
		t.Fatal(err)
	}
	// With the flusher gone the slow tier must still have been written,
	// synchronously, with no Flush needed.
	if _, err := disk.Get(key); err != nil {
		t.Fatalf("disk tier after post-Close Put: %v", err)
	}
}

func TestTieredMissReadsAllTiers(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(mem, disk)
	defer tiered.Close()

	if _, err := tiered.Get(bkey("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: err=%v, want ErrNotFound", err)
	}
	tiers := tiered.Tiers()
	if len(tiers) != 2 || tiers[0].Name != "memory" || tiers[1].Name != "disk" {
		t.Fatalf("Tiers() = %+v", tiers)
	}
	if tiers[0].Misses != 1 || tiers[1].Misses != 1 {
		t.Fatalf("both tiers should record the miss: %+v", tiers)
	}
}

func TestTieredWithRemoteTier(t *testing.T) {
	// Daemon A's store, exported over HTTP.
	remoteDisk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(remoteDisk))
	defer srv.Close()

	// Daemon B: memory -> local disk -> daemon A.
	remote, err := NewRemote(RemoteConfig{BaseURL: srv.URL, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	localDisk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(0)
	tiered := NewTiered(mem, localDisk, remote)
	defer tiered.Close()

	key, want := bkey("shared"), []byte("computed on daemon A")
	// A computed the result; B has never seen it.
	if err := remoteDisk.Put(key, want); err != nil {
		t.Fatal(err)
	}

	got, src, err := tiered.GetWithSource(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) || src != "remote" {
		t.Fatalf("read = %q from %q, want %q from remote", got, src, want)
	}
	// Promotion: both faster tiers now hold the entry locally.
	if _, err := mem.Get(key); err != nil {
		t.Fatal("memory tier should hold the promoted entry")
	}
	if _, err := localDisk.Get(key); err != nil {
		t.Fatal("local disk tier should hold the promoted entry")
	}
	// And a write on B reaches A via write-back.
	key2, want2 := bkey("shared-2"), []byte("computed on daemon B")
	if err := tiered.Put(key2, want2); err != nil {
		t.Fatal(err)
	}
	tiered.Flush()
	if got2, err := remoteDisk.Get(key2); err != nil || !bytes.Equal(got2, want2) {
		t.Fatalf("daemon A should hold B's write-back: %q, %v", got2, err)
	}
}

func TestCacheOverTieredBackendSingleFlight(t *testing.T) {
	mem := NewMemory(0)
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	c := New[int](NewTiered(mem, disk), GobCodec[int]{})
	defer c.Close()

	key := bkey("singleflight-tiered")
	var computes int
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := c.GetOrCompute(key, func() (int, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (single-flight across tiers)", computes)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d, want 42", i, v)
		}
	}
	s := c.Stats()
	if s.Computes != 1 {
		t.Fatalf("Stats.Computes = %d, want 1", s.Computes)
	}
}

func TestCacheStatsSumTierCounters(t *testing.T) {
	mem := NewMemory(150) // small enough to force memory evictions
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	c := New[[]byte](NewTiered(mem, disk), GobCodec[[]byte]{})
	defer c.Close()

	for i := 0; i < 4; i++ {
		k := bkey(fmt.Sprintf("sum-%d", i))
		if _, err := c.GetOrCompute(k, func() ([]byte, error) {
			return bytes.Repeat([]byte{byte(i)}, 100), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("Stats should surface memory-tier evictions, got %+v", s)
	}
	c.Backend().(*Tiered).Flush() // write-back is async; settle before counting
	tiers := c.TierStats()
	if len(tiers) != 2 {
		t.Fatalf("TierStats len = %d, want 2", len(tiers))
	}
	if tiers[0].Puts == 0 || tiers[1].Puts == 0 {
		t.Fatalf("both tiers should have Puts: %+v", tiers)
	}
}
