package cpu

import (
	"io"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/btb"
	"tracerebase/internal/sim/mem"
)

// uop is one in-flight instruction.
type uop struct {
	ip    uint64
	seq   uint64
	btype champtrace.BranchType
	taken bool
	// target is the actual next IP of a taken branch (trace truth).
	target uint64

	loadAddrs  []uint64
	storeAddrs []uint64

	// lineReady is the cycle the uop's icache line is available, set at
	// FTQ insertion in decoupled mode (fetch-directed icache access).
	lineReady uint64

	srcRegs [champtrace.NumSrcRegs]uint8
	dstRegs [champtrace.NumDestRegs]uint8
	deps    [champtrace.NumSrcRegs]*uop

	fetchLine   uint64
	decodeReady uint64
	dispatched  bool
	issued      bool
	completed   bool
	complete    uint64 // cycle at which the result is available

	// mispred marks a branch whose direction or target prediction was
	// wrong: instruction supply stalls at this uop until it resolves.
	mispred bool
}

type sqEntry struct {
	addr  uint64 // 8-byte-aligned store address
	ready uint64 // cycle the data can be forwarded
	seq   uint64
}

// Pipeline is the simulated core.
type Pipeline struct {
	cfg  Config
	pred directionPredictor
	tp   targetPredictor
	hier *mem.Hierarchy
	tlbs *mem.TLBHierarchy
	ipf  iprefetchHook

	// Front end.
	la        lookahead
	ftq       []*uop
	decq      []*uop
	stalledOn *uop
	curLine   uint64
	curLineAt uint64 // cycle the current fetch line is available
	// insertLine/insertLineAt implement the decoupled front-end's
	// in-order icache pipeline: the FTQ issues one access per line as
	// entries are enqueued, ahead of fetch.
	insertLine   uint64
	insertLineAt uint64

	// Back end.
	rob      []*uop
	robHead  int
	robCount int
	// pending holds dispatched-but-not-issued uops in age order, so the
	// scheduler scans only waiting instructions instead of the whole ROB.
	pending []*uop
	sq      []sqEntry
	// regProducer tracks the most recent writer of each register id.
	regProducer [256]*uop

	cycle   uint64
	seq     uint64
	retired uint64

	// stats for the measured region.
	st            Stats
	warmupCycles  uint64
	warmupRetired uint64
	measuring     bool
}

// Narrow interfaces so the pipeline file does not depend on concrete types
// beyond what it exercises (and tests can substitute).
type directionPredictor interface {
	Name() string
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

type targetPredictor interface {
	Predict(pc uint64, btype champtrace.BranchType) (uint64, bool)
	Resolve(pc uint64, btype champtrace.BranchType, taken bool, predTarget uint64, predKnown bool, actualTarget, fallthroughAddr uint64) bool
	Stats() btb.TargetStats
	ResetStats()
}

type iprefetchHook interface {
	OnAccess(lineAddr uint64, hit bool) []uint64
	OnBranch(pc, target uint64, btype champtrace.BranchType) []uint64
	OnFTQInsert(lineAddr uint64) []uint64
}

// lookahead wraps the trace source with a one-instruction buffer so each
// branch's actual target (the next instruction's IP) is known when the
// branch is processed — exactly how ChampSim's tracereader derives targets.
type lookahead struct {
	src  champtrace.Source
	next *champtrace.Instruction
	done bool
}

func (l *lookahead) init(src champtrace.Source) error {
	l.src = src
	in, err := src.Next()
	if err == io.EOF {
		l.done = true
		return nil
	}
	if err != nil {
		return err
	}
	l.next = in
	return nil
}

// pop returns the next instruction and the IP that follows it in the trace
// (0 at end of trace).
func (l *lookahead) pop() (*champtrace.Instruction, uint64, error) {
	if l.done || l.next == nil {
		return nil, 0, io.EOF
	}
	cur := l.next
	in, err := l.src.Next()
	if err == io.EOF {
		l.next = nil
		l.done = true
		return cur, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	l.next = in
	return cur, in.IP, nil
}

// Run simulates the trace. Statistics cover instructions retired after the
// first warmup instructions; the run ends when maxInstructions have retired
// (0 = no limit) or the trace is exhausted and the pipeline drains.
func (p *Pipeline) Run(src champtrace.Source, warmup, maxInstructions uint64) (Stats, error) {
	if err := p.la.init(src); err != nil {
		return Stats{}, err
	}
	p.measuring = warmup == 0
	if p.measuring {
		p.beginMeasurement()
	}
	for {
		p.retire()
		p.issue()
		p.dispatch()
		p.fetch()
		p.bpuFill()
		p.cycle++

		if !p.measuring && p.retired >= warmup {
			p.measuring = true
			p.beginMeasurement()
		}
		if maxInstructions > 0 && p.retired >= maxInstructions {
			break
		}
		if p.la.done && p.robCount == 0 && len(p.ftq) == 0 && len(p.decq) == 0 {
			break
		}
	}
	p.st.Instructions = p.retired - p.warmupRetired
	p.st.Cycles = p.cycle - p.warmupCycles
	p.collectCacheStats()
	return p.st, nil
}

func (p *Pipeline) beginMeasurement() {
	p.warmupCycles = p.cycle
	p.warmupRetired = p.retired
	// Preserve the measured-region counters only.
	p.st = Stats{}
	p.hier.ResetStats()
	p.tp.ResetStats()
	if p.tlbs != nil {
		p.tlbs.ResetStats()
	}
}

func (p *Pipeline) collectCacheStats() {
	grab := func(c *mem.Cache) CacheStat {
		s := c.Stats()
		return CacheStat{Accesses: s.Accesses, Misses: s.Misses, UsefulPrefetches: s.UsefulPrefetches}
	}
	p.st.L1I = grab(p.hier.L1I)
	p.st.L1D = grab(p.hier.L1D)
	p.st.L2 = grab(p.hier.L2)
	p.st.LLC = grab(p.hier.LLC)
	if p.tlbs != nil {
		p.st.ITLBMisses = p.tlbs.ITLB.Stats().Misses
		p.st.DTLBMisses = p.tlbs.DTLB.Stats().Misses
		p.st.STLBMisses = p.tlbs.STLB.Stats().Misses
	}
	p.st.BTBMisses = p.tp.Stats().BTBMisses
}

// ---- Retire ----

func (p *Pipeline) retire() {
	for n := 0; n < p.cfg.RetireWidth && p.robCount > 0; n++ {
		u := p.rob[p.robHead]
		if !u.completed || u.complete > p.cycle {
			return
		}
		// Stores write the data cache at retirement; the latency is off
		// the critical path (drained from the store buffer) but the
		// access trains caches and prefetchers and counts in MPKI.
		for _, a := range u.storeAddrs {
			p.hier.L1D.AccessIP(a, u.ip, p.cycle, mem.Write)
		}
		p.rob[p.robHead] = nil
		p.robHead = (p.robHead + 1) % len(p.rob)
		p.robCount--
		p.retired++
	}
}

// ---- Issue / execute ----

func (p *Pipeline) issue() {
	issued := 0
	keep := p.pending[:0]
	for i, u := range p.pending {
		if issued >= p.cfg.IssueWidth {
			keep = append(keep, p.pending[i:]...)
			break
		}
		if !p.depsReady(u) {
			keep = append(keep, u)
			continue
		}
		u.issued = true
		issued++
		p.execute(u)
	}
	p.pending = keep
}

func (p *Pipeline) depsReady(u *uop) bool {
	for _, d := range u.deps {
		if d != nil && (!d.completed || d.complete > p.cycle) {
			return false
		}
	}
	return true
}

func (p *Pipeline) execute(u *uop) {
	switch {
	case len(u.loadAddrs) > 0:
		done := uint64(0)
		for _, a := range u.loadAddrs {
			var t uint64
			if fwd, ok := p.forward(a, u.seq); ok {
				t = max64(p.cycle, fwd) + p.cfg.StoreForwardLatency
			} else {
				start := p.cycle
				if p.tlbs != nil {
					start += p.tlbs.TranslateD(a)
				}
				t = p.hier.L1D.AccessIP(a, u.ip, start, mem.Read)
			}
			if t > done {
				done = t
			}
		}
		u.complete = done
	case len(u.storeAddrs) > 0:
		// Address generation; the write happens at retire.
		u.complete = p.cycle + 1
		for _, a := range u.storeAddrs {
			p.pushStore(a, u.complete, u.seq)
		}
	default:
		u.complete = p.cycle + 1
	}
	u.completed = true
}

func (p *Pipeline) pushStore(addr, ready, seq uint64) {
	if len(p.sq) >= p.cfg.SQSize {
		p.sq = p.sq[1:]
	}
	p.sq = append(p.sq, sqEntry{addr: addr &^ 7, ready: ready, seq: seq})
}

// forward finds the youngest older store to the same 8-byte-aligned address.
func (p *Pipeline) forward(addr, seq uint64) (uint64, bool) {
	key := addr &^ 7
	for i := len(p.sq) - 1; i >= 0; i-- {
		if p.sq[i].seq < seq && p.sq[i].addr == key {
			return p.sq[i].ready, true
		}
	}
	return 0, false
}

// ---- Dispatch ----

func (p *Pipeline) dispatch() {
	n := 0
	for n < p.cfg.DispatchWidth && len(p.decq) > 0 && p.robCount < len(p.rob) {
		u := p.decq[0]
		if u.decodeReady > p.cycle {
			return
		}
		p.decq = p.decq[1:]
		// Register rename: link sources to their producers and claim
		// destinations.
		for i, r := range u.srcRegs {
			if r != champtrace.RegInvalid {
				u.deps[i] = p.regProducer[r]
			}
		}
		for _, r := range u.dstRegs {
			if r != champtrace.RegInvalid {
				p.regProducer[r] = u
			}
		}
		u.dispatched = true
		p.rob[(p.robHead+p.robCount)%len(p.rob)] = u
		p.robCount++
		p.pending = append(p.pending, u)
		n++
	}
}

// ---- Fetch ----

func (p *Pipeline) fetch() {
	for n := 0; n < p.cfg.FetchWidth && len(p.ftq) > 0 && len(p.decq) < p.cfg.DecodeQueue; n++ {
		u := p.ftq[0]
		if p.cfg.Decoupled {
			// The icache was accessed at FTQ insertion; fetch just
			// waits for the line.
			p.curLineAt = u.lineReady
		} else if u.fetchLine != p.curLine {
			// Coupled front-end: demand access at fetch.
			p.curLine = u.fetchLine
			p.curLineAt = p.accessICache(u.fetchLine)
		}
		if p.curLineAt > p.cycle {
			return // line still in flight: in-order fetch stalls
		}
		p.ftq = p.ftq[1:]
		u.decodeReady = p.cycle + p.cfg.DecodeLatency
		p.decq = append(p.decq, u)
	}
}

func (p *Pipeline) issueIPrefetches(addrs []uint64) {
	for _, a := range addrs {
		p.hier.L1I.Access(a, p.cycle, mem.Prefetch)
	}
}

// accessICache performs one demand instruction fetch for a line, drives the
// instruction prefetcher, and returns the cycle the line is consumable. The
// L1I hit latency is hidden by the fetch pipeline depth, so resident lines
// are consumable immediately.
func (p *Pipeline) accessICache(line uint64) uint64 {
	cycle := p.cycle
	if p.tlbs != nil {
		cycle += p.tlbs.TranslateI(line)
	}
	hit := p.hier.L1I.Contains(line)
	done := p.hier.L1I.Access(line, cycle, mem.Fetch)
	if hit {
		done -= p.cfg.Hierarchy.L1I.Latency
	}
	if p.ipf != nil {
		p.issueIPrefetches(p.ipf.OnAccess(line, hit))
	}
	return done
}

// ---- Branch prediction unit / FTQ fill ----

func (p *Pipeline) bpuFill() {
	// A mispredicted branch blocks instruction supply until it resolves;
	// fetch then resumes after the redirect penalty.
	if p.stalledOn != nil {
		u := p.stalledOn
		if !u.completed || u.complete+p.cfg.RedirectPenalty > p.cycle {
			return
		}
		p.stalledOn = nil
	}
	budget := p.cfg.FTQSize - len(p.ftq)
	if !p.cfg.Decoupled {
		// Coupled front-end: the BPU only runs for the lines fetch is
		// about to consume.
		if b := p.cfg.FetchWidth - len(p.ftq); b < budget {
			budget = b
		}
	}
	for i := 0; i < budget; i++ {
		in, nextIP, err := p.la.pop()
		if err == io.EOF || in == nil {
			return
		}
		u := p.newUop(in, nextIP)
		if u.btype != champtrace.NotBranch {
			p.processBranch(u)
		}
		p.ftq = append(p.ftq, u)
		line := mem.LineAddr(u.ip)
		if p.cfg.Decoupled {
			// Fetch-directed instruction fetch: the FTQ accesses the
			// L1I as entries are enqueued, ahead of fetch, so miss
			// latency overlaps with the FTQ occupancy.
			if line != p.insertLine {
				p.insertLine = line
				p.insertLineAt = p.accessICache(line)
			}
			u.lineReady = p.insertLineAt
		}
		if p.ipf != nil {
			p.issueIPrefetches(p.ipf.OnFTQInsert(line))
		}
		if u.mispred {
			p.stalledOn = u
			return
		}
	}
}

func (p *Pipeline) newUop(in *champtrace.Instruction, nextIP uint64) *uop {
	p.seq++
	u := &uop{
		ip:        in.IP,
		seq:       p.seq,
		btype:     champtrace.Classify(in, p.cfg.Rules),
		taken:     in.IsBranch && in.Taken,
		srcRegs:   in.SrcRegs,
		dstRegs:   in.DestRegs,
		fetchLine: mem.LineAddr(in.IP),
	}
	if u.taken {
		u.target = nextIP
	}
	for _, a := range in.SrcMem {
		if a != 0 {
			u.loadAddrs = append(u.loadAddrs, a)
		}
	}
	for _, a := range in.DestMem {
		if a != 0 {
			u.storeAddrs = append(u.storeAddrs, a)
		}
	}
	if len(u.loadAddrs) > 0 {
		p.st.Loads++
	}
	if len(u.storeAddrs) > 0 {
		p.st.Stores++
	}
	return u
}

// processBranch runs the direction and target predictors and decides
// whether the branch stalls instruction supply.
func (p *Pipeline) processBranch(u *uop) {
	p.st.Branches++
	if u.taken {
		p.st.TakenBranches++
	}

	dirMispred := false
	if u.btype == champtrace.BranchConditional {
		p.st.CondBranches++
		predTaken := p.pred.Predict(u.ip)
		p.pred.Update(u.ip, u.taken)
		dirMispred = predTaken != u.taken
	}

	predTarget, predKnown := p.tp.Predict(u.ip, u.btype)
	retAddr := u.ip + 4 // sequential address a call's matching return lands on
	targetCorrect := p.tp.Resolve(u.ip, u.btype, u.taken, predTarget, predKnown, u.target, retAddr)

	if u.btype == champtrace.BranchReturn {
		p.st.Returns++
		if u.taken && !targetCorrect {
			p.st.ReturnMispredicts++
		}
	}
	if dirMispred {
		p.st.DirMispredicts++
	}
	if u.taken && !targetCorrect {
		p.st.TargetMispredicts++
	}
	if dirMispred || (u.taken && !targetCorrect) {
		p.st.Mispredicts++
		u.mispred = true
	}

	if p.ipf != nil && u.taken {
		p.issueIPrefetches(p.ipf.OnBranch(u.ip, u.target, u.btype))
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
