package cvp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	bad := &Instruction{Class: InstClass(99)}
	if err := w.Write(bad); err == nil {
		t.Fatal("Write accepted invalid class")
	}
	if w.Count() != 0 {
		t.Fatalf("Count = %d after rejected write", w.Count())
	}
}

func TestOpenReaderBadGzip(t *testing.T) {
	if _, _, err := OpenReader("trace.gz", strings.NewReader("not gzip data")); err == nil {
		t.Fatal("OpenReader accepted corrupt gzip")
	}
}

func TestReaderRejectsOversizedCounts(t *testing.T) {
	// Record with nSrc > MaxSrcRegs.
	b := make([]byte, 0, 16)
	b = append(b, make([]byte, 8)...) // pc
	b = append(b, byte(ClassALU))
	b = append(b, byte(MaxSrcRegs+1))
	r := NewReader(bytes.NewReader(b))
	if _, err := r.Next(); err == nil {
		t.Fatal("accepted oversized source count")
	}
	// Record with nDst > MaxDstRegs.
	b2 := make([]byte, 0, 16)
	b2 = append(b2, make([]byte, 8)...)
	b2 = append(b2, byte(ClassALU))
	b2 = append(b2, 0) // no srcs
	b2 = append(b2, byte(MaxDstRegs+1))
	r2 := NewReader(bytes.NewReader(b2))
	if _, err := r2.Next(); err == nil {
		t.Fatal("accepted oversized destination count")
	}
}

// encodeRaw hand-assembles a record, bypassing Writer validation, so tests
// can feed the Reader byte patterns a conforming Writer would never emit.
func encodeRaw(pc uint64, class InstClass, mem []byte, srcs, dsts []uint8, vals []uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(pc >> (8 * i))
	}
	b = append(b, byte(class))
	b = append(b, mem...)
	b = append(b, byte(len(srcs)))
	b = append(b, srcs...)
	b = append(b, byte(len(dsts)))
	b = append(b, dsts...)
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
	}
	return b
}

// Regression: the fuzzer found that the Reader accepted access sizes the
// Writer rejects (e.g. 3), breaking the decode→encode round trip.
func TestReaderRejectsInvalidMemSize(t *testing.T) {
	for _, size := range []byte{0, 3, 5, 7, 17, 32, 63, 65, 255} {
		mem := append(make([]byte, 8), size) // effAddr + memSize
		raw := encodeRaw(0x1000, ClassLoad, mem, nil, nil, nil)
		r := NewReader(bytes.NewReader(raw))
		if _, err := r.Next(); err == nil {
			t.Errorf("accepted load with access size %d", size)
		}
	}
	// The valid sizes still decode.
	for _, size := range []byte{1, 2, 4, 8, 16, 64} {
		mem := append(make([]byte, 8), size)
		raw := encodeRaw(0x1000, ClassLoad, mem, nil, nil, nil)
		r := NewReader(bytes.NewReader(raw))
		if _, err := r.Next(); err != nil {
			t.Errorf("rejected valid access size %d: %v", size, err)
		}
	}
}

// Regression: register numbers >= NumRegs decoded fine but could not be
// re-encoded (Writer.Validate rejects them) — another decode/encode
// asymmetry surfaced by the round-trip fuzz invariant.
func TestReaderRejectsOutOfRangeRegisters(t *testing.T) {
	raw := encodeRaw(0x2000, ClassALU, nil, []uint8{NumRegs}, nil, nil)
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err == nil {
		t.Error("accepted out-of-range source register")
	}
	raw = encodeRaw(0x2000, ClassALU, nil, nil, []uint8{200}, []uint64{1})
	r = NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err == nil {
		t.Error("accepted out-of-range destination register")
	}
}

// Every record the Reader accepts must satisfy Validate — the property the
// conformance fuzz targets rely on.
func TestReaderOutputValidates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ins := []*Instruction{
		{PC: 4, Class: ClassLoad, EffAddr: 0x100, MemSize: 8, DstRegs: []uint8{1}, DstValues: []uint64{7}},
		{PC: 8, Class: ClassCondBranch, Taken: true, Target: 0x40, SrcRegs: []uint8{2}},
		{PC: 12, Class: ClassStore, EffAddr: 0x200, MemSize: 64, SrcRegs: []uint8{3}},
	}
	for _, in := range ins {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for {
		in, err := r.Next()
		if err != nil {
			break
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("decoded record fails Validate: %v", verr)
		}
	}
}

// Truncating a record at any byte boundary must produce an error (not a
// short or zero-filled record) and never panic.
func TestReaderTruncatedAtEveryOffset(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := &Instruction{
		PC: 0x1000, Class: ClassLoad, EffAddr: 0x2000, MemSize: 8,
		SrcRegs: []uint8{1, 2}, DstRegs: []uint8{3}, DstValues: []uint64{42},
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Next(); err == nil {
			t.Fatalf("accepted record truncated to %d of %d bytes", cut, len(full))
		}
	}
}

func TestReaderCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := w.Write(&Instruction{PC: uint64(i), Class: ClassALU}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d, want 5", r.Count())
	}
}
