package core

import (
	"io"
	"sync"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

// convertBatchSize is the number of CVP instructions pulled per refill of a
// ConverterSource. Each CVP instruction expands to at most two ChampSim
// records (base-update splitting), so output slabs are sized accordingly.
const convertBatchSize = 512

// slabPool recycles converted-record slabs across ConverterSources so a
// sweep running thousands of trace×variant simulations reuses a handful of
// buffers instead of allocating two per source.
var slabPool = sync.Pool{
	New: func() any {
		s := make([]champtrace.Instruction, 0, 2*convertBatchSize)
		return &s
	},
}

// ConverterSource converts a CVP-1 instruction stream to ChampSim records
// on demand, implementing champtrace.Source (and champtrace.BatchSource)
// directly so the simulator pulls conversion batch-by-batch instead of
// materializing the whole converted trace up front.
//
// The source double-buffers its output slabs: a record pointer returned by
// Next stays valid for at least convertBatchSize further Next calls, which
// covers the simulator's one-instruction lookahead. Slabs are pool-recycled
// only on Close, which therefore invalidates every previously returned
// pointer; call it once the consumer is done.
type ConverterSource struct {
	c         *Converter
	src       cvp.Source
	out, prev []champtrace.Instruction
	pos       int
	err       error
	closed    bool
}

// NewConverterSource returns a ConverterSource converting src with opts.
func NewConverterSource(src cvp.Source, opts Options) *ConverterSource {
	return &ConverterSource{
		c:    New(opts),
		src:  src,
		out:  (*slabPool.Get().(*[]champtrace.Instruction))[:0],
		prev: (*slabPool.Get().(*[]champtrace.Instruction))[:0],
	}
}

// refill swaps the output buffers and converts the next input batch into
// the (now spare) slab. On return, s.out holds the fresh records and s.err
// records any terminal condition.
func (s *ConverterSource) refill() {
	s.out, s.prev = s.prev[:0], s.out
	s.pos = 0
	for i := 0; i < convertBatchSize; i++ {
		in, err := s.src.Next()
		if err != nil {
			s.err = err
			return
		}
		s.out = s.c.ConvertAppend(s.out, in)
	}
}

// Next implements champtrace.Source. The returned pointer aliases an
// internal slab; see the type comment for its validity window.
func (s *ConverterSource) Next() (*champtrace.Instruction, error) {
	for s.pos >= len(s.out) {
		if s.err != nil {
			return nil, s.err
		}
		s.refill()
	}
	rec := &s.out[s.pos]
	s.pos++
	return rec, nil
}

// NextBatch implements champtrace.BatchSource with copy semantics: dst is
// caller-owned and unaffected by Close.
func (s *ConverterSource) NextBatch(dst []champtrace.Instruction) (int, error) {
	n := 0
	for n < len(dst) {
		rec, err := s.Next()
		if err != nil {
			if err == io.EOF && n > 0 {
				return n, nil
			}
			return n, err
		}
		dst[n] = *rec
		n++
	}
	return n, nil
}

// Stats returns the converter statistics accumulated so far. Final totals
// are available once Next has returned io.EOF.
func (s *ConverterSource) Stats() Stats { return s.c.Stats() }

// Close returns the internal slabs to the pool, invalidating every pointer
// previously returned by Next. Idempotent; subsequent Next calls return
// io.EOF.
func (s *ConverterSource) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.err == nil {
		s.err = io.EOF
	}
	s.pos = 0
	for _, slab := range [][]champtrace.Instruction{s.out, s.prev} {
		slab = slab[:0]
		slabPool.Put(&slab)
	}
	s.out, s.prev = nil, nil
}
