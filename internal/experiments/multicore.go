package experiments

// Multi-core co-scheduled sweeps: one scenario (an ordered workload→core
// assignment) simulated under every converter variant on an N-core lockstep
// system with a shared LLC.
//
// Core IDs are labels, not architecture: the engine canonicalizes every
// assignment by sorting its workloads by name, simulates the canonical
// order, and maps per-core results back through the permutation. Two
// assignments that are permutations of each other therefore produce
// permuted per-core statistics, bit-identical aggregates, and one shared
// result-cache entry — the core-permutation-symmetry conformance oracle
// holds by construction, and guards against index-dependent behavior
// creeping into the engine.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// CoSchedResult is the outcome of one co-scheduled cell: per-core
// statistics in assignment order (Cores[i] ran the i-th assigned workload)
// plus the system-throughput aggregate.
type CoSchedResult struct {
	Cores     []sim.Stats `json:"cores"`
	Aggregate sim.Stats   `json:"aggregate"`
	// Conv holds per-core converter statistics (zero for idle slots).
	Conv []core.Stats `json:"conv"`
}

// MultiCache is the content-addressed store for co-scheduled cell results.
// It shares the cache root with ResultCache but lives under a "multi"
// subdirectory: the value types differ, so the stores must not mix.
type MultiCache = resultcache.Cache[CoSchedResult]

// OpenMultiCache opens the multi-core result cache under dir ("" = the
// DefaultCacheDir resolution) with the given size bound.
func OpenMultiCache(dir string, maxBytes int64) (*MultiCache, error) {
	if dir == "" {
		var err error
		dir, err = DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	return resultcache.Open[CoSchedResult](
		resultcache.Config{Dir: dir + "/multi", MaxBytes: maxBytes},
		resultcache.GobCodec[CoSchedResult]{},
	)
}

// MultiTraceResult bundles every variant's result for one co-schedule.
type MultiTraceResult struct {
	Scenario  string                   `json:"scenario"`
	Workloads []synth.Profile          `json:"workloads"` // assignment order; empty Name = idle slot
	Results   map[string]CoSchedResult `json:"results"`
}

// RenderCoSchedule prints one co-schedule's per-core and aggregate IPC for
// every variant, in the canonical variant order.
func RenderCoSchedule(w io.Writer, res MultiTraceResult) {
	fmt.Fprintf(w, "Co-schedule %s on %d cores:\n", res.Scenario, len(res.Workloads))
	for i, p := range res.Workloads {
		name := p.Name
		if name == "" {
			name = "(idle)"
		}
		fmt.Fprintf(w, "  core %d: %s\n", i, name)
	}
	fmt.Fprintf(w, "  %-14s", "variant")
	for i := range res.Workloads {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("c%d IPC", i))
	}
	fmt.Fprintf(w, " %10s\n", "aggregate")
	for _, v := range Variants() {
		r, ok := res.Results[v.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-14s", v.Name)
		for _, cs := range r.Cores {
			fmt.Fprintf(w, " %8.3f", cs.IPC())
		}
		fmt.Fprintf(w, " %10.3f\n", r.Aggregate.IPC())
	}
}

// multiSimConfigFor is simConfigFor plus the sweep's multi-core knobs: core
// count, shared-LLC policy override, and DRAM-port bandwidth.
func (c *SweepConfig) multiSimConfigFor(opts core.Options) sim.Config {
	sc := c.simConfigFor(opts)
	sc.Cores = c.Cores
	if c.LLCPolicy != "" {
		sc.Hierarchy.LLC.Policy = c.LLCPolicy
	}
	sc.MemBandwidth = c.MemBandwidth
	return sc
}

// multiCacheKey derives the content address of one co-scheduled cell. The
// per-slot profile hashes are mixed in canonical (sorted) order — the only
// order the engine ever simulates — so permuted assignments share entries.
// The simulator configuration identity covers core count, shared-LLC
// policy, and port bandwidth.
func multiCacheKey(profiles []synth.Profile, opts core.Options, cfg sim.Config, instructions int, warmup uint64) resultcache.Key {
	h := resultcache.NewHasher("tracerebase/multiresult").
		U64(resultcache.SchemaVersion).
		Str(resultcache.Fingerprint())
	for i := range profiles {
		var ph resultcache.Key
		if profiles[i].Name != "" {
			ph = profileHash(&profiles[i])
		}
		h.Bytes(ph[:])
	}
	oh := optionsHash(opts)
	ch := configHash(cfg)
	return h.Bytes(oh[:]).Bytes(ch[:]).
		U64(uint64(instructions)).U64(warmup).Sum()
}

// canonicalize returns the workloads sorted by name plus the mapping from
// assignment slots to canonical slots (canonOf[assigned] = canonical).
// Idle slots (empty Name) sort first; ties (identical re-seeded instances
// never tie, but identical profiles may) are broken stably, which is sound
// because equal profiles generate equal instruction streams.
func canonicalize(workloads []synth.Profile) (canon []synth.Profile, canonOf []int) {
	order := make([]int, len(workloads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return workloads[order[a]].Name < workloads[order[b]].Name
	})
	canon = make([]synth.Profile, len(workloads))
	canonOf = make([]int, len(workloads))
	for ci, ai := range order {
		canon[ci] = workloads[ai]
		canonOf[ai] = ci
	}
	return canon, canonOf
}

// runMultiVariant converts each canonical workload under v and simulates
// the co-schedule in lockstep. generate fills instrs (indexed canonically,
// read-only once filled) on first call; with a slab store it is deferred
// into the store misses, so a fully slab-warm co-schedule never
// synthesizes at all. Two cores running the same workload share one slab.
func runMultiVariant(canon []synth.Profile, generate func() error, instrs [][]cvp.Instruction, v Variant, simCfg sim.Config, cfg *SweepConfig) (CoSchedResult, error) {
	n := len(canon)
	srcs := make([]champtrace.Source, n)
	convStats := make([]func() core.Stats, n)
	var cleanups []func()
	defer func() {
		for _, c := range cleanups {
			c()
		}
	}()
	if cfg.Slabs == nil {
		if err := generate(); err != nil {
			return CoSchedResult{}, err
		}
	}
	for i := range canon {
		if canon[i].Name == "" {
			continue // idle slot
		}
		if cfg.Slabs != nil {
			sl, err := acquireSlab(cfg.Slabs, &canon[i], v.Opts, cfg.Instructions,
				func() ([]cvp.Instruction, error) {
					if err := generate(); err != nil {
						return nil, err
					}
					return instrs[i], nil
				})
			if err != nil {
				return CoSchedResult{}, err
			}
			conv := sl.Conv()
			srcs[i] = champtrace.NewValuesSource(sl.Records())
			convStats[i] = func() core.Stats { return conv }
			cleanups = append(cleanups, sl.Release)
			continue
		}
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs[i]), v.Opts)
		srcs[i] = cs
		convStats[i] = cs.Stats
		cleanups = append(cleanups, func() { cs.Close() })
	}
	stats, err := sim.RunMulti(srcs, simCfg, cfg.Warmup, 0)
	if err != nil {
		return CoSchedResult{}, err
	}
	res := CoSchedResult{
		Cores: append([]sim.Stats(nil), stats...),
		Conv:  make([]core.Stats, n),
	}
	res.Aggregate = sim.AggregateStats(res.Cores)
	for i := range convStats {
		if convStats[i] != nil {
			res.Conv[i] = convStats[i]()
		}
	}
	return res, nil
}

// RunMultiSweep simulates one co-schedule under every variant of cfg on
// cfg.Cores lockstep cores. workloads assigns one profile per core slot
// (empty Name = idle core) and must have exactly cfg.Cores entries.
// Variants run on a bounded worker pool; results are assembled
// deterministically, so the output is byte-identical at any parallelism.
func RunMultiSweep(scenario string, workloads []synth.Profile, cfg SweepConfig) (MultiTraceResult, error) {
	if err := cfg.fill(); err != nil {
		return MultiTraceResult{}, err
	}
	if cfg.Cores < 1 {
		return MultiTraceResult{}, fmt.Errorf("experiments: multi-core sweep needs Cores >= 1, got %d", cfg.Cores)
	}
	if len(workloads) != cfg.Cores {
		return MultiTraceResult{}, fmt.Errorf("experiments: %d workloads for %d cores", len(workloads), cfg.Cores)
	}
	if cfg.SamplePeriod > 0 {
		return MultiTraceResult{}, fmt.Errorf("experiments: multi-core sweeps are exact-mode only (sampling is single-core)")
	}
	canon, canonOf := canonicalize(workloads)

	// Generate each active canonical workload once, shared read-only
	// across the variant workers.
	var genOnce sync.Once
	var genErr error
	instrs := make([][]cvp.Instruction, len(canon))
	generate := func() error {
		genOnce.Do(func() {
			for i := range canon {
				if canon[i].Name == "" {
					continue
				}
				instrs[i], genErr = canon[i].GenerateBatch(cfg.Instructions)
				if genErr != nil {
					genErr = fmt.Errorf("experiments: generate %s: %w", canon[i].Name, genErr)
					return
				}
			}
		})
		return genErr
	}

	nv := len(cfg.Variants)
	canonRes := make([]CoSchedResult, nv)
	cellErrs := make([]error, nv)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for vi := range jobs {
				v := cfg.Variants[vi]
				simCfg := cfg.multiSimConfigFor(v.Opts)
				compute := func() (CoSchedResult, error) {
					return runMultiVariant(canon, generate, instrs, v, simCfg, &cfg)
				}
				var res CoSchedResult
				var err error
				if cfg.MultiCache != nil {
					key := multiCacheKey(canon, v.Opts, simCfg, cfg.Instructions, cfg.Warmup)
					res, err = cfg.MultiCache.GetOrCompute(key, compute)
				} else {
					res, err = compute()
				}
				if err != nil {
					cellErrs[vi] = fmt.Errorf("experiments: %s/%s: %w", scenario, v.Name, err)
					continue
				}
				canonRes[vi] = res
			}
		}()
	}
	for vi := 0; vi < nv; vi++ {
		jobs <- vi
	}
	close(jobs)
	wg.Wait()

	out := MultiTraceResult{
		Scenario:  scenario,
		Workloads: workloads,
		Results:   make(map[string]CoSchedResult, nv),
	}
	var errs []error
	for vi, v := range cfg.Variants {
		if err := cellErrs[vi]; err != nil {
			errs = append(errs, err)
			continue
		}
		// Map canonical per-core results back to assignment order. The
		// aggregate is order-free and carried over as computed.
		res := canonRes[vi]
		mapped := CoSchedResult{
			Cores:     make([]sim.Stats, cfg.Cores),
			Aggregate: res.Aggregate,
			Conv:      make([]core.Stats, cfg.Cores),
		}
		for ai, ci := range canonOf {
			mapped.Cores[ai] = res.Cores[ci]
			mapped.Conv[ai] = res.Conv[ci]
		}
		out.Results[v.Name] = mapped
	}
	return out, errors.Join(errs...)
}
