package vp

import (
	"math/rand"
	"testing"

	"tracerebase/internal/cvp"
	"tracerebase/internal/synth"
)

// train feeds a (pc, value) stream and returns coverage and accuracy over
// the final quarter (the trained regime).
func train(p Predictor, n int, gen func(i int) (uint64, uint64)) (coverage, accuracy float64) {
	var ctx Context
	predicted, correct, eligible := 0, 0, 0
	for i := 0; i < n; i++ {
		pc, v := gen(i)
		pred, conf := p.Predict(pc, ctx)
		if i >= 3*n/4 {
			eligible++
			if conf {
				predicted++
				if pred == v {
					correct++
				}
			}
		}
		p.Update(pc, ctx, v)
	}
	if predicted == 0 {
		return float64(predicted) / float64(eligible), 0
	}
	return float64(predicted) / float64(eligible), float64(correct) / float64(predicted)
}

func all(t *testing.T) []Predictor {
	t.Helper()
	var ps []Predictor
	for _, n := range Names() {
		p, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != n {
			t.Errorf("Name = %q want %q", p.Name(), n)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("bogus"); err == nil {
		t.Fatal("accepted bogus predictor")
	}
}

// A constant value must be near-perfectly predicted by every predictor.
func TestConstantValue(t *testing.T) {
	for _, p := range all(t) {
		cov, acc := train(p, 4000, func(i int) (uint64, uint64) { return 0x400100, 42 })
		if cov < 0.95 || acc < 0.99 {
			t.Errorf("%s: constant coverage %.2f accuracy %.2f", p.Name(), cov, acc)
		}
	}
}

// A strided value (loop counter, walked pointer) defeats last-value but is
// exact for stride and learnable by FCM only if the sequence repeats —
// which an unbounded counter does not.
func TestStridedValue(t *testing.T) {
	gen := func(i int) (uint64, uint64) { return 0x400200, uint64(0x10000 + i*8) }
	s, _ := New("stride")
	cov, acc := train(s, 4000, gen)
	if cov < 0.95 || acc < 0.99 {
		t.Errorf("stride: coverage %.2f accuracy %.2f on strided stream", cov, acc)
	}
	lv, _ := New("last-value")
	cov, _ = train(lv, 4000, gen)
	if cov > 0.1 {
		t.Errorf("last-value: coverage %.2f on strided stream — confidence gate broken", cov)
	}
}

// A short repeating value SEQUENCE (state machine output) defeats both
// last-value and stride but is exactly what FCM's context captures.
func TestRepeatingSequence(t *testing.T) {
	seq := []uint64{7, 7, 123, 9, 9, 55}
	gen := func(i int) (uint64, uint64) { return 0x400300, seq[i%len(seq)] }
	f, _ := New("fcm")
	cov, acc := train(f, 6000, gen)
	if cov < 0.9 || acc < 0.95 {
		t.Errorf("fcm: coverage %.2f accuracy %.2f on periodic sequence", cov, acc)
	}
	s, _ := New("stride")
	if _, acc := train(s, 6000, gen); acc > 0.9 {
		t.Errorf("stride accuracy %.2f on aperiodic-stride sequence — too good", acc)
	}
}

// A value correlated with branch history (different value per path) is
// VTAGE's home turf.
func TestPathCorrelatedValue(t *testing.T) {
	v, _ := New("vtage")
	var ctx Context
	r := rand.New(rand.NewSource(4))
	predicted, correct, eligible := 0, 0, 0
	const n = 30000
	for i := 0; i < n; i++ {
		// A conditional branch decides which value the next
		// instruction produces.
		taken := r.Intn(2) == 0
		ctx.BranchHist = ctx.BranchHist << 1
		if taken {
			ctx.BranchHist |= 1
		}
		val := uint64(111)
		if taken {
			val = 999
		}
		pred, conf := v.Predict(0x400400, ctx)
		if i > 3*n/4 {
			eligible++
			if conf {
				predicted++
				if pred == val {
					correct++
				}
			}
		}
		v.Update(0x400400, ctx, val)
	}
	cov := float64(predicted) / float64(eligible)
	acc := float64(correct) / float64(max(predicted, 1))
	if cov < 0.5 || acc < 0.9 {
		t.Errorf("vtage: coverage %.2f accuracy %.2f on path-correlated value", cov, acc)
	}
	// Last-value cannot exceed ~50% accuracy here no matter what.
	lv, _ := New("last-value")
	predicted, correct = 0, 0
	r = rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		taken := r.Intn(2) == 0
		val := uint64(111)
		if taken {
			val = 999
		}
		if pred, conf := lv.Predict(0x400400, ctx); conf && i > 3*n/4 {
			predicted++
			if pred == val {
				correct++
			}
		}
		lv.Update(0x400400, ctx, val)
	}
	if predicted > 0 && float64(correct)/float64(predicted) > 0.75 {
		t.Errorf("last-value suspiciously good on random path values: %d/%d", correct, predicted)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Confidence gating: after a burst of mispredictions the predictor must
// stop predicting until retrained.
func TestConfidenceGate(t *testing.T) {
	p, _ := New("last-value")
	var ctx Context
	for i := 0; i < 100; i++ {
		p.Update(0x100, ctx, 5)
	}
	if _, conf := p.Predict(0x100, ctx); !conf {
		t.Fatal("not confident after 100 confirmations")
	}
	p.Update(0x100, ctx, 6) // one wrong value
	if _, conf := p.Predict(0x100, ctx); conf {
		t.Fatal("still confident right after a misprediction")
	}
}

// TestEvaluateOnSyntheticTrace runs the full harness over a synthetic CVP-1
// trace: the stride predictor should profit from base-update address
// streams, and every predictor must keep high accuracy (the confidence
// gate's job).
func TestEvaluateOnSyntheticTrace(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 6)
	p.BaseUpdateFrac = 0.3
	instrs, err := p.Generate(40000)
	if err != nil {
		t.Fatal(err)
	}
	results, err := EvaluateAll(instrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Names()) {
		t.Fatalf("got %d results", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Predictor] = r
		if r.Eligible == 0 {
			t.Fatalf("%s: no eligible instructions", r.Predictor)
		}
		if r.Predicted > 0 && r.Accuracy() < 0.75 {
			t.Errorf("%s: accuracy %.2f below the confidence gate's promise", r.Predictor, r.Accuracy())
		}
		if r.LoadEligible == 0 {
			t.Errorf("%s: no eligible loads", r.Predictor)
		}
	}
	if byName["stride"].Coverage() <= byName["last-value"].Coverage() {
		t.Errorf("stride coverage %.3f should beat last-value %.3f on base-update streams",
			byName["stride"].Coverage(), byName["last-value"].Coverage())
	}
}

func TestResultDerived(t *testing.T) {
	r := Result{Eligible: 100, Predicted: 50, Correct: 45}
	if r.Coverage() != 0.5 || r.Accuracy() != 0.9 {
		t.Errorf("coverage %v accuracy %v", r.Coverage(), r.Accuracy())
	}
	if s := r.Score(); s != (45.0-5*5)/100 {
		t.Errorf("score %v", s)
	}
	var zero Result
	if zero.Coverage() != 0 || zero.Accuracy() != 0 || zero.Score() != 0 {
		t.Error("zero result derived metrics should be 0")
	}
}

func TestDeterminism(t *testing.T) {
	p := synth.PublicProfile(synth.Crypto, 3)
	instrs, err := p.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EvaluateAll(instrs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateAll(instrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: results differ between runs", a[i].Predictor)
		}
	}
}

func TestEvaluateEligibility(t *testing.T) {
	// Only instructions with destination values are eligible.
	instrs := []*cvp.Instruction{
		{PC: 0x10, Class: cvp.ClassALU, DstRegs: []uint8{1}, DstValues: []uint64{5}},
		{PC: 0x14, Class: cvp.ClassALU}, // compare: no dst
		{PC: 0x18, Class: cvp.ClassCondBranch, Taken: true, Target: 0x10},
		{PC: 0x10, Class: cvp.ClassALU, DstRegs: []uint8{1}, DstValues: []uint64{5}},
	}
	p, _ := New("last-value")
	r, err := Evaluate(cvp.NewSliceSource(instrs), p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Eligible != 2 {
		t.Fatalf("eligible = %d, want 2", r.Eligible)
	}
}

// TestVTAGEAllocationPressure drives many path-varying values through a
// tiny VTAGE: useful-bit decay must keep allocation alive without panics.
func TestVTAGEAllocationPressure(t *testing.T) {
	v := NewVTAGE(VTAGEConfig{BaseBits: 5, TableBits: 4, TagBits: 6, HistLengths: []int{2, 4}})
	r := rand.New(rand.NewSource(17))
	var ctx Context
	for i := 0; i < 20000; i++ {
		ctx.BranchHist = ctx.BranchHist<<1 | uint64(r.Intn(2))
		ctx.PathHist = ctx.PathHist<<3 ^ uint64(r.Intn(1024))
		pc := uint64(0x1000 + r.Intn(256)*4)
		v.Predict(pc, ctx)
		v.Update(pc, ctx, uint64(r.Intn(8)))
	}
	// Still trains a constant cleanly afterwards.
	ctx = Context{}
	for i := 0; i < 40; i++ {
		v.Predict(0x9000, ctx)
		v.Update(0x9000, ctx, 77)
	}
	if val, conf := v.Predict(0x9000, ctx); !conf || val != 77 {
		t.Fatalf("post-churn constant: %d, %v", val, conf)
	}
}
