// Package stats provides the small numeric helpers shared by the
// experiment harness: geometric means, percentage deltas, and MPKI
// normalization.
package stats

import (
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty
// slice and panics if any value is non-positive (IPCs and speedups are
// strictly positive by construction).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: Geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// PercentDelta returns 100*(new-old)/old.
func PercentDelta(oldV, newV float64) float64 {
	return 100 * (newV - oldV) / oldV
}

// MPKI normalizes an event count to misses-per-kilo-instruction.
func MPKI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(events) / float64(instructions)
}

// SortDescending returns a copy of xs sorted from highest to lowest.
func SortDescending(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// CountAbove returns how many values exceed the threshold.
func CountAbove(xs []float64, threshold float64) int {
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return n
}

// CountBelow returns how many values are under the threshold.
func CountBelow(xs []float64, threshold float64) int {
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return n
}

// Max returns the maximum of xs, 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
