// Command traceinfo characterizes a trace file: the instruction mix, branch
// composition, register usage and memory behaviour that drive the paper's
// conversion analysis. It understands both CVP-1 traces (-format cvp) and
// ChampSim traces (-format champsim).
//
//	traceinfo -t srv_0.cvp.gz
//	traceinfo -t srv_0.champsim -format champsim -rules patched
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

func main() {
	var (
		tracePath = flag.String("t", "", "input trace; '-' for stdin")
		format    = flag.String("format", "cvp", "trace format: cvp or champsim")
		rules     = flag.String("rules", "original", "branch deduction rules for champsim traces")
	)
	flag.Parse()
	if *tracePath == "" {
		fatalf("need -t trace")
	}
	in := os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	switch *format {
	case "cvp":
		reader, closer, err := cvp.OpenReader(*tracePath, in)
		if err != nil {
			fatalf("%v", err)
		}
		defer closer.Close()
		if err := cvpInfo(reader); err != nil {
			fatalf("%v", err)
		}
	case "champsim":
		reader, closer, err := champtrace.OpenReader(*tracePath, in)
		if err != nil {
			fatalf("%v", err)
		}
		defer closer.Close()
		rs := champtrace.RulesOriginal
		if *rules == "patched" {
			rs = champtrace.RulesPatched
		}
		if err := champInfo(reader, rs); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown format %q", *format)
	}
}

func cvpInfo(r *cvp.Reader) error {
	var (
		total                        uint64
		byClass                      [cvp.NumClasses]uint64
		memNoDst, multiDst, withVals uint64
		readsLR, writesLR, rwLR      uint64
		condWithSrc                  uint64
		pcMin, pcMax                 uint64 = ^uint64(0), 0
	)
	for {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		byClass[in.Class]++
		if in.PC < pcMin {
			pcMin = in.PC
		}
		if in.PC > pcMax {
			pcMax = in.PC
		}
		if in.Class.IsMem() && len(in.DstRegs) == 0 {
			memNoDst++
		}
		if in.IsLoad() && len(in.DstRegs) >= 2 {
			multiDst++
		}
		if len(in.DstValues) > 0 {
			withVals++
		}
		if in.Class.IsBranch() && in.Class != cvp.ClassCondBranch {
			rd, wr := in.ReadsReg(cvp.RegLR), in.WritesReg(cvp.RegLR)
			if rd {
				readsLR++
			}
			if wr {
				writesLR++
			}
			if rd && wr {
				rwLR++
			}
		}
		if in.Class == cvp.ClassCondBranch && len(in.SrcRegs) > 0 {
			condWithSrc++
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	pct := func(c uint64) float64 { return 100 * float64(c) / float64(total) }
	fmt.Printf("format:            CVP-1\n")
	fmt.Printf("instructions:      %d\n", total)
	fmt.Printf("code span:         %#x..%#x (%d KB)\n", pcMin, pcMax, (pcMax-pcMin)/1024)
	for c := cvp.InstClass(0); int(c) < cvp.NumClasses; c++ {
		if byClass[c] > 0 {
			fmt.Printf("  %-22s %9d  (%5.2f%%)\n", c, byClass[c], pct(byClass[c]))
		}
	}
	fmt.Printf("mem without dst:   %d (%.2f%%)   multi-dst loads: %d (%.2f%%)\n",
		memNoDst, pct(memNoDst), multiDst, pct(multiDst))
	fmt.Printf("cond with src reg: %d (%.2f%%)\n", condWithSrc, pct(condWithSrc))
	fmt.Printf("uncond branches:   read-LR %d, write-LR %d, read+write-LR %d\n", readsLR, writesLR, rwLR)
	fmt.Printf("with output vals:  %d (%.2f%%)\n", withVals, pct(withVals))
	return nil
}

func champInfo(r *champtrace.Reader, rules champtrace.RuleSet) error {
	var (
		total, branches, taken uint64
		loads, stores          uint64
		multiAddr              uint64
		byType                 [champtrace.BranchOther + 1]uint64
	)
	for {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		if in.IsBranch {
			branches++
			if in.Taken {
				taken++
			}
			byType[champtrace.Classify(in, rules)]++
		}
		nl, ns := 0, 0
		for _, a := range in.SrcMem {
			if a != 0 {
				nl++
			}
		}
		for _, a := range in.DestMem {
			if a != 0 {
				ns++
			}
		}
		if nl > 0 {
			loads++
		}
		if ns > 0 {
			stores++
		}
		if nl > 1 || ns > 1 {
			multiAddr++
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	pct := func(c uint64) float64 { return 100 * float64(c) / float64(total) }
	fmt.Printf("format:        ChampSim (%s rules)\n", rules)
	fmt.Printf("instructions:  %d\n", total)
	fmt.Printf("branches:      %d (%.2f%%), %d taken\n", branches, pct(branches), taken)
	for bt := champtrace.BranchDirectJump; bt <= champtrace.BranchOther; bt++ {
		if byType[bt] > 0 {
			fmt.Printf("  %-14s %9d\n", bt, byType[bt])
		}
	}
	fmt.Printf("loads:         %d (%.2f%%)\n", loads, pct(loads))
	fmt.Printf("stores:        %d (%.2f%%)\n", stores, pct(stores))
	fmt.Printf("multi-address: %d (%.2f%%) — mem-footprint cacheline splits\n", multiAddr, pct(multiAddr))
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
