package tracestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/frame"
	"tracerebase/internal/resultcache"
)

func testKey(n uint64) Key {
	return resultcache.NewHasher("tracestore/test").U64(n).Sum()
}

// testRecords builds n distinguishable instruction records.
func testRecords(n int, salt uint64) []champtrace.Instruction {
	recs := make([]champtrace.Instruction, n)
	for i := range recs {
		recs[i] = champtrace.Instruction{
			IP:       0x400000 + uint64(i)*4 + salt,
			IsBranch: i%7 == 0,
			Taken:    i%14 == 0,
			SrcRegs:  [champtrace.NumSrcRegs]uint8{1, 2},
			SrcMem:   [champtrace.NumSrcMem]uint64{uint64(i) * 64},
		}
	}
	return recs
}

func testConv(n int) core.Stats {
	return core.Stats{In: uint64(n), Out: uint64(n), CondBranches: uint64(n / 7)}
}

func converterFor(n int, salt uint64, calls *atomic.Int64) ConvertFunc {
	return func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
		if calls != nil {
			calls.Add(1)
		}
		return append(scratch[:0], testRecords(n, salt)...), testConv(n), nil
	}
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestConvertPersistReload(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	want := testRecords(500, 9)

	s := mustOpen(t, Config{Dir: dir})
	sl, err := s.GetOrConvert(key, converterFor(500, 9, nil))
	if err != nil {
		t.Fatalf("GetOrConvert: %v", err)
	}
	if !reflect.DeepEqual(sl.Records(), want) {
		t.Fatalf("converted records differ")
	}
	if sl.Conv() != testConv(500) {
		t.Fatalf("conv stats differ: %+v", sl.Conv())
	}
	// The served slab must be the file mapping, not the conversion heap
	// slab: that is the zero-copy contract.
	if sl.data == nil {
		t.Fatalf("slab served from heap, not from the written file")
	}
	sl.Release()
	st := s.Stats()
	if st.Misses != 1 || st.Converts != 1 || st.BytesWritten == 0 {
		t.Fatalf("cold stats: %+v", st)
	}

	// Second lookup in-process: resident hit, no conversion.
	sl2, err := s.GetOrConvert(key, converterFor(500, 777, nil))
	if err != nil {
		t.Fatalf("warm GetOrConvert: %v", err)
	}
	if !reflect.DeepEqual(sl2.Records(), want) {
		t.Fatalf("resident records differ")
	}
	sl2.Release()
	if st := s.Stats(); st.MemHits != 1 {
		t.Fatalf("warm stats: %+v", st)
	}
	s.Close()

	// Fresh store over the same dir: disk hit, byte-identical records and
	// identical converter stats — the persisted slab fully replaces the
	// conversion.
	s2 := mustOpen(t, Config{Dir: dir})
	var calls atomic.Int64
	sl3, err := s2.GetOrConvert(key, converterFor(500, 777, &calls))
	if err != nil {
		t.Fatalf("reload GetOrConvert: %v", err)
	}
	defer sl3.Release()
	if calls.Load() != 0 {
		t.Fatalf("reload ran the converter")
	}
	if !reflect.DeepEqual(sl3.Records(), want) {
		t.Fatalf("reloaded records differ")
	}
	if sl3.Conv() != testConv(500) {
		t.Fatalf("reloaded conv stats differ: %+v", sl3.Conv())
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.BytesMapped == 0 {
		t.Fatalf("reload stats: %+v", st)
	}
}

func TestEmptySlab(t *testing.T) {
	dir := t.TempDir()
	key := testKey(2)
	s := mustOpen(t, Config{Dir: dir})
	sl, err := s.GetOrConvert(key, converterFor(0, 0, nil))
	if err != nil {
		t.Fatalf("GetOrConvert: %v", err)
	}
	if sl.Len() != 0 {
		t.Fatalf("want empty slab, got %d records", sl.Len())
	}
	sl.Release()
	s.Close()

	s2 := mustOpen(t, Config{Dir: dir})
	sl2, ok := s2.Get(key)
	if !ok || sl2.Len() != 0 {
		t.Fatalf("empty slab did not round-trip (ok=%v)", ok)
	}
	sl2.Release()
}

func TestSingleFlight(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	key := testKey(3)
	var calls atomic.Int64
	slow := func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
		calls.Add(1)
		return append(scratch[:0], testRecords(100, 0)...), testConv(100), nil
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sl, err := s.GetOrConvert(key, slow)
			if err != nil {
				t.Errorf("GetOrConvert: %v", err)
				return
			}
			if sl.Len() != 100 {
				t.Errorf("short slab: %d", sl.Len())
			}
			sl.Release()
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("converter ran %d times, want 1", calls.Load())
	}
}

func TestConvertErrorNotStored(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	key := testKey(4)
	boom := fmt.Errorf("converter exploded")
	_, err := s.GetOrConvert(key, func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
		return scratch, core.Stats{}, boom
	})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("want converter error, got %v", err)
	}
	if st := s.Stats(); st.ConvertErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A later call retries and can succeed.
	sl, err := s.GetOrConvert(key, converterFor(10, 0, nil))
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	sl.Release()
}

// corruptOneByte flips a byte in the record region of the only slab file
// under dir.
func corruptOneByte(t *testing.T, s *Store, at int64) string {
	t.Helper()
	var path string
	filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".slab") {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatalf("no slab file found under %s", s.Dir())
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open slab: %v", err)
	}
	defer f.Close()
	buf := []byte{0}
	if _, err := f.ReadAt(buf, at); err != nil {
		t.Fatalf("read: %v", err)
	}
	buf[0] ^= 0xff
	if _, err := f.WriteAt(buf, at); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestCorruptSlabReconverted(t *testing.T) {
	dir := t.TempDir()
	key := testKey(5)
	s := mustOpen(t, Config{Dir: dir})
	sl, err := s.GetOrConvert(key, converterFor(300, 1, nil))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	sl.Release()
	// Flip a byte mid-records: header still parses, data CRC must catch it.
	path := corruptOneByte(t, s, headerSize+100)
	s.Close()

	var warned []string
	s2 := mustOpen(t, Config{Dir: dir, Warn: func(f string, a ...any) {
		warned = append(warned, fmt.Sprintf(f, a...))
	}})
	var calls atomic.Int64
	sl2, err := s2.GetOrConvert(key, converterFor(300, 1, &calls))
	if err != nil {
		t.Fatalf("GetOrConvert over corrupt slab: %v", err)
	}
	defer sl2.Release()
	if calls.Load() != 1 {
		t.Fatalf("corrupt slab was not reconverted (calls=%d)", calls.Load())
	}
	if !reflect.DeepEqual(sl2.Records(), testRecords(300, 1)) {
		t.Fatalf("reconverted records differ")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "corrupt slab") {
		t.Fatalf("no pointed warning, got %q", warned)
	}
	// The corrupt file was replaced by the reconversion's write.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("slab file not rewritten: %v", err)
	}
}

func TestTruncatedSlabReconverted(t *testing.T) {
	dir := t.TempDir()
	key := testKey(6)
	s := mustOpen(t, Config{Dir: dir})
	sl, err := s.GetOrConvert(key, converterFor(300, 2, nil))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	sl.Release()
	path := s.EntryPath(key)
	s.Close()
	if err := os.Truncate(path, headerSize+64); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2 := mustOpen(t, Config{Dir: dir})
	var calls atomic.Int64
	sl2, err := s2.GetOrConvert(key, converterFor(300, 2, &calls))
	if err != nil {
		t.Fatalf("GetOrConvert over truncated slab: %v", err)
	}
	sl2.Release()
	if calls.Load() != 1 {
		t.Fatalf("truncated slab was not reconverted")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestForeignVersionIsMissWithoutDelete(t *testing.T) {
	dir := t.TempDir()
	key := testKey(7)
	s := mustOpen(t, Config{Dir: dir})
	sl, err := s.GetOrConvert(key, converterFor(50, 3, nil))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	sl.Release()
	s.Close()

	// Patch the header to a future format version with a valid header CRC:
	// intact but unusable — must read as a miss and NOT be deleted until
	// the native writer replaces it.
	entry := ""
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(p, ".slab") {
			entry = p
		}
		return nil
	})
	raw, err := os.ReadFile(entry)
	if err != nil {
		t.Fatalf("read slab: %v", err)
	}
	raw[4] = 0xfe // version 254
	crc := frame.Checksum(raw[:headerCRCOff])
	binary.LittleEndian.PutUint32(raw[headerCRCOff:headerCRCOff+4], crc)
	if err := os.WriteFile(entry, raw, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	s3 := mustOpen(t, Config{Dir: dir})
	var calls atomic.Int64
	sl3, err := s3.GetOrConvert(key, converterFor(50, 3, &calls))
	if err != nil {
		t.Fatalf("GetOrConvert: %v", err)
	}
	sl3.Release()
	if calls.Load() != 1 {
		t.Fatalf("foreign slab was not treated as a miss")
	}
	if st := s3.Stats(); st.Corrupt != 0 {
		t.Fatalf("foreign slab counted corrupt: %+v", st)
	}
	// The native write replaced it: it must now load.
	s3.Close()
	s4 := mustOpen(t, Config{Dir: dir})
	if _, ok := s4.Get(key); !ok {
		t.Fatalf("native rewrite did not replace foreign slab")
	}
}

func TestMmapLifetime(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxResident: 1})
	keyA, keyB := testKey(10), testKey(11)

	slA, err := s.GetOrConvert(keyA, converterFor(200, 10, nil))
	if err != nil {
		t.Fatalf("A: %v", err)
	}
	wantA := append([]champtrace.Instruction(nil), slA.Records()...)

	// Installing B exceeds MaxResident=1 and evicts A's residency — but A
	// is still referenced, so its mapping must survive untouched.
	slB, err := s.GetOrConvert(keyB, converterFor(200, 11, nil))
	if err != nil {
		t.Fatalf("B: %v", err)
	}
	s.mu.Lock()
	aResident, aDestroyed := slA.resident, slA.destroyed
	s.mu.Unlock()
	if aResident {
		t.Fatalf("A still resident past MaxResident=1")
	}
	if aDestroyed {
		t.Fatalf("A destroyed while still referenced")
	}
	if !reflect.DeepEqual(slA.Records(), wantA) {
		t.Fatalf("A's records changed under eviction")
	}

	// The last Release is what frees it.
	slA.Release()
	s.mu.Lock()
	aDestroyed = slA.destroyed
	s.mu.Unlock()
	if !aDestroyed {
		t.Fatalf("A not destroyed after last Release with residency dropped")
	}

	// B stays resident: Release keeps it mapped for reuse.
	slB.Release()
	s.mu.Lock()
	bDestroyed := slB.destroyed
	s.mu.Unlock()
	if bDestroyed {
		t.Fatalf("resident B destroyed on Release")
	}
	slB2, ok := s.Get(keyB)
	if !ok {
		t.Fatalf("resident B not served")
	}
	slB2.Release()

	// Close drops residency; with no references left, B is unmapped.
	s.Close()
	s.mu.Lock()
	bDestroyed = slB.destroyed
	s.mu.Unlock()
	if !bDestroyed {
		t.Fatalf("B not destroyed on Close")
	}
}

func TestCloseWithOutstandingRef(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	sl, err := s.GetOrConvert(testKey(12), converterFor(100, 12, nil))
	if err != nil {
		t.Fatalf("GetOrConvert: %v", err)
	}
	want := append([]champtrace.Instruction(nil), sl.Records()...)
	s.Close()
	if !reflect.DeepEqual(sl.Records(), want) {
		t.Fatalf("records invalid after Close with outstanding ref")
	}
	sl.Release()
	s.mu.Lock()
	destroyed := sl.destroyed
	s.mu.Unlock()
	if !destroyed {
		t.Fatalf("slab leaked after Close + final Release")
	}
}

func TestDiskLRUEviction(t *testing.T) {
	// Each 100-record slab file is 4096 + 6400 + meta + 8 ≈ 10.6 KB; a
	// 32 KB budget holds two.
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxBytes: 32 << 10, MaxResident: 1})
	for i := uint64(0); i < 4; i++ {
		sl, err := s.GetOrConvert(testKey(20+i), converterFor(100, i, nil))
		if err != nil {
			t.Fatalf("slab %d: %v", i, err)
		}
		sl.Release()
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no disk evictions under MaxBytes: %+v", st)
	}
	if s.DiskBytes() > 32<<10 {
		t.Fatalf("disk footprint %d exceeds budget", s.DiskBytes())
	}
	// The most recent slab must have survived.
	if _, err := os.Stat(s.EntryPath(testKey(23))); err != nil {
		t.Fatalf("newest slab evicted: %v", err)
	}
}

func TestPrefetchWarmsResident(t *testing.T) {
	dir := t.TempDir()
	key := testKey(30)
	s := mustOpen(t, Config{Dir: dir})
	sl, err := s.GetOrConvert(key, converterFor(100, 30, nil))
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	sl.Release()
	s.Close()

	s2 := mustOpen(t, Config{Dir: dir})
	s2.Prefetch(key)
	st := s2.Stats()
	if st.Prefetches != 1 || st.DiskHits != 1 {
		t.Fatalf("prefetch stats: %+v", st)
	}
	// The subsequent lookup is a resident hit, not a disk load.
	var calls atomic.Int64
	sl2, err := s2.GetOrConvert(key, converterFor(100, 30, &calls))
	if err != nil {
		t.Fatalf("GetOrConvert: %v", err)
	}
	sl2.Release()
	if calls.Load() != 0 {
		t.Fatalf("prefetched slab reconverted")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("post-prefetch stats: %+v", st)
	}
	// Prefetch of a missing key is a quiet no-op.
	s2.Prefetch(testKey(31))
	if st := s2.Stats(); st.Prefetches != 1 {
		t.Fatalf("missing-key prefetch counted: %+v", st)
	}
}

func TestWriteFailureDegradesToHeap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	// Make the store root read-only so CreateTemp fails.
	if err := os.Chmod(s.Dir(), 0o555); err != nil {
		t.Fatalf("chmod: %v", err)
	}
	defer os.Chmod(s.Dir(), 0o755)
	if f, err := os.CreateTemp(s.Dir(), "probe-*"); err == nil {
		f.Close()
		os.Remove(f.Name())
		t.Skip("running as a user unaffected by directory permissions")
	}

	var warned []string
	s.warn = func(f string, a ...any) { warned = append(warned, fmt.Sprintf(f, a...)) }
	sl, err := s.GetOrConvert(testKey(40), converterFor(100, 40, nil))
	if err != nil {
		t.Fatalf("GetOrConvert must degrade, got error: %v", err)
	}
	if !sl.heap {
		t.Fatalf("expected heap fallback slab")
	}
	if !reflect.DeepEqual(sl.Records(), testRecords(100, 40)) {
		t.Fatalf("heap slab records differ")
	}
	sl.Release()
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if len(warned) == 0 {
		t.Fatalf("write failure was silent")
	}
}

func TestScratchPoolRecycled(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxResident: 1})
	var sawScratch bool
	for i := uint64(0); i < 3; i++ {
		sl, err := s.GetOrConvert(testKey(50+i), func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
			if cap(scratch) > 0 {
				sawScratch = true
			}
			return append(scratch[:0], testRecords(200, i)...), testConv(200), nil
		})
		if err != nil {
			t.Fatalf("slab %d: %v", i, err)
		}
		sl.Release()
	}
	if !sawScratch {
		t.Fatalf("conversion scratch never recycled through the pool")
	}
}
