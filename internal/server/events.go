package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
)

// Event is one NDJSON line of a job stream. A submission's response body
// is a sequence of events: queued, started (leader runs only), zero or
// more progress/chunk interleavings, then exactly one done or error.
// Concatenating the Text of every chunk event reproduces the batch CLI
// output byte for byte.
type Event struct {
	// Type is queued, started, progress, chunk, done, or error.
	Type string `json:"type"`
	// Key is the job's content address (on queued).
	Key string `json:"key,omitempty"`
	// Done/Total report sweep progress in traces (on progress).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Text is a fragment of the rendered output (on chunk).
	Text string `json:"text,omitempty"`
	// Served names what resolved the job: a tier name (memory, disk,
	// remote) for a cache hit, "computed" for a fresh run, "shared" for a
	// single-flight join (on done).
	Served string `json:"served,omitempty"`
	// ElapsedSeconds is the server-side wall clock of the job (on done).
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// Error is the failure message (on error).
	Error string `json:"error,omitempty"`
}

// job is one in-flight submission. Events are buffered so subscribers
// that join mid-run (single-flight followers of an identical submission)
// replay the full stream from the start.
type job struct {
	key string

	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

func newJob(key string) *job {
	j := &job{key: key}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// publish appends an event and wakes every subscriber.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.closed = j.closed || ev.Type == "done" || ev.Type == "error"
	j.mu.Unlock()
	j.cond.Broadcast()
}

// streamTo writes the job's events to w as NDJSON from the beginning,
// following live until the job closes. It flushes after every event so
// clients see progress as it happens.
func (j *job) streamTo(w io.Writer) error {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	for {
		j.mu.Lock()
		for i >= len(j.events) && !j.closed {
			j.cond.Wait()
		}
		batch := j.events[i:]
		closed := j.closed
		j.mu.Unlock()
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return err
			}
			i++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed && func() bool { j.mu.Lock(); defer j.mu.Unlock(); return i >= len(j.events) }() {
			return nil
		}
	}
}

// chunkSize is the streaming granularity: small enough that tables
// appear as they render, large enough to keep event overhead negligible.
const chunkSize = 8 << 10

// chunkWriter turns report output writes into chunk events while
// accumulating the complete byte stream for caching.
type chunkWriter struct {
	j       *job
	full    []byte
	pending []byte
}

func (c *chunkWriter) Write(p []byte) (int, error) {
	c.full = append(c.full, p...)
	c.pending = append(c.pending, p...)
	for len(c.pending) >= chunkSize {
		c.j.publish(Event{Type: "chunk", Text: string(c.pending[:chunkSize])})
		c.pending = c.pending[chunkSize:]
	}
	return len(p), nil
}

// flush emits any buffered tail as a final chunk.
func (c *chunkWriter) flush() {
	if len(c.pending) > 0 {
		c.j.publish(Event{Type: "chunk", Text: string(c.pending)})
		c.pending = nil
	}
}
