package cpu

// SMARTS-style interval sampling (Wunderlich et al.): the measured region
// alternates short detailed intervals with long fast-forward gaps. During a
// gap the functional warmer retires instructions with no pipeline modeling
// but drives every history-bearing structure — caches, TLBs, BTB, RAS,
// ITTAGE, direction predictor, prefetchers — through exactly the call
// sequence the detailed front-end would issue in program order, so each
// detailed interval starts from realistically warm state. Per-interval IPC
// feeds a running mean and 95% confidence interval; aggregate counters sum
// the measurement windows.
//
// Gaps have up to three phases: a light prefix warming only the cache and
// TLB tag arrays — the structures whose contents reach back far enough that
// a short warm window cannot rebuild them — then a full warm window of
// Config.SampleWarm instructions immediately before the next interval, and
// the interval itself. SampleWarm = 0 fully warms whole gaps, the classic
// SMARTS configuration.
//
// The exact simulation path is untouched: Run dispatches here only when
// Config.SamplePeriod > 0, and nothing in this file runs otherwise.

import (
	"fmt"
	"io"
	"math"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/mem"
	"tracerebase/internal/sim/snap"
)

// sampleRampDiv: the leading 1/sampleRampDiv of each detailed interval
// refills the pipeline after the gap and is excluded from measurement. The
// ramp must cover filling a ~350-entry ROB and re-establishing memory-level
// parallelism, so it takes half the interval.
const sampleRampDiv = 2

// sampleRNG is the fixed-increment LCG (Knuth's MMIX constants) placing
// each detailed interval at a pseudo-random offset within its period window
// — stratified sampling, which breaks the aliasing a fixed period suffers
// against phase-periodic traces. The stream is seeded with a constant XOR a
// content hash of the warm-up prefix (sampleSalt), so each trace draws its
// own interval schedule: with a shared schedule, traces of one category —
// which share phase structure — would land their intervals on correlated
// phase points and their sampling errors would not cancel in category
// means. Both terms are deterministic functions of the trace, so sampled
// runs stay bit-deterministic and replay/resume walk identical schedules.
func sampleRNG(x uint64) uint64 {
	return x*6364136223846793005 + 1442695040888963407
}

const sampleSeed = 0x9e3779b97f4a7c15

func (p *Pipeline) runSampled(src champtrace.Source, warmup, maxInstructions uint64) (Stats, error) {
	if err := p.la.init(src); err != nil {
		return Stats{}, err
	}
	if err := p.warmPrefix(warmup); err != nil {
		return Stats{}, err
	}
	return p.sampleLoop(maxInstructions)
}

// warmPrefix fast-forwards the n-instruction warm-up region under the
// sampling warm policy: with SampleWarm set, only the trailing SampleWarm
// instructions warm every structure and the earlier ones warm caches and
// TLBs only — the same structure every gap uses, so the first detailed
// interval is conditioned like all later ones. SampleWarm = 0 fully warms
// the whole region. The policy depends only on SampleWarm, never
// SamplePeriod, so the state it builds is fully determined by
// Config.WarmIdentity — the property checkpoint cache keys rely on.
func (p *Pipeline) warmPrefix(n uint64) error {
	w := n
	if p.cfg.SampleWarm > 0 && p.cfg.SampleWarm < n {
		w = p.cfg.SampleWarm
	}
	if _, err := p.light(n - w); err != nil {
		return err
	}
	_, err := p.warm(w)
	return err
}

// sampleLoop alternates detailed intervals and fast-forward gaps from the
// pipeline's current position until limit instructions have retired (0 = no
// limit) or the trace ends. The measured region is tiled into SamplePeriod
// windows; each window holds one SampleDetail interval at a stratified
// pseudo-random offset, reached by skipping the gap and functionally
// warming its last SampleWarm instructions.
func (p *Pipeline) sampleLoop(limit uint64) (Stats, error) {
	if limit == 0 {
		limit = ^uint64(0)
	}
	var (
		acc             Stats
		warmed, skipped uint64
		// Welford accumulator over interval IPCs.
		n        uint64
		mean, m2 float64
	)
	base := p.retired
	rng := uint64(sampleSeed) ^ p.sampleSalt
	span := p.cfg.SamplePeriod - p.cfg.SampleDetail + 1
	for k := uint64(0); !p.la.done; k++ {
		windowStart := base + k*p.cfg.SamplePeriod
		if windowStart >= limit {
			break
		}
		rng = sampleRNG(rng)
		start := windowStart + (rng>>33)%span
		if start > p.retired {
			gap := start - p.retired
			warmWin := p.cfg.SampleWarm
			if warmWin == 0 || warmWin > gap {
				warmWin = gap
			}
			nlight, err := p.light(gap - warmWin)
			if err != nil {
				return Stats{}, err
			}
			skipped += nlight
			nwarm, err := p.warm(warmWin)
			if err != nil {
				return Stats{}, err
			}
			warmed += nwarm
		}
		if p.la.done || p.retired >= limit {
			break
		}
		target := p.retired + p.cfg.SampleDetail
		if target > limit {
			target = limit
		}
		win, err := p.runDetailedInterval(target, p.retired+p.cfg.SampleDetail/sampleRampDiv)
		if err != nil {
			return Stats{}, err
		}
		if win.Cycles > 0 && win.Instructions > 0 {
			acc.add(win)
			ipc := win.IPC()
			n++
			d := ipc - mean
			mean += d / float64(n)
			m2 += d * (ipc - mean)
		}
		p.flushInflight()
	}
	p.st = acc
	p.st.SampleIntervals = n
	p.st.WarmedInstructions = warmed
	p.st.SkippedInstructions = skipped
	p.st.SampleIPCMean = mean
	if n > 1 {
		p.st.SampleCI95 = 1.96 * math.Sqrt(m2/float64(n-1)/float64(n))
	}
	return p.st, nil
}

// runDetailedInterval runs the unmodified detailed cycle loop until target
// instructions have retired, opening the measurement window once rampAt
// retire (pipeline refilled after the gap). It returns the window's stats;
// the pipeline is left mid-flight for flushInflight to drain functionally —
// the interval neither drains nor pays an end-of-trace tail, so its IPC is
// an unbiased steady-state observation.
func (p *Pipeline) runDetailedInterval(target, rampAt uint64) (Stats, error) {
	skip := !p.cfg.NoCycleSkip
	open := false
	for {
		p.nextWake = ^uint64(0)
		p.progressed = false
		p.retire()
		p.issue()
		p.dispatch()
		p.fetch()
		p.bpuFill()
		if skip && !p.progressed && p.nextWake != ^uint64(0) && p.nextWake > p.cycle+1 {
			p.st.SkippedCycles += p.nextWake - p.cycle - 1
			p.st.CycleSkips++
			p.cycle = p.nextWake
		} else {
			p.cycle++
		}
		if !open && p.retired >= rampAt {
			open = true
			p.beginMeasurement()
		}
		if p.retired >= target {
			break
		}
		if p.la.done && p.robCount == 0 && p.ftqLen == 0 && p.decqLen == 0 {
			break
		}
	}
	if !open {
		// Trace ended before the ramp: empty window, discarded by caller.
		p.beginMeasurement()
	}
	p.st.Instructions = p.retired - p.warmupRetired
	p.st.Cycles = p.cycle - p.warmupCycles
	p.collectCacheStats()
	return p.st, nil
}

// flushInflight functionally retires every in-flight uop at the end of a
// detailed interval: unexecuted loads and all unretired stores warm the
// data side in program order (stores write at retire in the detailed model,
// so no in-flight store has touched the L1D yet), then the queues reset.
// Front-end state — predictors, BTB, L1I, instruction prefetchers — needs
// nothing: it was updated at FTQ insertion, which already happened for
// every in-flight uop.
func (p *Pipeline) flushInflight() {
	for s := p.retired + 1; s <= p.seq; s++ {
		u := &p.arena[uint32(s)&p.arenaMask]
		if !u.completed {
			for _, a := range u.loadAddrs[:u.nLoads] {
				if p.tlbs != nil {
					p.tlbs.TranslateD(a)
				}
				p.hier.L1D.WarmAccess(a, u.ip, mem.Read, true, true)
			}
		}
		for _, a := range u.storeAddrs[:u.nStores] {
			p.hier.L1D.WarmAccess(a, u.ip, mem.Write, true, true)
		}
		u.completed = true
		if u.complete < p.cycle {
			u.complete = p.cycle
		}
	}
	p.retired = p.seq
	p.robCount = 0
	p.ftqLen = 0
	p.decqLen = 0
	p.pending = p.pending[:0]
	p.sqHead = 0
	p.sqLen = 0
	p.stalled = false
	for i := range p.regProducer {
		p.regProducer[i] = noref
	}
}

// warm fast-forwards up to n instructions through the functional warmer and
// reports how many it consumed (fewer at end of trace).
func (p *Pipeline) warm(n uint64) (uint64, error) {
	for i := uint64(0); i < n; i++ {
		in, nextIP, err := p.la.pop()
		if err == io.EOF {
			return i, nil
		}
		if err != nil {
			return i, err
		}
		p.warmInstr(in, nextIP)
	}
	return n, nil
}

// warmInstr retires one instruction functionally. The structure-update
// sequence mirrors bpuFill exactly — branch predictors first, then the
// fetch-directed L1I access on a line transition, then the FTQ-insert
// prefetch hook — so over any program prefix the direction predictor, BTB,
// RAS, ITTAGE, and ITLB reach state bit-identical to a detailed run (the
// warming equivalence tests compare snapshot bytes to prove it). Data-side
// accesses issue in program order at one cycle per instruction, a close
// approximation of the detailed model's out-of-order issue.
func (p *Pipeline) warmInstr(in *champtrace.Instruction, nextIP uint64) {
	p.seq++
	p.retired++
	p.cycle++
	p.sampleSalt = (p.sampleSalt ^ in.IP) * 1099511628211
	ip := in.IP
	btype := champtrace.Classify(in, p.cfg.Rules)
	taken := in.IsBranch && in.Taken

	if btype != champtrace.NotBranch {
		if btype == champtrace.BranchConditional {
			p.pred.Predict(ip)
			p.pred.Update(ip, taken)
		}
		predTarget, predKnown := p.tp.Predict(ip, btype)
		var actual uint64
		if taken {
			actual = nextIP
		}
		p.tp.Resolve(ip, btype, taken, predTarget, predKnown, actual, ip+4)
		if p.ipf != nil && taken {
			p.ipfBuf = p.ipf.OnBranch(ip, actual, btype, p.ipfBuf[:0])
			p.issueIPrefetches(p.ipfBuf)
		}
	}

	line := mem.LineAddr(ip)
	if line != p.insertLine {
		p.insertLine = line
		p.curLine = line
		if p.tlbs != nil {
			p.tlbs.TranslateI(line)
		}
		hit := p.hier.L1I.Contains(line)
		p.hier.L1I.WarmAccess(line, 0, mem.Fetch, true, true)
		p.insertLineAt = p.cycle
		p.curLineAt = p.cycle
		if p.ipf != nil {
			p.ipfBuf = p.ipf.OnAccess(line, hit, p.ipfBuf[:0])
			p.issueIPrefetches(p.ipfBuf)
		}
	}
	if p.ipf != nil {
		p.ipfBuf = p.ipf.OnFTQInsert(line, p.ipfBuf[:0])
		p.issueIPrefetches(p.ipfBuf)
	}

	for _, a := range in.SrcMem {
		if a != 0 {
			if p.tlbs != nil {
				p.tlbs.TranslateD(a)
			}
			p.hier.L1D.WarmAccess(a, ip, mem.Read, true, true)
		}
	}
	for _, a := range in.DestMem {
		if a != 0 {
			p.hier.L1D.WarmAccess(a, ip, mem.Write, true, true)
		}
	}
}

// light fast-forwards up to n instructions warming only the memory side —
// caches, TLBs, and data prefetchers — and reports how many it consumed. It
// is the cheap prefix phase of a gap: the structures with the longest
// history — cache and TLB tag arrays, whose contents reach back hundreds of
// thousands of instructions, and the prefetch streams feeding them — are
// kept continuously warm, while the quickly-rewarmed front-end structures
// (branch predictors, BTB, RAS) are left to the full warm window before the
// interval. Data-side prefetchers both train and fill here: in the detailed
// model prefetched lines land in the caches too, and withholding them
// systematically understates interval hit rates on prefetch-friendly
// traces. The instruction side neither trains nor fills (lightInstr skips
// the ipf hooks, so L1I prefetch state waits for the warm window).
func (p *Pipeline) light(n uint64) (uint64, error) {
	for i := uint64(0); i < n; i++ {
		in, _, err := p.la.pop()
		if err == io.EOF {
			return i, nil
		}
		if err != nil {
			return i, err
		}
		p.lightInstr(in)
	}
	return n, nil
}

func (p *Pipeline) lightInstr(in *champtrace.Instruction) {
	p.seq++
	p.retired++
	p.cycle++
	p.sampleSalt = (p.sampleSalt ^ in.IP) * 1099511628211
	line := mem.LineAddr(in.IP)
	if line != p.insertLine {
		p.insertLine = line
		p.curLine = line
		if p.tlbs != nil {
			p.tlbs.TranslateI(line)
		}
		p.hier.L1I.WarmAccess(line, 0, mem.Fetch, false, false)
		p.insertLineAt = p.cycle
		p.curLineAt = p.cycle
	}
	for _, a := range in.SrcMem {
		if a != 0 {
			if p.tlbs != nil {
				p.tlbs.TranslateD(a)
			}
			p.hier.L1D.WarmAccess(a, in.IP, mem.Read, true, true)
		}
	}
	for _, a := range in.DestMem {
		if a != 0 {
			p.hier.L1D.WarmAccess(a, in.IP, mem.Write, true, true)
		}
	}
}

// skip discards up to n instructions — conversion cost only, no state
// updates — and reports how many it consumed. Sampling never skips (stale
// caches bias interval IPC); it exists for checkpoint resumes, where the
// discarded prefix's state arrives via the checkpoint.
func (p *Pipeline) skip(n uint64) (uint64, error) {
	for i := uint64(0); i < n; i++ {
		_, _, err := p.la.pop()
		if err == io.EOF {
			return i, nil
		}
		if err != nil {
			return i, err
		}
		p.seq++
		p.retired++
		p.cycle++
	}
	return n, nil
}

// add accumulates one measurement window into the aggregate.
func (s *Stats) add(o Stats) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.Branches += o.Branches
	s.CondBranches += o.CondBranches
	s.TakenBranches += o.TakenBranches
	s.Mispredicts += o.Mispredicts
	s.DirMispredicts += o.DirMispredicts
	s.TargetMispredicts += o.TargetMispredicts
	s.Returns += o.Returns
	s.ReturnMispredicts += o.ReturnMispredicts
	s.BTBMisses += o.BTBMisses
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1I.add(o.L1I)
	s.L1D.add(o.L1D)
	s.L2.add(o.L2)
	s.LLC.add(o.LLC)
	s.ITLBMisses += o.ITLBMisses
	s.DTLBMisses += o.DTLBMisses
	s.STLBMisses += o.STLBMisses
	s.SkippedCycles += o.SkippedCycles
	s.CycleSkips += o.CycleSkips
}

func (c *CacheStat) add(o CacheStat) {
	c.Accesses += o.Accesses
	c.Misses += o.Misses
	c.UsefulPrefetches += o.UsefulPrefetches
}

// ---- Checkpoints ----

// Checkpoint is a compact serialized snapshot of warmed microarchitectural
// state, taken with the pipeline drained (typically at the warm-up
// boundary of a sampled run). Consumed is the number of trace instructions
// the snapshot reflects; RunFrom skips that many from a fresh source before
// restoring. The fields are exported so checkpoints serialize through the
// result cache's codec.
type Checkpoint struct {
	Consumed uint64
	Cycle    uint64
	State    []byte
}

const snapPipeline = 0xc1e00002

type stateSnapshotter interface {
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader)
}

// Checkpointable reports whether every stateful component of the pipeline
// implements the snapshot codec. The standard configurations all do; it is
// false only for exotic prefetcher implementations without Snapshot
// support.
func (p *Pipeline) Checkpointable() bool {
	if p.cfg.Cores > 1 {
		// The gob-framed snapshot covers exactly one core's state; restoring
		// it into an N-core system would silently mis-restore. Multi-core
		// checkpointing needs a per-core snapshot vector keyed by a warm
		// identity covering the co-schedule, which does not exist yet.
		return false
	}
	if _, ok := p.pred.(stateSnapshotter); !ok {
		return false
	}
	if _, ok := p.tp.(stateSnapshotter); !ok {
		return false
	}
	if p.ipf != nil {
		if _, ok := p.ipf.(stateSnapshotter); !ok {
			return false
		}
	}
	return p.hier.Checkpointable()
}

// Checkpoint serializes the pipeline's warmed state. It requires a drained
// pipeline — no in-flight uops — which holds at warm-up and interval
// boundaries of sampled runs.
func (p *Pipeline) Checkpoint() (Checkpoint, error) {
	if p.robCount != 0 || p.ftqLen != 0 || p.decqLen != 0 || p.sqLen != 0 {
		return Checkpoint{}, fmt.Errorf("cpu: checkpoint requires a drained pipeline")
	}
	if !p.Checkpointable() {
		return Checkpoint{}, fmt.Errorf("cpu: configuration %q has components without snapshot support", p.cfg.Name)
	}
	w := &snap.Writer{}
	w.Mark(snapPipeline)
	w.U64(p.cycle)
	w.U64(p.seq)
	w.U64(p.retired)
	w.U64(p.curLine)
	w.U64(p.curLineAt)
	w.U64(p.insertLine)
	w.U64(p.insertLineAt)
	w.U64(p.sampleSalt)
	p.pred.(stateSnapshotter).Snapshot(w)
	p.tp.(stateSnapshotter).Snapshot(w)
	p.hier.Snapshot(w)
	w.Bool(p.tlbs != nil)
	if p.tlbs != nil {
		p.tlbs.Snapshot(w)
	}
	w.Bool(p.ipf != nil)
	if p.ipf != nil {
		p.ipf.(stateSnapshotter).Snapshot(w)
	}
	return Checkpoint{Consumed: p.retired, Cycle: p.cycle, State: w.Bytes()}, nil
}

// RestoreCheckpoint loads a checkpoint into a freshly constructed pipeline
// whose configuration matches the checkpoint's warm-relevant parameters
// (Config.WarmIdentity); geometry mismatches are detected and reported.
func (p *Pipeline) RestoreCheckpoint(c Checkpoint) error {
	if !p.Checkpointable() {
		return fmt.Errorf("cpu: configuration %q has components without snapshot support", p.cfg.Name)
	}
	r := snap.NewReader(c.State)
	r.Expect(snapPipeline)
	p.cycle = r.U64()
	p.seq = r.U64()
	p.retired = r.U64()
	p.curLine = r.U64()
	p.curLineAt = r.U64()
	p.insertLine = r.U64()
	p.insertLineAt = r.U64()
	p.sampleSalt = r.U64()
	p.pred.(stateSnapshotter).Restore(r)
	p.tp.(stateSnapshotter).Restore(r)
	p.hier.Restore(r)
	hasTLBs := r.Bool()
	if r.Err() == nil && hasTLBs != (p.tlbs != nil) {
		r.Failf("snapshot geometry mismatch: TLB presence")
	}
	if p.tlbs != nil {
		p.tlbs.Restore(r)
	}
	hasIPF := r.Bool()
	if r.Err() == nil && hasIPF != (p.ipf != nil) {
		r.Failf("snapshot geometry mismatch: iprefetcher presence")
	}
	if p.ipf != nil {
		p.ipf.(stateSnapshotter).Restore(r)
	}
	return r.Done()
}

// WarmTo functionally warms the first n instructions of src under the same
// warm policy as a sampled run's warm-up phase and returns the resulting
// checkpoint. The pipeline is left positioned to continue (Run semantics
// from instruction n onward), so a caller can both publish the checkpoint
// and keep simulating.
func (p *Pipeline) WarmTo(src champtrace.Source, n uint64) (Checkpoint, error) {
	if p.cfg.Cores > 1 {
		return Checkpoint{}, fmt.Errorf("cpu: configuration %q has Cores=%d; checkpoints cover single-core state only and would silently mis-restore a multi-core system", p.cfg.Name, p.cfg.Cores)
	}
	if !p.Checkpointable() {
		return Checkpoint{}, fmt.Errorf("cpu: configuration %q has components without snapshot support", p.cfg.Name)
	}
	if err := p.la.init(src); err != nil {
		return Checkpoint{}, err
	}
	if err := p.warmPrefix(n); err != nil {
		return Checkpoint{}, err
	}
	return p.Checkpoint()
}

// RunFrom resumes simulation from a checkpoint: it discards ckpt.Consumed
// instructions from the fresh source (conversion only — the state they
// built is in the checkpoint), restores the warmed state, and simulates the
// remainder exactly as Run would after its warm-up phase. For a sampled
// configuration, RunFrom(src, ckpt, max) with a checkpoint taken at warmup
// returns stats identical to Run(src, warmup, max) — the checkpoint-resume
// conformance oracle proves it.
func (p *Pipeline) RunFrom(src champtrace.Source, ckpt Checkpoint, maxInstructions uint64) (Stats, error) {
	if p.cfg.Cores > 1 {
		return Stats{}, fmt.Errorf("cpu: configuration %q has Cores=%d; checkpoints cover single-core state only and would silently mis-restore a multi-core system", p.cfg.Name, p.cfg.Cores)
	}
	if err := p.la.init(src); err != nil {
		return Stats{}, err
	}
	for i := uint64(0); i < ckpt.Consumed; i++ {
		if _, _, err := p.la.pop(); err == io.EOF {
			return Stats{}, fmt.Errorf("cpu: trace shorter than checkpoint prefix (%d)", ckpt.Consumed)
		} else if err != nil {
			return Stats{}, err
		}
	}
	if err := p.RestoreCheckpoint(ckpt); err != nil {
		return Stats{}, err
	}
	if p.cfg.SamplePeriod > 0 {
		return p.sampleLoop(maxInstructions)
	}
	return p.runExactBody(maxInstructions)
}

// runExactBody is Run's post-warm-up detailed loop for checkpoint resumes
// of exact configurations: measurement starts immediately (the restored
// prefix was the warm-up) and the run ends at maxInstructions total retired
// or trace exhaustion. It mirrors Run's loop body; Run itself is untouched
// so the default path stays byte-identical.
func (p *Pipeline) runExactBody(maxInstructions uint64) (Stats, error) {
	p.measuring = true
	p.beginMeasurement()
	skip := !p.cfg.NoCycleSkip
	for {
		p.pass()
		if skip && !p.progressed && p.nextWake != ^uint64(0) && p.nextWake > p.cycle+1 {
			p.jumpTo(p.nextWake)
		} else {
			p.cycle++
		}
		if maxInstructions > 0 && p.retired >= maxInstructions {
			break
		}
		if p.drained() {
			break
		}
	}
	return p.finalize(), nil
}
