package experiments

import (
	"reflect"
	"testing"

	"tracerebase/internal/expstore"
	"tracerebase/internal/synth"
)

// TestSweepExpStoreTransparency is the engine-level transparency check: a
// sweep with the experiment store enabled — cells appended, then results
// read back out of the store — returns exactly what the plain engine
// returns, a warm store dedups every re-offered cell, and the recorded
// cells answer queries.
func TestSweepExpStoreTransparency(t *testing.T) {
	profiles := synth.PublicSuite()[:3]
	base := SweepConfig{Instructions: 6000, Warmup: 2000, Parallelism: 2,
		Variants: figureVariants(VariantNone, VariantAll)}

	plain, err := RunSweep(profiles, base)
	if err != nil {
		t.Fatal(err)
	}

	store, err := expstore.Open(expstore.Config{Dir: t.TempDir(), BlockCells: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	misses := -1
	cfg := base
	cfg.Exp = store
	cfg.ExpMisses = func(n int) { misses = n }
	backed, err := RunSweep(profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Fatalf("store read-back missed %d cells, want 0", misses)
	}
	if !reflect.DeepEqual(plain, backed) {
		t.Fatal("store-backed sweep diverged from the plain engine")
	}
	st := store.Stats()
	if st.Appends != uint64(len(profiles)*2) || st.DupSkipped != 0 {
		t.Fatalf("appends %d dup %d, want %d appends 0 dups", st.Appends, st.DupSkipped, len(profiles)*2)
	}

	// A warm re-run offers every cell again; the store drops them all.
	if _, err := RunSweep(profiles, cfg); err != nil {
		t.Fatal(err)
	}
	st = store.Stats()
	if st.DupSkipped != uint64(len(profiles)*2) {
		t.Fatalf("warm re-run DupSkipped = %d, want %d", st.DupSkipped, len(profiles)*2)
	}

	// The recorded cells are queryable, and the filtered IPC values match
	// the sweep's own results exactly.
	q, err := expstore.ParseQuery("variant=All_imps trace=" + profiles[0].Name + " stat=count,mean")
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Count != 1 {
		t.Fatalf("query rows %+v, want one single-cell row", res.Rows)
	}
	if got, want := res.Rows[0].Values[1], plain[0].Results[VariantAll].IPC; got != want {
		t.Fatalf("store IPC %v, sweep IPC %v", got, want)
	}
}
