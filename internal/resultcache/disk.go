package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// DiskConfig parameterizes NewDisk.
type DiskConfig struct {
	// Dir is the store root. Entries live under Dir/v<SchemaVersion>/,
	// sharded by the first key byte.
	Dir string
	// MaxBytes bounds the on-disk footprint; least-recently-used entries
	// are evicted past it. <= 0 selects the 1 GiB default.
	MaxBytes int64
}

type diskEntry struct {
	size  int64
	atime int64 // logical LRU clock, not wall time
}

// Disk is the sharded on-disk backend: checksummed self-validating
// records, atomic temp-file+rename writes, and mtime-seeded LRU eviction
// under a size bound. It is the durable tier every other backend sits in
// front of.
type Disk struct {
	dir      string // versioned root: DiskConfig.Dir/v<SchemaVersion>
	maxBytes int64

	metrics tierMetrics

	mu    sync.Mutex
	disk  map[Key]diskEntry
	total int64 // sum of disk entry sizes
	clock int64 // LRU logical time
}

// NewDisk opens (creating if needed) the disk backend rooted at cfg.Dir
// and indexes the entries already on disk. Leftover temp files from
// interrupted writes are removed; files that do not look like entries are
// ignored.
func NewDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	root := filepath.Join(cfg.Dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	d := &Disk{
		dir:      root,
		maxBytes: cfg.MaxBytes,
		disk:     make(map[Key]diskEntry),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// scan builds the disk index. Entry ages are seeded from file mtimes so
// LRU order survives across processes (Chtimes on hits refreshes them).
func (d *Disk) scan() error {
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	type aged struct {
		key   Key
		size  int64
		mtime time.Time
	}
	var found []aged
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		shardDir := filepath.Join(d.dir, sh.Name())
		files, err := os.ReadDir(shardDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "tmp-") {
				// Leftover from an interrupted write: a partial temp file
				// was never renamed into place, so it is not an entry.
				os.Remove(filepath.Join(shardDir, name))
				continue
			}
			if !strings.HasSuffix(name, ".rc") {
				continue
			}
			key, err := ParseKey(strings.TrimSuffix(name, ".rc"))
			if err != nil {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, aged{key, info.Size(), info.ModTime()})
		}
	}
	// Oldest first, so assigned logical times preserve on-disk LRU order.
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].mtime.Before(found[j-1].mtime); j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	for _, e := range found {
		d.clock++
		d.disk[e.key] = diskEntry{size: e.size, atime: d.clock}
		d.total += e.size
	}
	return nil
}

// Name implements Backend.
func (d *Disk) Name() string { return "disk" }

// EntryPath returns where the entry for key lives (or would live) on disk.
func (d *Disk) EntryPath(key Key) string {
	hexKey := key.String()
	return filepath.Join(d.dir, hexKey[:2], hexKey+".rc")
}

// Dir returns the versioned store root.
func (d *Disk) Dir() string { return d.dir }

// Stat implements Backend.
func (d *Disk) Stat() BackendStats { return d.metrics.snapshot(d.Name()) }

// DiskBytes returns the indexed on-disk footprint.
func (d *Disk) DiskBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Get implements Backend: it loads and validates the on-disk record for
// key. Corrupt entries are discarded — counted, removed, reported as a
// miss — never served.
func (d *Disk) Get(key Key) ([]byte, error) {
	start := time.Now()
	path := d.EntryPath(key)
	buf, err := os.ReadFile(path)
	if err != nil {
		d.metrics.observeGet(start, false, 0)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	payload, err := decodeRecord(key, buf)
	if err != nil {
		// Corrupt or undecodable: discard so it is recomputed, never
		// served.
		os.Remove(path)
		d.metrics.observeCorrupt()
		d.mu.Lock()
		if e, ok := d.disk[key]; ok {
			d.total -= e.size
			delete(d.disk, key)
		}
		d.mu.Unlock()
		d.metrics.observeGet(start, false, 0)
		return nil, fmt.Errorf("%w: %s: %v", ErrNotFound, key, err)
	}
	now := time.Now()
	os.Chtimes(path, now, now) // refresh cross-process LRU age; best-effort
	d.mu.Lock()
	d.clock++
	if e, ok := d.disk[key]; ok {
		e.atime = d.clock
		d.disk[key] = e
	} else {
		// Written by another process after our scan.
		d.disk[key] = diskEntry{size: int64(len(buf)), atime: d.clock}
		d.total += int64(len(buf))
	}
	d.mu.Unlock()
	d.metrics.observeGet(start, true, len(buf))
	return payload, nil
}

// Put implements Backend: it frames payload as a self-validating record,
// writes it atomically (temp file + rename, so a crash mid-write never
// leaves a partial entry visible), indexes it, and evicts past the size
// bound.
func (d *Disk) Put(key Key, payload []byte) (err error) {
	start := time.Now()
	rec := encodeRecord(key, payload)
	defer func() { d.metrics.observePut(start, err, len(rec)) }()
	path := d.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}

	d.mu.Lock()
	if e, ok := d.disk[key]; ok {
		d.total -= e.size
	}
	d.clock++
	d.disk[key] = diskEntry{size: int64(len(rec)), atime: d.clock}
	d.total += int64(len(rec))
	evict := d.collectEvictions(key)
	d.mu.Unlock()
	d.metrics.addEvictions(uint64(len(evict)))
	for _, k := range evict {
		os.Remove(d.EntryPath(k))
	}
	return nil
}

// Delete implements Backend.
func (d *Disk) Delete(key Key) error {
	d.metrics.observeDelete()
	d.mu.Lock()
	if e, ok := d.disk[key]; ok {
		d.total -= e.size
		delete(d.disk, key)
	}
	d.mu.Unlock()
	err := os.Remove(d.EntryPath(key))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Close implements Backend (no buffered state to flush).
func (d *Disk) Close() error { return nil }

// collectEvictions (mu held) trims the index to the size bound, oldest
// first, sparing the just-written key, and returns the keys whose files
// the caller must remove.
func (d *Disk) collectEvictions(justWritten Key) []Key {
	var out []Key
	for d.total > d.maxBytes {
		var victim Key
		var victimAge int64
		found := false
		for k, e := range d.disk {
			if k == justWritten {
				continue
			}
			if !found || e.atime < victimAge {
				victim, victimAge, found = k, e.atime, true
			}
		}
		if !found {
			break // only the fresh entry remains; keep it even if oversized
		}
		d.total -= d.disk[victim].size
		delete(d.disk, victim)
		out = append(out, victim)
	}
	return out
}
