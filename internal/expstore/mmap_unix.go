//go:build unix

package expstore

import (
	"os"
	"syscall"
)

// mapFile maps a block file read-only and shared: queries across workers
// and processes serve columns from the same page-cache pages.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
