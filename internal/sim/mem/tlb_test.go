package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Sets: 4, Ways: 2, Latency: 1})
	addr := uint64(0x400123)
	if tlb.Lookup(addr) {
		t.Fatal("cold TLB hit")
	}
	tlb.Insert(addr)
	if !tlb.Lookup(addr) {
		t.Fatal("inserted page missed")
	}
	// Same page, different offset.
	if !tlb.Lookup(addr + 100) {
		t.Fatal("same-page offset missed")
	}
	// Different page.
	if tlb.Lookup(addr + PageSize) {
		t.Fatal("next page hit without insert")
	}
	st := tlb.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	tlb.ResetStats()
	if tlb.Stats() != (TLBStats{}) {
		t.Error("ResetStats incomplete")
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Sets: 1, Ways: 2, Latency: 1})
	a, b, c := uint64(0), uint64(PageSize), uint64(2*PageSize)
	tlb.Insert(a)
	tlb.Insert(b)
	tlb.Lookup(a) // refresh a
	tlb.Insert(c) // evicts b
	if !tlb.Lookup(a) || !tlb.Lookup(c) {
		t.Error("expected a and c resident")
	}
	if tlb.Lookup(b) {
		t.Error("b should have been evicted")
	}
}

func TestTLBValidation(t *testing.T) {
	for _, cfg := range []TLBConfig{
		{Sets: 0, Ways: 1},
		{Sets: 3, Ways: 1},
		{Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTLB accepted %+v", cfg)
				}
			}()
			NewTLB(cfg)
		}()
	}
}

func TestTLBHierarchyLatencies(t *testing.T) {
	h := NewTLBHierarchy(DefaultTLBConfig())
	addr := uint64(0x7000000)
	// Cold: ITLB miss + STLB miss -> STLB latency + walk.
	want := h.STLB.Config().Latency + 120
	if got := h.TranslateI(addr); got != want {
		t.Errorf("cold translation = %d, want %d", got, want)
	}
	// Warm: ITLB hit -> free.
	if got := h.TranslateI(addr); got != 0 {
		t.Errorf("warm translation = %d, want 0", got)
	}
	// DTLB cold but STLB warm (shared): only STLB latency.
	if got := h.TranslateD(addr); got != h.STLB.Config().Latency {
		t.Errorf("DTLB-miss/STLB-hit translation = %d, want %d", got, h.STLB.Config().Latency)
	}
	// DTLB now warm.
	if got := h.TranslateD(addr); got != 0 {
		t.Errorf("warm data translation = %d, want 0", got)
	}
	if h.ITLB.Stats().Misses != 1 || h.DTLB.Stats().Misses != 1 || h.STLB.Stats().Misses != 1 {
		t.Errorf("miss counts: I=%d D=%d S=%d", h.ITLB.Stats().Misses, h.DTLB.Stats().Misses, h.STLB.Stats().Misses)
	}
	h.ResetStats()
	if h.ITLB.Stats().Accesses != 0 || h.STLB.Stats().Accesses != 0 {
		t.Error("ResetStats incomplete")
	}
}

// Property: translation latency is 0 for recently translated pages and the
// most recently used W distinct pages per set always hit.
func TestQuickTLBResidency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tlb := NewTLB(TLBConfig{Name: "T", Sets: 1, Ways: 4, Latency: 1})
		var recent []uint64
		for i := 0; i < 300; i++ {
			page := uint64(r.Intn(12)) * PageSize
			if !tlb.Lookup(page) {
				tlb.Insert(page)
			}
			for j, p := range recent {
				if p == page {
					recent = append(recent[:j], recent[j+1:]...)
					break
				}
			}
			recent = append(recent, page)
			if len(recent) > 4 {
				recent = recent[len(recent)-4:]
			}
			for _, p := range recent {
				if !tlb.Lookup(p) {
					return false
				}
				// Lookup reorders recency among residents; keep the
				// model aligned by treating this as a use.
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
