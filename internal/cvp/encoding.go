package cvp

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// errEOF is the sentinel returned by sources when the stream is exhausted.
var errEOF = io.EOF

// The binary record layout follows the CVP-1 trace kit:
//
//	pc          uint64
//	class       uint8
//	if load/store:
//	    effAddr uint64
//	    memSize uint8
//	if branch:
//	    taken   uint8
//	    if taken: target uint64
//	nSrc        uint8
//	src[nSrc]   uint8 each
//	nDst        uint8
//	dst[nDst]   uint8 each
//	val[nDst]   uint64 each
//
// All integers are little-endian.

// Writer encodes instructions into the CVP-1 binary format.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   uint64
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

// Write encodes one instruction. The instruction is validated first.
func (tw *Writer) Write(in *Instruction) error {
	if err := in.Validate(); err != nil {
		return err
	}
	b := tw.buf[:0]
	b = binary.LittleEndian.AppendUint64(b, in.PC)
	b = append(b, byte(in.Class))
	if in.Class.IsMem() {
		b = binary.LittleEndian.AppendUint64(b, in.EffAddr)
		b = append(b, in.MemSize)
	}
	if in.Class.IsBranch() {
		if in.Taken {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint64(b, in.Target)
		} else {
			b = append(b, 0)
		}
	}
	b = append(b, byte(len(in.SrcRegs)))
	b = append(b, in.SrcRegs...)
	b = append(b, byte(len(in.DstRegs)))
	b = append(b, in.DstRegs...)
	for _, v := range in.DstValues {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	tw.buf = b[:0]
	if _, err := tw.w.Write(b); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of instructions written so far.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush flushes buffered output to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Reader decodes instructions from the CVP-1 binary format. It implements
// Source.
type Reader struct {
	r   *bufio.Reader
	n   uint64
	tmp [8]byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) readU8() (uint8, error) { return tr.r.ReadByte() }

func (tr *Reader) readU64() (uint64, error) {
	if _, err := io.ReadFull(tr.r, tr.tmp[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(tr.tmp[:]), nil
}

// Next decodes the next instruction, returning io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF for a truncated record.
//
// Every record Next returns satisfies Validate, so decoding is symmetric
// with Writer.Write: a decoded record can always be re-encoded, and
// decode→encode→decode is a fixed point (the fuzzing invariant the
// conformance suite checks). Corrupt input — invalid classes, oversized
// register counts, out-of-range register numbers, impossible access sizes —
// is rejected with a descriptive error, never silently accepted.
func (tr *Reader) Next() (*Instruction, error) {
	pc, err := tr.readU64()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("cvp: truncated record after %d instructions: %w", tr.n, err)
		}
		return nil, err
	}
	in := &Instruction{PC: pc}
	cls, err := tr.readU8()
	if err != nil {
		return nil, truncated(tr.n, err)
	}
	if int(cls) >= NumClasses {
		return nil, fmt.Errorf("cvp: invalid instruction class %d at record %d", cls, tr.n)
	}
	in.Class = InstClass(cls)
	if in.Class.IsMem() {
		if in.EffAddr, err = tr.readU64(); err != nil {
			return nil, truncated(tr.n, err)
		}
		if in.MemSize, err = tr.readU8(); err != nil {
			return nil, truncated(tr.n, err)
		}
		switch in.MemSize {
		case 1, 2, 4, 8, 16, 64:
		default:
			return nil, fmt.Errorf("cvp: record %d has invalid access size %d", tr.n, in.MemSize)
		}
	}
	if in.Class.IsBranch() {
		t, err := tr.readU8()
		if err != nil {
			return nil, truncated(tr.n, err)
		}
		in.Taken = t != 0
		if in.Taken {
			if in.Target, err = tr.readU64(); err != nil {
				return nil, truncated(tr.n, err)
			}
		}
	}
	nSrc, err := tr.readU8()
	if err != nil {
		return nil, truncated(tr.n, err)
	}
	if int(nSrc) > MaxSrcRegs {
		return nil, fmt.Errorf("cvp: record %d has %d source registers (max %d)", tr.n, nSrc, MaxSrcRegs)
	}
	if nSrc > 0 {
		in.SrcRegs = make([]uint8, nSrc)
		if _, err := io.ReadFull(tr.r, in.SrcRegs); err != nil {
			return nil, truncated(tr.n, err)
		}
		for _, r := range in.SrcRegs {
			if r >= NumRegs {
				return nil, fmt.Errorf("cvp: record %d has source register %d out of range (max %d)", tr.n, r, NumRegs-1)
			}
		}
	}
	nDst, err := tr.readU8()
	if err != nil {
		return nil, truncated(tr.n, err)
	}
	if int(nDst) > MaxDstRegs {
		return nil, fmt.Errorf("cvp: record %d has %d destination registers (max %d)", tr.n, nDst, MaxDstRegs)
	}
	if nDst > 0 {
		in.DstRegs = make([]uint8, nDst)
		if _, err := io.ReadFull(tr.r, in.DstRegs); err != nil {
			return nil, truncated(tr.n, err)
		}
		for _, r := range in.DstRegs {
			if r >= NumRegs {
				return nil, fmt.Errorf("cvp: record %d has destination register %d out of range (max %d)", tr.n, r, NumRegs-1)
			}
		}
		in.DstValues = make([]uint64, nDst)
		for i := range in.DstValues {
			if in.DstValues[i], err = tr.readU64(); err != nil {
				return nil, truncated(tr.n, err)
			}
		}
	}
	tr.n++
	return in, nil
}

// Count returns the number of instructions decoded so far.
func (tr *Reader) Count() uint64 { return tr.n }

func truncated(n uint64, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("cvp: truncated record after %d instructions: %w", n, io.ErrUnexpectedEOF)
	}
	return err
}

// OpenReader wraps r with transparent gzip decompression when name carries a
// ".gz" suffix, mirroring how the CVP-1 traces are distributed.
func OpenReader(name string, r io.Reader) (*Reader, io.Closer, error) {
	if strings.HasSuffix(name, ".gz") {
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, nil, fmt.Errorf("cvp: open %s: %w", name, err)
		}
		return NewReader(zr), zr, nil
	}
	return NewReader(r), io.NopCloser(r), nil
}

// ReadAll decodes the full stream into memory.
func ReadAll(src Source) ([]*Instruction, error) {
	var out []*Instruction
	for {
		in, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
}
