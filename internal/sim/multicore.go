// Multi-core facade: N-core lockstep simulation over a shared LLC.
//
// A multi-core configuration is an ordinary Config with Cores > 1 (plus,
// optionally, Hierarchy.LLC.Policy = "shared-srrip" and MemBandwidth for
// the shared-level models). Because Identity() renders the full field set,
// multi-core cells automatically key disjointly from single-core ones in
// the result cache.

package sim

import (
	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/cpu"
)

// RunMulti simulates len(srcs) sources in lockstep on cfg.Cores cores over
// a shared memory hierarchy. srcs[i] == nil marks core i idle (it never
// steps). warmup and maxInstructions apply per core. The returned slice
// holds one Stats per core, idle cores all-zero.
func RunMulti(srcs []champtrace.Source, cfg Config, warmup, maxInstructions uint64) ([]Stats, error) {
	m, err := cpu.NewMulti(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(srcs, warmup, maxInstructions)
}

// AggregateStats summarizes per-core results as system throughput: measured
// instructions summed across cores over the longest per-core measured cycle
// count, so IPC() is the rack-style aggregate (total work over the window
// in which it was done). Counter fields other than Instructions/Cycles are
// summed.
func AggregateStats(cores []Stats) Stats {
	var agg Stats
	for _, s := range cores {
		instr, cyc := agg.Instructions, agg.Cycles
		aggregateAdd(&agg, s)
		agg.Instructions = instr + s.Instructions
		if cyc > s.Cycles {
			agg.Cycles = cyc
		} else {
			agg.Cycles = s.Cycles
		}
	}
	return agg
}

// aggregateAdd sums the event counters of o into s (Instructions/Cycles are
// overwritten by the caller's sum/max convention).
func aggregateAdd(s *Stats, o Stats) {
	s.Branches += o.Branches
	s.CondBranches += o.CondBranches
	s.TakenBranches += o.TakenBranches
	s.Mispredicts += o.Mispredicts
	s.DirMispredicts += o.DirMispredicts
	s.TargetMispredicts += o.TargetMispredicts
	s.Returns += o.Returns
	s.ReturnMispredicts += o.ReturnMispredicts
	s.BTBMisses += o.BTBMisses
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1I.Accesses += o.L1I.Accesses
	s.L1I.Misses += o.L1I.Misses
	s.L1I.UsefulPrefetches += o.L1I.UsefulPrefetches
	s.L1D.Accesses += o.L1D.Accesses
	s.L1D.Misses += o.L1D.Misses
	s.L1D.UsefulPrefetches += o.L1D.UsefulPrefetches
	s.L2.Accesses += o.L2.Accesses
	s.L2.Misses += o.L2.Misses
	s.L2.UsefulPrefetches += o.L2.UsefulPrefetches
	s.LLC.Accesses += o.LLC.Accesses
	s.LLC.Misses += o.LLC.Misses
	s.LLC.UsefulPrefetches += o.LLC.UsefulPrefetches
	s.ITLBMisses += o.ITLBMisses
	s.DTLBMisses += o.DTLBMisses
	s.STLBMisses += o.STLBMisses
	s.SkippedCycles += o.SkippedCycles
	s.CycleSkips += o.CycleSkips
}
