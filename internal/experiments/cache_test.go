package experiments

import (
	"reflect"
	"strings"
	"testing"

	"tracerebase/internal/core"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

func openTestCache(t *testing.T) *ResultCache {
	t.Helper()
	c, err := OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSweepConfigValidation: nonsensical configurations are rejected
// early with a clear error instead of silently producing empty
// measurement regions.
func TestSweepConfigValidation(t *testing.T) {
	profiles := []synth.Profile{synth.PublicProfile(synth.ComputeInt, 2)}
	cases := []struct {
		name string
		cfg  SweepConfig
		want string
	}{
		{"warmup == instructions", SweepConfig{Instructions: 1000, Warmup: 1000}, "empty measurement region"},
		{"warmup > instructions", SweepConfig{Instructions: 1000, Warmup: 5000}, "empty measurement region"},
		{"warmup >= defaulted instructions", SweepConfig{Warmup: 150000}, "empty measurement region"},
		{"negative parallelism", SweepConfig{Instructions: 1000, Parallelism: -1}, "negative parallelism"},
		{"negative instructions", SweepConfig{Instructions: -5}, "negative instruction count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunSweep(profiles, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RunSweep err = %v, want %q", err, tc.want)
			}
			if _, err := RunTrace(profiles[0], tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RunTrace err = %v, want %q", err, tc.want)
			}
		})
	}
	// The valid default shape still fills and runs.
	cfg := SweepConfig{Instructions: 3000, Warmup: 500, Parallelism: 2, Variants: figureVariants(VariantNone)}
	if _, err := RunSweep(profiles, cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestRunSweepCachedEquivalence: a cached sweep — cold and warm, across
// fresh cache instances over one directory — returns results deeply equal
// to the uncached engine, and the warm pass computes nothing.
func TestRunSweepCachedEquivalence(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 2),
		synth.PublicProfile(synth.Crypto, 1),
	}
	cfg := SweepConfig{Instructions: 3000, Warmup: 500, Parallelism: 2,
		Variants: figureVariants(VariantNone, VariantBranch, VariantAll)}

	want, err := RunSweep(profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	coldCache, err := OpenResultCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := cfg
	coldCfg.Cache = coldCache
	cold, err := RunSweep(profiles, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Fatal("cold cached sweep differs from uncached sweep")
	}

	warmCache, err := OpenResultCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Cache = warmCache
	warm, err := RunSweep(profiles, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("warm cached sweep differs from uncached sweep")
	}
	jobs := uint64(len(profiles) * len(cfg.Variants))
	if s := warmCache.Stats(); s.Computes != 0 || s.Hits != jobs {
		t.Fatalf("warm sweep stats %+v, want 0 computes and %d hits", s, jobs)
	}
}

// TestRunSweepCachedMemoryLayer: within one process, repeating a sweep
// over the same cache instance is served entirely from memory.
func TestRunSweepCachedMemoryLayer(t *testing.T) {
	profiles := []synth.Profile{synth.PublicProfile(synth.Server, 2)}
	cfg := SweepConfig{Instructions: 2000, Warmup: 400, Parallelism: 2,
		Variants: figureVariants(VariantNone, VariantAll)}
	cache := openTestCache(t)
	cfg.Cache = cache
	first, err := RunSweep(profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSweep(profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated sweep differs")
	}
	s := cache.Stats()
	jobs := uint64(len(cfg.Variants))
	if s.Computes != jobs || s.MemHits != jobs || s.DiskHits != 0 {
		t.Fatalf("stats %+v: want %d computes then %d memory hits", s, jobs, jobs)
	}
}

// TestCachedGenerationFailure: cached cells survive even when the profile
// cannot be generated — and an uncachable (failing) trace still reports
// its generation error.
func TestCachedGenerationFailure(t *testing.T) {
	bad := synth.Profile{Name: "bad"}
	cfg := SweepConfig{Instructions: 2000, Warmup: 400, Parallelism: 2,
		Variants: figureVariants(VariantNone, VariantAll)}
	cfg.Cache = openTestCache(t)
	res, err := RunSweep([]synth.Profile{bad}, cfg)
	if err == nil || !strings.Contains(err.Error(), "generate bad") {
		t.Fatalf("err = %v, want generation failure", err)
	}
	if len(res) != 1 || len(res[0].Results) != 0 {
		t.Fatalf("failed trace should deliver no results: %+v", res)
	}
	// The failure must not have been cached: a second run fails again.
	if _, err := RunSweep([]synth.Profile{bad}, cfg); err == nil {
		t.Fatal("generation failure was served from cache")
	}
}

// TestCacheKeySensitivity: the key must change when any keyed input
// changes, and must not change when nothing does.
func TestCacheKeySensitivity(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 2)
	opts := core.OptionsAll()
	cfg := DevelopConfigFor(opts)
	base := CacheKey(p, opts, cfg, 150000, 50000).Key

	if again := CacheKey(p, opts, cfg, 150000, 50000).Key; again != base {
		t.Fatal("identical inputs produced different keys")
	}

	p2 := p
	p2.Seed++
	otherOpts := core.OptionsMemory()
	ipc1 := sim.ConfigIPC1("epi", rulesFor(opts))
	tweaked := cfg
	tweaked.ROBSize++
	variants := map[string]string{
		"profile seed": CacheKey(p2, opts, cfg, 150000, 50000).Key,
		"options":      CacheKey(p, otherOpts, DevelopConfigFor(otherOpts), 150000, 50000).Key,
		"sim model":    CacheKey(p, opts, ipc1, 150000, 50000).Key,
		"config param": CacheKey(p, opts, tweaked, 150000, 50000).Key,
		"instructions": CacheKey(p, opts, cfg, 100000, 50000).Key,
		"warmup":       CacheKey(p, opts, cfg, 150000, 40000).Key,
	}
	seen := map[string]string{base: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s key collides with %s", name, prev)
		}
		seen[k] = name
	}
	// Component hashes isolate what changed.
	i1 := CacheKey(p, opts, cfg, 150000, 50000)
	i2 := CacheKey(p2, opts, cfg, 150000, 50000)
	if i1.ProfileHash == i2.ProfileHash {
		t.Fatal("profile hash insensitive to seed")
	}
	if i1.OptionsHash != i2.OptionsHash || i1.ConfigHash != i2.ConfigHash {
		t.Fatal("unrelated component hashes changed")
	}
}

// TestTable3Cached: Table3's cache integration returns results identical
// to the uncached path, warm from a fresh instance with zero computes.
func TestTable3Cached(t *testing.T) {
	suite := []synth.IPC1Trace{synth.IPC1Suite()[0]}
	cfg := SweepConfig{Instructions: 2000, Warmup: 400, Parallelism: 1}

	want, err := Table3(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	coldCache, err := OpenResultCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldCfg := cfg
	coldCfg.Cache = coldCache
	cold, err := Table3(coldCfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Fatal("cold cached Table3 differs from uncached")
	}
	warmCache, err := OpenResultCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Cache = warmCache
	warm, err := Table3(warmCfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("warm cached Table3 differs from uncached")
	}
	// 2 sets x (1 baseline + 8 prefetchers) per trace.
	jobs := uint64(len(suite) * 2 * (1 + len(Table3Prefetchers)))
	if s := warmCache.Stats(); s.Computes != 0 || s.Hits != jobs {
		t.Fatalf("warm Table3 stats %+v, want 0 computes and %d hits", s, jobs)
	}
}
