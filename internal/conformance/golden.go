package conformance

import (
	"bytes"
	"crypto/md5"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

//go:generate go run ./gen -dir testdata/golden

// The golden corpus: small real-format CVP-1 and ChampSim binary traces
// checked into testdata/golden together with manifest.json, which records
// the md5 of every file, the md5 and converter statistics of each variant's
// converted output, and the key simulator counters of the No_imp and
// All_imps simulations. The corpus is embedded so `rebase -selftest`
// verifies it without any filesystem dependency; regenerate with
// `go generate ./internal/conformance` after an intentional behaviour
// change (see EXPERIMENTS.md for what counts as an expected diff).
//
//go:embed testdata/golden
var embeddedGolden embed.FS

// Golden returns the embedded golden corpus as a file system rooted at the
// corpus directory.
func Golden() fs.FS {
	sub, err := fs.Sub(embeddedGolden, "testdata/golden")
	if err != nil {
		panic("conformance: embedded golden corpus missing: " + err.Error())
	}
	return sub
}

// goldenInstructions and goldenWarmup size the corpus traces: long enough
// to exercise every conversion path and produce stable simulator counters,
// short enough that four binary traces stay well under a megabyte.
const (
	goldenInstructions = 1000
	goldenWarmup       = 250
)

// The corpus's sampled-mode pins cannot run on the 1000-instruction
// checked-in traces: a detailed interval must outlast the pipeline-refill
// ramp of a 352-entry ROB, and the corpus profiles have heavy-tailed cycle
// distributions (rare long-stall bursts carry a large share of total
// cycles), so the sampling error converges slowly — per-trace error only
// drops under 2% near a thousand measured intervals. The pins therefore run
// on multi-million-instruction traces regenerated from the same four
// profiles at verification time — synth determinism is itself a pinned
// corpus invariant, so the regenerated stream is as stable as a checked-in
// binary. The manifest records all of it so the pins are self-describing.
// maxGoldenSampleErrPct bounds the sampled-vs-exact IPC error per corpus
// trace — one trace per workload category, so these are the per-category
// error bounds — and WriteGolden refuses to pin a corpus that violates it:
// a regression that pushes sampling error past the bound cannot be waved
// through by regenerating the manifest.
const (
	goldenSampleInstructions = 2400000
	goldenSampleWarmup       = 25000
	goldenSamplePeriod       = 2500
	goldenSampleDetail       = 2000
	goldenSampleWarm         = 400
	maxGoldenSampleErrPct    = 2.0
)

// goldenProfiles returns the four corpus traces, one per CVP-1 workload
// category; srv_3 carries the BLR-X30 dispatch idiom that triggers the
// call-stack bug, so the corpus pins both branch classifications.
func goldenProfiles() []synth.Profile {
	return []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 0),
		synth.PublicProfile(synth.ComputeFP, 0),
		synth.PublicProfile(synth.Crypto, 0),
		synth.PublicProfile(synth.Server, 3),
	}
}

// GoldenSim is the simulator-counter fingerprint of one golden simulation.
type GoldenSim struct {
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	Mispredicts  uint64 `json:"mispredicts"`
	BTBMisses    uint64 `json:"btb_misses"`
	Returns      uint64 `json:"returns"`
	L1IMisses    uint64 `json:"l1i_misses"`
	L1DMisses    uint64 `json:"l1d_misses"`
	LLCMisses    uint64 `json:"llc_misses"`
}

// GoldenSampled is the sampled-mode fingerprint of one golden simulation:
// the exact counters of the deterministic sampled run plus the
// sampled-vs-exact IPC error measured when the corpus was generated.
type GoldenSampled struct {
	GoldenSim
	Intervals uint64 `json:"intervals"`
	// IPCErrPct is 100*|sampled-exact|/exact, rounded to 4 decimals. It is
	// bounded by the manifest's MaxSampleErrPct at generation and at every
	// verification.
	IPCErrPct float64 `json:"ipc_err_pct"`
}

// GoldenVariant fingerprints one variant's conversion of a golden trace.
type GoldenVariant struct {
	Records uint64 `json:"records"`
	MD5     string `json:"md5"`
	ConvIn  uint64 `json:"conv_in"`
	ConvOut uint64 `json:"conv_out"`
}

// GoldenTrace is one corpus entry.
type GoldenTrace struct {
	Name         string                   `json:"name"`
	Instructions int                      `json:"instructions"`
	CVPFile      string                   `json:"cvp_file"`
	CVPMD5       string                   `json:"cvp_md5"`
	ChampFile    string                   `json:"champ_file"` // All_imps conversion, ChampSim format
	ChampMD5     string                   `json:"champ_md5"`
	Variants     map[string]GoldenVariant `json:"variants"`
	Sim          map[string]GoldenSim     `json:"sim"`     // keyed by variant name
	Sampled      map[string]GoldenSampled `json:"sampled"` // keyed by variant name
}

// Manifest is the schema of testdata/golden/manifest.json.
type Manifest struct {
	Comment      string `json:"comment"`
	Instructions int    `json:"instructions"`
	Warmup       uint64 `json:"warmup"`
	// Run shape, sampling parameters, and error bound of the corpus's
	// sampled pins, which run on regenerated SampleInstructions-long
	// traces (see the constants above).
	SampleInstructions int           `json:"sample_instructions"`
	SampleWarmup       uint64        `json:"sample_warmup"`
	SamplePeriod       uint64        `json:"sample_period"`
	SampleDetail       uint64        `json:"sample_detail"`
	SampleWarm         uint64        `json:"sample_warm"`
	MaxSampleErrPct    float64       `json:"max_sample_err_pct"`
	Traces             []GoldenTrace `json:"traces"`
	// Multi pins per-core and aggregate counters for fixed co-schedules on
	// the N-core shared-LLC model (see goldenMultiScenarios).
	Multi []GoldenMulti `json:"multi"`
}

// LoadManifest reads manifest.json from the corpus file system.
func LoadManifest(fsys fs.FS) (*Manifest, error) {
	data, err := fs.ReadFile(fsys, "manifest.json")
	if err != nil {
		return nil, fmt.Errorf("golden manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("golden manifest: %w", err)
	}
	return &m, nil
}

func md5hex(b []byte) string {
	sum := md5.Sum(b)
	return hex.EncodeToString(sum[:])
}

// goldenSampledCfg is the develop model in sampled mode at the corpus's
// sampling parameters.
func goldenSampledCfg(opts core.Options) sim.Config {
	cfg := develCfg(opts)
	cfg.SamplePeriod = goldenSamplePeriod
	cfg.SampleDetail = goldenSampleDetail
	cfg.SampleWarm = goldenSampleWarm
	return cfg
}

// goldenSampleErrPct is the sampled-vs-exact relative IPC error in percent,
// rounded to 4 decimals so the manifest value survives a JSON round trip.
func goldenSampleErrPct(sampled, exact float64) float64 {
	if exact == 0 {
		return 0
	}
	return math.Round(math.Abs(sampled-exact)/exact*1e6) / 1e4
}

// goldenSimFrom extracts the pinned counters from full simulator stats.
func goldenSimFrom(st sim.Stats) GoldenSim {
	return GoldenSim{
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		Mispredicts:  st.Mispredicts,
		BTBMisses:    st.BTBMisses,
		Returns:      st.Returns,
		L1IMisses:    st.L1I.Misses,
		L1DMisses:    st.L1D.Misses,
		LLCMisses:    st.LLC.Misses,
	}
}

// diff returns one pointed line per counter that differs from got.
func (g GoldenSim) diff(got GoldenSim) []string {
	var out []string
	add := func(name string, want, have uint64) {
		if want != have {
			out = append(out, fmt.Sprintf("%s: golden %d, got %d", name, want, have))
		}
	}
	add("instructions", g.Instructions, got.Instructions)
	add("cycles", g.Cycles, got.Cycles)
	add("mispredicts", g.Mispredicts, got.Mispredicts)
	add("btb_misses", g.BTBMisses, got.BTBMisses)
	add("returns", g.Returns, got.Returns)
	add("l1i_misses", g.L1IMisses, got.L1IMisses)
	add("l1d_misses", g.L1DMisses, got.L1DMisses)
	add("llc_misses", g.LLCMisses, got.LLCMisses)
	return out
}

// encodeChamp renders converted records as ChampSim trace bytes.
func encodeChamp(recs []champtrace.Instruction) []byte {
	out := make([]byte, 0, len(recs)*champtrace.RecordSize)
	for i := range recs {
		out = recs[i].Encode(out)
	}
	return out
}

// buildGoldenTrace computes the full fingerprint of one profile: the
// encoded CVP trace, every variant's conversion, and the pinned sims.
func buildGoldenTrace(p synth.Profile) (GoldenTrace, []byte, []byte, error) {
	gt := GoldenTrace{
		Name:         p.Name,
		Instructions: goldenInstructions,
		CVPFile:      p.Name + ".cvp",
		ChampFile:    p.Name + ".all_imps.champ",
		Variants:     make(map[string]GoldenVariant),
		Sim:          make(map[string]GoldenSim),
		Sampled:      make(map[string]GoldenSampled),
	}
	instrs, err := p.GenerateBatch(goldenInstructions)
	if err != nil {
		return gt, nil, nil, err
	}
	sampleInstrs, err := p.GenerateBatch(goldenSampleInstructions)
	if err != nil {
		return gt, nil, nil, err
	}
	var cvpBuf bytes.Buffer
	w := cvp.NewWriter(&cvpBuf)
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			return gt, nil, nil, fmt.Errorf("%s: encode: %w", p.Name, err)
		}
	}
	if err := w.Flush(); err != nil {
		return gt, nil, nil, err
	}
	gt.CVPMD5 = md5hex(cvpBuf.Bytes())

	var champBytes []byte
	for _, v := range experiments.Variants() {
		recs, stats, err := core.ConvertAllBatch(cvp.NewValuesSource(instrs), v.Opts)
		if err != nil {
			return gt, nil, nil, fmt.Errorf("%s/%s: convert: %w", p.Name, v.Name, err)
		}
		enc := encodeChamp(recs)
		gt.Variants[v.Name] = GoldenVariant{
			Records: uint64(len(recs)),
			MD5:     md5hex(enc),
			ConvIn:  stats.In,
			ConvOut: stats.Out,
		}
		if v.Name == experiments.VariantAll {
			champBytes = enc
			gt.ChampMD5 = gt.Variants[v.Name].MD5
		}
		if v.Name == experiments.VariantNone || v.Name == experiments.VariantAll {
			st, err := simulate(instrs, v.Opts, develCfg(v.Opts), goldenWarmup)
			if err != nil {
				return gt, nil, nil, fmt.Errorf("%s/%s: simulate: %w", p.Name, v.Name, err)
			}
			gt.Sim[v.Name] = goldenSimFrom(st)

			est, err := simulate(sampleInstrs, v.Opts, develCfg(v.Opts), goldenSampleWarmup)
			if err != nil {
				return gt, nil, nil, fmt.Errorf("%s/%s: exact reference simulate: %w", p.Name, v.Name, err)
			}
			sst, err := simulate(sampleInstrs, v.Opts, goldenSampledCfg(v.Opts), goldenSampleWarmup)
			if err != nil {
				return gt, nil, nil, fmt.Errorf("%s/%s: sampled simulate: %w", p.Name, v.Name, err)
			}
			errPct := goldenSampleErrPct(sst.IPC(), est.IPC())
			if errPct > maxGoldenSampleErrPct {
				return gt, nil, nil, fmt.Errorf(
					"%s/%s: sampled IPC error %.4f%% exceeds the %.1f%% corpus bound (sampled %.4f vs exact %.4f) — fix the sampling engine or retune the corpus sampling parameters before regenerating",
					p.Name, v.Name, errPct, maxGoldenSampleErrPct, sst.IPC(), est.IPC())
			}
			gt.Sampled[v.Name] = GoldenSampled{
				GoldenSim: goldenSimFrom(sst),
				Intervals: sst.SampleIntervals,
				IPCErrPct: errPct,
			}
		}
	}
	return gt, cvpBuf.Bytes(), champBytes, nil
}

// WriteGolden regenerates the corpus into dir. It is the implementation of
// `go generate ./internal/conformance`.
func WriteGolden(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := Manifest{
		Comment: "Golden conformance corpus. Regenerate with: go generate ./internal/conformance " +
			"(see EXPERIMENTS.md for what counts as an expected diff).",
		Instructions:       goldenInstructions,
		Warmup:             goldenWarmup,
		SampleInstructions: goldenSampleInstructions,
		SampleWarmup:       goldenSampleWarmup,
		SamplePeriod:       goldenSamplePeriod,
		SampleDetail:       goldenSampleDetail,
		SampleWarm:         goldenSampleWarm,
		MaxSampleErrPct:    maxGoldenSampleErrPct,
	}
	for _, p := range goldenProfiles() {
		gt, cvpBytes, champBytes, err := buildGoldenTrace(p)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, gt.CVPFile), cvpBytes, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, gt.ChampFile), champBytes, 0o644); err != nil {
			return err
		}
		m.Traces = append(m.Traces, gt)
	}
	for _, sc := range goldenMultiScenarios() {
		gm, err := buildGoldenMulti(sc.Spec, sc.Cores)
		if err != nil {
			return err
		}
		m.Multi = append(m.Multi, gm)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}

// VerifyGolden checks the corpus in fsys against its manifest: file md5s,
// decodability of the checked-in binaries, every variant's converted md5
// and converter statistics, and the pinned simulator counters. Failure
// messages point at the first divergence.
func VerifyGolden(fsys fs.FS, r *Report) error {
	m, err := LoadManifest(fsys)
	if err != nil {
		return err
	}
	if len(m.Traces) == 0 {
		return fmt.Errorf("golden manifest lists no traces")
	}
	for _, gt := range m.Traces {
		if err := verifyGoldenTrace(fsys, m, gt); err != nil {
			return fmt.Errorf("golden %s: %w", gt.Name, err)
		}
		if r != nil {
			r.okf("golden %s: %d variants, %d pinned sims", gt.Name, len(gt.Variants), len(gt.Sim))
		}
	}
	if len(m.Multi) == 0 {
		return fmt.Errorf("golden manifest lists no multi-core pins — regenerate with `go generate ./internal/conformance`")
	}
	for _, gm := range m.Multi {
		if err := verifyGoldenMulti(gm); err != nil {
			return fmt.Errorf("golden multi %s: %w", gm.Scenario, err)
		}
		if r != nil {
			r.okf("golden multi %s: %d cores (%s, mem-bandwidth %d), %d pinned sims",
				gm.Scenario, gm.Cores, gm.LLCPolicy, gm.MemBandwidth, len(gm.Sim))
		}
	}
	return nil
}

func verifyGoldenTrace(fsys fs.FS, m *Manifest, gt GoldenTrace) error {
	raw, err := fs.ReadFile(fsys, gt.CVPFile)
	if err != nil {
		return err
	}
	if got := md5hex(raw); got != gt.CVPMD5 {
		return fmt.Errorf("%s: md5 %s does not match manifest %s — the trace file was modified without regenerating the manifest",
			gt.CVPFile, got, gt.CVPMD5)
	}

	// Decode the checked-in binary through the hardened reader.
	instrPtrs, err := cvp.ReadAll(cvp.NewReader(bytes.NewReader(raw)))
	if err != nil {
		return fmt.Errorf("%s: decode: %w", gt.CVPFile, err)
	}
	if len(instrPtrs) != gt.Instructions {
		return fmt.Errorf("%s: decoded %d instructions, manifest says %d", gt.CVPFile, len(instrPtrs), gt.Instructions)
	}
	instrs := make([]cvp.Instruction, len(instrPtrs))
	for i, in := range instrPtrs {
		instrs[i] = *in
	}

	// The corpus must still be what the generator produces: synth drift
	// invalidates the checked-in traces even when decoder and converter
	// are untouched.
	if p, ok := synth.FindPublic(gt.Name); ok {
		fresh, err := p.GenerateBatch(gt.Instructions)
		if err != nil {
			return err
		}
		for i := range fresh {
			if i >= len(instrs) || !CVPEqual(&fresh[i], &instrs[i]) {
				return fmt.Errorf("%s: synth drift: freshly generated trace diverges from the checked-in corpus at instruction %d — regenerate with `go generate ./internal/conformance` if the generator change is intentional", gt.Name, i)
			}
		}
	}

	// The sampled pins re-run on a regenerated SampleInstructions-long
	// trace; generate it once for both pinned variants.
	var sampleInstrs []cvp.Instruction
	if len(gt.Sampled) > 0 && m.SampleInstructions > 0 {
		p, ok := synth.FindPublic(gt.Name)
		if !ok {
			return fmt.Errorf("no public profile named %s for the sampled pins", gt.Name)
		}
		var err error
		sampleInstrs, err = p.GenerateBatch(m.SampleInstructions)
		if err != nil {
			return err
		}
	}

	for _, v := range experiments.Variants() {
		want, ok := gt.Variants[v.Name]
		if !ok {
			return fmt.Errorf("manifest lacks variant %s", v.Name)
		}
		recs, stats, err := core.ConvertAllBatch(cvp.NewValuesSource(instrs), v.Opts)
		if err != nil {
			return fmt.Errorf("convert %s: %w", v.Name, err)
		}
		if uint64(len(recs)) != want.Records {
			return fmt.Errorf("variant %s: converted to %d records, golden %d", v.Name, len(recs), want.Records)
		}
		if stats.In != want.ConvIn || stats.Out != want.ConvOut {
			return fmt.Errorf("variant %s: converter stats in/out %d/%d, golden %d/%d",
				v.Name, stats.In, stats.Out, want.ConvIn, want.ConvOut)
		}
		enc := encodeChamp(recs)
		if got := md5hex(enc); got != want.MD5 {
			return fmt.Errorf("variant %s: converted md5 %s, golden %s%s",
				v.Name, got, want.MD5, goldenFirstDivergence(fsys, gt, v.Name, recs))
		}
		if gs, ok := gt.Sim[v.Name]; ok {
			st, err := simulate(instrs, v.Opts, develCfg(v.Opts), m.Warmup)
			if err != nil {
				return fmt.Errorf("simulate %s: %w", v.Name, err)
			}
			if diffs := gs.diff(goldenSimFrom(st)); len(diffs) > 0 {
				return fmt.Errorf("variant %s: simulator counters diverge from golden:\n  %s",
					v.Name, joinLines(diffs))
			}
			if sp, ok := gt.Sampled[v.Name]; ok {
				if err := verifyGoldenSampled(m, sampleInstrs, v.Name, v.Opts, sp); err != nil {
					return err
				}
			}
		}
	}

	// The checked-in ChampSim binary must decode and match both its md5
	// and the fresh All_imps conversion.
	champRaw, err := fs.ReadFile(fsys, gt.ChampFile)
	if err != nil {
		return err
	}
	if got := md5hex(champRaw); got != gt.ChampMD5 {
		return fmt.Errorf("%s: md5 %s does not match manifest %s — the trace file was modified without regenerating the manifest",
			gt.ChampFile, got, gt.ChampMD5)
	}
	if _, err := champtrace.ReadAll(champtrace.NewReader(bytes.NewReader(champRaw))); err != nil {
		return fmt.Errorf("%s: decode: %w", gt.ChampFile, err)
	}
	return nil
}

// verifyGoldenSampled re-runs one sampled pin on the regenerated
// SampleInstructions-long trace (synth determinism is itself verified on the
// checked-in prefix), reproducing the exact reference and the sampled run at
// the manifest's parameters, and holds the sampled counters, the interval
// count, and the sampled-vs-exact IPC error to the pinned values.
func verifyGoldenSampled(m *Manifest, sampleInstrs []cvp.Instruction, variant string, opts core.Options, sp GoldenSampled) error {
	est, err := simulate(sampleInstrs, opts, develCfg(opts), m.SampleWarmup)
	if err != nil {
		return fmt.Errorf("sampled pin %s: exact reference simulate: %w", variant, err)
	}
	scfg := develCfg(opts)
	scfg.SamplePeriod, scfg.SampleDetail, scfg.SampleWarm = m.SamplePeriod, m.SampleDetail, m.SampleWarm
	sst, err := simulate(sampleInstrs, opts, scfg, m.SampleWarmup)
	if err != nil {
		return fmt.Errorf("sampled pin %s: sampled simulate: %w", variant, err)
	}
	if diffs := sp.GoldenSim.diff(goldenSimFrom(sst)); len(diffs) > 0 {
		return fmt.Errorf("variant %s: sampled simulator counters diverge from golden:\n  %s",
			variant, joinLines(diffs))
	}
	if sst.SampleIntervals != sp.Intervals {
		return fmt.Errorf("variant %s: sampled run measured %d intervals, golden %d",
			variant, sst.SampleIntervals, sp.Intervals)
	}
	errPct := goldenSampleErrPct(sst.IPC(), est.IPC())
	if errPct > m.MaxSampleErrPct {
		return fmt.Errorf("variant %s: sampled IPC error %.4f%% exceeds the pinned %.1f%% bound (sampled %.4f vs exact %.4f)",
			variant, errPct, m.MaxSampleErrPct, sst.IPC(), est.IPC())
	}
	if math.Abs(errPct-sp.IPCErrPct) > 0.005 {
		return fmt.Errorf("variant %s: sampled IPC error %.4f%% drifted from the pinned %.4f%%",
			variant, errPct, sp.IPCErrPct)
	}
	return nil
}

// goldenFirstDivergence decodes the checked-in ChampSim file (available for
// All_imps) and reports the first record where the fresh conversion
// differs, turning a bare md5 mismatch into a pointed diff.
func goldenFirstDivergence(fsys fs.FS, gt GoldenTrace, variant string, fresh []champtrace.Instruction) string {
	if variant != experiments.VariantAll {
		return ""
	}
	raw, err := fs.ReadFile(fsys, gt.ChampFile)
	if err != nil {
		return ""
	}
	goldenRecs, err := champtrace.ReadAll(champtrace.NewReader(bytes.NewReader(raw)))
	if err != nil {
		return ""
	}
	n := len(goldenRecs)
	if len(fresh) < n {
		n = len(fresh)
	}
	for i := 0; i < n; i++ {
		if *goldenRecs[i] != fresh[i] {
			return fmt.Sprintf("; first divergence at record %d:\n  golden %+v\n  got    %+v", i, *goldenRecs[i], fresh[i])
		}
	}
	return fmt.Sprintf("; record counts %d (golden) vs %d (got), common prefix identical", len(goldenRecs), len(fresh))
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
