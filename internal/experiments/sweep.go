// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the geomean and per-trace IPC impact of each conversion
// improvement (Figs. 1–2), the branch-MPKI and base-update correlations
// (Figs. 3–4), the call-stack fix (Fig. 5), the improvement summary
// (Table 1), the IPC-1 trace characterization (Table 2), and the IPC-1
// prefetcher ranking on competition vs fixed traces (Table 3).
//
// The sweep — every trace converted under every improvement set and
// simulated — is shared: Figs. 1–5 all derive from one sweep result.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// Variant is one converter configuration of the evaluation.
type Variant struct {
	// Name is the artifact-style label ("No_imp", "imp_flag-regs", ...).
	Name string
	// Opts is the improvement set applied.
	Opts core.Options
}

// Variant names used throughout the experiments.
const (
	VariantNone         = "No_imp"
	VariantMemRegs      = "mem-regs"
	VariantBaseUpdate   = "base-update"
	VariantMemFootprint = "mem-footprint"
	VariantMemory       = "Memory_imps"
	VariantFlagReg      = "flag-reg"
	VariantBranchRegs   = "branch-regs"
	VariantCallStack    = "call-stack"
	VariantBranch       = "Branch_imps"
	VariantAll          = "All_imps"
)

// Variants returns the ten converter configurations of Figs. 1–2: the
// original converter, each improvement individually, the Memory and Branch
// sets, and all improvements together.
func Variants() []Variant {
	return []Variant{
		{VariantNone, core.OptionsNone()},
		{VariantMemRegs, core.Options{MemRegs: true}},
		{VariantBaseUpdate, core.Options{BaseUpdate: true}},
		{VariantMemFootprint, core.Options{MemFootprint: true}},
		{VariantMemory, core.OptionsMemory()},
		{VariantFlagReg, core.Options{FlagReg: true}},
		{VariantBranchRegs, core.Options{BranchRegs: true}},
		{VariantCallStack, core.Options{CallStack: true}},
		{VariantBranch, core.OptionsBranch()},
		{VariantAll, core.OptionsAll()},
	}
}

// figureVariants selects a subset of Variants by name.
func figureVariants(names ...string) []Variant {
	all := Variants()
	var out []Variant
	for _, n := range names {
		for _, v := range all {
			if v.Name == n {
				out = append(out, v)
			}
		}
	}
	return out
}

// Result is the outcome of simulating one trace under one variant.
type Result struct {
	// IPC is instructions per cycle in the measured region.
	IPC float64
	// Sim carries the full simulator statistics.
	Sim sim.Stats
	// Conv carries the converter statistics.
	Conv core.Stats
}

// TraceResult bundles all variant results for one trace.
type TraceResult struct {
	Profile synth.Profile
	Results map[string]Result
}

// Delta returns the IPC change (ratio-1) of variant v relative to the
// original converter.
func (tr TraceResult) Delta(v string) float64 {
	base := tr.Results[VariantNone].IPC
	if base == 0 {
		return 0
	}
	return tr.Results[v].IPC/base - 1
}

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	// Instructions is the per-trace dynamic instruction count;
	// Warmup instructions are excluded from statistics.
	Instructions int
	Warmup       uint64
	// Variants lists the converter configurations to run; nil means all
	// ten.
	Variants []Variant
	// Parallelism bounds concurrent trace simulations; 0 = NumCPU.
	Parallelism int
	// Progress, when non-nil, is called after each completed trace.
	Progress func(done, total int)
}

// DefaultSweepConfig returns the configuration used by the rebase CLI:
// 150k instructions per trace with a 50k warm-up. The paper runs the
// original traces (tens of millions of instructions) to completion without
// warm-up; the warm-up here stands in for the steady state a full-length
// trace reaches on its own.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{Instructions: 150000, Warmup: 50000}
}

func (c *SweepConfig) fill() {
	if c.Instructions <= 0 {
		c.Instructions = 150000
	}
	if c.Variants == nil {
		c.Variants = Variants()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// RunTrace generates one trace and simulates it under every variant on the
// develop-branch model.
func RunTrace(p synth.Profile, cfg SweepConfig) (TraceResult, error) {
	cfg.fill()
	instrs, err := p.Generate(cfg.Instructions)
	if err != nil {
		return TraceResult{}, err
	}
	tr := TraceResult{Profile: p, Results: make(map[string]Result, len(cfg.Variants))}
	for _, v := range cfg.Variants {
		recs, cst, err := core.ConvertAll(cvp.NewSliceSource(instrs), v.Opts)
		if err != nil {
			return tr, fmt.Errorf("experiments: convert %s/%s: %w", p.Name, v.Name, err)
		}
		// Traces carrying branch-regs need the §3.2.2 ChampSim patch.
		rules := champtrace.RulesOriginal
		if v.Opts.BranchRegs {
			rules = champtrace.RulesPatched
		}
		st, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigDevelop(rules), cfg.Warmup, 0)
		if err != nil {
			return tr, fmt.Errorf("experiments: simulate %s/%s: %w", p.Name, v.Name, err)
		}
		tr.Results[v.Name] = Result{IPC: st.IPC(), Sim: st, Conv: cst}
	}
	return tr, nil
}

// RunSweep simulates every profile under every variant, in parallel.
func RunSweep(profiles []synth.Profile, cfg SweepConfig) ([]TraceResult, error) {
	cfg.fill()
	out := make([]TraceResult, len(profiles))
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	var mu sync.Mutex
	done := 0
	for i := range profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = RunTrace(profiles[i], cfg)
			if cfg.Progress != nil {
				mu.Lock()
				done++
				cfg.Progress(done, len(profiles))
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
