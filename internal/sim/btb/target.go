package btb

import "tracerebase/internal/champtrace"

// TargetStats counts target-prediction events by branch class.
type TargetStats struct {
	// TakenBranches counts taken branches needing a target.
	TakenBranches uint64
	// Mispredicts counts wrong or unknown targets for taken branches.
	Mispredicts uint64
	// BTBMisses counts taken branches missing in the BTB.
	BTBMisses uint64
	// ReturnMispredicts counts wrong RAS predictions — the Fig. 5 metric.
	ReturnMispredicts uint64
	// Returns counts predicted returns.
	Returns uint64
}

// TargetPredictor routes each branch type to the appropriate target
// structure: RAS for returns, ITTAGE (when configured) for indirect
// branches, BTB for everything else. With Ideal set, every target is
// predicted perfectly (the IPC-1 ChampSim configuration, §4.4).
type TargetPredictor struct {
	BTB    *BTB
	RAS    *RAS
	ITTAGE *ITTAGE
	Ideal  bool
	stats  TargetStats
}

// NewTargetPredictor builds the develop-configuration target machinery:
// a 16K-entry 8-way BTB, 64-entry RAS, and ITTAGE.
func NewTargetPredictor(btbEntries, btbWays, rasSize int, ittage bool) *TargetPredictor {
	tp := &TargetPredictor{
		BTB: NewBTB(btbEntries, btbWays),
		RAS: NewRAS(rasSize),
	}
	if ittage {
		tp.ITTAGE = NewITTAGE(DefaultITTAGEConfig())
	}
	return tp
}

// Stats returns a snapshot of the counters.
func (tp *TargetPredictor) Stats() TargetStats { return tp.stats }

// ResetStats zeroes the counters (end of warm-up).
func (tp *TargetPredictor) ResetStats() { tp.stats = TargetStats{} }

// Predict returns the predicted target for a branch of the given type that
// the front-end believes is taken. known is false when no structure has a
// target (BTB cold miss). Predict mutates the RAS for returns; the caller
// must invoke Update exactly once afterwards.
func (tp *TargetPredictor) Predict(pc uint64, btype champtrace.BranchType) (target uint64, known bool) {
	if tp.Ideal {
		return 0, false // caller substitutes the actual target
	}
	switch btype {
	case champtrace.BranchReturn:
		if t, ok := tp.RAS.Pop(); ok {
			return t, true
		}
		return 0, false
	case champtrace.BranchIndirect, champtrace.BranchIndirectCall:
		if tp.ITTAGE != nil {
			if t, ok := tp.ITTAGE.Predict(pc); ok {
				return t, true
			}
		}
	}
	if e, ok := tp.BTB.Lookup(pc); ok {
		return e.Target, true
	}
	return 0, false
}

// Resolve records the actual outcome for the branch at pc: it trains the
// structures and returns whether the predicted target was correct.
// fallthrough-Addr is the sequential address after the branch, pushed on
// the RAS by calls.
func (tp *TargetPredictor) Resolve(pc uint64, btype champtrace.BranchType, taken bool,
	predTarget uint64, predKnown bool, actualTarget, fallthroughAddr uint64) (correct bool) {

	if btype == champtrace.BranchReturn {
		tp.stats.Returns++
	}
	if btype.IsCall() && !tp.Ideal {
		tp.RAS.Push(fallthroughAddr)
	}
	if !taken {
		return true
	}
	tp.stats.TakenBranches++
	if tp.Ideal {
		return true
	}

	if _, ok := tp.BTB.Lookup(pc); !ok {
		tp.stats.BTBMisses++
	}
	tp.BTB.Update(pc, Entry{Target: actualTarget, Type: btype})
	switch btype {
	case champtrace.BranchIndirect, champtrace.BranchIndirectCall:
		if tp.ITTAGE != nil {
			tp.ITTAGE.Update(pc, actualTarget)
		}
	default:
		if tp.ITTAGE != nil {
			tp.ITTAGE.PushPath(actualTarget)
		}
	}

	correct = predKnown && predTarget == actualTarget
	if !correct {
		tp.stats.Mispredicts++
		if btype == champtrace.BranchReturn {
			tp.stats.ReturnMispredicts++
		}
	}
	return correct
}
