package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// flat is a constant-latency backing level for unit tests.
type flat struct {
	latency  uint64
	accesses int
}

func (f *flat) Access(addr uint64, cycle uint64, kind AccessKind) uint64 {
	f.accesses++
	return cycle + f.latency
}

func testCache(sets, ways int, next Level) *Cache {
	return NewCache(Config{Name: "T", Sets: sets, Ways: ways, Latency: 2, MSHRs: 4}, next)
}

func TestHitMissBasics(t *testing.T) {
	back := &flat{latency: 100}
	c := testCache(4, 2, back)

	// Cold miss.
	done := c.Access(0x1000, 0, Read)
	if done != 2+100 {
		t.Errorf("miss latency = %d, want 102 (2 lookup + 100 fill)", done)
	}
	st := c.Stats()
	if st.Accesses != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats after miss: %+v", st)
	}

	// Hit after the fill completes.
	done = c.Access(0x1000, 200, Read)
	if done != 202 {
		t.Errorf("hit latency = %d, want 202", done)
	}
	st = c.Stats()
	if st.Hits != 1 {
		t.Errorf("stats after hit: %+v", st)
	}

	// Same line, different offset — still a hit.
	if c.Access(0x103f, 300, Read) != 302 {
		t.Error("offset within line missed")
	}
}

func TestHitUnderFill(t *testing.T) {
	back := &flat{latency: 100}
	c := testCache(4, 2, back)
	first := c.Access(0x1000, 0, Read) // fill completes at 102
	// A second access to the same line at cycle 10 merges into the fill:
	// data at fill completion + hit latency, counted as a merged miss.
	second := c.Access(0x1000, 10, Read)
	if second != first+2 {
		t.Errorf("merged access done at %d, want %d", second, first+2)
	}
	st := c.Stats()
	if st.MergedMisses != 1 {
		t.Errorf("MergedMisses = %d, want 1", st.MergedMisses)
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (second access merged)", st.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	back := &flat{latency: 10}
	c := testCache(1, 2, back) // one set, two ways
	c.Access(0xA000, 0, Read)
	c.Access(0xB000, 100, Read)
	c.Access(0xA000, 200, Read) // refresh A
	c.Access(0xC000, 300, Read) // evicts B (LRU)
	if !c.Contains(0xA000) || !c.Contains(0xC000) {
		t.Error("expected A and C resident")
	}
	if c.Contains(0xB000) {
		t.Error("B should have been evicted as LRU")
	}
}

func TestMSHRLimit(t *testing.T) {
	back := &flat{latency: 1000}
	c := NewCache(Config{Name: "T", Sets: 16, Ways: 2, Latency: 1, MSHRs: 2}, back)
	d1 := c.Access(0x0000, 0, Read)
	d2 := c.Access(0x4000, 0, Read)
	// Third concurrent miss must wait for an MSHR: it cannot start before
	// the earliest outstanding fill (d1) completes.
	d3 := c.Access(0x8000, 0, Read)
	if d3 < d1+1000 {
		t.Errorf("third miss done at %d, want >= %d (MSHR stall)", d3, d1+1000)
	}
	_ = d2
	// After fills expire, misses are unconstrained again.
	d4 := c.Access(0xC000, 5000, Read)
	if d4 != 5000+1+1000 {
		t.Errorf("post-drain miss done at %d, want 6001", d4)
	}
}

func TestPrefetchSemantics(t *testing.T) {
	back := &flat{latency: 100}
	c := testCache(16, 2, back)
	// Prefetch does not count as a demand access.
	c.Access(0x2000, 0, Prefetch)
	st := c.Stats()
	if st.Accesses != 0 || st.Misses != 0 || st.PrefetchFills != 1 {
		t.Errorf("prefetch accounting wrong: %+v", st)
	}
	// A later demand hit on the prefetched line is useful.
	c.Access(0x2000, 500, Read)
	st = c.Stats()
	if st.UsefulPrefetches != 1 || st.Hits != 1 {
		t.Errorf("useful-prefetch accounting wrong: %+v", st)
	}
	// Second demand access: the useful counter must not double-count.
	c.Access(0x2000, 600, Read)
	if c.Stats().UsefulPrefetches != 1 {
		t.Error("useful prefetch double-counted")
	}
}

// recordingPF prefetches the next line on every demand miss.
type recordingPF struct{ issued []uint64 }

func (p *recordingPF) Name() string { return "test-nl" }
func (p *recordingPF) OnAccess(addr, ip uint64, hit bool, buf []uint64) []uint64 {
	if hit {
		return buf
	}
	p.issued = append(p.issued, addr+LineSize)
	return append(buf, addr+LineSize)
}

func TestPrefetcherHook(t *testing.T) {
	back := &flat{latency: 100}
	c := testCache(16, 2, back)
	pf := &recordingPF{}
	c.SetPrefetcher(pf)
	c.Access(0x3000, 0, Read) // miss → prefetch 0x3040
	if len(pf.issued) != 1 || pf.issued[0] != 0x3040 {
		t.Fatalf("prefetcher saw %v", pf.issued)
	}
	if !c.Contains(0x3040) {
		t.Error("prefetched line not resident")
	}
	if c.Stats().PrefetchIssued != 1 {
		t.Errorf("PrefetchIssued = %d", c.Stats().PrefetchIssued)
	}
	// Demand access to the prefetched line: hit, no new prefetch issued
	// for hits by this policy.
	before := len(pf.issued)
	c.Access(0x3040, 1000, Read)
	if len(pf.issued) != before {
		t.Error("prefetcher invoked with wrong hit flag")
	}
}

func TestWriteMiss(t *testing.T) {
	back := &flat{latency: 50}
	c := testCache(4, 2, back)
	c.Access(0x5000, 0, Write)
	st := c.Stats()
	if st.WriteAccesses != 1 || st.WriteMiss != 1 {
		t.Errorf("write stats: %+v", st)
	}
	c.Access(0x5000, 100, Write)
	st = c.Stats()
	if st.WriteMiss != 1 || st.Hits != 1 {
		t.Errorf("write hit stats: %+v", st)
	}
}

func TestDRAMBankContention(t *testing.T) {
	d := NewDRAM(200, 50, 2)
	// Two requests to the same bank serialize by the service time.
	a := d.Access(0x0000, 0, Read)
	b := d.Access(0x0080, 0, Read) // lines 0 and 2 → both bank 0
	if a != 200 {
		t.Errorf("first access done at %d", a)
	}
	if b != 250 {
		t.Errorf("same-bank access done at %d, want 250", b)
	}
	// Different bank is unaffected.
	cAddr := d.Access(0x0040, 0, Read) // line 1 → bank 1
	if cAddr != 200 {
		t.Errorf("other-bank access done at %d, want 200", cAddr)
	}
	if d.Accesses() != 3 {
		t.Errorf("Accesses = %d", d.Accesses())
	}
}

func TestHierarchy(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// A data read misses all the way to DRAM the first time.
	done := h.L1D.Access(0x7000, 0, Read)
	if done < 200 {
		t.Errorf("cold L1D access resolved too fast: %d", done)
	}
	if h.DRAM.Accesses() != 1 {
		t.Errorf("DRAM accesses = %d, want 1", h.DRAM.Accesses())
	}
	// The same line is now resident at every level.
	if !h.L1D.Contains(0x7000) || !h.L2.Contains(0x7000) || !h.LLC.Contains(0x7000) {
		t.Error("fill did not populate all levels")
	}
	// A subsequent access is an L1D hit and far faster.
	warm := h.L1D.Access(0x7000, 100000, Read)
	if warm != 100000+h.L1D.Config().Latency {
		t.Errorf("warm hit done at %d", warm)
	}
	// An instruction fetch to a different line reaches DRAM through L1I.
	h.L1I.Access(0x9000, 0, Fetch)
	if h.DRAM.Accesses() != 2 {
		t.Errorf("DRAM accesses = %d, want 2", h.DRAM.Accesses())
	}
	h.ResetStats()
	if h.L1D.Stats().Accesses != 0 || h.L1I.Stats().Accesses != 0 {
		t.Error("ResetStats left counters")
	}
}

// Property: access completion time is never before the request cycle plus
// the hit latency, and never decreases when the request cycle increases.
func TestQuickLatencyMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		back := &flat{latency: uint64(r.Intn(300) + 1)}
		c := testCache(16, 4, back)
		cycle := uint64(0)
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(64)) * LineSize
			cycle += uint64(r.Intn(20))
			done := c.Access(addr, cycle, Read)
			if done < cycle+c.Config().Latency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a single set and W ways, the W most recently used distinct
// lines are always resident.
func TestQuickLRUResidency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const ways = 4
		c := testCache(1, ways, &flat{latency: 10})
		var recent []uint64
		cycle := uint64(0)
		for i := 0; i < 300; i++ {
			addr := uint64(r.Intn(16)) * LineSize
			cycle += 100 // let fills complete so timing never reorders
			c.Access(addr, cycle, Read)
			// Track MRU-distinct ordering.
			for j, a := range recent {
				if a == addr {
					recent = append(recent[:j], recent[j+1:]...)
					break
				}
			}
			recent = append(recent, addr)
			if len(recent) > ways {
				recent = recent[len(recent)-ways:]
			}
			for _, a := range recent {
				if !c.Contains(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	back := &flat{latency: 1}
	for _, bad := range []Config{
		{Sets: 0, Ways: 1},
		{Sets: 3, Ways: 1},
		{Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache accepted bad config %+v", bad)
				}
			}()
			NewCache(bad, back)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDRAM accepted 3 banks")
			}
		}()
		NewDRAM(100, 10, 3)
	}()
	if got := (Config{Sets: 64, Ways: 8}).SizeKB(); got != 32 {
		t.Errorf("SizeKB = %d, want 32", got)
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1234) != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", LineAddr(0x1234))
	}
	if LineAddr(0x1240) != 0x1240 {
		t.Errorf("LineAddr aligned = %#x", LineAddr(0x1240))
	}
}
