package vp

// VTAGE (after Perais & Seznec, the CVP-1 organizer's own design):
// a last-value base table backed by tagged components indexed with
// geometrically longer branch histories. Control-flow-correlated values —
// the same PC producing different values on different paths — land in the
// history-indexed components, while path-invariant values stay in the base.

// VTAGEConfig parameterizes the predictor.
type VTAGEConfig struct {
	// BaseBits is log2 of the last-value base table.
	BaseBits int
	// TableBits is log2 of each tagged component.
	TableBits int
	// TagBits is the partial tag width.
	TagBits int
	// HistLengths are the branch-history lengths, shortest first.
	HistLengths []int
}

// DefaultVTAGEConfig returns a modest six-component configuration.
func DefaultVTAGEConfig() VTAGEConfig {
	return VTAGEConfig{
		BaseBits:    14,
		TableBits:   12,
		TagBits:     11,
		HistLengths: []int{2, 4, 8, 16, 32, 64},
	}
}

type vtageEntry struct {
	tag    uint16
	value  uint64
	conf   confidence
	useful uint8
}

// VTAGE is the tagged geometric value predictor.
type VTAGE struct {
	cfg    VTAGEConfig
	base   *LastValue
	tables [][]vtageEntry
	// scratch between Predict and Update
	provider    int
	providerIdx uint64
}

// NewVTAGE builds a VTAGE predictor.
func NewVTAGE(cfg VTAGEConfig) *VTAGE {
	v := &VTAGE{
		cfg:    cfg,
		base:   NewLastValue(cfg.BaseBits),
		tables: make([][]vtageEntry, len(cfg.HistLengths)),
	}
	for i := range v.tables {
		v.tables[i] = make([]vtageEntry, 1<<cfg.TableBits)
	}
	return v
}

// Name implements Predictor.
func (v *VTAGE) Name() string { return "vtage" }

func (v *VTAGE) index(pc uint64, ctx Context, table int) uint64 {
	h := foldBits(ctx.BranchHist, v.cfg.HistLengths[table], v.cfg.TableBits)
	ph := foldBits(ctx.PathHist, v.cfg.HistLengths[table], v.cfg.TableBits)
	return ((pc >> 2) ^ h ^ (ph << 1)) & (uint64(1<<v.cfg.TableBits) - 1)
}

func (v *VTAGE) tag(pc uint64, ctx Context, table int) uint16 {
	h := foldBits(ctx.BranchHist, v.cfg.HistLengths[table], v.cfg.TagBits)
	return uint16(((pc >> 2) ^ (pc >> 13) ^ (h << 2)) & (uint64(1<<v.cfg.TagBits) - 1))
}

// foldBits XOR-folds the low histLen bits of h down to width bits.
func foldBits(h uint64, histLen, width int) uint64 {
	if histLen < 64 {
		h &= (1 << uint(histLen)) - 1
	}
	out := uint64(0)
	for h != 0 {
		out ^= h & ((1 << uint(width)) - 1)
		h >>= uint(width)
	}
	return out
}

// Predict implements Predictor.
func (v *VTAGE) Predict(pc uint64, ctx Context) (uint64, bool) {
	v.provider = -1
	for i := len(v.tables) - 1; i >= 0; i-- {
		idx := v.index(pc, ctx, i)
		e := &v.tables[i][idx]
		if e.tag == v.tag(pc, ctx, i) {
			v.provider = i
			v.providerIdx = idx
			return e.value, e.conf.confident()
		}
	}
	return v.base.Predict(pc, ctx)
}

// Update implements Predictor.
func (v *VTAGE) Update(pc uint64, ctx Context, actual uint64) {
	if v.provider >= 0 {
		e := &v.tables[v.provider][v.providerIdx]
		if e.value == actual {
			e.conf = e.conf.up()
			if e.useful < 3 {
				e.useful++
			}
		} else {
			e.value = actual
			e.conf = e.conf.down()
			if e.useful > 0 {
				e.useful--
			}
			// The base captures path-invariant values; allocate a
			// longer-history component for this path.
			v.allocate(pc, ctx, actual, v.provider+1)
		}
	} else {
		// Train the base; on base misprediction try a tagged component
		// (the value may be path-correlated).
		if bv, conf := v.base.Predict(pc, ctx); conf && bv != actual {
			v.allocate(pc, ctx, actual, 0)
		}
	}
	v.base.Update(pc, ctx, actual)
}

func (v *VTAGE) allocate(pc uint64, ctx Context, actual uint64, from int) {
	for i := from; i < len(v.tables); i++ {
		idx := v.index(pc, ctx, i)
		e := &v.tables[i][idx]
		if e.useful == 0 {
			*e = vtageEntry{tag: v.tag(pc, ctx, i), value: actual}
			return
		}
		e.useful--
	}
}
