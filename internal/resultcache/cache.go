package resultcache

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// Codec converts cached values to and from their stored payload bytes.
// Encode must be deterministic enough for Decode(Encode(v)) == v; byte-level
// stability across versions is not required (the record version and
// SchemaVersion gate compatibility).
type Codec[T any] interface {
	Encode(T) ([]byte, error)
	Decode([]byte) (T, error)
}

// GobCodec is a Codec backed by encoding/gob — sufficient for plain
// exported-field result structs.
type GobCodec[T any] struct{}

// Encode implements Codec.
func (GobCodec[T]) Encode(v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec[T]) Decode(b []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v)
	return v, err
}

// Config parameterizes Open.
type Config struct {
	// Dir is the cache root. Entries live under Dir/v<SchemaVersion>/,
	// sharded by the first key byte.
	Dir string
	// MaxBytes bounds the on-disk footprint; least-recently-used entries
	// are evicted past it. <= 0 selects the 1 GiB default. The in-memory
	// decoded-value layer is not bounded: a process keeps every result it
	// has touched.
	MaxBytes int64
}

// DefaultMaxBytes is the on-disk budget when Config.MaxBytes is unset.
const DefaultMaxBytes = 1 << 30

// Stats counts cache activity since Open. Hits+Misses is the number of
// resolved lookups (single-flight waiters sharing another goroutine's
// computation are counted under SharedWaits, not as lookups of their own).
type Stats struct {
	// Hits = MemHits + DiskHits.
	Hits, Misses uint64
	// MemHits were served from the in-process decoded-value map, DiskHits
	// from the backend (disk, or whatever tier composition backs the
	// cache).
	MemHits, DiskHits uint64
	// SharedWaits counts single-flight joins: lookups that blocked on an
	// identical in-flight computation instead of duplicating it.
	SharedWaits uint64
	// Computes counts invocations of the caller's compute function;
	// Errors counts the ones that failed (failures are never stored).
	Computes, Errors uint64
	// Corrupt counts entries that failed validation and were discarded;
	// each also shows up as a miss and a recompute.
	Corrupt uint64
	// Evictions counts entries removed by a size bound.
	Evictions uint64
	// WriteErrors counts store failures; the computed value is still
	// returned to the caller, so a read-only cache degrades gracefully.
	WriteErrors uint64
	// BytesRead and BytesWritten count payload-carrying bytes moved
	// through the backend tiers.
	BytesRead, BytesWritten uint64
}

type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Cache is a content-addressed result store over a Backend: an unbounded
// in-process decoded-value map, the backend (a single disk tier for Open,
// any Tiered composition for New), and a single-flight layer that
// collapses concurrent computations of the same key into one. All methods
// are safe for concurrent use.
type Cache[T any] struct {
	backend Backend
	codec   Codec[T]

	mu      sync.Mutex
	mem     map[Key]T
	flights map[Key]*flight[T]
	stats   Stats
}

// Open opens (creating if needed) a disk-backed cache rooted at cfg.Dir —
// the classic batch-CLI configuration. See New to compose the cache over
// other backends (memory LRU, remote, tiered).
func Open[T any](cfg Config, codec Codec[T]) (*Cache[T], error) {
	disk, err := NewDisk(DiskConfig{Dir: cfg.Dir, MaxBytes: cfg.MaxBytes})
	if err != nil {
		return nil, err
	}
	return New[T](disk, codec), nil
}

// New builds a cache over an already-constructed backend. The cache owns
// the backend: Close closes it.
func New[T any](backend Backend, codec Codec[T]) *Cache[T] {
	return &Cache[T]{
		backend: backend,
		codec:   codec,
		mem:     make(map[Key]T),
		flights: make(map[Key]*flight[T]),
	}
}

// Backend returns the tier composition the cache stores through.
func (c *Cache[T]) Backend() Backend { return c.backend }

// EntryPath returns where the entry for key lives (or would live) on
// disk, or "" when no tier is file-backed.
func (c *Cache[T]) EntryPath(key Key) string {
	if p, ok := c.backend.(entryPather); ok {
		return p.EntryPath(key)
	}
	return ""
}

// Dir returns the versioned root of the first directory-rooted tier, or
// "" when there is none.
func (c *Cache[T]) Dir() string {
	if p, ok := c.backend.(dirBackend); ok {
		return p.Dir()
	}
	return ""
}

// Stats returns a snapshot of the activity counters: lookup outcomes are
// counted by the cache itself; storage-side counters (corruption,
// evictions, write errors, byte traffic) are summed over the backend
// tiers.
func (c *Cache[T]) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	for _, t := range TierStats(c.backend) {
		s.Corrupt += t.Corrupt
		s.Evictions += t.Evictions
		s.WriteErrors += t.WriteErrors
		s.BytesRead += t.BytesRead
		s.BytesWritten += t.BytesWritten
	}
	return s
}

// TierStats returns the per-tier backend counters (one entry per tier for
// a Tiered backend).
func (c *Cache[T]) TierStats() []BackendStats {
	return TierStats(c.backend)
}

// DiskBytes returns the persistent footprint of the first sized tier.
func (c *Cache[T]) DiskBytes() int64 {
	if p, ok := c.backend.(sizedBackend); ok {
		return p.DiskBytes()
	}
	return 0
}

// Close flushes and closes the backend.
func (c *Cache[T]) Close() error { return c.backend.Close() }

// Get returns the cached value for key if it is resident in memory or
// valid in the backend. It never computes and never joins an in-flight
// computation.
func (c *Cache[T]) Get(key Key) (T, bool) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	if v, ok := c.tryBackend(key); ok {
		return v, true
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	var zero T
	return zero, false
}

// GetOrCompute returns the value for key, computing and storing it on a
// miss. Concurrent calls for the same key share one computation: exactly
// one caller runs compute, the rest block and receive its result
// (single-flight). A failed compute is returned to every waiter and is not
// cached, so a later call retries. Store failures degrade to a warm
// in-memory result rather than an error.
func (c *Cache[T]) GetOrCompute(key Key, compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.stats.SharedWaits++
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &flight[T]{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = c.fill(key, compute)
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// fill resolves a leader's lookup: backend, then compute+store.
func (c *Cache[T]) fill(key Key, compute func() (T, error)) (T, error) {
	if v, ok := c.tryBackend(key); ok {
		return v, nil
	}

	c.mu.Lock()
	c.stats.Misses++
	c.stats.Computes++
	c.mu.Unlock()
	v, err := compute()
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		return v, err
	}
	c.store(key, v)
	return v, nil
}

// tryBackend attempts to load and decode the backend entry for key,
// promoting it into the memory layer on success. A payload the backend
// validated but the codec cannot decode is discarded as corrupt so it is
// recomputed, never served.
func (c *Cache[T]) tryBackend(key Key) (T, bool) {
	var zero T
	payload, err := c.backend.Get(key)
	if err != nil {
		return zero, false
	}
	v, err := c.codec.Decode(payload)
	if err != nil {
		c.backend.Delete(key)
		c.mu.Lock()
		c.stats.Corrupt++
		c.mu.Unlock()
		return zero, false
	}
	c.mu.Lock()
	c.stats.Hits++
	c.stats.DiskHits++
	c.mem[key] = v
	c.mu.Unlock()
	return v, true
}

// store encodes v and writes it through the backend. Failures are
// counted, not returned: the value is already in memory and the run must
// not depend on a writable cache.
func (c *Cache[T]) store(key Key, v T) {
	c.mu.Lock()
	c.mem[key] = v
	c.mu.Unlock()

	payload, err := c.codec.Encode(v)
	if err != nil {
		// Encode failures are the cache's own; backend Put failures are
		// counted by the failing tier.
		c.mu.Lock()
		c.stats.WriteErrors++
		c.mu.Unlock()
		return
	}
	c.backend.Put(key, payload)
}
