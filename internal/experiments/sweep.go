// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the geomean and per-trace IPC impact of each conversion
// improvement (Figs. 1–2), the branch-MPKI and base-update correlations
// (Figs. 3–4), the call-stack fix (Fig. 5), the improvement summary
// (Table 1), the IPC-1 trace characterization (Table 2), and the IPC-1
// prefetcher ranking on competition vs fixed traces (Table 3).
//
// The sweep — every trace converted under every improvement set and
// simulated — is shared: Figs. 1–5 all derive from one sweep result.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/expstore"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
)

// Variant is one converter configuration of the evaluation.
type Variant struct {
	// Name is the artifact-style label ("No_imp", "imp_flag-regs", ...).
	Name string
	// Opts is the improvement set applied.
	Opts core.Options
}

// Variant names used throughout the experiments.
const (
	VariantNone         = "No_imp"
	VariantMemRegs      = "mem-regs"
	VariantBaseUpdate   = "base-update"
	VariantMemFootprint = "mem-footprint"
	VariantMemory       = "Memory_imps"
	VariantFlagReg      = "flag-reg"
	VariantBranchRegs   = "branch-regs"
	VariantCallStack    = "call-stack"
	VariantBranch       = "Branch_imps"
	VariantAll          = "All_imps"
)

// Variants returns the ten converter configurations of Figs. 1–2: the
// original converter, each improvement individually, the Memory and Branch
// sets, and all improvements together.
func Variants() []Variant {
	return []Variant{
		{VariantNone, core.OptionsNone()},
		{VariantMemRegs, core.Options{MemRegs: true}},
		{VariantBaseUpdate, core.Options{BaseUpdate: true}},
		{VariantMemFootprint, core.Options{MemFootprint: true}},
		{VariantMemory, core.OptionsMemory()},
		{VariantFlagReg, core.Options{FlagReg: true}},
		{VariantBranchRegs, core.Options{BranchRegs: true}},
		{VariantCallStack, core.Options{CallStack: true}},
		{VariantBranch, core.OptionsBranch()},
		{VariantAll, core.OptionsAll()},
	}
}

// figureVariants selects a subset of Variants by name.
func figureVariants(names ...string) []Variant {
	all := Variants()
	var out []Variant
	for _, n := range names {
		for _, v := range all {
			if v.Name == n {
				out = append(out, v)
			}
		}
	}
	return out
}

// Result is the outcome of simulating one trace under one variant.
type Result struct {
	// IPC is instructions per cycle in the measured region.
	IPC float64
	// Sim carries the full simulator statistics.
	Sim sim.Stats
	// Conv carries the converter statistics.
	Conv core.Stats
}

// TraceResult bundles all variant results for one trace.
type TraceResult struct {
	Profile synth.Profile
	Results map[string]Result
}

// Delta returns the IPC change (ratio-1) of variant v relative to the
// original converter.
func (tr TraceResult) Delta(v string) float64 {
	base := tr.Results[VariantNone].IPC
	if base == 0 {
		return 0
	}
	return tr.Results[v].IPC/base - 1
}

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	// Instructions is the per-trace dynamic instruction count;
	// Warmup instructions are excluded from statistics.
	Instructions int
	Warmup       uint64
	// Variants lists the converter configurations to run; nil means all
	// ten.
	Variants []Variant
	// Parallelism bounds concurrent (trace, variant) simulations;
	// 0 = NumCPU.
	Parallelism int
	// Progress, when non-nil, is called after each trace completes all of
	// its variants. It is invoked outside the sweep's internal locks, so a
	// slow callback (rendering, logging) never stalls the workers; calls
	// for different traces may therefore arrive out of order, but each
	// carries its own done count.
	Progress func(done, total int)
	// NoSkip disables the simulator's event-horizon cycle skipping
	// (sim.Config.NoCycleSkip) for every simulation the sweep dispatches.
	// Results are identical either way; the flag exists for verifying that
	// claim and for benchmarking the skipper itself. It participates in
	// result-cache keys through the config identity, so skip-on and
	// skip-off runs never share cache entries.
	NoSkip bool
	// Cache, when non-nil, serves (trace, variant, config) Results by
	// content address instead of recomputing them: the sweep consults it
	// before dispatching work, skips generation and conversion entirely
	// for fully-cached traces, and stores every freshly computed Result.
	// Concurrent requests for the same key share one computation
	// (single-flight). nil reproduces the uncached engine exactly.
	Cache *ResultCache
	// SamplePeriod > 0 switches every simulation the sweep dispatches to
	// SMARTS-style interval sampling (sim.Config.SamplePeriod): one
	// SampleDetail-instruction detailed interval per SamplePeriod retired
	// instructions, with SampleWarm instructions of functional warming
	// ahead of each interval (0 = warm whole gaps). The parameters flow
	// into the simulator configuration and therefore into result-cache
	// keys, so sampled and exact results can never collide.
	SamplePeriod, SampleDetail, SampleWarm uint64
	// Cores > 1 switches RunMultiSweep cells to N-core lockstep simulation
	// over a shared LLC (single-core entry points ignore it). LLCPolicy
	// optionally overrides the shared LLC replacement policy ("srrip",
	// "drrip", or the multi-core-only "shared-srrip"); MemBandwidth sets
	// the shared LLC↔DRAM port issue interval in cycles (0 = unmodeled).
	// All three flow into the simulator configuration identity, so
	// multi-core cells key disjointly in the result cache.
	Cores        int
	LLCPolicy    string
	MemBandwidth uint64
	// MultiCache, when non-nil, serves co-scheduled multi-core cell
	// results by content address (a separate store from Cache — the value
	// type differs). nil recomputes every multi-core cell.
	MultiCache *MultiCache
	// Slabs, when non-nil, serves converted instruction slabs by content
	// address: conversion is hoisted out of the per-variant loop into
	// converter-option equivalence classes (convert once per trace and
	// class, feed every cell in the class from one shared read-only slab),
	// warm slabs load zero-copy from disk instead of reconverting, and the
	// next trace's slabs are prefetched while the current one simulates.
	// nil reproduces the streaming-conversion engine exactly.
	Slabs *SlabStore
	// Exp, when non-nil, is the append-only columnar experiment store:
	// every cell the sweep computes (or serves from the result cache) is
	// appended as one row keyed by the cell's content address, and once
	// the sweep assembles its results they are replaced by their
	// store-read copies — the figure pipeline downstream consumes what the
	// store serves, making the engine the query layer's first consumer.
	// Appends and read-back degrade gracefully (a failed write or a
	// dropped corrupt block falls back to the in-memory result), so nil
	// and a broken store alike reproduce the plain engine exactly.
	Exp *expstore.Store
	// ExpMisses, when non-nil, is called once per sweep with the number of
	// cells the store read-back could not serve. Zero in a healthy store;
	// the store-transparency conformance oracle pins it there.
	ExpMisses func(misses int)
	// Checkpoints, when non-nil alongside sampling, serves warmed-prefix
	// checkpoints by content address: cells sharing a warm identity
	// (keyed by WarmIdentity, not the full config identity) resume from
	// one shared checkpoint instead of each re-warming its prefix. A
	// per-run gate (see checkpointGate) keeps cells with unshared keys on
	// the plain path so no checkpoint is computed or persisted for them.
	// nil, or an exact-mode sweep, bypasses checkpointing entirely.
	Checkpoints *CheckpointCache
	// ckptGate is shared by every copy of the config made after fill();
	// it spans all cells of one experiment run.
	ckptGate *checkpointGate
}

// DefaultSweepConfig returns the configuration used by the rebase CLI:
// 150k instructions per trace with a 50k warm-up. The paper runs the
// original traces (tens of millions of instructions) to completion without
// warm-up; the warm-up here stands in for the steady state a full-length
// trace reaches on its own.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{Instructions: 150000, Warmup: 50000}
}

// fill defaults the zero fields and rejects configurations that would
// silently produce meaningless sweeps: a negative instruction count or
// parallelism, and a warm-up consuming the whole run (the measurement
// region would be empty, so every IPC would be 0/0).
func (c *SweepConfig) fill() error {
	if c.Instructions < 0 {
		return fmt.Errorf("experiments: negative instruction count %d", c.Instructions)
	}
	if c.Instructions == 0 {
		c.Instructions = 150000
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("experiments: negative parallelism %d", c.Parallelism)
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Warmup >= uint64(c.Instructions) {
		return fmt.Errorf("experiments: warmup %d >= instructions %d leaves an empty measurement region",
			c.Warmup, c.Instructions)
	}
	if c.Variants == nil {
		c.Variants = Variants()
	}
	if c.Checkpoints != nil && c.ckptGate == nil {
		c.ckptGate = &checkpointGate{}
	}
	return nil
}

// applySampling copies the sweep's sampling parameters into a simulator
// configuration. Every dispatch path (sweep, ablation, Table 3) routes
// through it, so sampled runs are keyed apart from exact ones everywhere.
func (c *SweepConfig) applySampling(sc *sim.Config) {
	sc.SamplePeriod = c.SamplePeriod
	sc.SampleDetail = c.SampleDetail
	sc.SampleWarm = c.SampleWarm
}

// simConfigFor returns the develop-branch model configuration for opts with
// the sweep's cycle-skipping and sampling settings applied. Dispatch and
// cache keys share it, so NoSkip and sampled results are keyed apart from
// default ones.
func (c *SweepConfig) simConfigFor(opts core.Options) sim.Config {
	sc := DevelopConfigFor(opts)
	sc.NoCycleSkip = c.NoSkip
	c.applySampling(&sc)
	return sc
}

// runVariantSource simulates one cell from an abstract source factory on
// simCfg (the develop-branch model). mkSource must return a fresh
// start-of-trace source on every call (the checkpoint path invokes it more
// than once) together with a converter-statistics getter valid after the
// source is drained. In sampled mode with a checkpoint cache, the
// simulation resumes from a shared warmed-prefix checkpoint rather than
// re-warming.
func runVariantSource(p *synth.Profile, mkSource func() (champtrace.Source, func() core.Stats, func()), v Variant, simCfg sim.Config, cfg *SweepConfig) (Result, error) {
	if cfg.Checkpoints != nil && simCfg.SamplePeriod > 0 && cfg.Warmup > 0 {
		key := checkpointKey(p, v.Opts, simCfg, cfg.Instructions, cfg.Warmup)
		res, ok, err := runCheckpointed(cfg.Checkpoints, cfg.ckptGate, key, mkSource, simCfg, cfg.Warmup)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return res, nil
		}
	}
	cs, convStats, cleanup := mkSource()
	defer cleanup()
	// Traces carrying branch-regs need the §3.2.2 ChampSim patch;
	// simConfigFor (via DevelopConfigFor) pairs rules with options for
	// dispatch and cache keys alike.
	st, err := sim.Run(cs, simCfg, cfg.Warmup, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{IPC: st.IPC(), Sim: st, Conv: convStats()}, nil
}

// runVariant converts instrs under v and simulates the result, streaming
// conversion into the simulator batch by batch instead of materializing
// the converted trace — the slab-store-off path. instrs is read-only and
// may be shared by concurrent callers.
func runVariant(p *synth.Profile, instrs []cvp.Instruction, v Variant, simCfg sim.Config, cfg *SweepConfig) (Result, error) {
	mkSource := func() (champtrace.Source, func() core.Stats, func()) {
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs), v.Opts)
		return cs, cs.Stats, func() { cs.Close() }
	}
	return runVariantSource(p, mkSource, v, simCfg, cfg)
}

// runVariantSlab simulates one cell straight from a store slab: conversion
// already happened (this run or a previous process), so the cell is pure
// simulation over the shared read-only record view. The slab's persisted
// converter statistics stand in for the streaming converter's end-of-trace
// statistics — they are equal by construction, which the slab-transparency
// conformance oracle enforces.
func runVariantSlab(p *synth.Profile, sl *tracestore.Slab, v Variant, simCfg sim.Config, cfg *SweepConfig) (Result, error) {
	conv := sl.Conv()
	recs := sl.Records()
	mkSource := func() (champtrace.Source, func() core.Stats, func()) {
		src := champtrace.NewValuesSource(recs)
		return src, func() core.Stats { return conv }, func() {}
	}
	return runVariantSource(p, mkSource, v, simCfg, cfg)
}

// RunTrace generates one trace and simulates it under every variant on the
// develop-branch model.
func RunTrace(p synth.Profile, cfg SweepConfig) (TraceResult, error) {
	if err := cfg.fill(); err != nil {
		return TraceResult{}, err
	}
	instrs, err := p.GenerateBatch(cfg.Instructions)
	if err != nil {
		return TraceResult{}, err
	}
	tr := TraceResult{Profile: p, Results: make(map[string]Result, len(cfg.Variants))}
	for _, v := range cfg.Variants {
		res, err := runVariant(&p, instrs, v, cfg.simConfigFor(v.Opts), &cfg)
		if err != nil {
			return tr, fmt.Errorf("experiments: %s/%s: %w", p.Name, v.Name, err)
		}
		tr.Results[v.Name] = res
	}
	return tr, nil
}

// traceState is the per-trace shared state of a sweep: the generated
// instruction slab (produced once, read-only across the trace's variant
// workers), the count of variants still outstanding, and — with a slab
// store — one cell per converter-option equivalence class.
type traceState struct {
	once   sync.Once
	instrs []cvp.Instruction
	err    error
	left   atomic.Int32
	// classes is indexed by equivalence-class id (see converterClasses);
	// nil when the sweep runs without a slab store.
	classes []classCell
}

// classCell is the per-(trace, converter-option-class) slab hold: acquired
// once by whichever cell of the class gets there first, shared read-only
// across the class's variants, and released when the last cell drains.
type classCell struct {
	once sync.Once
	slab *tracestore.Slab
	err  error
	left atomic.Int32
}

// release drops the class's slab reference once the last cell has
// finished. The once.Do here is load-bearing even when it runs the no-op:
// a cell served entirely from the result cache never entered the
// initializer, and without the Do it would read cc.slab unsynchronized
// with the goroutine that acquired it.
func (cc *classCell) release() {
	if cc.left.Add(-1) != 0 {
		return
	}
	cc.once.Do(func() {})
	if cc.slab != nil {
		cc.slab.Release()
		cc.slab = nil
	}
}

// converterClasses groups variants into converter-option equivalence
// classes: variants with identical option bits produce identical converted
// traces, so they share one slab per trace. classOf maps variant index to
// class id; classOpts holds each class's option set.
func converterClasses(variants []Variant) (classOf []int, classOpts []core.Options) {
	classOf = make([]int, len(variants))
	byBits := make(map[uint8]int)
	for vi, v := range variants {
		bits := v.Opts.Bits()
		ci, ok := byBits[bits]
		if !ok {
			ci = len(classOpts)
			byBits[bits] = ci
			classOpts = append(classOpts, v.Opts)
		}
		classOf[vi] = ci
	}
	return classOf, classOpts
}

// RunSweep simulates every profile under every variant with a bounded pool
// of workers draining a (trace, variant) work queue: each trace is
// generated exactly once — by whichever worker gets there first — and its
// instruction slab is shared read-only across the trace's variant
// simulations, so sweep parallelism is trace×variant-wide rather than
// trace-wide.
//
// With cfg.Cache set, each (trace, variant) cell is first looked up by its
// content address; a hit skips generation, conversion, and simulation for
// that cell — and a fully-cached trace is never generated at all, because
// generation is deferred into the compute closure that only a cache miss
// invokes. Concurrent misses on the same key (e.g. overlapping sweeps from
// concurrent callers) share a single computation.
//
// Results are assembled deterministically: out[i] always corresponds to
// profiles[i] regardless of completion order. On failure the returned
// error is the errors.Join of every per-(trace, variant) failure, and out
// still carries every result that did succeed — a trace whose generation
// failed has an empty Results map (cached cells, which need no generation,
// are still delivered), a trace with a failed variant is missing only that
// variant's entry.
func RunSweep(profiles []synth.Profile, cfg SweepConfig) ([]TraceResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	nv := len(cfg.Variants)
	classOf, classOpts := converterClasses(cfg.Variants)
	classSize := make([]int32, len(classOpts))
	for _, ci := range classOf {
		classSize[ci]++
	}
	states := make([]traceState, len(profiles))
	cells := make([][]Result, len(profiles))
	cellOK := make([][]bool, len(profiles))
	cellErrs := make([][]error, len(profiles))
	for i := range profiles {
		states[i].left.Store(int32(nv))
		cells[i] = make([]Result, nv)
		cellOK[i] = make([]bool, nv)
		cellErrs[i] = make([]error, nv)
		if cfg.Slabs != nil {
			states[i].classes = make([]classCell, len(classOpts))
			for ci := range states[i].classes {
				states[i].classes[ci].left.Store(classSize[ci])
			}
		}
	}

	type job struct{ ti, vi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				st := &states[j.ti]
				v := cfg.Variants[j.vi]
				generate := func() ([]cvp.Instruction, error) {
					st.once.Do(func() {
						st.instrs, st.err = profiles[j.ti].GenerateBatch(cfg.Instructions)
					})
					return st.instrs, st.err
				}
				compute := func() (Result, error) {
					if cfg.Slabs == nil {
						instrs, err := generate()
						if err != nil {
							return Result{}, err
						}
						return runVariant(&profiles[j.ti], instrs, v, cfg.simConfigFor(v.Opts), &cfg)
					}
					// Conversion is hoisted to the class: the first cell of
					// the class to miss the result cache acquires the slab
					// (converting only if the store misses too — generation
					// is deferred all the way into that innermost miss);
					// every later cell simulates from the same mapping.
					cc := &st.classes[classOf[j.vi]]
					cc.once.Do(func() {
						cc.slab, cc.err = acquireSlab(cfg.Slabs, &profiles[j.ti],
							classOpts[classOf[j.vi]], cfg.Instructions, generate)
					})
					if cc.err != nil {
						return Result{}, cc.err
					}
					return runVariantSlab(&profiles[j.ti], cc.slab, v, cfg.simConfigFor(v.Opts), &cfg)
				}
				var res Result
				var err error
				var key resultcache.Key
				if cfg.Cache != nil || cfg.Exp != nil {
					key = cacheKey(&profiles[j.ti], v.Opts, cfg.simConfigFor(v.Opts), cfg.Instructions, cfg.Warmup)
				}
				if cfg.Cache != nil {
					res, err = cfg.Cache.GetOrCompute(key, compute)
				} else {
					res, err = compute()
				}
				if err == nil {
					cfg.recordCell(&profiles[j.ti], v.Name, cfg.simConfigFor(v.Opts), key, res)
				}
				if cfg.Slabs != nil {
					st.classes[classOf[j.vi]].release()
				}
				switch {
				case err == nil:
					cells[j.ti][j.vi] = res
					cellOK[j.ti][j.vi] = true
				case st.err != nil:
					// Generation failure: reported once per trace during
					// assembly, not once per variant.
				default:
					cellErrs[j.ti][j.vi] = fmt.Errorf("experiments: %s/%s: %w",
						profiles[j.ti].Name, v.Name, err)
				}
				if st.left.Add(-1) == 0 {
					st.instrs = nil // last variant done: release the trace
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					if cfg.Progress != nil {
						cfg.Progress(d, len(profiles))
					}
				}
			}
		}()
	}
	// With a slab store, a single goroutine warms the next trace's slabs
	// from disk while the current trace simulates: validation touches every
	// page, so by the time the workers reach the trace its slabs are
	// resident. The pace channel is capacity 1 and sends are non-blocking —
	// prefetch trails at most one trace behind the feed and never stalls
	// it, and a cold store (nothing on disk yet) degrades to a handful of
	// failed opens.
	var prefetchWG sync.WaitGroup
	var pace chan int
	if cfg.Slabs != nil && len(profiles) > 1 {
		pace = make(chan int, 1)
		prefetchWG.Add(1)
		go func() {
			defer prefetchWG.Done()
			for ti := range pace {
				for ci := range classOpts {
					cfg.Slabs.Prefetch(slabKey(&profiles[ti], classOpts[ci], cfg.Instructions))
				}
			}
		}()
	}
	// Trace-major order: all of a trace's variants are adjacent in the
	// queue, so at most ~Parallelism traces have live instruction slabs.
	for ti := range profiles {
		if pace != nil && ti+1 < len(profiles) {
			select {
			case pace <- ti + 1:
			default:
			}
		}
		for vi := 0; vi < nv; vi++ {
			jobs <- job{ti, vi}
		}
	}
	close(jobs)
	if pace != nil {
		close(pace)
	}
	wg.Wait()
	prefetchWG.Wait()

	out := make([]TraceResult, len(profiles))
	var errs []error
	for ti := range profiles {
		out[ti] = TraceResult{Profile: profiles[ti], Results: make(map[string]Result, nv)}
		if states[ti].err != nil {
			errs = append(errs, fmt.Errorf("experiments: generate %s: %w",
				profiles[ti].Name, states[ti].err))
		}
		for vi, v := range cfg.Variants {
			if err := cellErrs[ti][vi]; err != nil {
				errs = append(errs, err)
				continue
			}
			if cellOK[ti][vi] {
				out[ti].Results[v.Name] = cells[ti][vi]
			}
		}
	}
	// With an experiment store, the assembled results are exchanged for
	// their store-read copies before anything downstream sees them.
	if cfg.Exp != nil {
		misses, rbErr := storeReadBack(&cfg, out)
		if rbErr != nil {
			errs = append(errs, rbErr)
		}
		if cfg.ExpMisses != nil {
			cfg.ExpMisses(misses)
		}
	}
	return out, errors.Join(errs...)
}
