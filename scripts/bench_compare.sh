#!/usr/bin/env bash
# bench_compare.sh — run the paired allocation benchmarks on a reference
# revision and on the working tree, and print ns/op, B/op, allocs/op deltas.
#
# Usage:
#   scripts/bench_compare.sh [REF] [BENCH_REGEX]
#
#   REF          git revision to compare against (default: HEAD). When the
#                working tree is dirty the tree is stashed while the
#                reference run executes and restored afterwards.
#   BENCH_REGEX  -bench regex (default: the simulator-core set
#                'BenchmarkPipeline$|BenchmarkPipelineIdleHeavy$|BenchmarkMultiCorePipeline$|BenchmarkHierarchy$|ConvertSimulate|BenchmarkSlab').
#
# Environment:
#   GO         go binary (default: go)
#   BENCHTIME  -benchtime value (default: 3x — enough for stable allocs/op;
#              raise for publication-quality ns/op)
#
# The script never runs benchmarks concurrently and pins -count 1, so the
# two runs see the same machine state back to back.
set -euo pipefail

GO=${GO:-go}
BENCHTIME=${BENCHTIME:-3x}
REF=${1:-HEAD}
BENCH=${2:-'BenchmarkPipeline$|BenchmarkPipelineIdleHeavy$|BenchmarkMultiCorePipeline$|BenchmarkHierarchy$|ConvertSimulate|BenchmarkSlab'}

repo_root=$(git rev-parse --show-toplevel)
cd "$repo_root"

tmpdir=$(mktemp -d /tmp/bench_compare.XXXXXX)
old_out=$tmpdir/ref.out
new_out=$tmpdir/new.out
trap 'rm -rf "$tmpdir"' EXIT

# Refuse to "compare" a tree against itself: with a clean tree and REF at
# HEAD there is no stash-able baseline, and the two runs would measure the
# same code. (Without this check a stash that found nothing to save would
# silently produce a do-nothing comparison.)
dirty=0
if ! git diff --quiet || ! git diff --cached --quiet; then
	dirty=1
fi
if [ "$(git rev-parse "$REF^{commit}")" = "$(git rev-parse HEAD)" ] && [ "$dirty" -eq 0 ]; then
	echo "bench_compare: nothing to compare: working tree is clean and REF ($REF) is HEAD." >&2
	echo "bench_compare: make changes first, or compare two commits: make bench-compare REF=HEAD~1" >&2
	exit 1
fi

run_bench() {
	# Capture the full go test output so a build or test failure aborts the
	# comparison loudly instead of feeding an empty baseline to the deltas.
	local out
	if ! out=$("$GO" test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count 1 . 2>&1); then
		printf '%s\n' "$out" >&2
		return 1
	fi
	printf '%s\n' "$out" | grep -E '^Benchmark' || true
}

echo "== working tree =="
run_bench | tee "$new_out"

stashed=0
orig_head=
if [ "$dirty" -eq 1 ]; then
	git stash push --quiet --include-untracked -m bench_compare
	stashed=1
fi
restore() {
	if [ -n "$orig_head" ]; then
		git checkout --quiet "$orig_head"
		orig_head=
	fi
	if [ "$stashed" -eq 1 ]; then
		git stash pop --quiet
		stashed=0
	fi
}
trap 'restore; rm -rf "$tmpdir"' EXIT

if [ "$(git rev-parse "$REF^{commit}")" != "$(git rev-parse HEAD)" ]; then
	orig_head=$(git rev-parse --abbrev-ref HEAD)
	[ "$orig_head" = "HEAD" ] && orig_head=$(git rev-parse HEAD)
	git checkout --quiet "$REF"
fi

echo
echo "== reference ($REF) =="
run_bench | tee "$old_out"

restore

echo
echo "== deltas (reference -> working tree) =="
awk '
	# Columns shift when a benchmark reports extra metrics (e.g. MB/s), so
	# locate each value by the unit label that follows it.
	function metric(unit,   i) {
		for (i = 2; i <= NF; i++) if ($i == unit) return $(i - 1)
		return 0
	}
	function pct(o, n) {
		if (o == 0) return (n == 0) ? "0%" : "n/a"
		return sprintf("%+.1f%%", 100 * (n - o) / o)
	}
	NR == FNR {
		ns[$1] = metric("ns/op"); b[$1] = metric("B/op"); a[$1] = metric("allocs/op")
		next
	}
	{
		if (!($1 in ns)) { printf "%-40s (new benchmark)\n", $1; next }
		printf "%-40s ns/op %12d -> %12d (%s)   B/op %9d -> %9d (%s)   allocs/op %7d -> %7d (%s)\n",
			$1, ns[$1], metric("ns/op"), pct(ns[$1], metric("ns/op")),
			b[$1], metric("B/op"), pct(b[$1], metric("B/op")),
			a[$1], metric("allocs/op"), pct(a[$1], metric("allocs/op"))
	}
' "$old_out" "$new_out"
