package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tracerebase/internal/champtrace"
)

// randomStream builds a structurally coherent random ChampSim stream: PCs
// flow sequentially except after taken branches, whose targets are the next
// instruction's IP (maintained by construction, like real converted
// traces).
func randomStream(r *rand.Rand, n int) []*champtrace.Instruction {
	out := make([]*champtrace.Instruction, 0, n)
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		roll := r.Float64()
		switch {
		case roll < 0.15: // load
			in := &champtrace.Instruction{IP: pc}
			in.AddSrcReg(uint8(10 + r.Intn(8)))
			in.AddDestReg(uint8(30 + r.Intn(8)))
			in.AddSrcMem(0x10000000 + uint64(r.Intn(1<<18))*8)
			if r.Intn(10) == 0 {
				in.AddSrcMem(0x20000000 + uint64(r.Intn(1<<18))*64)
			}
			out = append(out, in)
			pc += 4
		case roll < 0.22: // store
			in := &champtrace.Instruction{IP: pc}
			in.AddSrcReg(uint8(30 + r.Intn(8)))
			in.AddDestMem(0x30000000 + uint64(r.Intn(1<<18))*8)
			out = append(out, in)
			pc += 4
		case roll < 0.35: // conditional branch
			taken := r.Intn(2) == 0
			in := mkCondBr(pc, taken)
			out = append(out, in)
			if taken {
				// Jump somewhere nearby, forward or back.
				delta := int64(r.Intn(64)) - 32
				npc := int64(pc) + delta*4
				if npc < 0x400000 {
					npc = 0x400000
				}
				pc = uint64(npc)
			} else {
				pc += 4
			}
		default: // ALU
			in := mkALU(pc, []uint8{uint8(30 + r.Intn(8))}, uint8(30+r.Intn(8)))
			out = append(out, in)
			pc += 4
		}
	}
	return out
}

// TestQuickAllRetire: for any coherent stream, every instruction retires,
// cycles advance, and IPC stays within machine width.
func TestQuickAllRetire(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 500 + r.Intn(2000)
		stream := randomStream(r, n)
		p, err := New(testConfig())
		if err != nil {
			return false
		}
		st, err := p.Run(champtrace.NewSliceSource(stream), 0, 0)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if st.Instructions != uint64(n) {
			t.Logf("retired %d of %d", st.Instructions, n)
			return false
		}
		if st.Cycles == 0 {
			return false
		}
		if st.IPC() > float64(testConfig().RetireWidth) {
			t.Logf("IPC %v over width", st.IPC())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicPipeline: identical streams and configs produce
// identical statistics.
func TestQuickDeterministicPipeline(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stream := randomStream(r, 1500)
		run := func() Stats {
			p, _ := New(testConfig())
			st, _ := p.Run(champtrace.NewSliceSource(stream), 200, 0)
			return st
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMispredictsBounded: mispredictions never exceed the number of
// branches, and target mispredictions never exceed taken branches.
func TestQuickMispredictsBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stream := randomStream(r, 2000)
		p, err := New(testConfig())
		if err != nil {
			return false
		}
		st, err := p.Run(champtrace.NewSliceSource(stream), 0, 0)
		if err != nil {
			return false
		}
		if st.DirMispredicts > st.CondBranches {
			t.Logf("dir mispredicts %d > cond %d", st.DirMispredicts, st.CondBranches)
			return false
		}
		if st.TargetMispredicts > st.TakenBranches {
			t.Logf("target mispredicts %d > taken %d", st.TargetMispredicts, st.TakenBranches)
			return false
		}
		if st.Mispredicts > st.DirMispredicts+st.TargetMispredicts {
			t.Logf("union exceeds sum")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWarmupConsistency: warmup never changes the total retired count,
// only the measured window.
func TestQuickWarmupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stream := randomStream(r, 3000)
		p1, _ := New(testConfig())
		full, err := p1.Run(champtrace.NewSliceSource(stream), 0, 0)
		if err != nil {
			return false
		}
		p2, _ := New(testConfig())
		warm, err := p2.Run(champtrace.NewSliceSource(stream), 1000, 0)
		if err != nil {
			return false
		}
		if full.Instructions != 3000 {
			return false
		}
		// The measured region excludes roughly the warmup (boundary is
		// quantized to a cycle).
		if warm.Instructions > full.Instructions-900 || warm.Instructions < full.Instructions-1200 {
			t.Logf("warm window %d of %d", warm.Instructions, full.Instructions)
			return false
		}
		return warm.Cycles < full.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
