package iprefetch

// FNLMMA is Seznec's FNL+MMA (Footprint Next Line + Multiple Miss Ahead).
// FNL learns, per line, whether the sequentially NEXT line is worth
// prefetching (a footprint bit with hysteresis) instead of blindly fetching
// it. MMA chains misses: each miss records itself as the successor of the
// previous miss, and on a miss the recorded chain is followed several
// entries ahead so the prefetcher runs ahead of the miss stream.
type FNLMMA struct {
	Base
	// fnl holds 2-bit worthiness counters for "line+1 follows line".
	fnl     []uint8
	fnlMask uint64
	// mma maps a miss line to the next miss line observed after it.
	mma     map[uint64]uint64
	maxMMA  int
	lastHit uint64 // previous accessed line (for FNL training)
	// lastMiss is the previous miss line (for MMA training).
	lastMiss uint64
	// ahead is how many chain steps MMA follows.
	ahead int
}

// NewFNLMMA returns an FNL+MMA prefetcher. FNL starts with every line
// deemed worthy — next-line prefetching is the default, and training
// DISABLES it where the next line never follows — matching the design's
// footprint-gating intent.
func NewFNLMMA() *FNLMMA {
	p := &FNLMMA{
		fnl:     make([]uint8, 1<<14),
		fnlMask: 1<<14 - 1,
		mma:     make(map[uint64]uint64, 8192),
		maxMMA:  8192,
		ahead:   3,
	}
	for i := range p.fnl {
		p.fnl[i] = 2
	}
	return p
}

// Name implements Prefetcher.
func (p *FNLMMA) Name() string { return "fnl-mma" }

func (p *FNLMMA) fnlIdx(line uint64) uint64 { return (line / LineSize) & p.fnlMask }

// OnAccess implements Prefetcher.
func (p *FNLMMA) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	// FNL: train the footprint bit of the PREVIOUS line if this access is
	// its sequential successor; prefetch our own successor when worthy.
	if p.lastHit != 0 {
		i := p.fnlIdx(p.lastHit)
		if lineAddr == p.lastHit+LineSize {
			if p.fnl[i] < 3 {
				p.fnl[i]++
			}
		} else if p.fnl[i] > 0 {
			p.fnl[i]--
		}
	}
	p.lastHit = lineAddr
	if p.fnl[p.fnlIdx(lineAddr)] >= 2 {
		buf = append(buf, lineAddr+LineSize)
		// Fully-confirmed streams look one line further.
		if p.fnl[p.fnlIdx(lineAddr+LineSize)] == 3 {
			buf = append(buf, lineAddr+2*LineSize)
		}
	}

	if !hit {
		// MMA: train successor link and follow the chain ahead.
		if p.lastMiss != 0 && p.lastMiss != lineAddr {
			if len(p.mma) >= p.maxMMA {
				// Table full: clear it wholesale — a deterministic global reset
				// (cheap and rare) stands in for hardware index eviction, where
				// per-entry map deletion would be iteration-order dependent and
				// break run-to-run determinism.
				clear(p.mma)
			}
			p.mma[p.lastMiss] = lineAddr
		}
		p.lastMiss = lineAddr
		cur := lineAddr
		for i := 0; i < p.ahead; i++ {
			next, ok := p.mma[cur]
			if !ok || next == cur {
				break
			}
			buf = append(buf, next)
			cur = next
		}
	}
	return buf
}
