package mem

import (
	"testing"
)

// TestMSHRCrossCoreBehavior pins the shared-level MSHR semantics: two cores
// missing the same line coalesce into one outstanding fill (a merged miss,
// one backing access), while misses to different lines contend for miss
// registers and serialize when the MSHRs are exhausted.
func TestMSHRCrossCoreBehavior(t *testing.T) {
	const lineA, lineB = 0x1000, 0x2000
	cases := []struct {
		name  string
		mshrs int
		addrs [2]uint64 // core 0 then core 1
		// wantMerged is core 1's expected merged-miss count;
		// wantBacking the number of backing-store accesses.
		wantMerged  uint64
		wantBacking int
		// contended marks that core 1's completion must be pushed past
		// an uncontended miss (MSHR-full serialization).
		contended bool
	}{
		{"same line coalesces", 4, [2]uint64{lineA, lineA}, 1, 1, false},
		{"different lines fit", 4, [2]uint64{lineA, lineB}, 0, 2, false},
		{"different lines contend", 1, [2]uint64{lineA, lineB}, 0, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			back := &flat{latency: 100}
			c := NewCache(Config{Name: "LLC", Sets: 16, Ways: 4, Latency: 2, MSHRs: tc.mshrs}, back)
			c.EnablePerCore(2)

			c.SetRequester(0)
			done0 := c.Access(tc.addrs[0], 0, Read)
			c.SetRequester(1)
			done1 := c.Access(tc.addrs[1], 1, Read)

			if back.accesses != tc.wantBacking {
				t.Errorf("backing accesses = %d, want %d", back.accesses, tc.wantBacking)
			}
			if got := c.CoreStats(1).MergedMisses; got != tc.wantMerged {
				t.Errorf("core 1 merged misses = %d, want %d", got, tc.wantMerged)
			}
			if got := c.CoreStats(0).Accesses; got != 1 {
				t.Errorf("core 0 accesses = %d, want 1", got)
			}
			if tc.wantMerged > 0 {
				// Coalesced: core 1's data arrives with core 0's fill.
				if done1 < done0 {
					t.Errorf("merged access completed at %d before the fill at %d", done1, done0)
				}
				if got := c.CoreStats(1).Misses; got != 0 {
					t.Errorf("core 1 misses = %d, want 0 (merged, not a new fill)", got)
				}
			}
			if tc.contended {
				// The single MSHR is held by core 0's fill until done0; core
				// 1's miss cannot even start before then.
				if done1 <= done0 {
					t.Errorf("contended miss completed at %d, not after the held fill at %d", done1, done0)
				}
			} else if tc.wantBacking == 2 && done1 > done0+1+2 {
				// Uncontended different-line misses overlap: core 1 finishes
				// one cycle (its issue skew) behind core 0, not serialized.
				t.Errorf("uncontended miss completed at %d, expected overlap with the fill at %d", done1, done0)
			}

			// The per-core split must tile the global counters.
			sum := c.CoreStats(0)
			s1 := c.CoreStats(1)
			sum.Accesses += s1.Accesses
			sum.Misses += s1.Misses
			sum.MergedMisses += s1.MergedMisses
			global := c.Stats()
			if sum.Accesses != global.Accesses || sum.Misses != global.Misses || sum.MergedMisses != global.MergedMisses {
				t.Errorf("per-core stats do not tile the global counters: %+v + %+v vs %+v",
					c.CoreStats(0), s1, global)
			}
		})
	}
}

// TestSharedSRRIPCrossCoreThrash pins the per-core-aware insertion: a core
// whose fills never see reuse is classified as thrashing after its
// probation and inserts at the most-distant RRPV, so the victim selector
// evicts its lines before a reuse-friendly neighbor's.
func TestSharedSRRIPCrossCoreThrash(t *testing.T) {
	s := NewSharedSRRIP(2, 1, 4)

	// Core 1 streams: far more fills than the probation window, zero hits.
	s.SetRequester(1)
	for i := 0; i < 2*sharedProbation; i++ {
		s.Fill(0, 1+i%3, false)
	}
	if !s.thrashing() {
		t.Fatal("streaming core not classified as thrashing after its probation window")
	}

	// Core 0 holds one reuse-friendly line.
	s.SetRequester(0)
	s.Fill(0, 0, false)
	s.Hit(0, 0)
	if s.thrashing() {
		t.Fatal("reuse-friendly core misclassified as thrashing")
	}

	// Refresh core 1's lines now that it is past probation: they must land
	// at the maximum re-reference prediction.
	s.SetRequester(1)
	for w := 1; w < 4; w++ {
		s.Fill(0, w, false)
		if got := s.srrip.rrpv[w]; got != rripMax {
			t.Fatalf("thrashing core's fill landed at RRPV %d, want %d", got, rripMax)
		}
	}

	// Victim selection must sacrifice the thrasher, not core 0's line.
	for i := 0; i < 3; i++ {
		v := s.Victim(0)
		if v == 0 {
			t.Fatalf("victim %d evicts the reuse-friendly core's line", v)
		}
		s.SetRequester(1)
		s.Fill(0, v, false)
	}
}

// TestSharedHierarchyIdleTransparency: with bandwidth 0 the DRAM port must
// be a pure pass-through — identical completion times to a direct access.
func TestPortZeroBandwidthTransparent(t *testing.T) {
	back := &flat{latency: 100}
	p := &Port{next: back}
	for _, cycle := range []uint64{0, 5, 3, 1000, 2} { // deliberately non-monotone
		if got, want := p.Access(0x40, cycle, Read), back.latency+cycle; got != want {
			t.Fatalf("transparent port at cycle %d returned %d, want %d", cycle, got, want)
		}
	}
	if p.requests != 0 {
		t.Errorf("transparent port counted %d requests", p.requests)
	}
}

// TestPortSerializesAtInterval: with a nonzero interval, back-to-back
// accesses queue on the port and complete one interval apart.
func TestPortSerializesAtInterval(t *testing.T) {
	back := &flat{latency: 100}
	p := &Port{next: back, Interval: 4}
	first := p.Access(0x40, 0, Read)
	second := p.Access(0x80, 0, Read)
	if second != first+4 {
		t.Errorf("second access completed at %d, want %d (one interval behind)", second, first+4)
	}
	if p.queued == 0 {
		t.Error("port recorded no queueing delay for a back-to-back access")
	}
}
