package tracerebase

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// TestArtifactWorkflow exercises the complete artifact pipeline through the
// file formats: synthesize a CVP-1 trace, store it gzip-compressed exactly
// as the originals were distributed, convert it file-to-file with the
// improved converter, and simulate the converted trace — asserting the
// round-tripped results equal the in-memory path.
func TestArtifactWorkflow(t *testing.T) {
	dir := t.TempDir()
	profile := synth.PublicProfile(synth.ComputeInt, 9)
	instrs, err := profile.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Write the CVP-1 trace, gzip-compressed.
	cvpPath := filepath.Join(dir, profile.Name+".cvp.gz")
	f, err := os.Create(cvpPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	cw := cvp.NewWriter(zw)
	for _, in := range instrs {
		if err := cw.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Convert file-to-file with all improvements.
	in, err := os.Open(cvpPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	reader, closer, err := cvp.OpenReader(cvpPath, in)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	champPath := filepath.Join(dir, profile.Name+".champsim")
	out, err := os.Create(champPath)
	if err != nil {
		t.Fatal(err)
	}
	w := champtrace.NewWriter(out)
	fileStats, err := core.ConvertStream(reader, w, core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	// 3. The file must be the strict 64-byte format.
	fi, err := os.Stat(champPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(fileStats.Out)*champtrace.RecordSize {
		t.Fatalf("file is %d bytes for %d records", fi.Size(), fileStats.Out)
	}

	// 4. Simulate from the file and from memory: identical stats.
	cf, err := os.Open(champPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	creader, ccloser, err := champtrace.OpenReader(champPath, cf)
	if err != nil {
		t.Fatal(err)
	}
	defer ccloser.Close()
	fromFile, err := sim.Run(creader, sim.ConfigDevelop(champtrace.RulesPatched), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}

	memRecs, memStats, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	if memStats != fileStats {
		t.Fatalf("conversion stats diverge:\nfile %+v\nmem  %+v", fileStats, memStats)
	}
	fromMem, err := sim.Run(champtrace.NewSliceSource(memRecs), sim.ConfigDevelop(champtrace.RulesPatched), 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile != fromMem {
		t.Fatalf("simulation stats diverge:\nfile %+v\nmem  %+v", fromFile, fromMem)
	}
	if fromFile.Instructions == 0 || fromFile.IPC() <= 0 {
		t.Fatalf("degenerate simulation: %+v", fromFile)
	}
}
