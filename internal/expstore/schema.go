// Package expstore is the append-only columnar store for sweep result
// cells — the (trace × variant × config) matrix a production deployment
// accumulates and explores interactively. Each block file holds a batch of
// cells column-major: dictionary encoding for low-cardinality strings,
// zigzag-delta varints for counters, raw fixed-width IEEE-754 for floats,
// and raw 32-byte content keys. A CRC-32C-checked footer carries per-column
// min/max/dictionary statistics, so a query prunes whole blocks from their
// footers and materializes only the columns it references; the header page
// is 4 KiB so the column data region is page-aligned and blocks are
// mmap-served, sharing page-cache residency across queries and processes.
//
// The store follows the tracestore discipline: a Corrupt header or a
// failed column checksum discards the block (removed, warned, counted —
// the cells are re-appended by the next sweep), a Foreign one (other
// format version or schema) is skipped but left in place, and concurrent
// block mappings are shared through a single-flight residency layer.
package expstore

import (
	"tracerebase/internal/core"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
)

// FormatVersion identifies the on-disk block layout. Bump it for any
// change to the header, footer, or column encodings; old-version files
// then read as foreign and are ignored.
const FormatVersion = 1

// Key is the 32-byte content address of a cell — the same result-cache key
// the sweep engine uses, so a store cell and its cache entry corroborate
// each other.
type Key = resultcache.Key

// Cell is one row of the experiment matrix: a (trace, variant, config)
// simulation outcome with its identity fields and the full counter set.
// Every field round-trips bit-exactly through a block, which is what lets
// the figure pipeline consume store-read cells in place of in-memory ones.
type Cell struct {
	// Trace, Category, Variant name the cell's position in the matrix.
	Trace    string
	Category string
	Variant  string
	// Config is the simulator model name ("develop", "ipc1"); Prefetcher
	// is its L1I instruction prefetcher; ROB, Cores and SamplePeriod are
	// the config-identity fields queries group and filter by.
	Config       string
	Prefetcher   string
	ROB          uint64
	Cores        uint64
	SamplePeriod uint64
	// Instructions and Warmup are the run lengths of the sweep that
	// produced the cell.
	Instructions uint64
	Warmup       uint64
	// Key is the cell's full content address (profile, options, config
	// identity, run lengths, code fingerprint) — the dedup and read-back
	// handle.
	Key Key
	// IPC is the headline metric; Sim and Conv carry the complete
	// simulator and converter counter sets.
	IPC  float64
	Sim  sim.Stats
	Conv core.Stats
}

// colKind selects a column's encoding and footer statistics.
type colKind uint8

const (
	// kindDict: dictionary-encoded string. The footer holds the block's
	// sorted distinct values; the data region holds one uvarint dictionary
	// index per cell. The dictionary doubles as the pruning statistic.
	kindDict colKind = 1
	// kindUint: zigzag-delta uvarint uint64. Footer stats: min, max.
	kindUint colKind = 2
	// kindFloat: raw little-endian IEEE-754 float64, 8-byte aligned so a
	// mapped block serves the column as a zero-copy []float64 view on
	// little-endian hosts. Footer stats: min, max.
	kindFloat colKind = 3
	// kindKey: raw 32-byte content key per cell. Footer stats:
	// lexicographic min, max.
	kindKey colKind = 4
)

// column describes one schema column: its name, encoding kind, and a
// pointer accessor into Cell. Exactly one accessor is non-nil, matching
// the kind.
type column struct {
	name string
	kind colKind
	str  func(*Cell) *string
	u64  func(*Cell) *uint64
	f64  func(*Cell) *float64
	ckey func(*Cell) *Key
}

func dictCol(name string, f func(*Cell) *string) column {
	return column{name: name, kind: kindDict, str: f}
}
func uintCol(name string, f func(*Cell) *uint64) column {
	return column{name: name, kind: kindUint, u64: f}
}
func floatCol(name string, f func(*Cell) *float64) column {
	return column{name: name, kind: kindFloat, f64: f}
}

// columns is the schema, in on-disk column order. The identity columns
// lead, then the headline metric, then the full simulator and converter
// counter sets. TestSchemaCoversStats pins this list against the Stats
// structs by reflection: adding a field to sim.Stats or core.Stats without
// a column here fails that test rather than silently dropping data.
var columns = []column{
	dictCol("trace", func(c *Cell) *string { return &c.Trace }),
	dictCol("category", func(c *Cell) *string { return &c.Category }),
	dictCol("variant", func(c *Cell) *string { return &c.Variant }),
	dictCol("config", func(c *Cell) *string { return &c.Config }),
	dictCol("prefetcher", func(c *Cell) *string { return &c.Prefetcher }),
	uintCol("rob", func(c *Cell) *uint64 { return &c.ROB }),
	uintCol("cores", func(c *Cell) *uint64 { return &c.Cores }),
	uintCol("sample_period", func(c *Cell) *uint64 { return &c.SamplePeriod }),
	uintCol("instructions", func(c *Cell) *uint64 { return &c.Instructions }),
	uintCol("warmup", func(c *Cell) *uint64 { return &c.Warmup }),
	{name: "key", kind: kindKey, ckey: func(c *Cell) *Key { return &c.Key }},
	floatCol("ipc", func(c *Cell) *float64 { return &c.IPC }),

	uintCol("sim_instructions", func(c *Cell) *uint64 { return &c.Sim.Instructions }),
	uintCol("cycles", func(c *Cell) *uint64 { return &c.Sim.Cycles }),
	uintCol("branches", func(c *Cell) *uint64 { return &c.Sim.Branches }),
	uintCol("cond_branches", func(c *Cell) *uint64 { return &c.Sim.CondBranches }),
	uintCol("taken_branches", func(c *Cell) *uint64 { return &c.Sim.TakenBranches }),
	uintCol("mispredicts", func(c *Cell) *uint64 { return &c.Sim.Mispredicts }),
	uintCol("dir_mispredicts", func(c *Cell) *uint64 { return &c.Sim.DirMispredicts }),
	uintCol("target_mispredicts", func(c *Cell) *uint64 { return &c.Sim.TargetMispredicts }),
	uintCol("returns", func(c *Cell) *uint64 { return &c.Sim.Returns }),
	uintCol("return_mispredicts", func(c *Cell) *uint64 { return &c.Sim.ReturnMispredicts }),
	uintCol("btb_misses", func(c *Cell) *uint64 { return &c.Sim.BTBMisses }),
	uintCol("loads", func(c *Cell) *uint64 { return &c.Sim.Loads }),
	uintCol("stores", func(c *Cell) *uint64 { return &c.Sim.Stores }),
	uintCol("l1i_accesses", func(c *Cell) *uint64 { return &c.Sim.L1I.Accesses }),
	uintCol("l1i_misses", func(c *Cell) *uint64 { return &c.Sim.L1I.Misses }),
	uintCol("l1i_useful_prefetches", func(c *Cell) *uint64 { return &c.Sim.L1I.UsefulPrefetches }),
	uintCol("l1d_accesses", func(c *Cell) *uint64 { return &c.Sim.L1D.Accesses }),
	uintCol("l1d_misses", func(c *Cell) *uint64 { return &c.Sim.L1D.Misses }),
	uintCol("l1d_useful_prefetches", func(c *Cell) *uint64 { return &c.Sim.L1D.UsefulPrefetches }),
	uintCol("l2_accesses", func(c *Cell) *uint64 { return &c.Sim.L2.Accesses }),
	uintCol("l2_misses", func(c *Cell) *uint64 { return &c.Sim.L2.Misses }),
	uintCol("l2_useful_prefetches", func(c *Cell) *uint64 { return &c.Sim.L2.UsefulPrefetches }),
	uintCol("llc_accesses", func(c *Cell) *uint64 { return &c.Sim.LLC.Accesses }),
	uintCol("llc_misses", func(c *Cell) *uint64 { return &c.Sim.LLC.Misses }),
	uintCol("llc_useful_prefetches", func(c *Cell) *uint64 { return &c.Sim.LLC.UsefulPrefetches }),
	uintCol("itlb_misses", func(c *Cell) *uint64 { return &c.Sim.ITLBMisses }),
	uintCol("dtlb_misses", func(c *Cell) *uint64 { return &c.Sim.DTLBMisses }),
	uintCol("stlb_misses", func(c *Cell) *uint64 { return &c.Sim.STLBMisses }),
	uintCol("skipped_cycles", func(c *Cell) *uint64 { return &c.Sim.SkippedCycles }),
	uintCol("cycle_skips", func(c *Cell) *uint64 { return &c.Sim.CycleSkips }),
	uintCol("sample_intervals", func(c *Cell) *uint64 { return &c.Sim.SampleIntervals }),
	uintCol("warmed_instructions", func(c *Cell) *uint64 { return &c.Sim.WarmedInstructions }),
	uintCol("skipped_instructions", func(c *Cell) *uint64 { return &c.Sim.SkippedInstructions }),
	floatCol("sample_ipc_mean", func(c *Cell) *float64 { return &c.Sim.SampleIPCMean }),
	floatCol("sample_ci95", func(c *Cell) *float64 { return &c.Sim.SampleCI95 }),

	uintCol("conv_in", func(c *Cell) *uint64 { return &c.Conv.In }),
	uintCol("conv_out", func(c *Cell) *uint64 { return &c.Conv.Out }),
	uintCol("conv_mem_no_dst", func(c *Cell) *uint64 { return &c.Conv.MemNoDst }),
	uintCol("conv_multi_dst_loads", func(c *Cell) *uint64 { return &c.Conv.MultiDstLoads }),
	uintCol("conv_base_update_loads", func(c *Cell) *uint64 { return &c.Conv.BaseUpdateLoads }),
	uintCol("conv_base_update_stores", func(c *Cell) *uint64 { return &c.Conv.BaseUpdateStores }),
	uintCol("conv_pre_index", func(c *Cell) *uint64 { return &c.Conv.PreIndex }),
	uintCol("conv_post_index", func(c *Cell) *uint64 { return &c.Conv.PostIndex }),
	uintCol("conv_cross_line", func(c *Cell) *uint64 { return &c.Conv.CrossLine }),
	uintCol("conv_dczva", func(c *Cell) *uint64 { return &c.Conv.DCZVA }),
	uintCol("conv_returns", func(c *Cell) *uint64 { return &c.Conv.Returns }),
	uintCol("conv_direct_calls", func(c *Cell) *uint64 { return &c.Conv.DirectCalls }),
	uintCol("conv_indirect_calls", func(c *Cell) *uint64 { return &c.Conv.IndirectCalls }),
	uintCol("conv_direct_jumps", func(c *Cell) *uint64 { return &c.Conv.DirectJumps }),
	uintCol("conv_indirect_jumps", func(c *Cell) *uint64 { return &c.Conv.IndirectJumps }),
	uintCol("conv_cond_branches", func(c *Cell) *uint64 { return &c.Conv.CondBranches }),
	uintCol("conv_rw_lr_branches", func(c *Cell) *uint64 { return &c.Conv.ReadWriteLRBranches }),
	uintCol("conv_cond_with_src", func(c *Cell) *uint64 { return &c.Conv.CondWithSrc }),
	uintCol("conv_flag_dst_added", func(c *Cell) *uint64 { return &c.Conv.FlagDstAdded }),
}

// colIndex maps column name to its schema position.
var colIndex = func() map[string]int {
	m := make(map[string]int, len(columns))
	for i, c := range columns {
		m[c.name] = i
	}
	return m
}()

// schemaKey is the content hash of the schema — column names, kinds, and
// order, under the format version. It is embedded in every block header
// and footer frame, so a block written by a build with a different schema
// reads as foreign rather than mis-decoding.
var schemaKey = func() Key {
	h := resultcache.NewHasher("tracerebase/expstore-schema").U64(FormatVersion)
	for _, c := range columns {
		h.Str(c.name).U64(uint64(c.kind))
	}
	return h.Sum()
}()

// ColumnNames lists the schema's column names in on-disk order, for
// query-language help output.
func ColumnNames() []string {
	out := make([]string, len(columns))
	for i, c := range columns {
		out[i] = c.name
	}
	return out
}

// NumericColumn reports whether name is a queryable numeric column (uint
// or float) — a valid metric for queries.
func NumericColumn(name string) bool {
	i, ok := colIndex[name]
	if !ok {
		return false
	}
	return columns[i].kind == kindUint || columns[i].kind == kindFloat
}
