package tracerebase

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// TestCacheCrossProcess exercises the result cache across real process
// boundaries: it builds the rebase binary, runs the same small sweep twice
// sequentially against one temp -cache-dir, and asserts the runs produce
// byte-identical stdout while the second run is served entirely from the
// cache — the on-disk store is the only state the two processes share.
func TestCacheCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the rebase binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rebase")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rebase")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cacheDir := filepath.Join(dir, "cache")
	run := func() (stdout, stderr []byte) {
		cmd := exec.Command(bin, "-exp", "fig1", "-step", "27",
			"-instructions", "4000", "-warmup", "1000", "-cache-dir", cacheDir)
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout = &outBuf
		cmd.Stderr = &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("rebase: %v\nstderr:\n%s", err, errBuf.Bytes())
		}
		return outBuf.Bytes(), errBuf.Bytes()
	}

	coldOut, coldErr := run()
	warmOut, warmErr := run()
	if !bytes.Equal(coldOut, warmOut) {
		t.Fatalf("warm run output differs from cold run output\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}

	// Stderr carries the cache summary line:
	//   cache: N hits (M mem, D disk), K misses, ...
	sum := regexp.MustCompile(`cache: (\d+) hits \((\d+) mem, (\d+) disk\), (\d+) misses`)
	parse := func(stderr []byte) (hits, disk, misses int) {
		m := sum.FindSubmatch(stderr)
		if m == nil {
			t.Fatalf("no cache summary in stderr:\n%s", stderr)
		}
		hits, _ = strconv.Atoi(string(m[1]))
		disk, _ = strconv.Atoi(string(m[3]))
		misses, _ = strconv.Atoi(string(m[4]))
		return hits, disk, misses
	}
	coldHits, _, coldMisses := parse(coldErr)
	if coldHits != 0 || coldMisses == 0 {
		t.Fatalf("cold run: %d hits, %d misses; want 0 hits and nonzero misses", coldHits, coldMisses)
	}
	warmHits, warmDisk, warmMisses := parse(warmErr)
	if warmHits != coldMisses || warmMisses != 0 {
		t.Fatalf("warm run: %d hits, %d misses; want %d hits and 0 misses", warmHits, warmMisses, coldMisses)
	}
	if warmDisk != warmHits {
		t.Fatalf("warm run: %d of %d hits from disk; a fresh process has no memory layer to hit", warmDisk, warmHits)
	}
}
