package experiments

import (
	"reflect"
	"testing"

	"tracerebase/internal/synth"
)

// TestRunMultiSweepParallelismDeterministic exercises the multi-core sweep's
// worker pool under the race detector and pins scheduling independence at
// unit-test scale (the conformance oracle proves it at full scale): a
// serial and a 4-worker run of the same co-schedule must produce deeply
// equal results.
func TestRunMultiSweepParallelismDeterministic(t *testing.T) {
	workloads, err := synth.CoSchedule("srvcrypto", 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) MultiTraceResult {
		cfg := SweepConfig{
			Instructions: 3000,
			Warmup:       500,
			Cores:        2,
			LLCPolicy:    "shared-srrip",
			MemBandwidth: 4,
			Parallelism:  par,
		}
		res, err := RunMultiSweep("srvcrypto", workloads, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return res
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("multi-core sweep results differ between -parallel 1 and 4")
	}
	for name, r := range a.Results {
		if len(r.Cores) != 2 {
			t.Fatalf("%s: %d per-core stats, want 2", name, len(r.Cores))
		}
		for i, cs := range r.Cores {
			if cs.Instructions == 0 || cs.Cycles == 0 {
				t.Fatalf("%s: core %d retired nothing: %+v", name, i, cs)
			}
		}
	}
}
