package resultcache

import (
	"fmt"

	"tracerebase/internal/frame"
)

// ErrCorrupt marks a cache entry that failed structural validation —
// truncated, checksum mismatch, wrong key, or an unknown record version.
// Callers treat it as a miss: the entry is discarded and recomputed, never
// served. It wraps frame.ErrCorrupt, whose TRRC framing (magic, version,
// embedded key, payload length, CRC-32C) this store shares with the other
// on-disk stores.
var ErrCorrupt = fmt.Errorf("resultcache: %w", frame.ErrCorrupt)

const (
	recordMagic   = "TRRC"
	recordVersion = 1
)

// encodeRecord frames payload as a self-validating record for key.
func encodeRecord(key Key, payload []byte) []byte {
	return frame.Encode(recordMagic, recordVersion, key, payload)
}

// decodeRecord validates the framing and returns the payload. Any
// structural problem yields an error wrapping ErrCorrupt (and therefore
// frame.ErrCorrupt).
func decodeRecord(key Key, buf []byte) ([]byte, error) {
	payload, err := frame.Decode(recordMagic, recordVersion, key, buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return payload, nil
}
