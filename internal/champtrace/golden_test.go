package champtrace

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// TestGoldenEncoding pins the exact byte layout of the 64-byte record —
// field order, widths, endianness. ChampSim reads this format with a raw
// struct read; any drift silently corrupts every converted trace.
func TestGoldenEncoding(t *testing.T) {
	in := Instruction{
		IP:       0x0000000000401234,
		IsBranch: true,
		Taken:    true,
		DestRegs: [2]uint8{26, 6},
		SrcRegs:  [4]uint8{26, 6, 25, 56},
		DestMem:  [2]uint64{0x1000, 0},
		SrcMem:   [4]uint64{0x2000, 0x2040, 0, 0},
	}
	want := "" +
		"3412400000000000" + // ip, little-endian
		"01" + "01" + // is-branch, taken
		"1a06" + // dest regs
		"1a061938" + // src regs
		"0010000000000000" + "0000000000000000" + // dest mem
		"0020000000000000" + "4020000000000000" + // src mem[0..1]
		"0000000000000000" + "0000000000000000" // src mem[2..3]
	got := hex.EncodeToString(in.Encode(nil))
	if got != want {
		t.Fatalf("encoding drifted:\n got  %s\n want %s", got, want)
	}
	var back Instruction
	if err := back.Decode(in.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("decode mismatch: %+v", back)
	}
}

// TestGoldenStream pins a two-record stream through Writer/Reader.
func TestGoldenStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := &Instruction{IP: 0x400000}
	a.AddSrcReg(10)
	a.AddDestReg(11)
	b := &Instruction{IP: 0x400004}
	b.AddSrcMem(0xdead0)
	for _, in := range []*Instruction{a, b} {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 2*RecordSize {
		t.Fatalf("stream length %d", buf.Len())
	}
	got, err := ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || *got[0] != *a || *got[1] != *b {
		t.Fatalf("stream mismatch: %+v", got)
	}
}
