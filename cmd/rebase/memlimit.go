// Soft memory limit for the run (-mem-limit). The pipeline recycles its big
// allocations — conversion scratch through the slab store's pools, simulator
// state across cells — so the steady-state live set is small and most GC
// cycles at the default GOGC=100 are wasted work. Setting a runtime memory
// limit and disabling the percentage trigger lets the heap float up to a
// bound sized from the run's parallelism (and clamped to what the machine
// can actually spare), collecting only when it matters.
package main

import (
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
)

const (
	memLimitBase    = 1 << 30   // fixed budget: slabs, caches, result assembly
	memLimitPerWork = 256 << 20 // per concurrent simulation
	memLimitFloor   = 256 << 20
)

// applyMemLimit configures the runtime's soft memory limit from the
// -mem-limit flag: "auto" derives a parallelism-scaled bound, "off" leaves
// the runtime defaults, anything else parses as an explicit size. A
// GOMEMLIMIT environment setting always wins — the flag then does nothing.
func applyMemLimit(spec string, parallelism int) error {
	if spec == "" || spec == "off" {
		return nil
	}
	if os.Getenv("GOMEMLIMIT") != "" {
		return nil
	}
	var limit int64
	if spec == "auto" {
		limit = autoMemLimit(parallelism, readMemAvailable())
	} else {
		var err error
		limit, err = parseMemSpec(spec)
		if err != nil {
			return err
		}
	}
	debug.SetMemoryLimit(limit)
	debug.SetGCPercent(-1)
	return nil
}

// autoMemLimit sizes the soft limit: a fixed base plus a per-worker
// allowance, clamped to 80% of the machine's available memory (when known)
// and floored so a loaded machine still gets a workable heap.
func autoMemLimit(parallelism int, available int64) int64 {
	limit := int64(memLimitBase) + int64(parallelism)*memLimitPerWork
	if available > 0 {
		if ceil := available * 8 / 10; limit > ceil {
			limit = ceil
		}
	}
	if limit < memLimitFloor {
		limit = memLimitFloor
	}
	return limit
}

// readMemAvailable returns the kernel's MemAvailable estimate in bytes, or
// 0 where /proc/meminfo is absent (non-Linux) or unreadable.
func readMemAvailable() int64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// parseMemSpec parses an explicit -mem-limit size: a positive integer with
// an optional binary suffix (KiB, MiB, GiB, TiB) or bare bytes.
func parseMemSpec(spec string) (int64, error) {
	mult := int64(1)
	num := spec
	for suffix, m := range map[string]int64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30, "TiB": 1 << 40,
	} {
		if strings.HasSuffix(spec, suffix) {
			mult = m
			num = strings.TrimSuffix(spec, suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid size %q (want e.g. 2GiB, 512MiB, or bytes)", spec)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("size %q overflows", spec)
	}
	return n * mult, nil
}
