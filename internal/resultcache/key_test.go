package resultcache

import (
	"strings"
	"testing"
)

func TestHasherDeterministic(t *testing.T) {
	mk := func() Key {
		return NewHasher("d").Str("abc").U64(7).I64(-1).F64(3.25).Bool(true).Bytes([]byte{1, 2}).Sum()
	}
	if mk() != mk() {
		t.Fatal("identical field sequences hash differently")
	}
}

// TestHasherUnambiguous: length delimiting must keep adjacent variable-
// width fields from aliasing.
func TestHasherUnambiguous(t *testing.T) {
	a := NewHasher("d").Str("ab").Str("c").Sum()
	b := NewHasher("d").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal(`("ab","c") and ("a","bc") collide`)
	}
	c := NewHasher("d").Bytes([]byte("ab")).Bytes([]byte("c")).Sum()
	d := NewHasher("d").Bytes([]byte("a")).Bytes([]byte("bc")).Sum()
	if c == d {
		t.Fatal("byte fields alias across boundaries")
	}
}

func TestHasherDomainSeparation(t *testing.T) {
	if NewHasher("x").U64(1).Sum() == NewHasher("y").U64(1).Sum() {
		t.Fatal("domains do not separate key spaces")
	}
}

func TestHasherFieldSensitivity(t *testing.T) {
	base := NewHasher("d").Str("s").U64(1).Bool(false).Sum()
	for name, k := range map[string]Key{
		"string": NewHasher("d").Str("t").U64(1).Bool(false).Sum(),
		"u64":    NewHasher("d").Str("s").U64(2).Bool(false).Sum(),
		"bool":   NewHasher("d").Str("s").U64(1).Bool(true).Sum(),
	} {
		if k == base {
			t.Fatalf("%s field change did not change the key", name)
		}
	}
}

func TestKeyHexRoundTrip(t *testing.T) {
	k := NewHasher("d").Str("roundtrip").Sum()
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != k {
		t.Fatal("hex round trip changed the key")
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted junk")
	}
	if _, err := ParseKey("abcd"); err == nil {
		t.Fatal("ParseKey accepted a short key")
	}
}

// TestFingerprintStable: the fingerprint is computed once, is non-empty,
// and carries one of the three documented forms.
func TestFingerprintStable(t *testing.T) {
	fp := Fingerprint()
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	if fp != Fingerprint() {
		t.Fatal("fingerprint changed between calls")
	}
	if !strings.HasPrefix(fp, "vcs:") && !strings.HasPrefix(fp, "bin:") && fp != "unversioned" {
		t.Fatalf("unexpected fingerprint form %q", fp)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	key := NewHasher("d").Str("rec").Sum()
	payload := []byte("some result bytes")
	rec := encodeRecord(key, payload)
	got, err := decodeRecord(key, rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
	// Every single-byte corruption must be caught.
	for i := range rec {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x01
		if _, err := decodeRecord(key, mut); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}
