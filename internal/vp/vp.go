// Package vp implements value prediction in the style of the first
// Championship Value Prediction (CVP-1) — the competition the traces this
// repository revolves around were released for. The CVP-1 record format
// carries the 64-bit values written to each destination register precisely
// so that predictors like these can be trained and scored on real industry
// workloads (§1: "They embed output register values, allowing studies that
// rely on actual program values").
//
// Four classic predictors are provided — last-value, stride, order-2 FCM,
// and a VTAGE-like tagged predictor — together with a championship-style
// evaluation harness reporting coverage and accuracy per instruction class.
package vp

import "fmt"

// Context carries the global execution context a predictor may hash into
// its indices, maintained by the evaluation harness.
type Context struct {
	// BranchHist is the recent conditional branch outcome history.
	BranchHist uint64
	// PathHist is a hash of recent instruction addresses.
	PathHist uint64
}

// Predictor predicts the 64-bit result of the next execution of the
// instruction at a PC. Predictions only count when the predictor is
// confident — mispredicting with confidence would squash the pipeline, so
// CVP-1 rewards knowing when not to predict.
type Predictor interface {
	// Name identifies the predictor.
	Name() string
	// Predict returns the predicted value and whether the predictor is
	// confident enough to use it.
	Predict(pc uint64, ctx Context) (uint64, bool)
	// Update trains the predictor with the actual produced value.
	Update(pc uint64, ctx Context, actual uint64)
}

// New constructs a predictor by name: "last-value", "stride", "fcm", or
// "vtage".
func New(name string) (Predictor, error) {
	switch name {
	case "last-value":
		return NewLastValue(14), nil
	case "stride":
		return NewStride(14), nil
	case "fcm":
		return NewFCM(12, 14), nil
	case "vtage":
		return NewVTAGE(DefaultVTAGEConfig()), nil
	}
	return nil, fmt.Errorf("vp: unknown predictor %q", name)
}

// Names lists the available predictors.
func Names() []string { return []string{"last-value", "stride", "fcm", "vtage"} }

// confidence is a saturating counter; predictions are used at >= confMin.
type confidence uint8

const (
	confMax confidence = 7
	confMin confidence = 4
)

func (c confidence) confident() bool { return c >= confMin }

func (c confidence) up() confidence {
	if c < confMax {
		return c + 1
	}
	return c
}

// down resets on a wrong value: CVP-style aggressive loss of confidence.
func (c confidence) down() confidence { return 0 }

// LastValue predicts the value produced last time by the same PC.
type LastValue struct {
	vals []uint64
	conf []confidence
	mask uint64
}

// NewLastValue builds a last-value predictor with 2^bits entries.
func NewLastValue(bits int) *LastValue {
	n := 1 << bits
	return &LastValue{vals: make([]uint64, n), conf: make([]confidence, n), mask: uint64(n - 1)}
}

// Name implements Predictor.
func (p *LastValue) Name() string { return "last-value" }

func (p *LastValue) idx(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict implements Predictor.
func (p *LastValue) Predict(pc uint64, ctx Context) (uint64, bool) {
	i := p.idx(pc)
	return p.vals[i], p.conf[i].confident()
}

// Update implements Predictor.
func (p *LastValue) Update(pc uint64, ctx Context, actual uint64) {
	i := p.idx(pc)
	if p.vals[i] == actual {
		p.conf[i] = p.conf[i].up()
	} else {
		p.vals[i] = actual
		p.conf[i] = p.conf[i].down()
	}
}

// Stride predicts last value + the last observed delta — the workhorse for
// induction variables and base-update address streams.
type Stride struct {
	vals    []uint64
	strides []uint64
	conf    []confidence
	mask    uint64
}

// NewStride builds a stride predictor with 2^bits entries.
func NewStride(bits int) *Stride {
	n := 1 << bits
	return &Stride{
		vals:    make([]uint64, n),
		strides: make([]uint64, n),
		conf:    make([]confidence, n),
		mask:    uint64(n - 1),
	}
}

// Name implements Predictor.
func (p *Stride) Name() string { return "stride" }

func (p *Stride) idx(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict implements Predictor.
func (p *Stride) Predict(pc uint64, ctx Context) (uint64, bool) {
	i := p.idx(pc)
	return p.vals[i] + p.strides[i], p.conf[i].confident()
}

// Update implements Predictor.
func (p *Stride) Update(pc uint64, ctx Context, actual uint64) {
	i := p.idx(pc)
	stride := actual - p.vals[i]
	if stride == p.strides[i] {
		p.conf[i] = p.conf[i].up()
	} else {
		p.strides[i] = stride
		p.conf[i] = p.conf[i].down()
	}
	p.vals[i] = actual
}

// FCM is an order-2 finite context method predictor: a first-level table
// records each PC's recent value history signature; a second-level table
// maps the signature to the next value. It captures repeating value
// SEQUENCES that defeat last-value and stride.
type FCM struct {
	hist     []uint64 // per-PC value-history signature
	histMask uint64
	vals     []uint64
	conf     []confidence
	valMask  uint64
}

// NewFCM builds an FCM with 2^histBits level-1 and 2^valBits level-2
// entries.
func NewFCM(histBits, valBits int) *FCM {
	return &FCM{
		hist:     make([]uint64, 1<<histBits),
		histMask: uint64(1<<histBits) - 1,
		vals:     make([]uint64, 1<<valBits),
		conf:     make([]confidence, 1<<valBits),
		valMask:  uint64(1<<valBits) - 1,
	}
}

// Name implements Predictor.
func (p *FCM) Name() string { return "fcm" }

func (p *FCM) l1(pc uint64) uint64 { return (pc >> 2) & p.histMask }

func (p *FCM) l2(sig uint64) uint64 { return (sig ^ sig>>17) & p.valMask }

// Predict implements Predictor.
func (p *FCM) Predict(pc uint64, ctx Context) (uint64, bool) {
	sig := p.hist[p.l1(pc)]
	i := p.l2(sig)
	return p.vals[i], p.conf[i].confident()
}

// Update implements Predictor.
func (p *FCM) Update(pc uint64, ctx Context, actual uint64) {
	h := p.l1(pc)
	sig := p.hist[h]
	i := p.l2(sig)
	if p.vals[i] == actual {
		p.conf[i] = p.conf[i].up()
	} else {
		p.vals[i] = actual
		p.conf[i] = p.conf[i].down()
	}
	// Shift the value's hash into the per-PC history signature. The
	// signature is a bounded window (the last four values in 16-bit
	// digests), so repeating sequences produce repeating signatures.
	p.hist[h] = sig<<16 | (mix(actual) & 0xffff)
}

func mix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	return v ^ v>>29
}
