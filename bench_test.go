// Package tracerebase benchmarks regenerate each table and figure of the
// paper at a reduced scale (subsampled suites, shorter traces) so the whole
// harness runs in minutes. Each benchmark reports the experiment's headline
// numbers as custom metrics; `cmd/rebase` produces the full-scale versions.
package tracerebase

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/cvpsim"
	"tracerebase/internal/experiments"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/sim/bpred"
	"tracerebase/internal/sim/cpu"
	"tracerebase/internal/sim/dprefetch"
	"tracerebase/internal/sim/mem"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
	"tracerebase/internal/vp"
)

// benchSweepConfig is the reduced-scale configuration shared by the figure
// benchmarks.
func benchSweepConfig() experiments.SweepConfig {
	return experiments.SweepConfig{Instructions: 40000, Warmup: 15000, Parallelism: 2}
}

// benchProfiles subsamples the public suite (every 9th trace = 15 traces).
func benchProfiles() []synth.Profile {
	suite := synth.PublicSuite()
	var out []synth.Profile
	for i := 0; i < len(suite); i += 9 {
		out = append(out, suite[i])
	}
	return out
}

// benchIPC1 subsamples the IPC-1 suite (every 10th trace = 5 traces).
func benchIPC1() []synth.IPC1Trace {
	suite := synth.IPC1Suite()
	var out []synth.IPC1Trace
	for i := 0; i < len(suite); i += 10 {
		out = append(out, suite[i])
	}
	return out
}

// BenchmarkTable1Improvements renders the improvement summary (Table 1).
func BenchmarkTable1Improvements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		experiments.RenderTable1(&buf)
		if buf.Len() == 0 {
			b.Fatal("empty render")
		}
	}
}

// figureSweep runs the shared Figs. 1–5 sweep once per benchmark iteration.
func figureSweep(b *testing.B, variants []string) []experiments.TraceResult {
	b.Helper()
	cfg := benchSweepConfig()
	if variants != nil {
		all := experiments.Variants()
		var vs []experiments.Variant
		for _, v := range all {
			for _, want := range variants {
				if v.Name == want {
					vs = append(vs, v)
				}
			}
		}
		cfg.Variants = vs
	}
	results, err := experiments.RunSweep(benchProfiles(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkFig1GeomeanIPCVariation regenerates Figure 1 and reports the
// geomean IPC deltas of the three headline improvement sets.
func BenchmarkFig1GeomeanIPCVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(figureSweep(b, nil))
		for _, r := range rows {
			switch r.Variant {
			case experiments.VariantMemory:
				b.ReportMetric(r.GeomeanDeltaPct, "memory_dIPC_%")
			case experiments.VariantBranch:
				b.ReportMetric(r.GeomeanDeltaPct, "branch_dIPC_%")
			case experiments.VariantAll:
				b.ReportMetric(r.GeomeanDeltaPct, "all_dIPC_%")
			}
		}
	}
}

// BenchmarkFig2PerTraceVariation regenerates Figure 2 and reports how many
// traces shift beyond +/-5% under All_imps.
func BenchmarkFig2PerTraceVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Fig2(figureSweep(b, []string{
			experiments.VariantNone, experiments.VariantAll,
		}))
		for _, s := range series {
			if s.Variant == experiments.VariantAll {
				b.ReportMetric(float64(s.Above5+s.Below5), "traces_beyond_5pct")
			}
		}
	}
}

// BenchmarkFig3SlowdownVsBranchMPKI regenerates Figure 3 and reports the
// mean flag-reg slowdown of the high-MPKI half vs the low-MPKI half — the
// correlation the figure demonstrates.
func BenchmarkFig3SlowdownVsBranchMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(figureSweep(b, []string{
			experiments.VariantNone, experiments.VariantFlagReg, experiments.VariantBranchRegs,
		}))
		half := len(rows) / 2
		var lo, hi float64
		for j, r := range rows {
			if j < half {
				lo += r.FlagRegSlowdownPct / float64(half)
			} else {
				hi += r.FlagRegSlowdownPct / float64(len(rows)-half)
			}
		}
		b.ReportMetric(lo, "lowMPKI_slowdown_%")
		b.ReportMetric(hi, "highMPKI_slowdown_%")
	}
}

// BenchmarkFig4BaseUpdateSpeedup regenerates Figure 4 and reports the
// speedup of the top vs bottom half by base-update load fraction.
func BenchmarkFig4BaseUpdateSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(figureSweep(b, []string{
			experiments.VariantNone, experiments.VariantBaseUpdate,
		}))
		half := len(rows) / 2
		var lo, hi float64
		for j, r := range rows {
			if j < half {
				lo += r.SpeedupPct / float64(half)
			} else {
				hi += r.SpeedupPct / float64(len(rows)-half)
			}
		}
		b.ReportMetric(lo, "fewupdates_speedup_%")
		b.ReportMetric(hi, "manyupdates_speedup_%")
	}
}

// BenchmarkFig5CallStack regenerates Figure 5 on the affected server subset
// and reports the return-MPKI reduction factor.
func BenchmarkFig5CallStack(b *testing.B) {
	// Use the BlrX30 subset directly so every simulated trace matters.
	var profiles []synth.Profile
	for _, p := range synth.PublicSuite() {
		if p.BlrX30Frac > 0 {
			profiles = append(profiles, p)
		}
	}
	profiles = profiles[:4]
	cfg := benchSweepConfig()
	cfg.Variants = []experiments.Variant{
		{Name: experiments.VariantNone, Opts: core.OptionsNone()},
		{Name: experiments.VariantCallStack, Opts: core.Options{CallStack: true}},
	}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.Fig5(results)
		if len(rows) == 0 {
			b.Fatal("no affected traces found")
		}
		var orig, fixed float64
		for _, r := range rows {
			orig += r.RetMPKIOrig
			fixed += r.RetMPKIFixed
		}
		b.ReportMetric(orig/float64(len(rows)), "retMPKI_orig")
		b.ReportMetric(fixed/float64(len(rows)), "retMPKI_fixed")
	}
}

// BenchmarkTable2IPC1Characterization regenerates the Table 2
// characterization on the subsampled IPC-1 suite.
func BenchmarkTable2IPC1Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchSweepConfig(), benchIPC1())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanIPCDeltaPct, "mean_dIPC_%")
		b.ReportMetric(res.MeanTargetDeltaPct, "mean_dTargetMPKI_%")
	}
}

// BenchmarkTable3IPC1Ranking regenerates the IPC-1 championship ranking on
// the subsampled suite and reports the winner's speedup on both trace sets.
func BenchmarkTable3IPC1Ranking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchSweepConfig(), benchIPC1())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Competition[0].Speedup, "winner_speedup_competition")
		b.ReportMetric(res.Fixed[0].Speedup, "winner_speedup_fixed")
	}
}

// ---- Component throughput benchmarks ----

// BenchmarkTraceGeneration measures synthetic CVP-1 generation throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(20000); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(20000)
}

// BenchmarkConverterThroughput measures cvp2champsim conversion speed with
// all improvements enabled.
func BenchmarkConverterThroughput(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(20000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll()); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(20000)
}

// BenchmarkSimulatorThroughput measures the develop-model simulation speed
// in instructions per second (reported via bytes/s).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(30000)
	if err != nil {
		b.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigDevelop(champtrace.RulesPatched), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkTraceGenerationStreaming measures the pull-based generator
// emitting into one recycled slab — the allocation-free counterpart of
// BenchmarkTraceGeneration.
func BenchmarkTraceGenerationStreaming(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	slab := cvp.MakeBatch(cvp.DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.Stream(20000)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := s.NextBatch(slab); err != nil {
				break
			}
		}
		s.Close()
	}
	b.SetBytes(20000)
}

// BenchmarkConvertSimulateMaterialized is the pre-streaming convert+simulate
// path: generate to []*Instruction, convert all of it to boxed records, then
// simulate from the materialized slice. Pair with
// BenchmarkConvertSimulateStreaming to see the allocation difference.
func BenchmarkConvertSimulateMaterialized(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(30000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigDevelop(champtrace.RulesPatched), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(30000)
}

// BenchmarkConvertSimulateStreaming is the same work on the streaming path:
// the simulator pulls pool-recycled conversion batches straight from the
// shared CVP value slab, materializing nothing.
func BenchmarkConvertSimulateStreaming(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.GenerateBatch(30000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs), core.OptionsAll())
		if _, err := sim.Run(cs, sim.ConfigDevelop(champtrace.RulesPatched), 0, 0); err != nil {
			b.Fatal(err)
		}
		cs.Close()
	}
	b.SetBytes(30000)
}

// BenchmarkSweepStreaming measures the full streaming sweep engine — the
// (trace, variant) work queue with shared generation — on a small
// trace-set/variant grid, reporting allocations.
func BenchmarkSweepStreaming(b *testing.B) {
	profiles := benchProfiles()[:4]
	cfg := benchSweepConfig()
	cfg.Variants = nil // all ten variants
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(profiles, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Compiled-trace store benchmarks ----

// benchSlabKey derives a distinct slab key per iteration for the store
// benchmarks (the production keying lives in the experiments layer).
func benchSlabKey(i int) tracestore.Key {
	return resultcache.NewHasher("tracerebase/bench-slab").U64(uint64(i)).Sum()
}

// BenchmarkSlabConvert measures a cold slab-store miss end to end: convert
// into the store's recycled scratch, persist the slab file, and remap it for
// serving. Steady-state allocations stay near zero because the conversion
// scratch cycles through the store's pool.
func BenchmarkSlabConvert(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.GenerateBatch(20000)
	if err != nil {
		b.Fatal(err)
	}
	store, err := tracestore.Open(tracestore.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl, err := store.GetOrConvert(benchSlabKey(i), func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
			return core.ConvertAllInto(scratch, cvp.NewValuesSource(instrs), core.OptionsAll())
		})
		if err != nil {
			b.Fatal(err)
		}
		sl.Release()
	}
	b.SetBytes(20000)
}

// BenchmarkSlabLoad measures the warm path a sweep variant sees: taking a
// reference on a resident slab, walking its zero-copy record view, and
// releasing it. The contract is 0 B/op — a slab hit must allocate nothing.
func BenchmarkSlabLoad(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.GenerateBatch(20000)
	if err != nil {
		b.Fatal(err)
	}
	store, err := tracestore.Open(tracestore.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	key := benchSlabKey(0)
	warm, err := store.GetOrConvert(key, func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
		return core.ConvertAllInto(scratch, cvp.NewValuesSource(instrs), core.OptionsAll())
	})
	if err != nil {
		b.Fatal(err)
	}
	recCount := len(warm.Records())
	warm.Release()
	b.ReportAllocs()
	b.ResetTimer()
	var ips uint64
	for i := 0; i < b.N; i++ {
		sl, ok := store.Get(key)
		if !ok {
			b.Fatal("resident slab missed")
		}
		recs := sl.Records()
		for j := range recs {
			ips += recs[j].IP
		}
		sl.Release()
	}
	b.SetBytes(int64(recCount * champtrace.RecordSize))
	if ips == 0 {
		b.Fatal("empty records")
	}
}

// BenchmarkTAGESCLPredict measures direction-predictor throughput.
func BenchmarkTAGESCLPredict(b *testing.B) {
	pred, err := bpred.New("tage-sc-l")
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	pcs := make([]uint64, 1024)
	outcomes := make([]bool, 1024)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(r.Intn(256))*4
		outcomes[i] = r.Intn(3) > 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pcs)
		pred.Predict(pcs[j])
		pred.Update(pcs[j], outcomes[j])
	}
}

// BenchmarkPipeline measures the steady-state cycle loop of the simulated
// core on a reusable Pipeline: the first Run warms every high-water-mark
// buffer, after which each full simulated interval (pipeline + hierarchy +
// predictors + prefetchers) must run with 0 allocs/op — the arena/ring
// refactor's contract.
func BenchmarkPipeline(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(30000)
	if err != nil {
		b.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		b.Fatal(err)
	}
	src := champtrace.NewSliceSource(recs)
	pipe, err := cpu.New(sim.ConfigDevelop(champtrace.RulesPatched))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pipe.Run(src, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		if _, err := pipe.Run(src, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkPipelineIdleHeavy is BenchmarkPipeline on the stress profile the
// event-horizon skipper was built for: a serialized pointer chase where the
// core idles on DRAM for hundreds of cycles per instruction. The same
// 0 allocs/op contract applies — the skipper's next-event register is plain
// pipeline state — and the benchmark reports what fraction of simulated
// cycles were jumped rather than ticked (the skipfrac metric).
func BenchmarkPipelineIdleHeavy(b *testing.B) {
	p := synth.StressIdle()
	instrs, err := p.Generate(30000)
	if err != nil {
		b.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		b.Fatal(err)
	}
	src := champtrace.NewSliceSource(recs)
	pipe, err := cpu.New(sim.ConfigDevelop(champtrace.RulesPatched))
	if err != nil {
		b.Fatal(err)
	}
	var st sim.Stats
	if st, err = pipe.Run(src, 0, 0); err != nil {
		b.Fatal(err)
	}
	if st.SkippedCycles == 0 {
		b.Fatal("idle-heavy trace skipped no cycles; the stress profile has lost its purpose")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		if st, err = pipe.Run(src, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
	b.ReportMetric(float64(st.SkippedCycles)/float64(st.Cycles), "skipfrac")
}

// BenchmarkMultiCorePipeline is BenchmarkPipeline at N=4: the thrash
// co-schedule on four lockstep cores over a per-core-aware shared LLC and a
// bandwidth-limited DRAM port. The per-core arenas keep the whole system at
// 0 allocs/op in steady state; throughput counts the records of all cores.
// skipfrac reports the cross-core event-horizon jumps of the cold first run
// (legal only when no core can progress, so the fraction is structurally
// below the single-core benchmarks'); the timed reuse runs see warm caches —
// each 15k-instruction trace's working set fits in the LLC — so their joint
// stalls, and hence their skips, collapse toward zero.
func BenchmarkMultiCorePipeline(b *testing.B) {
	const cores = 4
	cfg := sim.ConfigDevelop(champtrace.RulesPatched)
	cfg.Cores = cores
	cfg.Hierarchy.LLC.Policy = "shared-srrip"
	cfg.MemBandwidth = 4
	workloads, err := synth.CoSchedule("thrash", cores)
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]champtrace.Source, cores)
	slices := make([]*champtrace.SliceSource, cores)
	total := 0
	for i, p := range workloads {
		instrs, err := p.Generate(15000)
		if err != nil {
			b.Fatal(err)
		}
		recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
		if err != nil {
			b.Fatal(err)
		}
		s := champtrace.NewSliceSource(recs)
		slices[i] = s
		srcs[i] = s
		total += len(recs)
	}
	m, err := cpu.NewMulti(cfg)
	if err != nil {
		b.Fatal(err)
	}
	out, err := m.Run(srcs, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	var skipped, cycles uint64
	for _, st := range out {
		skipped += st.SkippedCycles
		cycles += st.Cycles
	}
	if skipped == 0 {
		b.Fatal("cold co-scheduled run skipped no cycles; the thrash scenario has lost its purpose")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range slices {
			s.Reset()
		}
		if _, err = m.Run(srcs, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(total))
	b.ReportMetric(float64(skipped)/float64(cycles), "skipfrac")
}

// BenchmarkHierarchy is BenchmarkPipeline's memory-side pair: a mixed
// read/write stream against the full four-level hierarchy with the develop
// configuration's data prefetchers attached, asserting the flat cache tables
// and reusable prefetch buffers hold at 0 allocs/op in steady state.
func BenchmarkHierarchy(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	if pf, err := dprefetch.New("ip-stride"); err == nil && pf != nil {
		h.L1D.SetPrefetcher(pf)
	}
	if pf, err := dprefetch.New("next-line"); err == nil && pf != nil {
		h.L2.SetPrefetcher(pf)
	}
	r := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 4096)
	ips := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = 0x10000000 + uint64(r.Intn(1<<16))*64
		ips[i] = 0x400000 + uint64(r.Intn(512))*4
	}
	// Warm the MSHR lists and prefetch buffers to their high-water marks.
	for i := 0; i < len(addrs); i++ {
		h.L1D.AccessIP(addrs[i], ips[i], uint64(i), mem.Read)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(addrs)
		kind := mem.Read
		if j%7 == 0 {
			kind = mem.Write
		}
		h.L1D.AccessIP(addrs[j], ips[j], uint64(i), kind)
	}
}

// BenchmarkCacheHierarchyAccess measures the latency-propagation cache
// model's access throughput.
func BenchmarkCacheHierarchyAccess(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	r := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = 0x10000000 + uint64(r.Intn(1<<16))*64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.L1D.Access(addrs[i%len(addrs)], uint64(i), mem.Read)
	}
}

// ---- Ablation benchmarks (design choices called out in DESIGN.md) ----

// ablationIPC runs one trace through a config and returns its IPC.
func ablationIPC(b *testing.B, cfg sim.Config) float64 {
	b.Helper()
	p := synth.PublicProfile(synth.Server, 30)
	instrs, err := p.Generate(60000)
	if err != nil {
		b.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		b.Fatal(err)
	}
	st, err := sim.Run(champtrace.NewSliceSource(recs), cfg, 20000, 0)
	if err != nil {
		b.Fatal(err)
	}
	return st.IPC()
}

// BenchmarkAblationDecoupledFrontEnd quantifies the decoupled front-end
// (FTQ + fetch-directed prefetch) against a coupled fetch on a server
// trace — the modeling choice §4.4 flags as decisive for instruction
// prefetching studies.
func BenchmarkAblationDecoupledFrontEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dec := sim.ConfigDevelop(champtrace.RulesPatched)
		cup := dec
		cup.Decoupled = false
		b.ReportMetric(ablationIPC(b, dec), "ipc_decoupled")
		b.ReportMetric(ablationIPC(b, cup), "ipc_coupled")
	}
}

// BenchmarkAblationITTAGE quantifies the indirect target predictor against
// BTB-only target prediction.
func BenchmarkAblationITTAGE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := sim.ConfigDevelop(champtrace.RulesPatched)
		without := with
		without.UseITTAGE = false
		b.ReportMetric(ablationIPC(b, with), "ipc_ittage")
		b.ReportMetric(ablationIPC(b, without), "ipc_btb_only")
	}
}

// BenchmarkAblationDataPrefetchers quantifies the Icelake-like L1D
// ip-stride + L2 next-line data prefetchers of the §4 configuration.
func BenchmarkAblationDataPrefetchers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := sim.ConfigDevelop(champtrace.RulesPatched)
		without := with
		without.L1DPrefetcher = "none"
		without.L2Prefetcher = "none"
		b.ReportMetric(ablationIPC(b, with), "ipc_prefetch")
		b.ReportMetric(ablationIPC(b, without), "ipc_noprefetch")
	}
}

// BenchmarkAblationLLCReplacement compares LLC replacement policies on a
// thrash-prone server workload.
func BenchmarkAblationLLCReplacement(b *testing.B) {
	for _, policy := range []string{"lru", "srrip", "drrip"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.ConfigDevelop(champtrace.RulesPatched)
				cfg.Hierarchy.LLC.Policy = policy
				b.ReportMetric(ablationIPC(b, cfg), "ipc")
			}
		})
	}
}

// BenchmarkAblationBranchPredictors compares the direction predictors
// available to the core on one branchy workload.
func BenchmarkAblationBranchPredictors(b *testing.B) {
	for _, name := range []string{"bimodal", "gshare", "tage", "tage-sc-l"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.ConfigDevelop(champtrace.RulesPatched)
				cfg.Predictor = name
				b.ReportMetric(ablationIPC(b, cfg), "ipc")
			}
		})
	}
}

// BenchmarkInstructionPrefetchers times each contest prefetcher on one
// icache-heavy IPC-1 trace and reports its speedup over no prefetching.
func BenchmarkInstructionPrefetchers(b *testing.B) {
	tr, ok := synth.FindIPC1("server_030")
	if !ok {
		b.Fatal("server_030 missing")
	}
	instrs, err := tr.Profile.Generate(60000)
	if err != nil {
		b.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsNone())
	if err != nil {
		b.Fatal(err)
	}
	baseSt, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigIPC1("none", champtrace.RulesOriginal), 20000, 0)
	if err != nil {
		b.Fatal(err)
	}
	base := baseSt.IPC()
	for _, pf := range []string{"next-line", "epi", "djolt", "fnl-mma", "barca", "pips", "jip", "mana", "tap"} {
		b.Run(pf, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigIPC1(pf, champtrace.RulesOriginal), 20000, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(st.IPC()/base, "speedup")
			}
		})
	}
}

// TestBenchmarkHelpers keeps the subsampling helpers honest.
func TestBenchmarkHelpers(t *testing.T) {
	if n := len(benchProfiles()); n != 15 {
		t.Errorf("benchProfiles: %d traces, want 15", n)
	}
	if n := len(benchIPC1()); n != 5 {
		t.Errorf("benchIPC1: %d traces, want 5", n)
	}
	names := map[string]bool{}
	for _, p := range benchProfiles() {
		if names[p.Name] {
			t.Errorf("duplicate %s", p.Name)
		}
		names[p.Name] = true
	}
	_ = fmt.Sprintf // keep fmt imported for future debug output
}

// BenchmarkValuePredictors runs the CVP-1 mini championship per predictor,
// reporting coverage and accuracy on a public trace.
func BenchmarkValuePredictors(b *testing.B) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(40000)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range vp.Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pred, err := vp.New(name)
				if err != nil {
					b.Fatal(err)
				}
				res, err := vp.Evaluate(cvp.NewSliceSource(instrs), pred)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.Coverage(), "coverage_%")
				b.ReportMetric(100*res.Accuracy(), "accuracy_%")
			}
		})
	}
}

// BenchmarkCVP1ReferenceModel quantifies the §1 reference-simulator flaws:
// IPC with and without the CVP-2-era fixes on a writeback-heavy trace.
func BenchmarkCVP1ReferenceModel(b *testing.B) {
	p := synth.PublicProfile(synth.Crypto, 0) // high base-update fraction
	instrs, err := p.Generate(60000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		flawed := cvpsim.DefaultConfig()
		fixed := cvpsim.DefaultConfig()
		fixed.CVP2Fixes = true
		fs, err := cvpsim.Run(cvp.NewSliceSource(instrs), flawed)
		if err != nil {
			b.Fatal(err)
		}
		xs, err := cvpsim.Run(cvp.NewSliceSource(instrs), fixed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fs.IPC(), "ipc_flawed")
		b.ReportMetric(xs.IPC(), "ipc_cvp2fixed")
	}
}
