package btb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tracerebase/internal/champtrace"
)

func TestBTBBasics(t *testing.T) {
	b := NewBTB(64, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("cold BTB returned a hit")
	}
	b.Update(0x1000, Entry{Target: 0x2000, Type: champtrace.BranchDirectJump})
	e, ok := b.Lookup(0x1000)
	if !ok || e.Target != 0x2000 || e.Type != champtrace.BranchDirectJump {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	// Overwrite in place.
	b.Update(0x1000, Entry{Target: 0x3000, Type: champtrace.BranchDirectCall})
	if e, _ := b.Lookup(0x1000); e.Target != 0x3000 {
		t.Errorf("update-in-place failed: %+v", e)
	}
}

func TestBTBEviction(t *testing.T) {
	b := NewBTB(4, 2) // 2 sets x 2 ways
	// Fill one set (PCs mapping to set 0: (pc>>2)&1 == 0).
	pcs := []uint64{0x00, 0x10, 0x20} // >>2 = 0, 4, 8 — all even → set 0
	for i, pc := range pcs[:2] {
		b.Update(pc, Entry{Target: uint64(i + 1)})
	}
	b.Lookup(pcs[0]) // refresh 0x00
	b.Update(pcs[2], Entry{Target: 3})
	if _, ok := b.Lookup(pcs[1]); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := b.Lookup(pcs[0]); !ok {
		t.Error("MRU entry evicted")
	}
}

func TestBTBValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(0, 1) },
		func() { NewBTB(7, 2) },
		func() { NewBTB(24, 2) }, // 12 sets, not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewBTB accepted invalid config")
				}
			}()
			f()
		}()
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped a value")
	}
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300)
	if r.Depth() != 3 {
		t.Errorf("Depth = %d", r.Depth())
	}
	for _, want := range []uint64{0x300, 0x200, 0x100} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %#x, %v; want %#x", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("drained RAS popped a value")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i * 0x10))
	}
	// Capacity 4: the oldest two entries (0x10, 0x20) are overwritten.
	for _, want := range []uint64{0x60, 0x50, 0x40, 0x30} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %#x, %v; want %#x", got, ok, want)
		}
	}
	if r.Depth() != 0 {
		t.Errorf("Depth = %d after draining", r.Depth())
	}
}

// Property: push/pop sequences behave as a bounded stack.
func TestQuickRASStack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 8
		r := NewRAS(cap)
		var model []uint64
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				r.Push(v)
				model = append(model, v)
				if len(model) > cap {
					model = model[len(model)-cap:]
				}
			} else {
				got, ok := r.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestITTAGEMonomorphic(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	pc := uint64(0x4000)
	target := uint64(0x8000)
	for i := 0; i < 50; i++ {
		it.Predict(pc)
		it.Update(pc, target)
	}
	got, ok := it.Predict(pc)
	if !ok || got != target {
		t.Fatalf("monomorphic indirect: Predict = %#x, %v", got, ok)
	}
	it.Update(pc, target)
}

// An indirect branch whose target is determined by the preceding control
// flow (virtual dispatch under a type-switch) must be captured via path
// history.
func TestITTAGEPathCorrelated(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	pc := uint64(0x4000)
	targets := []uint64{0x8000, 0x9000, 0xa000, 0xb000}
	correct, total := 0, 0
	for round := 0; round < 4000; round++ {
		which := round % len(targets)
		// Distinct preceding control flow per target.
		for d := 0; d < 3; d++ {
			it.PushPath(uint64(0x100000 + which*0x40 + d*8))
		}
		got, ok := it.Predict(pc)
		if round > 2000 {
			total++
			if ok && got == targets[which] {
				correct++
			}
		}
		it.Update(pc, targets[which])
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("path-correlated indirect accuracy = %.3f, want > 0.95", acc)
	}
}

func TestTargetPredictorRoutes(t *testing.T) {
	tp := NewTargetPredictor(1024, 4, 16, true)

	// Direct jump: BTB path. First encounter is a cold miss.
	pc, tgt := uint64(0x1000), uint64(0x2000)
	pred, known := tp.Predict(pc, champtrace.BranchDirectJump)
	if known {
		t.Error("cold BTB predicted a target")
	}
	if tp.Resolve(pc, champtrace.BranchDirectJump, true, pred, known, tgt, pc+4) {
		t.Error("cold miss reported correct")
	}
	pred, known = tp.Predict(pc, champtrace.BranchDirectJump)
	if !known || pred != tgt {
		t.Errorf("warm BTB Predict = %#x, %v", pred, known)
	}
	if !tp.Resolve(pc, champtrace.BranchDirectJump, true, pred, known, tgt, pc+4) {
		t.Error("warm hit reported incorrect")
	}
	st := tp.Stats()
	if st.TakenBranches != 2 || st.Mispredicts != 1 || st.BTBMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTargetPredictorCallReturn(t *testing.T) {
	tp := NewTargetPredictor(1024, 4, 16, false)
	callPC, callee, retPC := uint64(0x1000), uint64(0x8000), uint64(0x8010)

	// Call pushes the fallthrough on the RAS.
	pred, known := tp.Predict(callPC, champtrace.BranchDirectCall)
	tp.Resolve(callPC, champtrace.BranchDirectCall, true, pred, known, callee, callPC+4)
	// Return pops it and predicts perfectly.
	pred, known = tp.Predict(retPC, champtrace.BranchReturn)
	if !known || pred != callPC+4 {
		t.Fatalf("return Predict = %#x, %v; want %#x", pred, known, callPC+4)
	}
	if !tp.Resolve(retPC, champtrace.BranchReturn, true, pred, known, callPC+4, retPC+4) {
		t.Error("aligned return mispredicted")
	}
	if tp.Stats().ReturnMispredicts != 0 {
		t.Errorf("ReturnMispredicts = %d", tp.Stats().ReturnMispredicts)
	}
}

// TestMisclassifiedCallCorruptsRAS reproduces the §3.2.1 mechanism: an
// indirect call misclassified as a RETURN pops the stack instead of
// pushing, so both it and the genuine return that follows mispredict.
func TestMisclassifiedCallCorruptsRAS(t *testing.T) {
	run := func(blrType champtrace.BranchType) (retMispred uint64) {
		tp := NewTargetPredictor(1024, 4, 16, false)
		outer, blr, callee2, ret2, ret1 := uint64(0x1000), uint64(0x2000), uint64(0x3000), uint64(0x3010), uint64(0x2010)
		for i := 0; i < 100; i++ {
			// outer calls f at 0x2000.
			p, k := tp.Predict(outer, champtrace.BranchDirectCall)
			tp.Resolve(outer, champtrace.BranchDirectCall, true, p, k, blr, outer+4)
			// f does BLR X30-style dispatch to g at 0x3000 —
			// classified either correctly (indirect call) or as a
			// bogus return.
			p, k = tp.Predict(blr, blrType)
			tp.Resolve(blr, blrType, true, p, k, callee2, blr+4)
			// g returns to f.
			p, k = tp.Predict(ret2, champtrace.BranchReturn)
			tp.Resolve(ret2, champtrace.BranchReturn, true, p, k, blr+4, ret2+4)
			// f returns to outer.
			p, k = tp.Predict(ret1, champtrace.BranchReturn)
			tp.Resolve(ret1, champtrace.BranchReturn, true, p, k, outer+4, ret1+4)
		}
		return tp.Stats().ReturnMispredicts
	}
	good := run(champtrace.BranchIndirectCall)
	bad := run(champtrace.BranchReturn)
	if good != 0 {
		t.Errorf("correctly classified dispatch still caused %d return mispredicts", good)
	}
	if bad < 100 {
		t.Errorf("misclassified dispatch caused only %d return mispredicts, want >= 100", bad)
	}
}

func TestIdealTargets(t *testing.T) {
	tp := NewTargetPredictor(1024, 4, 16, false)
	tp.Ideal = true
	pred, known := tp.Predict(0x1000, champtrace.BranchIndirect)
	if known {
		t.Error("ideal predictor should defer to the caller")
	}
	if !tp.Resolve(0x1000, champtrace.BranchIndirect, true, pred, known, 0x9999, 0x1004) {
		t.Error("ideal resolve must always be correct")
	}
	if tp.Stats().Mispredicts != 0 {
		t.Errorf("ideal predictor recorded mispredicts: %+v", tp.Stats())
	}
}

func TestResetStats(t *testing.T) {
	tp := NewTargetPredictor(64, 4, 4, false)
	p, k := tp.Predict(0x10, champtrace.BranchDirectJump)
	tp.Resolve(0x10, champtrace.BranchDirectJump, true, p, k, 0x20, 0x14)
	tp.ResetStats()
	if tp.Stats() != (TargetStats{}) {
		t.Errorf("ResetStats left %+v", tp.Stats())
	}
}

func TestNotTakenBranchNoTargetCost(t *testing.T) {
	tp := NewTargetPredictor(64, 4, 4, false)
	p, k := tp.Predict(0x10, champtrace.BranchConditional)
	if !tp.Resolve(0x10, champtrace.BranchConditional, false, p, k, 0, 0x14) {
		t.Error("not-taken branch cannot target-mispredict")
	}
	if st := tp.Stats(); st.TakenBranches != 0 || st.Mispredicts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestITTAGEAllocationPressure drives many polymorphic branches through a
// small predictor: useful-bit decay must let new allocations land without
// panics or index escapes.
func TestITTAGEAllocationPressure(t *testing.T) {
	cfg := ITTAGEConfig{TableBits: 4, TagBits: 6, HistLengths: []int{2, 4, 8}}
	it := NewITTAGE(cfg)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		pc := uint64(0x1000 + rng.Intn(512)*4)
		tgt := uint64(0x100000 + rng.Intn(64)*0x100)
		it.Predict(pc)
		it.Update(pc, tgt)
	}
	// After heavy churn the predictor still answers coherently for a
	// freshly-trained monomorphic branch.
	for i := 0; i < 30; i++ {
		it.Predict(0x9000)
		it.Update(0x9000, 0xabc000)
	}
	if got, ok := it.Predict(0x9000); !ok || got != 0xabc000 {
		t.Fatalf("post-churn prediction = %#x, %v", got, ok)
	}
}

// Property: with W ways per set, W branches mapping to one set coexist.
func TestQuickBTBAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, ways = 16, 4
		b := NewBTB(sets*ways, ways)
		// PCs that collide in one set: stride of sets in (pc>>2).
		base := uint64(rng.Intn(1 << 20))
		var pcs []uint64
		for i := 0; i < ways; i++ {
			pcs = append(pcs, (base+uint64(i)*sets)<<2)
		}
		for i, pc := range pcs {
			b.Update(pc, Entry{Target: uint64(i + 1)})
		}
		for i, pc := range pcs {
			e, ok := b.Lookup(pc)
			if !ok || e.Target != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
