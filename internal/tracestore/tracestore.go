package tracestore

import (
	"bufio"
	"fmt"

	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/frame"
	"tracerebase/internal/resultcache"
)

// Config parameterizes Open.
type Config struct {
	// Dir is the store root. Slabs live under Dir/v<FormatVersion>/,
	// sharded by the first key byte.
	Dir string
	// MaxBytes bounds the on-disk footprint; least-recently-used slabs are
	// evicted past it. <= 0 selects the 8 GiB default (slabs are ~64 bytes
	// per instruction, far heavier than result records, so the budget is
	// correspondingly larger than resultcache's).
	MaxBytes int64
	// MaxResident bounds how many unreferenced slabs the store keeps
	// mapped for reuse within the process. <= 0 selects the default.
	// Referenced slabs never count against safety — eviction only drops
	// residency; the mapping lives until the last Release.
	MaxResident int
	// Warn, when set, receives printf-style diagnostics for conditions the
	// store absorbs (corrupt slabs, write failures) so runs degrade loudly
	// instead of silently.
	Warn func(format string, args ...any)
}

// DefaultMaxBytes is the on-disk budget when Config.MaxBytes is unset:
// large enough to hold every slab of a full `-exp all -step 3` run.
const DefaultMaxBytes = 8 << 30

// DefaultMaxResident is the resident-slab bound when Config.MaxResident is
// unset.
const DefaultMaxResident = 32

// Stats counts store activity since Open.
type Stats struct {
	// Hits = MemHits + DiskHits. Misses each trigger one conversion.
	Hits, Misses uint64
	// MemHits were served from an already-resident mapping, DiskHits by
	// mapping (and validating) a slab file.
	MemHits, DiskHits uint64
	// SharedWaits counts single-flight joins on an in-progress conversion.
	SharedWaits uint64
	// Converts counts invocations of the caller's convert function;
	// ConvertErrors counts the ones that failed (never stored).
	Converts, ConvertErrors uint64
	// Corrupt counts slab files that failed validation and were discarded;
	// each also shows up as a miss and a reconversion.
	Corrupt uint64
	// Evictions counts slab files removed by the disk LRU bound.
	Evictions uint64
	// WriteErrors counts persist failures; the converted slab is still
	// served from the heap, so a read-only store degrades gracefully.
	WriteErrors uint64
	// Prefetches counts slabs warmed ahead of use by Prefetch.
	Prefetches uint64
	// BytesMapped counts slab file bytes mapped from disk; BytesWritten
	// counts slab file bytes persisted.
	BytesMapped, BytesWritten uint64
}

// ConvertFunc builds the records for a slab on a store miss. scratch is a
// recycled buffer (possibly nil) to append into via core.ConvertAllInto;
// the returned slice may alias it or outgrow it.
type ConvertFunc func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error)

type flight struct {
	done chan struct{}
	err  error
}

type diskEntry struct {
	size  int64
	atime int64 // logical LRU clock, not wall time
}

// Store is the content-addressed slab store. All methods are safe for
// concurrent use.
type Store struct {
	dir         string // versioned root: Config.Dir/v<FormatVersion>
	maxBytes    int64
	maxResident int
	warn        func(string, ...any)

	// scratch recycles conversion buffers (grown to trace size after the
	// first conversion) so steady-state misses allocate no slab memory.
	scratch sync.Pool // of *[]champtrace.Instruction
	// bufw recycles the persist path's write buffer across slabs.
	bufw sync.Pool // of *bufio.Writer

	mu      sync.Mutex
	open    map[Key]*Slab // resident slabs (mapped, reusable)
	flights map[Key]*flight
	disk    map[Key]diskEntry
	total   int64 // sum of disk entry sizes
	clock   int64 // disk LRU logical time
	tick    uint64
	stats   Stats
	closed  bool
}

// Open opens (creating if needed) the slab store rooted at cfg.Dir and
// indexes the slabs already on disk. Leftover temp files from interrupted
// writes are removed; files that do not look like slabs are ignored.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("tracestore: empty store directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxResident <= 0 {
		cfg.MaxResident = DefaultMaxResident
	}
	if cfg.Warn == nil {
		cfg.Warn = func(string, ...any) {}
	}
	root := filepath.Join(cfg.Dir, fmt.Sprintf("v%d", FormatVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		dir:         root,
		maxBytes:    cfg.MaxBytes,
		maxResident: cfg.MaxResident,
		warn:        cfg.Warn,
		open:        make(map[Key]*Slab),
		flights:     make(map[Key]*flight),
		disk:        make(map[Key]diskEntry),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan builds the disk index, seeding LRU ages from file mtimes so
// eviction order survives across processes.
func (s *Store) scan() error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	type aged struct {
		key   Key
		size  int64
		mtime time.Time
	}
	var found []aged
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		shardDir := filepath.Join(s.dir, sh.Name())
		files, err := os.ReadDir(shardDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "tmp-") {
				os.Remove(filepath.Join(shardDir, name))
				continue
			}
			if !strings.HasSuffix(name, ".slab") {
				continue
			}
			key, err := resultcache.ParseKey(strings.TrimSuffix(name, ".slab"))
			if err != nil {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, aged{key, info.Size(), info.ModTime()})
		}
	}
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].mtime.Before(found[j-1].mtime); j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	for _, e := range found {
		s.clock++
		s.disk[e.key] = diskEntry{size: e.size, atime: s.clock}
		s.total += e.size
	}
	return nil
}

// EntryPath returns where the slab for key lives (or would live) on disk.
func (s *Store) EntryPath(key Key) string {
	hexKey := key.String()
	return filepath.Join(s.dir, hexKey[:2], hexKey+".slab")
}

// Dir returns the versioned store root.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DiskBytes returns the indexed on-disk footprint.
func (s *Store) DiskBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

func (s *Store) getScratch() []champtrace.Instruction {
	if p, ok := s.scratch.Get().(*[]champtrace.Instruction); ok {
		return (*p)[:0]
	}
	return nil
}

func (s *Store) putScratch(b []champtrace.Instruction) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	s.scratch.Put(&b)
}

// Get returns the slab for key if it is resident or valid on disk, taking
// a reference the caller must Release. It never converts and never joins
// an in-flight conversion.
func (s *Store) Get(key Key) (*Slab, bool) {
	s.mu.Lock()
	if sl, ok := s.open[key]; ok {
		s.ref(sl)
		s.stats.Hits++
		s.stats.MemHits++
		s.mu.Unlock()
		return sl, true
	}
	s.mu.Unlock()
	if sl := s.loadDisk(key, true); sl != nil {
		return sl, true
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return nil, false
}

// GetOrConvert returns the slab for key, converting and persisting it on a
// miss. Concurrent calls for the same key share one conversion
// (single-flight); each successful return carries its own reference, which
// the caller must Release. A failed conversion is returned to every waiter
// and is not stored, so a later call retries.
func (s *Store) GetOrConvert(key Key, convert ConvertFunc) (*Slab, error) {
	for {
		s.mu.Lock()
		if sl, ok := s.open[key]; ok {
			s.ref(sl)
			s.stats.Hits++
			s.stats.MemHits++
			s.mu.Unlock()
			return sl, nil
		}
		if fl, ok := s.flights[key]; ok {
			s.stats.SharedWaits++
			s.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, fl.err
			}
			// The leader installed the slab resident; retry from the top to
			// take a reference of our own. (If residency pressure already
			// evicted it, the retry reloads it from the file the leader
			// persisted.)
			continue
		}
		fl := &flight{done: make(chan struct{})}
		s.flights[key] = fl
		s.mu.Unlock()

		sl, err := s.fill(key, convert)
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		fl.err = err
		close(fl.done)
		if err != nil {
			return nil, err
		}
		return sl, nil
	}
}

// fill resolves a leader's lookup: disk, then convert+persist. The
// returned slab carries the leader's reference and has been installed
// resident.
func (s *Store) fill(key Key, convert ConvertFunc) (*Slab, error) {
	if sl := s.loadDisk(key, true); sl != nil {
		return sl, nil
	}

	s.mu.Lock()
	s.stats.Misses++
	s.stats.Converts++
	s.mu.Unlock()
	recs, conv, err := convert(s.getScratch())
	if err != nil {
		s.putScratch(recs)
		s.mu.Lock()
		s.stats.ConvertErrors++
		s.mu.Unlock()
		return nil, err
	}

	sl := s.persist(key, recs, conv)
	s.mu.Lock()
	if prior, ok := s.open[key]; ok {
		// A Prefetch mapped the just-persisted file before we installed the
		// conversion result: adopt the resident mapping, drop ours.
		s.ref(prior)
		s.destroyLocked(sl)
		s.mu.Unlock()
		return prior, nil
	}
	s.install(sl)
	s.ref(sl)
	s.mu.Unlock()
	return sl, nil
}

// Prefetch warms the slab for key from disk — validating it touches every
// page — so a subsequent GetOrConvert is a resident hit. It takes no
// reference and converts nothing; a miss or corrupt slab is simply left
// for the eventual GetOrConvert to resolve.
func (s *Store) Prefetch(key Key) {
	s.mu.Lock()
	_, resident := s.open[key]
	_, inFlight := s.flights[key]
	s.mu.Unlock()
	if resident || inFlight {
		return
	}
	if s.loadDisk(key, false) != nil {
		s.mu.Lock()
		s.stats.Prefetches++
		s.mu.Unlock()
	}
}

// loadDisk maps and validates the slab file for key, installs it resident,
// and (when ref is set) takes a caller reference. It returns nil on miss.
// Corrupt files are removed so they are reconverted, never served; foreign
// files (other format version or architecture) are left in place for the
// native writer to atomically replace.
func (s *Store) loadDisk(key Key, ref bool) *Slab {
	path := s.EntryPath(key)
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil
	}
	size := info.Size()
	verdict := headerCorrupt
	var sl *Slab
	if size >= headerSize+footerSize {
		var data []byte
		data, err = mapFile(f, size)
		if err == nil {
			var h header
			h, verdict = parseHeader(data[:headerSize], key)
			if verdict == headerOK {
				var conv core.Stats
				if !checkFooter(data, h) {
					verdict = headerCorrupt
				} else if conv, err = decodeMeta(metaRegion(data, h)); err != nil {
					verdict = headerCorrupt
				} else {
					sl = &Slab{
						store: s,
						key:   key,
						conv:  conv,
						recs:  viewRecords(data, h.count),
						data:  data,
					}
				}
			}
			if sl == nil {
				unmapFile(data)
			}
		}
	}
	f.Close()
	if sl == nil {
		if verdict == headerCorrupt {
			os.Remove(path)
			s.warn("tracestore: discarding corrupt slab %s", path)
			s.mu.Lock()
			s.stats.Corrupt++
			if e, ok := s.disk[key]; ok {
				s.total -= e.size
				delete(s.disk, key)
			}
			s.mu.Unlock()
		}
		return nil
	}
	now := time.Now()
	os.Chtimes(path, now, now) // refresh cross-process LRU age; best-effort
	s.mu.Lock()
	if prior, ok := s.open[key]; ok {
		// Lost a race with another loader (Prefetch vs GetOrConvert): keep
		// the installed mapping, drop ours.
		if ref {
			s.ref(prior)
			s.stats.Hits++
			s.stats.MemHits++
		}
		s.mu.Unlock()
		unmapFile(sl.data)
		return prior
	}
	s.stats.Hits++
	s.stats.DiskHits++
	s.stats.BytesMapped += uint64(size)
	s.clock++
	if e, ok := s.disk[key]; ok {
		e.atime = s.clock
		s.disk[key] = e
	} else {
		// Written by another process after our scan.
		s.disk[key] = diskEntry{size: size, atime: s.clock}
		s.total += size
	}
	s.install(sl)
	if ref {
		s.ref(sl)
	}
	s.mu.Unlock()
	return sl
}

// ref (mu held) takes a caller reference and refreshes residency LRU age.
func (s *Store) ref(sl *Slab) {
	sl.refs++
	s.tick++
	sl.lastUse = s.tick
}

// install (mu held) makes sl resident and trims residency to the bound,
// least recently used first. Eviction only drops the store's residency
// hold: a victim still referenced by a simulation stays mapped until its
// last Release; a fully idle one is unmapped immediately.
func (s *Store) install(sl *Slab) {
	if s.closed {
		// Store closed underneath a racing fill: hand the slab to the
		// caller un-resident; its last Release destroys it.
		return
	}
	s.open[sl.key] = sl
	sl.resident = true
	s.tick++
	sl.lastUse = s.tick
	for len(s.open) > s.maxResident {
		var victim *Slab
		for _, cand := range s.open {
			if cand == sl {
				continue
			}
			if victim == nil || cand.lastUse < victim.lastUse {
				victim = cand
			}
		}
		if victim == nil {
			break
		}
		delete(s.open, victim.key)
		victim.resident = false
		if victim.refs == 0 {
			s.destroyLocked(victim)
		}
	}
}

// destroyLocked releases victim's backing memory while holding s.mu. It
// inlines Slab.destroy minus the re-lock.
func (s *Store) destroyLocked(victim *Slab) {
	if victim.data != nil {
		unmapFile(victim.data)
		victim.data = nil
	} else if victim.heap {
		// putScratch touches only the pool; safe under mu.
		s.putScratch(victim.recs)
	}
	victim.recs = nil
	victim.destroyed = true
}

// persist writes the slab file atomically (temp + rename), remaps it so
// the served records are the shared read-only file pages, and recycles the
// conversion scratch. On any write failure it degrades to serving the heap
// slab directly: the run proceeds, the failure is counted and warned.
func (s *Store) persist(key Key, recs []champtrace.Instruction, conv core.Stats) *Slab {
	heapSlab := func() *Slab {
		return &Slab{store: s, key: key, conv: conv, recs: recs, heap: true}
	}
	meta, err := encodeMeta(conv)
	if err != nil {
		return s.persistFailed(heapSlab, err)
	}
	h := header{count: len(recs), metaLen: len(meta), key: key}
	path := s.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return s.persistFailed(heapSlab, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return s.persistFailed(heapSlab, err)
	}
	w, _ := s.bufw.Get().(*bufio.Writer)
	if w == nil {
		w = bufio.NewWriterSize(io.Discard, 1<<20)
	}
	w.Reset(tmp)
	body := recordBytes(recs)
	var crc uint32
	writeErr := func() error {
		if _, err := w.Write(encodeHeader(h)); err != nil {
			return err
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
		crc = frame.Update(0, body)
		if _, err := w.Write(meta); err != nil {
			return err
		}
		crc = frame.Update(crc, meta)
		if _, err := w.Write(encodeFooter(crc)); err != nil {
			return err
		}
		return w.Flush()
	}()
	w.Reset(io.Discard) // drop the file reference before pooling
	s.bufw.Put(w)
	if writeErr == nil {
		writeErr = tmp.Close()
	} else {
		tmp.Close()
	}
	if writeErr == nil {
		writeErr = os.Rename(tmp.Name(), path)
	}
	if writeErr != nil {
		os.Remove(tmp.Name())
		return s.persistFailed(heapSlab, writeErr)
	}

	size := h.fileSize()
	s.mu.Lock()
	s.stats.BytesWritten += uint64(size)
	if e, ok := s.disk[key]; ok {
		s.total -= e.size
	}
	s.clock++
	s.disk[key] = diskEntry{size: size, atime: s.clock}
	s.total += size
	evict := s.collectEvictions(key)
	s.mu.Unlock()
	for _, k := range evict {
		os.Remove(s.EntryPath(k))
	}

	// Serve the file mapping, not the heap copy, so the scratch returns to
	// the pool and every consumer of this slab — including other processes
	// — shares one set of page-cache pages.
	f, err := os.Open(path)
	if err != nil {
		return heapSlab() // evicted already?; serve from heap, no warning needed
	}
	data, err := mapFile(f, size)
	f.Close()
	if err != nil {
		return heapSlab()
	}
	sl := &Slab{
		store: s,
		key:   key,
		conv:  conv,
		recs:  viewRecords(data, h.count),
		data:  data,
	}
	s.mu.Lock()
	s.stats.BytesMapped += uint64(size)
	s.mu.Unlock()
	s.putScratch(recs)
	return sl
}

func (s *Store) persistFailed(heapSlab func() *Slab, err error) *Slab {
	s.warn("tracestore: slab write failed (serving from memory): %v", err)
	s.mu.Lock()
	s.stats.WriteErrors++
	s.mu.Unlock()
	return heapSlab()
}

// collectEvictions (mu held) trims the disk index to the size bound,
// oldest first, sparing the just-written key, and returns the keys whose
// files the caller must remove. Removing a file whose mapping is still
// live is safe on unix: the pages outlive the directory entry.
func (s *Store) collectEvictions(justWritten Key) []Key {
	var out []Key
	for s.total > s.maxBytes {
		var victim Key
		var victimAge int64
		found := false
		for k, e := range s.disk {
			if k == justWritten {
				continue
			}
			if !found || e.atime < victimAge {
				victim, victimAge, found = k, e.atime, true
			}
		}
		if !found {
			break
		}
		s.total -= s.disk[victim].size
		delete(s.disk, victim)
		s.stats.Evictions++
		out = append(out, victim)
	}
	return out
}

// Close drops every resident slab. Slabs still referenced stay mapped
// until their last Release; everything else is unmapped now. The store
// must not be used after Close.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	for k, sl := range s.open {
		delete(s.open, k)
		sl.resident = false
		if sl.refs == 0 {
			s.destroyLocked(sl)
		}
	}
	s.mu.Unlock()
}
