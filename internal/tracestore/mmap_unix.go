//go:build unix

package tracestore

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared: every process mapping
// the same slab file shares one copy in the page cache. On unix it is legal
// for the LRU sweep to unlink a file that still has live mappings — the
// pages stay valid until the last munmap.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
