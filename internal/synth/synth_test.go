package synth

import (
	"testing"

	"tracerebase/internal/cvp"
)

func testProfile() Profile {
	p := PublicProfile(ComputeInt, 7)
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := testProfile()
	a, err := p.Generate(5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].PC != b[i].PC || a[i].Class != b[i].Class || a[i].Taken != b[i].Taken || a[i].EffAddr != b[i].EffAddr {
			t.Fatalf("instr %d differs between identical generations", i)
		}
	}
}

func TestGeneratedInstructionsValid(t *testing.T) {
	for _, cat := range []Category{ComputeInt, ComputeFP, Crypto, Server} {
		p := PublicProfile(cat, 3)
		instrs, err := p.Generate(20000)
		if err != nil {
			t.Fatalf("%s: %v", cat, err)
		}
		for i, in := range instrs {
			if err := in.Validate(); err != nil {
				t.Fatalf("%s instr %d: %v (%+v)", cat, i, err, in)
			}
		}
	}
}

// TestControlFlowConsistency checks the fundamental trace invariant the
// simulator relies on: a taken branch's target is the next instruction's
// PC, and a not-taken conditional falls through to PC+4.
func TestControlFlowConsistency(t *testing.T) {
	for _, cat := range []Category{ComputeInt, Server} {
		p := PublicProfile(cat, 11)
		instrs, err := p.Generate(30000)
		if err != nil {
			t.Fatal(err)
		}
		violations := 0
		for i := 0; i+1 < len(instrs); i++ {
			in, next := instrs[i], instrs[i+1]
			if !in.Class.IsBranch() {
				continue
			}
			if in.Taken {
				if next.PC != in.Target {
					violations++
				}
			} else if next.PC != in.PC+4 {
				violations++
			}
		}
		// The only allowed discontinuities are top-level root-function
		// transitions (after a suppressed top-level RET), which are not
		// branch records at all — so branches themselves must be
		// perfectly consistent.
		if violations != 0 {
			t.Errorf("%s: %d control-flow violations", cat, violations)
		}
	}
}

// TestCallReturnAlignment: every RET's target must be the instruction after
// some earlier call — the property that makes the RAS work.
func TestCallReturnAlignment(t *testing.T) {
	p := PublicProfile(Server, 8) // servers have plenty of calls
	instrs, err := p.Generate(30000)
	if err != nil {
		t.Fatal(err)
	}
	callSites := map[uint64]bool{}
	rets, aligned := 0, 0
	for _, in := range instrs {
		if in.Class == cvp.ClassUncondDirect && in.WritesReg(lrReg) ||
			in.Class == cvp.ClassUncondIndirect && in.WritesReg(lrReg) {
			callSites[in.PC+4] = true
		}
		if in.Class == cvp.ClassUncondIndirect && in.ReadsReg(lrReg) && len(in.DstRegs) == 0 {
			rets++
			if callSites[in.Target] {
				aligned++
			}
		}
	}
	if rets == 0 {
		t.Fatal("no returns generated")
	}
	if aligned != rets {
		t.Errorf("%d of %d returns target a call fallthrough", aligned, rets)
	}
}

func TestInstructionMix(t *testing.T) {
	p := testProfile()
	instrs, err := p.Generate(50000)
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, conds, branches, memNoDst, multiDst, flagCmps int
	for _, in := range instrs {
		switch {
		case in.IsLoad():
			loads++
			if len(in.DstRegs) == 0 {
				memNoDst++
			}
			if len(in.DstRegs) >= 2 {
				multiDst++
			}
		case in.IsStore():
			stores++
			if len(in.DstRegs) == 0 {
				memNoDst++
			}
		case in.Class == cvp.ClassCondBranch:
			conds++
		case in.Class == cvp.ClassALU && len(in.DstRegs) == 0:
			flagCmps++
		}
		if in.Class.IsBranch() {
			branches++
		}
	}
	n := len(instrs)
	frac := func(c int) float64 { return float64(c) / float64(n) }
	if frac(loads) < 0.08 || frac(loads) > 0.45 {
		t.Errorf("load fraction %.3f out of plausible range", frac(loads))
	}
	if frac(conds) < 0.04 || frac(conds) > 0.35 {
		t.Errorf("conditional fraction %.3f out of plausible range", frac(conds))
	}
	if memNoDst == 0 {
		t.Error("no memory instructions without destinations (needed by mem-regs)")
	}
	if multiDst == 0 {
		t.Error("no multi-destination loads (needed by mem-regs/base-update)")
	}
	if flagCmps == 0 {
		t.Error("no flag-setting compares (needed by flag-reg)")
	}
}

func TestBaseUpdateValuesConsistent(t *testing.T) {
	p := testProfile()
	p.BaseUpdateFrac = 0.5
	instrs, err := p.Generate(30000)
	if err != nil {
		t.Fatal(err)
	}
	// Track register values exactly like the converter does and verify
	// that base-update loads obey the ISA: pre-index writes EA to the
	// base; post-index writes EA+imm.
	var regs [cvp.NumRegs]uint64
	var known [cvp.NumRegs]bool
	baseUpdates := 0
	for i, in := range instrs {
		if in.IsLoad() {
			for j, d := range in.DstRegs {
				if !in.ReadsReg(d) || d >= 32 {
					continue
				}
				nv := in.DstValues[j]
				if nv == in.EffAddr {
					baseUpdates++ // pre-index
				} else if known[d] && regs[d] == in.EffAddr && nv-in.EffAddr <= 64 {
					baseUpdates++ // post-index
				} else if known[d] && regs[d] == in.EffAddr {
					t.Fatalf("instr %d: writeback value %#x unrelated to EA %#x", i, nv, in.EffAddr)
				}
			}
		}
		for j, d := range in.DstRegs {
			regs[d], known[d] = in.DstValues[j], true
		}
	}
	if baseUpdates == 0 {
		t.Fatal("no base-update loads generated at BaseUpdateFrac=0.5")
	}
}

func TestPublicSuite(t *testing.T) {
	suite := PublicSuite()
	if len(suite) != 135 {
		t.Fatalf("public suite has %d traces, want 135", len(suite))
	}
	names := map[string]bool{}
	blr := 0
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate trace name %s", p.Name)
		}
		names[p.Name] = true
		if p.BlrX30Frac > 0 {
			blr++
		}
	}
	// Names the paper references must exist.
	for _, want := range []string{"compute_int_46", "compute_int_23", "srv_3", "srv_62"} {
		if _, ok := FindPublic(want); !ok {
			t.Errorf("paper-cited trace %s missing from suite", want)
		}
	}
	if _, ok := FindPublic("nope"); ok {
		t.Error("FindPublic found a nonexistent trace")
	}
	if blr < 8 || blr > 20 {
		t.Errorf("call-stack bug subset has %d traces, want ~13 (Fig. 5 affects a subset)", blr)
	}
}

func TestIPC1SuiteTable(t *testing.T) {
	suite := IPC1Suite()
	if len(suite) != 50 {
		t.Fatalf("IPC-1 suite has %d traces, want 50", len(suite))
	}
	// Spot-check the Table 2 mapping.
	checks := map[string]string{
		"client_001":         "secret_int_294",
		"server_001":         "secret_srv160",
		"server_039":         "secret_srv154",
		"spec_gcc_002":       "secret_int_345",
		"spec_x264_001":      "secret_int_919",
		"spec_perlbench_001": "secret_int_116",
	}
	for name, cvpName := range checks {
		tr, ok := FindIPC1(name)
		if !ok {
			t.Errorf("trace %s missing", name)
			continue
		}
		if tr.CVPName != cvpName {
			t.Errorf("%s maps to %s, want %s", name, tr.CVPName, cvpName)
		}
		if err := tr.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := FindIPC1("nope"); ok {
		t.Error("FindIPC1 found a nonexistent trace")
	}
	// server_001 must be in the call-stack bug subset (its target MPKI
	// drops 78% with the fix, per §4.3).
	tr, _ := FindIPC1("server_001")
	if tr.Profile.BlrX30Frac < 0.5 {
		t.Errorf("server_001 BlrX30Frac = %v, want the strongest bug trigger", tr.Profile.BlrX30Frac)
	}
}

func TestCategoryCharacter(t *testing.T) {
	// Server traces must have much larger code footprints than crypto.
	srv := PublicProfile(Server, 4)
	cr := PublicProfile(Crypto, 4)
	if srv.FootprintBytes() < 3*cr.FootprintBytes() {
		t.Errorf("server footprint %d should dwarf crypto %d", srv.FootprintBytes(), cr.FootprintBytes())
	}
	// FP traces actually generate FP instructions.
	fp := PublicProfile(ComputeFP, 2)
	instrs, err := fp.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}
	nfp := 0
	for _, in := range instrs {
		if in.Class == cvp.ClassFP {
			nfp++
		}
	}
	if float64(nfp)/float64(len(instrs)) < 0.1 {
		t.Errorf("compute_fp generated only %d FP instructions in %d", nfp, len(instrs))
	}
}

func TestValidateRejects(t *testing.T) {
	good := testProfile()
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.NumFuncs = 0 },
		func(p *Profile) { p.FuncBodySites = 2 },
		func(p *Profile) { p.LoopIterations = 0 },
		func(p *Profile) { p.LoadFrac = 1.5 },
		func(p *Profile) { p.BranchBias = -0.1 },
		func(p *Profile) { p.LoadFrac, p.StoreFrac, p.CondFrac, p.CallFrac = 0.4, 0.3, 0.2, 0.1 },
		func(p *Profile) { p.DataFootprint = 0 },
		func(p *Profile) { p.DispatchTargets = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	var p Profile
	if _, err := p.Generate(100); err == nil {
		t.Fatal("Generate accepted zero profile")
	}
}

// TestValueRealism checks the properties the value-prediction harness and
// the converter's inference both rely on: per-site constants exist, loop
// counters produce periodic small values, and writeback base streams are
// strided per site.
func TestValueRealism(t *testing.T) {
	p := PublicProfile(ComputeInt, 6)
	p.BaseUpdateFrac = 0.2
	instrs, err := p.Generate(50000)
	if err != nil {
		t.Fatal(err)
	}
	perPC := map[uint64][]uint64{}
	basePC := map[uint64][]uint64{}
	for _, in := range instrs {
		if in.Class == cvp.ClassALU && len(in.DstValues) == 1 {
			perPC[in.PC] = append(perPC[in.PC], in.DstValues[0])
		}
		if in.IsLoad() && len(in.DstRegs) == 2 && in.ReadsReg(in.DstRegs[1]) {
			basePC[in.PC] = append(basePC[in.PC], in.DstValues[1])
		}
	}
	// Some ALU sites must be constant producers.
	constSites, aluSites := 0, 0
	for _, vals := range perPC {
		if len(vals) < 4 {
			continue
		}
		aluSites++
		same := true
		for _, v := range vals[1:] {
			if v != vals[0] {
				same = false
				break
			}
		}
		if same {
			constSites++
		}
	}
	if aluSites == 0 || constSites == 0 {
		t.Fatalf("constant ALU sites: %d of %d", constSites, aluSites)
	}
	// Writeback base streams must be strided per site (modulo re-anchors).
	stridedDeltas, totalDeltas := 0, 0
	for _, vals := range basePC {
		for i := 2; i < len(vals); i++ {
			totalDeltas++
			if vals[i]-vals[i-1] == vals[i-1]-vals[i-2] {
				stridedDeltas++
			}
		}
	}
	if totalDeltas == 0 {
		t.Fatal("no writeback base streams observed")
	}
	if float64(stridedDeltas)/float64(totalDeltas) < 0.8 {
		t.Errorf("only %d/%d base-stream deltas strided", stridedDeltas, totalDeltas)
	}
}

// TestLoopCounterValues: backedge increments count the invocation's
// iterations, restarting at 1 — the induction pattern.
func TestLoopCounterValues(t *testing.T) {
	p := PublicProfile(Crypto, 1)
	instrs, err := p.Generate(30000)
	if err != nil {
		t.Fatal(err)
	}
	// Find increment sites: ALU with dst==src in the counter range.
	restarts, ones := 0, 0
	perPC := map[uint64]uint64{}
	for _, in := range instrs {
		if in.Class != cvp.ClassALU || len(in.DstRegs) != 1 || len(in.SrcRegs) != 1 {
			continue
		}
		d := in.DstRegs[0]
		if d != in.SrcRegs[0] || d < 24 || d > 29 {
			continue
		}
		v := in.DstValues[0]
		if prev, ok := perPC[in.PC]; ok && v <= prev {
			restarts++
			if v == 1 {
				ones++
			}
		}
		perPC[in.PC] = v
	}
	if restarts == 0 {
		t.Fatal("no loop-counter restarts observed")
	}
	// Re-entrant (recursive) invocations interleave two counter
	// sequences at one site, so not every descent restarts at 1 — but
	// the majority must.
	if ones*2 < restarts {
		t.Errorf("only %d of %d counter restarts began at 1", ones, restarts)
	}
}

// TestStressIdleProfile pins the stress profile's purpose: it must be
// valid, deterministic, and chase-dominated — nearly every load forms a
// serialized pointer chain (ClassLoad whose source register is written by
// the preceding ALU of the same chase pair), with a footprint far beyond
// any cache level.
func TestStressIdleProfile(t *testing.T) {
	p := StressIdle()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	instrs, err := p.Generate(8000)
	if err != nil {
		t.Fatal(err)
	}
	loads, chased := 0, 0
	for _, in := range instrs {
		if in.Class != cvp.ClassLoad {
			continue
		}
		loads++
		// A chase load reads a register in the 16..19 window the chase
		// emitter owns (memory.go emitChaseLoad).
		for _, r := range in.SrcRegs {
			if r >= 16 && r < 20 {
				chased++
				break
			}
		}
	}
	if loads == 0 {
		t.Fatal("stress profile generated no loads")
	}
	if frac := float64(chased) / float64(loads); frac < 0.95 {
		t.Fatalf("only %.1f%% of loads are pointer chases, want >= 95%%", 100*frac)
	}
	if p.DataFootprint < 32<<20 {
		t.Fatalf("footprint %d too small to guarantee DRAM-latency chases", p.DataFootprint)
	}
}
