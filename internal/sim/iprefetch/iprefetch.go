// Package iprefetch implements the instruction prefetchers evaluated in the
// paper's Table 3: re-implementations of the eight prefetchers accepted at
// the first Instruction Prefetching Championship (IPC-1) — EPI (the
// Entangling prefetcher), D-JOLT, FNL+MMA, Barça, PIPS, JIP, MANA, and TAP —
// plus a plain next-line baseline.
//
// Each prefetcher is reconstructed from its IPC-1 description at the
// algorithmic level: the core mechanism (entangling, long-range call
// signatures, footprint next-line with miss-ahead, region footprints,
// probabilistic scouting, jump pointers, chained miss successors, temporal
// ancestry) is preserved, while table sizes are simplified. Absolute
// speedups therefore differ from the contest, but the set provides eight
// genuinely distinct algorithms whose relative ranking can shift with trace
// fidelity — which is what the Table 3 experiment measures.
package iprefetch

import (
	"fmt"

	"tracerebase/internal/champtrace"
)

// LineSize is the instruction cacheline size in bytes.
const LineSize = 64

// Prefetcher observes the front-end's demand fetch stream and control flow
// and emits cacheline addresses to prefetch into the L1I. Every hook
// appends its prefetch addresses to buf and returns the extended slice, so
// the pipeline can reuse one scratch buffer across calls instead of
// allocating per event.
type Prefetcher interface {
	// Name identifies the prefetcher (contest spelling, lowercased).
	Name() string
	// OnAccess is invoked for every demand fetch of a cacheline, after
	// the hit/miss outcome is known.
	OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64
	// OnBranch is invoked for every retired taken branch.
	OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64
	// OnFTQInsert is invoked when the decoupled front-end enqueues a
	// fetch target (visibility used by fetch-directed schemes).
	OnFTQInsert(lineAddr uint64, buf []uint64) []uint64
}

// Base provides no-op hooks for prefetchers that only use a subset.
type Base struct{}

// OnAccess implements Prefetcher.
func (Base) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 { return buf }

// OnBranch implements Prefetcher.
func (Base) OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64 {
	return buf
}

// OnFTQInsert implements Prefetcher.
func (Base) OnFTQInsert(lineAddr uint64, buf []uint64) []uint64 { return buf }

// Names lists the available prefetchers in Table 3 order, plus the
// baselines.
func Names() []string {
	return []string{"none", "next-line", "epi", "djolt", "fnl-mma", "barca", "pips", "jip", "mana", "tap"}
}

// New constructs an instruction prefetcher by name. "none" returns nil.
func New(name string) (Prefetcher, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "next-line":
		return NewNextLine(2), nil
	case "epi":
		return NewEPI(), nil
	case "djolt":
		return NewDJOLT(), nil
	case "fnl-mma":
		return NewFNLMMA(), nil
	case "barca":
		return NewBarca(), nil
	case "pips":
		return NewPIPS(), nil
	case "jip":
		return NewJIP(), nil
	case "mana":
		return NewMANA(), nil
	case "tap":
		return NewTAP(), nil
	}
	return nil, fmt.Errorf("iprefetch: unknown prefetcher %q", name)
}

// NextLine is the sequential baseline: on a miss, prefetch the next Degree
// lines.
type NextLine struct {
	Base
	degree int
}

// NewNextLine returns a next-line instruction prefetcher.
func NewNextLine(degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{degree: degree}
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "next-line" }

// OnAccess implements Prefetcher.
func (p *NextLine) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	if hit {
		return buf
	}
	for i := 0; i < p.degree; i++ {
		buf = append(buf, lineAddr+uint64(i+1)*LineSize)
	}
	return buf
}
