package conformance

import (
	"bytes"
	"fmt"
	"io"
	"slices"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
)

// CVPEqual reports whether two CVP-1 instruction records are semantically
// identical (field-wise, with slice contents compared by value).
func CVPEqual(a, b *cvp.Instruction) bool {
	return a.PC == b.PC && a.Class == b.Class &&
		a.EffAddr == b.EffAddr && a.MemSize == b.MemSize &&
		a.Taken == b.Taken && a.Target == b.Target &&
		slices.Equal(a.SrcRegs, b.SrcRegs) &&
		slices.Equal(a.DstRegs, b.DstRegs) &&
		slices.Equal(a.DstValues, b.DstValues)
}

// CheckCVPRoundTrip encodes the slab in the CVP-1 binary format, decodes it
// back, and requires the result to be record-for-record identical. Because
// the hardened Reader validates everything it accepts, this also proves the
// slab is encodable in the first place.
func CheckCVPRoundTrip(instrs []cvp.Instruction) error {
	var buf bytes.Buffer
	w := cvp.NewWriter(&buf)
	for i := range instrs {
		if err := w.Write(&instrs[i]); err != nil {
			return fmt.Errorf("encode record %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	firstPass := buf.Bytes()

	r := cvp.NewReader(bytes.NewReader(firstPass))
	var reenc bytes.Buffer
	w2 := cvp.NewWriter(&reenc)
	for i := range instrs {
		got, err := r.Next()
		if err != nil {
			return fmt.Errorf("decode record %d: %w", i, err)
		}
		if !CVPEqual(got, &instrs[i]) {
			return fmt.Errorf("record %d changed across encode/decode:\n got  %+v\n want %+v", i, got, instrs[i])
		}
		if err := w2.Write(got); err != nil {
			return fmt.Errorf("re-encode record %d: %w", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		return fmt.Errorf("stream has trailing data after %d records (err %v)", len(instrs), err)
	}
	if err := w2.Flush(); err != nil {
		return err
	}
	if !bytes.Equal(firstPass, reenc.Bytes()) {
		return fmt.Errorf("decode→encode is not a fixed point: %d vs %d bytes", len(firstPass), reenc.Len())
	}
	return nil
}

// CheckChampRoundTrip encodes converted records in the ChampSim binary
// format and decodes them back, via both the scalar and the batch reader,
// requiring all three views to agree.
func CheckChampRoundTrip(recs []champtrace.Instruction) error {
	var buf bytes.Buffer
	w := champtrace.NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return fmt.Errorf("encode record %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	raw := buf.Bytes()

	r := champtrace.NewReader(bytes.NewReader(raw))
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			return fmt.Errorf("decode record %d: %w", i, err)
		}
		if *got != recs[i] {
			return fmt.Errorf("record %d changed across encode/decode:\n got  %+v\n want %+v", i, *got, recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		return fmt.Errorf("trailing data after %d records (err %v)", len(recs), err)
	}

	// Batch decode with a deliberately awkward batch size so final short
	// batches and mid-batch refills are both exercised.
	br := champtrace.NewReader(bytes.NewReader(raw))
	dst := champtrace.MakeBatch(7)
	i := 0
	for {
		n, err := br.NextBatch(dst)
		for k := 0; k < n; k++ {
			if i >= len(recs) {
				return fmt.Errorf("batch decode yielded more than %d records", len(recs))
			}
			if dst[k] != recs[i] {
				return fmt.Errorf("batch decode diverges from scalar at record %d", i)
			}
			i++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("batch decode: %w", err)
		}
	}
	if i != len(recs) {
		return fmt.Errorf("batch decode yielded %d of %d records", i, len(recs))
	}
	return nil
}

// CheckConvertPaths converts the slab under opts through every redundant
// converter path — scalar Convert, ConvertAppend via ConvertAllBatch, and
// the pooled streaming ConverterSource (both its Next and NextBatch faces) —
// and requires record-for-record and stats-for-stats agreement.
func CheckConvertPaths(instrs []cvp.Instruction, opts core.Options) error {
	scalar, scalarStats, err := core.ConvertAll(cvp.NewValuesSource(instrs), opts)
	if err != nil {
		return fmt.Errorf("scalar convert: %w", err)
	}
	batch, batchStats, err := core.ConvertAllBatch(cvp.NewValuesSource(instrs), opts)
	if err != nil {
		return fmt.Errorf("batch convert: %w", err)
	}
	if len(scalar) != len(batch) {
		return fmt.Errorf("Convert produced %d records, ConvertAppend %d", len(scalar), len(batch))
	}
	for i := range batch {
		if *scalar[i] != batch[i] {
			return fmt.Errorf("Convert and ConvertAppend diverge at record %d:\n scalar %+v\n batch  %+v", i, *scalar[i], batch[i])
		}
	}
	if scalarStats != batchStats {
		return fmt.Errorf("converter stats diverge:\n scalar %+v\n batch  %+v", scalarStats, batchStats)
	}

	// Streaming pull path, record at a time.
	cs := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
	defer cs.Close()
	for i := range batch {
		rec, err := cs.Next()
		if err != nil {
			return fmt.Errorf("streaming convert: record %d: %w", i, err)
		}
		if *rec != batch[i] {
			return fmt.Errorf("ConverterSource.Next diverges from ConvertAppend at record %d", i)
		}
	}
	if _, err := cs.Next(); err != io.EOF {
		return fmt.Errorf("streaming convert: trailing records after %d (err %v)", len(batch), err)
	}
	if st := cs.Stats(); st != batchStats {
		return fmt.Errorf("ConverterSource stats diverge:\n stream %+v\n batch  %+v", st, batchStats)
	}

	// Streaming batch path with an awkward batch size.
	cb := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
	defer cb.Close()
	dst := champtrace.MakeBatch(13)
	i := 0
	for {
		n, err := cb.NextBatch(dst)
		for k := 0; k < n; k++ {
			if i >= len(batch) {
				return fmt.Errorf("ConverterSource.NextBatch yielded more than %d records", len(batch))
			}
			if dst[k] != batch[i] {
				return fmt.Errorf("ConverterSource.NextBatch diverges at record %d", i)
			}
			i++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("streaming batch convert: %w", err)
		}
	}
	if i != len(batch) {
		return fmt.Errorf("ConverterSource.NextBatch yielded %d of %d records", i, len(batch))
	}
	return nil
}

// convertAllImps converts the slab under every improvement — the richest
// record mix (micro-op splits, cross-line addresses, patched branch rules).
func convertAllImps(instrs []cvp.Instruction) ([]champtrace.Instruction, core.Stats, error) {
	return core.ConvertAllBatch(cvp.NewValuesSource(instrs), core.OptionsAll())
}

// CheckTrace runs the full differential battery on one CVP-1 instruction
// slab: codec round trips plus converter path agreement under every variant
// in vs (nil = the ten evaluation variants).
func CheckTrace(instrs []cvp.Instruction, vs []experiments.Variant) error {
	if vs == nil {
		vs = experiments.Variants()
	}
	if err := CheckCVPRoundTrip(instrs); err != nil {
		return fmt.Errorf("cvp round trip: %w", err)
	}
	for _, v := range vs {
		if err := CheckConvertPaths(instrs, v.Opts); err != nil {
			return fmt.Errorf("variant %s: %w", v.Name, err)
		}
	}
	// The ChampSim codec round trip only needs one conversion; use the
	// richest record mix (All_imps splits micro-ops and adds cross-line
	// addresses).
	recs, _, err := convertAllImps(instrs)
	if err != nil {
		return err
	}
	if err := CheckChampRoundTrip(recs); err != nil {
		return fmt.Errorf("champtrace round trip: %w", err)
	}
	return nil
}
