package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tracerebase/internal/champtrace"
)

// TestQuickSkipTransparency: for any coherent stream and any small machine
// shape, event-horizon cycle skipping changes no reported statistic — not
// just Stats.Cycles but the entire counter set. Machine shape, front-end
// coupling, prefetchers, TLBs, and warm-up are all randomized so the skip
// logic is exercised against every stall structure the pipeline has.
func TestQuickSkipTransparency(t *testing.T) {
	var totalSkipped uint64
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stream := randomStream(r, 500+r.Intn(1500))
		cfg := testConfig()
		cfg.FetchWidth = 1 + r.Intn(6)
		cfg.DispatchWidth = 1 + r.Intn(6)
		cfg.IssueWidth = 1 + r.Intn(6)
		cfg.RetireWidth = 1 + r.Intn(6)
		cfg.ROBSize = 16 << r.Intn(4)
		cfg.FTQSize = 4 << r.Intn(4)
		cfg.DecodeQueue = 4 << r.Intn(4)
		cfg.SQSize = 8 << r.Intn(3)
		cfg.DecodeLatency = uint64(1 + r.Intn(6))
		cfg.RedirectPenalty = uint64(r.Intn(10))
		cfg.Decoupled = r.Intn(2) == 0
		cfg.UseTLBs = r.Intn(2) == 0
		if r.Intn(2) == 0 {
			cfg.L1DPrefetcher = "ip-stride"
		}
		if r.Intn(2) == 0 {
			cfg.L2Prefetcher = "next-line"
		}
		if r.Intn(2) == 0 {
			cfg.L1IPrefetcher = "next-line"
		}
		warmup := uint64(r.Intn(300))
		run := func(noSkip bool) (Stats, error) {
			c := cfg
			c.NoCycleSkip = noSkip
			p, err := New(c)
			if err != nil {
				return Stats{}, err
			}
			return p.Run(champtrace.NewSliceSource(stream), warmup, 0)
		}
		fast, err := run(false)
		if err != nil {
			t.Logf("skip run: %v", err)
			return false
		}
		slow, err := run(true)
		if err != nil {
			t.Logf("no-skip run: %v", err)
			return false
		}
		if slow.SkippedCycles != 0 || slow.CycleSkips != 0 {
			t.Logf("no-skip run reports %d skipped cycles", slow.SkippedCycles)
			return false
		}
		totalSkipped += fast.SkippedCycles
		fast.SkippedCycles, fast.CycleSkips = 0, 0
		if fast != slow {
			t.Logf("stats diverge under config %+v:\n skip    %+v\n no-skip %+v", cfg, fast, slow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	if totalSkipped == 0 {
		t.Fatal("no randomized run ever skipped a cycle; transparency was tested vacuously")
	}
}

// TestArenaWraparoundUnderLargeSkips drives a serialized pointer chase over
// a cold footprint — every load a fresh DRAM-latency miss — so the skipper
// takes hundreds-of-cycles jumps while allocation and retirement wrap the
// uop arena many times. The ring indexing is seq-based, not cycle-based,
// and must be unaffected by how violently the clock advances.
func TestArenaWraparoundUnderLargeSkips(t *testing.T) {
	cfg := testConfig()
	runOne := func(noSkip bool) Stats {
		c := cfg
		c.NoCycleSkip = noSkip
		p, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		n := 20*arenaCapOf(p) + 37 // many wraps, deliberately not slot-aligned
		instrs := make([]*champtrace.Instruction, n)
		for i := range instrs {
			// Every load reads and writes the same register (a serial
			// chain) and touches a new page, so nothing overlaps memory
			// latency and each skip spans a full miss.
			instrs[i] = mkLoad(0x400000+uint64(i%1024)*4, 0x100000000+uint64(i)*8192, 30, 30)
		}
		st, err := p.Run(champtrace.NewSliceSource(instrs), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Instructions != uint64(n) {
			t.Fatalf("retired %d instructions, want %d", st.Instructions, n)
		}
		if p.robCount != 0 || p.ftqLen != 0 || p.decqLen != 0 {
			t.Fatalf("queues not drained: rob=%d ftq=%d decq=%d", p.robCount, p.ftqLen, p.decqLen)
		}
		return st
	}
	fast := runOne(false)
	slow := runOne(true)
	if fast.SkippedCycles == 0 {
		t.Fatal("serialized chase skipped no cycles")
	}
	if frac := float64(fast.SkippedCycles) / float64(fast.Cycles); frac < 0.5 {
		t.Fatalf("skipped only %.1f%% of a memory-serialized run", 100*frac)
	}
	fast.SkippedCycles, fast.CycleSkips = 0, 0
	if fast != slow {
		t.Fatalf("stats diverge across arena wraps:\n skip    %+v\n no-skip %+v", fast, slow)
	}
}
