package tracerebase

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeWorkflow exercises the sweep daemon across real process
// boundaries: it builds the rebase binary, starts `rebase serve` on an
// ephemeral port, submits a smoke sweep with `rebase submit`, and asserts
// the streamed output is byte-identical to the batch CLI's. A second
// submission must be answered from the daemon's memory tier. Finally
// SIGTERM must take the graceful path: drain, flush, exit 0.
func TestServeWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the rebase binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rebase")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rebase")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	batchArgs := []string{"-exp", "fig1", "-step", "27",
		"-instructions", "4000", "-warmup", "1000"}

	// Reference bytes: the batch CLI, no cache, no daemon.
	batch := exec.Command(bin, append(batchArgs, "-no-cache", "-no-trace-store", "-q")...)
	var want, batchErr bytes.Buffer
	batch.Stdout = &want
	batch.Stderr = &batchErr
	if err := batch.Run(); err != nil {
		t.Fatalf("batch rebase: %v\nstderr:\n%s", err, batchErr.Bytes())
	}

	// Start the daemon on an ephemeral port and scrape the bound address
	// from its startup log line.
	serve := exec.Command(bin, "serve", "-addr", "127.0.0.1:0",
		"-cache-dir", filepath.Join(dir, "cache"), "-no-trace-store")
	stderr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatalf("rebase serve: %v", err)
	}
	defer serve.Process.Kill()

	logLines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			logLines <- sc.Text()
		}
		close(logLines)
	}()
	addrRe := regexp.MustCompile(`serving on (http://[0-9.]+:\d+)`)
	var baseURL string
	deadline := time.After(30 * time.Second)
	for baseURL == "" {
		select {
		case line, ok := <-logLines:
			if !ok {
				t.Fatal("daemon exited before announcing its address")
			}
			if m := addrRe.FindStringSubmatch(line); m != nil {
				baseURL = m[1]
			}
		case <-deadline:
			t.Fatal("timed out waiting for the daemon to start")
		}
	}
	// Keep draining so the daemon never blocks on a full stderr pipe.
	go func() {
		for range logLines {
		}
	}()

	submit := func() (stdout, stderr []byte) {
		cmd := exec.Command(bin, append([]string{"submit", "-url", baseURL}, batchArgs...)...)
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout = &outBuf
		cmd.Stderr = &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("rebase submit: %v\nstderr:\n%s", err, errBuf.Bytes())
		}
		return outBuf.Bytes(), errBuf.Bytes()
	}

	coldOut, coldErr := submit()
	if !bytes.Equal(coldOut, want.Bytes()) {
		t.Fatalf("daemon output differs from batch CLI output\nbatch:\n%s\ndaemon:\n%s", want.Bytes(), coldOut)
	}
	if !strings.Contains(string(coldErr), "served: computed") {
		t.Fatalf("first submission should be computed; stderr:\n%s", coldErr)
	}

	warmOut, warmErr := submit()
	if !bytes.Equal(warmOut, want.Bytes()) {
		t.Fatal("repeat submission output differs from batch CLI output")
	}
	if !strings.Contains(string(warmErr), "served: memory") {
		t.Fatalf("repeat submission should be a memory-tier hit; stderr:\n%s", warmErr)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := serve.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- serve.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}

	// The flushed disk tier alone must now be able to serve the job: a
	// fresh daemon over the same cache dir answers without recomputing.
	serve2 := exec.Command(bin, "serve", "-addr", "127.0.0.1:0",
		"-cache-dir", filepath.Join(dir, "cache"), "-no-trace-store")
	stderr2, err := serve2.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve2.Start(); err != nil {
		t.Fatal(err)
	}
	defer serve2.Process.Kill()
	sc := bufio.NewScanner(stderr2)
	baseURL = ""
	for sc.Scan() {
		if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
			baseURL = m[1]
			break
		}
	}
	if baseURL == "" {
		t.Fatal("second daemon exited before announcing its address")
	}
	go func() {
		for sc.Scan() {
		}
	}()
	diskOut, diskErr := submit()
	if !bytes.Equal(diskOut, want.Bytes()) {
		t.Fatal("disk-served output differs from batch CLI output")
	}
	if !strings.Contains(string(diskErr), "served: disk") {
		t.Fatalf("fresh daemon over the flushed dir should hit disk; stderr:\n%s", diskErr)
	}
	serve2.Process.Signal(syscall.SIGTERM)
	serve2.Wait()
}
