package core

import (
	"io"
	"math/rand"
	"reflect"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

func testCVPStream(n int, seed int64) []*cvp.Instruction {
	r := rand.New(rand.NewSource(seed))
	instrs := make([]*cvp.Instruction, n)
	pc := uint64(0x400000)
	for i := range instrs {
		instrs[i] = randomCVPInstr(r, pc)
		pc += 4
	}
	return instrs
}

// TestConverterSourceMatchesConvertAll: for every improvement set, the
// streaming converter yields record-for-record what the materializing
// ConvertAll produces, with matching statistics, and the record pointers
// survive the simulator-style one-instruction lookback.
func TestConverterSourceMatchesConvertAll(t *testing.T) {
	instrs := testCVPStream(3000, 7)
	for _, opts := range allOptionSets() {
		want, wantStats, err := ConvertAll(cvp.NewSliceSource(instrs), opts)
		if err != nil {
			t.Fatal(err)
		}
		cs := NewConverterSource(cvp.NewSliceSource(instrs), opts)
		var prev, prevWant *champtrace.Instruction
		for i := 0; ; i++ {
			rec, err := cs.Next()
			if err == io.EOF {
				if i != len(want) {
					t.Fatalf("%+v: EOF after %d records, want %d", opts, i, len(want))
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if i >= len(want) {
				t.Fatalf("%+v: stream longer than ConvertAll (%d+)", opts, i)
			}
			if !reflect.DeepEqual(*rec, *want[i]) {
				t.Fatalf("%+v: record %d differs:\ngot  %+v\nwant %+v", opts, i, rec, want[i])
			}
			// Double-buffer contract: the previous pointer is still intact.
			if prev != nil && !reflect.DeepEqual(*prev, *prevWant) {
				t.Fatalf("%+v: pointer for record %d was clobbered", opts, i-1)
			}
			prev, prevWant = rec, want[i]
		}
		if got := cs.Stats(); got != wantStats {
			t.Fatalf("%+v: stats differ:\ngot  %+v\nwant %+v", opts, got, wantStats)
		}
		cs.Close()
		if _, err := cs.Next(); err != io.EOF {
			t.Fatalf("post-Close Next error = %v, want io.EOF", err)
		}
	}
}

// TestConverterSourceNextBatch: the batch path delivers the same records
// with copy semantics.
func TestConverterSourceNextBatch(t *testing.T) {
	instrs := testCVPStream(1500, 8)
	want, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
	defer cs.Close()
	slab := champtrace.MakeBatch(100) // deliberately not a divisor of the output length
	got := 0
	for {
		n, err := cs.NextBatch(slab)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got >= len(want) {
				t.Fatalf("batch stream longer than ConvertAll (%d+)", got)
			}
			if !reflect.DeepEqual(slab[i], *want[got]) {
				t.Fatalf("record %d differs", got)
			}
			got++
		}
	}
	if got != len(want) {
		t.Fatalf("batch stream yielded %d records, want %d", got, len(want))
	}
}

// TestConvertAllBatchMatchesConvertAll: the value-slab converter output is
// record-for-record identical to the boxed ConvertAll.
func TestConvertAllBatchMatchesConvertAll(t *testing.T) {
	instrs := testCVPStream(2000, 9)
	for _, opts := range allOptionSets() {
		want, wantStats, err := ConvertAll(cvp.NewSliceSource(instrs), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := ConvertAllBatch(cvp.NewSliceSource(instrs), opts)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Fatalf("%+v: stats differ", opts)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d records, want %d", opts, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], *want[i]) {
				t.Fatalf("%+v: record %d differs", opts, i)
			}
		}
	}
}
