package sim

import (
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim/cpu"
	"tracerebase/internal/synth"
)

// TestSteadyStateZeroAllocs pins the zero-allocation contract of the
// simulator core: after one warmup interval has grown every buffer to its
// high-water mark, a full simulated interval — pipeline, four-level cache
// hierarchy, TLBs, direction/target predictors, and data prefetchers — must
// not allocate at all. Future PRs that reintroduce per-instruction
// allocation fail here rather than silently regressing throughput.
func TestSteadyStateZeroAllocs(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(30000)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	src := champtrace.NewSliceSource(recs)

	for _, cfg := range []Config{
		ConfigDevelop(champtrace.RulesPatched),
		ConfigIPC1("next-line", champtrace.RulesPatched),
	} {
		pipe, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warmup run: grows the MSHR lists, prefetch buffers, and the
		// pending queue to their high-water marks.
		if _, err := pipe.Run(src, 0, 0); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			src.Reset()
			if _, err := pipe.Run(src, 0, 0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state interval allocated %.0f times, want 0", cfg.Name, allocs)
		}
	}
}
