// Command tracediff compares two conversions of the SAME CVP-1 trace and
// reports exactly what changed — the record-level view behind the paper's
// aggregate IPC results. Typical use: convert once with No_imp and once
// with an improvement, then diff.
//
//	cvp2champsim -t srv_0.cvp.gz -i No_imp      -o a.champsim
//	cvp2champsim -t srv_0.cvp.gz -i All_imps    -o b.champsim
//	tracediff -a a.champsim -b b.champsim -brules patched
package main

import (
	"flag"
	"fmt"
	"os"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
)

func main() {
	var (
		aPath  = flag.String("a", "", "baseline ChampSim trace (original conversion)")
		bPath  = flag.String("b", "", "comparison ChampSim trace (improved conversion)")
		aRules = flag.String("arules", "original", "branch rules for trace A: original or patched")
		bRules = flag.String("brules", "original", "branch rules for trace B: original or patched")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		fatalf("need -a and -b traces")
	}
	a, err := load(*aPath)
	if err != nil {
		fatalf("%v", err)
	}
	b, err := load(*bPath)
	if err != nil {
		fatalf("%v", err)
	}
	st, err := core.Diff(a, b, parseRules(*aRules), parseRules(*bRules))
	if err != nil {
		fatalf("diff: %v", err)
	}
	pct := func(c uint64) float64 {
		if st.Instructions == 0 {
			return 0
		}
		return 100 * float64(c) / float64(st.Instructions)
	}
	fmt.Printf("instructions compared:  %d (A: %d records, B: %d records)\n", st.Instructions, len(a), len(b))
	fmt.Printf("identical records:      %d (%.2f%%)\n", st.Identical, pct(st.Identical))
	fmt.Printf("split into micro-ops:   %d (%.2f%%)\n", st.SplitMicroOps, pct(st.SplitMicroOps))
	fmt.Printf("branch type changed:    %d (%.2f%%)\n", st.BranchTypeChanged, pct(st.BranchTypeChanged))
	fmt.Printf("source regs changed:    %d (%.2f%%)\n", st.SrcRegsChanged, pct(st.SrcRegsChanged))
	fmt.Printf("dest regs changed:      %d (%.2f%%)\n", st.DstRegsChanged, pct(st.DstRegsChanged))
	fmt.Printf("memory slots changed:   %d (%.2f%%)\n", st.MemAddrsChanged, pct(st.MemAddrsChanged))
}

func load(path string) ([]*champtrace.Instruction, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, closer, err := champtrace.OpenReader(path, f)
	if err != nil {
		return nil, err
	}
	defer closer.Close()
	return champtrace.ReadAll(r)
}

func parseRules(s string) champtrace.RuleSet {
	if s == "patched" {
		return champtrace.RulesPatched
	}
	return champtrace.RulesOriginal
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracediff: "+format+"\n", args...)
	os.Exit(1)
}
