package bpred

// TAGE (TAgged GEometric history length) predictor, after Seznec &
// Michaud. A bimodal base predictor is backed by a series of
// partially-tagged tables indexed with geometrically increasing global
// history lengths; the longest matching table provides the prediction.

// TAGEConfig parameterizes the tagged tables.
type TAGEConfig struct {
	// BaseBits is log2 of the bimodal base table size.
	BaseBits int
	// TableBits is log2 of each tagged table size.
	TableBits int
	// TagBits is the partial tag width.
	TagBits int
	// HistLengths are the geometric history lengths, shortest first.
	HistLengths []int
	// UsefulResetPeriod is the number of allocations between graceful
	// resets of the useful counters.
	UsefulResetPeriod int
}

// DefaultTAGEConfig approximates a 64 KB TAGE: 12-bit tables, 11-bit tags,
// history lengths 5..240.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseBits:          14,
		TableBits:         12,
		TagBits:           11,
		HistLengths:       []int{5, 9, 15, 25, 44, 76, 130, 240},
		UsefulResetPeriod: 256 * 1024,
	}
}

type tageEntry struct {
	tag    uint16
	ctr    int8 // -4..3, taken when >= 0
	useful uint8
}

// foldedHistory maintains a cyclic-shift-register fold of the global
// history down to a target width, updated incrementally per branch.
type foldedHistory struct {
	value    uint64
	origLen  int // history length being folded
	foldLen  int // target width
	outPoint int // origLen % foldLen
}

func newFolded(origLen, foldLen int) foldedHistory {
	return foldedHistory{origLen: origLen, foldLen: foldLen, outPoint: origLen % foldLen}
}

// update pushes the newest history bit in and rotates the oldest out.
// oldest is the bit leaving the history window (history[origLen-1]).
func (f *foldedHistory) update(newest, oldest uint64) {
	f.value = (f.value << 1) | newest
	f.value ^= oldest << uint(f.outPoint)
	f.value ^= f.value >> uint(f.foldLen)
	f.value &= (1 << uint(f.foldLen)) - 1
}

// history is a long global branch history kept as a bit buffer.
type history struct {
	bits []uint64
	len  int
}

func newHistory(n int) *history {
	return &history{bits: make([]uint64, (n+63)/64+1), len: n}
}

// push inserts a new bit at position 0, shifting everything up.
func (h *history) push(b uint64) {
	carry := b
	for i := range h.bits {
		next := h.bits[i] >> 63
		h.bits[i] = (h.bits[i] << 1) | carry
		carry = next
	}
}

// bit returns history bit i (0 = most recent).
func (h *history) bit(i int) uint64 {
	return (h.bits[i/64] >> uint(i%64)) & 1
}

// TAGE is the tagged geometric predictor.
type TAGE struct {
	cfg  TAGEConfig
	base *Bimodal
	// tables holds all tagged tables in one flat array: table i occupies
	// entries [i<<TableBits, (i+1)<<TableBits).
	tables  []tageEntry
	nTables int
	// folded index and tag registers per table (two tag folds, as in the
	// reference implementation, to decorrelate tag from index).
	idxFold  []foldedHistory
	tagFold1 []foldedHistory
	tagFold2 []foldedHistory
	ghist    *history
	// scratch per prediction, reused by Update.
	provider    int // table index of the provider, -1 = base
	providerIdx uint64
	altPred     bool
	predTaken   bool
	allocs      int
	useAltOnNA  int8 // "use alt on newly allocated" meta-counter
}

// NewTAGE builds a TAGE predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	n := len(cfg.HistLengths)
	t := &TAGE{
		cfg:      cfg,
		base:     NewBimodal(cfg.BaseBits),
		tables:   make([]tageEntry, n<<uint(cfg.TableBits)),
		nTables:  n,
		idxFold:  make([]foldedHistory, n),
		tagFold1: make([]foldedHistory, n),
		tagFold2: make([]foldedHistory, n),
		ghist:    newHistory(cfg.HistLengths[n-1] + 1),
	}
	for i := 0; i < n; i++ {
		t.idxFold[i] = newFolded(cfg.HistLengths[i], cfg.TableBits)
		t.tagFold1[i] = newFolded(cfg.HistLengths[i], cfg.TagBits)
		t.tagFold2[i] = newFolded(cfg.HistLengths[i], cfg.TagBits-1)
	}
	return t
}

// entry returns the entry at idx of tagged table i in the flat array.
func (t *TAGE) entry(table int, idx uint64) *tageEntry {
	return &t.tables[uint64(table)<<uint(t.cfg.TableBits)|idx]
}

// Name implements DirectionPredictor.
func (t *TAGE) Name() string { return "tage" }

func (t *TAGE) index(pc uint64, table int) uint64 {
	mask := uint64(1<<uint(t.cfg.TableBits)) - 1
	return ((pc >> 2) ^ (pc >> uint(t.cfg.TableBits+2)) ^ t.idxFold[table].value) & mask
}

func (t *TAGE) tag(pc uint64, table int) uint16 {
	mask := uint64(1<<uint(t.cfg.TagBits)) - 1
	return uint16(((pc >> 2) ^ t.tagFold1[table].value ^ (t.tagFold2[table].value << 1)) & mask)
}

// Predict implements DirectionPredictor.
func (t *TAGE) Predict(pc uint64) bool {
	t.provider = -1
	t.altPred = t.base.Predict(pc)
	alt := -1
	for i := t.nTables - 1; i >= 0; i-- {
		idx := t.index(pc, i)
		if t.entry(i, idx).tag == t.tag(pc, i) {
			if t.provider < 0 {
				t.provider = i
				t.providerIdx = idx
			} else if alt < 0 {
				alt = i
				t.altPred = t.entry(i, idx).ctr >= 0
			}
			if t.provider >= 0 && alt >= 0 {
				break
			}
		}
	}
	if t.provider < 0 {
		t.predTaken = t.altPred
		return t.predTaken
	}
	e := t.entry(t.provider, t.providerIdx)
	// Newly allocated entries (weak counter, zero useful) may be less
	// reliable than the alternative prediction.
	weak := (e.ctr == 0 || e.ctr == -1) && e.useful == 0
	if weak && t.useAltOnNA >= 0 {
		t.predTaken = t.altPred
	} else {
		t.predTaken = e.ctr >= 0
	}
	return t.predTaken
}

// Update implements DirectionPredictor. It must follow the Predict call for
// the same branch.
func (t *TAGE) Update(pc uint64, taken bool) {
	mispred := t.predTaken != taken

	if t.provider >= 0 {
		e := t.entry(t.provider, t.providerIdx)
		providerPred := e.ctr >= 0
		weak := (e.ctr == 0 || e.ctr == -1) && e.useful == 0
		if weak && providerPred != t.altPred {
			// Train the meta-counter on whether alt beat the new
			// entry.
			if t.altPred == taken {
				if t.useAltOnNA < 7 {
					t.useAltOnNA++
				}
			} else if t.useAltOnNA > -8 {
				t.useAltOnNA--
			}
		}
		e.ctr = satUpdate(e.ctr, taken)
		if providerPred != t.altPred {
			if providerPred == taken {
				if e.useful < 3 {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		t.base.Update(pc, taken)
	}

	// Allocate a new entry on misprediction in a longer-history table.
	if mispred && t.provider < t.nTables-1 {
		t.allocate(pc, taken)
	}

	// Advance global history and folds.
	newest := b2u(taken)
	for i := 0; i < t.nTables; i++ {
		oldest := t.ghist.bit(t.cfg.HistLengths[i] - 1)
		t.idxFold[i].update(newest, oldest)
		t.tagFold1[i].update(newest, oldest)
		t.tagFold2[i].update(newest, oldest)
	}
	t.ghist.push(newest)
}

func (t *TAGE) allocate(pc uint64, taken bool) {
	start := t.provider + 1
	// Find a non-useful entry in tables with longer history.
	for i := start; i < t.nTables; i++ {
		idx := t.index(pc, i)
		e := t.entry(i, idx)
		if e.useful == 0 {
			e.tag = t.tag(pc, i)
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			t.bumpAllocs()
			return
		}
	}
	// All candidates useful: decay them so future allocations succeed.
	for i := start; i < t.nTables; i++ {
		idx := t.index(pc, i)
		if e := t.entry(i, idx); e.useful > 0 {
			e.useful--
		}
	}
}

func (t *TAGE) bumpAllocs() {
	t.allocs++
	if t.cfg.UsefulResetPeriod > 0 && t.allocs >= t.cfg.UsefulResetPeriod {
		t.allocs = 0
		for i := range t.tables {
			t.tables[i].useful >>= 1
		}
	}
}

func satUpdate(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}
