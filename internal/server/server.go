// Package server is the sweep service: a long-running daemon that
// accepts sweep/table/ablation jobs over HTTP, runs them on a bounded
// worker pool through the same internal/report composition as the batch
// CLI, and caches whole job outputs in a tiered resultcache backend so
// repeat queries — from any client, against any daemon in a chain — are
// served from the fastest tier that holds them, byte-identical to a cold
// batch run.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tracerebase/internal/experiments"
	"tracerebase/internal/report"
	"tracerebase/internal/resultcache"
)

// Config parameterizes New.
type Config struct {
	// Backend stores whole job outputs (and is typically the same tiered
	// composition Base.Cache stores per-cell results through). Required.
	Backend resultcache.Backend
	// Base is the engine configuration template jobs merge into: its
	// Cache/Checkpoints/Slabs handles and Parallelism are the daemon's;
	// per-job fields (instructions, warmup, sampling) are overwritten per
	// submission.
	Base experiments.SweepConfig
	// Workers bounds concurrent job executions (not HTTP connections);
	// <= 0 means 1. Cache-hit replies bypass the pool entirely.
	Workers int
	// Log receives operational notes; nil discards them.
	Log io.Writer
}

// Server is the daemon. Create with New, expose with Handler or Serve,
// stop with Shutdown.
type Server struct {
	backend resultcache.Backend
	base    experiments.SweepConfig
	sem     chan struct{}
	log     io.Writer
	start   time.Time

	httpSrv *http.Server

	mu      sync.Mutex
	running map[string]*job // single-flight registry keyed by hex job key
	jobs    sync.WaitGroup

	jobsComputed  atomic.Uint64
	jobsShared    atomic.Uint64
	jobsFromCache atomic.Uint64
	jobsFailed    atomic.Uint64
}

// New builds a Server over cfg.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	return &Server{
		backend: cfg.Backend,
		base:    cfg.Base,
		sem:     make(chan struct{}, workers),
		log:     log,
		start:   time.Now(),
		running: make(map[string]*job),
	}
}

// Handler returns the daemon's HTTP surface:
//
//	POST /jobs    submit a JobSpec, stream Events as NDJSON
//	GET  /status  JSON status: jobs, workers, per-tier cache counters
//	GET  /query   execute ?q=<query string> against the experiment store,
//	              return the result as JSON (503 when no store is wired)
//	GET  /healthz liveness probe
//	     /cache/  the resultcache wire protocol over the daemon's backend
//	              (point another daemon's -remote tier here)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/cache/", http.StripPrefix("/cache", resultcache.NewHTTPHandler(s.backend)))
	return mux
}

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.Handler()}
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown is the graceful exit: stop accepting connections, let
// in-flight streams finish, drain the worker pool, then flush the
// write-back queue so every memory-tier entry is durable in the slower
// tiers before the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.jobs.Wait()
	if t, ok := s.backend.(*resultcache.Tiered); ok {
		t.Flush()
	}
	return err
}

// lookup serves key from the backend, reporting which tier answered.
func (s *Server) lookup(key resultcache.Key) (payload []byte, served string, ok bool) {
	if t, isTiered := s.backend.(*resultcache.Tiered); isTiered {
		payload, served, err := t.GetWithSource(key)
		return payload, served, err == nil
	}
	payload, err := s.backend.Get(key)
	return payload, s.backend.Name(), err == nil
}

// handleJobs is POST /jobs: resolve from cache, join an identical
// in-flight run, or lead a fresh computation — in every case streaming
// the full event sequence to the client.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	key := spec.Key()
	w.Header().Set("Content-Type", "application/x-ndjson")

	start := time.Now()
	if payload, served, ok := s.lookup(key); ok {
		// Warm path: the whole output is a blob in some tier. No worker
		// slot, no generator, no converter — just bytes.
		s.jobsFromCache.Add(1)
		streamCached(w, key, payload, served, time.Since(start))
		return
	}

	j, leader := s.joinOrCreate(key.String())
	if leader {
		s.jobs.Add(1)
		go s.runJob(j, spec, key)
	} else {
		s.jobsShared.Add(1)
	}
	j.streamTo(w)
}

// streamCached emits the three-event sequence of a cache hit.
func streamCached(w http.ResponseWriter, key resultcache.Key, payload []byte, served string, elapsed time.Duration) {
	enc := json.NewEncoder(w)
	enc.Encode(Event{Type: "queued", Key: key.String()})
	enc.Encode(Event{Type: "chunk", Text: string(payload)})
	enc.Encode(Event{Type: "done", Served: served, ElapsedSeconds: elapsed.Seconds()})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// joinOrCreate returns the in-flight job for key, creating it (leader =
// true) when none is running — the single-flight layer for whole jobs,
// mirroring what the result cache does per cell.
func (s *Server) joinOrCreate(key string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.running[key]; ok {
		return j, false
	}
	j := newJob(key)
	s.running[key] = j
	return j, true
}

// runJob is the leader path: wait for a worker slot, run the shared
// report composition into the event stream, store the output blob.
func (s *Server) runJob(j *job, spec JobSpec, key resultcache.Key) {
	defer s.jobs.Done()
	defer func() {
		s.mu.Lock()
		delete(s.running, j.key)
		s.mu.Unlock()
	}()

	start := time.Now()
	j.publish(Event{Type: "queued", Key: j.key})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	j.publish(Event{Type: "started"})
	fmt.Fprintf(s.log, "job %s: started (%s)\n", j.key[:12], spec.Exp)

	cfg := spec.sweepConfig(s.base)
	cfg.Progress = func(done, total int) {
		j.publish(Event{Type: "progress", Done: done, Total: total})
	}
	cw := &chunkWriter{j: j}
	_, err := report.Run(cfg, spec.reportSpec(), report.Output{Text: cw, JSON: spec.JSON})
	cw.flush()
	if err != nil {
		s.jobsFailed.Add(1)
		fmt.Fprintf(s.log, "job %s: failed: %v\n", j.key[:12], err)
		j.publish(Event{Type: "error", Error: err.Error()})
		return
	}
	s.backend.Put(key, cw.full)
	s.jobsComputed.Add(1)
	fmt.Fprintf(s.log, "job %s: done in %.1fs (%d bytes)\n", j.key[:12], time.Since(start).Seconds(), len(cw.full))
	j.publish(Event{Type: "done", Served: "computed", ElapsedSeconds: time.Since(start).Seconds()})
}

// Status is the GET /status document.
type Status struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	JobsRunning   int     `json:"jobs_running"`
	JobsComputed  uint64  `json:"jobs_computed"`
	JobsFromCache uint64  `json:"jobs_from_cache"`
	JobsShared    uint64  `json:"jobs_shared"`
	JobsFailed    uint64  `json:"jobs_failed"`
	// Tiers is the per-tier counter breakdown of the job/result backend.
	Tiers []resultcache.BackendStats `json:"tiers"`
}

// StatusSnapshot returns the current Status document.
func (s *Server) StatusSnapshot() Status {
	s.mu.Lock()
	running := len(s.running)
	s.mu.Unlock()
	return Status{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       cap(s.sem),
		JobsRunning:   running,
		JobsComputed:  s.jobsComputed.Load(),
		JobsFromCache: s.jobsFromCache.Load(),
		JobsShared:    s.jobsShared.Load(),
		JobsFailed:    s.jobsFailed.Load(),
		Tiers:         resultcache.TierStats(s.backend),
	}
}

// handleQuery is GET /query?q=<query string>: run a block-pruned query
// over the daemon's experiment store — cells recorded by every job it has
// executed — and return the rows as JSON. ?full-scan=1 forces the
// brute-force baseline.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.base.Exp == nil {
		http.Error(w, "no experiment store (daemon started with -no-exp-store?)", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing ?q=<query string>", http.StatusBadRequest)
		return
	}
	res, err := report.Query(s.base.Exp, q, r.URL.Query().Get("full-scan") == "1")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	report.WriteQueryJSON(w, res)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.StatusSnapshot())
}
