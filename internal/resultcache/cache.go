package resultcache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Codec converts cached values to and from their stored payload bytes.
// Encode must be deterministic enough for Decode(Encode(v)) == v; byte-level
// stability across versions is not required (the record version and
// SchemaVersion gate compatibility).
type Codec[T any] interface {
	Encode(T) ([]byte, error)
	Decode([]byte) (T, error)
}

// GobCodec is a Codec backed by encoding/gob — sufficient for plain
// exported-field result structs.
type GobCodec[T any] struct{}

// Encode implements Codec.
func (GobCodec[T]) Encode(v T) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec[T]) Decode(b []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v)
	return v, err
}

// Config parameterizes Open.
type Config struct {
	// Dir is the cache root. Entries live under Dir/v<SchemaVersion>/,
	// sharded by the first key byte.
	Dir string
	// MaxBytes bounds the on-disk footprint; least-recently-used entries
	// are evicted past it. <= 0 selects the 1 GiB default. The in-memory
	// layer is not bounded: a process keeps every result it has touched.
	MaxBytes int64
}

// DefaultMaxBytes is the on-disk budget when Config.MaxBytes is unset.
const DefaultMaxBytes = 1 << 30

// Stats counts cache activity since Open. Hits+Misses is the number of
// resolved lookups (single-flight waiters sharing another goroutine's
// computation are counted under SharedWaits, not as lookups of their own).
type Stats struct {
	// Hits = MemHits + DiskHits.
	Hits, Misses uint64
	// MemHits were served from the in-process map, DiskHits from disk.
	MemHits, DiskHits uint64
	// SharedWaits counts single-flight joins: lookups that blocked on an
	// identical in-flight computation instead of duplicating it.
	SharedWaits uint64
	// Computes counts invocations of the caller's compute function;
	// Errors counts the ones that failed (failures are never stored).
	Computes, Errors uint64
	// Corrupt counts entries that failed validation and were discarded;
	// each also shows up as a miss and a recompute.
	Corrupt uint64
	// Evictions counts entries removed by the LRU size bound.
	Evictions uint64
	// WriteErrors counts store failures; the computed value is still
	// returned to the caller, so a read-only cache degrades gracefully.
	WriteErrors uint64
	// BytesRead and BytesWritten count record bytes moved to/from disk.
	BytesRead, BytesWritten uint64
}

type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

type diskEntry struct {
	size  int64
	atime int64 // logical LRU clock, not wall time
}

// Cache is a three-layer content-addressed result store: an unbounded
// in-process map, a size-bounded on-disk store with atomic writes and
// checksummed records, and a single-flight layer that collapses concurrent
// computations of the same key into one. All methods are safe for
// concurrent use.
type Cache[T any] struct {
	dir      string // versioned root: Config.Dir/v<SchemaVersion>
	maxBytes int64
	codec    Codec[T]

	mu      sync.Mutex
	mem     map[Key]T
	flights map[Key]*flight[T]
	disk    map[Key]diskEntry
	total   int64 // sum of disk entry sizes
	clock   int64 // LRU logical time
	stats   Stats
}

// Open opens (creating if needed) the cache rooted at cfg.Dir and indexes
// the entries already on disk. Leftover temp files from interrupted writes
// are removed; files that do not look like entries are ignored.
func Open[T any](cfg Config, codec Codec[T]) (*Cache[T], error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("resultcache: empty cache directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	root := filepath.Join(cfg.Dir, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	c := &Cache[T]{
		dir:      root,
		maxBytes: cfg.MaxBytes,
		codec:    codec,
		mem:      make(map[Key]T),
		flights:  make(map[Key]*flight[T]),
		disk:     make(map[Key]diskEntry),
	}
	if err := c.scan(); err != nil {
		return nil, err
	}
	return c, nil
}

// scan builds the disk index. Entry ages are seeded from file mtimes so
// LRU order survives across processes (Chtimes on disk hits refreshes
// them).
func (c *Cache[T]) scan() error {
	shards, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	type aged struct {
		key   Key
		size  int64
		mtime time.Time
	}
	var found []aged
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		shardDir := filepath.Join(c.dir, sh.Name())
		files, err := os.ReadDir(shardDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if strings.HasPrefix(name, "tmp-") {
				// Leftover from an interrupted write: a partial temp file
				// was never renamed into place, so it is not an entry.
				os.Remove(filepath.Join(shardDir, name))
				continue
			}
			if !strings.HasSuffix(name, ".rc") {
				continue
			}
			key, err := ParseKey(strings.TrimSuffix(name, ".rc"))
			if err != nil {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			found = append(found, aged{key, info.Size(), info.ModTime()})
		}
	}
	// Oldest first, so assigned logical times preserve on-disk LRU order.
	for i := 1; i < len(found); i++ {
		for j := i; j > 0 && found[j].mtime.Before(found[j-1].mtime); j-- {
			found[j], found[j-1] = found[j-1], found[j]
		}
	}
	for _, e := range found {
		c.clock++
		c.disk[e.key] = diskEntry{size: e.size, atime: c.clock}
		c.total += e.size
	}
	return nil
}

// EntryPath returns where the entry for key lives (or would live) on disk.
func (c *Cache[T]) EntryPath(key Key) string {
	hexKey := key.String()
	return filepath.Join(c.dir, hexKey[:2], hexKey+".rc")
}

// Dir returns the versioned cache root.
func (c *Cache[T]) Dir() string { return c.dir }

// Stats returns a snapshot of the activity counters.
func (c *Cache[T]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// DiskBytes returns the indexed on-disk footprint.
func (c *Cache[T]) DiskBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Get returns the cached value for key if it is resident in memory or
// valid on disk. It never computes and never joins an in-flight
// computation.
func (c *Cache[T]) Get(key Key) (T, bool) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	if v, ok := c.tryDisk(key); ok {
		return v, true
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	var zero T
	return zero, false
}

// GetOrCompute returns the value for key, computing and storing it on a
// miss. Concurrent calls for the same key share one computation: exactly
// one caller runs compute, the rest block and receive its result
// (single-flight). A failed compute is returned to every waiter and is not
// cached, so a later call retries. Store failures degrade to a warm
// in-memory result rather than an error.
func (c *Cache[T]) GetOrCompute(key Key, compute func() (T, error)) (T, error) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.stats.Hits++
		c.stats.MemHits++
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.stats.SharedWaits++
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	fl := &flight[T]{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	fl.val, fl.err = c.fill(key, compute)
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// fill resolves a leader's lookup: disk, then compute+store.
func (c *Cache[T]) fill(key Key, compute func() (T, error)) (T, error) {
	if v, ok := c.tryDisk(key); ok {
		return v, nil
	}

	c.mu.Lock()
	c.stats.Misses++
	c.stats.Computes++
	c.mu.Unlock()
	v, err := compute()
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		return v, err
	}
	c.store(key, v)
	return v, nil
}

// tryDisk attempts to load and validate the on-disk entry for key,
// promoting it into the memory layer on success and discarding it on
// corruption.
func (c *Cache[T]) tryDisk(key Key) (T, bool) {
	var zero T
	path := c.EntryPath(key)
	buf, err := os.ReadFile(path)
	if err != nil {
		return zero, false
	}
	payload, err := decodeRecord(key, buf)
	var v T
	if err == nil {
		v, err = c.codec.Decode(payload)
	}
	if err != nil {
		// Corrupt or undecodable: discard so it is recomputed, never
		// served.
		os.Remove(path)
		c.mu.Lock()
		c.stats.Corrupt++
		if e, ok := c.disk[key]; ok {
			c.total -= e.size
			delete(c.disk, key)
		}
		c.mu.Unlock()
		return zero, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) // refresh cross-process LRU age; best-effort
	c.mu.Lock()
	c.stats.Hits++
	c.stats.DiskHits++
	c.stats.BytesRead += uint64(len(buf))
	c.mem[key] = v
	c.clock++
	if e, ok := c.disk[key]; ok {
		e.atime = c.clock
		c.disk[key] = e
	} else {
		// Written by another process after our scan.
		c.disk[key] = diskEntry{size: int64(len(buf)), atime: c.clock}
		c.total += int64(len(buf))
	}
	c.mu.Unlock()
	return v, true
}

// store encodes v, writes it atomically (temp file + rename, so a crash
// mid-write never leaves a partial entry visible), indexes it, and evicts
// past the size bound. Failures are counted, not returned: the value is
// already in memory and the run must not depend on a writable cache.
func (c *Cache[T]) store(key Key, v T) {
	c.mu.Lock()
	c.mem[key] = v
	c.mu.Unlock()

	payload, err := c.codec.Encode(v)
	if err != nil {
		c.noteWriteError()
		return
	}
	rec := encodeRecord(key, payload)
	path := c.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.noteWriteError()
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		c.noteWriteError()
		return
	}
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.noteWriteError()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.noteWriteError()
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.noteWriteError()
		return
	}

	c.mu.Lock()
	c.stats.BytesWritten += uint64(len(rec))
	if e, ok := c.disk[key]; ok {
		c.total -= e.size
	}
	c.clock++
	c.disk[key] = diskEntry{size: int64(len(rec)), atime: c.clock}
	c.total += int64(len(rec))
	evict := c.collectEvictions(key)
	c.mu.Unlock()
	for _, k := range evict {
		os.Remove(c.EntryPath(k))
	}
}

// collectEvictions (mu held) trims the index to the size bound, oldest
// first, sparing the just-written key, and returns the keys whose files
// the caller must remove.
func (c *Cache[T]) collectEvictions(justWritten Key) []Key {
	var out []Key
	for c.total > c.maxBytes {
		var victim Key
		var victimAge int64
		found := false
		for k, e := range c.disk {
			if k == justWritten {
				continue
			}
			if !found || e.atime < victimAge {
				victim, victimAge, found = k, e.atime, true
			}
		}
		if !found {
			break // only the fresh entry remains; keep it even if oversized
		}
		c.total -= c.disk[victim].size
		delete(c.disk, victim)
		c.stats.Evictions++
		out = append(out, victim)
	}
	return out
}

func (c *Cache[T]) noteWriteError() {
	c.mu.Lock()
	c.stats.WriteErrors++
	c.mu.Unlock()
}
