package cvp

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleInstrs() []*Instruction {
	return []*Instruction{
		{PC: 0x1000, Class: ClassALU, SrcRegs: []uint8{1, 2}, DstRegs: []uint8{3}, DstValues: []uint64{42}},
		{PC: 0x1004, Class: ClassLoad, EffAddr: 0xdeadbeef0, MemSize: 8, SrcRegs: []uint8{0}, DstRegs: []uint8{1, 0}, DstValues: []uint64{7, 0xdeadbeef8}},
		{PC: 0x1008, Class: ClassStore, EffAddr: 0xcafef00d, MemSize: 4, SrcRegs: []uint8{2, 0}},
		{PC: 0x100c, Class: ClassCondBranch, Taken: true, Target: 0x1000, SrcRegs: []uint8{5}},
		{PC: 0x1010, Class: ClassCondBranch, Taken: false},
		{PC: 0x1014, Class: ClassUncondDirect, Taken: true, Target: 0x2000, DstRegs: []uint8{RegLR}, DstValues: []uint64{0x1018}},
		{PC: 0x2000, Class: ClassUncondIndirect, Taken: true, Target: 0x1018, SrcRegs: []uint8{RegLR}},
		{PC: 0x1018, Class: ClassFP, SrcRegs: []uint8{33, 34}, DstRegs: []uint8{35}, DstValues: []uint64{1}},
		{PC: 0x101c, Class: ClassSlowALU, SrcRegs: []uint8{1, 2}, DstRegs: []uint8{4}, DstValues: []uint64{9}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := sampleInstrs()
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatalf("Write(%+v): %v", in, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(want)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(want))
	}

	r := NewReader(&buf)
	got, err := ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
			t.Errorf("instr %d:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(in *Instruction) Instruction {
	out := *in
	if len(out.SrcRegs) == 0 {
		out.SrcRegs = nil
	}
	if len(out.DstRegs) == 0 {
		out.DstRegs = nil
	}
	if len(out.DstValues) == 0 {
		out.DstValues = nil
	}
	return out
}

func TestGzipRoundTrip(t *testing.T) {
	var raw bytes.Buffer
	zw := gzip.NewWriter(&raw)
	w := NewWriter(zw)
	want := sampleInstrs()
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	r, closer, err := OpenReader("trace.gz", bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer closer.Close()
	got, err := ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(want))
	}
}

func TestOpenReaderPlain(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleInstrs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, closer, err := OpenReader("trace.bin", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if _, err := r.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range sampleInstrs() {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop the stream at every prefix length and verify the reader either
	// returns clean io.EOF at a record boundary or flags truncation; it
	// must never hang or return corrupt data silently beyond the cut.
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		var err error
		for err == nil {
			_, err = r.Next()
		}
		if err == io.EOF {
			continue // clean boundary
		}
		if err == nil {
			t.Fatalf("cut %d: no error on truncated stream", cut)
		}
	}
}

func TestInvalidClass(t *testing.T) {
	// A record whose class byte is out of range must be rejected.
	b := make([]byte, 9)
	b[8] = 0xff
	r := NewReader(bytes.NewReader(b))
	if _, err := r.Next(); err == nil {
		t.Fatal("Next accepted invalid class byte")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		in   Instruction
		ok   bool
	}{
		{"plain alu", Instruction{Class: ClassALU}, true},
		{"bad class", Instruction{Class: InstClass(99)}, false},
		{"too many src", Instruction{Class: ClassALU, SrcRegs: make([]uint8, MaxSrcRegs+1)}, false},
		{"too many dst", Instruction{Class: ClassALU, DstRegs: make([]uint8, MaxDstRegs+1), DstValues: make([]uint64, MaxDstRegs+1)}, false},
		{"value count mismatch", Instruction{Class: ClassALU, DstRegs: []uint8{1}}, false},
		{"src out of range", Instruction{Class: ClassALU, SrcRegs: []uint8{64}}, false},
		{"dst out of range", Instruction{Class: ClassALU, DstRegs: []uint8{200}, DstValues: []uint64{0}}, false},
		{"bad mem size", Instruction{Class: ClassLoad, MemSize: 3}, false},
		{"good mem size", Instruction{Class: ClassLoad, MemSize: 16}, true},
		{"taken non-branch", Instruction{Class: ClassALU, Taken: true}, false},
		{"taken branch", Instruction{Class: ClassCondBranch, Taken: true}, true},
	}
	for _, tc := range cases {
		err := tc.in.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestInstructionPredicates(t *testing.T) {
	ld := &Instruction{Class: ClassLoad, SrcRegs: []uint8{7}, DstRegs: []uint8{3, 7}, DstValues: []uint64{11, 22}}
	if !ld.IsLoad() || ld.IsStore() || ld.IsBranch() {
		t.Errorf("load predicates wrong: %+v", ld)
	}
	if !ld.ReadsReg(7) || ld.ReadsReg(3) {
		t.Error("ReadsReg wrong")
	}
	if !ld.WritesReg(3) || !ld.WritesReg(7) || ld.WritesReg(1) {
		t.Error("WritesReg wrong")
	}
	if v, ok := ld.DstValue(7); !ok || v != 22 {
		t.Errorf("DstValue(7) = %d,%v want 22,true", v, ok)
	}
	if _, ok := ld.DstValue(9); ok {
		t.Error("DstValue(9) should be absent")
	}
	for _, c := range []InstClass{ClassCondBranch, ClassUncondDirect, ClassUncondIndirect} {
		if !c.IsBranch() {
			t.Errorf("%v should be a branch", c)
		}
	}
	for _, c := range []InstClass{ClassALU, ClassLoad, ClassStore, ClassFP, ClassSlowALU, ClassUndef} {
		if c.IsBranch() {
			t.Errorf("%v should not be a branch", c)
		}
	}
	if !ClassLoad.IsMem() || !ClassStore.IsMem() || ClassALU.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestClone(t *testing.T) {
	in := sampleInstrs()[1]
	c := in.Clone()
	if !reflect.DeepEqual(normalize(c), normalize(in)) {
		t.Fatalf("clone differs: %+v vs %+v", c, in)
	}
	c.DstRegs[0] = 99
	c.SrcRegs[0] = 98
	c.DstValues[0] = 97
	if in.DstRegs[0] == 99 || in.SrcRegs[0] == 98 || in.DstValues[0] == 97 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestSliceSource(t *testing.T) {
	instrs := sampleInstrs()
	src := NewSliceSource(instrs)
	if src.Len() != len(instrs) {
		t.Fatalf("Len = %d want %d", src.Len(), len(instrs))
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(instrs) {
		t.Fatalf("read %d want %d", len(got), len(instrs))
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
	src.Reset()
	if in, err := src.Next(); err != nil || in != instrs[0] {
		t.Fatalf("after Reset, Next = %v, %v", in, err)
	}
}

// randomInstruction builds a structurally valid random instruction for
// property-based round-trip testing.
func randomInstruction(r *rand.Rand) *Instruction {
	in := &Instruction{
		PC:    r.Uint64(),
		Class: InstClass(r.Intn(NumClasses)),
	}
	if in.Class.IsMem() {
		in.EffAddr = r.Uint64()
		in.MemSize = []uint8{1, 2, 4, 8, 16}[r.Intn(5)]
	}
	if in.Class.IsBranch() {
		in.Taken = r.Intn(2) == 0
		if in.Taken {
			in.Target = r.Uint64()
		}
	}
	for i, n := 0, r.Intn(MaxSrcRegs+1); i < n; i++ {
		in.SrcRegs = append(in.SrcRegs, uint8(r.Intn(NumRegs)))
	}
	for i, n := 0, r.Intn(MaxDstRegs+1); i < n; i++ {
		in.DstRegs = append(in.DstRegs, uint8(r.Intn(NumRegs)))
		in.DstValues = append(in.DstValues, r.Uint64())
	}
	return in
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		want := make([]*Instruction, count)
		for i := range want {
			want[i] = randomInstruction(r)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, in := range want {
			if err := w.Write(in); err != nil {
				t.Logf("Write: %v", err)
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(NewReader(&buf))
		if err != nil {
			t.Logf("ReadAll: %v", err)
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
				t.Logf("instr %d mismatch:\n got  %+v\n want %+v", i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	seen := map[string]bool{}
	for c := InstClass(0); int(c) < NumClasses; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("class %d has empty/duplicate string %q", c, s)
		}
		seen[s] = true
	}
	if got := InstClass(200).String(); got != "InstClass(200)" {
		t.Errorf("unknown class string = %q", got)
	}
}
