package cpu

// Multi-core lockstep simulation, after ChampSim's N-core model: every core
// is a complete single-core Pipeline — its own uop arena, queues, branch
// predictors, TLBs, and private L1I/L1D/L2 — and all cores share one LLC,
// one LLC↔DRAM port, and one DRAM (mem.SharedHierarchy). Cores advance in
// lockstep: each global cycle runs one pass of every active core in core
// order, then time moves for all of them at once.
//
// Event-horizon cycle skipping generalizes per the same invariant as the
// single-core case: a jump is legal only when NO core made progress, and it
// lands on the minimum registered wake across cores — the earliest moment
// any core can act. Cross-core interaction happens exclusively inside
// passes (shared-level accesses), so cycles in which every core is provably
// blocked cannot change shared state either.

import (
	"fmt"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/mem"
)

// MultiPipeline is an N-core lockstep system over a shared memory
// hierarchy.
type MultiPipeline struct {
	cfg   Config
	cores []*Pipeline
	sh    *mem.SharedHierarchy

	// Reused across Run calls so the steady-state loop allocates nothing.
	done []bool
	out  []Stats
}

// NewMulti builds an N-core system from cfg (Cores ≥ 2; Cores == 1 is
// permitted for degenerate testing). Every core gets the same per-core
// configuration; cfg.Hierarchy.LLC describes the single shared LLC, whose
// Policy may additionally be "shared-srrip", and cfg.MemBandwidth the
// LLC↔DRAM port interval.
func NewMulti(cfg Config) (*MultiPipeline, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("cpu: NewMulti requires Cores >= 1, got %d", cfg.Cores)
	}
	if cfg.SamplePeriod > 0 {
		return nil, fmt.Errorf("cpu: sampled simulation is single-core only (SamplePeriod=%d with Cores=%d)", cfg.SamplePeriod, cfg.Cores)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Cores
	sh := mem.NewSharedHierarchy(n, cfg.Hierarchy, cfg.MemBandwidth)
	m := &MultiPipeline{
		cfg:  cfg,
		sh:   sh,
		done: make([]bool, n),
		out:  make([]Stats, n),
	}
	// Each core's pipeline is constructed with the shared-level knobs
	// scrubbed: its private view already embeds them, and the single-core
	// constructor would reject the names.
	ccfg := cfg
	ccfg.Cores = 0
	ccfg.MemBandwidth = 0
	if ccfg.Hierarchy.LLC.Policy == "shared-srrip" {
		ccfg.Hierarchy.LLC.Policy = ""
	}
	for i := 0; i < n; i++ {
		p, err := newPipeline(ccfg, sh.Cores[i], i)
		if err != nil {
			return nil, err
		}
		m.cores = append(m.cores, p)
	}
	return m, nil
}

// Hierarchy returns the shared memory system (tests and telemetry).
func (m *MultiPipeline) Hierarchy() *mem.SharedHierarchy { return m.sh }

// Core returns core i's pipeline (tests).
func (m *MultiPipeline) Core(i int) *Pipeline { return m.cores[i] }

// Run simulates len(srcs) == Cores trace sources in lockstep. srcs[i] == nil
// marks core i idle: it never steps, touches no shared state, and reports
// zero statistics — an N-core system with idle neighbors is therefore
// byte-identical to a single-core run of the active workload (the
// conformance suite proves it). warmup and maxInstructions apply per core;
// a core that reaches its budget or drains freezes its statistics and stops
// accessing the shared levels while the others run on.
//
// The returned slice is owned by the MultiPipeline and overwritten by the
// next Run call.
func (m *MultiPipeline) Run(srcs []champtrace.Source, warmup, maxInstructions uint64) ([]Stats, error) {
	if len(srcs) != len(m.cores) {
		return nil, fmt.Errorf("cpu: %d sources for %d cores", len(srcs), len(m.cores))
	}
	active := 0
	for i, p := range m.cores {
		m.out[i] = Stats{}
		if srcs[i] == nil {
			m.done[i] = true
			continue
		}
		m.done[i] = false
		active++
		if err := p.la.init(srcs[i]); err != nil {
			return nil, err
		}
		p.measuring = warmup == 0
		if p.measuring {
			p.beginMeasurement()
		}
	}
	skip := !m.cfg.NoCycleSkip
	// All active cores share one clock; align them (fresh pipelines are all
	// at zero, reused ones may have idled through a previous run).
	cycle := uint64(0)
	for i, p := range m.cores {
		if !m.done[i] && p.cycle > cycle {
			cycle = p.cycle
		}
	}
	for i, p := range m.cores {
		if !m.done[i] {
			p.cycle = cycle
		}
	}
	for active > 0 {
		progressed := false
		wake := ^uint64(0)
		for i, p := range m.cores {
			if m.done[i] {
				continue
			}
			m.sh.SetRequester(i)
			p.pass()
			progressed = progressed || p.progressed
			if p.nextWake < wake {
				wake = p.nextWake
			}
		}
		if skip && !progressed && wake != ^uint64(0) && wake > cycle+1 {
			// No core progressed and the earliest cross-core wake is known:
			// every intervening cycle is dead for every core, including the
			// shared levels (which only move inside passes). Jump all
			// clocks, attributing the skipped span to each active core.
			for i, p := range m.cores {
				if !m.done[i] {
					p.jumpTo(wake)
				}
			}
			cycle = wake
		} else {
			for i, p := range m.cores {
				if !m.done[i] {
					p.cycle++
				}
			}
			cycle++
		}
		for i, p := range m.cores {
			if m.done[i] {
				continue
			}
			if !p.measuring && p.retired >= warmup {
				p.measuring = true
				p.beginMeasurement()
			}
			if (maxInstructions > 0 && p.retired >= maxInstructions) || p.drained() {
				m.out[i] = p.finalize()
				m.done[i] = true
				active--
			}
		}
	}
	return m.out, nil
}
