package iprefetch

// MANA (Ansari et al.) records the miss stream as spatial regions chained
// by successor pointers: each "MANA record" holds a trigger line, a small
// spatial footprint around it, and a pointer to the next record. On a miss
// the chain is walked a few records ahead, prefetching each record's
// footprint — amortizing metadata while still covering discontinuities.
type MANA struct {
	Base
	records  map[uint64]*manaRecord
	maxRecs  int
	lastMiss uint64
	depth    int
}

type manaRecord struct {
	// footprint marks which of the 4 lines after the trigger were also
	// fetched while the record was live.
	footprint uint8
	// next points to the next record's trigger line.
	next uint64
}

// NewMANA returns a MANA prefetcher.
func NewMANA() *MANA {
	return &MANA{records: make(map[uint64]*manaRecord, 8192), maxRecs: 8192, depth: 3}
}

// Name implements Prefetcher.
func (p *MANA) Name() string { return "mana" }

// OnAccess implements Prefetcher.
func (p *MANA) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	// Spatial training: accesses near the previous miss extend its
	// footprint.
	if p.lastMiss != 0 && lineAddr > p.lastMiss {
		if d := (lineAddr - p.lastMiss) / LineSize; d >= 1 && d <= 4 {
			if r, ok := p.records[p.lastMiss]; ok {
				r.footprint |= 1 << (d - 1)
			}
		}
	}
	if hit {
		return buf
	}

	// Chain training: the previous miss's record points at this one.
	if p.lastMiss != 0 && p.lastMiss != lineAddr {
		if r, ok := p.records[p.lastMiss]; ok {
			r.next = lineAddr
		}
	}
	if _, ok := p.records[lineAddr]; !ok {
		if len(p.records) >= p.maxRecs {
			// Table full: clear it wholesale — a deterministic global reset
			// (cheap and rare) stands in for hardware index eviction, where
			// per-entry map deletion would be iteration-order dependent and
			// break run-to-run determinism.
			clear(p.records)
		}
		p.records[lineAddr] = &manaRecord{}
	}
	p.lastMiss = lineAddr

	// Walk the chain: prefetch each record's trigger and footprint. A
	// cold miss with no recorded successor falls back to the next line
	// (a fresh record's implicit spatial footprint).
	cur := lineAddr
	for step := 0; step < p.depth; step++ {
		r, ok := p.records[cur]
		if !ok {
			break
		}
		if step == 0 && r.next == 0 && r.footprint == 0 {
			buf = append(buf, lineAddr+LineSize)
		}
		for b := uint64(0); b < 4; b++ {
			if r.footprint&(1<<b) != 0 {
				buf = append(buf, cur+(b+1)*LineSize)
			}
		}
		if r.next == 0 || r.next == cur {
			break
		}
		buf = append(buf, r.next)
		cur = r.next
	}
	return buf
}
