// Command tracegen generates synthetic CVP-1 traces: either one named
// trace or a full suite (the 135-trace CVP-1 public set or the 50-trace
// IPC-1 set). Traces are written in the CVP-1 binary format, optionally
// gzip-compressed, mirroring how the original traces were distributed.
//
// Usage:
//
//	tracegen -trace srv_0 -n 1000000 -o traces/
//	tracegen -suite CVP1public -n 150000 -o traces/ -gzip
//	tracegen -list
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tracerebase/internal/cvp"
	"tracerebase/internal/synth"
)

func main() {
	var (
		trace   = flag.String("trace", "", "single trace name (e.g. srv_0, compute_int_46, client_001)")
		suite   = flag.String("suite", "", "generate a whole suite: CVP1public or IPC1")
		n       = flag.Int("n", 150000, "instructions per trace")
		outDir  = flag.String("o", ".", "output directory")
		gz      = flag.Bool("gzip", false, "gzip-compress the output (.gz suffix)")
		list    = flag.Bool("list", false, "list available trace names and exit")
		verbose = flag.Bool("v", false, "print per-trace progress")
	)
	flag.Parse()

	if *list {
		fmt.Println("# CVP-1 public suite (135 traces)")
		for _, p := range synth.PublicSuite() {
			fmt.Println(p.Name)
		}
		fmt.Println("# IPC-1 suite (50 traces)")
		for _, tr := range synth.IPC1Suite() {
			fmt.Printf("%s (%s)\n", tr.Name, tr.CVPName)
		}
		return
	}

	var profiles []synth.Profile
	switch {
	case *trace != "":
		p, ok := synth.FindPublic(*trace)
		if !ok {
			if tr, ok2 := synth.FindIPC1(*trace); ok2 {
				p = tr.Profile
			} else {
				fatalf("unknown trace %q (try -list)", *trace)
			}
		}
		profiles = []synth.Profile{p}
	case *suite == "CVP1public":
		profiles = synth.PublicSuite()
	case *suite == "IPC1":
		for _, tr := range synth.IPC1Suite() {
			profiles = append(profiles, tr.Profile)
		}
	default:
		fatalf("need -trace NAME or -suite CVP1public|IPC1")
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("create output dir: %v", err)
	}
	for _, p := range profiles {
		name := p.Name + ".cvp"
		if *gz {
			name += ".gz"
		}
		path := filepath.Join(*outDir, name)
		if err := writeTrace(path, p, *n, *gz); err != nil {
			fatalf("%s: %v", p.Name, err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "wrote %s (%d instructions)\n", path, *n)
		}
	}
}

func writeTrace(path string, p synth.Profile, n int, gz bool) error {
	instrs, err := p.Generate(n)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var sink io.Writer = f
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(f)
		sink = zw
	}
	w := cvp.NewWriter(sink)
	for _, in := range instrs {
		if err := w.Write(in); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return f.Sync()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
