module tracerebase

go 1.22
