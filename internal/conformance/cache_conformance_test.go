package conformance

import (
	"testing"

	"tracerebase/internal/synth"
)

// TestCacheTransparency runs the cache differential oracle at test scale:
// fresh vs warm runs of the same sweep must render byte-identically, and a
// deliberately corrupted cache entry must be detected and recomputed, not
// served. (The -selftest path runs the same oracle at larger scale.)
func TestCacheTransparency(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 3),
		synth.PublicProfile(synth.Server, 5),
	}
	if err := CheckCacheTransparency(profiles, 1500, 300); err != nil {
		t.Fatal(err)
	}
}
