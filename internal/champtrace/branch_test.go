package champtrace

import "testing"

// mk builds a branch record with the given special-register usage.
func mk(readsIP, readsSP, readsFlags, readsOther, writesIP, writesSP bool) *Instruction {
	in := &Instruction{IP: 0x1000, IsBranch: true}
	if readsIP {
		in.AddSrcReg(RegInstructionPointer)
	}
	if readsSP {
		in.AddSrcReg(RegStackPointer)
	}
	if readsFlags {
		in.AddSrcReg(RegFlags)
	}
	if readsOther {
		in.AddSrcReg(RegOther)
	}
	if writesIP {
		in.AddDestReg(RegInstructionPointer)
	}
	if writesSP {
		in.AddDestReg(RegStackPointer)
	}
	return in
}

func TestClassifyOriginal(t *testing.T) {
	cases := []struct {
		name string
		in   *Instruction
		want BranchType
	}{
		{"direct jump", mk(true, false, false, false, true, false), BranchDirectJump},
		{"indirect jump", mk(false, false, false, true, true, false), BranchIndirect},
		{"conditional", mk(true, false, true, false, true, false), BranchConditional},
		{"direct call", mk(true, true, false, false, true, true), BranchDirectCall},
		{"indirect call", mk(true, true, false, true, true, true), BranchIndirectCall},
		{"return", mk(false, true, false, false, true, true), BranchReturn},
		{"no ip write", mk(true, false, true, false, false, false), BranchOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.in, RulesOriginal); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyNotBranch(t *testing.T) {
	in := mk(true, false, true, false, true, false)
	in.IsBranch = false
	if got := Classify(in, RulesOriginal); got != NotBranch {
		t.Errorf("non-branch classified as %v", got)
	}
	if got := Classify(in, RulesPatched); got != NotBranch {
		t.Errorf("non-branch classified as %v under patched rules", got)
	}
}

// TestConditionalWithGPRSource is the heart of §3.2.2: a conditional branch
// that reads a general-purpose register instead of FLAGS (a converted
// cb(n)z/tb(n)z) is misclassified as an indirect jump by the original rules
// because the indirect check runs first and ignores reads-IP. The patched
// rules classify it correctly.
func TestConditionalWithGPRSource(t *testing.T) {
	condWithGPR := mk(true, false, false, true, true, false)
	if got := Classify(condWithGPR, RulesOriginal); got != BranchIndirect {
		t.Errorf("original rules: got %v, want %v (the documented misclassification)", got, BranchIndirect)
	}
	if got := Classify(condWithGPR, RulesPatched); got != BranchConditional {
		t.Errorf("patched rules: got %v, want %v", got, BranchConditional)
	}
}

// TestPatchedPreservesOtherTypes verifies the §3.2.2 patch is safe: every
// other branch flavour keeps its classification.
func TestPatchedPreservesOtherTypes(t *testing.T) {
	cases := []struct {
		name string
		in   *Instruction
		want BranchType
	}{
		{"direct jump", mk(true, false, false, false, true, false), BranchDirectJump},
		{"indirect jump (no IP read)", mk(false, false, false, true, true, false), BranchIndirect},
		{"flags conditional", mk(true, false, true, false, true, false), BranchConditional},
		{"direct call", mk(true, true, false, false, true, true), BranchDirectCall},
		{"indirect call", mk(true, true, false, true, true, true), BranchIndirectCall},
		{"return", mk(false, true, false, false, true, true), BranchReturn},
	}
	for _, tc := range cases {
		if got := Classify(tc.in, RulesPatched); got != tc.want {
			t.Errorf("%s: patched Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestIndirectCallStillIndirect confirms the paper's remark that adding the
// CVP source register to indirect calls does not change their type: they
// already read "other" registers.
func TestIndirectCallStillIndirect(t *testing.T) {
	in := mk(true, true, false, true, true, true)
	in.AddSrcReg(40) // extra GPR source carried over from the CVP trace
	for _, rules := range []RuleSet{RulesOriginal, RulesPatched} {
		if got := Classify(in, rules); got != BranchIndirectCall {
			t.Errorf("rules %v: got %v, want indirect-call", rules, got)
		}
	}
}

func TestBranchTypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for bt := NotBranch; bt <= BranchOther; bt++ {
		s := bt.String()
		if s == "" || seen[s] {
			t.Errorf("type %d: empty/duplicate string %q", bt, s)
		}
		seen[s] = true
	}
	if !BranchDirectCall.IsCall() || !BranchIndirectCall.IsCall() {
		t.Error("calls not recognized")
	}
	if BranchReturn.IsCall() || BranchConditional.IsCall() {
		t.Error("non-calls recognized as calls")
	}
	if RulesOriginal.String() != "original" || RulesPatched.String() != "patched" {
		t.Error("RuleSet strings wrong")
	}
}
