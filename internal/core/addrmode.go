package core

import "tracerebase/internal/cvp"

// AddrMode is the inferred addressing mode of a CVP-1 memory instruction.
type AddrMode uint8

const (
	// AddrPlain is an access with no base-register writeback.
	AddrPlain AddrMode = iota
	// AddrPreIndex updates the base register BEFORE the access: the
	// effective address equals the new base value (e.g. LDR X1,[X0,#12]!).
	AddrPreIndex
	// AddrPostIndex updates the base register AFTER the access: the
	// effective address is the old base value and the new value differs
	// from it by a small immediate (e.g. LDR X1,[X0],#8).
	AddrPostIndex
)

func (m AddrMode) String() string {
	switch m {
	case AddrPreIndex:
		return "pre-index"
	case AddrPostIndex:
		return "post-index"
	default:
		return "plain"
	}
}

// IsBaseUpdate reports whether the mode writes back the base register.
func (m AddrMode) IsBaseUpdate() bool { return m != AddrPlain }

// maxPostIndexImm bounds the |new base − effective address| delta accepted
// as a post-indexing immediate. Aarch64 pre/post-index forms encode a
// signed 9-bit immediate (−256..255); LDP/STP writeback scales a 7-bit
// immediate by the register size, reaching ±512 for 64-bit pairs.
const maxPostIndexImm = 512

// inference is the result of the addressing-mode heuristic.
type inference struct {
	mode AddrMode
	// base is the CVP register inferred to be the updated base, valid
	// when mode.IsBaseUpdate().
	base uint8
	// newBase is the value written to the base register.
	newBase uint64
}

// inferAddrMode applies the trace-maintainer's heuristic (§3.1.2): a memory
// instruction performs a base update when one of its destination registers
// is also a source register and the value written to it relates to the
// effective address either exactly (pre-index) or by a small immediate
// (post-index). tracked supplies the last known values of the architectural
// registers, used to reject look-alikes such as LDP X1,X0,[X0] where the
// "base" destination is in fact populated from memory.
//
// The inference is best effort — the CVP-1 format does not record the
// addressing mode, so a load whose memory value happens to land within the
// immediate window of the effective address is indistinguishable from a
// genuine post-index update.
func inferAddrMode(in *cvp.Instruction, tracked *regTracker) inference {
	if !in.Class.IsMem() {
		return inference{mode: AddrPlain}
	}
	for i, d := range in.DstRegs {
		if d == cvp.RegSP || !in.ReadsReg(d) {
			continue
		}
		newBase := in.DstValues[i]
		if newBase == in.EffAddr {
			return inference{mode: AddrPreIndex, base: d, newBase: newBase}
		}
		delta := int64(newBase - in.EffAddr)
		if delta >= -maxPostIndexImm && delta <= maxPostIndexImm && delta != 0 {
			// Post-index requires the OLD base to equal the
			// effective address; when we know the old value, use it
			// to reject memory values that merely land nearby.
			if old, ok := tracked.value(d); ok && old != in.EffAddr {
				continue
			}
			return inference{mode: AddrPostIndex, base: d, newBase: newBase}
		}
	}
	return inference{mode: AddrPlain}
}

// regTracker mirrors the CVP trace reader's register file: it records the
// last value written to each architectural register so the converter can
// reason about addresses.
type regTracker struct {
	known [cvp.NumRegs]bool
	val   [cvp.NumRegs]uint64
}

func (t *regTracker) value(r uint8) (uint64, bool) {
	if int(r) >= len(t.val) {
		return 0, false
	}
	return t.val[r], t.known[r]
}

// update records the destination values of in.
func (t *regTracker) update(in *cvp.Instruction) {
	for i, d := range in.DstRegs {
		if int(d) < len(t.val) {
			t.known[d] = true
			t.val[d] = in.DstValues[i]
		}
	}
}
