package tracestore

import (
	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
)

// Slab is one converted trace, resident in the store. Its record slice is
// a read-only view into an mmap'd file (or, after a write failure, a
// plain heap slab) and stays valid until Release drops the last reference
// AND the store has evicted it from residency — a slab is never unmapped
// under a simulation that still holds it.
type Slab struct {
	store *Store
	key   Key
	conv  core.Stats
	recs  []champtrace.Instruction

	// data is the raw mapping backing recs; nil for heap slabs.
	data []byte
	// heap marks a slab whose records live on the Go heap (write-failure
	// fallback, or the non-mmap platform path for disk loads). Destroying
	// a heap slab recycles the records into the store's scratch pool.
	heap bool

	// The fields below are guarded by store.mu.
	refs     int32
	resident bool
	lastUse  uint64
	// destroyed is a test hook: set exactly once, when the backing memory
	// is released.
	destroyed bool
}

// Records returns the simulation-ready instruction slab. The slice is
// shared and read-only; it must not be retained past Release.
func (s *Slab) Records() []champtrace.Instruction { return s.recs }

// Conv returns the converter statistics captured when the slab was built.
// They are part of the slab's content: figure rendering consumes them, so
// a slab load must reproduce them exactly as a fresh conversion would.
func (s *Slab) Conv() core.Stats { return s.conv }

// Len returns the record count.
func (s *Slab) Len() int { return len(s.recs) }

// Release drops the caller's reference. The backing memory is freed only
// once no caller holds a reference and the store no longer keeps the slab
// resident for reuse.
func (s *Slab) Release() {
	if s == nil {
		return
	}
	st := s.store
	st.mu.Lock()
	if s.refs <= 0 {
		st.mu.Unlock()
		panic("tracestore: Release without matching reference")
	}
	s.refs--
	drop := s.refs == 0 && (!s.resident || st.closed)
	st.mu.Unlock()
	if drop {
		s.destroy()
	}
}

// destroy releases the backing memory. Callers must have established that
// no reference remains and the store has dropped residency.
func (s *Slab) destroy() {
	if s.data != nil {
		unmapFile(s.data)
		s.data = nil
	} else if s.heap && s.store != nil {
		s.store.putScratch(s.recs)
	}
	s.recs = nil
	s.store.mu.Lock()
	s.destroyed = true
	s.store.mu.Unlock()
}
