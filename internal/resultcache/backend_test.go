package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func bkey(s string) Key {
	h := NewHasher("test/backend")
	h.Str(s)
	return h.Sum()
}

func TestMemoryLRUEviction(t *testing.T) {
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 100) }
	m := NewMemory(250) // room for two 100-byte entries

	for i := 0; i < 3; i++ {
		if err := m.Put(bkey(fmt.Sprintf("k%d", i)), payload(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// k0 is the LRU victim of the k2 insert.
	if _, err := m.Get(bkey("k0")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("k0 should have been evicted, got err=%v", err)
	}
	for _, k := range []string{"k1", "k2"} {
		if _, err := m.Get(bkey(k)); err != nil {
			t.Fatalf("%s should be resident: %v", k, err)
		}
	}
	if s := m.Stat(); s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if m.Len() != 2 || m.Bytes() != 200 {
		t.Fatalf("Len=%d Bytes=%d, want 2/200", m.Len(), m.Bytes())
	}
}

func TestMemoryLRUTouchOnGet(t *testing.T) {
	m := NewMemory(250)
	m.Put(bkey("a"), bytes.Repeat([]byte{1}, 100))
	m.Put(bkey("b"), bytes.Repeat([]byte{2}, 100))
	// Touch a so b becomes the LRU victim.
	if _, err := m.Get(bkey("a")); err != nil {
		t.Fatal(err)
	}
	m.Put(bkey("c"), bytes.Repeat([]byte{3}, 100))
	if _, err := m.Get(bkey("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b should have been evicted, got err=%v", err)
	}
	if _, err := m.Get(bkey("a")); err != nil {
		t.Fatalf("a should survive after touch: %v", err)
	}
}

func TestMemoryOversizedEntryRejected(t *testing.T) {
	m := NewMemory(50)
	m.Put(bkey("small"), []byte("x"))
	if err := m.Put(bkey("huge"), bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatalf("oversized Put should be a quiet no-op, got %v", err)
	}
	if _, err := m.Get(bkey("huge")); !errors.Is(err, ErrNotFound) {
		t.Fatal("oversized entry must not be stored")
	}
	if _, err := m.Get(bkey("small")); err != nil {
		t.Fatal("existing entries must survive an oversized Put")
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := bkey(fmt.Sprintf("g%d-i%d", g, i%10))
				m.Put(k, []byte{byte(g), byte(i)})
				m.Get(k)
			}
		}(g)
	}
	wg.Wait()
}

func TestDiskBackendRoundTrip(t *testing.T) {
	d, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	key, want := bkey("rt"), []byte("payload")
	if err := d.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	if err := d.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after Delete, err=%v, want ErrNotFound", err)
	}
	// Deleting an absent key is not an error.
	if err := d.Delete(key); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
}

func TestRemoteRoundTripAndValidation(t *testing.T) {
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(disk))
	defer srv.Close()

	r, err := NewRemote(RemoteConfig{BaseURL: srv.URL, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	key, want := bkey("remote"), []byte("over the wire")
	if err := r.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	// The server stored through its disk tier.
	if _, err := disk.Get(key); err != nil {
		t.Fatalf("server-side disk should hold the entry: %v", err)
	}
	if _, err := r.Get(bkey("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: err=%v, want ErrNotFound", err)
	}
	if err := r.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatal("entry should be gone after Delete")
	}
	s := r.Stat()
	if s.Hits != 1 || s.Misses != 2 || s.Puts != 1 || s.Deletes != 1 {
		t.Fatalf("remote stats = %+v", s)
	}
}

func TestRemoteCorruptResponseIsMiss(t *testing.T) {
	// A server returning garbage instead of a framed record must read as a
	// corrupt miss, never as data.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte("not a TRRC record"))
	}))
	defer srv.Close()

	r, err := NewRemote(RemoteConfig{BaseURL: srv.URL, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(bkey("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt response: err=%v, want ErrNotFound", err)
	}
	if s := r.Stat(); s.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", s.Corrupt)
	}
}

func TestRemoteWrongKeyResponseIsMiss(t *testing.T) {
	// A response framed for a different key (misrouted proxy, bad server)
	// must be rejected by the embedded-key check.
	wrong := bkey("wrong")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write(encodeRecord(wrong, []byte("payload")))
	}))
	defer srv.Close()

	r, err := NewRemote(RemoteConfig{BaseURL: srv.URL, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(bkey("right")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong-key response: err=%v, want ErrNotFound", err)
	}
}

func TestRemoteRetriesServerErrors(t *testing.T) {
	var calls int
	disk, err := NewDisk(DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	key, want := bkey("flaky"), []byte("eventually")
	if err := disk.Put(key, want); err != nil {
		t.Fatal(err)
	}
	inner := NewHTTPHandler(disk)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		calls++
		if calls <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, req)
	}))
	defer srv.Close()

	r, err := NewRemote(RemoteConfig{BaseURL: srv.URL, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(key)
	if err != nil {
		t.Fatalf("Get should succeed on third attempt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestHTTPHandlerRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewMemory(0)))
	defer srv.Close()

	for _, tc := range []struct {
		method, path string
		body         []byte
		wantStatus   int
	}{
		{http.MethodGet, "/zzzz", nil, http.StatusBadRequest},                             // unparseable key
		{http.MethodPut, "/" + bkey("k").String(), []byte("junk"), http.StatusBadRequest}, // unframed body
		{http.MethodPost, "/" + bkey("k").String(), nil, http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}
