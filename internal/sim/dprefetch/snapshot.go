package dprefetch

// Warmed-state serialization: each prefetcher implements the optional
// mem.StateSnapshotter interface so caches carrying one remain
// checkpointable. NextLine is stateless and serializes a bare tag.

import "tracerebase/internal/sim/snap"

// Section tags, one per serialized component.
const (
	snapNextLine = 0xd9ef0001
	snapIPStride = 0xd9ef0002
	snapStream   = 0xd9ef0003
)

// Snapshot implements the checkpoint state codec (no durable state).
func (p *NextLine) Snapshot(w *snap.Writer) { w.Mark(snapNextLine) }

// Restore implements the checkpoint state codec.
func (p *NextLine) Restore(r *snap.Reader) { r.Expect(snapNextLine) }

// Snapshot serializes the stride-detection table.
func (p *IPStride) Snapshot(w *snap.Writer) {
	w.Mark(snapIPStride)
	w.U32(uint32(len(p.table)))
	for i := range p.table {
		e := &p.table[i]
		w.U64(e.tag)
		w.U64(e.lastAddr)
		w.I64(e.stride)
		w.U8(e.conf)
		w.Bool(e.valid)
	}
}

// Restore restores the table into a prefetcher of identical geometry.
func (p *IPStride) Restore(r *snap.Reader) {
	r.Expect(snapIPStride)
	if n := r.Len(); n != len(p.table) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range p.table {
		e := &p.table[i]
		e.tag = r.U64()
		e.lastAddr = r.U64()
		e.stride = r.I64()
		e.conf = r.U8()
		e.valid = r.Bool()
	}
}

// Snapshot serializes the stream-detection table.
func (p *Stream) Snapshot(w *snap.Writer) {
	w.Mark(snapStream)
	w.U32(uint32(len(p.table)))
	for i := range p.table {
		e := &p.table[i]
		w.U64(e.lastLine)
		w.I64(int64(e.dir))
		w.U8(e.conf)
		w.Bool(e.valid)
	}
}

// Restore restores the table into a prefetcher of identical geometry.
func (p *Stream) Restore(r *snap.Reader) {
	r.Expect(snapStream)
	if n := r.Len(); n != len(p.table) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range p.table {
		e := &p.table[i]
		e.lastLine = r.U64()
		e.dir = int(r.I64())
		e.conf = r.U8()
		e.valid = r.Bool()
	}
}
