package experiments

import (
	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
)

// SlabStore is the content-addressed store of converted, simulation-ready
// instruction slabs. A nil *SlabStore in SweepConfig disables it (the
// -no-trace-store path), which reproduces the streaming conversion engine
// exactly.
type SlabStore = tracestore.Store

// OpenSlabStore opens the slab store rooted at dir ("" = the
// DefaultCacheDir resolution + "/slabs") with the given size bound (0 = the
// tracestore default of 8 GiB). warn, when non-nil, receives printf-style
// diagnostics for absorbed failures (corrupt slabs, write errors).
func OpenSlabStore(dir string, maxBytes int64, warn func(format string, args ...any)) (*SlabStore, error) {
	if dir == "" {
		base, err := DefaultCacheDir()
		if err != nil {
			return nil, err
		}
		dir = base + "/slabs"
	}
	return tracestore.Open(tracestore.Config{Dir: dir, MaxBytes: maxBytes, Warn: warn})
}

// slabKey derives the content address of one converted slab: the profile's
// canonical encoding (which embeds synth.GeneratorVersion), the converter
// algorithm version, the slab format version, the instruction count, and
// the converter-option bits. Deliberately NOT in the key: the build
// fingerprint (slabs survive rebuilds; stale-output protection is the
// version constants plus the slab-transparency oracle) and the simulator
// configuration (a slab is pure converter output — exact, sampled, and
// multi-core runs all share it).
func slabKey(p *synth.Profile, opts core.Options, instructions int) tracestore.Key {
	return resultcache.NewHasher("tracerebase/slab").
		U64(tracestore.FormatVersion).
		U64(core.ConverterVersion).
		Bytes(p.AppendCanonical(nil)).
		U64(uint64(instructions)).
		U64(uint64(opts.Bits())).
		Sum()
}

// acquireSlab returns a referenced slab for (p, opts, instructions),
// converting — and, through generate, synthesizing — the trace only on a
// store miss. generate is invoked at most once per actual conversion and
// may itself be memoized by the caller; the returned instruction slab is
// read-only during conversion. The caller must Release the slab.
func acquireSlab(store *SlabStore, p *synth.Profile, opts core.Options, instructions int, generate func() ([]cvp.Instruction, error)) (*tracestore.Slab, error) {
	return store.GetOrConvert(slabKey(p, opts, instructions),
		func(scratch []champtrace.Instruction) ([]champtrace.Instruction, core.Stats, error) {
			instrs, err := generate()
			if err != nil {
				return scratch, core.Stats{}, err
			}
			return core.ConvertAllInto(scratch, cvp.NewValuesSource(instrs), opts)
		})
}
