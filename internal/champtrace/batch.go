package champtrace

import (
	"fmt"
	"io"
)

// Batch-oriented streaming over ChampSim records. Instruction is a flat
// value type (fixed-size register and memory-slot arrays), so a batch is a
// plain []Instruction and refilling one allocates nothing.

// BatchSource is the batch variant of Source: NextBatch fills dst with up
// to len(dst) instructions and returns the number filled. It returns
// (0, io.EOF) when the stream is exhausted; a short batch with a nil error
// means the stream paused there. NextBatch never returns io.EOF together
// with n > 0. Errors other than io.EOF may accompany n > 0: dst[:n] holds
// valid records and no further calls should be made.
type BatchSource interface {
	NextBatch(dst []Instruction) (int, error)
}

// DefaultBatchSize is the batch length used by the adapters when the
// caller does not choose one.
const DefaultBatchSize = 512

// MakeBatch allocates a batch of n instructions.
func MakeBatch(n int) []Instruction { return make([]Instruction, n) }

// NextBatch implements BatchSource by copying from the in-memory slice.
func (s *SliceSource) NextBatch(dst []Instruction) (int, error) {
	if s.pos >= len(s.instrs) {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && s.pos < len(s.instrs) {
		dst[n] = *s.instrs[s.pos]
		s.pos++
		n++
	}
	return n, nil
}

// NextBatch implements BatchSource, decoding records directly into dst
// without the per-record allocation of Next.
func (tr *Reader) NextBatch(dst []Instruction) (int, error) {
	n := 0
	for n < len(dst) {
		if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
			if err == io.EOF {
				if n > 0 {
					return n, nil
				}
				return 0, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				return n, fmt.Errorf("champtrace: truncated record after %d instructions: %w", tr.n, err)
			}
			return n, err
		}
		if err := dst[n].Decode(tr.buf[:]); err != nil {
			return n, err
		}
		tr.n++
		n++
	}
	return n, nil
}

// ValuesSource streams a value slab of instructions — the contiguous
// representation produced by core.ConvertAllBatch — without the per-record
// boxing of SliceSource. Next returns pointers aliasing the slab, so the
// slab must stay unmodified while the source is consumed; Reset rewinds
// for re-simulation of the same converted trace.
type ValuesSource struct {
	instrs []Instruction
	pos    int
}

// NewValuesSource returns a ValuesSource over instrs. The slab is aliased,
// not copied.
func NewValuesSource(instrs []Instruction) *ValuesSource {
	return &ValuesSource{instrs: instrs}
}

// Next implements Source. The returned pointer aliases the slab and is
// valid until the slab itself is modified or released.
func (s *ValuesSource) Next() (*Instruction, error) {
	if s.pos >= len(s.instrs) {
		return nil, io.EOF
	}
	in := &s.instrs[s.pos]
	s.pos++
	return in, nil
}

// NextBatch implements BatchSource with copy semantics.
func (s *ValuesSource) NextBatch(dst []Instruction) (int, error) {
	if s.pos >= len(s.instrs) {
		return 0, io.EOF
	}
	n := copy(dst, s.instrs[s.pos:])
	if n == 0 { // len(dst) == 0
		return 0, nil
	}
	s.pos += n
	return n, nil
}

// Reset rewinds the source to the first instruction.
func (s *ValuesSource) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the slab.
func (s *ValuesSource) Len() int { return len(s.instrs) }

// AsBatchSource adapts src to the batch interface. Sources that already
// implement BatchSource (SliceSource, Reader, core.ConverterSource) are
// returned unchanged; others are wrapped with a per-record pull.
func AsBatchSource(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &sourceBatcher{src: src}
}

type sourceBatcher struct {
	src Source
	err error
}

func (b *sourceBatcher) NextBatch(dst []Instruction) (int, error) {
	if b.err != nil {
		return 0, b.err
	}
	n := 0
	for n < len(dst) {
		in, err := b.src.Next()
		if err != nil {
			b.err = err
			if err == io.EOF && n > 0 {
				return n, nil
			}
			return n, err
		}
		dst[n] = *in
		n++
	}
	return n, nil
}

// AsSource adapts a BatchSource to the record-at-a-time Source interface.
// Batch sources that already implement Source are returned unchanged.
// batchSize <= 0 selects DefaultBatchSize.
//
// The adapter double-buffers: an instruction returned by Next remains valid
// for at least batchSize further Next calls, which covers consumers with
// bounded lookback such as the simulator's one-instruction lookahead.
func AsSource(bs BatchSource, batchSize int) Source {
	if s, ok := bs.(Source); ok {
		return s
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &batchedSource{
		bs:   bs,
		cur:  MakeBatch(batchSize),
		prev: MakeBatch(batchSize),
	}
}

type batchedSource struct {
	bs        BatchSource
	cur, prev []Instruction
	pos, n    int
	err       error
}

func (s *batchedSource) Next() (*Instruction, error) {
	if s.pos >= s.n {
		if s.err != nil {
			return nil, s.err
		}
		s.cur, s.prev = s.prev, s.cur
		n, err := s.bs.NextBatch(s.cur)
		s.n, s.pos = n, 0
		if err != nil {
			s.err = err
		}
		if n == 0 {
			if s.err == nil {
				s.err = io.EOF
			}
			return nil, s.err
		}
	}
	in := &s.cur[s.pos]
	s.pos++
	return in, nil
}
