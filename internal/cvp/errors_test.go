package cvp

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	bad := &Instruction{Class: InstClass(99)}
	if err := w.Write(bad); err == nil {
		t.Fatal("Write accepted invalid class")
	}
	if w.Count() != 0 {
		t.Fatalf("Count = %d after rejected write", w.Count())
	}
}

func TestOpenReaderBadGzip(t *testing.T) {
	if _, _, err := OpenReader("trace.gz", strings.NewReader("not gzip data")); err == nil {
		t.Fatal("OpenReader accepted corrupt gzip")
	}
}

func TestReaderRejectsOversizedCounts(t *testing.T) {
	// Record with nSrc > MaxSrcRegs.
	b := make([]byte, 0, 16)
	b = append(b, make([]byte, 8)...) // pc
	b = append(b, byte(ClassALU))
	b = append(b, byte(MaxSrcRegs+1))
	r := NewReader(bytes.NewReader(b))
	if _, err := r.Next(); err == nil {
		t.Fatal("accepted oversized source count")
	}
	// Record with nDst > MaxDstRegs.
	b2 := make([]byte, 0, 16)
	b2 = append(b2, make([]byte, 8)...)
	b2 = append(b2, byte(ClassALU))
	b2 = append(b2, 0) // no srcs
	b2 = append(b2, byte(MaxDstRegs+1))
	r2 := NewReader(bytes.NewReader(b2))
	if _, err := r2.Next(); err == nil {
		t.Fatal("accepted oversized destination count")
	}
}

func TestReaderCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := w.Write(&Instruction{PC: uint64(i), Class: ClassALU}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d, want 5", r.Count())
	}
}
