#!/usr/bin/env bash
# bench_query.sh — columnar experiment-store query benchmark: block-pruned,
# column-projected queries vs brute-force full scans over a store populated
# by the full experiment matrix, emitting BENCH_10.json.
#
#   scripts/bench_query.sh [step] [repeats]
#
# Populates a fresh store with `rebase -exp all -step <step>`, then runs a
# set of selective queries twice each — the default pruned path and the
# -full-scan baseline that decodes every block. Rows must be byte-identical;
# the headline numbers are the bytes-read ratio (full / pruned, required
# >= 5x in aggregate) and the per-query latency pair.
set -euo pipefail

STEP="${1:-3}"
REPEATS="${2:-10}"
INSTRUCTIONS="${INSTRUCTIONS:-150000}"
WARMUP="${WARMUP:-50000}"
OUT="${OUT:-BENCH_10.json}"

cd "$(dirname "$0")/.."
BIN=/tmp/rebase-bench-query
go build -o "$BIN" ./cmd/rebase

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
EXPDIR="$WORK/exp"

echo "== populating the store: -exp all -step $STEP" >&2
"$BIN" -exp all -step "$STEP" -instructions "$INSTRUCTIONS" -warmup "$WARMUP" \
  -cache-dir "$WORK/cache" -exp-store-dir "$EXPDIR" -q >/dev/null

# Each query stays answerable at any -step: trace index 0 and the srv
# category are always subsampled in, and the ipc1 cells come from the
# table-3/ablation runs of -exp all.
QUERIES=(
  'trace=compute_int_0 variant=All_imps stat=mean'
  'category=srv variant=all,none metric=ipc group-by=rob stat=p50,p99'
  'config=ipc1 group-by=prefetcher stat=count,mean'
)

# timed <repeats> <cmd...>: prints the mean wall-clock per run in seconds.
timed() {
  local n="$1" start end
  shift
  start="$(date +%s%N)"
  for _ in $(seq 1 "$n"); do "$@" >/dev/null; done
  end="$(date +%s%N)"
  awk -v d="$((end - start))" -v n="$n" 'BEGIN { printf "%.6f", d / n / 1e9 }'
}

PER_QUERY=""
TOTAL_PRUNED_BYTES=0
TOTAL_FULL_BYTES=0
TOTAL_PRUNED_BLOCKS=0
for q in "${QUERIES[@]}"; do
  echo "== query: $q" >&2
  "$BIN" query -store-dir "$EXPDIR" -json "$q" >"$WORK/pruned.json"
  "$BIN" query -store-dir "$EXPDIR" -json -full-scan "$q" >"$WORK/full.json"

  # Rows must be identical; the scan blocks are where the two paths differ.
  STATS="$(python3 - "$WORK/pruned.json" "$WORK/full.json" <<'PY'
import json, sys
pruned = json.load(open(sys.argv[1]))
full = json.load(open(sys.argv[2]))
if pruned["rows"] != full["rows"]:
    sys.exit("pruned query rows differ from the full scan")
if not pruned["rows"]:
    sys.exit("query matched no cells; the store population step failed")
print(len(pruned["rows"]), pruned["scan"]["bytes_read"],
      full["scan"]["bytes_read"], full["scan"]["bytes_total"],
      pruned["scan"]["blocks_pruned"])
PY
)" || { echo "query '$q' failed verification" >&2; exit 1; }
  read -r ROWS PRUNED_BYTES FULL_BYTES TOTAL_BYTES PRUNED_BLOCKS <<<"$STATS"

  PRUNED_SECONDS="$(timed "$REPEATS" "$BIN" query -store-dir "$EXPDIR" -json "$q")"
  FULL_SECONDS="$(timed "$REPEATS" "$BIN" query -store-dir "$EXPDIR" -json -full-scan "$q")"

  TOTAL_PRUNED_BYTES=$((TOTAL_PRUNED_BYTES + PRUNED_BYTES))
  TOTAL_FULL_BYTES=$((TOTAL_FULL_BYTES + FULL_BYTES))
  TOTAL_PRUNED_BLOCKS=$((TOTAL_PRUNED_BLOCKS + PRUNED_BLOCKS))
  echo "   rows $ROWS; bytes $PRUNED_BYTES vs $FULL_BYTES; ${PRUNED_SECONDS}s vs ${FULL_SECONDS}s" >&2
  [ -n "$PER_QUERY" ] && PER_QUERY+=","
  PER_QUERY+="$(cat <<EOF

    {
      "query": "$q",
      "rows": $ROWS,
      "pruned_bytes_read": $PRUNED_BYTES,
      "full_scan_bytes_read": $FULL_BYTES,
      "store_bytes_total": $TOTAL_BYTES,
      "blocks_pruned": $PRUNED_BLOCKS,
      "pruned_seconds": $PRUNED_SECONDS,
      "full_scan_seconds": $FULL_SECONDS
    }
EOF
)"
done

RATIO="$(awk -v f="$TOTAL_FULL_BYTES" -v p="$TOTAL_PRUNED_BYTES" 'BEGIN { printf "%.1f", f / p }')"
if ! awk -v r="$RATIO" 'BEGIN { exit !(r >= 5) }'; then
  echo "bytes-read ratio ${RATIO}x below the 5x floor" >&2
  exit 1
fi
if [ "$TOTAL_PRUNED_BLOCKS" -eq 0 ]; then
  echo "no blocks were pruned across any query" >&2
  exit 1
fi

cat >"$OUT" <<EOF
{
  "description": "Experiment-store query engine: selective queries over the full -exp all -step $STEP matrix, pruned path (footer-stats block pruning + per-column materialization) vs the -full-scan baseline that decodes every block. Rows were verified identical between the two paths for every query; the headline is the aggregate bytes-read ratio.",
  "step": $STEP,
  "instructions": $INSTRUCTIONS,
  "warmup": $WARMUP,
  "query_repeats": $REPEATS,
  "total_pruned_bytes_read": $TOTAL_PRUNED_BYTES,
  "total_full_scan_bytes_read": $TOTAL_FULL_BYTES,
  "bytes_read_ratio": $RATIO,
  "rows_identical": true,
  "queries": [$PER_QUERY
  ]
}
EOF
echo "bytes-read ratio ${RATIO}x (pruned $TOTAL_PRUNED_BYTES vs full $TOTAL_FULL_BYTES); wrote $OUT" >&2
