package resultcache

import (
	"fmt"
	"sync"
	"time"
)

// writeBackQueue bounds the number of write-back operations in flight
// before Put starts blocking; the bound keeps a burst of large results
// from accumulating without limit between the fast tier and the slow
// ones.
const writeBackQueue = 64

// Tiered composes backends fastest-first into one Backend: Get reads
// through the tiers in order and promotes a hit into every faster tier;
// Put writes the fastest tier synchronously and the rest asynchronously
// through a single write-back flusher. Flush (and Close) waits until the
// flusher has drained, so a daemon shutting down can guarantee every
// memory-tier entry reached disk.
type Tiered struct {
	tiers []Backend

	metrics tierMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	queue   chan writeBack
	pending int
	closed  bool
}

type writeBack struct {
	key     Key
	payload []byte
	from    int // index of the tier the payload is already in; write tiers after it
}

// NewTiered composes tiers (fastest first) into a single backend. It
// panics on an empty tier list — a Tiered with nothing behind it is a
// construction bug, not a runtime condition.
func NewTiered(tiers ...Backend) *Tiered {
	if len(tiers) == 0 {
		panic("resultcache: NewTiered with no tiers")
	}
	t := &Tiered{
		tiers: tiers,
		queue: make(chan writeBack, writeBackQueue),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.flusher()
	return t
}

// flusher is the single goroutine applying queued write-backs to the
// slower tiers in submission order.
func (t *Tiered) flusher() {
	for wb := range t.queue {
		for i := wb.from + 1; i < len(t.tiers); i++ {
			// Put errors are counted by the failing tier's own stats; a slow
			// tier failing must not lose the write to the tiers between.
			t.tiers[i].Put(wb.key, wb.payload)
		}
		t.mu.Lock()
		t.pending--
		if t.pending == 0 {
			t.cond.Broadcast()
		}
		t.mu.Unlock()
	}
}

// enqueue schedules payload to be written to every tier after from.
// It blocks when the queue is full (bounded write-back) and degrades to
// a synchronous write once the Tiered is closed.
func (t *Tiered) enqueue(key Key, payload []byte, from int) {
	if from+1 >= len(t.tiers) {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		for i := from + 1; i < len(t.tiers); i++ {
			t.tiers[i].Put(key, payload)
		}
		return
	}
	t.pending++
	t.mu.Unlock()
	t.queue <- writeBack{key: key, payload: payload, from: from}
}

// Name implements Backend.
func (t *Tiered) Name() string { return "tiered" }

// Get implements Backend: read-through with promotion. A hit in tier i is
// synchronously copied into tiers 0..i-1 so the next identical query is
// served by the fastest tier.
func (t *Tiered) Get(key Key) ([]byte, error) {
	payload, _, err := t.GetWithSource(key)
	return payload, err
}

// GetWithSource is Get plus the name of the tier that served the hit —
// the daemon reports it so clients (and the conformance oracle) can see
// which tier answered.
func (t *Tiered) GetWithSource(key Key) ([]byte, string, error) {
	start := time.Now()
	for i, tier := range t.tiers {
		payload, err := tier.Get(key)
		if err != nil {
			continue
		}
		// Promote into every faster tier, fastest last, so a concurrent
		// reader finds the slower tiers populated first.
		for j := i - 1; j >= 0; j-- {
			t.tiers[j].Put(key, payload)
		}
		t.metrics.observeGet(start, true, len(payload))
		return payload, tier.Name(), nil
	}
	t.metrics.observeGet(start, false, 0)
	return nil, "", fmt.Errorf("%w: %s", ErrNotFound, key)
}

// Put implements Backend: the fastest tier is written synchronously (so
// an immediate re-read hits), the slower tiers via the write-back
// flusher. The synchronous tier's error is returned; write-back failures
// surface only in the failing tier's stats.
func (t *Tiered) Put(key Key, payload []byte) error {
	start := time.Now()
	err := t.tiers[0].Put(key, payload)
	t.metrics.observePut(start, err, len(payload))
	t.enqueue(key, payload, 0)
	return err
}

// Delete implements Backend: the key is removed from every tier; the
// first error wins but all tiers are attempted.
func (t *Tiered) Delete(key Key) error {
	t.metrics.observeDelete()
	var first error
	for _, tier := range t.tiers {
		if err := tier.Delete(key); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stat implements Backend with the composition's own counters; Tiers
// exposes the per-tier breakdown.
func (t *Tiered) Stat() BackendStats { return t.metrics.snapshot(t.Name()) }

// Tiers returns the per-tier counter snapshots, fastest first.
func (t *Tiered) Tiers() []BackendStats {
	out := make([]BackendStats, len(t.tiers))
	for i, tier := range t.tiers {
		out[i] = tier.Stat()
	}
	return out
}

// Flush blocks until every queued write-back has been applied to the
// slower tiers. After Flush returns (with no concurrent Puts), the slow
// tiers hold everything the fast tier does.
func (t *Tiered) Flush() {
	t.mu.Lock()
	for t.pending > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Close implements Backend: it drains the write-back queue, stops the
// flusher, and closes every tier. Puts arriving after Close write all
// tiers synchronously.
func (t *Tiered) Close() error {
	t.Flush()
	t.mu.Lock()
	alreadyClosed := t.closed
	t.closed = true
	t.mu.Unlock()
	if !alreadyClosed {
		close(t.queue)
	}
	var first error
	for _, tier := range t.tiers {
		if err := tier.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// EntryPath delegates to the first tier that knows file paths (the disk
// tier), so Cache.EntryPath keeps working over a Tiered backend.
func (t *Tiered) EntryPath(key Key) string {
	for _, tier := range t.tiers {
		if p, ok := tier.(entryPather); ok {
			return p.EntryPath(key)
		}
	}
	return ""
}

// Dir delegates to the first directory-rooted tier.
func (t *Tiered) Dir() string {
	for _, tier := range t.tiers {
		if p, ok := tier.(dirBackend); ok {
			return p.Dir()
		}
	}
	return ""
}

// DiskBytes delegates to the first tier with a persistent footprint.
func (t *Tiered) DiskBytes() int64 {
	for _, tier := range t.tiers {
		if p, ok := tier.(sizedBackend); ok {
			return p.DiskBytes()
		}
	}
	return 0
}
