// Package report composes experiment output. It is the single place the
// table/figure orchestration lives: the batch CLI (cmd/rebase) and the
// sweep daemon (internal/server) both call Run with the same SweepConfig
// and Spec, so a daemon-served result is byte-identical to a batch run of
// the same request — the byte-identity guarantee the tiered cache and the
// conformance tier-transparency oracle rest on.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tracerebase/internal/experiments"
	"tracerebase/internal/synth"
)

// Spec names what to render: which experiments and which suite stride.
type Spec struct {
	// Exp is the comma-separated experiment list: table1, fig1..fig5,
	// table2, table3, ablation, char, or all.
	Exp string
	// Step uses every step-th trace of each suite (1 = all).
	Step int
}

// Output directs where the composition goes.
type Output struct {
	// Text receives the rendered output (tables/figures, or the JSON
	// document when JSON is set). nil discards it.
	Text io.Writer
	// JSON emits one JSON document instead of rendered text.
	JSON bool
	// Log receives progress notes (suite sizes); nil means quiet. Per-cell
	// progress goes through SweepConfig.Progress as before.
	Log io.Writer
}

// Telemetry carries the per-category sweep statistics Run collected, for
// the caller's trailer lines and bench records.
type Telemetry struct {
	// Skip holds per-category cycle-skipping fractions when the run
	// included the figure sweep.
	Skip []SkipStat
	// Sample holds per-category sampled-interval statistics when the run
	// used sampled mode.
	Sample []SampleStat
}

// Run renders the experiments named by spec into out, using cfg's engine
// configuration (cache, slab store, parallelism, sampling) unchanged.
// Every byte written to out.Text is a pure function of (cfg, spec), which
// is what makes cached replays byte-identical.
func Run(cfg experiments.SweepConfig, spec Spec, out Output) (Telemetry, error) {
	var tel Telemetry
	text := out.Text
	if text == nil {
		text = io.Discard
	}
	jsonReport := experiments.NewJSONReport(cfg)

	wants := map[string]bool{}
	for _, e := range strings.Split(spec.Exp, ",") {
		wants[strings.TrimSpace(e)] = true
	}
	all := wants["all"]
	needSweep := all || wants["fig1"] || wants["fig2"] || wants["fig3"] || wants["fig4"] || wants["fig5"]

	if (all || wants["table1"]) && !out.JSON {
		experiments.RenderTable1(text)
		fmt.Fprintln(text)
	}

	if needSweep {
		profiles := Subsample(synth.PublicSuite(), spec.Step)
		if out.Log != nil {
			fmt.Fprintf(out.Log, "sweep: %d public traces x %d variants, %d instructions each\n",
				len(profiles), len(experiments.Variants()), cfg.Instructions)
		}
		results, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			return tel, fmt.Errorf("sweep: %w", err)
		}
		tel.Skip = SkipFractions(results)
		if cfg.SamplePeriod > 0 {
			tel.Sample = SampleSummary(results)
		}
		if out.JSON {
			jsonReport.FillFigures(results)
		}
		if (all || wants["fig1"]) && !out.JSON {
			experiments.RenderFig1(text, experiments.Fig1(results))
			fmt.Fprintln(text)
		}
		if (all || wants["fig2"]) && !out.JSON {
			experiments.RenderFig2(text, experiments.Fig2(results))
			fmt.Fprintln(text)
		}
		if (all || wants["fig3"]) && !out.JSON {
			experiments.RenderFig3(text, experiments.Fig3(results))
			fmt.Fprintln(text)
		}
		if (all || wants["fig4"]) && !out.JSON {
			experiments.RenderFig4(text, experiments.Fig4(results))
			fmt.Fprintln(text)
		}
		if (all || wants["fig5"]) && !out.JSON {
			experiments.RenderFig5(text, experiments.Fig5(results))
			fmt.Fprintln(text)
		}
	}

	if all || wants["table2"] {
		suite := SubsampleIPC1(synth.IPC1Suite(), spec.Step)
		if out.Log != nil {
			fmt.Fprintf(out.Log, "table 2: %d IPC-1 traces\n", len(suite))
		}
		res, err := experiments.Table2(cfg, suite)
		if err != nil {
			return tel, fmt.Errorf("table2: %w", err)
		}
		if out.JSON {
			jsonReport.Table2 = &res
		} else {
			experiments.RenderTable2(text, res)
			fmt.Fprintln(text)
		}
	}

	if wants["ablation"] {
		res, err := experiments.FrontEndAblation(cfg, nil)
		if err != nil {
			return tel, fmt.Errorf("ablation: %w", err)
		}
		if out.JSON {
			jsonReport.Ablation = res
		} else {
			experiments.RenderFrontEndAblation(text, res)
			fmt.Fprintln(text)
		}
	}

	if all || wants["table3"] {
		suite := SubsampleIPC1(synth.IPC1Suite(), spec.Step)
		if out.Log != nil {
			fmt.Fprintf(out.Log, "table 3: %d IPC-1 traces x 2 trace sets x %d prefetchers\n",
				len(suite), len(experiments.Table3Prefetchers))
		}
		res, err := experiments.Table3(cfg, suite)
		if err != nil {
			return tel, fmt.Errorf("table3: %w", err)
		}
		if out.JSON {
			jsonReport.Table3 = &res
		} else {
			experiments.RenderTable3(text, res)
			fmt.Fprintln(text)
		}
	}

	if wants["char"] {
		profiles := Subsample(synth.PublicSuite(), spec.Step)
		rows, err := experiments.Characterize(profiles, cfg)
		if err != nil {
			return tel, fmt.Errorf("characterize: %w", err)
		}
		if out.JSON {
			jsonReport.Char = rows
		} else {
			experiments.RenderCharacterization(text, rows)
			fmt.Fprintln(text)
		}
	}

	if out.JSON {
		if err := jsonReport.Write(text); err != nil {
			return tel, fmt.Errorf("json: %w", err)
		}
	}
	return tel, nil
}

// Subsample keeps every step-th profile of a suite (step <= 1 keeps all).
func Subsample(ps []synth.Profile, step int) []synth.Profile {
	if step <= 1 {
		return ps
	}
	var out []synth.Profile
	for i := 0; i < len(ps); i += step {
		out = append(out, ps[i])
	}
	return out
}

// SubsampleIPC1 keeps every step-th IPC-1 trace (step <= 1 keeps all).
func SubsampleIPC1(ts []synth.IPC1Trace, step int) []synth.IPC1Trace {
	if step <= 1 {
		return ts
	}
	var out []synth.IPC1Trace
	for i := 0; i < len(ts); i += step {
		out = append(out, ts[i])
	}
	return out
}

// SampleStat summarizes sampled-mode statistics for one trace category
// across every (trace, variant) cell of the sweep: the average interval-mean
// IPC, the average 95% confidence half-width around it, and how the
// instruction budget split between detailed, warmed, and skipped phases.
type SampleStat struct {
	Category     string  `json:"category"`
	Runs         int     `json:"runs"`
	Intervals    uint64  `json:"intervals"`
	MeanIPC      float64 `json:"mean_ipc"`
	MeanCI95     float64 `json:"mean_ci95"`
	Instructions uint64  `json:"detailed_instructions"`
	Warmed       uint64  `json:"warmed_instructions"`
	Skipped      uint64  `json:"skipped_instructions"`
}

// SampleSummary aggregates per-run sampling statistics by trace category,
// ordered by category name.
func SampleSummary(results []experiments.TraceResult) []SampleStat {
	byCat := map[string]*SampleStat{}
	for _, tr := range results {
		cat := string(tr.Profile.Category)
		agg := byCat[cat]
		if agg == nil {
			agg = &SampleStat{Category: cat}
			byCat[cat] = agg
		}
		for _, res := range tr.Results {
			agg.Runs++
			agg.Intervals += res.Sim.SampleIntervals
			agg.MeanIPC += res.Sim.SampleIPCMean
			agg.MeanCI95 += res.Sim.SampleCI95
			agg.Instructions += res.Sim.Instructions
			agg.Warmed += res.Sim.WarmedInstructions
			agg.Skipped += res.Sim.SkippedInstructions
		}
	}
	cats := make([]string, 0, len(byCat))
	for cat := range byCat {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	out := make([]SampleStat, 0, len(cats))
	for _, cat := range cats {
		s := *byCat[cat]
		if s.Runs > 0 {
			s.MeanIPC /= float64(s.Runs)
			s.MeanCI95 /= float64(s.Runs)
		}
		out = append(out, s)
	}
	return out
}

// SkipStat reports event-horizon cycle skipping for one trace category:
// what fraction of the measured cycles the simulator jumped over instead of
// ticking through. All zeros under -no-skip.
type SkipStat struct {
	Category      string  `json:"category"`
	Cycles        uint64  `json:"cycles"`
	SkippedCycles uint64  `json:"skipped_cycles"`
	Skips         uint64  `json:"skips"`
	Fraction      float64 `json:"fraction"`
}

// SkipFractions aggregates cycle-skipping counters per trace category over
// every (trace, variant) cell of a sweep, ordered by category name.
func SkipFractions(results []experiments.TraceResult) []SkipStat {
	byCat := map[string]*SkipStat{}
	for _, tr := range results {
		cat := string(tr.Profile.Category)
		agg := byCat[cat]
		if agg == nil {
			agg = &SkipStat{Category: cat}
			byCat[cat] = agg
		}
		for _, res := range tr.Results {
			agg.Cycles += res.Sim.Cycles
			agg.SkippedCycles += res.Sim.SkippedCycles
			agg.Skips += res.Sim.CycleSkips
		}
	}
	cats := make([]string, 0, len(byCat))
	for cat := range byCat {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	out := make([]SkipStat, 0, len(cats))
	for _, cat := range cats {
		s := *byCat[cat]
		if s.Cycles > 0 {
			s.Fraction = float64(s.SkippedCycles) / float64(s.Cycles)
		}
		out = append(out, s)
	}
	return out
}
