// Package core implements the cvp2champsim trace converter — the primary
// contribution of "Rebasing Microarchitectural Research with Industry
// Traces" (IISWC 2023).
//
// The converter translates CVP-1 (Aarch64, Qualcomm) instruction records
// into the strict 64-byte ChampSim (x86-convention) trace format. With the
// zero-value Options it reproduces the behaviour of the *original*
// cvp2champsim converter shipped in the ChampSim repository, including its
// documented defects. Each of the paper's six improvements (Table 1) can be
// enabled independently, and the three sets used in the evaluation
// (Memory_imps, Branch_imps, All_imps) are provided as constructors.
package core

import (
	"fmt"
	"strings"
)

// Options selects which of the paper's trace-conversion improvements are
// applied. The zero value reproduces the original cvp2champsim converter.
type Options struct {
	// MemRegs (imp. mem-regs, §3.1.1) keeps all destination registers of
	// memory instructions — and only them. The original converter forces
	// every non-branch to have exactly one destination, padding with X0
	// and discarding the second and third destinations of load pairs,
	// vector loads, and base-update loads.
	MemRegs bool
	// BaseUpdate (imp. base-update, §3.1.2) infers the addressing mode of
	// memory instructions and splits base-update (pre/post-indexing
	// increment) accesses into an ALU micro-op and a memory micro-op, so
	// the updated base register becomes available at ALU latency rather
	// than memory latency.
	BaseUpdate bool
	// MemFootprint (imp. mem-footprint, §3.1.3) computes the total
	// transfer size, adds the second cacheline address for accesses that
	// cross a 64 B boundary, and aligns DC ZVA 64-byte stores.
	MemFootprint bool
	// CallStack (imp. call-stack, §3.2.1) fixes return identification:
	// only unconditional branches that read X30 and write no register are
	// returns; branches that read AND write X30 are (indirect) calls.
	CallStack bool
	// BranchRegs (imp. branch-regs, §3.2.2) preserves the original CVP-1
	// source registers of branches so that load→branch dependencies
	// survive conversion. Requires the patched ChampSim branch-deduction
	// rules (champtrace.RulesPatched) to classify correctly.
	BranchRegs bool
	// FlagReg (imp. flag-reg, §3.2.3) adds the flag register as the
	// destination of ALU and FP instructions that have no destination
	// register, restoring the dependency of flag-reading conditional
	// branches on their producers.
	FlagReg bool
}

// OptionsNone returns the original-converter behaviour (No_imp).
func OptionsNone() Options { return Options{} }

// OptionsMemory returns the three memory improvements (Memory_imps).
func OptionsMemory() Options {
	return Options{MemRegs: true, BaseUpdate: true, MemFootprint: true}
}

// OptionsBranch returns the three branch improvements (Branch_imps).
func OptionsBranch() Options {
	return Options{CallStack: true, BranchRegs: true, FlagReg: true}
}

// OptionsAll returns all six improvements (All_imps).
func OptionsAll() Options {
	return Options{
		MemRegs: true, BaseUpdate: true, MemFootprint: true,
		CallStack: true, BranchRegs: true, FlagReg: true,
	}
}

// Enabled returns the artifact-style names of the enabled improvements.
func (o Options) Enabled() []string {
	var names []string
	for _, imp := range Improvements {
		if imp.Get(o) {
			names = append(names, imp.Name)
		}
	}
	return names
}

func (o Options) String() string {
	names := o.Enabled()
	if len(names) == 0 {
		return "No_imp"
	}
	if o == OptionsAll() {
		return "All_imps"
	}
	if o == OptionsMemory() {
		return "Memory_imps"
	}
	if o == OptionsBranch() {
		return "Branch_imps"
	}
	return strings.Join(names, "+")
}

// Bits packs the six improvement flags into the low six bits of a byte,
// in Improvements (Table 1) order: mem-regs, base-update, mem-footprint,
// call-stack, branch-regs, flag-reg. The encoding is the canonical compact
// identity of an Options value — the conformance fuzzer explores option
// space through it and the result cache keys on it.
func (o Options) Bits() uint8 {
	var b uint8
	for i, imp := range Improvements {
		if imp.Get(o) {
			b |= 1 << i
		}
	}
	return b
}

// OptionsFromBits is the inverse of Bits.
func OptionsFromBits(b uint8) Options {
	var o Options
	for i, imp := range Improvements {
		if b&(1<<i) != 0 {
			imp.Set(&o)
		}
	}
	return o
}

// Improvement describes one of the paper's Table 1 rows.
type Improvement struct {
	// Name is the artifact-style improvement name.
	Name string
	// Kind is "Memory" or "Branch", Table 1's instruction-type column.
	Kind string
	// Summary is Table 1's "modifications to the converter" column.
	Summary string
	// Set enables the improvement on an Options value.
	Set func(*Options)
	// Get reports whether the improvement is enabled.
	Get func(Options) bool
}

// Improvements lists the six proposed improvements in Table 1 order.
var Improvements = []Improvement{
	{
		Name: "mem-regs", Kind: "Memory",
		Summary: "Convey all dependencies between the registers written by memory instructions and the instructions that read from them.",
		Set:     func(o *Options) { o.MemRegs = true },
		Get:     func(o Options) bool { return o.MemRegs },
	},
	{
		Name: "base-update", Kind: "Memory",
		Summary: "Make base registers available after the latency of an ALU instruction rather than after the latency of the memory access.",
		Set:     func(o *Options) { o.BaseUpdate = true },
		Get:     func(o Options) bool { return o.BaseUpdate },
	},
	{
		Name: "mem-footprint", Kind: "Memory",
		Summary: "Access all cachelines accessed by the instruction.",
		Set:     func(o *Options) { o.MemFootprint = true },
		Get:     func(o Options) bool { return o.MemFootprint },
	},
	{
		Name: "call-stack", Kind: "Branch",
		Summary: "Fix the identification of returns.",
		Set:     func(o *Options) { o.CallStack = true },
		Get:     func(o Options) bool { return o.CallStack },
	},
	{
		Name: "branch-regs", Kind: "Branch",
		Summary: "Convey all dependencies between the registers read by branch instructions and the instructions that generate them.",
		Set:     func(o *Options) { o.BranchRegs = true },
		Get:     func(o Options) bool { return o.BranchRegs },
	},
	{
		Name: "flag-reg", Kind: "Branch",
		Summary: "Add the flag register as the destination of ALU and FP instructions that do not have any destination register so that branches reading from flags depend on them.",
		Set:     func(o *Options) { o.FlagReg = true },
		Get:     func(o Options) bool { return o.FlagReg },
	},
}

// ParseImprovement maps an artifact improvement name (as accepted by the
// cvp2champsim -i flag) to an Options value. Both the artifact spellings
// (imp_mem-regs, All_imps, ...) and bare names (mem-regs, all, ...) are
// accepted.
func ParseImprovement(name string) (Options, error) {
	switch strings.ToLower(name) {
	case "no_imp", "none", "original", "":
		return OptionsNone(), nil
	case "all_imps", "all":
		return OptionsAll(), nil
	case "memory_imps", "memory":
		return OptionsMemory(), nil
	case "branch_imps", "branch":
		return OptionsBranch(), nil
	}
	bare := strings.TrimPrefix(strings.ToLower(name), "imp_")
	// The artifact spells the flag-reg improvement "imp_flag-regs".
	if bare == "flag-regs" {
		bare = "flag-reg"
	}
	for _, imp := range Improvements {
		if imp.Name == bare {
			var o Options
			imp.Set(&o)
			return o, nil
		}
	}
	return Options{}, fmt.Errorf("core: unknown improvement %q", name)
}
