//go:build !unix

package tracestore

import (
	"io"
	"os"
)

// mapFile on platforms without the unix mmap surface falls back to reading
// the file into an anonymous buffer. The store still works — slabs just
// cost one heap copy per process instead of shared page-cache residency.
func mapFile(f *os.File, size int64) ([]byte, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func unmapFile(data []byte) error {
	return nil
}
