package expstore

import (
	"os"
	"sort"
	"strings"
)

// Compaction merges undersized blocks — the per-partition tail blocks a
// sweep's final Flush writes, or the small batches incremental appends
// produce — into full-sized ones, so footer statistics stay tight and
// per-block query overhead (header + footer reads) stays bounded as the
// store ages. Only blocks with identical partition signatures (the same
// category and config dictionary sets) merge, preserving the block purity
// the partitioned writer established; signatures rarely sit adjacent on
// disk, so grouping works over the whole undersized population rather than
// adjacent runs. The cell multiset is preserved exactly: inputs are
// concatenated, resorted by identity columns, and rewritten; nothing is
// deduplicated or dropped.
//
// A compacted block takes its first input's sequence number and a bumped
// generation, and records the sequence range its cells came from, so a
// crash between publishing the output and removing the inputs leaves only
// duplicate cells that the range overlap flags as dup-suspect — query
// dedup absorbs them.

// maybeCompactLocked kicks background compaction (single-flight) once
// enough undersized blocks accumulate. mu is held.
func (s *Store) maybeCompactLocked() {
	if s.compacting || s.closed {
		return
	}
	cands := s.undersizedLocked()
	if len(cands) < s.cfg.CompactTrigger || len(cands) < 2 {
		return
	}
	s.compacting = true
	go s.runCompaction(cands)
}

// Compact synchronously merges every eligible set of undersized blocks,
// regardless of the background trigger. Tests and the CLI use it; the
// background path runs the same passes.
func (s *Store) Compact() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	for s.compacting {
		s.compactCv.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	cands := s.undersizedLocked()
	if len(cands) < 2 {
		s.mu.Unlock()
		return nil
	}
	s.compacting = true
	s.mu.Unlock()
	s.runCompaction(cands)
	return nil
}

// undersizedLocked lists the serveable blocks below the flush threshold,
// in (seq, gen) order. mu is held.
func (s *Store) undersizedLocked() []*blockRef {
	var cands []*blockRef
	for _, b := range s.blocks {
		if b.foreign || b.h.cells >= s.cfg.BlockCells {
			continue
		}
		cands = append(cands, b)
	}
	return cands
}

// compactionGroups buckets candidates by partition signature — the exact
// category and config dictionary sets from their footers — and splits each
// bucket greedily into merge groups of at least two blocks, each bounded
// by MaxBlockCells. Mapping candidate footers happens here, off the store
// lock.
func (s *Store) compactionGroups(cands []*blockRef) [][]*blockRef {
	bySig := make(map[string][]*blockRef)
	var sigs []string
	for _, ref := range cands {
		r, err := s.acquire(ref)
		if err != nil {
			continue // corrupt candidates were dropped by acquire
		}
		sig := strings.Join(r.metas[colIndex["category"]].dict, ",") +
			"|" + strings.Join(r.metas[colIndex["config"]].dict, ",")
		if _, ok := bySig[sig]; !ok {
			sigs = append(sigs, sig)
		}
		bySig[sig] = append(bySig[sig], r)
	}
	sort.Strings(sigs)
	var groups [][]*blockRef
	for _, sig := range sigs {
		var group []*blockRef
		cells := 0
		emit := func() {
			if len(group) >= 2 {
				groups = append(groups, group)
			}
			group, cells = nil, 0
		}
		for _, b := range bySig[sig] {
			if cells+b.h.cells > s.cfg.MaxBlockCells {
				emit()
			}
			group = append(group, b)
			cells += b.h.cells
		}
		emit()
	}
	return groups
}

// runCompaction merges each group into one block. Inputs are retired from
// the active list but stay mapped until Close, so concurrent query
// snapshots remain valid; their files are removed once the output is
// published.
func (s *Store) runCompaction(cands []*blockRef) {
	defer func() {
		s.mu.Lock()
		s.compacting = false
		s.compactCv.Broadcast()
		s.mu.Unlock()
	}()
	for _, group := range s.compactionGroups(cands) {
		var cells []Cell
		maxGen := 0
		bm := blockMeta{runID: s.runID, hasSrc: true}
		first := true
		ok := true
		for _, ref := range group {
			cs, err := DecodeBlock(ref.data)
			if err != nil {
				s.mu.Lock()
				s.dropCorrupt(ref, err)
				s.removeRefLocked(ref)
				s.mu.Unlock()
				ok = false
				break
			}
			cells = append(cells, cs...)
			if ref.gen > maxGen {
				maxGen = ref.gen
			}
			lo, hi := ref.srcRange()
			if first || lo < bm.srcMin {
				bm.srcMin = lo
			}
			if first || hi > bm.srcMax {
				bm.srcMax = hi
			}
			if first || ref.bm.baseSeq < bm.baseSeq {
				bm.baseSeq = ref.bm.baseSeq
			}
			first = false
		}
		if !ok {
			continue
		}
		sortCells(cells)
		// The output's dedup lineage is exact, not inherited: crash-leftover
		// inputs can duplicate each other, so check the merged batch itself.
		keys := make(map[Key]struct{}, len(cells))
		for i := range cells {
			if _, dup := keys[cells[i].Key]; dup {
				bm.mayDup = true
				break
			}
			keys[cells[i].Key] = struct{}{}
		}
		s.mu.Lock()
		out, err := s.writeBlockLocked(cells, bm, group[0].seq, maxGen+1, false)
		if err != nil {
			s.stats.WriteErrors++
			s.cfg.Warn("expstore: compaction write failed: %v", err)
			s.mu.Unlock()
			continue
		}
		s.stats.Compactions++
		s.stats.BlocksCompacted += uint64(len(group))
		for _, ref := range group {
			s.removeRefLocked(ref)
			s.retired = append(s.retired, ref)
		}
		s.insertRefLocked(out)
		s.mu.Unlock()
		for _, ref := range group {
			os.Remove(ref.path)
		}
	}
}
