package experiments

import (
	"encoding/json"
	"io"
)

// JSONReport bundles any subset of experiment results for machine
// consumption (plot scripts, regression tracking). Nil sections are
// omitted.
type JSONReport struct {
	// Settings echoes the sweep configuration the results came from.
	Settings struct {
		Instructions int    `json:"instructions"`
		Warmup       uint64 `json:"warmup"`
	} `json:"settings"`
	Fig1     []Fig1Row                `json:"fig1,omitempty"`
	Fig2     []Fig2Series             `json:"fig2,omitempty"`
	Fig3     []Fig3Row                `json:"fig3,omitempty"`
	Fig4     []Fig4Row                `json:"fig4,omitempty"`
	Fig5     []Fig5Row                `json:"fig5,omitempty"`
	Table2   *Table2Result            `json:"table2,omitempty"`
	Table3   *Table3Result            `json:"table3,omitempty"`
	Ablation []FrontEndAblationResult `json:"ablation,omitempty"`
	Char     []CharRow                `json:"characterization,omitempty"`
	// Multi carries co-scheduled multi-core sweep results (-coschedule).
	Multi []MultiTraceResult `json:"multi,omitempty"`
}

// NewJSONReport seeds a report with the sweep settings.
func NewJSONReport(cfg SweepConfig) *JSONReport {
	r := &JSONReport{}
	r.Settings.Instructions = cfg.Instructions
	r.Settings.Warmup = cfg.Warmup
	return r
}

// FillFigures derives all five figures from one sweep result.
func (r *JSONReport) FillFigures(results []TraceResult) {
	r.Fig1 = Fig1(results)
	r.Fig2 = Fig2(results)
	r.Fig3 = Fig3(results)
	r.Fig4 = Fig4(results)
	r.Fig5 = Fig5(results)
}

// Write emits the report as indented JSON.
func (r *JSONReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
