package sim

import (
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim/cpu"
	"tracerebase/internal/synth"
)

// TestSteadyStateZeroAllocs pins the zero-allocation contract of the
// simulator core: after one warmup interval has grown every buffer to its
// high-water mark, a full simulated interval — pipeline, four-level cache
// hierarchy, TLBs, direction/target predictors, and data prefetchers — must
// not allocate at all. Future PRs that reintroduce per-instruction
// allocation fail here rather than silently regressing throughput.
func TestSteadyStateZeroAllocs(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 7)
	instrs, err := p.Generate(30000)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	src := champtrace.NewSliceSource(recs)

	for _, cfg := range []Config{
		ConfigDevelop(champtrace.RulesPatched),
		ConfigIPC1("next-line", champtrace.RulesPatched),
	} {
		pipe, err := cpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Warmup run: grows the MSHR lists, prefetch buffers, and the
		// pending queue to their high-water marks.
		if _, err := pipe.Run(src, 0, 0); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			src.Reset()
			if _, err := pipe.Run(src, 0, 0); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state interval allocated %.0f times, want 0", cfg.Name, allocs)
		}
	}
}

// TestMultiCoreSteadyStateZeroAllocs extends the contract to the N-core
// lockstep engine: four cores over a shared-srrip LLC and a bandwidth-
// limited DRAM port, with each core owning its own arena — a warmed
// MultiPipeline interval must not allocate at all.
func TestMultiCoreSteadyStateZeroAllocs(t *testing.T) {
	const cores = 4
	cfg := ConfigDevelop(champtrace.RulesPatched)
	cfg.Cores = cores
	cfg.Hierarchy.LLC.Policy = "shared-srrip"
	cfg.MemBandwidth = 4
	srcs := make([]champtrace.Source, cores)
	slices := make([]*champtrace.SliceSource, cores)
	for i := 0; i < cores; i++ {
		p := synth.PublicProfile(synth.ComputeInt, i)
		instrs, err := p.Generate(15000)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
		if err != nil {
			t.Fatal(err)
		}
		s := champtrace.NewSliceSource(recs)
		slices[i] = s
		srcs[i] = s
	}
	m, err := cpu.NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(srcs, 0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		for _, s := range slices {
			s.Reset()
		}
		if _, err := m.Run(srcs, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("multi-core steady-state interval allocated %.0f times, want 0", allocs)
	}
}

// TestIdleHeavyZeroAllocs is TestSteadyStateZeroAllocs on the idle-heavy
// stress profile: long event-horizon jumps must not change the contract.
// The skipper's state is two scalar fields on the pipeline, so a violation
// here means a heap structure crept into the skip path.
func TestIdleHeavyZeroAllocs(t *testing.T) {
	p := synth.StressIdle()
	instrs, err := p.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	src := champtrace.NewSliceSource(recs)
	pipe, err := cpu.New(ConfigDevelop(champtrace.RulesPatched))
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipe.Run(src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedCycles == 0 {
		t.Fatal("idle-heavy run skipped no cycles; the test no longer covers the skip path")
	}
	allocs := testing.AllocsPerRun(3, func() {
		src.Reset()
		if _, err := pipe.Run(src, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("idle-heavy steady-state interval allocated %.0f times, want 0", allocs)
	}
}
