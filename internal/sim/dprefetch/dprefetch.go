// Package dprefetch implements the data prefetchers attached to the L1D and
// L2 caches. The paper's configuration (§4) models an ip-stride prefetcher
// at the L1D and a next-line prefetcher at the L2, mimicking Icelake.
package dprefetch

import (
	"fmt"

	"tracerebase/internal/sim/mem"
)

// New constructs a data prefetcher by name: "none", "next-line",
// "ip-stride", or "stream". "none" returns nil, which callers attach as no
// prefetcher.
func New(name string) (mem.Prefetcher, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "next-line":
		return NewNextLine(1), nil
	case "ip-stride":
		return NewIPStride(256, 4), nil
	case "stream":
		return NewStream(64, 4), nil
	}
	return nil, fmt.Errorf("dprefetch: unknown prefetcher %q", name)
}

// NextLine prefetches the next Degree sequential lines on every demand
// miss.
type NextLine struct {
	degree int
}

// NewNextLine returns a next-line prefetcher with the given degree.
func NewNextLine(degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{degree: degree}
}

// Name implements mem.Prefetcher.
func (p *NextLine) Name() string { return "next-line" }

// OnAccess implements mem.Prefetcher.
func (p *NextLine) OnAccess(addr, ip uint64, hit bool, buf []uint64) []uint64 {
	if hit {
		return buf
	}
	for i := 0; i < p.degree; i++ {
		buf = append(buf, addr+uint64(i+1)*mem.LineSize)
	}
	return buf
}

// ipEntry tracks the last address and detected stride for one load PC.
type ipEntry struct {
	tag      uint64
	lastAddr uint64
	stride   int64
	conf     uint8
	valid    bool
}

// IPStride is a per-instruction-pointer stride prefetcher: it detects a
// constant stride between successive addresses of the same load PC and,
// once confident, prefetches Degree strides ahead.
type IPStride struct {
	table  []ipEntry
	mask   uint64
	degree int
}

// NewIPStride builds an ip-stride prefetcher with the given table size
// (power of two) and degree.
func NewIPStride(entries, degree int) *IPStride {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("dprefetch: ip-stride entries must be a power of two")
	}
	if degree < 1 {
		degree = 1
	}
	return &IPStride{table: make([]ipEntry, entries), mask: uint64(entries - 1), degree: degree}
}

// Name implements mem.Prefetcher.
func (p *IPStride) Name() string { return "ip-stride" }

// OnAccess implements mem.Prefetcher. It trains on every demand access
// (hit or miss) and issues prefetches once the stride is confirmed twice.
func (p *IPStride) OnAccess(addr, ip uint64, hit bool, buf []uint64) []uint64 {
	if ip == 0 {
		return buf
	}
	e := &p.table[(ip>>2)&p.mask]
	tag := ip >> 2
	if !e.valid || e.tag != tag {
		*e = ipEntry{tag: tag, lastAddr: addr, valid: true}
		return buf
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == 0 {
		return buf
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	e.lastAddr = addr
	if e.conf < 2 {
		return buf
	}
	next := int64(addr)
	for i := 0; i < p.degree; i++ {
		next += e.stride
		if next < 0 {
			break
		}
		buf = append(buf, uint64(next))
	}
	return buf
}

// streamEntry tracks one detected sequential stream.
type streamEntry struct {
	lastLine uint64
	// dir is +1 (ascending), -1 (descending), or 0 (undetected).
	dir   int
	conf  uint8
	valid bool
}

// Stream is a classic stream buffer-style prefetcher: it detects
// monotonically advancing cacheline streams (either direction) and, once
// confident, prefetches Degree lines ahead of the demand stream. Unlike
// IPStride it is PC-agnostic, so interleaved actors walking one array
// still train it.
type Stream struct {
	table  []streamEntry
	mask   uint64
	degree int
}

// NewStream builds a stream prefetcher with the given table size (power of
// two) and degree.
func NewStream(entries, degree int) *Stream {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("dprefetch: stream entries must be a power of two")
	}
	if degree < 1 {
		degree = 1
	}
	return &Stream{table: make([]streamEntry, entries), mask: uint64(entries - 1), degree: degree}
}

// Name implements mem.Prefetcher.
func (p *Stream) Name() string { return "stream" }

// OnAccess implements mem.Prefetcher: streams are tracked per 4 KB region.
func (p *Stream) OnAccess(addr, ip uint64, hit bool, buf []uint64) []uint64 {
	line := addr / mem.LineSize
	region := addr >> 12
	e := &p.table[region&p.mask]
	if !e.valid || absDelta(line, e.lastLine) > 16 {
		*e = streamEntry{lastLine: line, valid: true}
		return buf
	}
	dir := 0
	switch {
	case line > e.lastLine:
		dir = 1
	case line < e.lastLine:
		dir = -1
	default:
		return buf
	}
	if dir == e.dir {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.dir = dir
		e.conf = 1
	}
	e.lastLine = line
	if e.conf < 2 {
		return buf
	}
	for i := 1; i <= p.degree; i++ {
		next := int64(line) + int64(dir*i)
		if next < 0 {
			break
		}
		buf = append(buf, uint64(next)*mem.LineSize)
	}
	return buf
}

func absDelta(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
