package resultcache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Remote wire protocol. A Remote client and an HTTPHandler server speak
// it symmetrically; the payload travels inside the same self-validating
// TRRC record frame the disk tier uses, so transport corruption and
// wrong-key responses are caught end to end by CRC and the embedded key:
//
//	GET    <base>/<hexkey>  -> 200 + record | 404
//	PUT    <base>/<hexkey>  <- record       -> 204
//	DELETE <base>/<hexkey>  -> 204
//
// <base> is the mount point (the rebase daemon serves it at /cache).

// DefaultRemoteTimeout bounds one request attempt when RemoteConfig
// leaves Timeout unset.
const DefaultRemoteTimeout = 10 * time.Second

// DefaultRemoteRetries is the number of re-attempts after a failed
// request (network error or 5xx) when RemoteConfig leaves Retries unset.
const DefaultRemoteRetries = 2

// maxRemoteRecord bounds a record accepted over the wire (1 GiB), so a
// confused peer cannot balloon memory.
const maxRemoteRecord = 1 << 30

// RemoteConfig parameterizes NewRemote.
type RemoteConfig struct {
	// BaseURL is the peer's cache mount, e.g. "http://host:8344/cache".
	BaseURL string
	// Timeout bounds each request attempt (0 = DefaultRemoteTimeout).
	Timeout time.Duration
	// Retries is the number of re-attempts after a retryable failure
	// (< 0 = none, 0 = DefaultRemoteRetries).
	Retries int
	// Client overrides the HTTP client (nil = a fresh one with Timeout).
	Client *http.Client
}

// Remote is the HTTP backend: a client for another process's cache tier.
// A daemon pointed at a peer daemon's /cache mount turns the peer's whole
// store (memory tier included) into this process's slowest tier, so two
// daemons share warm results over the network.
type Remote struct {
	base    string
	client  *http.Client
	retries int

	metrics tierMetrics
}

// NewRemote returns a remote backend speaking the wire protocol against
// cfg.BaseURL.
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	if base == "" {
		return nil, fmt.Errorf("resultcache: empty remote base URL")
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("resultcache: remote base URL %q must be http(s)", cfg.BaseURL)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = DefaultRemoteRetries
	}
	if retries < 0 {
		retries = 0
	}
	return &Remote{base: base, client: client, retries: retries}, nil
}

// Name implements Backend.
func (r *Remote) Name() string { return "remote" }

// Stat implements Backend.
func (r *Remote) Stat() BackendStats { return r.metrics.snapshot(r.Name()) }

// BaseURL returns the peer mount this backend talks to.
func (r *Remote) BaseURL() string { return r.base }

func (r *Remote) url(key Key) string { return r.base + "/" + key.String() }

// do runs one request with retry on network errors and 5xx responses.
// 2xx and 404 resolve immediately; 404 maps to (nil, true, nil).
func (r *Remote) do(method string, key Key, body []byte) (respBody []byte, notFound bool, err error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, reqErr := http.NewRequest(method, r.url(key), reader)
		if reqErr != nil {
			return nil, false, reqErr
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, doErr := r.client.Do(req)
		if doErr == nil {
			switch {
			case resp.StatusCode == http.StatusNotFound:
				resp.Body.Close()
				return nil, true, nil
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				data, readErr := io.ReadAll(io.LimitReader(resp.Body, maxRemoteRecord+1))
				resp.Body.Close()
				if readErr == nil && len(data) > maxRemoteRecord {
					readErr = fmt.Errorf("resultcache: remote record exceeds %d bytes", maxRemoteRecord)
				}
				if readErr == nil {
					return data, false, nil
				}
				err = readErr
			default:
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				resp.Body.Close()
				err = fmt.Errorf("resultcache: remote %s %s: HTTP %d", method, key, resp.StatusCode)
				if resp.StatusCode < 500 {
					return nil, false, err // 4xx other than 404: not retryable
				}
			}
		} else {
			err = doErr
		}
		if attempt >= r.retries {
			return nil, false, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Get implements Backend. The response record is validated (CRC + the
// embedded key) before the payload is surfaced; a damaged response counts
// as corrupt and reads as a miss.
func (r *Remote) Get(key Key) ([]byte, error) {
	start := time.Now()
	body, notFound, err := r.do(http.MethodGet, key, nil)
	if err != nil {
		r.metrics.observeGet(start, false, 0)
		return nil, fmt.Errorf("%w: %s: %v", ErrNotFound, key, err)
	}
	if notFound {
		r.metrics.observeGet(start, false, 0)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	payload, err := decodeRecord(key, body)
	if err != nil {
		r.metrics.observeCorrupt()
		r.metrics.observeGet(start, false, 0)
		return nil, fmt.Errorf("%w: %s: %v", ErrNotFound, key, err)
	}
	r.metrics.observeGet(start, true, len(body))
	return payload, nil
}

// Put implements Backend.
func (r *Remote) Put(key Key, payload []byte) error {
	start := time.Now()
	rec := encodeRecord(key, payload)
	_, notFound, err := r.do(http.MethodPut, key, rec)
	if err == nil && notFound {
		err = fmt.Errorf("resultcache: remote rejected PUT %s", key)
	}
	r.metrics.observePut(start, err, len(rec))
	return err
}

// Delete implements Backend.
func (r *Remote) Delete(key Key) error {
	r.metrics.observeDelete()
	_, _, err := r.do(http.MethodDelete, key, nil)
	return err
}

// Close implements Backend.
func (r *Remote) Close() error {
	r.client.CloseIdleConnections()
	return nil
}

// NewHTTPHandler serves b over the Remote wire protocol — the server side
// of the tier. Mount it (e.g. at /cache/ with http.StripPrefix) and point
// a peer's RemoteConfig.BaseURL at the mount; the peer's misses then read
// through this process's tiers, and its write-backs warm them.
func NewHTTPHandler(b Backend) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		key, err := ParseKey(strings.Trim(req.URL.Path, "/"))
		if err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		switch req.Method {
		case http.MethodGet:
			payload, err := b.Get(key)
			if err != nil {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(encodeRecord(key, payload))
		case http.MethodPut:
			body, err := io.ReadAll(io.LimitReader(req.Body, maxRemoteRecord+1))
			if err != nil || len(body) > maxRemoteRecord {
				http.Error(w, "bad body", http.StatusBadRequest)
				return
			}
			payload, err := decodeRecord(key, body)
			if err != nil {
				http.Error(w, "bad record", http.StatusBadRequest)
				return
			}
			if err := b.Put(key, payload); err != nil {
				http.Error(w, "store failed", http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			if err := b.Delete(key); err != nil {
				http.Error(w, "delete failed", http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}
