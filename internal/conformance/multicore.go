package conformance

// Multi-core conformance: oracles proving the N-core lockstep engine
// degenerates exactly to the golden single-core behavior, stays
// scheduling-independent, treats core IDs as labels, and keeps cycle
// skipping invisible — plus the golden multi-core pins (per-core and
// aggregate counters for fixed co-schedules on the shared-LLC model).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// simulateMulti generates and converts every workload under opts and runs
// the co-schedule in lockstep on cfg. Empty-named slots stay idle.
func simulateMulti(workloads []synth.Profile, opts core.Options, cfg sim.Config, instructions int, warmup uint64) ([]sim.Stats, error) {
	srcs := make([]champtrace.Source, len(workloads))
	for i := range workloads {
		if workloads[i].Name == "" {
			continue
		}
		instrs, err := workloads[i].GenerateBatch(instructions)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", workloads[i].Name, err)
		}
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
		defer cs.Close()
		srcs[i] = cs
	}
	stats, err := sim.RunMulti(srcs, cfg, warmup, 0)
	if err != nil {
		return nil, err
	}
	return append([]sim.Stats(nil), stats...), nil
}

// multiCfg is the develop model extended with the shared-level mechanics
// this PR introduces: n lockstep cores, per-core-aware SRRIP on the shared
// LLC, and a 4-cycle LLC↔DRAM port occupancy.
func multiCfg(opts core.Options, n int) sim.Config {
	cfg := develCfg(opts)
	cfg.Cores = n
	cfg.Hierarchy.LLC.Policy = "shared-srrip"
	cfg.MemBandwidth = 4
	return cfg
}

// goldenMultiScenarios lists the co-schedules the corpus pins: one 2-core
// and one 4-core scenario, both on the shared-srrip + bandwidth model so
// the pins cover every new shared-level mechanism. srvcrypto spans the
// server and crypto categories; thrash pairs a reuse-friendly compute_int
// workload with streaming neighbors.
func goldenMultiScenarios() []struct {
	Spec  string
	Cores int
} {
	return []struct {
		Spec  string
		Cores int
	}{
		{"srvcrypto", 2},
		{"thrash", 4},
	}
}

// GoldenMultiPin pins one variant's simulation of a co-schedule: the key
// counters of every core (assignment order) and of the aggregate.
type GoldenMultiPin struct {
	PerCore   []GoldenSim `json:"per_core"`
	Aggregate GoldenSim   `json:"aggregate"`
}

// GoldenMulti is one pinned co-schedule of the corpus. The traces are
// regenerated from the named workloads at verification time (synth
// determinism is itself a pinned corpus invariant), so no extra binaries
// are checked in.
type GoldenMulti struct {
	Scenario     string                    `json:"scenario"`
	Cores        int                       `json:"cores"`
	LLCPolicy    string                    `json:"llc_policy"`
	MemBandwidth uint64                    `json:"mem_bandwidth"`
	Workloads    []string                  `json:"workloads"`
	Sim          map[string]GoldenMultiPin `json:"sim"` // keyed by variant name
}

// buildGoldenMulti computes one co-schedule's pins on the No_imp and
// All_imps variants, mirroring the single-core Sim pins.
func buildGoldenMulti(spec string, cores int) (GoldenMulti, error) {
	gm := GoldenMulti{
		Scenario:     spec,
		Cores:        cores,
		LLCPolicy:    "shared-srrip",
		MemBandwidth: 4,
		Sim:          make(map[string]GoldenMultiPin),
	}
	workloads, err := synth.CoSchedule(spec, cores)
	if err != nil {
		return gm, err
	}
	for _, p := range workloads {
		gm.Workloads = append(gm.Workloads, p.Name)
	}
	for _, v := range experiments.Variants() {
		if v.Name != experiments.VariantNone && v.Name != experiments.VariantAll {
			continue
		}
		stats, err := simulateMulti(workloads, v.Opts, multiCfg(v.Opts, cores), goldenInstructions, goldenWarmup)
		if err != nil {
			return gm, fmt.Errorf("%s/%s: %w", spec, v.Name, err)
		}
		pin := GoldenMultiPin{Aggregate: goldenSimFrom(sim.AggregateStats(stats))}
		for _, st := range stats {
			pin.PerCore = append(pin.PerCore, goldenSimFrom(st))
		}
		gm.Sim[v.Name] = pin
	}
	return gm, nil
}

// verifyGoldenMulti re-runs one pinned co-schedule and holds every core's
// counters and the aggregate to the manifest, pointing at the first
// diverging counter.
func verifyGoldenMulti(gm GoldenMulti) error {
	workloads, err := synth.CoSchedule(gm.Scenario, gm.Cores)
	if err != nil {
		return err
	}
	for i, p := range workloads {
		if i >= len(gm.Workloads) || p.Name != gm.Workloads[i] {
			return fmt.Errorf("core %d: scenario now assigns %s, manifest pinned %v", i, p.Name, gm.Workloads)
		}
	}
	for _, v := range experiments.Variants() {
		want, ok := gm.Sim[v.Name]
		if !ok {
			if v.Name == experiments.VariantNone || v.Name == experiments.VariantAll {
				return fmt.Errorf("manifest lacks multi-core pin for variant %s", v.Name)
			}
			continue
		}
		cfg := develCfg(v.Opts)
		cfg.Cores = gm.Cores
		cfg.Hierarchy.LLC.Policy = gm.LLCPolicy
		cfg.MemBandwidth = gm.MemBandwidth
		stats, err := simulateMulti(workloads, v.Opts, cfg, goldenInstructions, goldenWarmup)
		if err != nil {
			return fmt.Errorf("%s: %w", v.Name, err)
		}
		if len(want.PerCore) != len(stats) {
			return fmt.Errorf("variant %s: %d cores simulated, manifest pins %d", v.Name, len(stats), len(want.PerCore))
		}
		for i := range stats {
			if diffs := want.PerCore[i].diff(goldenSimFrom(stats[i])); len(diffs) > 0 {
				return fmt.Errorf("variant %s core %d (%s): counters diverge from golden:\n  %s",
					v.Name, i, gm.Workloads[i], joinLines(diffs))
			}
		}
		if diffs := want.Aggregate.diff(goldenSimFrom(sim.AggregateStats(stats))); len(diffs) > 0 {
			return fmt.Errorf("variant %s aggregate: counters diverge from golden:\n  %s", v.Name, joinLines(diffs))
		}
	}
	return nil
}

// CheckIdleNeighborIdentity is the degeneracy oracle: an N-core system in
// which every core but one is idle must report statistics byte-identical to
// the single-core simulator on the same trace — idle cores never step, the
// default shared levels are transparent, and the per-core LLC accounting
// must reproduce the solo numbers exactly. The active workload is placed on
// the first and on the last core slot to also rule out index-dependent
// behavior.
func CheckIdleNeighborIdentity(p synth.Profile, cores, instructions int, warmup uint64) error {
	instrs, err := p.GenerateBatch(instructions)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	solo, err := simulate(instrs, opts, develCfg(opts), warmup)
	if err != nil {
		return fmt.Errorf("single-core: %w", err)
	}
	for _, slot := range []int{0, cores - 1} {
		cfg := develCfg(opts)
		cfg.Cores = cores
		srcs := make([]champtrace.Source, cores)
		cs := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
		srcs[slot] = cs
		multi, err := sim.RunMulti(srcs, cfg, warmup, 0)
		cs.Close()
		if err != nil {
			return fmt.Errorf("%d-core slot %d: %w", cores, slot, err)
		}
		if multi[slot] != solo {
			return fmt.Errorf("%s on core %d of %d with idle neighbors diverges from single-core:\n solo  %+v\n multi %+v",
				p.Name, slot, cores, solo, multi[slot])
		}
		for i := range multi {
			if i != slot && multi[i] != (sim.Stats{}) {
				return fmt.Errorf("idle core %d reports nonzero statistics: %+v", i, multi[i])
			}
		}
	}
	return nil
}

// CheckMultiParallelism runs the same co-scheduled sweep single-threaded
// and with parallelism workers and requires byte-identical results — the
// multi-core sweep engine must introduce no scheduling-dependent behavior.
func CheckMultiParallelism(spec string, cores, instructions int, warmup uint64, parallelism int) error {
	if parallelism < 2 {
		parallelism = 4
	}
	workloads, err := synth.CoSchedule(spec, cores)
	if err != nil {
		return err
	}
	run := func(par int) ([]byte, error) {
		res, err := experiments.RunMultiSweep(spec, workloads, experiments.SweepConfig{
			Instructions: instructions,
			Warmup:       warmup,
			Parallelism:  par,
			Cores:        cores,
			LLCPolicy:    "shared-srrip",
			MemBandwidth: 4,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
	serial, err := run(1)
	if err != nil {
		return fmt.Errorf("-parallel 1: %w", err)
	}
	concurrent, err := run(parallelism)
	if err != nil {
		return fmt.Errorf("-parallel %d: %w", parallelism, err)
	}
	if !bytes.Equal(serial, concurrent) {
		return fmt.Errorf("co-scheduled sweep %s differs between -parallel 1 and -parallel %d (%d vs %d JSON bytes)",
			spec, parallelism, len(serial), len(concurrent))
	}
	return nil
}

// CheckCorePermutation is the symmetry oracle: core IDs are labels, so
// permuting the workload→core assignment must permute the per-core
// statistics the same way and leave the aggregate bit-identical.
func CheckCorePermutation(spec string, cores, instructions int, warmup uint64) error {
	workloads, err := synth.CoSchedule(spec, cores)
	if err != nil {
		return err
	}
	// Rotate the assignment by one slot: rotated core i runs the workload
	// the original assignment placed on core (i+1) mod n.
	rotated := make([]synth.Profile, cores)
	for i := range rotated {
		rotated[i] = workloads[(i+1)%cores]
	}
	cfg := experiments.SweepConfig{
		Instructions: instructions,
		Warmup:       warmup,
		Parallelism:  2,
		Cores:        cores,
		LLCPolicy:    "shared-srrip",
		MemBandwidth: 4,
	}
	orig, err := experiments.RunMultiSweep(spec, workloads, cfg)
	if err != nil {
		return fmt.Errorf("original assignment: %w", err)
	}
	rot, err := experiments.RunMultiSweep(spec+"-rotated", rotated, cfg)
	if err != nil {
		return fmt.Errorf("rotated assignment: %w", err)
	}
	for _, v := range experiments.Variants() {
		a, okA := orig.Results[v.Name]
		b, okB := rot.Results[v.Name]
		if !okA || !okB {
			return fmt.Errorf("variant %s missing from a sweep result", v.Name)
		}
		for i := 0; i < cores; i++ {
			if b.Cores[i] != a.Cores[(i+1)%cores] {
				return fmt.Errorf("%s/%s: rotated core %d (%s) diverges from original core %d:\n original %+v\n rotated  %+v",
					spec, v.Name, i, rotated[i].Name, (i+1)%cores, a.Cores[(i+1)%cores], b.Cores[i])
			}
		}
		if !reflect.DeepEqual(a.Aggregate, b.Aggregate) {
			return fmt.Errorf("%s/%s: aggregate changed under a core permutation:\n original %+v\n rotated  %+v",
				spec, v.Name, a.Aggregate, b.Aggregate)
		}
	}
	return nil
}

// CheckMultiSkipTransparency generalizes the cycle-skipping oracle to N
// cores: jumping all clocks to the minimum registered wake across cores
// must be invisible in every per-core counter. It also asserts the check
// has teeth (the skipping run jumped, the -no-skip run did not).
func CheckMultiSkipTransparency(spec string, cores, instructions int, warmup uint64) error {
	workloads, err := synth.CoSchedule(spec, cores)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	run := func(noSkip bool) ([]sim.Stats, error) {
		cfg := multiCfg(opts, cores)
		cfg.NoCycleSkip = noSkip
		return simulateMulti(workloads, opts, cfg, instructions, warmup)
	}
	got, err := run(false)
	if err != nil {
		return fmt.Errorf("skipping run: %w", err)
	}
	slow, err := run(true)
	if err != nil {
		return fmt.Errorf("-no-skip run: %w", err)
	}
	var jumped uint64
	for i := range got {
		if slow[i].SkippedCycles != 0 || slow[i].CycleSkips != 0 {
			return fmt.Errorf("core %d: -no-skip run reports %d skipped cycles in %d jumps",
				i, slow[i].SkippedCycles, slow[i].CycleSkips)
		}
		jumped += got[i].SkippedCycles
		g := got[i]
		g.SkippedCycles, g.CycleSkips = 0, 0
		if g != slow[i] {
			return fmt.Errorf("core %d (%s): skipping changed reported stats:\n skip    %+v\n no-skip %+v",
				i, workloads[i].Name, g, slow[i])
		}
	}
	if jumped == 0 {
		return fmt.Errorf("%d-core %s never skipped a cycle — the transparency check is vacuous", cores, spec)
	}
	return nil
}
