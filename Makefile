GO ?= go

.PHONY: build vet test test-race bench-smoke bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the (trace, variant) sweep work queue
# and the pooled streaming converter it drives.
test-race:
	$(GO) test -race ./internal/experiments ./internal/core

# A fast allocation check of the hot convert+simulate path: the streaming
# source must stay well below the materializing baseline.
bench-smoke:
	$(GO) test -run xxx -bench 'ConvertSimulate|SweepStreaming' -benchtime 3x .

bench:
	$(GO) test -bench . -benchmem .
