package champtrace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// Truncating the stream mid-record must surface io.ErrUnexpectedEOF from
// both the scalar and the batch decoder, with the already-decoded prefix
// intact; cutting at a record boundary is a clean EOF.
func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(&Instruction{IP: uint64(0x1000 + 4*i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for cut := 1; cut < RecordSize; cut++ {
		r := NewReader(bytes.NewReader(full[:2*RecordSize+cut]))
		got, err := ReadAll(r)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut at %d: decoded %d records before the error, want 2", cut, len(got))
		}
	}

	r := NewReader(bytes.NewReader(full[:2*RecordSize]))
	got, err := ReadAll(r)
	if err != nil || len(got) != 2 {
		t.Fatalf("clean prefix: got %d records, err %v", len(got), err)
	}
}

func TestNextBatchTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 2; i++ {
		if err := w.Write(&Instruction{IP: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:2*RecordSize-7]

	r := NewReader(bytes.NewReader(raw))
	dst := MakeBatch(8)
	n, err := r.NextBatch(dst)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if n != 1 || dst[0].IP != 1 {
		t.Fatalf("got %d records before the error (dst[0].IP=%d), want the 1 complete record", n, dst[0].IP)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	var in Instruction
	if err := in.Decode(make([]byte, RecordSize-1)); err == nil {
		t.Fatal("Decode accepted a short buffer")
	}
	if err := in.Decode(nil); err == nil {
		t.Fatal("Decode accepted nil")
	}
}

func TestOpenReaderBadGzip(t *testing.T) {
	if _, _, err := OpenReader("trace.champsim.gz", strings.NewReader("not gzip")); err == nil {
		t.Fatal("OpenReader accepted corrupt gzip")
	}
}

// Non-canonical bool bytes (2..255) decode to true and re-encode as 1:
// decode→encode→decode must be a fixed point even for such input.
func TestDecodeNormalizesBoolBytes(t *testing.T) {
	raw := make([]byte, RecordSize)
	raw[8] = 0xff // isBranch
	raw[9] = 0x7f // taken
	var first Instruction
	if err := first.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !first.IsBranch || !first.Taken {
		t.Fatal("nonzero bool bytes decoded to false")
	}
	re := first.Encode(nil)
	var second Instruction
	if err := second.Decode(re); err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("decode→encode→decode not a fixed point: %+v vs %+v", first, second)
	}
	if !bytes.Equal(re, second.Encode(nil)) {
		t.Fatal("re-encoding the fixed point changed the bytes")
	}
}
