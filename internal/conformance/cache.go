package conformance

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"tracerebase/internal/experiments"
	"tracerebase/internal/synth"
)

// CheckCacheTransparency is the differential oracle for the result cache:
// the cache must be invisible in the output. It runs the same sweep four
// ways — uncached, cold cache, warm cache (a fresh Cache instance over the
// same directory, modelling a second process), and warm cache with one
// entry deliberately corrupted on disk — and requires byte-identical
// rendered output from all of them. It also asserts the cache behaved as
// claimed: the warm run served everything from disk without computing, and
// the corrupted entry was detected, discarded, and recomputed rather than
// served.
func CheckCacheTransparency(profiles []synth.Profile, instructions int, warmup uint64) error {
	dir, err := os.MkdirTemp("", "tracerebase-cachecheck-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	baseCfg := experiments.SweepConfig{
		Instructions: instructions,
		Warmup:       warmup,
		Parallelism:  2,
		Variants:     nil, // all ten: every (options, rules) pairing is keyed
	}
	render := func(res []experiments.TraceResult) []byte {
		// Figs. 1 and 5 together consume IPC, converter stats, and
		// return-MPKI stats — a wide slice of the Result payload.
		var buf bytes.Buffer
		experiments.RenderFig1(&buf, experiments.Fig1(res))
		experiments.RenderFig5(&buf, experiments.Fig5(res))
		return buf.Bytes()
	}
	sweep := func(cache *experiments.ResultCache) ([]byte, []experiments.TraceResult, error) {
		cfg := baseCfg
		cfg.Cache = cache
		res, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			return nil, nil, err
		}
		return render(res), res, nil
	}

	want, wantRes, err := sweep(nil)
	if err != nil {
		return fmt.Errorf("uncached sweep: %w", err)
	}

	cold, err := experiments.OpenResultCache(dir, 0)
	if err != nil {
		return err
	}
	coldOut, coldRes, err := sweep(cold)
	if err != nil {
		return fmt.Errorf("cold cached sweep: %w", err)
	}
	if !bytes.Equal(coldOut, want) {
		return fmt.Errorf("cold cached sweep output differs from uncached output")
	}
	if !reflect.DeepEqual(coldRes, wantRes) {
		return fmt.Errorf("cold cached sweep results differ structurally from uncached results")
	}
	jobs := uint64(len(profiles) * len(experiments.Variants()))
	if s := cold.Stats(); s.Computes != jobs || s.Hits != 0 {
		return fmt.Errorf("cold cache computed %d cells with %d hits, want %d computes and 0 hits", s.Computes, s.Hits, jobs)
	}

	// A fresh instance over the same directory stands in for a second
	// process: everything must come from disk, nothing recomputed.
	warm, err := experiments.OpenResultCache(dir, 0)
	if err != nil {
		return err
	}
	warmOut, warmRes, err := sweep(warm)
	if err != nil {
		return fmt.Errorf("warm cached sweep: %w", err)
	}
	if !bytes.Equal(warmOut, want) {
		return fmt.Errorf("warm cached sweep output differs from fresh output")
	}
	if !reflect.DeepEqual(warmRes, wantRes) {
		return fmt.Errorf("warm cached sweep results differ structurally from fresh results")
	}
	if s := warm.Stats(); s.Computes != 0 || s.DiskHits != jobs {
		return fmt.Errorf("warm cache: %d computes, %d disk hits, want 0 and %d", s.Computes, s.DiskHits, jobs)
	}

	// Corrupt one stored entry mid-payload. The next (fresh-instance) run
	// must detect it by checksum, discard it, recompute the cell, and
	// still produce identical output.
	victim, err := pickEntry(dir)
	if err != nil {
		return err
	}
	buf, err := os.ReadFile(victim)
	if err != nil {
		return err
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(victim, buf, 0o644); err != nil {
		return err
	}

	hurt, err := experiments.OpenResultCache(dir, 0)
	if err != nil {
		return err
	}
	hurtOut, _, err := sweep(hurt)
	if err != nil {
		return fmt.Errorf("sweep over corrupted cache: %w", err)
	}
	if !bytes.Equal(hurtOut, want) {
		return fmt.Errorf("corrupted cache entry leaked into the output")
	}
	if s := hurt.Stats(); s.Corrupt != 1 || s.Computes != 1 || s.DiskHits != jobs-1 {
		return fmt.Errorf("corrupted-entry run: %d corrupt, %d computes, %d disk hits, want 1, 1, %d",
			s.Corrupt, s.Computes, s.DiskHits, jobs-1)
	}
	return nil
}

// pickEntry returns the path of one cache entry file under dir.
func pickEntry(dir string) (string, error) {
	var found string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if found == "" && !d.IsDir() && strings.HasSuffix(d.Name(), ".rc") {
			found = path
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if found == "" {
		return "", fmt.Errorf("no cache entries found under %s", dir)
	}
	return found, nil
}
