package experiments

import (
	"fmt"
	"io"

	"tracerebase/internal/synth"
)

// CharRow characterizes one public trace under the improved converter — the
// public-suite counterpart of Table 2, useful for inspecting what the
// synthetic suite looks like in absolute terms.
type CharRow struct {
	Name     string
	Category string
	IPC      float64
	// Branch MPKIs: overall / direction / target.
	Overall, Direction, Target float64
	// Hierarchy MPKIs.
	L1I, L1D, L2, LLC float64
	// BaseUpdatePct is the percentage of instructions that are
	// base-update loads; CondPct the conditional-branch percentage.
	BaseUpdatePct, CondPct float64
}

// Characterize runs the public suite (or a subset) under All_imps on the
// develop model and returns per-trace characterization rows.
func Characterize(profiles []synth.Profile, cfg SweepConfig) ([]CharRow, error) {
	cfg.Variants = figureVariants(VariantAll)
	if profiles == nil {
		profiles = synth.PublicSuite()
	}
	results, err := RunSweep(profiles, cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]CharRow, 0, len(results))
	for _, tr := range results {
		r := tr.Results[VariantAll]
		st := r.Sim
		row := CharRow{
			Name:      tr.Profile.Name,
			Category:  string(tr.Profile.Category),
			IPC:       st.IPC(),
			Overall:   st.BranchMPKI(),
			Direction: st.DirMPKI(),
			Target:    st.TargetMPKI(),
			L1I:       st.L1I.MPKI(st.Instructions),
			L1D:       st.L1D.MPKI(st.Instructions),
			L2:        st.L2.MPKI(st.Instructions),
			LLC:       st.LLC.MPKI(st.Instructions),
		}
		if r.Conv.In > 0 {
			row.BaseUpdatePct = 100 * float64(r.Conv.BaseUpdateLoads) / float64(r.Conv.In)
			row.CondPct = 100 * float64(r.Conv.CondBranches) / float64(r.Conv.In)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCharacterization prints the characterization table.
func RenderCharacterization(w io.Writer, rows []CharRow) {
	fmt.Fprintln(w, "CVP-1 public suite characterization (improved converter, develop model)")
	fmt.Fprintf(w, "  %-16s %-12s %5s | %7s %9s %6s | %6s %6s %6s %6s | %7s %6s\n",
		"trace", "category", "IPC", "overall", "direction", "target", "L1I", "L1D", "L2", "LLC", "baseupd%", "cond%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %-12s %5.2f | %7.2f %9.2f %6.2f | %6.1f %6.1f %6.1f %6.1f | %7.2f %6.2f\n",
			r.Name, r.Category, r.IPC, r.Overall, r.Direction, r.Target,
			r.L1I, r.L1D, r.L2, r.LLC, r.BaseUpdatePct, r.CondPct)
	}
}
