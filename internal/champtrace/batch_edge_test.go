package champtrace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// TestNextBatchZeroLength: a zero-length destination is a no-op on every
// batch source — (0, nil) mid-stream, nothing consumed — and the stream
// afterwards still delivers the remaining records.
func TestNextBatchZeroLength(t *testing.T) {
	want := randomRecords(40, 11)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	slab := make([]Instruction, len(want))
	for i, in := range want {
		slab[i] = *in
	}

	sources := map[string]BatchSource{
		"SliceSource":   NewSliceSource(want),
		"ValuesSource":  NewValuesSource(slab),
		"Reader":        NewReader(bytes.NewReader(buf.Bytes())),
		"sourceBatcher": AsBatchSource(recordSourceOnly{NewSliceSource(want)}),
	}
	for name, bs := range sources {
		dst := MakeBatch(7)
		n, err := bs.NextBatch(dst)
		if err != nil || n != 7 {
			t.Fatalf("%s: first batch = (%d, %v), want (7, nil)", name, n, err)
		}
		for _, empty := range [][]Instruction{nil, {}} {
			if n, err := bs.NextBatch(empty); n != 0 || err != nil {
				t.Fatalf("%s: zero-length NextBatch = (%d, %v), want (0, nil)", name, n, err)
			}
		}
		got := 7
		for {
			n, err := bs.NextBatch(dst)
			for i := 0; i < n; i++ {
				if got >= len(want) || !reflect.DeepEqual(dst[i], *want[got]) {
					t.Fatalf("%s: record %d lost or changed after zero-length pulls", name, got)
				}
				got++
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if n == 0 {
				t.Fatalf("%s: empty batch with nil error on a live stream", name)
			}
		}
		if got != len(want) {
			t.Fatalf("%s: zero-length pulls consumed records: got %d of %d", name, got, len(want))
		}
	}
}

// TestAsSourceBatchSizeOne: the degenerate adapter window still delivers
// the exact stream, and each pointer survives the one further Next call the
// contract promises.
func TestAsSourceBatchSizeOne(t *testing.T) {
	const n = 120
	want := randomRecords(n, 12)
	src := AsSource(recordBatchOnly{NewSliceSource(want)}, 1)
	var prev *Instruction
	for i := 0; ; i++ {
		in, err := src.Next()
		if err == io.EOF {
			if i != n {
				t.Fatalf("EOF after %d records, want %d", i, n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*in, *want[i]) {
			t.Fatalf("record %d differs with batchSize 1", i)
		}
		if prev != nil && !reflect.DeepEqual(*prev, *want[i-1]) {
			t.Fatalf("pointer for record %d clobbered within its 1-call window", i-1)
		}
		prev = in
	}
}
