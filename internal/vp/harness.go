package vp

import (
	"fmt"
	"io"

	"tracerebase/internal/cvp"
)

// Result is a CVP-1-style evaluation of one predictor over one trace.
type Result struct {
	Predictor string
	// Eligible counts value-producing instructions (at least one
	// destination register with a recorded value).
	Eligible uint64
	// Predicted counts confident predictions; Correct those that matched.
	Predicted, Correct uint64
	// LoadEligible/LoadPredicted/LoadCorrect break out loads, the class
	// CVP-1 weighted most heavily (predicting a load breaks the memory
	// latency chain).
	LoadEligible, LoadPredicted, LoadCorrect uint64
}

// Coverage returns confident predictions over eligible instructions.
func (r Result) Coverage() float64 {
	if r.Eligible == 0 {
		return 0
	}
	return float64(r.Predicted) / float64(r.Eligible)
}

// Accuracy returns correct predictions over confident predictions.
func (r Result) Accuracy() float64 {
	if r.Predicted == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Predicted)
}

// Score is a CVP-style single figure of merit: correct predictions reward,
// confident mispredictions cost a squash-like penalty.
func (r Result) Score() float64 {
	if r.Eligible == 0 {
		return 0
	}
	wrong := float64(r.Predicted - r.Correct)
	return (float64(r.Correct) - 5*wrong) / float64(r.Eligible)
}

// Evaluate drives a predictor over a CVP-1 trace: for every eligible
// instruction it asks for a prediction of the FIRST destination value, then
// trains with the truth, maintaining branch/path context like the CVP-1
// infrastructure did.
func Evaluate(src cvp.Source, p Predictor) (Result, error) {
	res := Result{Predictor: p.Name()}
	var ctx Context
	for {
		in, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		// Every recorded destination value is a prediction target; the
		// CVP-1 traces carry them all (base-update loads, load pairs).
		// Each destination slot gets its own predictor entry by salting
		// the PC with the slot index.
		isLoad := in.IsLoad()
		for slot, actual := range in.DstValues {
			res.Eligible++
			if isLoad {
				res.LoadEligible++
			}
			// Mix the slot through a full-width constant so it reaches
			// the low index bits every predictor masks on.
			slotPC := in.PC ^ uint64(slot)*0x9e3779b97f4a7c15
			pred, confident := p.Predict(slotPC, ctx)
			if confident {
				res.Predicted++
				if isLoad {
					res.LoadPredicted++
				}
				if pred == actual {
					res.Correct++
					if isLoad {
						res.LoadCorrect++
					}
				}
			}
			p.Update(slotPC, ctx, actual)
		}
		// Maintain context exactly once per instruction.
		if in.Class == cvp.ClassCondBranch {
			bit := uint64(0)
			if in.Taken {
				bit = 1
			}
			ctx.BranchHist = ctx.BranchHist<<1 | bit
		}
		if in.Class.IsBranch() && in.Taken {
			ctx.PathHist = (ctx.PathHist << 3) ^ (in.Target >> 2) ^ (ctx.PathHist >> 61)
		}
	}
}

// EvaluateAll runs every registered predictor over the same in-memory
// trace, returning results in Names() order.
func EvaluateAll(instrs []*cvp.Instruction) ([]Result, error) {
	var out []Result
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			return nil, err
		}
		r, err := Evaluate(cvp.NewSliceSource(instrs), p)
		if err != nil {
			return nil, fmt.Errorf("vp: evaluate %s: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
