package iprefetch

import (
	"testing"

	"tracerebase/internal/champtrace"
)

func allPrefetchers(t *testing.T) []Prefetcher {
	t.Helper()
	var ps []Prefetcher
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name == "none" {
			if p != nil {
				t.Fatal("New(none) should be nil")
			}
			continue
		}
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestRegistry(t *testing.T) {
	ps := allPrefetchers(t)
	if len(ps) != 9 { // 8 contest prefetchers + next-line
		t.Errorf("registry has %d prefetchers, want 9", len(ps))
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New accepted bogus prefetcher")
	}
}

// replayStream feeds a fetch-line stream through the prefetcher with a
// trivial "cache": a line hits if it was fetched or prefetched before (no
// eviction, no timing). Returns the demand miss count.
func replayStream(p Prefetcher, stream []uint64) int {
	resident := map[uint64]bool{}
	misses := 0
	for _, line := range stream {
		hit := resident[line]
		if !hit {
			misses++
		}
		for _, pa := range p.OnAccess(line, hit, nil) {
			resident[pa] = true
		}
		resident[line] = true
	}
	return misses
}

// loopStream is a large instruction loop: 256 sequential lines repeated.
func loopStream(rounds int) []uint64 {
	var s []uint64
	for r := 0; r < rounds; r++ {
		for i := 0; i < 256; i++ {
			s = append(s, uint64(0x400000+i*LineSize))
		}
	}
	return s
}

// Every prefetcher must eliminate most misses on a repeating sequential
// loop that would otherwise miss on every cold line once (the trivial
// resident-set model makes repeats free, so the test measures whether
// prefetches cover the COLD misses of later rounds' disturbances — use an
// evicting model instead for a sharper check below).
func TestSequentialCoverage(t *testing.T) {
	for _, p := range allPrefetchers(t) {
		// Interleave two alternating loop bodies so the stream has
		// discontinuities: A-lines then B-lines each round.
		var stream []uint64
		for r := 0; r < 20; r++ {
			for i := 0; i < 64; i++ {
				stream = append(stream, uint64(0x400000+i*LineSize))
			}
			for i := 0; i < 64; i++ {
				stream = append(stream, uint64(0x800000+i*LineSize))
			}
		}
		misses := replayStream(p, stream)
		// 128 cold lines; prefetching can reduce below that, never
		// exceed stream length.
		if misses > 128 {
			t.Errorf("%s: %d misses on 128 cold lines — prefetcher corrupted hit tracking", p.Name(), misses)
		}
	}
}

// evictingReplay uses a tiny FIFO resident set to force re-misses, so
// temporal/“run-ahead” prefetchers show their value on the second round.
func evictingReplay(p Prefetcher, stream []uint64, capacity int) (misses int) {
	resident := map[uint64]int{} // line → fifo tick
	tick := 0
	evict := func() {
		if len(resident) <= capacity {
			return
		}
		oldest, oldestTick := uint64(0), 1<<62
		for l, tk := range resident {
			if tk < oldestTick {
				oldest, oldestTick = l, tk
			}
		}
		delete(resident, oldest)
	}
	for _, line := range stream {
		_, hit := resident[line]
		if !hit {
			misses++
		}
		for _, pa := range p.OnAccess(line, hit, nil) {
			tick++
			resident[pa] = tick
			evict()
		}
		tick++
		resident[line] = tick
		evict()
	}
	return misses
}

// With a cache smaller than the loop, a no-prefetch run misses every line
// every round; all prefetchers must do substantially better on the later
// rounds.
func TestThrashingLoopCoverage(t *testing.T) {
	stream := loopStream(10)
	base := 0
	{
		resident := map[uint64]int{}
		tick := 0
		for _, line := range stream {
			if _, ok := resident[line]; !ok {
				base++
			}
			tick++
			resident[line] = tick
			if len(resident) > 128 {
				oldest, oldestTick := uint64(0), 1<<62
				for l, tk := range resident {
					if tk < oldestTick {
						oldest, oldestTick = l, tk
					}
				}
				delete(resident, oldest)
			}
		}
	}
	if base < 2000 {
		t.Fatalf("baseline model broken: only %d misses", base)
	}
	for _, p := range allPrefetchers(t) {
		misses := evictingReplay(p, stream, 128)
		if misses >= base {
			t.Errorf("%s: %d misses vs %d without prefetching — no benefit on thrashing loop", p.Name(), misses, base)
		}
	}
}

// Determinism: identical streams produce identical prefetch sequences.
func TestDeterminism(t *testing.T) {
	stream := loopStream(3)
	for _, name := range Names() {
		if name == "none" {
			continue
		}
		run := func() []uint64 {
			p, _ := New(name)
			var all []uint64
			seen := map[uint64]bool{}
			for _, line := range stream {
				all = append(all, p.OnAccess(line, seen[line], nil)...)
				seen[line] = true
			}
			return all
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Errorf("%s: prefetch counts differ between runs: %d vs %d", name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: prefetch %d differs", name, i)
				break
			}
		}
	}
}

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(3)
	out := p.OnAccess(0x1000, false, nil)
	if len(out) != 3 || out[0] != 0x1040 || out[2] != 0x10c0 {
		t.Errorf("next-line = %v", out)
	}
	if out := p.OnAccess(0x1000, true, nil); out != nil {
		t.Errorf("next-line prefetched on hit: %v", out)
	}
}

func TestEPIEntangling(t *testing.T) {
	p := NewEPI()
	// Build a fetch history: lines L0..L30, then a miss at M.
	for i := 0; i < 30; i++ {
		p.OnAccess(uint64(0x400000+i*LineSize), true, nil)
	}
	p.OnAccess(0x900000, false, nil) // entangled with the line `distance` back
	// Re-run the same history; accessing the source line must prefetch M.
	src := uint64(0x400000 + (30-p.distance)*LineSize)
	out := p.OnAccess(src, true, nil)
	found := false
	for _, a := range out {
		if a == 0x900000 {
			found = true
		}
	}
	if !found {
		t.Errorf("EPI did not prefetch the entangled destination; got %v", out)
	}
}

func TestDJOLTSignatureReplay(t *testing.T) {
	p := NewDJOLT()
	callSeq := []uint64{0x401000, 0x402000, 0x403000, 0x404000, 0x405000}
	missLine := uint64(0x900000)
	// Round 1: execute the call chain, then miss. The miss trains under a
	// lagged signature.
	for _, c := range callSeq {
		p.OnBranch(c, c+0x1000, champtrace.BranchDirectCall, nil)
	}
	p.OnAccess(missLine, false, nil)
	// Round 2: replay the same call chain; at some call, the prefetcher
	// must emit the miss line (distance = sigLag calls early).
	found := false
	for _, c := range callSeq {
		for _, a := range p.OnBranch(c, c+0x1000, champtrace.BranchDirectCall, nil) {
			if a == missLine {
				found = true
			}
		}
	}
	if !found {
		t.Error("D-JOLT did not replay the long-range miss on signature match")
	}
}

func TestJIPJumpPointer(t *testing.T) {
	p := NewJIP()
	// Run A → jump to B → run B.
	p.OnAccess(0x400000, false, nil)
	p.OnAccess(0x400040, false, nil)
	p.OnAccess(0x800000, false, nil) // discontinuity: 0x400040 → 0x800000
	p.OnAccess(0x800040, false, nil)
	p.OnAccess(0x800080, false, nil)
	// Revisit the pre-jump line: the jump target and its run follow.
	out := p.OnAccess(0x400040, true, nil)
	foundTarget, foundRun := false, false
	for _, a := range out {
		if a == 0x800000 {
			foundTarget = true
		}
		if a == 0x800040 {
			foundRun = true
		}
	}
	if !foundTarget || !foundRun {
		t.Errorf("JIP prefetches = %v, want jump target 0x800000 and its run", out)
	}
}

func TestTAPTemporalReplay(t *testing.T) {
	p := NewTAP()
	seq := []uint64{0xa0000, 0xb0000, 0xc0000, 0xd0000}
	for _, l := range seq {
		p.OnAccess(l, false, nil)
	}
	// Second encounter of the first line must replay its successors.
	out := p.OnAccess(seq[0], false, nil)
	want := map[uint64]bool{0xb0000: true, 0xc0000: true, 0xd0000: true}
	got := 0
	for _, a := range out {
		if want[a] {
			got++
		}
	}
	if got < 3 {
		t.Errorf("TAP replayed %d of 3 successors: %v", got, out)
	}
}

func TestBarcaRegionFootprint(t *testing.T) {
	p := NewBarca()
	// Touch lines 0, 2, 5 of region R, then leave and come back.
	base := uint64(0x400000)
	p.OnAccess(base, false, nil)
	p.OnAccess(base+2*LineSize, false, nil)
	p.OnAccess(base+5*LineSize, false, nil)
	p.OnAccess(0x900000, false, nil) // leave the region
	out := p.OnAccess(base, true, nil)
	want := map[uint64]bool{base + 2*LineSize: true, base + 5*LineSize: true}
	got := 0
	for _, a := range out {
		if want[a] {
			got++
		}
	}
	if got != 2 {
		t.Errorf("Barça region search returned %v, want footprint lines +2 and +5", out)
	}
}

func TestPIPSScoutWalk(t *testing.T) {
	p := NewPIPS()
	chain := []uint64{0x10000, 0x20000, 0x30000, 0x40000}
	// Train the chain several times.
	for round := 0; round < 5; round++ {
		for _, l := range chain {
			p.OnAccess(l, round > 0, nil)
		}
		p.OnAccess(0x90000, true, nil) // epilogue so the chain restarts cleanly
	}
	out := p.OnAccess(chain[0], true, nil)
	want := map[uint64]bool{0x20000: true, 0x30000: true, 0x40000: true}
	got := 0
	for _, a := range out {
		if want[a] {
			got++
		}
	}
	if got < 2 {
		t.Errorf("PIPS scout visited %d chain lines: %v", got, out)
	}
}

func TestFNLMMAFootprintGate(t *testing.T) {
	p := NewFNLMMA()
	// Train "B follows A" twice → worthy.
	a, b := uint64(0x400000), uint64(0x400040)
	for i := 0; i < 3; i++ {
		p.OnAccess(a, true, nil)
		p.OnAccess(b, true, nil)
	}
	out := p.OnAccess(a, true, nil)
	found := false
	for _, x := range out {
		if x == b {
			found = true
		}
	}
	if !found {
		t.Errorf("FNL did not prefetch the worthy next line: %v", out)
	}
	// A line whose successor is never sequential must not prefetch it.
	c := uint64(0x500000)
	for i := 0; i < 3; i++ {
		p.OnAccess(c, true, nil)
		p.OnAccess(0x900000+uint64(i)*0x10000, true, nil)
	}
	out = p.OnAccess(c, true, nil)
	for _, x := range out {
		if x == c+LineSize {
			t.Errorf("FNL prefetched an unworthy next line: %v", out)
		}
	}
}

func TestMANAChain(t *testing.T) {
	p := NewMANA()
	chain := []uint64{0x10000, 0x20000, 0x30000}
	for _, l := range chain {
		p.OnAccess(l, false, nil)
	}
	out := p.OnAccess(chain[0], false, nil)
	found := 0
	for _, a := range out {
		if a == 0x20000 || a == 0x30000 {
			found++
		}
	}
	if found < 2 {
		t.Errorf("MANA chain walk returned %v, want the recorded successors", out)
	}
}

func TestBaseNoOps(t *testing.T) {
	var b Base
	if b.OnAccess(0x1000, false, nil) != nil || b.OnBranch(1, 2, champtrace.BranchDirectCall, nil) != nil || b.OnFTQInsert(0x40, nil) != nil {
		t.Error("Base hooks must be no-ops")
	}
}
