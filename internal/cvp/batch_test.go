package cvp

import (
	"io"
	"math/rand"
	"testing"
)

// randomInstr builds a structurally varied instruction: every class, a mix
// of empty and full register lists, so slice-capacity reuse is exercised.
func randomInstr(r *rand.Rand, pc uint64) *Instruction {
	in := &Instruction{PC: pc, Class: InstClass(r.Intn(NumClasses))}
	if in.Class.IsMem() {
		in.EffAddr = r.Uint64()
		in.MemSize = 8
	}
	if in.Class.IsBranch() {
		in.Taken = r.Intn(2) == 0
		if in.Taken {
			in.Target = pc + 4 + uint64(r.Intn(64))*4
		}
	}
	for i, n := 0, r.Intn(MaxSrcRegs+1); i < n; i++ {
		in.SrcRegs = append(in.SrcRegs, uint8(r.Intn(NumRegs)))
	}
	for i, n := 0, r.Intn(MaxDstRegs+1); i < n; i++ {
		in.DstRegs = append(in.DstRegs, uint8(r.Intn(NumRegs)))
		in.DstValues = append(in.DstValues, r.Uint64())
	}
	return in
}

func randomInstrs(n int, seed int64) []*Instruction {
	r := rand.New(rand.NewSource(seed))
	out := make([]*Instruction, n)
	pc := uint64(0x400000)
	for i := range out {
		out[i] = randomInstr(r, pc)
		pc += 4
	}
	return out
}

// sameInstr compares two instructions field-wise, treating nil and empty
// register slices as equal (value slabs hold empty-but-non-nil slices).
func sameInstr(a, b *Instruction) bool {
	if a.PC != b.PC || a.Class != b.Class || a.EffAddr != b.EffAddr ||
		a.MemSize != b.MemSize || a.Taken != b.Taken || a.Target != b.Target {
		return false
	}
	if len(a.SrcRegs) != len(b.SrcRegs) || len(a.DstRegs) != len(b.DstRegs) ||
		len(a.DstValues) != len(b.DstValues) {
		return false
	}
	for i := range a.SrcRegs {
		if a.SrcRegs[i] != b.SrcRegs[i] {
			return false
		}
	}
	for i := range a.DstRegs {
		if a.DstRegs[i] != b.DstRegs[i] {
			return false
		}
	}
	for i := range a.DstValues {
		if a.DstValues[i] != b.DstValues[i] {
			return false
		}
	}
	return true
}

// drainBatches pulls everything out of bs using the given batch size,
// cloning each record, and checks EOF discipline: no n>0 with io.EOF, and
// EOF is sticky.
func drainBatches(t *testing.T, bs BatchSource, batchSize int) []*Instruction {
	t.Helper()
	slab := MakeBatch(batchSize)
	var out []*Instruction
	for {
		n, err := bs.NextBatch(slab)
		if err == io.EOF {
			if n != 0 {
				t.Fatalf("NextBatch returned n=%d with io.EOF", n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("NextBatch returned n=0 with nil error")
		}
		for i := 0; i < n; i++ {
			out = append(out, slab[i].Clone())
		}
	}
	// EOF must be sticky.
	for i := 0; i < 3; i++ {
		if n, err := bs.NextBatch(slab); n != 0 || err != io.EOF {
			t.Fatalf("post-EOF NextBatch = (%d, %v), want (0, io.EOF)", n, err)
		}
	}
	return out
}

func checkStream(t *testing.T, name string, got, want []*Instruction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d instructions, want %d", name, len(got), len(want))
	}
	for i := range got {
		if !sameInstr(got[i], want[i]) {
			t.Fatalf("%s: instruction %d differs:\ngot  %+v\nwant %+v", name, i, got[i], want[i])
		}
	}
}

// TestBatchSourcesMatchSliceSource: every batch path over the same records
// yields an identical stream, including a final short batch, for batch
// sizes that do and do not divide the stream length.
func TestBatchSourcesMatchSliceSource(t *testing.T) {
	const n = 1000
	want := randomInstrs(n, 1)
	for _, batchSize := range []int{1, 7, 256, n, n + 13} {
		got := drainBatches(t, NewSliceSource(want), batchSize)
		checkStream(t, "SliceSource", got, want)

		slab := MakeBatch(n)
		for i, in := range want {
			in.CopyInto(&slab[i])
		}
		got = drainBatches(t, NewValuesSource(slab), batchSize)
		checkStream(t, "ValuesSource", got, want)

		// Force the generic wrapper by hiding the SliceSource behind a
		// plain Source.
		got = drainBatches(t, AsBatchSource(sourceOnly{NewSliceSource(want)}), batchSize)
		checkStream(t, "sourceBatcher", got, want)
	}
}

// sourceOnly hides any BatchSource implementation of the wrapped source.
type sourceOnly struct{ src Source }

func (s sourceOnly) Next() (*Instruction, error) { return s.src.Next() }

// batchOnly hides any Source implementation of the wrapped batch source.
type batchOnly struct{ bs BatchSource }

func (b batchOnly) NextBatch(dst []Instruction) (int, error) { return b.bs.NextBatch(dst) }

// TestAsSourceRoundTrip: Source -> BatchSource -> Source preserves the
// stream, and pointers stay valid across at least one subsequent batch
// refill (the double-buffer contract).
func TestAsSourceRoundTrip(t *testing.T) {
	const n = 500
	want := randomInstrs(n, 2)
	for _, batchSize := range []int{3, 64, n + 1} {
		src := AsSource(batchOnly{AsBatchSource(sourceOnly{NewSliceSource(want)})}, batchSize)
		var prev *Instruction
		for i := 0; ; i++ {
			in, err := src.Next()
			if err == io.EOF {
				if i != n {
					t.Fatalf("batchSize %d: EOF after %d instructions, want %d", batchSize, i, n)
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !sameInstr(in, want[i]) {
				t.Fatalf("batchSize %d: instruction %d differs", batchSize, i)
			}
			// The previously returned pointer must still hold the previous
			// record (simulator lookahead relies on this).
			if prev != nil && !sameInstr(prev, want[i-1]) {
				t.Fatalf("batchSize %d: pointer for instruction %d was clobbered", batchSize, i-1)
			}
			prev = in
		}
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("post-EOF Next error = %v, want io.EOF", err)
		}
	}
}

// TestValuesSourceSharedSlab: concurrent-style repeated reads of one slab
// through independent cursors see identical streams.
func TestValuesSourceSharedSlab(t *testing.T) {
	want := randomInstrs(200, 3)
	slab := MakeBatch(len(want))
	for i, in := range want {
		in.CopyInto(&slab[i])
	}
	a, b := NewValuesSource(slab), NewValuesSource(slab)
	if a.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(want))
	}
	for i := range want {
		x, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		y, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !sameInstr(x, want[i]) || !sameInstr(y, want[i]) {
			t.Fatalf("cursor divergence at %d", i)
		}
	}
	b.Reset()
	in, err := b.Next()
	if err != nil || !sameInstr(in, want[0]) {
		t.Fatalf("after Reset: (%+v, %v), want first instruction", in, err)
	}
}

// TestMakeBatchNoAlloc: filling a MakeBatch slab via CopyInto allocates
// nothing once the slab exists.
func TestMakeBatchNoAlloc(t *testing.T) {
	want := randomInstrs(256, 4)
	slab := MakeBatch(len(want))
	allocs := testing.AllocsPerRun(10, func() {
		for i, in := range want {
			in.CopyInto(&slab[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("CopyInto into MakeBatch slab allocated %.1f times per fill", allocs)
	}
}
