package btb

// Warmed-state serialization for the checkpointing engine. The BTB, RAS,
// and ITTAGE serialize their durable tables; per-branch scratch set by
// Predict and consumed by the paired Update is excluded (always rewritten
// before its next read). TargetStats ride along so a restored pipeline's
// warm-up counters match a replayed one exactly.

import (
	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/snap"
)

// Section tags, one per serialized component.
const (
	snapBTB    = 0xb7b00001
	snapRAS    = 0xb7b00002
	snapITTAGE = 0xb7b00003
	snapTarget = 0xb7b00004
)

// Snapshot serializes every BTB line and the LRU clock.
func (b *BTB) Snapshot(w *snap.Writer) {
	w.Mark(snapBTB)
	w.U32(uint32(len(b.lines)))
	for i := range b.lines {
		l := &b.lines[i]
		w.U64(l.tag)
		w.U64(l.entry.Target)
		w.U8(uint8(l.entry.Type))
		w.Bool(l.valid)
		w.U64(l.lru)
	}
	w.U64(b.tick)
}

// Restore restores BTB state into a table of identical geometry.
func (b *BTB) Restore(r *snap.Reader) {
	r.Expect(snapBTB)
	if n := r.Len(); n != len(b.lines) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range b.lines {
		l := &b.lines[i]
		l.tag = r.U64()
		l.entry.Target = r.U64()
		l.entry.Type = champtrace.BranchType(r.U8())
		l.valid = r.Bool()
		l.lru = r.U64()
	}
	b.tick = r.U64()
}

// Snapshot serializes the circular return stack and its cursors.
func (s *RAS) Snapshot(w *snap.Writer) {
	w.Mark(snapRAS)
	w.U64s(s.stack)
	w.I64(int64(s.top))
	w.I64(int64(s.pos))
}

// Restore restores RAS state.
func (s *RAS) Restore(r *snap.Reader) {
	r.Expect(snapRAS)
	r.U64s(s.stack)
	s.top = int(r.I64())
	s.pos = int(r.I64())
}

// Snapshot serializes the tagged tables, base table, and path history.
func (it *ITTAGE) Snapshot(w *snap.Writer) {
	w.Mark(snapITTAGE)
	w.U32(uint32(len(it.tables)))
	for i := range it.tables {
		e := &it.tables[i]
		w.U16(e.tag)
		w.U64(e.target)
		w.I8(e.conf)
		w.U8(e.useful)
	}
	w.U64s(it.base)
	w.U64(it.path)
}

// Restore restores ITTAGE state into a predictor of identical geometry.
func (it *ITTAGE) Restore(r *snap.Reader) {
	r.Expect(snapITTAGE)
	if n := r.Len(); n != len(it.tables) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range it.tables {
		e := &it.tables[i]
		e.tag = r.U16()
		e.target = r.U64()
		e.conf = r.I8()
		e.useful = r.U8()
	}
	r.U64s(it.base)
	it.path = r.U64()
}

// Snapshot serializes the full target-prediction machinery including its
// counters; the optional ITTAGE section is preceded by a presence flag.
func (tp *TargetPredictor) Snapshot(w *snap.Writer) {
	w.Mark(snapTarget)
	tp.BTB.Snapshot(w)
	tp.RAS.Snapshot(w)
	w.Bool(tp.ITTAGE != nil)
	if tp.ITTAGE != nil {
		tp.ITTAGE.Snapshot(w)
	}
	w.U64(tp.stats.TakenBranches)
	w.U64(tp.stats.Mispredicts)
	w.U64(tp.stats.BTBMisses)
	w.U64(tp.stats.ReturnMispredicts)
	w.U64(tp.stats.Returns)
}

// Restore restores target-prediction state.
func (tp *TargetPredictor) Restore(r *snap.Reader) {
	r.Expect(snapTarget)
	tp.BTB.Restore(r)
	tp.RAS.Restore(r)
	hasITTAGE := r.Bool()
	if hasITTAGE != (tp.ITTAGE != nil) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	if tp.ITTAGE != nil {
		tp.ITTAGE.Restore(r)
	}
	tp.stats.TakenBranches = r.U64()
	tp.stats.Mispredicts = r.U64()
	tp.stats.BTBMisses = r.U64()
	tp.stats.ReturnMispredicts = r.U64()
	tp.stats.Returns = r.U64()
}
