package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"tracerebase/internal/expstore"
)

// variantAliases maps CLI-friendly spellings onto the artifact-style
// variant labels the sweep records. The expstore itself knows nothing of
// them: aliases are a presentation concern, expanded before parsing.
var variantAliases = map[string]string{
	"all":    "All_imps",
	"none":   "No_imp",
	"memory": "Memory_imps",
	"branch": "Branch_imps",
}

// expandAliases rewrites variant=... filter values through variantAliases,
// leaving every other token untouched.
func expandAliases(src string) string {
	toks := strings.Fields(src)
	for i, tok := range toks {
		val, ok := strings.CutPrefix(tok, "variant=")
		if !ok {
			continue
		}
		vals := strings.Split(val, ",")
		for j, v := range vals {
			if full, ok := variantAliases[v]; ok {
				vals[j] = full
			}
		}
		toks[i] = "variant=" + strings.Join(vals, ",")
	}
	return strings.Join(toks, " ")
}

// Query parses src (with variant aliases expanded) and executes it against
// the experiment store — block-pruned by default, or by brute-force full
// scan when fullScan is set (the comparison baseline: identical rows, no
// pruning, every byte read).
func Query(store *expstore.Store, src string, fullScan bool) (*expstore.Result, error) {
	q, err := expstore.ParseQuery(expandAliases(src))
	if err != nil {
		return nil, err
	}
	if fullScan {
		return store.FullScan(q)
	}
	return store.Query(q)
}

// RenderQuery prints a query result as an aligned text table with a
// scan-statistics trailer.
func RenderQuery(w io.Writer, res *expstore.Result) {
	headers := append(append([]string{}, res.GroupBy...), "n")
	for _, st := range res.StatNames {
		headers = append(headers, st+"("+res.Metric+")")
	}
	widths := make([]int, len(headers))
	rows := make([][]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		cells := append(append([]string{}, r.Group...), fmt.Sprintf("%d", r.Count))
		for _, v := range r.Values {
			cells = append(cells, fmt.Sprintf("%.6g", v))
		}
		rows = append(rows, cells)
	}
	for i, h := range headers {
		widths[i] = len(h)
		for _, cells := range rows {
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	for _, cells := range rows {
		line(cells)
	}
	st := res.Stats
	fmt.Fprintf(w, "  -- %d rows; blocks %d/%d pruned, %d scanned; read %d of %d bytes (%d columns); cells %d scanned, %d matched\n",
		len(res.Rows), st.BlocksPruned, st.BlocksTotal, st.BlocksScanned,
		st.BytesRead, st.BytesTotal, st.ColumnsRead, st.CellsScanned, st.CellsMatched)
}

// queryJSON is the wire form of a query result, shared by `rebase query
// -json` and the daemon's GET /query.
type queryJSON struct {
	Metric    string              `json:"metric"`
	GroupBy   []string            `json:"group_by,omitempty"`
	StatNames []string            `json:"stats"`
	Rows      []queryRowJSON      `json:"rows"`
	Scan      expstore.QueryStats `json:"scan"`
}

type queryRowJSON struct {
	Group  []string  `json:"group,omitempty"`
	Count  int       `json:"n"`
	Values []float64 `json:"values"`
}

// WriteQueryJSON emits a query result as one JSON document.
func WriteQueryJSON(w io.Writer, res *expstore.Result) error {
	doc := queryJSON{
		Metric:    res.Metric,
		GroupBy:   res.GroupBy,
		StatNames: res.StatNames,
		Rows:      make([]queryRowJSON, 0, len(res.Rows)),
		Scan:      res.Stats,
	}
	for _, r := range res.Rows {
		doc.Rows = append(doc.Rows, queryRowJSON{Group: r.Group, Count: r.Count, Values: r.Values})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
