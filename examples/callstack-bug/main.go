// Callstack-bug: a forensic reproduction of §3.2.1. Server workloads that
// dispatch through BLR X30 (an indirect call that reads AND writes the link
// register) were misclassified as RETURNS by the original cvp2champsim.
// The simulated return address stack then pops when it should push, every
// genuine return downstream mispredicts, and the trace shows a return MPKI
// an order of magnitude above healthy traces — which is how the paper's
// authors first spotted the bug in the IPC-1 results.
package main

import (
	"fmt"
	"log"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

func main() {
	fmt.Println("The call-stack bug (paper §3.2.1, Fig. 5)")
	fmt.Println()
	fmt.Printf("%-10s %14s | %12s %12s | %10s\n",
		"trace", "BLR-X30/kinstr", "retMPKI orig", "retMPKI fix", "IPC delta")

	// srv_3, srv_8, srv_13 carry the BLR-X30 idiom; srv_0 does not.
	for _, name := range []string{"srv_3", "srv_8", "srv_13", "srv_0"} {
		p, ok := synth.FindPublic(name)
		if !ok {
			log.Fatalf("trace %s not found", name)
		}
		instrs, err := p.Generate(150000)
		if err != nil {
			log.Fatal(err)
		}

		orig, origConv := simulate(instrs, core.OptionsNone())
		fixed, _ := simulate(instrs, core.Options{CallStack: true})

		blrPerK := 1000 * float64(origConv.ReadWriteLRBranches) / float64(origConv.In)
		fmt.Printf("%-10s %14.2f | %12.2f %12.2f | %+9.2f%%\n",
			name, blrPerK, orig.ReturnMPKI(), fixed.ReturnMPKI(),
			100*(fixed.IPC()/orig.IPC()-1))
	}

	fmt.Println()
	fmt.Println("Traces with the idiom recover their return prediction once BLR X30 is")
	fmt.Println("classified as a call; traces without it are untouched, exactly as the")
	fmt.Println("paper observes (\"this issue does not affect all traces but only a subset\").")
}

func simulate(instrs []*cvp.Instruction, opts core.Options) (sim.Stats, core.Stats) {
	recs, cst, err := core.ConvertAll(cvp.NewSliceSource(instrs), opts)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run(champtrace.NewSliceSource(recs), sim.ConfigDevelop(champtrace.RulesOriginal), 50000, 0)
	if err != nil {
		log.Fatal(err)
	}
	return st, cst
}
