package synth

// IPC1Trace is one of the 50 traces used in the first Instruction
// Prefetching Championship, whose mapping back to the CVP-1 secret traces
// the paper discloses in Table 2.
type IPC1Trace struct {
	// Name is the IPC-1 trace name; CVPName the secret CVP-1 trace it
	// was converted from.
	Name, CVPName string
	// Profile generates the synthetic stand-in.
	Profile Profile
}

// ipc1Row is the compact per-trace shaping table: the knobs are chosen so
// the characterization (Table 2) reproduces the row's qualitative regime —
// instruction-footprint pressure growing down the server list, the
// memory-bound server_017..022 and spec_gcc_002/003 clusters, the
// branchy gobmk pair, and the call-stack-bug subset (server_001 above all).
type ipc1Row struct {
	name, cvp string
	cat       Category
	idx       int     // jitter index
	funcs     int     // code footprint: functions of ~256 sites
	dataMB    int     // data working set
	chase     float64 // pointer-chase load fraction
	bias      float64 // branch predictability
	blr       float64 // BLR-X30 fraction (call-stack bug trigger)
}

var ipc1Rows = []ipc1Row{
	{"client_001", "secret_int_294", ComputeInt, 1, 24, 12, 0.10, 0.72, 0},
	{"client_002", "secret_int_316", ComputeInt, 2, 28, 6, 0.04, 0.92, 0},
	{"client_003", "secret_int_729", ComputeInt, 3, 30, 16, 0.12, 0.70, 0.45},
	{"client_004", "secret_int_965", ComputeInt, 4, 30, 12, 0.08, 0.48, 0.35},
	{"client_005", "secret_int_349", ComputeInt, 5, 34, 18, 0.12, 0.66, 0},
	{"client_006", "secret_int_279", ComputeInt, 6, 38, 20, 0.14, 0.78, 0},
	{"client_007", "secret_int_591", ComputeInt, 7, 50, 14, 0.08, 0.74, 0},
	{"client_008", "secret_int_338", ComputeInt, 8, 68, 14, 0.08, 0.78, 0},
	{"server_001", "secret_srv160", Server, 11, 36, 12, 0.10, 0.93, 0.80},
	{"server_002", "secret_srv571", Server, 12, 48, 1, 0.00, 0.95, 0},
	{"server_003", "secret_srv757", Server, 13, 60, 20, 0.16, 0.55, 0.40},
	{"server_004", "secret_srv194", Server, 14, 64, 28, 0.18, 0.75, 0.35},
	{"server_009", "secret_srv551", Server, 15, 72, 22, 0.14, 0.88, 0},
	{"server_010", "secret_srv364", Server, 16, 78, 20, 0.12, 0.89, 0},
	{"server_011", "secret_srv617", Server, 17, 80, 16, 0.10, 0.76, 0.30},
	{"server_012", "secret_srv255", Server, 18, 82, 16, 0.10, 0.89, 0},
	{"server_013", "secret_srv442", Server, 19, 86, 16, 0.10, 0.89, 0},
	{"server_014", "secret_srv685", Server, 20, 90, 1, 0.00, 0.94, 0},
	{"server_015", "secret_srv238", Server, 21, 92, 1, 0.00, 0.97, 0},
	{"server_016", "secret_srv513", Server, 22, 110, 14, 0.06, 0.93, 0.30},
	{"server_017", "secret_srv155", Server, 23, 128, 48, 0.40, 0.90, 0},
	{"server_018", "secret_srv58", Server, 24, 128, 48, 0.40, 0.90, 0},
	{"server_019", "secret_srv564", Server, 25, 130, 48, 0.40, 0.91, 0},
	{"server_020", "secret_srv405", Server, 26, 134, 48, 0.42, 0.94, 0},
	{"server_021", "secret_srv174", Server, 27, 136, 48, 0.42, 0.96, 0},
	{"server_022", "secret_srv490", Server, 28, 138, 48, 0.42, 0.96, 0},
	{"server_023", "secret_srv152", Server, 29, 146, 18, 0.04, 0.92, 0.25},
	{"server_024", "secret_srv181", Server, 30, 148, 18, 0.04, 0.92, 0},
	{"server_025", "secret_srv301", Server, 31, 152, 18, 0.04, 0.94, 0},
	{"server_026", "secret_srv344", Server, 32, 160, 20, 0.04, 0.92, 0},
	{"server_027", "secret_srv428", Server, 33, 162, 18, 0.04, 0.94, 0},
	{"server_028", "secret_srv535", Server, 34, 170, 26, 0.06, 0.91, 0.25},
	{"server_029", "secret_srv91", Server, 35, 172, 26, 0.06, 0.91, 0},
	{"server_030", "secret_srv263", Server, 36, 174, 24, 0.04, 0.95, 0},
	{"server_031", "secret_srv656", Server, 37, 178, 24, 0.06, 0.90, 0.25},
	{"server_032", "secret_srv592", Server, 38, 186, 20, 0.04, 0.95, 0},
	{"server_033", "secret_srv7", Server, 39, 196, 10, 0.02, 0.97, 0},
	{"server_034", "secret_srv630", Server, 40, 198, 10, 0.02, 0.97, 0},
	{"server_035", "secret_srv374", Server, 41, 198, 12, 0.04, 0.97, 0},
	{"server_036", "secret_srv340", Server, 42, 232, 1, 0.00, 0.96, 0},
	{"server_037", "secret_srv680", Server, 43, 234, 8, 0.02, 0.96, 0},
	{"server_038", "secret_srv373", Server, 44, 236, 8, 0.02, 0.96, 0},
	{"server_039", "secret_srv154", Server, 45, 244, 1, 0.00, 0.97, 0},
	{"spec_gcc_001", "secret_int_118", ComputeInt, 51, 24, 10, 0.08, 0.45, 0},
	{"spec_gcc_002", "secret_int_345", ComputeInt, 52, 34, 96, 0.75, 0.90, 0},
	{"spec_gcc_003", "secret_int_123", ComputeInt, 53, 44, 96, 0.80, 0.93, 0},
	{"spec_gobmk_001", "secret_int_416", ComputeInt, 54, 22, 8, 0.04, 0.40, 0},
	{"spec_gobmk_002", "secret_int_121", ComputeInt, 55, 28, 2, 0.02, 0.38, 0},
	{"spec_perlbench_001", "secret_int_116", ComputeInt, 56, 20, 8, 0.06, 0.80, 0},
	{"spec_x264_001", "secret_int_919", ComputeInt, 57, 18, 4, 0.02, 0.85, 0},
}

// IPC1Suite returns the 50 IPC-1 traces with their CVP-1 secret-trace
// mapping (Table 2, columns 1–2).
func IPC1Suite() []IPC1Trace {
	out := make([]IPC1Trace, 0, len(ipc1Rows))
	for _, r := range ipc1Rows {
		p := PublicProfile(r.cat, 1000+r.idx)
		p.Name = r.name
		p.FuncBodySites = 96
		p.NumFuncs = r.funcs * 3
		p.DataFootprint = uint64(r.dataMB) << 20
		p.ChaseFrac = r.chase * 0.5
		// The table's bias column is a relative predictability knob
		// (gobmk lowest, the streaming servers highest); map it onto
		// the calibrated absolute range that lands branch MPKIs in
		// Table 2's 0.1–8 window.
		p.BranchBias = 0.92 + 0.075*clamp01((r.bias-0.38)/0.59)
		p.BlrX30Frac = r.blr
		if r.blr > 0 {
			// The bug subset needs frequent, predictable indirect
			// calls for the misclassification to dominate return
			// prediction (§3.2.1).
			p.DispatchTargets = 1
			if p.IndirectCallFrac < 0.45 {
				p.IndirectCallFrac = 0.45
			}
			if p.CallFrac < 0.12 {
				p.CallFrac = 0.12
			}
		}
		out = append(out, IPC1Trace{Name: r.name, CVPName: r.cvp, Profile: p})
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// FindIPC1 returns the IPC-1 trace with the given name.
func FindIPC1(name string) (IPC1Trace, bool) {
	for _, tr := range IPC1Suite() {
		if tr.Name == name {
			return tr, true
		}
	}
	return IPC1Trace{}, false
}
