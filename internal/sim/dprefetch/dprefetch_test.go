package dprefetch

import (
	"testing"

	"tracerebase/internal/sim/mem"
)

func TestNew(t *testing.T) {
	if p, err := New("none"); err != nil || p != nil {
		t.Errorf("New(none) = %v, %v", p, err)
	}
	if p, err := New(""); err != nil || p != nil {
		t.Errorf("New(\"\") = %v, %v", p, err)
	}
	for _, name := range []string{"next-line", "ip-stride"} {
		p, err := New(name)
		if err != nil || p == nil || p.Name() != name {
			t.Errorf("New(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New accepted bogus prefetcher")
	}
}

func TestNextLine(t *testing.T) {
	p := NewNextLine(2)
	if got := p.OnAccess(0x1000, 0, true, nil); got != nil {
		t.Errorf("next-line prefetched on hit: %v", got)
	}
	got := p.OnAccess(0x1000, 0, false, nil)
	if len(got) != 2 || got[0] != 0x1040 || got[1] != 0x1080 {
		t.Errorf("next-line miss prefetch = %v", got)
	}
	if NewNextLine(0).degree != 1 {
		t.Error("degree floor not applied")
	}
}

func TestIPStrideDetectsStride(t *testing.T) {
	p := NewIPStride(64, 2)
	ip := uint64(0x400100)
	const stride = 256
	var last []uint64
	for i := 0; i < 6; i++ {
		last = p.OnAccess(uint64(0x10000+i*stride), ip, false, nil)
	}
	if len(last) != 2 {
		t.Fatalf("confident stride issued %d prefetches, want 2", len(last))
	}
	base := uint64(0x10000 + 5*stride)
	if last[0] != base+stride || last[1] != base+2*stride {
		t.Errorf("prefetch targets = %#x, %#x", last[0], last[1])
	}
}

func TestIPStrideNeedsConfidence(t *testing.T) {
	p := NewIPStride(64, 2)
	ip := uint64(0x400100)
	// First two accesses establish the entry and the first stride
	// observation; no prefetch yet.
	if got := p.OnAccess(0x10000, ip, false, nil); got != nil {
		t.Errorf("prefetch after first access: %v", got)
	}
	if got := p.OnAccess(0x10100, ip, false, nil); got != nil {
		t.Errorf("prefetch after single stride observation: %v", got)
	}
	// Stride change resets confidence.
	p.OnAccess(0x10200, ip, false, nil) // conf=2 → prefetches
	if got := p.OnAccess(0x20000, ip, false, nil); got != nil {
		t.Errorf("prefetch immediately after stride change: %v", got)
	}
}

func TestIPStrideIgnoresZeroIP(t *testing.T) {
	p := NewIPStride(64, 2)
	for i := 0; i < 5; i++ {
		if got := p.OnAccess(uint64(0x1000+i*64), 0, false, nil); got != nil {
			t.Fatalf("prefetched with ip=0: %v", got)
		}
	}
}

func TestIPStrideDistinctIPs(t *testing.T) {
	p := NewIPStride(64, 1)
	// Two interleaved streams with different strides must both train.
	var a, b []uint64
	for i := 0; i < 6; i++ {
		a = p.OnAccess(uint64(0x10000+i*64), 0x400100, false, nil)
		b = p.OnAccess(uint64(0x80000+i*4096), 0x400104, false, nil)
	}
	if len(a) != 1 || a[0] != 0x10000+5*64+64 {
		t.Errorf("stream A prefetch = %v", a)
	}
	if len(b) != 1 || b[0] != 0x80000+5*4096+4096 {
		t.Errorf("stream B prefetch = %v", b)
	}
}

func TestIPStrideValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewIPStride accepted non-power-of-two size")
		}
	}()
	NewIPStride(3, 1)
}

// Integration: an ip-stride prefetcher attached to a cache turns a strided
// stream into hits.
func TestIPStrideOnCache(t *testing.T) {
	dram := mem.NewDRAM(200, 10, 8)
	c := mem.NewCache(mem.Config{Name: "L1D", Sets: 64, Ways: 8, Latency: 4, MSHRs: 16}, dram)
	p := NewIPStride(256, 4)
	c.SetPrefetcher(p)
	ip := uint64(0x400100)
	cycle := uint64(0)
	for i := 0; i < 200; i++ {
		c.AccessIP(uint64(0x100000+i*mem.LineSize), ip, cycle, mem.Read)
		cycle += 500
	}
	st := c.Stats()
	if st.UsefulPrefetches < 150 {
		t.Errorf("useful prefetches = %d of %d accesses; ip-stride ineffective", st.UsefulPrefetches, st.Accesses)
	}
}

func TestStreamDetectsBothDirections(t *testing.T) {
	p := NewStream(64, 2)
	// Ascending stream in one region.
	var up []uint64
	for i := 0; i < 6; i++ {
		up = p.OnAccess(0x10000+uint64(i)*mem.LineSize, 0, false, nil)
	}
	if len(up) != 2 || up[0] != 0x10000+6*mem.LineSize {
		t.Errorf("ascending prefetches = %#v", up)
	}
	// Descending stream in another region.
	var down []uint64
	for i := 0; i < 6; i++ {
		down = p.OnAccess(0x40000-uint64(i)*mem.LineSize, 0, false, nil)
	}
	if len(down) != 2 || down[0] != 0x40000-6*mem.LineSize {
		t.Errorf("descending prefetches = %#v", down)
	}
}

func TestStreamIgnoresRandom(t *testing.T) {
	p := NewStream(64, 2)
	issued := 0
	// Jumps beyond the tracking window reset the entry.
	for i := 0; i < 50; i++ {
		addr := uint64(0x100000 + (i*37)%17*4096*3)
		issued += len(p.OnAccess(addr, 0, false, nil))
	}
	if issued > 6 {
		t.Errorf("stream issued %d prefetches on a random pattern", issued)
	}
}

func TestStreamPCAgnostic(t *testing.T) {
	// Two PCs interleave over one array: IPStride sees stride 128 per PC
	// after its warmup, but Stream locks on immediately as one stream.
	p := NewStream(64, 1)
	var last []uint64
	for i := 0; i < 8; i++ {
		ip := uint64(0x400100 + (i%2)*4)
		last = p.OnAccess(0x20000+uint64(i)*mem.LineSize, ip, false, nil)
	}
	if len(last) != 1 {
		t.Fatalf("interleaved actors defeated the stream prefetcher: %v", last)
	}
}

func TestStreamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStream accepted non-power-of-two size")
		}
	}()
	NewStream(3, 1)
}

func TestNewStreamRegistry(t *testing.T) {
	p, err := New("stream")
	if err != nil || p == nil || p.Name() != "stream" {
		t.Fatalf("New(stream) = %v, %v", p, err)
	}
}
