// Command cvp1 runs a miniature first Championship Value Prediction on
// CVP-1 traces — the competition these traces were originally released
// for. Each registered predictor (last-value, stride, order-2 FCM, VTAGE)
// is evaluated on coverage, accuracy, and a CVP-style score that penalizes
// confident mispredictions.
//
//	cvp1 -trace compute_int_7 -n 200000
//	cvp1 -t some_trace.cvp.gz
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tracerebase/internal/cvp"
	"tracerebase/internal/synth"
	"tracerebase/internal/vp"
)

func main() {
	var (
		traceName = flag.String("trace", "", "synthetic trace name (e.g. compute_int_7)")
		tracePath = flag.String("t", "", "CVP-1 trace file (.gz supported)")
		n         = flag.Int("n", 200000, "instructions (synthetic traces)")
	)
	flag.Parse()

	var instrs []*cvp.Instruction
	switch {
	case *traceName != "":
		p, ok := synth.FindPublic(*traceName)
		if !ok {
			if tr, ok2 := synth.FindIPC1(*traceName); ok2 {
				p = tr.Profile
			} else {
				fatalf("unknown trace %q", *traceName)
			}
		}
		var err error
		instrs, err = p.Generate(*n)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("CVP-1 mini championship on %s (%d instructions)\n\n", p.Name, len(instrs))
	case *tracePath != "":
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r, closer, err := cvp.OpenReader(*tracePath, f)
		if err != nil {
			fatalf("%v", err)
		}
		defer closer.Close()
		instrs, err = cvp.ReadAll(r)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("CVP-1 mini championship on %s (%d instructions)\n\n", *tracePath, len(instrs))
	default:
		fatalf("need -trace NAME or -t FILE")
	}

	results, err := vp.EvaluateAll(instrs)
	if err != nil {
		fatalf("%v", err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score() > results[j].Score() })

	fmt.Printf("%-4s %-12s %9s %9s %9s %14s\n", "rank", "predictor", "coverage", "accuracy", "score", "load-coverage")
	for i, r := range results {
		loadCov := 0.0
		if r.LoadEligible > 0 {
			loadCov = float64(r.LoadPredicted) / float64(r.LoadEligible)
		}
		fmt.Printf("%-4d %-12s %8.1f%% %8.1f%% %9.3f %13.1f%%\n",
			i+1, r.Predictor, 100*r.Coverage(), 100*r.Accuracy(), r.Score(), 100*loadCov)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cvp1: "+format+"\n", args...)
	os.Exit(1)
}
