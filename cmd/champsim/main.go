// Command champsim runs the trace-driven out-of-order simulator on a
// ChampSim-format trace, in either of the paper's two configurations:
//
//	champsim -t trace.champsim -config develop -rules patched
//	champsim -t trace.champsim -config ipc1 -iprefetch epi -warmup 50000000
//
// Statistics (IPC, branch MPKIs, cache MPKIs) print to standard output in
// the layout of the paper's Table 2 columns.
package main

import (
	"flag"
	"fmt"
	"os"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim"
)

func main() {
	var (
		tracePath = flag.String("t", "", "input ChampSim trace (.gz supported); '-' for stdin")
		config    = flag.String("config", "develop", "processor model: develop or ipc1")
		rules     = flag.String("rules", "original", "branch deduction rules: original or patched")
		iprefetch = flag.String("iprefetch", "", "L1I prefetcher (ipc1 config): none, next-line, epi, djolt, fnl-mma, barca, pips, jip, mana, tap")
		warmup    = flag.Uint64("warmup", 0, "warm-up instructions excluded from statistics")
		maxInstr  = flag.Uint64("max", 0, "stop after this many instructions (0 = whole trace)")
	)
	flag.Parse()

	if *tracePath == "" {
		fatalf("need -t trace")
	}
	var rs champtrace.RuleSet
	switch *rules {
	case "original":
		rs = champtrace.RulesOriginal
	case "patched":
		rs = champtrace.RulesPatched
	default:
		fatalf("unknown rules %q", *rules)
	}
	var cfg sim.Config
	switch *config {
	case "develop":
		cfg = sim.ConfigDevelop(rs)
		if *iprefetch != "" {
			cfg.L1IPrefetcher = *iprefetch
		}
	case "ipc1":
		pf := *iprefetch
		if pf == "" {
			pf = "none"
		}
		cfg = sim.ConfigIPC1(pf, rs)
	default:
		fatalf("unknown config %q", *config)
	}

	in := os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	reader, closer, err := champtrace.OpenReader(*tracePath, in)
	if err != nil {
		fatalf("%v", err)
	}
	defer closer.Close()

	st, err := sim.Run(reader, cfg, *warmup, *maxInstr)
	if err != nil {
		fatalf("simulate: %v", err)
	}

	fmt.Printf("config:        %s (rules: %s)\n", cfg.Name, *rules)
	fmt.Printf("instructions:  %d\n", st.Instructions)
	fmt.Printf("cycles:        %d\n", st.Cycles)
	fmt.Printf("IPC:           %.4f\n", st.IPC())
	fmt.Printf("branches:      %d (%d conditional, %d taken)\n", st.Branches, st.CondBranches, st.TakenBranches)
	fmt.Printf("branch MPKI:   overall %.2f  direction %.2f  target %.2f  return %.2f\n",
		st.BranchMPKI(), st.DirMPKI(), st.TargetMPKI(), st.ReturnMPKI())
	fmt.Printf("cache MPKI:    L1I %.1f  L1D %.1f  L2 %.1f  LLC %.1f\n",
		st.L1I.MPKI(st.Instructions), st.L1D.MPKI(st.Instructions),
		st.L2.MPKI(st.Instructions), st.LLC.MPKI(st.Instructions))
	fmt.Printf("loads/stores:  %d / %d\n", st.Loads, st.Stores)
	if st.L1I.UsefulPrefetches > 0 || st.L1D.UsefulPrefetches > 0 {
		fmt.Printf("useful pf:     L1I %d  L1D %d\n", st.L1I.UsefulPrefetches, st.L1D.UsefulPrefetches)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "champsim: "+format+"\n", args...)
	os.Exit(1)
}
