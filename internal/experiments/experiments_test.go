package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"tracerebase/internal/core"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

func testSweepConfig() SweepConfig {
	return SweepConfig{Instructions: 12000, Warmup: 4000, Parallelism: 2}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 10 {
		t.Fatalf("got %d variants, want 10", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Errorf("duplicate variant %s", v.Name)
		}
		seen[v.Name] = true
	}
	if !seen[VariantNone] || !seen[VariantAll] || !seen[VariantMemory] || !seen[VariantBranch] {
		t.Error("missing a required variant")
	}
	sub := figureVariants(VariantNone, VariantFlagReg)
	if len(sub) != 2 || sub[0].Name != VariantNone || sub[1].Name != VariantFlagReg {
		t.Errorf("figureVariants = %v", sub)
	}
}

func TestRunTraceAndSweep(t *testing.T) {
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone, VariantAll)
	p := synth.PublicProfile(synth.ComputeInt, 2)
	tr, err := RunTrace(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != 2 {
		t.Fatalf("got %d results", len(tr.Results))
	}
	for name, r := range tr.Results {
		if r.IPC <= 0 || r.IPC > 6 {
			t.Errorf("%s: IPC %v out of range", name, r.IPC)
		}
		if r.Conv.In == 0 || r.Sim.Instructions == 0 {
			t.Errorf("%s: empty stats", name)
		}
	}
	if d := tr.Delta(VariantNone); d != 0 {
		t.Errorf("Delta(None) = %v, want 0", d)
	}

	// Sweep over two traces must reproduce individual runs exactly
	// (determinism across parallel execution).
	p2 := synth.PublicProfile(synth.Crypto, 1)
	res, err := RunSweep([]synth.Profile{p, p2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("sweep returned %d results", len(res))
	}
	if !reflect.DeepEqual(res[0].Results[VariantAll], tr.Results[VariantAll]) {
		t.Error("sweep result differs from individual run")
	}
}

// fixture builds a synthetic TraceResult without running the simulator.
func fixture(name string, baseIPC float64, deltas map[string]float64, base sim.Stats) TraceResult {
	tr := TraceResult{
		Profile: synth.Profile{Name: name},
		Results: map[string]Result{VariantNone: {IPC: baseIPC, Sim: base}},
	}
	for v, d := range deltas {
		tr.Results[v] = Result{IPC: baseIPC * (1 + d)}
	}
	return tr
}

func TestFig1Math(t *testing.T) {
	// Two traces with +10% and -10% on base-update: geomean of 1.1*0.9 =
	// sqrt(0.99) ≈ -0.5%.
	results := []TraceResult{
		fixture("a", 1.0, map[string]float64{VariantBaseUpdate: 0.10}, sim.Stats{}),
		fixture("b", 2.0, map[string]float64{VariantBaseUpdate: -0.10}, sim.Stats{}),
	}
	rows := Fig1(results)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 (only base-update present)", len(rows))
	}
	want := 100 * (math.Sqrt(1.1*0.9) - 1)
	if math.Abs(rows[0].GeomeanDeltaPct-want) > 1e-9 {
		t.Errorf("geomean delta = %v, want %v", rows[0].GeomeanDeltaPct, want)
	}
}

func TestFig2Math(t *testing.T) {
	results := []TraceResult{
		fixture("a", 1.0, map[string]float64{VariantFlagReg: -0.20}, sim.Stats{}),
		fixture("b", 1.0, map[string]float64{VariantFlagReg: -0.02}, sim.Stats{}),
		fixture("c", 1.0, map[string]float64{VariantFlagReg: 0.08}, sim.Stats{}),
	}
	series := Fig2(results)
	if len(series) != 1 {
		t.Fatalf("got %d series", len(series))
	}
	s := series[0]
	if s.Above5 != 1 || s.Below5 != 1 {
		t.Errorf("Above5/Below5 = %d/%d, want 1/1", s.Above5, s.Below5)
	}
	if s.WorstTrace != "a" || s.BestTrace != "c" {
		t.Errorf("extremes = %s/%s", s.WorstTrace, s.BestTrace)
	}
	if !sortedDesc(s.DeltasPct) {
		t.Errorf("series not sorted descending: %v", s.DeltasPct)
	}
}

func sortedDesc(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			return false
		}
	}
	return true
}

func TestFig3Sorting(t *testing.T) {
	mk := func(name string, mpki float64, flagDelta float64) TraceResult {
		base := sim.Stats{Instructions: 1000, Mispredicts: uint64(mpki)}
		tr := fixture(name, 1.0, map[string]float64{VariantFlagReg: flagDelta, VariantBranchRegs: flagDelta / 2}, base)
		return tr
	}
	rows := Fig3([]TraceResult{mk("hi", 9, -0.2), mk("lo", 1, -0.02)})
	if len(rows) != 2 || rows[0].Trace != "lo" || rows[1].Trace != "hi" {
		t.Fatalf("rows not sorted by MPKI: %+v", rows)
	}
	if rows[1].FlagRegSlowdownPct < rows[0].FlagRegSlowdownPct {
		t.Error("slowdown should grow with MPKI in this fixture")
	}
	if math.Abs(rows[1].FlagRegSlowdownPct-20) > 1e-9 {
		t.Errorf("slowdown = %v, want 20", rows[1].FlagRegSlowdownPct)
	}
}

func TestFig5Threshold(t *testing.T) {
	mk := func(name string, retOrig, retFixed float64, delta float64) TraceResult {
		tr := TraceResult{
			Profile: synth.Profile{Name: name},
			Results: map[string]Result{
				VariantNone:      {IPC: 1, Sim: sim.Stats{Instructions: 1000, ReturnMispredicts: uint64(retOrig)}},
				VariantCallStack: {IPC: 1 + delta, Sim: sim.Stats{Instructions: 1000, ReturnMispredicts: uint64(retFixed)}},
			},
		}
		return tr
	}
	rows := Fig5([]TraceResult{
		mk("affected", 4, 0, 0.05),
		mk("clean", 0, 0, 0.0),
		mk("worse", 9, 1, 0.07),
	})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (threshold filters the clean trace)", len(rows))
	}
	if rows[0].Trace != "worse" || rows[1].Trace != "affected" {
		t.Errorf("rows not sorted by original MPKI: %+v", rows)
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	out := buf.String()
	for _, name := range []string{"mem-regs", "base-update", "mem-footprint", "call-stack", "branch-regs", "flag-reg"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 output missing %s", name)
		}
	}

	buf.Reset()
	RenderFig1(&buf, []Fig1Row{{VariantAll, -3.5}})
	if !strings.Contains(buf.String(), "All_imps") || !strings.Contains(buf.String(), "-3.50%") {
		t.Errorf("Fig1 render: %q", buf.String())
	}

	buf.Reset()
	RenderFig2(&buf, []Fig2Series{{Variant: VariantFlagReg, DeltasPct: []float64{1, -8}, Below5: 1, WorstTrace: "x", WorstPct: -8}})
	if !strings.Contains(buf.String(), "flag-reg") {
		t.Errorf("Fig2 render: %q", buf.String())
	}

	buf.Reset()
	RenderFig3(&buf, []Fig3Row{{"t", 2.0, 5.0, 3.0}})
	if !strings.Contains(buf.String(), "brMPKI") {
		t.Error("Fig3 render missing header")
	}

	buf.Reset()
	RenderFig4(&buf, []Fig4Row{{"t", 8.5, 4.4}})
	if !strings.Contains(buf.String(), "8.50") {
		t.Error("Fig4 render missing data")
	}

	buf.Reset()
	RenderFig5(&buf, []Fig5Row{{"t", 4.0, 0.2, 3.3}})
	if !strings.Contains(buf.String(), "retMPKI-orig") {
		t.Error("Fig5 render missing header")
	}

	buf.Reset()
	RenderTable2(&buf, Table2Result{Rows: []Table2Row{{Name: "client_001", CVPName: "secret_int_294", IPC: 2.37}}})
	if !strings.Contains(buf.String(), "client_001") || !strings.Contains(buf.String(), "secret_int_294") {
		t.Error("Table2 render missing mapping")
	}

	buf.Reset()
	RenderTable3(&buf, Table3Result{
		Competition: []Table3Entry{{1, "EPI", 1.29}, {2, "TAP", 1.23}},
		Fixed:       []Table3Entry{{1, "TAP", 1.38}, {2, "EPI", 1.36}},
	})
	if !strings.Contains(buf.String(), "EPI") || !strings.Contains(buf.String(), "rank moves") {
		t.Error("Table3 render incomplete")
	}
}

// TestTable2Small runs the real Table 2 pipeline on a 3-trace subset.
func TestTable2Small(t *testing.T) {
	suite := synth.IPC1Suite()[:3]
	res, err := Table2(testSweepConfig(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.IPC <= 0 {
			t.Errorf("%s: IPC %v", r.Name, r.IPC)
		}
		if r.CVPName == "" {
			t.Errorf("%s: missing CVP mapping", r.Name)
		}
	}
}

// TestTable3Small runs the championship pipeline on 2 traces and 2
// prefetchers' worth of work (all 8 would be slow); it exercises both trace
// sets and the ranking logic.
func TestTable3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 is slow")
	}
	suite := synth.IPC1Suite()[:2]
	cfg := testSweepConfig()
	res, err := Table3(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Competition) != len(Table3Prefetchers) || len(res.Fixed) != len(Table3Prefetchers) {
		t.Fatalf("ranking sizes: %d, %d", len(res.Competition), len(res.Fixed))
	}
	for i, e := range res.Competition {
		if e.Rank != i+1 {
			t.Errorf("rank %d = %d", i+1, e.Rank)
		}
		if e.Speedup <= 0 {
			t.Errorf("%s speedup %v", e.Prefetcher, e.Speedup)
		}
		if i > 0 && e.Speedup > res.Competition[i-1].Speedup {
			t.Error("ranking not sorted by speedup")
		}
	}
}

func TestDefaultSweepConfig(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.fill()
	if cfg.Instructions != 150000 || cfg.Warmup != 50000 {
		t.Errorf("defaults = %+v", cfg)
	}
	if len(cfg.Variants) != 10 || cfg.Parallelism < 1 {
		t.Errorf("fill incomplete: %+v", cfg)
	}
}

// TestFrontEndAblationSmall exercises the §4.4 ablation on one trace.
func TestFrontEndAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	tr, ok := synth.FindIPC1("server_030")
	if !ok {
		t.Fatal("server_030 missing")
	}
	rows, err := FrontEndAblation(testSweepConfig(), []synth.IPC1Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table3Prefetchers) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.CoupledSpeedup <= 0 || r.DecoupledSpeedup <= 0 {
			t.Errorf("%s: speedups %v/%v", r.Prefetcher, r.CoupledSpeedup, r.DecoupledSpeedup)
		}
	}
	var buf bytes.Buffer
	RenderFrontEndAblation(&buf, rows)
	if !strings.Contains(buf.String(), "decoupled") {
		t.Error("ablation render incomplete")
	}
}

// TestCharacterizeSmall exercises the public-suite characterization path.
func TestCharacterizeSmall(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 1),
		synth.PublicProfile(synth.Server, 2),
	}
	rows, err := Characterize(profiles, testSweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.IPC <= 0 || r.Name == "" || r.Category == "" {
			t.Errorf("bad row %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderCharacterization(&buf, rows)
	if !strings.Contains(buf.String(), rows[0].Name) {
		t.Error("render missing trace name")
	}
}

// TestJSONReport round-trips a report through encoding/json.
func TestJSONReport(t *testing.T) {
	cfg := testSweepConfig()
	rep := NewJSONReport(cfg)
	rep.Fig1 = []Fig1Row{{Variant: VariantAll, GeomeanDeltaPct: -3.5}}
	t2 := Table2Result{Rows: []Table2Row{{Name: "client_001", CVPName: "secret_int_294"}}}
	rep.Table2 = &t2
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := back["fig1"]; !ok {
		t.Error("fig1 missing from JSON")
	}
	if _, ok := back["table2"]; !ok {
		t.Error("table2 missing from JSON")
	}
	if _, ok := back["fig3"]; ok {
		t.Error("empty sections must be omitted")
	}
	settings := back["settings"].(map[string]any)
	if int(settings["instructions"].(float64)) != cfg.Instructions {
		t.Error("settings not echoed")
	}
}

func TestFig4Math(t *testing.T) {
	mk := func(name string, baseUpd, total uint64, delta float64) TraceResult {
		tr := TraceResult{
			Profile: synth.Profile{Name: name},
			Results: map[string]Result{
				VariantNone: {IPC: 1},
				VariantBaseUpdate: {
					IPC:  1 + delta,
					Conv: core.Stats{In: total, BaseUpdateLoads: baseUpd},
				},
			},
		}
		return tr
	}
	rows := Fig4([]TraceResult{
		mk("many", 200, 1000, 0.08),
		mk("few", 10, 1000, 0.01),
	})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Trace != "few" || rows[1].Trace != "many" {
		t.Fatalf("not sorted by base-update fraction: %+v", rows)
	}
	if math.Abs(rows[1].BaseUpdateLoadPct-20) > 1e-9 {
		t.Errorf("BaseUpdateLoadPct = %v, want 20", rows[1].BaseUpdateLoadPct)
	}
	if math.Abs(rows[1].SpeedupPct-8) > 1e-9 {
		t.Errorf("SpeedupPct = %v, want 8", rows[1].SpeedupPct)
	}
}
