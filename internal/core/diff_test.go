package core

import (
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
	"tracerebase/internal/synth"
)

func convertBoth(t *testing.T, instrs []*cvp.Instruction, opts Options) (a, b []*champtrace.Instruction) {
	t.Helper()
	a, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsNone())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err = ConvertAll(cvp.NewSliceSource(instrs), opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestDiffIdenticalConversions(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 5)
	instrs, err := p.Generate(5000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := convertBoth(t, instrs, OptionsNone())
	st, err := Diff(a, b, champtrace.RulesOriginal, champtrace.RulesOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Identical != st.Instructions {
		t.Fatalf("identical conversions diff: %+v", st)
	}
	if st.SplitMicroOps != 0 || st.BranchTypeChanged != 0 {
		t.Fatalf("spurious differences: %+v", st)
	}
}

func TestDiffBaseUpdateSplits(t *testing.T) {
	p := synth.PublicProfile(synth.Crypto, 0) // high BaseUpdateFrac
	instrs, err := p.Generate(8000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := convertBoth(t, instrs, Options{BaseUpdate: true})
	st, err := Diff(a, b, champtrace.RulesOriginal, champtrace.RulesOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if st.SplitMicroOps == 0 {
		t.Fatal("no splits detected on a writeback-heavy trace")
	}
	if st.Instructions != uint64(len(a)) {
		t.Fatalf("aligned %d of %d instructions", st.Instructions, len(a))
	}
}

func TestDiffCallStackChangesBranchTypes(t *testing.T) {
	p := synth.PublicProfile(synth.Server, 3) // BLR-X30 subset
	instrs, err := p.Generate(20000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := convertBoth(t, instrs, Options{CallStack: true})
	st, err := Diff(a, b, champtrace.RulesOriginal, champtrace.RulesOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if st.BranchTypeChanged == 0 {
		t.Fatal("call-stack produced no branch-type changes on a BLR-X30 trace")
	}
	if st.MemAddrsChanged != 0 {
		t.Errorf("call-stack touched memory slots: %+v", st)
	}
}

func TestDiffFlagRegChangesDests(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 2)
	instrs, err := p.Generate(8000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := convertBoth(t, instrs, Options{FlagReg: true})
	st, err := Diff(a, b, champtrace.RulesOriginal, champtrace.RulesOriginal)
	if err != nil {
		t.Fatal(err)
	}
	if st.DstRegsChanged == 0 {
		t.Fatal("flag-reg changed no destination sets")
	}
	if st.SplitMicroOps != 0 {
		t.Errorf("flag-reg should not split: %+v", st)
	}
}

func TestDiffMisalignment(t *testing.T) {
	a := []*champtrace.Instruction{{IP: 0x1000}, {IP: 0x1004}}
	// Early end.
	if _, err := Diff(a, a[:1], champtrace.RulesOriginal, champtrace.RulesOriginal); err == nil {
		t.Error("early end not reported")
	}
	// Trailing records.
	b := []*champtrace.Instruction{{IP: 0x1000}, {IP: 0x1004}, {IP: 0x1008}}
	if _, err := Diff(a, b, champtrace.RulesOriginal, champtrace.RulesOriginal); err == nil {
		t.Error("trailing records not reported")
	}
	// Wrong IPs entirely.
	c := []*champtrace.Instruction{{IP: 0x9000}, {IP: 0x9004}}
	if _, err := Diff(a, c, champtrace.RulesOriginal, champtrace.RulesOriginal); err == nil {
		t.Error("misalignment not reported")
	}
}
