package btb

// ITTAGE indirect target predictor, after Seznec's 64-Kbyte ITTAGE (JWAC-2):
// tagged tables indexed with geometrically increasing target-path history
// select the longest matching entry; its stored target is the prediction,
// guarded by a confidence counter.

type ittageEntry struct {
	tag    uint16
	target uint64
	conf   int8 // -2..1: predict when >= 0
	useful uint8
}

// ITTAGEConfig parameterizes the predictor.
type ITTAGEConfig struct {
	// TableBits is log2 of each tagged table size.
	TableBits int
	// TagBits is the partial tag width.
	TagBits int
	// HistLengths are the path-history lengths, shortest first.
	HistLengths []int
}

// DefaultITTAGEConfig approximates the 64 KB configuration.
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{
		TableBits:   10,
		TagBits:     12,
		HistLengths: []int{4, 8, 16, 32, 64},
	}
}

// ITTAGE predicts indirect branch targets from path history.
type ITTAGE struct {
	cfg ITTAGEConfig
	// tables holds all tagged tables in one flat array: table i occupies
	// entries [i<<TableBits, (i+1)<<TableBits).
	tables  []ittageEntry
	nTables int
	// path is a hash of recent taken-branch targets.
	path uint64
	// base is a simple last-target table for branches with no tag match.
	base     []uint64
	baseMask uint64
	// scratch from Predict for the matching Update.
	provider    int
	providerIdx uint64
}

// NewITTAGE builds an ITTAGE predictor.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	n := len(cfg.HistLengths)
	return &ITTAGE{
		cfg:      cfg,
		tables:   make([]ittageEntry, n<<uint(cfg.TableBits)),
		nTables:  n,
		base:     make([]uint64, 1<<cfg.TableBits),
		baseMask: uint64(1<<cfg.TableBits) - 1,
	}
}

// entry returns the entry at idx of tagged table i in the flat array.
func (it *ITTAGE) entry(table int, idx uint64) *ittageEntry {
	return &it.tables[uint64(table)<<uint(it.cfg.TableBits)|idx]
}

func (it *ITTAGE) index(pc uint64, table int) uint64 {
	h := it.foldPath(it.cfg.HistLengths[table], it.cfg.TableBits)
	return ((pc >> 2) ^ h) & (uint64(1<<it.cfg.TableBits) - 1)
}

func (it *ITTAGE) tag(pc uint64, table int) uint16 {
	h := it.foldPath(it.cfg.HistLengths[table], it.cfg.TagBits)
	return uint16(((pc >> 2) ^ (pc >> 12) ^ (h << 1)) & (uint64(1<<it.cfg.TagBits) - 1))
}

// foldPath hashes the low histLen nibbles of the path register down to
// width bits.
func (it *ITTAGE) foldPath(histLen, width int) uint64 {
	h := it.path & ((1 << uint(min(histLen, 63))) - 1)
	out := uint64(0)
	for h != 0 {
		out ^= h & ((1 << uint(width)) - 1)
		h >>= uint(width)
	}
	return out
}

// Predict returns the predicted target for the indirect branch at pc, and
// whether the predictor had anything to say.
func (it *ITTAGE) Predict(pc uint64) (uint64, bool) {
	it.provider = -1
	for i := it.nTables - 1; i >= 0; i-- {
		idx := it.index(pc, i)
		e := it.entry(i, idx)
		if e.tag == it.tag(pc, i) && e.target != 0 {
			if e.conf >= 0 {
				it.provider = i
				it.providerIdx = idx
				return e.target, true
			}
			if it.provider < 0 {
				it.provider = i
				it.providerIdx = idx
			}
		}
	}
	if t := it.base[(pc>>2)&it.baseMask]; t != 0 {
		return t, true
	}
	return 0, false
}

// Update trains the predictor with the actual target and advances the path
// history. It must follow the Predict call for the same branch.
func (it *ITTAGE) Update(pc, target uint64) {
	if it.provider >= 0 {
		e := it.entry(it.provider, it.providerIdx)
		if e.target == target {
			if e.conf < 1 {
				e.conf++
			}
			if e.useful < 3 {
				e.useful++
			}
		} else {
			if e.conf > -2 {
				e.conf--
			}
			if e.conf < 0 {
				e.target = target
				e.conf = 0
			}
			// Allocate in a longer-history table.
			it.allocate(pc, target, it.provider+1)
		}
	} else {
		it.allocate(pc, target, 0)
	}
	it.base[(pc>>2)&it.baseMask] = target
	it.pushPath(target)
}

func (it *ITTAGE) allocate(pc, target uint64, from int) {
	for i := from; i < it.nTables; i++ {
		idx := it.index(pc, i)
		e := it.entry(i, idx)
		if e.useful == 0 {
			*e = ittageEntry{tag: it.tag(pc, i), target: target, conf: 0}
			return
		}
		e.useful--
	}
}

func (it *ITTAGE) pushPath(target uint64) {
	it.path = (it.path << 3) ^ ((target >> 2) & 0x3f) ^ (it.path >> 61)
}

// PushPath records a taken branch target in the path history without
// training any table — used for non-indirect taken branches so the path
// reflects the full control flow.
func (it *ITTAGE) PushPath(target uint64) { it.pushPath(target) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
