package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// ResultCache is the content-addressed store for sweep Results. A nil
// *ResultCache in SweepConfig disables caching entirely (the -no-cache
// path), which reproduces the uncached engine exactly.
type ResultCache = resultcache.Cache[Result]

// CacheDirEnv overrides the default cache directory when set.
const CacheDirEnv = "TRACEREBASE_CACHE_DIR"

// DefaultCacheDir resolves the cache root: $TRACEREBASE_CACHE_DIR if set,
// else <user cache dir>/tracerebase (~/.cache/tracerebase on Linux).
func DefaultCacheDir() (string, error) {
	if dir := os.Getenv(CacheDirEnv); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("experiments: no cache dir: %w", err)
	}
	return filepath.Join(base, "tracerebase"), nil
}

// OpenResultCache opens the result cache rooted at dir ("" = the
// DefaultCacheDir resolution) with the given size bound (0 = the
// resultcache default of 1 GiB).
func OpenResultCache(dir string, maxBytes int64) (*ResultCache, error) {
	if dir == "" {
		var err error
		dir, err = DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	return resultcache.Open[Result](
		resultcache.Config{Dir: dir, MaxBytes: maxBytes},
		resultcache.GobCodec[Result]{},
	)
}

// NewResultCache builds a result cache over an already-composed backend
// (e.g. a memory/disk/remote Tiered stack for the serve daemon). The
// cache owns the backend: Close flushes and closes it.
func NewResultCache(b resultcache.Backend) *ResultCache {
	return resultcache.New[Result](b, resultcache.GobCodec[Result]{})
}

// rulesFor returns the ChampSim branch-deduction rules a converted trace
// needs: traces carrying the branch-regs improvement require the §3.2.2
// patched rules. Every simulation in this package pairs rules with options
// through this single function, so cache keys cannot desynchronize from
// the dispatch path.
func rulesFor(opts core.Options) champtrace.RuleSet {
	if opts.BranchRegs {
		return champtrace.RulesPatched
	}
	return champtrace.RulesOriginal
}

// DevelopConfigFor returns the develop-model simulator configuration used
// for a trace converted under opts — the sweep's per-variant config.
func DevelopConfigFor(opts core.Options) sim.Config {
	return sim.ConfigDevelop(rulesFor(opts))
}

// profileHash hashes the canonical profile encoding (which embeds
// synth.GeneratorVersion).
func profileHash(p *synth.Profile) resultcache.Key {
	return resultcache.NewHasher("tracerebase/profile").
		Bytes(p.AppendCanonical(nil)).Sum()
}

// optionsHash hashes the converter improvement set.
func optionsHash(opts core.Options) resultcache.Key {
	return resultcache.NewHasher("tracerebase/options").
		U64(uint64(opts.Bits())).Sum()
}

// configHash hashes the full simulator configuration identity.
func configHash(cfg sim.Config) resultcache.Key {
	return resultcache.NewHasher("tracerebase/simconfig").
		Str(cfg.Identity()).Sum()
}

// cacheKey derives the content address of one (trace, variant, config)
// Result. The key covers everything the Result is a function of: the
// synthetic profile (with generator version), the converter improvement
// set, the full simulator configuration, the run lengths, the record
// schema version, and the code fingerprint. See DESIGN.md "Result cache"
// for the invalidation rules.
func cacheKey(p *synth.Profile, opts core.Options, cfg sim.Config, instructions int, warmup uint64) resultcache.Key {
	ph := profileHash(p)
	oh := optionsHash(opts)
	ch := configHash(cfg)
	return resultcache.NewHasher("tracerebase/result").
		U64(resultcache.SchemaVersion).
		Str(resultcache.Fingerprint()).
		Bytes(ph[:]).
		Bytes(oh[:]).
		Bytes(ch[:]).
		U64(uint64(instructions)).
		U64(warmup).
		Sum()
}

// CacheKeyInfo breaks a cache key into its components for display —
// `traceinfo -cachekey` prints it so unexpected misses can be debugged
// component by component.
type CacheKeyInfo struct {
	// ProfileHash covers the synthetic profile and generator version.
	ProfileHash string
	// OptionsHash covers the converter improvement set.
	OptionsHash string
	// ConfigHash covers the full simulator configuration identity.
	ConfigHash string
	// ConfigIdentity is the human-readable pre-image of ConfigHash.
	ConfigIdentity string
	// Fingerprint identifies the code of the running binary.
	Fingerprint string
	// SchemaVersion is the cache record schema generation.
	SchemaVersion int
	// Instructions and Warmup are the run lengths mixed into the key.
	Instructions int
	Warmup       uint64
	// Key is the final content address.
	Key string
}

// CacheKey computes the full key derivation for one (trace, variant,
// config) cell.
func CacheKey(p synth.Profile, opts core.Options, cfg sim.Config, instructions int, warmup uint64) CacheKeyInfo {
	ph := profileHash(&p)
	oh := optionsHash(opts)
	ch := configHash(cfg)
	return CacheKeyInfo{
		ProfileHash:    ph.String(),
		OptionsHash:    oh.String(),
		ConfigHash:     ch.String(),
		ConfigIdentity: cfg.Identity(),
		Fingerprint:    resultcache.Fingerprint(),
		SchemaVersion:  resultcache.SchemaVersion,
		Instructions:   instructions,
		Warmup:         warmup,
		Key:            cacheKey(&p, opts, cfg, instructions, warmup).String(),
	}
}
