package iprefetch

import "tracerebase/internal/champtrace"

// JIP is Run-Jump-Run's "bouquet of instruction pointer jumpers" (Gupta,
// Kalani & Panda). Instruction fetch alternates RUNs of sequential lines
// with JUMPs to discontinuous lines. JIP records, per line, the jump target
// that followed it and the run length after the jump, so that on reaching a
// line it can prefetch the whole upcoming run plus the next jump target.
type JIP struct {
	Base
	table    map[uint64]*jipEntry
	maxLines int
	lastLine uint64
	// jumpFrom is the line that initiated the current run (the source of
	// the last discontinuity); its entry accumulates the run length.
	jumpFrom uint64
	runLen   int
}

type jipEntry struct {
	// jumpTo is the discontinuous line that followed this line.
	jumpTo uint64
	// runLen is the sequential run length observed after jumpTo.
	runLen int
}

// NewJIP returns a JIP prefetcher.
func NewJIP() *JIP {
	return &JIP{table: make(map[uint64]*jipEntry, 8192), maxLines: 8192}
}

// Name implements Prefetcher.
func (p *JIP) Name() string { return "jip" }

// OnAccess implements Prefetcher.
func (p *JIP) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	if p.lastLine != 0 {
		if lineAddr == p.lastLine+LineSize {
			// Sequential step: extend the run credited to the line
			// whose jump started it.
			p.runLen++
			if e, ok := p.table[p.jumpFrom]; ok && e.runLen < p.runLen {
				e.runLen = p.runLen
			}
		} else if lineAddr != p.lastLine {
			// Discontinuity: record the jump on the line we left.
			p.train(p.lastLine, lineAddr)
			p.jumpFrom = p.lastLine
			p.runLen = 0
		}
	}
	p.lastLine = lineAddr

	// Prefetch the recorded jump target and its run.
	if e, ok := p.table[lineAddr]; ok && e.jumpTo != 0 {
		buf = append(buf, e.jumpTo)
		run := e.runLen
		if run > 4 {
			run = 4
		}
		for i := 1; i <= run; i++ {
			buf = append(buf, e.jumpTo+uint64(i)*LineSize)
		}
	}
	if !hit {
		buf = append(buf, lineAddr+LineSize)
	}
	return buf
}

func (p *JIP) train(from, to uint64) {
	e, ok := p.table[from]
	if !ok {
		if len(p.table) >= p.maxLines {
			// Table full: clear it wholesale — a deterministic global reset
			// (cheap and rare) stands in for hardware index eviction, where
			// per-entry map deletion would be iteration-order dependent and
			// break run-to-run determinism.
			clear(p.table)
		}
		e = &jipEntry{}
		p.table[from] = e
	}
	if e.jumpTo != to {
		e.jumpTo = to
		e.runLen = 0
	}
}

// OnBranch implements Prefetcher: jumper pointers are refreshed from the
// retired branch stream, which sees the true control flow even when fetch
// stalls hide discontinuities from OnAccess.
func (p *JIP) OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64 {
	from := pc &^ uint64(LineSize-1)
	to := target &^ uint64(LineSize-1)
	if from != to {
		p.train(from, to)
	}
	return buf
}
