// Package resultcache is a content-addressed store for deterministic
// computation results, layered as in-memory map → on-disk sharded store →
// single-flight compute. The whole simulation pipeline is a pure function
// of its canonical inputs (the conformance subsystem proves runs are
// bit-reproducible), so a result keyed on the hash of those inputs can be
// served from disk instead of recomputed — turning warm sweep runs into
// near-instant replays, and giving a future server a substrate for
// deduplicating overlapping requests.
//
// Keys are derived with Hasher, a deterministic canonical encoder: every
// field is written with an unambiguous length- or width-delimited encoding,
// so distinct input tuples cannot collide by concatenation. Callers mix in
// Fingerprint(), which identifies the code that produced the result, and
// SchemaVersion, which identifies the record encoding; either changing
// invalidates every prior key.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"runtime/debug"
	"sync"
)

// SchemaVersion identifies the cache record layout and the semantics of
// the values stored in it. Bump it whenever the stored payload encoding
// changes incompatibly; old entries are then treated as misses.
const SchemaVersion = 1

// KeySize is the size of a cache key in bytes (SHA-256).
const KeySize = sha256.Size

// Key is a content hash addressing one cached result.
type Key [KeySize]byte

// String returns the lowercase hex form of the key.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("resultcache: bad key %q: %w", s, err)
	}
	if len(b) != KeySize {
		return k, fmt.Errorf("resultcache: bad key length %d", len(b))
	}
	copy(k[:], b)
	return k, nil
}

// Hasher builds a cache key from a sequence of typed fields. Every write
// is width- or length-delimited, so the encoding of a field sequence is
// unambiguous: ("ab","c") and ("a","bc") hash differently. The zero value
// is not usable; construct with NewHasher.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a key derivation in the given domain. The domain
// separates key spaces (e.g. "tracerebase/result") so identical field
// sequences hashed for different purposes never collide.
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Str(domain)
	return h
}

func (h *Hasher) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.h.Write(b[:])
}

// Str writes a length-prefixed string field.
func (h *Hasher) Str(s string) *Hasher {
	h.u64(uint64(len(s)))
	io.WriteString(h.h, s)
	return h
}

// Bytes writes a length-prefixed byte-slice field.
func (h *Hasher) Bytes(b []byte) *Hasher {
	h.u64(uint64(len(b)))
	h.h.Write(b)
	return h
}

// U64 writes a fixed-width unsigned field.
func (h *Hasher) U64(v uint64) *Hasher {
	h.u64(v)
	return h
}

// I64 writes a fixed-width signed field.
func (h *Hasher) I64(v int64) *Hasher {
	h.u64(uint64(v))
	return h
}

// F64 writes a float field by its exact IEEE-754 bit pattern.
func (h *Hasher) F64(v float64) *Hasher {
	h.u64(math.Float64bits(v))
	return h
}

// Bool writes a boolean field.
func (h *Hasher) Bool(v bool) *Hasher {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
	return h
}

// Sum finalizes the key. The Hasher may not be written to afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// SumHex finalizes and returns the hex form directly.
func (h *Hasher) SumHex() string { k := h.Sum(); return k.String() }

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

// Fingerprint identifies the code of the running binary for cache
// invalidation. Resolution order:
//
//  1. A clean VCS stamp from debug.ReadBuildInfo ("vcs:<revision>") — the
//     normal case for binaries built from a committed tree.
//  2. A hash of the executable file itself ("bin:<sha256-prefix>") — the
//     documented fallback for unversioned builds (dirty trees, `go run`,
//     `go test` binaries). Any code change produces a different binary and
//     therefore a different fingerprint, at the cost of one file hash per
//     process.
//  3. The constant "unversioned" when the executable cannot be read (the
//     last resort; such builds share one key space, so stale entries must
//     be cleared manually after code changes).
//
// The result is computed once per process.
func Fingerprint() string {
	fingerprintOnce.Do(func() { fingerprint = computeFingerprint() })
	return fingerprint
}

func computeFingerprint() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var revision, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if revision != "" && modified == "false" {
			return "vcs:" + revision
		}
	}
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "bin:" + hex.EncodeToString(h.Sum(nil)[:16])
			}
		}
	}
	return "unversioned"
}
