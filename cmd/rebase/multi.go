// Multi-core co-scheduled runs: rebase -cores N -coschedule <spec>[,<spec>...]
// simulates each named scenario on N lockstep cores over a shared LLC and
// reports per-core and aggregate IPC for every converter variant.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"tracerebase/internal/experiments"
	"tracerebase/internal/synth"
)

// runCoSchedules drives one RunMultiSweep per scenario and renders the
// results (text or JSON), plus the same telemetry trailer as single-core
// runs: per-core skip fractions, cache activity, wall clock, -bench-json.
func runCoSchedules(specs []string, cfg experiments.SweepConfig, jsonOut, quiet bool, benchPath, expFlag string, step int) int {
	start := time.Now()
	var all []experiments.MultiTraceResult
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		workloads, err := synth.CoSchedule(spec, cfg.Cores)
		if err != nil {
			return fail("coschedule: %v", err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "coschedule %s: %d cores x %d variants, %d instructions/core\n",
				spec, cfg.Cores, len(experiments.Variants()), cfg.Instructions)
		}
		res, err := experiments.RunMultiSweep(spec, workloads, cfg)
		if err != nil {
			return fail("coschedule %s: %v", spec, err)
		}
		all = append(all, res)
	}

	if jsonOut {
		report := experiments.NewJSONReport(cfg)
		report.Multi = all
		if err := report.Write(os.Stdout); err != nil {
			return fail("json: %v", err)
		}
	} else {
		for _, res := range all {
			experiments.RenderCoSchedule(os.Stdout, res)
			fmt.Println()
		}
	}

	elapsed := time.Since(start)
	multi := multiSkipBlock(cfg.Cores, all)
	multi.LLCPolicy = cfg.LLCPolicy
	multi.MemBW = cfg.MemBandwidth
	if !quiet {
		for _, sc := range multi.Scenarios {
			parts := make([]string, 0, len(sc.CoreSkip))
			for _, s := range sc.CoreSkip {
				parts = append(parts, fmt.Sprintf("c%d %.1f%%", s.Core, 100*s.Fraction))
			}
			fmt.Fprintf(os.Stderr, "skip %s: cycles jumped per core: %s\n", sc.Scenario, strings.Join(parts, ", "))
		}
		if cfg.MultiCache != nil {
			s := cfg.MultiCache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits (%d mem, %d disk), %d misses, %d corrupt, %d evicted, %.1f MB read, %.1f MB written (%s)\n",
				s.Hits, s.MemHits, s.DiskHits, s.Misses, s.Corrupt, s.Evictions,
				float64(s.BytesRead)/1e6, float64(s.BytesWritten)/1e6, cfg.MultiCache.Dir())
		}
		printSlabStats(cfg.Slabs)
		fmt.Fprintf(os.Stderr, "total: %.1fs\n", elapsed.Seconds())
	}
	if benchPath != "" {
		if err := writeBenchJSON(benchPath, expFlag, step, cfg, elapsed, nil, nil, multi); err != nil {
			return fail("bench-json: %v", err)
		}
	}
	return 0
}

// benchMultiBlock groups the multi-core shape of a -coschedule run with its
// per-scenario, per-core cycle-skipping telemetry.
type benchMultiBlock struct {
	Cores     int                  `json:"cores"`
	LLCPolicy string               `json:"llc_policy,omitempty"`
	MemBW     uint64               `json:"mem_bandwidth,omitempty"`
	Scenarios []benchMultiScenario `json:"scenarios"`
}

type benchMultiScenario struct {
	Scenario string          `json:"scenario"`
	CoreSkip []benchCoreSkip `json:"core_skip"`
}

// benchCoreSkip is benchSkip per core instead of per category: cycle-skip
// counters summed over every variant of one scenario, for one core.
type benchCoreSkip struct {
	Core          int     `json:"core"`
	Workload      string  `json:"workload"`
	Cycles        uint64  `json:"cycles"`
	SkippedCycles uint64  `json:"skipped_cycles"`
	Skips         uint64  `json:"skips"`
	Fraction      float64 `json:"fraction"`
}

// multiSkipBlock aggregates per-core skip counters across variants for each
// scenario, iterating variants in canonical order for determinism.
func multiSkipBlock(cores int, results []experiments.MultiTraceResult) *benchMultiBlock {
	b := &benchMultiBlock{Cores: cores}
	for _, res := range results {
		sc := benchMultiScenario{Scenario: res.Scenario, CoreSkip: make([]benchCoreSkip, cores)}
		for i := range sc.CoreSkip {
			sc.CoreSkip[i] = benchCoreSkip{Core: i, Workload: res.Workloads[i].Name}
		}
		for _, v := range experiments.Variants() {
			r, ok := res.Results[v.Name]
			if !ok {
				continue
			}
			for i, cs := range r.Cores {
				sc.CoreSkip[i].Cycles += cs.Cycles
				sc.CoreSkip[i].SkippedCycles += cs.SkippedCycles
				sc.CoreSkip[i].Skips += cs.CycleSkips
			}
		}
		for i := range sc.CoreSkip {
			if sc.CoreSkip[i].Cycles > 0 {
				sc.CoreSkip[i].Fraction = float64(sc.CoreSkip[i].SkippedCycles) / float64(sc.CoreSkip[i].Cycles)
			}
		}
		b.Scenarios = append(b.Scenarios, sc)
	}
	return b
}
