package core_test

import (
	"fmt"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
)

// Example converts the paper's running example — LDR X1, [X0, #12]!, a load
// with pre-indexing increment — with the original converter and with the
// memory improvements, showing the destination registers the original drops
// and the micro-op split base-update introduces.
func Example() {
	ldr := &cvp.Instruction{
		PC:        0x1000,
		Class:     cvp.ClassLoad,
		EffAddr:   0x800c, // base 0x8000 + 12
		MemSize:   8,
		SrcRegs:   []uint8{0},           // X0, the base
		DstRegs:   []uint8{1, 0},        // X1 from memory, X0 written back
		DstValues: []uint64{42, 0x800c}, // pre-index: new base == address
	}

	original := core.New(core.OptionsNone())
	for _, rec := range original.Convert(ldr.Clone()) {
		fmt.Printf("original: ip=%#x srcs=%v dsts=%v mem=%#x\n",
			rec.IP, nonzero(rec.SrcRegs[:]), nonzero(rec.DestRegs[:]), rec.SrcMem[0])
	}

	improved := core.New(core.OptionsMemory())
	for _, rec := range improved.Convert(ldr.Clone()) {
		mem := uint64(0)
		if rec.IsLoad() {
			mem = rec.SrcMem[0]
		}
		fmt.Printf("improved: ip=%#x srcs=%v dsts=%v mem=%#x\n",
			rec.IP, nonzero(rec.SrcRegs[:]), nonzero(rec.DestRegs[:]), mem)
	}

	// Output:
	// original: ip=0x1000 srcs=[1 2] dsts=[2] mem=0x800c
	// improved: ip=0x1000 srcs=[1] dsts=[1] mem=0x0
	// improved: ip=0x1002 srcs=[1] dsts=[2] mem=0x800c
}

func nonzero(regs []uint8) []uint8 {
	var out []uint8
	for _, r := range regs {
		if r != champtrace.RegInvalid {
			out = append(out, r)
		}
	}
	return out
}

// ExampleParseImprovement shows the artifact-style improvement names the
// converter CLI accepts.
func ExampleParseImprovement() {
	for _, name := range []string{"No_imp", "imp_call-stack", "Branch_imps", "All_imps"} {
		opts, err := core.ParseImprovement(name)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%-16s -> %s\n", name, opts)
	}
	// Output:
	// No_imp           -> No_imp
	// imp_call-stack   -> call-stack
	// Branch_imps      -> Branch_imps
	// All_imps         -> All_imps
}
