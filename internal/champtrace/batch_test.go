package champtrace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

func randomRecords(n int, seed int64) []*Instruction {
	r := rand.New(rand.NewSource(seed))
	out := make([]*Instruction, n)
	for i := range out {
		var in Instruction
		in.IP = r.Uint64()
		in.IsBranch = r.Intn(2) == 0
		in.Taken = in.IsBranch && r.Intn(2) == 0
		for j := range in.DestRegs {
			in.DestRegs[j] = uint8(r.Intn(256))
		}
		for j := range in.SrcRegs {
			in.SrcRegs[j] = uint8(r.Intn(256))
		}
		for j := range in.DestMem {
			in.DestMem[j] = r.Uint64()
		}
		for j := range in.SrcMem {
			in.SrcMem[j] = r.Uint64()
		}
		out[i] = &in
	}
	return out
}

func drainRecordBatches(t *testing.T, bs BatchSource, batchSize int) []*Instruction {
	t.Helper()
	slab := MakeBatch(batchSize)
	var out []*Instruction
	for {
		n, err := bs.NextBatch(slab)
		if err == io.EOF {
			if n != 0 {
				t.Fatalf("NextBatch returned n=%d with io.EOF", n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("NextBatch returned n=0 with nil error")
		}
		for i := 0; i < n; i++ {
			rec := slab[i]
			out = append(out, &rec)
		}
	}
	if n, err := bs.NextBatch(slab); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF NextBatch = (%d, %v), want (0, io.EOF)", n, err)
	}
	return out
}

// TestBatchSourcesMatch: SliceSource, ValuesSource, Reader, and the generic
// wrapper all produce the identical record stream under batch pulls of any
// size, including a final short batch.
func TestBatchSourcesMatch(t *testing.T) {
	const n = 700
	want := randomRecords(n, 1)

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	slab := make([]Instruction, n)
	for i, in := range want {
		slab[i] = *in
	}

	check := func(name string, got []*Instruction) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", name, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(*got[i], *want[i]) {
				t.Fatalf("%s: record %d differs:\ngot  %+v\nwant %+v", name, i, got[i], want[i])
			}
		}
	}
	for _, batchSize := range []int{1, 11, 512, n, n + 1} {
		check("SliceSource", drainRecordBatches(t, NewSliceSource(want), batchSize))
		check("ValuesSource", drainRecordBatches(t, NewValuesSource(slab), batchSize))
		check("Reader", drainRecordBatches(t, NewReader(bytes.NewReader(buf.Bytes())), batchSize))
		check("sourceBatcher", drainRecordBatches(t, AsBatchSource(recordSourceOnly{NewSliceSource(want)}), batchSize))
	}
}

type recordSourceOnly struct{ src Source }

func (s recordSourceOnly) Next() (*Instruction, error) { return s.src.Next() }

type recordBatchOnly struct{ bs BatchSource }

func (b recordBatchOnly) NextBatch(dst []Instruction) (int, error) { return b.bs.NextBatch(dst) }

// TestReaderNextBatchTruncated: a truncated final record surfaces as an
// error from NextBatch, with the preceding complete records delivered.
func TestReaderNextBatchTruncated(t *testing.T) {
	want := randomRecords(5, 2)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:len(want)*RecordSize-7]
	tr := NewReader(bytes.NewReader(data))
	slab := MakeBatch(16)
	n, err := tr.NextBatch(slab)
	if err == nil || err == io.EOF {
		t.Fatalf("truncated NextBatch error = %v, want truncation error", err)
	}
	if n != len(want)-1 {
		t.Fatalf("truncated NextBatch n = %d, want %d complete records", n, len(want)-1)
	}
}

// TestAsSourceDoubleBuffer: the Source adapter's returned pointer holds its
// record across a batch refill, matching the simulator's lookahead needs.
func TestAsSourceDoubleBuffer(t *testing.T) {
	const n = 300
	want := randomRecords(n, 3)
	for _, batchSize := range []int{2, 64, n + 5} {
		src := AsSource(recordBatchOnly{NewSliceSource(want)}, batchSize)
		var prev *Instruction
		for i := 0; ; i++ {
			in, err := src.Next()
			if err == io.EOF {
				if i != n {
					t.Fatalf("batchSize %d: EOF after %d records, want %d", batchSize, i, n)
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*in, *want[i]) {
				t.Fatalf("batchSize %d: record %d differs", batchSize, i)
			}
			if prev != nil && !reflect.DeepEqual(*prev, *want[i-1]) {
				t.Fatalf("batchSize %d: pointer for record %d was clobbered", batchSize, i-1)
			}
			prev = in
		}
	}
}

// TestValuesSourceReset: Reset rewinds for re-simulation of the same slab.
func TestValuesSourceReset(t *testing.T) {
	want := randomRecords(50, 4)
	slab := make([]Instruction, len(want))
	for i, in := range want {
		slab[i] = *in
	}
	src := NewValuesSource(slab)
	if src.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", src.Len(), len(want))
	}
	for pass := 0; pass < 2; pass++ {
		for i := range want {
			in, err := src.Next()
			if err != nil {
				t.Fatalf("pass %d record %d: %v", pass, i, err)
			}
			if !reflect.DeepEqual(*in, *want[i]) {
				t.Fatalf("pass %d record %d differs", pass, i)
			}
		}
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("pass %d: want io.EOF at end, got %v", pass, err)
		}
		src.Reset()
	}
}
