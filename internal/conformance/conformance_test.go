package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracerebase/internal/synth"
)

func TestCheckTraceAcrossCategories(t *testing.T) {
	for _, p := range goldenProfiles() {
		instrs, err := p.GenerateBatch(1500)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckTrace(instrs, nil); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCheckTraceCatchesMutation(t *testing.T) {
	instrs, err := synth.PublicProfile(synth.ComputeInt, 0).GenerateBatch(200)
	if err != nil {
		t.Fatal(err)
	}
	// A slab with an unencodable record must fail the round-trip check
	// rather than slipping through silently.
	instrs[100].MemSize = 3
	instrs[100].Class = 1 // load
	if err := CheckCVPRoundTrip(instrs); err == nil {
		t.Fatal("round-trip check accepted an unencodable record")
	}
}

func TestSimDeterminism(t *testing.T) {
	if err := CheckSimDeterminism(synth.PublicProfile(synth.Server, 3), 2000, 500); err != nil {
		t.Fatal(err)
	}
}

func TestSweepParallelism(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 0),
		synth.PublicProfile(synth.Server, 3),
	}
	if err := CheckSweepParallelism(profiles, 1500, 300, 4); err != nil {
		t.Fatal(err)
	}
}

func TestROBMonotonic(t *testing.T) {
	if err := CheckROBMonotonic(synth.PublicProfile(synth.ComputeInt, 1), 2000, 500); err != nil {
		t.Fatal(err)
	}
}

func TestCacheMonotonic(t *testing.T) {
	if err := CheckCacheMonotonic(synth.PublicProfile(synth.ComputeFP, 1), 2000, 500); err != nil {
		t.Fatal(err)
	}
}

func TestSelfTestSmallSuite(t *testing.T) {
	var log bytes.Buffer
	err := SelfTest(SelfTestConfig{
		Suite: []synth.Profile{
			synth.PublicProfile(synth.ComputeInt, 0),
			synth.PublicProfile(synth.Server, 3),
		},
		Instructions:    1000,
		SimInstructions: 1000,
		Warmup:          250,
		Log:             &log,
	})
	if err != nil {
		t.Fatalf("selftest failed:\n%s\n%v", log.String(), err)
	}
	if !strings.Contains(log.String(), "all") {
		t.Fatalf("selftest log lacks the summary line:\n%s", log.String())
	}
}

func TestSelfTestFailsOnCorruptGolden(t *testing.T) {
	dir := copyGolden(t)
	path := filepath.Join(dir, "compute_int_0.cvp")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[17] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = SelfTest(SelfTestConfig{
		Suite:           []synth.Profile{synth.PublicProfile(synth.Crypto, 0)},
		Instructions:    500,
		SimInstructions: 500,
		Warmup:          100,
		GoldenFS:        os.DirFS(dir),
	})
	if err == nil {
		t.Fatal("selftest passed on a corrupted golden corpus")
	}
	if !strings.Contains(err.Error(), "compute_int_0") {
		t.Fatalf("failure is not pointed at the corrupt trace: %v", err)
	}
}

func TestValidateTraceFile(t *testing.T) {
	dir := t.TempDir()

	instrs, err := synth.PublicProfile(synth.Server, 3).GenerateBatch(400)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := encodeCVP(instrs)
	if err != nil {
		t.Fatal(err)
	}
	cvpPath := filepath.Join(dir, "trace.cvp")
	if err := os.WriteFile(cvpPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ValidateTraceFile(cvpPath)
	if err != nil {
		t.Fatalf("valid CVP trace rejected: %v", err)
	}
	if rep.Format != "cvp" || rep.Records != 400 {
		t.Fatalf("report = %+v, want cvp/400", rep)
	}

	recs, _, err := convertAllImps(instrs)
	if err != nil {
		t.Fatal(err)
	}
	champPath := filepath.Join(dir, "trace.champsim")
	if err := os.WriteFile(champPath, encodeChamp(recs), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = ValidateTraceFile(champPath)
	if err != nil {
		t.Fatalf("valid ChampSim trace rejected: %v", err)
	}
	if rep.Format != "champsim" || rep.Records != uint64(len(recs)) {
		t.Fatalf("report = %+v, want champsim/%d", rep, len(recs))
	}

	junkPath := filepath.Join(dir, "junk.bin")
	if err := os.WriteFile(junkPath, []byte("definitely not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceFile(junkPath); err == nil {
		t.Fatal("junk file accepted as a trace")
	}

	truncPath := filepath.Join(dir, "trunc.cvp")
	if err := os.WriteFile(truncPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceFile(truncPath); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
