package expstore

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The query language is space-separated key=value tokens:
//
//	category=srv variant=all,none metric=ipc group-by=rob stat=p50,p99
//
// Three keys are reserved: metric names the numeric column to aggregate
// (default ipc), group-by a comma list of identity columns to group rows
// by, and stat a comma list of aggregates (default mean). Every other
// token is a filter: column=value[,value...] matches cells whose column
// equals any listed value. Filters prune whole blocks from footer
// statistics before any column data is read.

// Filter matches a column against a disjunction of literal values.
type Filter struct {
	Col  string
	Vals []string
}

// Query is a parsed query.
type Query struct {
	Filters []Filter
	Metric  string
	GroupBy []string
	Stats   []string
}

// statNames are the supported aggregates, in canonical display order.
var statNames = []string{"count", "sum", "mean", "geomean", "min", "max", "p50", "p90", "p95", "p99"}

// ParseQuery parses the query language, validating column and stat names
// against the schema.
func ParseQuery(src string) (Query, error) {
	q := Query{Metric: "ipc", Stats: []string{"mean"}}
	statSet := make(map[string]bool, len(statNames))
	for _, s := range statNames {
		statSet[s] = true
	}
	for _, tok := range strings.Fields(src) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" || v == "" {
			return q, fmt.Errorf("expstore: token %q is not key=value", tok)
		}
		switch k {
		case "metric":
			if !NumericColumn(v) {
				return q, fmt.Errorf("expstore: metric %q is not a numeric column", v)
			}
			q.Metric = v
		case "group-by":
			for _, col := range strings.Split(v, ",") {
				i, ok := colIndex[col]
				if !ok {
					return q, fmt.Errorf("expstore: unknown group-by column %q", col)
				}
				if columns[i].kind != kindDict && columns[i].kind != kindUint {
					return q, fmt.Errorf("expstore: cannot group by %s column %q", kindName(columns[i].kind), col)
				}
				q.GroupBy = append(q.GroupBy, col)
			}
		case "stat":
			q.Stats = nil
			for _, s := range strings.Split(v, ",") {
				if !statSet[s] {
					return q, fmt.Errorf("expstore: unknown stat %q (have %s)", s, strings.Join(statNames, ", "))
				}
				q.Stats = append(q.Stats, s)
			}
		default:
			if _, ok := colIndex[k]; !ok {
				return q, fmt.Errorf("expstore: unknown column %q", k)
			}
			q.Filters = append(q.Filters, Filter{Col: k, Vals: strings.Split(v, ",")})
		}
	}
	return q, nil
}

func kindName(k colKind) string {
	switch k {
	case kindDict:
		return "string"
	case kindUint:
		return "uint"
	case kindFloat:
		return "float"
	case kindKey:
		return "key"
	}
	return "unknown"
}

// QueryStats reports how much work a query did — the pruning and byte-read
// counters the bench harness and CI smoke test assert on.
type QueryStats struct {
	// BlocksTotal blocks were considered; BlocksPruned were rejected on
	// footer statistics alone; BlocksScanned had columns materialized.
	BlocksTotal   int `json:"blocks_total"`
	BlocksPruned  int `json:"blocks_pruned"`
	BlocksScanned int `json:"blocks_scanned"`
	// BytesTotal is the summed size of all considered block files;
	// BytesRead counts the bytes actually parsed or checksummed: the
	// CRC-covered header prefix and the footer of every considered block
	// (the price of deciding), plus the checked data regions of each
	// materialized column in unpruned blocks. A full scan parses every
	// column of every block. Alignment padding is parsed by neither path
	// and counted for neither.
	BytesTotal int64 `json:"bytes_total"`
	BytesRead  int64 `json:"bytes_read"`
	// ColumnsRead is the number of distinct columns materialized per
	// scanned block (filters ∪ group-by ∪ metric, plus the key column
	// when the scanned set is not provably duplicate-free).
	ColumnsRead int `json:"columns_read"`
	// CellsScanned cells were evaluated; CellsMatched passed the filters;
	// DupDropped of those were duplicate content keys (kept-first).
	CellsScanned int `json:"cells_scanned"`
	CellsMatched int `json:"cells_matched"`
	DupDropped   int `json:"dup_dropped"`
}

// Row is one output group.
type Row struct {
	// Group holds the group-by column values, parallel to Query.GroupBy.
	Group []string
	// Count is the number of cells aggregated; Values parallels
	// Result.StatNames.
	Count  int
	Values []float64
}

// Result is a query's output.
type Result struct {
	Metric    string
	GroupBy   []string
	StatNames []string
	Rows      []Row
	Stats     QueryStats
}

// compiledFilter is a Filter resolved against the schema with values
// parsed per the column's kind.
type compiledFilter struct {
	col  int
	strs map[string]bool
	u64s []uint64
	f64s []float64
	keys []Key
}

type compiledQuery struct {
	q       Query
	filters []compiledFilter
	metric  int
	groups  []int
	need    []int // distinct column indices to materialize, ascending
}

func compile(q Query) (compiledQuery, error) {
	cq := compiledQuery{q: q, metric: colIndex[q.Metric]}
	need := map[int]bool{cq.metric: true}
	for _, f := range q.Filters {
		ci := colIndex[f.Col]
		cf := compiledFilter{col: ci}
		switch columns[ci].kind {
		case kindDict:
			cf.strs = make(map[string]bool, len(f.Vals))
			for _, v := range f.Vals {
				cf.strs[v] = true
			}
		case kindUint:
			for _, v := range f.Vals {
				u, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return cq, fmt.Errorf("expstore: %s=%s: want an unsigned integer", f.Col, v)
				}
				cf.u64s = append(cf.u64s, u)
			}
		case kindFloat:
			for _, v := range f.Vals {
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return cq, fmt.Errorf("expstore: %s=%s: want a float", f.Col, v)
				}
				cf.f64s = append(cf.f64s, x)
			}
		case kindKey:
			for _, v := range f.Vals {
				raw, err := hex.DecodeString(v)
				if err != nil || len(raw) != KeyBytes {
					return cq, fmt.Errorf("expstore: %s=%s: want %d hex bytes", f.Col, v, KeyBytes)
				}
				var k Key
				copy(k[:], raw)
				cf.keys = append(cf.keys, k)
			}
		}
		cq.filters = append(cq.filters, cf)
		need[ci] = true
	}
	for _, g := range q.GroupBy {
		cq.groups = append(cq.groups, colIndex[g])
		need[colIndex[g]] = true
	}
	for ci := range need {
		cq.need = append(cq.need, ci)
	}
	sort.Ints(cq.need)
	return cq, nil
}

// prune reports whether footer statistics alone prove no cell in the block
// can match every filter.
func (cq *compiledQuery) prune(metas []colMeta) bool {
	for fi := range cq.filters {
		f := &cq.filters[fi]
		m := &metas[f.col]
		possible := false
		switch columns[f.col].kind {
		case kindDict:
			for _, s := range m.dict {
				if f.strs[s] {
					possible = true
					break
				}
			}
		case kindUint:
			for _, v := range f.u64s {
				if v >= m.minU && v <= m.maxU {
					possible = true
					break
				}
			}
		case kindFloat:
			mn, mx := math.Float64frombits(m.minU), math.Float64frombits(m.maxU)
			for _, v := range f.f64s {
				if v >= mn && v <= mx {
					possible = true
					break
				}
			}
		case kindKey:
			for _, k := range f.keys {
				if bytes.Compare(k[:], m.minK[:]) >= 0 && bytes.Compare(k[:], m.maxK[:]) <= 0 {
					possible = true
					break
				}
			}
		}
		if !possible {
			return true
		}
	}
	return false
}

// collector aggregates matching cells into grouped stat rows. Both the
// pruned column path and the brute-force full scan feed the same
// collector, which is what makes their results comparable byte-for-byte.
type collector struct {
	cq *compiledQuery
	// dedup engages the keep-first duplicate filter. The pruned path turns
	// it off when writer lineage proves the scanned set duplicate-free,
	// which is what lets it skip materializing the key column.
	dedup  bool
	seen   map[Key]bool
	groups map[string]*groupAgg
	order  []string
	stats  QueryStats
}

type groupAgg struct {
	group []string
	vals  []float64
}

func newCollector(cq *compiledQuery) *collector {
	return &collector{cq: cq, seen: make(map[Key]bool), groups: make(map[string]*groupAgg)}
}

// add feeds one matching cell. Duplicate content keys — crash leftovers or
// concurrent writers — are kept-first; the engine is deterministic, so
// duplicates carry identical values and the choice cannot change results.
func (c *collector) add(key Key, group []string, v float64) {
	c.stats.CellsMatched++
	if c.dedup {
		if c.seen[key] {
			c.stats.DupDropped++
			return
		}
		c.seen[key] = true
	}
	gk := strings.Join(group, "\x00")
	g := c.groups[gk]
	if g == nil {
		g = &groupAgg{group: group}
		c.groups[gk] = g
		c.order = append(c.order, gk)
	}
	g.vals = append(g.vals, v)
}

func (c *collector) result() *Result {
	res := &Result{
		Metric:    c.cq.q.Metric,
		GroupBy:   c.cq.q.GroupBy,
		StatNames: c.cq.q.Stats,
		Stats:     c.stats,
	}
	// Sort rows by group tuple: uint columns numerically, dict columns
	// lexicographically.
	sort.Slice(c.order, func(i, j int) bool {
		a, b := c.groups[c.order[i]].group, c.groups[c.order[j]].group
		for k := range a {
			if a[k] == b[k] {
				continue
			}
			if columns[c.cq.groups[k]].kind == kindUint {
				ua, _ := strconv.ParseUint(a[k], 10, 64)
				ub, _ := strconv.ParseUint(b[k], 10, 64)
				return ua < ub
			}
			return a[k] < b[k]
		}
		return false
	})
	for _, gk := range c.order {
		g := c.groups[gk]
		sort.Float64s(g.vals)
		row := Row{Group: g.group, Count: len(g.vals)}
		for _, st := range c.cq.q.Stats {
			row.Values = append(row.Values, aggregate(st, g.vals))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// aggregate computes one stat over ascending-sorted values.
func aggregate(stat string, sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	switch stat {
	case "count":
		return float64(n)
	case "sum", "mean":
		s := 0.0
		for _, v := range sorted {
			s += v
		}
		if stat == "mean" {
			return s / float64(n)
		}
		return s
	case "geomean":
		s := 0.0
		for _, v := range sorted {
			if v <= 0 {
				return 0
			}
			s += math.Log(v)
		}
		return math.Exp(s / float64(n))
	case "min":
		return sorted[0]
	case "max":
		return sorted[n-1]
	case "p50", "p90", "p95", "p99":
		p, _ := strconv.Atoi(stat[1:])
		// Nearest-rank percentile.
		idx := int(math.Ceil(float64(p)/100*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return math.NaN()
}

// matchCell evaluates the compiled filters against a fully decoded cell —
// the brute-force path.
func (cq *compiledQuery) matchCell(cell *Cell) bool {
	for fi := range cq.filters {
		f := &cq.filters[fi]
		c := &columns[f.col]
		ok := false
		switch c.kind {
		case kindDict:
			ok = f.strs[*c.str(cell)]
		case kindUint:
			v := *c.u64(cell)
			for _, u := range f.u64s {
				if u == v {
					ok = true
					break
				}
			}
		case kindFloat:
			v := *c.f64(cell)
			for _, x := range f.f64s {
				if x == v {
					ok = true
					break
				}
			}
		case kindKey:
			v := *c.ckey(cell)
			for _, k := range f.keys {
				if k == v {
					ok = true
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// cellGroup renders a decoded cell's group-by values.
func (cq *compiledQuery) cellGroup(cell *Cell) []string {
	group := make([]string, len(cq.groups))
	for i, ci := range cq.groups {
		c := &columns[ci]
		if c.kind == kindDict {
			group[i] = *c.str(cell)
		} else {
			group[i] = strconv.FormatUint(*c.u64(cell), 10)
		}
	}
	return group
}

func (cq *compiledQuery) cellMetric(cell *Cell) float64 {
	c := &columns[cq.metric]
	if c.kind == kindFloat {
		return *c.f64(cell)
	}
	return float64(*c.u64(cell))
}

// dupSuspect reports whether two scanned blocks could share a content key.
// Writer lineage proves most pairs disjoint: blocks of one run are deduped
// by the writer's seen-set, and a run loads every block below its baseSeq
// into that set before appending. Overlapping source-sequence ranges mean
// a compaction output coexists with its crash-leftover inputs. The
// analysis assumes blocks arrive via the writer protocol (flush, compact,
// link-into-place) — hand-copied block files are outside it.
func dupSuspect(a, b *blockRef) bool {
	alo, ahi := a.srcRange()
	blo, bhi := b.srcRange()
	if ahi >= blo && bhi >= alo {
		return true
	}
	if a.bm.runID == b.bm.runID && a.bm.runID != 0 {
		return false
	}
	// Different (or unknown) writers: disjoint only if one run provably
	// started after the other's blocks were all on disk.
	return ahi >= b.bm.baseSeq && bhi >= a.bm.baseSeq
}

// scanNeedsDedup reports whether the scanned set could contain duplicate
// keys — from a block that itself holds duplicates, or from a pair of
// blocks whose lineage cannot prove them disjoint.
func scanNeedsDedup(scan []*blockRef) bool {
	for i, a := range scan {
		if a.bm.mayDup {
			return true
		}
		for _, b := range scan[i+1:] {
			if dupSuspect(a, b) {
				return true
			}
		}
	}
	return false
}

// Query executes q with block pruning and column projection: blocks whose
// footer statistics exclude every filter value are skipped without reading
// any column data, and scanned blocks materialize only the referenced
// columns. The 32-byte key column is materialized only when the scanned
// set is not provably duplicate-free (or a filter names it).
func (s *Store) Query(q Query) (*Result, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	cq, err := compile(q)
	if err != nil {
		return nil, err
	}
	col := newCollector(&cq)
	var scan []*blockRef
	for _, ref := range s.snapshot() {
		r, err := s.acquire(ref)
		if err != nil {
			continue // corrupt blocks were dropped; foreign ones skipped
		}
		col.stats.BlocksTotal++
		col.stats.BytesTotal += ref.size
		// Deciding costs the checked header prefix and the footer.
		col.stats.BytesRead += blockCheckedLen + r.h.footerLen
		if cq.prune(r.metas) {
			col.stats.BlocksPruned++
			continue
		}
		scan = append(scan, r)
	}
	keyCol := colIndex["key"]
	col.dedup = scanNeedsDedup(scan)
	need := cq.need
	if col.dedup {
		hasKey := false
		for _, ci := range need {
			hasKey = hasKey || ci == keyCol
		}
		if !hasKey {
			need = append(append([]int{}, need...), keyCol)
			sort.Ints(need)
		}
	}
	col.stats.ColumnsRead = len(need)
	for _, r := range scan {
		cols, err := s.materialize(r, need)
		if err != nil {
			continue // dropped as corrupt mid-query; its cells reconvert
		}
		col.stats.BlocksScanned++
		for _, ci := range need {
			col.stats.BytesRead += r.metas[ci].length
		}
		var keys []Key
		if kd := cols[keyCol]; kd != nil {
			keys = kd.keys
		}
		for i := 0; i < r.h.cells; i++ {
			col.stats.CellsScanned++
			if !cq.match(cols, r.metas, i) {
				continue
			}
			group := make([]string, len(cq.groups))
			for gi, ci := range cq.groups {
				group[gi] = cols[ci].render(&r.metas[ci], i)
			}
			var key Key
			if keys != nil {
				key = keys[i]
			}
			col.add(key, group, cols[cq.metric].metric(i))
		}
	}
	return col.result(), nil
}

// colData is one materialized column, in whichever representation its kind
// decodes to.
type colData struct {
	idx  []uint32
	u64s []uint64
	f64s []float64
	keys []Key
}

func (d *colData) render(m *colMeta, i int) string {
	if d.idx != nil {
		return m.dict[d.idx[i]]
	}
	return strconv.FormatUint(d.u64s[i], 10)
}

func (d *colData) metric(i int) float64 {
	if d.f64s != nil {
		return d.f64s[i]
	}
	return float64(d.u64s[i])
}

// materialize decodes the requested columns of a mapped block; any column
// checksum failure condemns the whole block (removed, counted, warned).
func (s *Store) materialize(r *blockRef, need []int) (map[int]*colData, error) {
	out := make(map[int]*colData, len(need))
	for _, ci := range need {
		m := &r.metas[ci]
		d := &colData{}
		var err error
		switch columns[ci].kind {
		case kindDict:
			d.idx, err = materializeDict(r.data, m, r.h.cells)
		case kindUint:
			d.u64s, err = materializeUint(r.data, m, r.h.cells)
		case kindFloat:
			d.f64s, err = materializeFloat(r.data, m, r.h.cells)
		case kindKey:
			d.keys, err = materializeKeys(r.data, m, r.h.cells)
		}
		if err != nil {
			s.mu.Lock()
			s.dropCorrupt(r, err)
			s.removeRefLocked(r)
			s.mu.Unlock()
			return nil, err
		}
		out[ci] = d
	}
	return out, nil
}

// match evaluates the compiled filters against cell i of materialized
// columns.
func (cq *compiledQuery) match(cols map[int]*colData, metas []colMeta, i int) bool {
	for fi := range cq.filters {
		f := &cq.filters[fi]
		d := cols[f.col]
		ok := false
		switch columns[f.col].kind {
		case kindDict:
			ok = f.strs[metas[f.col].dict[d.idx[i]]]
		case kindUint:
			for _, u := range f.u64s {
				if u == d.u64s[i] {
					ok = true
					break
				}
			}
		case kindFloat:
			for _, x := range f.f64s {
				if x == d.f64s[i] {
					ok = true
					break
				}
			}
		case kindKey:
			for _, k := range f.keys {
				if k == d.keys[i] {
					ok = true
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// FullScan executes q by brute force: every block fully decoded, every
// cell evaluated, no pruning and no projection. It is the query engine's
// correctness oracle — Query must produce identical rows — and the
// baseline the bench harness compares pruned reads against.
func (s *Store) FullScan(q Query) (*Result, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	cq, err := compile(q)
	if err != nil {
		return nil, err
	}
	col := newCollector(&cq)
	col.dedup = true
	col.stats.ColumnsRead = len(columns)
	for _, ref := range s.snapshot() {
		r, err := s.acquire(ref)
		if err != nil {
			continue
		}
		cells, err := DecodeBlock(r.data)
		if err != nil {
			s.mu.Lock()
			s.dropCorrupt(ref, err)
			s.removeRefLocked(ref)
			s.mu.Unlock()
			continue
		}
		col.stats.BlocksTotal++
		col.stats.BlocksScanned++
		col.stats.BytesTotal += ref.size
		// Parsed bytes: header prefix, footer, and every column region —
		// everything but alignment padding, which neither path examines.
		col.stats.BytesRead += blockCheckedLen + r.h.footerLen
		for ci := range r.metas {
			col.stats.BytesRead += r.metas[ci].length
		}
		for i := range cells {
			col.stats.CellsScanned++
			cell := &cells[i]
			if !cq.matchCell(cell) {
				continue
			}
			col.add(cell.Key, cq.cellGroup(cell), cq.cellMetric(cell))
		}
	}
	return col.result(), nil
}

// ScanCells decodes every serveable block in order and returns all cells,
// duplicates included — the multiset tests and equivalence oracles build
// on it.
func (s *Store) ScanCells() ([]Cell, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	var out []Cell
	for _, ref := range s.snapshot() {
		r, err := s.acquire(ref)
		if err != nil {
			continue
		}
		cells, err := DecodeBlock(r.data)
		if err != nil {
			s.mu.Lock()
			s.dropCorrupt(ref, err)
			s.removeRefLocked(ref)
			s.mu.Unlock()
			continue
		}
		out = append(out, cells...)
	}
	return out, nil
}

// Cells fetches the given content keys, keep-first across blocks. Blocks
// whose key-range statistics exclude every wanted key are skipped; a block
// is fully decoded only if its key column actually contains one. This is
// the figure pipeline's read-back path: after a sweep it rehydrates every
// cell it just appended (or deduped against) from the store, making the
// engine the query layer's first consumer.
func (s *Store) Cells(keys []Key) (map[Key]Cell, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	want := make(map[Key]bool, len(keys))
	sorted := make([]Key, 0, len(keys))
	for _, k := range keys {
		if !want[k] {
			want[k] = true
			sorted = append(sorted, k)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i][:], sorted[j][:]) < 0 })
	out := make(map[Key]Cell, len(keys))
	ki := colIndex["key"]
	for _, ref := range s.snapshot() {
		if len(out) == len(want) {
			break
		}
		r, err := s.acquire(ref)
		if err != nil {
			continue
		}
		m := &r.metas[ki]
		// Prune on the footer's key range: first wanted key ≥ min must
		// also be ≤ max for any overlap.
		i := sort.Search(len(sorted), func(i int) bool {
			return bytes.Compare(sorted[i][:], m.minK[:]) >= 0
		})
		if i == len(sorted) || bytes.Compare(sorted[i][:], m.maxK[:]) > 0 {
			continue
		}
		blockKeys, err := materializeKeys(r.data, m, r.h.cells)
		if err != nil {
			s.mu.Lock()
			s.dropCorrupt(ref, err)
			s.removeRefLocked(ref)
			s.mu.Unlock()
			continue
		}
		hit := false
		for _, k := range blockKeys {
			if want[k] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		cells, err := DecodeBlock(r.data)
		if err != nil {
			s.mu.Lock()
			s.dropCorrupt(ref, err)
			s.removeRefLocked(ref)
			s.mu.Unlock()
			continue
		}
		for i := range cells {
			k := cells[i].Key
			if want[k] {
				if _, dup := out[k]; !dup {
					out[k] = cells[i]
				}
			}
		}
	}
	return out, nil
}
