// Package sim is the facade over the ChampSim-class simulator: it bundles
// the two processor configurations the paper evaluates on and a one-call
// Run API consuming ChampSim trace sources.
//
//   - ConfigDevelop models the main/develop ChampSim used in §4.1–§4.3:
//     a decoupled front-end, 16K-entry BTB, 64 KB TAGE-SC-L and ITTAGE,
//     an ip-stride prefetcher at the L1D and a next-line prefetcher at the
//     L2 (the Icelake-like setup).
//   - ConfigIPC1 models the ChampSim version used for the first Instruction
//     Prefetching Championship in §4.4: a coupled front-end, an ideal
//     branch-target predictor, and a pluggable L1I instruction prefetcher.
package sim

import (
	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/cpu"
	"tracerebase/internal/sim/mem"
)

// Config is re-exported so callers configure the simulator through this
// package.
type Config = cpu.Config

// Stats is the simulation result.
type Stats = cpu.Stats

// ConfigDevelop returns the paper's main-branch ChampSim model (§4).
// The branch rule set must match the converter: traces produced with the
// branch-regs improvement need champtrace.RulesPatched.
func ConfigDevelop(rules champtrace.RuleSet) Config {
	return Config{
		Name:            "develop",
		FetchWidth:      6,
		DispatchWidth:   6,
		IssueWidth:      6,
		RetireWidth:     6,
		ROBSize:         352,
		SQSize:          72,
		FTQSize:         64,
		DecodeQueue:     48,
		DecodeLatency:   5,
		RedirectPenalty: 8,
		Decoupled:       true,
		Rules:           rules,
		Predictor:       "tage-sc-l",
		BTBEntries:      16384,
		BTBWays:         8,
		RASSize:         64,
		UseITTAGE:       true,
		Hierarchy:       mem.DefaultHierarchyConfig(),
		L1DPrefetcher:   "ip-stride",
		L2Prefetcher:    "next-line",
		L1IPrefetcher:   "none",
		UseTLBs:         true,
	}
}

// ConfigIPC1 returns the IPC-1 contest model (§4.4): coupled front-end,
// ideal target predictor, and the named instruction prefetcher at the L1I.
// The championship ChampSim predates the decoupled front-end, which is why
// the paper warns its prefetcher speedups shrink under ConfigDevelop.
func ConfigIPC1(iprefetcher string, rules champtrace.RuleSet) Config {
	return Config{
		Name:            "ipc1",
		FetchWidth:      4,
		DispatchWidth:   4,
		IssueWidth:      4,
		RetireWidth:     4,
		ROBSize:         256,
		SQSize:          48,
		FTQSize:         8,
		DecodeQueue:     32,
		DecodeLatency:   4,
		RedirectPenalty: 1,
		Decoupled:       false,
		Rules:           rules,
		Predictor:       "tage",
		BTBEntries:      8192,
		BTBWays:         8,
		RASSize:         64,
		UseITTAGE:       false,
		IdealTargets:    true,
		Hierarchy:       mem.DefaultHierarchyConfig(),
		L1DPrefetcher:   "none",
		L2Prefetcher:    "none",
		L1IPrefetcher:   iprefetcher,
		UseTLBs:         true,
	}
}

// Run simulates src under cfg, measuring after warmup instructions and
// stopping after maxInstructions retire (0 = run the trace to the end).
func Run(src champtrace.Source, cfg Config, warmup, maxInstructions uint64) (Stats, error) {
	p, err := cpu.New(cfg)
	if err != nil {
		return Stats{}, err
	}
	return p.Run(src, warmup, maxInstructions)
}

// Checkpoint is a compact serialized snapshot of warmed microarchitectural
// state, resumable into any configuration sharing the producing
// configuration's WarmIdentity.
type Checkpoint = cpu.Checkpoint

// Checkpointable reports whether cfg's components all support the snapshot
// codec — i.e. whether WarmCheckpoint can succeed for it. The standard
// models qualify; IPC-1 models carrying a stateful instruction prefetcher
// without snapshot support do not.
func Checkpointable(cfg Config) bool {
	p, err := cpu.New(cfg)
	if err != nil {
		return false
	}
	return p.Checkpointable()
}

// WarmCheckpoint functionally warms the first n instructions of src under
// cfg's warm policy and returns the resulting checkpoint.
func WarmCheckpoint(src champtrace.Source, cfg Config, n uint64) (Checkpoint, error) {
	p, err := cpu.New(cfg)
	if err != nil {
		return Checkpoint{}, err
	}
	return p.WarmTo(src, n)
}

// RunFrom simulates src under cfg resuming from ckpt: the checkpointed
// prefix is discarded from src (conversion only), the warmed state is
// restored, and simulation proceeds exactly as Run would after its warm-up.
// The checkpoint must come from a configuration with the same WarmIdentity.
func RunFrom(src champtrace.Source, cfg Config, ckpt Checkpoint, maxInstructions uint64) (Stats, error) {
	p, err := cpu.New(cfg)
	if err != nil {
		return Stats{}, err
	}
	return p.RunFrom(src, ckpt, maxInstructions)
}
