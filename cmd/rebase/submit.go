package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tracerebase/internal/server"
)

// runSubmit is the `rebase submit` subcommand: the daemon client. It
// posts a job, follows the NDJSON event stream, writes the assembled
// output to stdout (byte-identical to the batch CLI), and reports which
// tier served it on stderr.
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("rebase submit", flag.ExitOnError)
	var (
		baseURL      = fs.String("url", "http://127.0.0.1:8344", "daemon base URL")
		exp          = fs.String("exp", "all", "experiment: table1, fig1..fig5, table2, table3, ablation, char, or all")
		instrs       = fs.Int("instructions", 150000, "instructions per trace")
		warmup       = fs.Uint64("warmup", 50000, "warm-up instructions per trace")
		step         = fs.Int("step", 1, "use every step-th trace of each suite (1 = all)")
		noSkip       = fs.Bool("no-skip", false, "disable event-horizon cycle skipping")
		jsonOut      = fs.Bool("json", false, "request the JSON document instead of text")
		sample       = fs.Bool("sample", false, "SMARTS-style interval sampling")
		samplePeriod = fs.Uint64("sample-period", 12500, "sampled mode: instructions per sampling period")
		sampleDetail = fs.Uint64("sample-detail", 2500, "sampled mode: detailed instructions per interval")
		sampleWarm   = fs.Uint64("sample-warm", 2500, "sampled mode: fully-warmed instructions ahead of each interval")
		status       = fs.Bool("status", false, "print the daemon status document and exit")
		quiet        = fs.Bool("q", false, "suppress progress output")
	)
	fs.Parse(args)

	client := &server.Client{BaseURL: *baseURL}
	if *status {
		st, err := client.Status()
		if err != nil {
			return fail("submit: %v", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(st)
		return 0
	}

	spec := server.JobSpec{
		Exp:          *exp,
		Step:         *step,
		Instructions: *instrs,
		Warmup:       *warmup,
		NoSkip:       *noSkip,
		JSON:         *jsonOut,
		Sample:       *sample,
	}
	if *sample {
		spec.SamplePeriod = *samplePeriod
		spec.SampleDetail = *sampleDetail
		spec.SampleWarm = *sampleWarm
	}
	if !*quiet {
		client.OnEvent = func(ev server.Event) {
			switch ev.Type {
			case "started":
				fmt.Fprintf(os.Stderr, "job started\n")
			case "progress":
				fmt.Fprintf(os.Stderr, "\r%3d/%3d traces", ev.Done, ev.Total)
				if ev.Done == ev.Total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	res, err := client.Submit(spec)
	if err != nil {
		return fail("submit: %v", err)
	}
	os.Stdout.Write(res.Output)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "served: %s in %.6fs\n", res.Served, res.ServerSeconds)
	}
	return 0
}
