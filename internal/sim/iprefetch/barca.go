package iprefetch

import "tracerebase/internal/champtrace"

// Barca is Barça, the Branch Agnostic Region Searching Algorithm (Jiménez
// et al.). Instead of following individual branches, it tracks instruction
// footprints at REGION granularity (512 B = 8 lines here): when fetch
// enters a region, the recorded footprint of that region — and the region
// most often entered next — are prefetched wholesale.
type Barca struct {
	Base
	regions    map[uint64]*barcaRegion
	maxRegions int
	curRegion  uint64
}

type barcaRegion struct {
	// footprint marks the lines of the region that were fetched.
	footprint uint16
	// nextRegion is the region fetch moved to afterwards.
	nextRegion uint64
}

const barcaRegionShift = 10 // 1 KB regions, 16 lines each

// NewBarca returns a Barça prefetcher.
func NewBarca() *Barca {
	return &Barca{regions: make(map[uint64]*barcaRegion, 4096), maxRegions: 4096}
}

// Name implements Prefetcher.
func (p *Barca) Name() string { return "barca" }

func regionOf(lineAddr uint64) uint64 { return lineAddr >> barcaRegionShift }

// OnAccess implements Prefetcher.
func (p *Barca) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	reg := regionOf(lineAddr)
	lineInReg := (lineAddr >> 6) & 15

	r, ok := p.regions[reg]
	if !ok {
		if len(p.regions) >= p.maxRegions {
			// Table full: clear it wholesale — a deterministic global reset
			// (cheap and rare) stands in for hardware index eviction, where
			// per-entry map deletion would be iteration-order dependent and
			// break run-to-run determinism.
			clear(p.regions)
		}
		r = &barcaRegion{}
		p.regions[reg] = r
	}
	r.footprint |= 1 << lineInReg

	if reg != p.curRegion {
		// Region transition: link the old region to the new one and
		// search (prefetch) the new region's recorded footprint plus
		// its successor region.
		if old, ok := p.regions[p.curRegion]; ok && p.curRegion != 0 {
			old.nextRegion = reg
		}
		p.curRegion = reg
		buf = p.searchRegion(reg, lineAddr, buf)
		if r.nextRegion != 0 && r.nextRegion != reg {
			buf = p.searchRegion(r.nextRegion, 0, buf)
		}
	} else if !hit {
		buf = append(buf, lineAddr+LineSize)
	}
	return buf
}

// searchRegion appends the footprint lines of the region to buf, skipping
// the line that triggered the search.
func (p *Barca) searchRegion(reg uint64, trigger uint64, buf []uint64) []uint64 {
	r, ok := p.regions[reg]
	if !ok {
		return buf
	}
	base := reg << barcaRegionShift
	for b := uint64(0); b < 16; b++ {
		line := base + b*LineSize
		if line != trigger && r.footprint&(1<<b) != 0 {
			buf = append(buf, line)
		}
	}
	return buf
}

// OnBranch implements Prefetcher: a taken branch into a new region kicks
// off the region search early, branch-agnostically — the type of branch is
// irrelevant, only the region transition matters.
func (p *Barca) OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64 {
	treg := regionOf(target &^ uint64(LineSize-1))
	if treg == regionOf(pc&^uint64(LineSize-1)) {
		return buf
	}
	return p.searchRegion(treg, 0, buf)
}
