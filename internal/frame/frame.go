// Package frame holds the self-validating record framing shared by every
// on-disk store in the tree: the result cache's TRRC records (and their
// HTTP wire form), the compiled-trace slab store's checksums, and the
// experiment store's block footers. A frame binds a payload to the 32-byte
// content key it was stored under — magic, version, embedded key, length,
// and a CRC-32C over the payload — so a renamed, truncated, bit-flipped,
// or misrouted record reads as corrupt instead of as data.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// KeySize is the embedded content-key width (SHA-256).
const KeySize = 32

// ErrCorrupt marks a frame that failed structural validation — truncated,
// checksum mismatch, wrong key, or an unknown version. Callers treat it as
// a miss: the record is discarded and recomputed, never served.
var ErrCorrupt = errors.New("frame: corrupt record")

// castagnoli is the CRC-32C polynomial table every store shares.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// Update extends a running CRC-32C with data, for writers that stream a
// body without buffering it.
func Update(crc uint32, data []byte) uint32 { return crc32.Update(crc, castagnoli, data) }

// Record layout (all integers little-endian):
//
//	magic   [4]byte  caller-chosen, e.g. "TRRC"
//	version uint32
//	key     [32]byte the record's own content key (guards renamed files)
//	paylen  uint64   payload length
//	payload [paylen]byte
//	crc     uint32   CRC-32C (Castagnoli) of payload
const (
	headerSize  = 4 + 4 + KeySize + 8
	trailerSize = 4
	// MinRecordSize is the smallest well-formed record (empty payload).
	MinRecordSize = headerSize + trailerSize
)

// Encode frames payload as a self-validating record for key under the
// given 4-byte magic and version.
func Encode(magic string, version uint32, key [KeySize]byte, payload []byte) []byte {
	if len(magic) != 4 {
		panic(fmt.Sprintf("frame: magic %q must be 4 bytes", magic))
	}
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], version)
	copy(buf[8:8+KeySize], key[:])
	binary.LittleEndian.PutUint64(buf[8+KeySize:headerSize], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], Checksum(payload))
	return buf
}

// Decode validates a record's framing against the expected magic, version,
// and key, and returns the payload (aliasing buf). Any structural problem
// yields an error wrapping ErrCorrupt.
func Decode(magic string, version uint32, key [KeySize]byte, buf []byte) ([]byte, error) {
	if len(buf) < MinRecordSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(buf), MinRecordSize)
	}
	if string(buf[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != version {
		return nil, fmt.Errorf("%w: record version %d, want %d", ErrCorrupt, v, version)
	}
	var stored [KeySize]byte
	copy(stored[:], buf[8:8+KeySize])
	if stored != key {
		return nil, fmt.Errorf("%w: key mismatch (%x stored)", ErrCorrupt, stored)
	}
	paylen := binary.LittleEndian.Uint64(buf[8+KeySize : headerSize])
	if paylen != uint64(len(buf)-MinRecordSize) {
		return nil, fmt.Errorf("%w: payload length %d, record holds %d", ErrCorrupt, paylen, len(buf)-MinRecordSize)
	}
	payload := buf[headerSize : headerSize+int(paylen)]
	crc := binary.LittleEndian.Uint32(buf[headerSize+int(paylen):])
	if got := Checksum(payload); got != crc {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, crc)
	}
	return payload, nil
}
