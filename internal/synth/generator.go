package synth

import (
	"io"
	"math/rand"

	"tracerebase/internal/cvp"
)

// Memory layout constants of the synthetic programs.
const (
	codeBase = 0x0000000000400000
	dataBase = 0x0000000010000000
	// funcPad separates function bodies so icache conflicts are natural.
	funcPad = 64
)

// Architectural register allocation of the generator:
// 0..7 scratch/data, 8..15 address bases, 16..23 chase pointers,
// 24..29 loop counters (short dependency chains feeding most compares),
// 30 link register, 32..47 FP. SP (31) is untouched.
const (
	lrReg      = 30
	counterLo  = 24
	numCounter = 6
)

// counterReg returns the loop-counter register of function entry.
func counterReg(entry uint64) uint8 {
	return counterLo + uint8((entry>>8)%numCounter)
}

// siteKind is the static role of one instruction slot.
type siteKind uint8

const (
	siteALU siteKind = iota
	siteLoad
	siteStore
	siteCond
	siteCall
)

// generator executes a synthetic program skeleton and emits CVP-1 records
// into caller-provided value slabs (see Profile.Stream). It pauses by
// yielding each time the current slab fills or the budget is reached.
type generator struct {
	p Profile
	r *rand.Rand
	n int // budget

	// Streaming sink: emit copies records into slab[fill]; yield hands the
	// filled prefix to the consumer, which installs the next slab before
	// resuming. count is the total emitted; stopped is set when the
	// consumer abandons the stream.
	slab    []cvp.Instruction
	fill    int
	count   int
	stopped bool
	yield   func(int) bool

	regs [cvp.NumRegs]uint64
	// callStack holds return addresses so call/return pairs align.
	callStack []uint64
	// strideState and chaseState are per-site memory progress.
	strideState map[uint64]uint64
	chaseState  map[uint64]uint64
	baseUses    map[uint64]uint64
	// strideBase tracks each writeback site's private pointer stream.
	strideBase map[uint64]uint64
	// dispatchCount rotates polymorphic call targets.
	dispatchCount map[uint64]int
	// lastLoadReg is the destination of the most recent load, feeding
	// data-dependent branches.
	lastLoadReg uint8
	haveLoad    bool
}

// Generate produces n instructions of the profile's trace as individually
// allocated records. The result is deterministic in (Profile, n) and
// identical to draining Stream(n). Callers that can consume value batches
// should prefer Stream or GenerateBatch, which skip the per-record
// allocations.
func (p Profile) Generate(n int) ([]*cvp.Instruction, error) {
	s, err := p.Stream(n)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	out := make([]*cvp.Instruction, 0, n)
	batch := cvp.MakeBatch(cvp.DefaultBatchSize)
	for {
		k, err := s.NextBatch(batch)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < k; i++ {
			out = append(out, batch[i].Clone())
		}
	}
}

// newGenerator builds the generator state for one trace of n instructions.
func newGenerator(p Profile, n int) *generator {
	g := &generator{
		p:             p,
		r:             rand.New(rand.NewSource(p.Seed)),
		n:             n,
		strideState:   map[uint64]uint64{},
		chaseState:    map[uint64]uint64{},
		baseUses:      map[uint64]uint64{},
		strideBase:    map[uint64]uint64{},
		dispatchCount: map[uint64]int{},
	}
	for i := range g.regs {
		g.regs[i] = dataBase + uint64(i)*4096
	}
	return g
}

// run executes the program skeleton until the budget is emitted, yielding
// each filled slab to the consumer.
func (g *generator) run(yield func(int) bool) {
	g.yield = yield
	root := 0
	for !g.full() {
		g.execFunc(root%g.p.NumFuncs, 0)
		root++
	}
	// A partial slab can only remain when the consumer installed a slab
	// larger than the remaining budget and emit never reached a flush
	// boundary; emit flushes exactly at the budget, so fill is 0 here.
	if g.fill > 0 && !g.stopped {
		g.yield(g.fill)
		g.fill = 0
	}
}

// splitmix64 is the per-site static personality hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *generator) hash(pc uint64, salt uint64) uint64 {
	return splitmix64(pc ^ uint64(g.p.Seed)*0x9e3779b97f4a7c15 ^ salt*0xd1b54a32d192ed03)
}

// hfrac maps a hash to [0,1).
func hfrac(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

func (g *generator) funcEntry(f int) uint64 {
	return codeBase + uint64(f)*(uint64(g.p.FuncBodySites)*4+funcPad)
}

// siteKindAt derives the fixed role of a site from its PC. The last two
// sites are reserved for the loop backedge.
func (g *generator) siteKindAt(pc uint64) siteKind {
	x := hfrac(g.hash(pc, 1))
	p := &g.p
	switch {
	case x < p.LoadFrac:
		return siteLoad
	case x < p.LoadFrac+p.StoreFrac:
		return siteStore
	case x < p.LoadFrac+p.StoreFrac+p.CondFrac:
		return siteCond
	case x < p.LoadFrac+p.StoreFrac+p.CondFrac+p.CallFrac:
		return siteCall
	default:
		return siteALU
	}
}

func (g *generator) emit(in *cvp.Instruction) {
	for i, d := range in.DstRegs {
		g.regs[d] = in.DstValues[i]
	}
	if g.full() {
		return
	}
	in.CopyInto(&g.slab[g.fill])
	g.fill++
	g.count++
	if g.count >= g.n || g.fill == len(g.slab) {
		if !g.yield(g.fill) {
			g.stopped = true
		}
		g.fill = 0
	}
}

func (g *generator) full() bool { return g.stopped || g.count >= g.n }

// execFunc runs one invocation of function f's body loop and returns after
// emitting the RET (unless the budget ran out).
func (g *generator) execFunc(f, depth int) {
	entry := g.funcEntry(f)
	// Loop trip counts are stable per function (real loops mostly run a
	// fixed number of iterations), with occasional variation so the exit
	// is not perfectly predictable.
	iters := 1 + int(g.hash(entry, 40)%uint64(2*g.p.LoopIterations))
	if g.r.Float64() < 0.1 {
		iters += g.r.Intn(3) - 1
		if iters < 1 {
			iters = 1
		}
	}
	body := g.p.FuncBodySites - 3 // last three slots: inc+cmp+branch
	ctr := counterReg(entry)
	for it := 0; it < iters && !g.full(); it++ {
		site := 0
		for site < body && !g.full() {
			pc := entry + uint64(site)*4
			switch g.siteKindAt(pc) {
			case siteLoad:
				g.emitLoad(pc)
				site++
			case siteStore:
				g.emitStore(pc)
				site++
			case siteCond:
				site += g.emitCond(pc, site, body)
			case siteCall:
				g.emitCall(pc, depth)
				site++
			default:
				g.emitALU(pc)
				site++
			}
		}
		if g.full() {
			return
		}
		// Backedge: counter increment, flag-setting compare, conditional
		// branch back to the entry — the canonical loop structure. The
		// counter chain is one ALU deep, so the backedge resolves right
		// after dispatch; only data-dependent branches inherit memory
		// latency.
		incPC := entry + uint64(body)*4
		g.emit(&cvp.Instruction{
			PC: incPC, Class: cvp.ClassALU,
			SrcRegs: []uint8{ctr}, DstRegs: []uint8{ctr},
			// The counter counts THIS invocation's iterations, like a
			// real loop induction variable: its per-PC value sequence
			// is 1,2,...,iters, repeating — the bread and butter of
			// stride and FCM value predictors.
			DstValues: []uint64{uint64(it) + 1},
		})
		if g.full() {
			return
		}
		g.emit(&cvp.Instruction{
			PC: incPC + 4, Class: cvp.ClassALU,
			SrcRegs: []uint8{ctr},
		})
		if g.full() {
			return
		}
		taken := it < iters-1
		brPC := incPC + 8
		br := &cvp.Instruction{PC: brPC, Class: cvp.ClassCondBranch, Taken: taken}
		if taken {
			br.Target = entry
		}
		g.emit(br)
	}
	if g.full() || len(g.callStack) == 0 {
		return
	}
	// RET: unconditional indirect reading X30, writing nothing. It sits
	// one slot past the backedge branch, on the function's fallthrough
	// path.
	retPC := entry + uint64(g.p.FuncBodySites)*4
	retAddr := g.callStack[len(g.callStack)-1]
	g.callStack = g.callStack[:len(g.callStack)-1]
	g.emit(&cvp.Instruction{
		PC: retPC, Class: cvp.ClassUncondIndirect, Taken: true, Target: retAddr,
		SrcRegs: []uint8{lrReg},
	})
}

func (g *generator) emitALU(pc uint64) {
	h := g.hash(pc, 2)
	fp := hfrac(g.hash(pc, 3)) < g.p.FPFrac
	if fp {
		d := uint8(32 + h%12)
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassFP,
			SrcRegs:   []uint8{uint8(32 + (h>>8)%16), uint8(32 + (h>>16)%16)},
			DstRegs:   []uint8{d},
			DstValues: []uint64{g.r.Uint64()},
		})
		return
	}
	// Sources avoid X0 almost always: in real code the X0 the original
	// converter pads onto memory instructions is rarely live-in to
	// nearby ALU work, which is why the paper finds mem-regs nearly
	// performance-neutral. A small residue keeps the effect nonzero.
	s1 := uint8(1 + (h>>8)%7)
	if (h>>40)%1024 == 0 {
		s1 = 0
	}
	d := uint8(1 + h%3)
	// A quarter of ALU sites produce per-site constants (immediates,
	// address formation), like real code — the values value predictors
	// live on.
	val := g.regs[s1] + h%97
	if (h>>24)%4 == 0 {
		val = h >> 16
	}
	g.emit(&cvp.Instruction{
		PC: pc, Class: cvp.ClassALU,
		SrcRegs:   []uint8{s1, uint8(1 + (h>>16)%3)},
		DstRegs:   []uint8{d},
		DstValues: []uint64{val},
	})
}

// emitCmp emits a flag-setting compare: an ALU (or FP) instruction with NO
// destination register — the instructions the flag-reg improvement targets.
// If onLoad, one operand is the most recent load's destination.
func (g *generator) emitCmp(pc uint64, salt uint64) {
	h := g.hash(pc, 4+salt)
	// Compares mostly test loop counters and other short-chain values;
	// only the BranchOnLoadFrac share tests freshly loaded data (those
	// are the branches whose mispredictions the flag-reg improvement
	// exposes on the memory critical path).
	a := counterLo + uint8(h%numCounter)
	if g.haveLoad && hfrac(g.hash(pc, 5)) < g.p.BranchOnLoadFrac {
		a = g.lastLoadReg
	}
	cls := cvp.ClassALU
	if hfrac(g.hash(pc, 6)) < g.p.FPFrac {
		cls = cvp.ClassFP
		a = uint8(32 + h%16)
	}
	g.emit(&cvp.Instruction{
		PC: pc, Class: cls,
		SrcRegs: []uint8{a, counterLo + uint8((h>>16)%numCounter)},
	})
}

// emitCond emits a conditional branch site (two slots for the flag-based
// form: CMP then B.cond; one slot for cb(n)z). Returns slots consumed. A
// taken branch skips ahead, so the skipped sites are not emitted.
func (g *generator) emitCond(pc uint64, site, body int) int {
	h := g.hash(pc, 7)
	skip := 1 + int(h%4)

	// A taken branch skips ahead within the body; the landing site must
	// be a real site index (or exactly `body`, the backedge compare).
	// Single-slot forms land at site+skip+1; the flag form (CMP + B.cond)
	// lands at site+skip+2.
	if maxSkip := body - site - 1; skip > maxSkip {
		skip = maxSkip
	}
	if skip < 1 {
		g.emitALU(pc)
		return 1
	}

	// A slice of "conditional" sites are in fact unconditional direct
	// jumps (B #imm), giving the BTB and direct-jump path realistic
	// traffic.
	if hfrac(g.hash(pc, 17)) < 0.08 {
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassUncondDirect, Taken: true,
			Target: pc + uint64(skip+1)*4,
		})
		return skip + 1
	}

	// Outcome: biased sites are highly predictable; the rest follow a
	// random coin with the profile's taken probability.
	var taken bool
	if hfrac(g.hash(pc, 8)) < g.p.BranchBias {
		bias := hfrac(g.hash(pc, 9)) < 0.5
		taken = bias
		if g.r.Float64() < 0.003 {
			taken = !taken
		}
	} else {
		taken = g.r.Float64() < g.p.RandomTakenProb
	}

	if hfrac(g.hash(pc, 10)) < g.p.CondRegFrac {
		// cb(n)z style: the branch itself carries a register source —
		// a counter-like value, or loaded data for the
		// BranchOnLoadFrac share.
		src := counterLo + uint8(h%numCounter)
		if g.haveLoad && hfrac(g.hash(pc, 11)) < g.p.BranchOnLoadFrac {
			src = g.lastLoadReg
		}
		br := &cvp.Instruction{PC: pc, Class: cvp.ClassCondBranch, Taken: taken, SrcRegs: []uint8{src}}
		if taken {
			br.Target = pc + uint64(skip+1)*4
		}
		g.emit(br)
		if taken {
			return skip + 1
		}
		return 1
	}

	// Flag-based: CMP at pc, branch at pc+4. The branch occupies one
	// extra slot, shrinking the allowed skip by one.
	if skip > body-site-2 {
		skip = body - site - 2
	}
	if skip < 1 {
		g.emitALU(pc)
		return 1
	}
	g.emitCmp(pc, 12)
	if g.full() {
		return 2
	}
	brPC := pc + 4
	br := &cvp.Instruction{PC: brPC, Class: cvp.ClassCondBranch, Taken: taken}
	if taken {
		br.Target = brPC + uint64(skip+1)*4
	}
	g.emit(br)
	if taken {
		return skip + 2
	}
	return 2
}

func (g *generator) emitCall(pc uint64, depth int) {
	if depth >= g.p.CallDepth {
		g.emitALU(pc)
		return
	}
	h := g.hash(pc, 13)
	indirect := hfrac(g.hash(pc, 14)) < g.p.IndirectCallFrac

	// Choose the callee from the current phase: programs execute within a
	// hot subset of their functions that drifts over time, which is what
	// lets predictors warm up while the full footprint still thrashes the
	// instruction cache. Direct sites are monomorphic within a phase;
	// indirect sites rotate over DispatchTargets callees.
	window := uint64(256)
	if uint64(g.p.NumFuncs) < window {
		window = uint64(g.p.NumFuncs)
	}
	phase := uint64(g.count/30000) * 37
	callee := int((phase + h%window) % uint64(g.p.NumFuncs))
	if indirect && g.p.DispatchTargets > 1 {
		rot := g.dispatchCount[pc]
		g.dispatchCount[pc] = rot + 1
		callee = int((phase + (h+uint64(rot%g.p.DispatchTargets)*0x61c88647)%window) % uint64(g.p.NumFuncs))
	}
	target := g.funcEntry(callee)
	retAddr := pc + 4

	if !indirect {
		// BL: direct call writing the link register.
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassUncondDirect, Taken: true, Target: target,
			DstRegs: []uint8{lrReg}, DstValues: []uint64{retAddr},
		})
	} else if hfrac(g.hash(pc, 15)) < g.p.BlrX30Frac {
		// BLR X30: reads AND writes the link register — the branch the
		// original converter misclassifies as a return (§3.2.1).
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassUncondIndirect, Taken: true, Target: target,
			SrcRegs: []uint8{lrReg},
			DstRegs: []uint8{lrReg}, DstValues: []uint64{retAddr},
		})
	} else {
		// BLR Xn, with the target register produced by a preceding
		// vtable-style load part of the time (feeding branch-regs).
		n := uint8(16 + h%8)
		if hfrac(g.hash(pc, 16)) < g.p.BranchOnLoadFrac {
			n = g.lastLoadReg
			if !g.haveLoad {
				n = uint8(16 + h%8)
			}
		}
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassUncondIndirect, Taken: true, Target: target,
			SrcRegs: []uint8{n},
			DstRegs: []uint8{lrReg}, DstValues: []uint64{retAddr},
		})
	}
	g.callStack = append(g.callStack, retAddr)
	g.execFunc(callee, depth+1)
}
