package main

import "testing"

func TestParseMemSpec(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"2GiB", 2 << 30, false},
		{"512MiB", 512 << 20, false},
		{"64KiB", 64 << 10, false},
		{"1TiB", 1 << 40, false},
		{"123456", 123456, false},
		{"0", 0, true},
		{"-5MiB", 0, true},
		{"2GB", 0, true}, // decimal suffixes are not accepted
		{"GiB", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := parseMemSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseMemSpec(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("parseMemSpec(%q) = %d, %v, want %d", c.in, got, err, c.want)
		}
	}
}

func TestAutoMemLimit(t *testing.T) {
	// Unclamped: base + per-worker allowance.
	if got, want := autoMemLimit(4, 0), int64(memLimitBase)+4*memLimitPerWork; got != want {
		t.Errorf("autoMemLimit(4, unknown) = %d, want %d", got, want)
	}
	// Clamped to 80% of available.
	avail := int64(1 << 30)
	if got, want := autoMemLimit(16, avail), avail*8/10; got != want {
		t.Errorf("autoMemLimit(16, 1GiB) = %d, want %d", got, want)
	}
	// Floored on a starved machine.
	if got := autoMemLimit(1, 64<<20); got != memLimitFloor {
		t.Errorf("autoMemLimit(1, 64MiB) = %d, want floor %d", got, memLimitFloor)
	}
}
