package champtrace

// BranchType is the six-way branch classification ChampSim derives from the
// registers a trace instruction reads and writes. The trace format itself
// has no branch-type field — only the single is-branch flag — so the
// simulator reconstructs the type from x86 register conventions.
type BranchType uint8

// Branch types, mirroring ChampSim's enumeration.
const (
	NotBranch BranchType = iota
	BranchDirectJump
	BranchIndirect
	BranchConditional
	BranchDirectCall
	BranchIndirectCall
	BranchReturn
	BranchOther
)

func (t BranchType) String() string {
	switch t {
	case NotBranch:
		return "not-branch"
	case BranchDirectJump:
		return "direct-jump"
	case BranchIndirect:
		return "indirect-jump"
	case BranchConditional:
		return "conditional"
	case BranchDirectCall:
		return "direct-call"
	case BranchIndirectCall:
		return "indirect-call"
	case BranchReturn:
		return "return"
	default:
		return "other"
	}
}

// IsCall reports whether the branch type pushes a return address.
func (t BranchType) IsCall() bool { return t == BranchDirectCall || t == BranchIndirectCall }

// RuleSet selects which branch-deduction conditions the simulator applies.
type RuleSet uint8

const (
	// RulesOriginal is ChampSim's stock deduction: a conditional branch
	// must read FLAGS and nothing else (beyond IP), and an indirect jump
	// is any IP-writing branch that reads some other register — without
	// checking whether it also reads IP.
	RulesOriginal RuleSet = iota
	// RulesPatched applies the two ChampSim modifications from §3.2.2:
	// a conditional branch reads either FLAGS or other registers, and an
	// indirect jump additionally must NOT read the instruction pointer.
	// The patch is required for the branch-regs improvement: improved
	// traces carry general-purpose sources on cb(n)z/tb(n)z conditionals,
	// which the original rules would misclassify as indirect jumps.
	RulesPatched
)

func (rs RuleSet) String() string {
	if rs == RulesPatched {
		return "patched"
	}
	return "original"
}

// regProfile summarizes how an instruction uses the special registers.
type regProfile struct {
	readsSP, readsIP, readsFlags, readsOther bool
	writesSP, writesIP                       bool
}

func profile(in *Instruction) regProfile {
	var p regProfile
	for _, r := range in.SrcRegs {
		switch r {
		case RegInvalid:
		case RegStackPointer:
			p.readsSP = true
		case RegFlags:
			p.readsFlags = true
		case RegInstructionPointer:
			p.readsIP = true
		default:
			p.readsOther = true
		}
	}
	for _, r := range in.DestRegs {
		switch r {
		case RegStackPointer:
			p.writesSP = true
		case RegInstructionPointer:
			p.writesIP = true
		}
	}
	return p
}

// Classify deduces the branch type of in under the given rule set. A record
// whose is-branch flag is clear is NotBranch regardless of registers; a
// flagged record that matches no rule is BranchOther.
func Classify(in *Instruction, rules RuleSet) BranchType {
	if !in.IsBranch {
		return NotBranch
	}
	p := profile(in)
	if !p.writesIP {
		return BranchOther
	}
	switch {
	case p.readsIP && !p.readsSP && !p.readsFlags && !p.readsOther && !p.writesSP:
		return BranchDirectJump
	case isIndirectJump(p, rules):
		return BranchIndirect
	case isConditional(p, rules):
		return BranchConditional
	case p.readsIP && p.readsSP && !p.readsFlags && !p.readsOther && p.writesSP:
		return BranchDirectCall
	case p.readsIP && p.readsSP && !p.readsFlags && p.readsOther && p.writesSP:
		return BranchIndirectCall
	case !p.readsIP && p.readsSP && !p.readsFlags && !p.readsOther && p.writesSP:
		return BranchReturn
	default:
		return BranchOther
	}
}

// isIndirectJump mirrors ChampSim's indirect-jump rule, which is evaluated
// BEFORE the conditional rule. The original condition does not look at
// reads-IP, so under RulesOriginal a conditional branch carrying a
// general-purpose source register lands here — the misclassification the
// §3.2.2 ChampSim patch exists to prevent.
func isIndirectJump(p regProfile, rules RuleSet) bool {
	base := !p.readsSP && !p.readsFlags && p.readsOther && !p.writesSP
	if rules == RulesPatched {
		return base && !p.readsIP
	}
	return base
}

func isConditional(p regProfile, rules RuleSet) bool {
	base := p.readsIP && !p.readsSP && !p.writesSP
	if rules == RulesPatched {
		return base && (p.readsFlags || p.readsOther)
	}
	return base && p.readsFlags && !p.readsOther
}
