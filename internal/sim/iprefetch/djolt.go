package iprefetch

import "tracerebase/internal/champtrace"

// DJOLT is the Distant Jolt Prefetcher (Nakamura et al., IPC-1 runner-up).
// It predicts far ahead of fetch by keying prefetches on a signature of the
// recent CALL/RETURN history: deep in a call chain, the signature uniquely
// identifies the code region about to execute, so the lines that missed
// under this signature last time are prefetched "from a distance".
type DJOLT struct {
	Base
	// callHist is the sliding window of recent call/return/distant-jump
	// PCs whose hash forms the signature. A windowed signature (rather
	// than a cumulative one) is what lets the same call chain re-produce
	// the same signature on every traversal.
	callHist [4]uint64
	callPos  int
	// longRange maps a signature to the miss lines observed under it.
	longRange map[uint64]*djoltEntry
	maxSigs   int
	// sigHistory delays training so lines are associated with the
	// signature active a few calls BEFORE they miss.
	sigHistory []uint64
	sigPos     int
	sigLag     int
}

type djoltEntry struct {
	lines [8]uint64
	next  int
}

// NewDJOLT returns a D-JOLT prefetcher.
func NewDJOLT() *DJOLT {
	return &DJOLT{
		longRange:  make(map[uint64]*djoltEntry, 4096),
		maxSigs:    4096,
		sigHistory: make([]uint64, 8),
		sigLag:     2,
	}
}

// Name implements Prefetcher.
func (p *DJOLT) Name() string { return "djolt" }

// OnBranch implements Prefetcher: calls and returns advance the signature
// and trigger the long-range prefetches recorded under the new signature.
func (p *DJOLT) OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64 {
	switch btype {
	case champtrace.BranchDirectCall, champtrace.BranchIndirectCall, champtrace.BranchReturn:
	default:
		// Distant-jump component: large displacement jumps also jolt.
		if diff(pc, target) < 1<<14 {
			return buf
		}
	}
	p.callHist[p.callPos] = pc >> 2
	p.callPos = (p.callPos + 1) % len(p.callHist)
	sig := uint64(0)
	for i := 0; i < len(p.callHist); i++ {
		v := p.callHist[(p.callPos+i)%len(p.callHist)]
		sig = ((sig << 9) | (sig >> 55)) ^ v
	}
	p.sigHistory[p.sigPos] = sig
	p.sigPos = (p.sigPos + 1) % len(p.sigHistory)

	if e, ok := p.longRange[sig]; ok {
		for _, l := range e.lines {
			if l != 0 {
				buf = append(buf, l)
			}
		}
	}
	// Always cover the jump target itself.
	line := target &^ uint64(LineSize-1)
	return append(buf, line, line+LineSize)
}

// OnAccess implements Prefetcher: misses train the long-range table under a
// LAGGED signature — the one active sigLag call-events ago — so that next
// time the prefetch fires early enough to hide the full latency.
func (p *DJOLT) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	if hit {
		return buf
	}
	lagged := p.sigHistory[(p.sigPos-p.sigLag+2*len(p.sigHistory))%len(p.sigHistory)]
	if lagged != 0 {
		p.train(lagged, lineAddr)
	}
	// Small sequential component.
	return append(buf, lineAddr+LineSize)
}

func (p *DJOLT) train(sig, line uint64) {
	e, ok := p.longRange[sig]
	if !ok {
		if len(p.longRange) >= p.maxSigs {
			// Table full: clear it wholesale — a deterministic global reset
			// (cheap and rare) stands in for hardware index eviction, where
			// per-entry map deletion would be iteration-order dependent and
			// break run-to-run determinism.
			clear(p.longRange)
		}
		e = &djoltEntry{}
		p.longRange[sig] = e
	}
	for _, l := range e.lines {
		if l == line {
			return
		}
	}
	e.lines[e.next] = line
	e.next = (e.next + 1) % len(e.lines)
}

func diff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
