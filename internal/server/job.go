package server

import (
	"fmt"
	"strings"

	"tracerebase/internal/experiments"
	"tracerebase/internal/report"
	"tracerebase/internal/resultcache"
)

// validExps is the closed set of experiment names a job may request —
// the same names cmd/rebase -exp accepts.
var validExps = map[string]bool{
	"all": true, "table1": true, "fig1": true, "fig2": true, "fig3": true,
	"fig4": true, "fig5": true, "table2": true, "table3": true,
	"ablation": true, "char": true,
}

// JobSpec is a sweep/table/ablation submission: the request body of
// POST /jobs. Zero values select the batch CLI's defaults (exp=all,
// step=1, instructions=150000, warmup=50000), so {"exp":"fig1"} is a
// complete request. The spec deliberately carries only parameters that
// shape the output bytes — execution knobs (parallelism, cache layout)
// belong to the daemon, keeping one cache key per distinct result.
type JobSpec struct {
	// Exp is the comma-separated experiment list (table1, fig1..fig5,
	// table2, table3, ablation, char, all).
	Exp string `json:"exp,omitempty"`
	// Step uses every step-th trace of each suite.
	Step int `json:"step,omitempty"`
	// Instructions and Warmup are per-trace instruction budgets.
	Instructions int    `json:"instructions,omitempty"`
	Warmup       uint64 `json:"warmup,omitempty"` // 0 selects the 50000 default
	// NoSkip disables event-horizon cycle skipping.
	NoSkip bool `json:"no_skip,omitempty"`
	// JSON selects the JSON document instead of rendered text.
	JSON bool `json:"json,omitempty"`
	// Sample enables SMARTS-style interval sampling with the given
	// geometry (zeros select the CLI defaults: 12500/2500/2500).
	Sample       bool   `json:"sample,omitempty"`
	SamplePeriod uint64 `json:"sample_period,omitempty"`
	SampleDetail uint64 `json:"sample_detail,omitempty"`
	SampleWarm   uint64 `json:"sample_warm,omitempty"`
}

// normalize fills defaults in place and canonicalizes Exp so equivalent
// submissions share one cache key.
func (s *JobSpec) normalize() {
	if s.Exp == "" {
		s.Exp = "all"
	}
	parts := strings.Split(s.Exp, ",")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	s.Exp = strings.Join(parts, ",")
	if s.Step == 0 {
		s.Step = 1
	}
	if s.Instructions == 0 {
		s.Instructions = 150000
	}
	if s.Warmup == 0 {
		s.Warmup = 50000
	}
	if s.Sample {
		if s.SamplePeriod == 0 {
			s.SamplePeriod = 12500
		}
		if s.SampleDetail == 0 {
			s.SampleDetail = 2500
		}
		if s.SampleWarm == 0 {
			s.SampleWarm = 2500
		}
	} else {
		s.SamplePeriod, s.SampleDetail, s.SampleWarm = 0, 0, 0
	}
}

// Validate normalizes the spec and rejects run shapes the batch CLI
// would reject.
func (s *JobSpec) Validate() error {
	s.normalize()
	for _, e := range strings.Split(s.Exp, ",") {
		if !validExps[e] {
			return fmt.Errorf("unknown experiment %q", e)
		}
	}
	if s.Instructions <= 0 {
		return fmt.Errorf("instructions must be positive (got %d)", s.Instructions)
	}
	if s.Warmup >= uint64(s.Instructions) {
		return fmt.Errorf("warmup %d >= instructions %d leaves an empty measurement region", s.Warmup, s.Instructions)
	}
	if s.Step < 1 {
		return fmt.Errorf("step must be >= 1 (got %d)", s.Step)
	}
	if s.Sample {
		if s.SampleDetail >= s.SamplePeriod {
			return fmt.Errorf("sample_detail %d must be below sample_period %d", s.SampleDetail, s.SamplePeriod)
		}
	}
	return nil
}

// Key is the job's content address: every field that shapes the output
// bytes, plus the schema version and binary fingerprint — the same
// discipline the per-cell cache keys follow, so a blob served from any
// tier is the output of this exact code on this exact request.
func (s *JobSpec) Key() resultcache.Key {
	spec := *s
	spec.normalize()
	return resultcache.NewHasher("tracerebase/job").
		U64(resultcache.SchemaVersion).
		Str(resultcache.Fingerprint()).
		Str(spec.Exp).
		I64(int64(spec.Step)).
		I64(int64(spec.Instructions)).
		U64(spec.Warmup).
		Bool(spec.NoSkip).
		Bool(spec.JSON).
		Bool(spec.Sample).
		U64(spec.SamplePeriod).
		U64(spec.SampleDetail).
		U64(spec.SampleWarm).
		Sum()
}

// reportSpec maps the job onto the shared composition's request type.
func (s *JobSpec) reportSpec() report.Spec {
	return report.Spec{Exp: s.Exp, Step: s.Step}
}

// sweepConfig merges the job's result-shaping parameters into the
// daemon's base engine configuration (cache handles, slab store,
// parallelism stay the daemon's).
func (s *JobSpec) sweepConfig(base experiments.SweepConfig) experiments.SweepConfig {
	cfg := base
	cfg.Instructions = s.Instructions
	cfg.Warmup = s.Warmup
	cfg.NoSkip = s.NoSkip
	cfg.SamplePeriod = s.SamplePeriod
	cfg.SampleDetail = s.SampleDetail
	cfg.SampleWarm = s.SampleWarm
	return cfg
}
