package synth

import (
	"encoding/binary"
	"math"
)

// GeneratorVersion identifies the trace-generation algorithm for cache
// keying. Bump it whenever a change to the generator (or to Profile's
// interpretation) can alter the instructions produced for an existing
// profile; cached results keyed under the old version then become
// unreachable instead of stale.
const GeneratorVersion = 1

// AppendCanonical appends a stable binary encoding of the profile to b and
// returns the extended slice. Every field is encoded fixed-width (strings
// length-prefixed, floats by IEEE-754 bits) in declaration order, prefixed
// with GeneratorVersion, so two profiles encode identically iff they
// generate identical traces under the same generator version. New fields
// must be appended at the end alongside a GeneratorVersion bump.
func (p *Profile) AppendCanonical(b []byte) []byte {
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	str := func(s string) { u64(uint64(len(s))); b = append(b, s...) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	u64(GeneratorVersion)
	str(p.Name)
	str(string(p.Category))
	u64(uint64(p.Seed))
	u64(uint64(p.NumFuncs))
	u64(uint64(p.FuncBodySites))
	u64(uint64(p.LoopIterations))
	u64(uint64(p.CallDepth))
	f64(p.LoadFrac)
	f64(p.StoreFrac)
	f64(p.CondFrac)
	f64(p.CallFrac)
	f64(p.FPFrac)
	f64(p.BranchBias)
	f64(p.RandomTakenProb)
	f64(p.CondRegFrac)
	f64(p.BranchOnLoadFrac)
	f64(p.IndirectCallFrac)
	f64(p.BlrX30Frac)
	u64(uint64(p.DispatchTargets))
	f64(p.BaseUpdateFrac)
	f64(p.PreIndexFrac)
	f64(p.LoadPairFrac)
	f64(p.PrefetchFrac)
	f64(p.ChaseFrac)
	f64(p.StrideFrac)
	f64(p.CrossLineFrac)
	f64(p.ZVAFrac)
	u64(p.DataFootprint)
	return b
}
