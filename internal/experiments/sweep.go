// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the geomean and per-trace IPC impact of each conversion
// improvement (Figs. 1–2), the branch-MPKI and base-update correlations
// (Figs. 3–4), the call-stack fix (Fig. 5), the improvement summary
// (Table 1), the IPC-1 trace characterization (Table 2), and the IPC-1
// prefetcher ranking on competition vs fixed traces (Table 3).
//
// The sweep — every trace converted under every improvement set and
// simulated — is shared: Figs. 1–5 all derive from one sweep result.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// Variant is one converter configuration of the evaluation.
type Variant struct {
	// Name is the artifact-style label ("No_imp", "imp_flag-regs", ...).
	Name string
	// Opts is the improvement set applied.
	Opts core.Options
}

// Variant names used throughout the experiments.
const (
	VariantNone         = "No_imp"
	VariantMemRegs      = "mem-regs"
	VariantBaseUpdate   = "base-update"
	VariantMemFootprint = "mem-footprint"
	VariantMemory       = "Memory_imps"
	VariantFlagReg      = "flag-reg"
	VariantBranchRegs   = "branch-regs"
	VariantCallStack    = "call-stack"
	VariantBranch       = "Branch_imps"
	VariantAll          = "All_imps"
)

// Variants returns the ten converter configurations of Figs. 1–2: the
// original converter, each improvement individually, the Memory and Branch
// sets, and all improvements together.
func Variants() []Variant {
	return []Variant{
		{VariantNone, core.OptionsNone()},
		{VariantMemRegs, core.Options{MemRegs: true}},
		{VariantBaseUpdate, core.Options{BaseUpdate: true}},
		{VariantMemFootprint, core.Options{MemFootprint: true}},
		{VariantMemory, core.OptionsMemory()},
		{VariantFlagReg, core.Options{FlagReg: true}},
		{VariantBranchRegs, core.Options{BranchRegs: true}},
		{VariantCallStack, core.Options{CallStack: true}},
		{VariantBranch, core.OptionsBranch()},
		{VariantAll, core.OptionsAll()},
	}
}

// figureVariants selects a subset of Variants by name.
func figureVariants(names ...string) []Variant {
	all := Variants()
	var out []Variant
	for _, n := range names {
		for _, v := range all {
			if v.Name == n {
				out = append(out, v)
			}
		}
	}
	return out
}

// Result is the outcome of simulating one trace under one variant.
type Result struct {
	// IPC is instructions per cycle in the measured region.
	IPC float64
	// Sim carries the full simulator statistics.
	Sim sim.Stats
	// Conv carries the converter statistics.
	Conv core.Stats
}

// TraceResult bundles all variant results for one trace.
type TraceResult struct {
	Profile synth.Profile
	Results map[string]Result
}

// Delta returns the IPC change (ratio-1) of variant v relative to the
// original converter.
func (tr TraceResult) Delta(v string) float64 {
	base := tr.Results[VariantNone].IPC
	if base == 0 {
		return 0
	}
	return tr.Results[v].IPC/base - 1
}

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	// Instructions is the per-trace dynamic instruction count;
	// Warmup instructions are excluded from statistics.
	Instructions int
	Warmup       uint64
	// Variants lists the converter configurations to run; nil means all
	// ten.
	Variants []Variant
	// Parallelism bounds concurrent (trace, variant) simulations;
	// 0 = NumCPU.
	Parallelism int
	// Progress, when non-nil, is called after each trace completes all of
	// its variants. It is invoked outside the sweep's internal locks, so a
	// slow callback (rendering, logging) never stalls the workers; calls
	// for different traces may therefore arrive out of order, but each
	// carries its own done count.
	Progress func(done, total int)
}

// DefaultSweepConfig returns the configuration used by the rebase CLI:
// 150k instructions per trace with a 50k warm-up. The paper runs the
// original traces (tens of millions of instructions) to completion without
// warm-up; the warm-up here stands in for the steady state a full-length
// trace reaches on its own.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{Instructions: 150000, Warmup: 50000}
}

func (c *SweepConfig) fill() {
	if c.Instructions <= 0 {
		c.Instructions = 150000
	}
	if c.Variants == nil {
		c.Variants = Variants()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// runVariant converts instrs under v and simulates the result on the
// develop-branch model, streaming conversion into the simulator batch by
// batch instead of materializing the converted trace. instrs is read-only
// and may be shared by concurrent callers.
func runVariant(instrs []cvp.Instruction, v Variant, warmup uint64) (Result, error) {
	cs := core.NewConverterSource(cvp.NewValuesSource(instrs), v.Opts)
	defer cs.Close()
	// Traces carrying branch-regs need the §3.2.2 ChampSim patch.
	rules := champtrace.RulesOriginal
	if v.Opts.BranchRegs {
		rules = champtrace.RulesPatched
	}
	st, err := sim.Run(cs, sim.ConfigDevelop(rules), warmup, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{IPC: st.IPC(), Sim: st, Conv: cs.Stats()}, nil
}

// RunTrace generates one trace and simulates it under every variant on the
// develop-branch model.
func RunTrace(p synth.Profile, cfg SweepConfig) (TraceResult, error) {
	cfg.fill()
	instrs, err := p.GenerateBatch(cfg.Instructions)
	if err != nil {
		return TraceResult{}, err
	}
	tr := TraceResult{Profile: p, Results: make(map[string]Result, len(cfg.Variants))}
	for _, v := range cfg.Variants {
		res, err := runVariant(instrs, v, cfg.Warmup)
		if err != nil {
			return tr, fmt.Errorf("experiments: %s/%s: %w", p.Name, v.Name, err)
		}
		tr.Results[v.Name] = res
	}
	return tr, nil
}

// traceState is the per-trace shared state of a sweep: the generated
// instruction slab (produced once, read-only across the trace's variant
// workers) and the count of variants still outstanding.
type traceState struct {
	once   sync.Once
	instrs []cvp.Instruction
	err    error
	left   atomic.Int32
}

// RunSweep simulates every profile under every variant with a bounded pool
// of workers draining a (trace, variant) work queue: each trace is
// generated exactly once — by whichever worker gets there first — and its
// instruction slab is shared read-only across the trace's variant
// simulations, so sweep parallelism is trace×variant-wide rather than
// trace-wide.
//
// Results are assembled deterministically: out[i] always corresponds to
// profiles[i] regardless of completion order. On failure the returned
// error is the errors.Join of every per-(trace, variant) failure, and out
// still carries every result that did succeed — a trace whose generation
// failed has an empty Results map, a trace with a failed variant is
// missing only that variant's entry.
func RunSweep(profiles []synth.Profile, cfg SweepConfig) ([]TraceResult, error) {
	cfg.fill()
	nv := len(cfg.Variants)
	states := make([]traceState, len(profiles))
	cells := make([][]Result, len(profiles))
	cellErrs := make([][]error, len(profiles))
	for i := range profiles {
		states[i].left.Store(int32(nv))
		cells[i] = make([]Result, nv)
		cellErrs[i] = make([]error, nv)
	}

	type job struct{ ti, vi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				st := &states[j.ti]
				st.once.Do(func() {
					st.instrs, st.err = profiles[j.ti].GenerateBatch(cfg.Instructions)
				})
				if st.err == nil {
					res, err := runVariant(st.instrs, cfg.Variants[j.vi], cfg.Warmup)
					if err != nil {
						cellErrs[j.ti][j.vi] = fmt.Errorf("experiments: %s/%s: %w",
							profiles[j.ti].Name, cfg.Variants[j.vi].Name, err)
					} else {
						cells[j.ti][j.vi] = res
					}
				}
				if st.left.Add(-1) == 0 {
					st.instrs = nil // last variant done: release the trace
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					if cfg.Progress != nil {
						cfg.Progress(d, len(profiles))
					}
				}
			}
		}()
	}
	// Trace-major order: all of a trace's variants are adjacent in the
	// queue, so at most ~Parallelism traces have live instruction slabs.
	for ti := range profiles {
		for vi := 0; vi < nv; vi++ {
			jobs <- job{ti, vi}
		}
	}
	close(jobs)
	wg.Wait()

	out := make([]TraceResult, len(profiles))
	var errs []error
	for ti := range profiles {
		out[ti] = TraceResult{Profile: profiles[ti], Results: make(map[string]Result, nv)}
		if states[ti].err != nil {
			errs = append(errs, fmt.Errorf("experiments: generate %s: %w",
				profiles[ti].Name, states[ti].err))
			continue
		}
		for vi, v := range cfg.Variants {
			if err := cellErrs[ti][vi]; err != nil {
				errs = append(errs, err)
				continue
			}
			out[ti].Results[v.Name] = cells[ti][vi]
		}
	}
	return out, errors.Join(errs...)
}
