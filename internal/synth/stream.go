package synth

import (
	"io"
	"iter"

	"tracerebase/internal/cvp"
)

// Stream is a pull-based generator of one synthetic trace: the program
// skeleton executes only as far as the consumer pulls, emitting records
// directly into caller-provided value slabs. It implements cvp.BatchSource;
// wrap it with cvp.AsSource for record-at-a-time consumers.
//
// A Stream holds a paused coroutine; call Close when abandoning it before
// EOF. NextBatch and Close must not be called concurrently. Instructions
// are written into the caller's slabs, so the Stream retains no references
// to emitted records.
type Stream struct {
	g    *generator
	next func() (int, bool)
	stop func()
	err  error
}

// Stream starts generating n instructions of the profile's trace. The
// emitted sequence is deterministic in (Profile, n) and identical to
// Generate(n).
func (p Profile) Stream(n int) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = 0
	}
	g := newGenerator(p, n)
	s := &Stream{g: g}
	s.next, s.stop = iter.Pull(func(yield func(int) bool) { g.run(yield) })
	return s, nil
}

// NextBatch implements cvp.BatchSource: it fills dst with up to len(dst)
// freshly generated instructions, reusing dst's slice capacity (use
// cvp.MakeBatch for an allocation-free slab), and returns the number
// filled, or (0, io.EOF) once the trace's n instructions are exhausted.
func (s *Stream) NextBatch(dst []cvp.Instruction) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if len(dst) == 0 {
		return 0, nil
	}
	s.g.slab = dst
	n, ok := s.next()
	s.g.slab = nil
	if !ok || n == 0 {
		s.err = io.EOF
		s.stop()
		return 0, io.EOF
	}
	return n, nil
}

// Close releases the generator. It is idempotent; after Close, NextBatch
// returns io.EOF.
func (s *Stream) Close() {
	if s.err == nil {
		s.err = io.EOF
	}
	s.stop()
}

// GenerateBatch produces the trace as one contiguous value slab — the
// representation the sweep engine shares read-only across variant workers.
// It is deterministic in (Profile, n) and element-wise identical to
// Generate(n).
func (p Profile) GenerateBatch(n int) ([]cvp.Instruction, error) {
	s, err := p.Stream(n)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	slab := cvp.MakeBatch(n)
	filled := 0
	for filled < n {
		k, err := s.NextBatch(slab[filled:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		filled += k
	}
	return slab[:filled], nil
}
