// Command traceinfo characterizes a trace file: the instruction mix, branch
// composition, register usage and memory behaviour that drive the paper's
// conversion analysis. It understands both CVP-1 traces (-format cvp) and
// ChampSim traces (-format champsim).
//
//	traceinfo -t srv_0.cvp.gz
//	traceinfo -t srv_0.champsim -format champsim -rules patched
//
// With -cachekey it instead prints the result-cache key derivation for a
// synthetic trace and variant — every component hash (profile, options,
// simulator config, code fingerprint) plus the final content address — so
// an unexpected cache miss can be debugged by diffing components against
// an earlier run:
//
//	traceinfo -cachekey -profile srv_0 -variant All_imps
//	traceinfo -cachekey -profile server_023 -variant No_imp -model ipc1 -prefetcher epi
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

func main() {
	var (
		tracePath = flag.String("t", "", "input trace; '-' for stdin")
		format    = flag.String("format", "cvp", "trace format: cvp or champsim")
		rules     = flag.String("rules", "original", "branch deduction rules for champsim traces")

		cachekey   = flag.Bool("cachekey", false, "print the result-cache key components for a synthetic trace/variant")
		profile    = flag.String("profile", "", "synthetic trace name (public suite or IPC-1 suite) for -cachekey")
		variant    = flag.String("variant", "All_imps", "converter variant or improvement name for -cachekey")
		model      = flag.String("model", "develop", "simulator model for -cachekey: develop or ipc1")
		prefetcher = flag.String("prefetcher", "none", "L1I prefetcher of the ipc1 model for -cachekey")
		instrs     = flag.Int("instructions", 150000, "instructions per trace for -cachekey")
		warmup     = flag.Uint64("warmup", 50000, "warm-up instructions for -cachekey")
	)
	flag.Parse()
	if *cachekey {
		if err := printCacheKey(*profile, *variant, *model, *prefetcher, *instrs, *warmup); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *tracePath == "" {
		fatalf("need -t trace (or -cachekey -profile NAME)")
	}
	in := os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}

	switch *format {
	case "cvp":
		reader, closer, err := cvp.OpenReader(*tracePath, in)
		if err != nil {
			fatalf("%v", err)
		}
		defer closer.Close()
		if err := cvpInfo(reader); err != nil {
			fatalf("%v", err)
		}
	case "champsim":
		reader, closer, err := champtrace.OpenReader(*tracePath, in)
		if err != nil {
			fatalf("%v", err)
		}
		defer closer.Close()
		rs := champtrace.RulesOriginal
		if *rules == "patched" {
			rs = champtrace.RulesPatched
		}
		if err := champInfo(reader, rs); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown format %q", *format)
	}
}

func cvpInfo(r *cvp.Reader) error {
	var (
		total                        uint64
		byClass                      [cvp.NumClasses]uint64
		memNoDst, multiDst, withVals uint64
		readsLR, writesLR, rwLR      uint64
		condWithSrc                  uint64
		pcMin, pcMax                 uint64 = ^uint64(0), 0
	)
	for {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		byClass[in.Class]++
		if in.PC < pcMin {
			pcMin = in.PC
		}
		if in.PC > pcMax {
			pcMax = in.PC
		}
		if in.Class.IsMem() && len(in.DstRegs) == 0 {
			memNoDst++
		}
		if in.IsLoad() && len(in.DstRegs) >= 2 {
			multiDst++
		}
		if len(in.DstValues) > 0 {
			withVals++
		}
		if in.Class.IsBranch() && in.Class != cvp.ClassCondBranch {
			rd, wr := in.ReadsReg(cvp.RegLR), in.WritesReg(cvp.RegLR)
			if rd {
				readsLR++
			}
			if wr {
				writesLR++
			}
			if rd && wr {
				rwLR++
			}
		}
		if in.Class == cvp.ClassCondBranch && len(in.SrcRegs) > 0 {
			condWithSrc++
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	pct := func(c uint64) float64 { return 100 * float64(c) / float64(total) }
	fmt.Printf("format:            CVP-1\n")
	fmt.Printf("instructions:      %d\n", total)
	fmt.Printf("code span:         %#x..%#x (%d KB)\n", pcMin, pcMax, (pcMax-pcMin)/1024)
	for c := cvp.InstClass(0); int(c) < cvp.NumClasses; c++ {
		if byClass[c] > 0 {
			fmt.Printf("  %-22s %9d  (%5.2f%%)\n", c, byClass[c], pct(byClass[c]))
		}
	}
	fmt.Printf("mem without dst:   %d (%.2f%%)   multi-dst loads: %d (%.2f%%)\n",
		memNoDst, pct(memNoDst), multiDst, pct(multiDst))
	fmt.Printf("cond with src reg: %d (%.2f%%)\n", condWithSrc, pct(condWithSrc))
	fmt.Printf("uncond branches:   read-LR %d, write-LR %d, read+write-LR %d\n", readsLR, writesLR, rwLR)
	fmt.Printf("with output vals:  %d (%.2f%%)\n", withVals, pct(withVals))
	return nil
}

func champInfo(r *champtrace.Reader, rules champtrace.RuleSet) error {
	var (
		total, branches, taken uint64
		loads, stores          uint64
		multiAddr              uint64
		byType                 [champtrace.BranchOther + 1]uint64
	)
	for {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		if in.IsBranch {
			branches++
			if in.Taken {
				taken++
			}
			byType[champtrace.Classify(in, rules)]++
		}
		nl, ns := 0, 0
		for _, a := range in.SrcMem {
			if a != 0 {
				nl++
			}
		}
		for _, a := range in.DestMem {
			if a != 0 {
				ns++
			}
		}
		if nl > 0 {
			loads++
		}
		if ns > 0 {
			stores++
		}
		if nl > 1 || ns > 1 {
			multiAddr++
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	pct := func(c uint64) float64 { return 100 * float64(c) / float64(total) }
	fmt.Printf("format:        ChampSim (%s rules)\n", rules)
	fmt.Printf("instructions:  %d\n", total)
	fmt.Printf("branches:      %d (%.2f%%), %d taken\n", branches, pct(branches), taken)
	for bt := champtrace.BranchDirectJump; bt <= champtrace.BranchOther; bt++ {
		if byType[bt] > 0 {
			fmt.Printf("  %-14s %9d\n", bt, byType[bt])
		}
	}
	fmt.Printf("loads:         %d (%.2f%%)\n", loads, pct(loads))
	fmt.Printf("stores:        %d (%.2f%%)\n", stores, pct(stores))
	fmt.Printf("multi-address: %d (%.2f%%) — mem-footprint cacheline splits\n", multiAddr, pct(multiAddr))
	return nil
}

// printCacheKey resolves the named synthetic trace and variant, derives
// the result-cache key exactly as the sweep engine would, and prints every
// component. Two runs disagreeing on the final key can be diagnosed by the
// first component line that differs.
func printCacheKey(profileName, variantName, model, prefetcher string, instructions int, warmup uint64) error {
	if profileName == "" {
		return fmt.Errorf("-cachekey needs -profile NAME (e.g. srv_0 or server_023)")
	}
	p, err := findProfile(profileName)
	if err != nil {
		return err
	}
	opts, err := findOptions(variantName)
	if err != nil {
		return err
	}
	var cfg sim.Config
	switch model {
	case "develop":
		// Rules pair with the variant the same way the sweep pairs them.
		cfg = experiments.DevelopConfigFor(opts)
	case "ipc1":
		rules := champtrace.RulesOriginal
		if opts.BranchRegs {
			rules = champtrace.RulesPatched
		}
		cfg = sim.ConfigIPC1(prefetcher, rules)
	default:
		return fmt.Errorf("unknown -model %q (develop or ipc1)", model)
	}

	info := experiments.CacheKey(p, opts, cfg, instructions, warmup)
	fmt.Printf("trace:           %s (%s)\n", p.Name, p.Category)
	fmt.Printf("variant:         %s (bits %#02x)\n", opts, opts.Bits())
	fmt.Printf("model:           %s\n", cfg.Name)
	fmt.Printf("instructions:    %d (warmup %d)\n", info.Instructions, info.Warmup)
	fmt.Printf("schema version:  %d\n", info.SchemaVersion)
	fmt.Printf("profile hash:    %s\n", info.ProfileHash)
	fmt.Printf("options hash:    %s\n", info.OptionsHash)
	fmt.Printf("config hash:     %s\n", info.ConfigHash)
	fmt.Printf("fingerprint:     %s\n", info.Fingerprint)
	fmt.Printf("cache key:       %s\n", info.Key)
	fmt.Printf("config identity: %s\n", info.ConfigIdentity)
	return nil
}

// findProfile resolves a trace name against the public suite, then the
// IPC-1 suite (both its IPC-1 names and the underlying CVP names).
func findProfile(name string) (synth.Profile, error) {
	for _, p := range synth.PublicSuite() {
		if p.Name == name {
			return p, nil
		}
	}
	if tr, ok := synth.FindIPC1(name); ok {
		return tr.Profile, nil
	}
	for _, tr := range synth.IPC1Suite() {
		if tr.CVPName == name || tr.Profile.Name == name {
			return tr.Profile, nil
		}
	}
	return synth.Profile{}, fmt.Errorf("unknown trace %q (not in the public or IPC-1 suites)", name)
}

// findOptions resolves a variant label (sweep variant names like All_imps,
// or any spelling core.ParseImprovement accepts).
func findOptions(name string) (core.Options, error) {
	for _, v := range experiments.Variants() {
		if v.Name == name {
			return v.Opts, nil
		}
	}
	return core.ParseImprovement(name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
