// Command cvp2champsim converts CVP-1 traces to the ChampSim format,
// mirroring the paper artifact's converter CLI:
//
//	cvp2champsim -t trace.cvp.gz [-i improvement] [-o out.champsim] [-stats]
//
// The -i flag accepts the artifact improvement names: No_imp (default),
// imp_mem-regs, imp_base-update, imp_mem-footprint, imp_call-stack,
// imp_branch-regs, imp_flag-regs, Memory_imps, Branch_imps, All_imps.
// Without -o the converted trace is written to standard output, exactly
// like the original tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
)

func main() {
	var (
		tracePath = flag.String("t", "", "input CVP-1 trace (.gz supported); '-' for stdin")
		impName   = flag.String("i", "No_imp", "improvement set to apply")
		outPath   = flag.String("o", "", "output ChampSim trace (default: stdout)")
		showStats = flag.Bool("stats", false, "print conversion statistics to stderr")
	)
	flag.Parse()

	if *tracePath == "" {
		fatalf("need -t trace")
	}
	opts, err := core.ParseImprovement(*impName)
	if err != nil {
		fatalf("%v", err)
	}

	var in *os.File
	if *tracePath == "-" {
		in = os.Stdin
	} else {
		in, err = os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer in.Close()
	}
	reader, closer, err := cvp.OpenReader(*tracePath, in)
	if err != nil {
		fatalf("%v", err)
	}
	defer closer.Close()

	out := os.Stdout
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer out.Close()
	}
	w := champtrace.NewWriter(out)
	st, err := core.ConvertStream(reader, w, opts)
	if err != nil {
		fatalf("convert: %v", err)
	}
	if err := w.Flush(); err != nil {
		fatalf("flush: %v", err)
	}

	if *showStats {
		fmt.Fprintf(os.Stderr, "improvements: %s\n", opts)
		fmt.Fprintf(os.Stderr, "instructions in/out: %d/%d\n", st.In, st.Out)
		fmt.Fprintf(os.Stderr, "memory: no-dst %d, multi-dst loads %d, base-update loads %d (pre %d / post %d), stores %d, cross-line %d, dc-zva %d\n",
			st.MemNoDst, st.MultiDstLoads, st.BaseUpdateLoads, st.PreIndex, st.PostIndex, st.BaseUpdateStores, st.CrossLine, st.DCZVA)
		fmt.Fprintf(os.Stderr, "branches: cond %d (with-src %d), returns %d, calls %d direct / %d indirect, jumps %d direct / %d indirect, read+write-LR %d, flag-dst added %d\n",
			st.CondBranches, st.CondWithSrc, st.Returns, st.DirectCalls, st.IndirectCalls, st.DirectJumps, st.IndirectJumps, st.ReadWriteLRBranches, st.FlagDstAdded)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cvp2champsim: "+format+"\n", args...)
	os.Exit(1)
}
