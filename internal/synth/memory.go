package synth

import "tracerebase/internal/cvp"

// Memory-site emission: loads and stores with every addressing flavour the
// converter has to handle. The generator maintains real register values so
// the converter's addressing-mode inference operates on the same signals it
// would see in a genuine CVP-1 trace.

// dataAddr clamps an offset into the data footprint, 8-byte aligned.
func (g *generator) dataAddr(off uint64) uint64 {
	return dataBase + (off % g.p.DataFootprint &^ 7)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// baseProgress returns the current value of the site's private pointer
// stream, re-anchoring when the next step would leave the footprint. The
// stream state is recorded under the site's PC; imm is the per-step
// increment the caller will apply.
func (g *generator) baseProgress(pc, h, imm uint64) uint64 {
	cur, ok := g.strideBase[pc]
	if !ok || cur < dataBase || cur+imm+imm >= dataBase+g.p.DataFootprint {
		uses := g.baseUses[pc]
		g.baseUses[pc] = uses + 1
		cur = g.dataAddr(splitmix64(h ^ uint64(uses)*0x9e3779b97f4a7c15))
	}
	g.strideBase[pc] = cur + imm
	return cur
}

func (g *generator) emitLoad(pc uint64) {
	h := g.hash(pc, 20)
	x := hfrac(g.hash(pc, 21))
	p := &g.p
	switch {
	case x < p.BaseUpdateFrac:
		g.emitBaseUpdateLoad(pc, h)
	case x < p.BaseUpdateFrac+p.LoadPairFrac:
		g.emitLoadPair(pc, h)
	case x < p.BaseUpdateFrac+p.LoadPairFrac+p.PrefetchFrac:
		g.emitPrefetchLoad(pc, h)
	case x < p.BaseUpdateFrac+p.LoadPairFrac+p.PrefetchFrac+p.ChaseFrac:
		g.emitChaseLoad(pc, h)
	default:
		g.emitPlainLoad(pc, h)
	}
}

// emitPlainLoad is LDR Xd, [Xb, #imm]: strided or random address. A fifth
// of plain-load sites read a fixed location (globals, spilled locals) —
// cache-resident and value-predictable, as in real code.
func (g *generator) emitPlainLoad(pc, h uint64) {
	base := uint8(8 + h%8)
	dst := uint8(4 + h>>8%4)
	var addr uint64
	if (h>>32)%5 == 0 {
		addr = g.dataAddr(h)
	} else {
		addr = g.loadAddress(pc, h)
	}
	g.emit(&cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: addr, MemSize: 8,
		SrcRegs:   []uint8{base},
		DstRegs:   []uint8{dst},
		DstValues: []uint64{splitmix64(addr)},
	})
	g.lastLoadReg, g.haveLoad = dst, true
}

// hotSetBytes bounds the region most random accesses fall in, modeling the
// temporal locality real workloads have: ~L2-sized hot data with a cold
// tail across the full footprint.
const hotSetBytes = 48 << 10

// loadAddress picks a strided or random address, optionally offset to cross
// a cacheline boundary. Random addresses have strong locality: most land in
// a hot subset of the footprint, a minority anywhere.
func (g *generator) loadAddress(pc, h uint64) uint64 {
	var addr uint64
	if hfrac(g.hash(pc, 22)) < g.p.StrideFrac {
		// Strided streams sweep a bounded window repeatedly (an array
		// traversed every outer iteration), so lower cache levels see
		// reuse instead of an infinite stream.
		// Sites within the same 1 KB of code share a stream (a loop
		// walks one array from several instructions), which keeps the
		// trace's compulsory-miss footprint realistic at short trace
		// lengths.
		streamKey := pc >> 10
		hs := splitmix64(streamKey ^ uint64(g.p.Seed))
		stride := []uint64{8, 8, 8, 16}[hs>>16%4]
		window := min64(8<<10, g.p.DataFootprint)
		cur := g.strideState[streamKey]
		g.strideState[streamKey] = (cur + stride) % window
		addr = g.dataAddr(hs%g.p.DataFootprint + cur)
	} else if x := g.r.Float64(); x < 0.78 {
		hot := min64(g.p.DataFootprint, hotSetBytes)
		addr = dataBase + (g.r.Uint64() % hot &^ 7)
	} else if x < 0.98 {
		// Mid-tier working set: larger than the L2, comfortably within LLC reach,
		// so the hierarchy's levels each earn distinct hit rates.
		mid := min64(g.p.DataFootprint, 768<<10)
		addr = dataBase + (g.r.Uint64() % mid &^ 7)
	} else {
		addr = g.dataAddr(g.r.Uint64())
	}
	if hfrac(g.hash(pc, 23)) < g.p.CrossLineFrac {
		addr = (addr &^ 63) + 60 // an 8-byte access here straddles lines
	}
	return addr
}

// emitBaseUpdateLoad is LDR Xd, [Xb, #imm]! or LDR Xd, [Xb], #imm: the base
// register is both source and destination, and the trace's output value
// relates to the effective address exactly as the real ISA dictates.
func (g *generator) emitBaseUpdateLoad(pc, h uint64) {
	base := uint8(8 + h%8)
	// The data destination is an FP/SIMD register (LDR Dd, [Xb], #imm is
	// the common writeback form in real loops). Nothing else writes that
	// class, so the ORIGINAL converter's dst-as-src approximation lands on
	// a long-completed producer — matching the paper's finding that
	// mem-regs is performance-neutral on real traces.
	dst := uint8(48 + h>>8%16)
	imm := []uint64{8, 8, 16, 16}[h>>16%4]
	pre := hfrac(g.hash(pc, 24)) < g.p.PreIndexFrac

	// Each site walks its own pointer: real compilers keep a loop's base
	// register live on its own stream. When another site clobbered the
	// shared architectural register since our last use, an address-setup
	// MOV restores this site's progression — keeping the per-PC value
	// sequence strided (the induction pattern value predictors capture)
	// and the converter's register tracker coherent.
	cur := g.baseProgress(pc, h, imm)
	if g.regs[base] != cur {
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassALU,
			DstRegs: []uint8{base}, DstValues: []uint64{cur},
		})
		if g.full() {
			return
		}
	}

	oldBase := g.regs[base]
	newBase := oldBase + imm
	eff := oldBase
	if pre {
		eff = newBase
	}
	g.emit(&cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: eff, MemSize: 8,
		SrcRegs:   []uint8{base},
		DstRegs:   []uint8{dst, base},
		DstValues: []uint64{splitmix64(eff), newBase},
	})
	g.lastLoadReg, g.haveLoad = dst, true
}

// emitLoadPair is LDP Xd1, Xd2, [Xb]: two destinations, no writeback. A
// slice of pairs reuses the base register as the second destination
// (LDP X1, X0, [X0]) — the ambiguous case §3.1 opens with.
func (g *generator) emitLoadPair(pc, h uint64) {
	base := uint8(8 + h%8)
	d1 := uint8(48 + h>>8%16)
	d2 := uint8(48 + h>>16%16)
	if d1 == d2 {
		d2 = 48 + (d2-48+1)%16
	}
	if hfrac(g.hash(pc, 25)) < 0.1 {
		d2 = base // the LDP X1,X0,[X0] look-alike
	}
	addr := g.loadAddress(pc, h)
	g.emit(&cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: addr, MemSize: 8,
		SrcRegs:   []uint8{base},
		DstRegs:   []uint8{d1, d2},
		DstValues: []uint64{splitmix64(addr), splitmix64(addr + 8)},
	})
	g.lastLoadReg, g.haveLoad = d1, true
}

// emitPrefetchLoad is PRFM: a load with no destination register.
func (g *generator) emitPrefetchLoad(pc, h uint64) {
	base := uint8(8 + h%8)
	g.emit(&cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: g.loadAddress(pc, h), MemSize: 8,
		SrcRegs: []uint8{base},
	})
}

// emitChaseLoad walks a pointer chain: each load's address is the previous
// load's value, so execution serializes on memory latency. Distinct source
// and destination registers keep the inference from mistaking the chain for
// base updates.
func (g *generator) emitChaseLoad(pc, h uint64) {
	a := uint8(16 + h%4)
	b := uint8(20 + h%4)
	// Chains wander inside a region scaled to the footprint: small
	// working sets chase within cache, huge ones (the gcc_002/003
	// regime) chase straight to DRAM.
	region := g.p.DataFootprint / 4
	if region < 256<<10 {
		region = min64(256<<10, g.p.DataFootprint)
	}
	cur, ok := g.chaseState[pc]
	if !ok {
		cur = g.dataAddr(h)
	}
	next := dataBase + (splitmix64(cur) % region &^ 7)
	g.chaseState[pc] = next
	g.emit(&cvp.Instruction{
		PC: pc, Class: cvp.ClassLoad, EffAddr: cur, MemSize: 8,
		SrcRegs:   []uint8{a},
		DstRegs:   []uint8{b},
		DstValues: []uint64{next},
	})
	// Move the pointer back into the address register with an ALU, so the
	// next chase load depends on this one through a register chain.
	if g.full() {
		return
	}
	g.emit(&cvp.Instruction{
		PC: pc + 4, Class: cvp.ClassALU,
		SrcRegs: []uint8{b}, DstRegs: []uint8{a}, DstValues: []uint64{next},
	})
	g.lastLoadReg, g.haveLoad = b, true
}

func (g *generator) emitStore(pc uint64) {
	h := g.hash(pc, 30)
	x := hfrac(g.hash(pc, 31))
	base := uint8(8 + h%8)
	data := uint8(1 + h>>8%7)
	switch {
	case x < g.p.ZVAFrac:
		// DC ZVA: 64-byte zeroing store, naturally aligned.
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassStore,
			EffAddr: g.loadAddress(pc, h) &^ 63, MemSize: 64,
			SrcRegs: []uint8{base},
		})
	case x < g.p.ZVAFrac+g.p.BaseUpdateFrac:
		// STR Xd, [Xb], #imm: store with post-index writeback — the
		// base register is the store's only destination.
		imm := []uint64{8, 16, 32}[h>>16%3]
		if g.regs[base] < dataBase || g.regs[base]+imm >= dataBase+g.p.DataFootprint {
			g.emit(&cvp.Instruction{
				PC: pc, Class: cvp.ClassALU,
				DstRegs: []uint8{base}, DstValues: []uint64{g.dataAddr(h)},
			})
			if g.full() {
				return
			}
		}
		oldBase := g.regs[base]
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassStore, EffAddr: oldBase, MemSize: 8,
			SrcRegs:   []uint8{data, base},
			DstRegs:   []uint8{base},
			DstValues: []uint64{oldBase + imm},
		})
	default:
		g.emit(&cvp.Instruction{
			PC: pc, Class: cvp.ClassStore, EffAddr: g.loadAddress(pc, h), MemSize: 8,
			SrcRegs: []uint8{data, base},
		})
	}
}
