package resultcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt marks a cache entry that failed structural validation —
// truncated, checksum mismatch, wrong key, or an unknown record version.
// Callers treat it as a miss: the entry is discarded and recomputed, never
// served.
var ErrCorrupt = errors.New("resultcache: corrupt entry")

// On-disk record layout (all integers little-endian):
//
//	magic   [4]byte  "TRRC"
//	version uint32   recordVersion
//	key     [32]byte the entry's own key (guards against renamed files)
//	paylen  uint64   payload length
//	payload [paylen]byte
//	crc     uint32   CRC-32C (Castagnoli) of payload
const (
	recordMagic   = "TRRC"
	recordVersion = 1
	headerSize    = 4 + 4 + KeySize + 8
	trailerSize   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord frames payload as a self-validating record for key.
func encodeRecord(key Key, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf[0:4], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:8], recordVersion)
	copy(buf[8:8+KeySize], key[:])
	binary.LittleEndian.PutUint64(buf[8+KeySize:headerSize], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	crc := crc32.Checksum(payload, castagnoli)
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], crc)
	return buf
}

// decodeRecord validates the framing and returns the payload. Any
// structural problem yields an error wrapping ErrCorrupt.
func decodeRecord(key Key, buf []byte) ([]byte, error) {
	if len(buf) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorrupt, len(buf), headerSize+trailerSize)
	}
	if string(buf[0:4]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != recordVersion {
		return nil, fmt.Errorf("%w: record version %d, want %d", ErrCorrupt, v, recordVersion)
	}
	var stored Key
	copy(stored[:], buf[8:8+KeySize])
	if stored != key {
		return nil, fmt.Errorf("%w: key mismatch (%s stored)", ErrCorrupt, stored)
	}
	paylen := binary.LittleEndian.Uint64(buf[8+KeySize : headerSize])
	if paylen != uint64(len(buf)-headerSize-trailerSize) {
		return nil, fmt.Errorf("%w: payload length %d, file holds %d", ErrCorrupt, paylen, len(buf)-headerSize-trailerSize)
	}
	payload := buf[headerSize : headerSize+int(paylen)]
	crc := binary.LittleEndian.Uint32(buf[headerSize+int(paylen):])
	if got := crc32.Checksum(payload, castagnoli); got != crc {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, crc)
	}
	return payload, nil
}
