package resultcache

import (
	"errors"
	"sync"
	"time"
)

// ErrNotFound marks a key absent from a backend tier. Every backend
// returns it (possibly wrapped) from Get when the key has no valid entry;
// callers treat anything else as an infrastructure failure, not a miss.
var ErrNotFound = errors.New("resultcache: not found")

// Backend is one tier of content-addressed byte storage: a bounded
// in-memory LRU, the sharded on-disk store, a remote HTTP peer, or a
// Tiered composition of them. Keys are opaque content addresses; payloads
// are opaque bytes owned by the backend after Put and read-only after Get.
// All methods are safe for concurrent use.
type Backend interface {
	// Name identifies the tier in stats and status output ("memory",
	// "disk", "remote", "tiered").
	Name() string
	// Get returns the payload stored under key, or an error wrapping
	// ErrNotFound when no valid entry exists. Backends that can detect
	// corruption (disk framing, remote transport) discard damaged entries
	// and report them as misses, never serve them.
	Get(key Key) ([]byte, error)
	// Put stores payload under key. Implementations count failures in
	// their stats as well as returning them, so a Tiered write-back can
	// drop the error while the failure stays observable.
	Put(key Key, payload []byte) error
	// Delete removes the entry for key, if present. Absence is not an
	// error.
	Delete(key Key) error
	// Stat returns a snapshot of the tier's activity counters.
	Stat() BackendStats
	// Close releases tier resources (flushing any buffered writes).
	Close() error
}

// BackendStats counts one tier's activity since construction. Latency
// fields are cumulative nanoseconds over the corresponding op counts, so
// mean per-op latency is GetNanos/Gets (resp. PutNanos/Puts).
type BackendStats struct {
	// Name identifies the tier the counters belong to.
	Name string `json:"name"`
	// Gets counts Get calls; Hits+Misses == Gets.
	Gets   uint64 `json:"gets"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts and Deletes count successful-or-not mutation calls.
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	// Corrupt counts entries that failed validation and were discarded
	// (each also surfaces as a miss); Evictions counts entries dropped by
	// a size bound; WriteErrors counts failed Puts.
	Corrupt     uint64 `json:"corrupt"`
	Evictions   uint64 `json:"evictions"`
	WriteErrors uint64 `json:"write_errors"`
	// BytesRead and BytesWritten count payload-carrying bytes moved
	// through the tier (records for disk and remote, raw payloads for
	// memory).
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
	// GetNanos and PutNanos accumulate wall-clock op latency.
	GetNanos uint64 `json:"get_nanos"`
	PutNanos uint64 `json:"put_nanos"`
}

// tierMetrics is the shared counter block backends embed; its methods
// take the embedding backend's latency measurements and keep the
// arithmetic in one place.
type tierMetrics struct {
	mu sync.Mutex
	s  BackendStats
}

func (m *tierMetrics) observeGet(start time.Time, hit bool, bytes int) {
	elapsed := uint64(time.Since(start))
	m.mu.Lock()
	m.s.Gets++
	if hit {
		m.s.Hits++
		m.s.BytesRead += uint64(bytes)
	} else {
		m.s.Misses++
	}
	m.s.GetNanos += elapsed
	m.mu.Unlock()
}

func (m *tierMetrics) observePut(start time.Time, err error, bytes int) {
	elapsed := uint64(time.Since(start))
	m.mu.Lock()
	m.s.Puts++
	if err != nil {
		m.s.WriteErrors++
	} else {
		m.s.BytesWritten += uint64(bytes)
	}
	m.s.PutNanos += elapsed
	m.mu.Unlock()
}

func (m *tierMetrics) observeDelete() {
	m.mu.Lock()
	m.s.Deletes++
	m.mu.Unlock()
}

func (m *tierMetrics) observeCorrupt() {
	m.mu.Lock()
	m.s.Corrupt++
	m.mu.Unlock()
}

func (m *tierMetrics) addEvictions(n uint64) {
	m.mu.Lock()
	m.s.Evictions += n
	m.mu.Unlock()
}

func (m *tierMetrics) snapshot(name string) BackendStats {
	m.mu.Lock()
	s := m.s
	m.mu.Unlock()
	s.Name = name
	return s
}

// TierStats returns the per-tier counters of b: one entry per tier for a
// Tiered backend, a single entry otherwise.
func TierStats(b Backend) []BackendStats {
	if t, ok := b.(*Tiered); ok {
		return t.Tiers()
	}
	return []BackendStats{b.Stat()}
}

// entryPather is implemented by backends that can name the file an entry
// lives in (the disk tier); Cache.EntryPath delegates through it.
type entryPather interface {
	EntryPath(key Key) string
}

// dirBackend is implemented by backends rooted in a directory.
type dirBackend interface {
	Dir() string
}

// sizedBackend is implemented by backends with a measurable persistent
// footprint.
type sizedBackend interface {
	DiskBytes() int64
}
