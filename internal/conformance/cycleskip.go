package conformance

import (
	"bytes"
	"fmt"
	"reflect"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/experiments"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// CheckCycleSkipTransparency is the differential oracle for event-horizon
// cycle skipping: jumping the simulator over provably dead cycles must be
// invisible in every reported number. It runs the full develop-model sweep
// (all ten variants) with skipping on and with -no-skip and requires
// byte-identical rendered output plus per-cell agreement on every counter
// except the skip telemetry itself, then repeats the comparison on the
// coupled-front-end IPC-1 model, whose stall structure (demand icache
// fetch, redirect penalty 1, ideal targets) differs from develop's. It also
// asserts the check has teeth: the skipping runs must actually have jumped
// cycles, and the -no-skip runs must report none.
func CheckCycleSkipTransparency(profiles []synth.Profile, instructions int, warmup uint64) error {
	// Develop model: the same sweep the figures derive from.
	baseCfg := experiments.SweepConfig{
		Instructions: instructions,
		Warmup:       warmup,
		Parallelism:  2,
		Variants:     nil, // all ten: every stall structure the sweep can produce
	}
	render := func(res []experiments.TraceResult) []byte {
		var buf bytes.Buffer
		experiments.RenderFig1(&buf, experiments.Fig1(res))
		experiments.RenderFig5(&buf, experiments.Fig5(res))
		return buf.Bytes()
	}
	sweep := func(noSkip bool) ([]byte, []experiments.TraceResult, error) {
		cfg := baseCfg
		cfg.NoSkip = noSkip
		res, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			return nil, nil, err
		}
		return render(res), res, nil
	}

	skipOut, skipRes, err := sweep(false)
	if err != nil {
		return fmt.Errorf("skipping sweep: %w", err)
	}
	slowOut, slowRes, err := sweep(true)
	if err != nil {
		return fmt.Errorf("-no-skip sweep: %w", err)
	}
	if !bytes.Equal(skipOut, slowOut) {
		return fmt.Errorf("develop sweep with skipping renders differently from -no-skip")
	}
	var jumped uint64
	for ti := range skipRes {
		name := skipRes[ti].Profile.Name
		for variant, got := range skipRes[ti].Results {
			slow, ok := slowRes[ti].Results[variant]
			if !ok {
				return fmt.Errorf("%s/%s: cell missing from -no-skip sweep", name, variant)
			}
			if slow.Sim.SkippedCycles != 0 || slow.Sim.CycleSkips != 0 {
				return fmt.Errorf("%s/%s: -no-skip run reports %d skipped cycles in %d jumps",
					name, variant, slow.Sim.SkippedCycles, slow.Sim.CycleSkips)
			}
			jumped += got.Sim.SkippedCycles
			// Erase the telemetry-only counters; every architectural
			// number must then match exactly.
			got.Sim.SkippedCycles, got.Sim.CycleSkips = 0, 0
			if !reflect.DeepEqual(got, slow) {
				return fmt.Errorf("%s/%s: skipping changed reported results:\n skip    %+v\n no-skip %+v",
					name, variant, got, slow)
			}
		}
	}
	if jumped == 0 {
		return fmt.Errorf("develop sweep never skipped a cycle — the transparency check is vacuous")
	}

	// IPC-1 model: coupled front-end with an instruction prefetcher, the
	// other stall structure Table 3 and the ablation run.
	opts := core.OptionsAll()
	rules := champtrace.RulesOriginal
	if opts.BranchRegs {
		rules = champtrace.RulesPatched
	}
	jumped = 0
	for _, p := range profiles {
		instrs, err := p.GenerateBatch(instructions)
		if err != nil {
			return fmt.Errorf("generate %s: %w", p.Name, err)
		}
		cfg := sim.ConfigIPC1("fnl-mma", rules)
		got, err := simulate(instrs, opts, cfg, warmup)
		if err != nil {
			return fmt.Errorf("ipc1 %s: %w", p.Name, err)
		}
		cfg.NoCycleSkip = true
		slow, err := simulate(instrs, opts, cfg, warmup)
		if err != nil {
			return fmt.Errorf("ipc1 -no-skip %s: %w", p.Name, err)
		}
		if slow.SkippedCycles != 0 || slow.CycleSkips != 0 {
			return fmt.Errorf("ipc1 %s: -no-skip run reports %d skipped cycles", p.Name, slow.SkippedCycles)
		}
		jumped += got.SkippedCycles
		got.SkippedCycles, got.CycleSkips = 0, 0
		if got != slow {
			return fmt.Errorf("ipc1 %s: skipping changed reported stats:\n skip    %+v\n no-skip %+v",
				p.Name, got, slow)
		}
	}
	if jumped == 0 {
		return fmt.Errorf("ipc1 runs never skipped a cycle — the transparency check is vacuous")
	}
	return nil
}
