package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/experiments"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// simulate converts the slab under opts and runs it on cfg, mirroring the
// sweep engine's streaming data path.
func simulate(instrs []cvp.Instruction, opts core.Options, cfg sim.Config, warmup uint64) (sim.Stats, error) {
	cs := core.NewConverterSource(cvp.NewValuesSource(instrs), opts)
	defer cs.Close()
	return sim.Run(cs, cfg, warmup, 0)
}

// develCfg returns the develop-model configuration matching opts (patched
// branch rules when the branch-regs improvement is on).
func develCfg(opts core.Options) sim.Config {
	rules := champtrace.RulesOriginal
	if opts.BranchRegs {
		rules = champtrace.RulesPatched
	}
	return sim.ConfigDevelop(rules)
}

// CheckSimDeterminism generates the profile's trace once and simulates it
// twice, requiring bit-identical statistics — the simulator must be a pure
// function of its input trace and configuration.
func CheckSimDeterminism(p synth.Profile, n int, warmup uint64) error {
	instrs, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	first, err := simulate(instrs, opts, develCfg(opts), warmup)
	if err != nil {
		return err
	}
	second, err := simulate(instrs, opts, develCfg(opts), warmup)
	if err != nil {
		return err
	}
	if first != second {
		return fmt.Errorf("%s: two runs of the same trace diverge:\n first  %+v\n second %+v", p.Name, first, second)
	}
	return nil
}

// CheckGenerateDeterminism requires Profile.GenerateBatch to be a pure
// function of (Profile, n), and the pull-based Stream to emit the identical
// sequence.
func CheckGenerateDeterminism(p synth.Profile, n int) error {
	a, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	b, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	if len(a) != len(b) {
		return fmt.Errorf("%s: generated %d then %d instructions", p.Name, len(a), len(b))
	}
	for i := range a {
		if !CVPEqual(&a[i], &b[i]) {
			return fmt.Errorf("%s: generation diverges at instruction %d", p.Name, i)
		}
	}
	return nil
}

// CheckSweepParallelism runs the same sweep single-threaded and with
// parallelism workers and requires byte-identical results (compared through
// a canonical JSON encoding), proving the work-queue engine introduces no
// scheduling-dependent behaviour.
func CheckSweepParallelism(profiles []synth.Profile, instructions int, warmup uint64, parallelism int) error {
	if parallelism < 2 {
		parallelism = 4
	}
	run := func(par int) ([]byte, error) {
		res, err := experiments.RunSweep(profiles, experiments.SweepConfig{
			Instructions: instructions,
			Warmup:       warmup,
			Parallelism:  par,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
	serial, err := run(1)
	if err != nil {
		return fmt.Errorf("-parallel 1: %w", err)
	}
	concurrent, err := run(parallelism)
	if err != nil {
		return fmt.Errorf("-parallel %d: %w", parallelism, err)
	}
	if !bytes.Equal(serial, concurrent) {
		return fmt.Errorf("sweep results differ between -parallel 1 and -parallel %d (%d vs %d JSON bytes)",
			parallelism, len(serial), len(concurrent))
	}
	return nil
}

// CheckROBMonotonic simulates the profile under a growing reorder buffer
// and requires IPC to respond monotonically: more ILP extraction window
// must never cost throughput on these synthetic microbenchmarks.
func CheckROBMonotonic(p synth.Profile, n int, warmup uint64) error {
	instrs, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	sizes := []int{16, 64, 352}
	prev := -1.0
	for _, rob := range sizes {
		cfg := develCfg(opts)
		cfg.ROBSize = rob
		st, err := simulate(instrs, opts, cfg, warmup)
		if err != nil {
			return fmt.Errorf("%s rob=%d: %w", p.Name, rob, err)
		}
		if st.IPC() < prev {
			return fmt.Errorf("%s: IPC fell from %.4f to %.4f when the ROB grew to %d entries",
				p.Name, prev, st.IPC(), rob)
		}
		prev = st.IPC()
	}
	return nil
}

// CheckCacheMonotonic simulates the profile under a growing L1D and
// requires misses to respond monotonically (never more misses with strictly
// more capacity at equal latency) and IPC not to regress.
func CheckCacheMonotonic(p synth.Profile, n int, warmup uint64) error {
	instrs, err := p.GenerateBatch(n)
	if err != nil {
		return err
	}
	opts := core.OptionsAll()
	sets := []int{16, 64, 256}
	prevMisses := ^uint64(0)
	prevIPC := -1.0
	for _, s := range sets {
		cfg := develCfg(opts)
		cfg.Hierarchy.L1D.Sets = s
		st, err := simulate(instrs, opts, cfg, warmup)
		if err != nil {
			return fmt.Errorf("%s l1d-sets=%d: %w", p.Name, s, err)
		}
		if st.L1D.Misses > prevMisses {
			return fmt.Errorf("%s: L1D misses rose from %d to %d when the cache grew to %d sets",
				p.Name, prevMisses, st.L1D.Misses, s)
		}
		if st.IPC() < prevIPC {
			return fmt.Errorf("%s: IPC fell from %.4f to %.4f when the L1D grew to %d sets",
				p.Name, prevIPC, st.IPC(), s)
		}
		prevMisses, prevIPC = st.L1D.Misses, st.IPC()
	}
	return nil
}
