package champtrace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleInstrs() []*Instruction {
	return []*Instruction{
		{IP: 0x1000, SrcRegs: [4]uint8{1, 2}, DestRegs: [2]uint8{3}},
		{IP: 0x1004, SrcRegs: [4]uint8{1}, DestRegs: [2]uint8{2, 1}, SrcMem: [4]uint64{0xdeadbeef0}},
		{IP: 0x1008, SrcRegs: [4]uint8{2}, DestMem: [2]uint64{0xcafef00d0}},
		{IP: 0x100c, IsBranch: true, Taken: true,
			SrcRegs:  [4]uint8{RegInstructionPointer, RegFlags},
			DestRegs: [2]uint8{RegInstructionPointer}},
		{IP: 0x1010, IsBranch: true, Taken: false,
			SrcRegs:  [4]uint8{RegInstructionPointer, RegFlags},
			DestRegs: [2]uint8{RegInstructionPointer}},
	}
}

func TestRecordSize(t *testing.T) {
	if RecordSize != 64 {
		t.Fatalf("RecordSize = %d, want 64 (the paper's fixed format)", RecordSize)
	}
	var in Instruction
	if got := len(in.Encode(nil)); got != 64 {
		t.Fatalf("Encode produced %d bytes, want 64", got)
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := sampleInstrs()
	for _, in := range want {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(want)*RecordSize {
		t.Errorf("stream is %d bytes, want %d (strict 64B/instr)", buf.Len(), len(want)*RecordSize)
	}
	got, err := ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d, want %d", len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Errorf("instr %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var in Instruction
		in.IP = r.Uint64()
		in.IsBranch = r.Intn(2) == 0
		in.Taken = in.IsBranch && r.Intn(2) == 0
		for i := range in.DestRegs {
			in.DestRegs[i] = uint8(r.Intn(256))
		}
		for i := range in.SrcRegs {
			in.SrcRegs[i] = uint8(r.Intn(256))
		}
		for i := range in.DestMem {
			in.DestMem[i] = r.Uint64()
		}
		for i := range in.SrcMem {
			in.SrcMem[i] = r.Uint64()
		}
		var out Instruction
		if err := out.Decode(in.Encode(nil)); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	var in Instruction
	if err := in.Decode(make([]byte, RecordSize-1)); err == nil {
		t.Fatal("Decode accepted short record")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range sampleInstrs() {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r := NewReader(bytes.NewReader(full[:len(full)-5]))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if err == io.EOF {
		t.Fatal("truncated stream reported clean EOF")
	}
}

func TestLoadStoreDeduction(t *testing.T) {
	var arith Instruction
	if arith.IsLoad() || arith.IsStore() {
		t.Error("empty record misdeduced as load/store")
	}
	ld := Instruction{SrcMem: [4]uint64{0x40}}
	if !ld.IsLoad() || ld.IsStore() {
		t.Error("load deduction wrong")
	}
	st := Instruction{DestMem: [2]uint64{0x40}}
	if st.IsLoad() || !st.IsStore() {
		t.Error("store deduction wrong")
	}
}

func TestAddSlots(t *testing.T) {
	var in Instruction
	for i := 0; i < NumDestRegs; i++ {
		if !in.AddDestReg(uint8(10 + i)) {
			t.Fatalf("AddDestReg %d failed", i)
		}
	}
	if in.AddDestReg(99) {
		t.Error("AddDestReg succeeded beyond capacity")
	}
	for i := 0; i < NumSrcRegs; i++ {
		if !in.AddSrcReg(uint8(20 + i)) {
			t.Fatalf("AddSrcReg %d failed", i)
		}
	}
	if in.AddSrcReg(99) {
		t.Error("AddSrcReg succeeded beyond capacity")
	}
	for i := 0; i < NumSrcMem; i++ {
		if !in.AddSrcMem(uint64(0x1000 + i*64)) {
			t.Fatalf("AddSrcMem %d failed", i)
		}
	}
	if in.AddSrcMem(0x9000) {
		t.Error("AddSrcMem succeeded beyond capacity")
	}
	for i := 0; i < NumDestMem; i++ {
		if !in.AddDestMem(uint64(0x2000 + i*64)) {
			t.Fatalf("AddDestMem %d failed", i)
		}
	}
	if in.AddDestMem(0x9000) {
		t.Error("AddDestMem succeeded beyond capacity")
	}
	if !in.ReadsReg(20) || in.ReadsReg(5) || in.ReadsReg(RegInvalid) {
		t.Error("ReadsReg wrong")
	}
	if !in.WritesReg(10) || in.WritesReg(5) {
		t.Error("WritesReg wrong")
	}
}

func TestSliceSource(t *testing.T) {
	instrs := sampleInstrs()
	src := NewSliceSource(instrs)
	if src.Len() != len(instrs) {
		t.Fatal("Len wrong")
	}
	got, err := ReadAll(src)
	if err != nil || len(got) != len(instrs) {
		t.Fatalf("ReadAll = %d instrs, err %v", len(got), err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	src.Reset()
	if in, err := src.Next(); err != nil || in != instrs[0] {
		t.Fatal("Reset failed")
	}
}
