package iprefetch

// PIPS (Michaud) prefetches with "probabilistic scouts": a Markov model of
// line-to-line transitions with frequency counters. On every access a scout
// starts from the current line and repeatedly moves to the most probable
// successor, prefetching along the way; the walk stops when the transition
// probability becomes too low (the scout "dies").
type PIPS struct {
	Base
	table    map[uint64]*pipsEntry
	maxLines int
	lastLine uint64
	depth    int
}

type pipsEntry struct {
	succ  [2]uint64
	count [2]uint8
}

// NewPIPS returns a PIPS prefetcher.
func NewPIPS() *PIPS {
	return &PIPS{table: make(map[uint64]*pipsEntry, 8192), maxLines: 8192, depth: 3}
}

// Name implements Prefetcher.
func (p *PIPS) Name() string { return "pips" }

// OnAccess implements Prefetcher.
func (p *PIPS) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	if p.lastLine != 0 && p.lastLine != lineAddr {
		p.train(p.lastLine, lineAddr)
	}
	p.lastLine = lineAddr

	// Scout walk: follow the strongest successor while it stays
	// sufficiently probable.
	cur := lineAddr
	for step := 0; step < p.depth; step++ {
		e, ok := p.table[cur]
		if !ok {
			break
		}
		best, bestCount, total := uint64(0), uint8(0), 0
		for i, s := range e.succ {
			total += int(e.count[i])
			if s != 0 && e.count[i] > bestCount {
				best, bestCount = s, e.count[i]
			}
		}
		// The scout survives while the best successor has at least 2/3
		// of the observed transitions and some evidence.
		if best == 0 || bestCount < 2 || int(bestCount)*3 < total*2 {
			break
		}
		buf = append(buf, best)
		cur = best
	}
	if !hit {
		buf = append(buf, lineAddr+LineSize)
	}
	return buf
}

func (p *PIPS) train(from, to uint64) {
	e, ok := p.table[from]
	if !ok {
		if len(p.table) >= p.maxLines {
			// Table full: clear it wholesale — a deterministic global reset
			// (cheap and rare) stands in for hardware index eviction, where
			// per-entry map deletion would be iteration-order dependent and
			// break run-to-run determinism.
			clear(p.table)
		}
		e = &pipsEntry{}
		p.table[from] = e
	}
	// Bump an existing successor...
	for i, s := range e.succ {
		if s == to {
			if e.count[i] < 15 {
				e.count[i]++
			} else {
				// Periodic halving keeps counters adaptive.
				e.count[0] >>= 1
				e.count[1] >>= 1
				e.count[i]++
			}
			return
		}
	}
	// ...or replace the weaker slot.
	weak := 0
	if e.count[1] < e.count[0] {
		weak = 1
	}
	if e.count[weak] <= 1 {
		e.succ[weak] = to
		e.count[weak] = 1
	} else {
		e.count[weak]--
	}
}
