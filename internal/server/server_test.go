package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tracerebase/internal/experiments"
	"tracerebase/internal/report"
	"tracerebase/internal/resultcache"
)

// smokeSpec is a sweep small enough for unit tests: a handful of traces,
// a few thousand instructions.
func smokeSpec() JobSpec {
	return JobSpec{Exp: "fig1", Step: 27, Instructions: 4000, Warmup: 1000}
}

// newTestServer builds a daemon over a fresh memory+disk tiered backend
// rooted in a temp dir.
func newTestServer(t *testing.T, extra ...resultcache.Backend) (*Server, *resultcache.Tiered, *resultcache.Disk) {
	t.Helper()
	disk, err := resultcache.NewDisk(resultcache.DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tiers := append([]resultcache.Backend{resultcache.NewMemory(0), disk}, extra...)
	backend := resultcache.NewTiered(tiers...)
	cache := experiments.NewResultCache(backend)
	t.Cleanup(func() { cache.Close() })
	srv := New(Config{
		Backend: backend,
		Base:    experiments.SweepConfig{Cache: cache},
		Workers: 2,
	})
	return srv, backend, disk
}

func TestSubmitComputesThenServesFromMemoryTier(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	spec := smokeSpec()
	first, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Served != "computed" {
		t.Fatalf("first submission served=%q, want computed", first.Served)
	}
	if len(first.Output) == 0 || !strings.Contains(string(first.Output), "Figure 1") {
		t.Fatalf("output does not look like fig1: %.120q", first.Output)
	}

	// The daemon's output must be byte-identical to the shared composition
	// run directly (which is what the batch CLI prints).
	var want bytes.Buffer
	if _, err := report.Run(experiments.SweepConfig{Instructions: spec.Instructions, Warmup: spec.Warmup},
		report.Spec{Exp: spec.Exp, Step: spec.Step}, report.Output{Text: &want}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Output, want.Bytes()) {
		t.Fatalf("daemon output differs from direct composition (%d vs %d bytes)", len(first.Output), want.Len())
	}

	// Repeat submission: a whole-job memory-tier hit, still byte-identical.
	second, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Served != "memory" {
		t.Fatalf("repeat submission served=%q, want memory", second.Served)
	}
	if !bytes.Equal(first.Output, second.Output) {
		t.Fatal("repeat submission output differs from first")
	}

	st := srv.StatusSnapshot()
	if st.JobsComputed != 1 || st.JobsFromCache != 1 {
		t.Fatalf("status: computed=%d fromCache=%d, want 1/1", st.JobsComputed, st.JobsFromCache)
	}
}

func TestConcurrentIdenticalSubmissionsComputeOnce(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := smokeSpec()
	const n = 4
	outs := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := (&Client{BaseURL: ts.URL}).Submit(spec)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = res.Output
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("submission %d output differs", i)
		}
	}
	// Single-flight across the job layer: identical concurrent submissions
	// lead to exactly one computation (followers join the stream or hit the
	// cache, depending on arrival time).
	if st := srv.StatusSnapshot(); st.JobsComputed != 1 {
		t.Fatalf("JobsComputed = %d, want 1", st.JobsComputed)
	}
}

func TestGracefulShutdownFlushesMemoryTierToDisk(t *testing.T) {
	srv, _, disk := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	client := &Client{BaseURL: ts.URL}

	spec := smokeSpec()
	res, err := client.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Shutdown must drain the worker pool and flush every write-back-
	// pending entry, so the job blob is durable on disk afterwards.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	payload, err := disk.Get(spec.Key())
	if err != nil {
		t.Fatalf("job blob not on disk after graceful shutdown: %v", err)
	}
	if !bytes.Equal(payload, res.Output) {
		t.Fatal("disk blob differs from streamed output")
	}
}

func TestChainedDaemonsShareWarmResults(t *testing.T) {
	// Daemon A computes; daemon B chains A as its remote tier and must
	// serve the same job without computing anything itself.
	srvA, _, _ := newTestServer(t)
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	spec := smokeSpec()
	resA, err := (&Client{BaseURL: tsA.URL}).Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Served != "computed" {
		t.Fatalf("daemon A served=%q, want computed", resA.Served)
	}

	remote, err := resultcache.NewRemote(resultcache.RemoteConfig{BaseURL: tsA.URL + "/cache", Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	srvB, _, _ := newTestServer(t, remote)
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	resB, err := (&Client{BaseURL: tsB.URL}).Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Served != "remote" {
		t.Fatalf("daemon B served=%q, want remote", resB.Served)
	}
	if !bytes.Equal(resA.Output, resB.Output) {
		t.Fatal("chained daemons returned different bytes")
	}
	if st := srvB.StatusSnapshot(); st.JobsComputed != 0 {
		t.Fatalf("daemon B computed %d jobs, want 0", st.JobsComputed)
	}
	// After promotion, a repeat against B is a local memory-tier hit.
	resB2, err := (&Client{BaseURL: tsB.URL}).Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if resB2.Served != "memory" {
		t.Fatalf("daemon B repeat served=%q, want memory", resB2.Served)
	}
}

func TestBadJobSpecRejected(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"exp":"nonsense"}`,
		`{"exp":"fig1","instructions":-5}`,
		`{"exp":"fig1","instructions":100,"warmup":100}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStatusEndpointReportsTiers(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	st, err := (&Client{BaseURL: ts.URL}).Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tiers) != 2 || st.Tiers[0].Name != "memory" || st.Tiers[1].Name != "disk" {
		t.Fatalf("tiers = %+v", st.Tiers)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
}

func TestJobSpecKeyNormalization(t *testing.T) {
	a := JobSpec{Exp: "fig1 , table2", Step: 1, Instructions: 150000, Warmup: 50000}
	b := JobSpec{Exp: "fig1,table2"}
	if a.Key() != b.Key() {
		t.Fatal("equivalent specs should share one key")
	}
	c := JobSpec{Exp: "fig1,table2", Instructions: 99999}
	if b.Key() == c.Key() {
		t.Fatal("different instruction budgets must not collide")
	}
}
