package core

import (
	"testing"

	"tracerebase/internal/cvp"
)

func TestOptionSets(t *testing.T) {
	if OptionsNone() != (Options{}) {
		t.Error("OptionsNone is not the zero value")
	}
	mem := OptionsMemory()
	if !mem.MemRegs || !mem.BaseUpdate || !mem.MemFootprint || mem.CallStack || mem.BranchRegs || mem.FlagReg {
		t.Errorf("OptionsMemory = %+v", mem)
	}
	br := OptionsBranch()
	if br.MemRegs || br.BaseUpdate || br.MemFootprint || !br.CallStack || !br.BranchRegs || !br.FlagReg {
		t.Errorf("OptionsBranch = %+v", br)
	}
	all := OptionsAll()
	for _, imp := range Improvements {
		if !imp.Get(all) {
			t.Errorf("OptionsAll missing %s", imp.Name)
		}
	}
}

func TestImprovementsTable(t *testing.T) {
	if len(Improvements) != 6 {
		t.Fatalf("Table 1 has 6 improvements, got %d", len(Improvements))
	}
	kinds := map[string]int{}
	for _, imp := range Improvements {
		if imp.Name == "" || imp.Summary == "" {
			t.Errorf("improvement missing metadata: %+v", imp)
		}
		kinds[imp.Kind]++
		var o Options
		imp.Set(&o)
		if !imp.Get(o) {
			t.Errorf("%s: Set/Get mismatch", imp.Name)
		}
		// Setting one improvement must not enable another.
		for _, other := range Improvements {
			if other.Name != imp.Name && other.Get(o) {
				t.Errorf("setting %s also enabled %s", imp.Name, other.Name)
			}
		}
	}
	if kinds["Memory"] != 3 || kinds["Branch"] != 3 {
		t.Errorf("kind split = %v, want 3 Memory + 3 Branch", kinds)
	}
}

func TestParseImprovement(t *testing.T) {
	cases := []struct {
		name string
		want Options
	}{
		{"No_imp", OptionsNone()},
		{"", OptionsNone()},
		{"original", OptionsNone()},
		{"All_imps", OptionsAll()},
		{"all", OptionsAll()},
		{"Memory_imps", OptionsMemory()},
		{"Branch_imps", OptionsBranch()},
		{"imp_mem-regs", Options{MemRegs: true}},
		{"imp_base-update", Options{BaseUpdate: true}},
		{"imp_mem-footprint", Options{MemFootprint: true}},
		{"imp_call-stack", Options{CallStack: true}},
		{"imp_branch-regs", Options{BranchRegs: true}},
		{"imp_flag-regs", Options{FlagReg: true}}, // artifact spelling
		{"flag-reg", Options{FlagReg: true}},
		{"mem-regs", Options{MemRegs: true}},
	}
	for _, tc := range cases {
		got, err := ParseImprovement(tc.name)
		if err != nil {
			t.Errorf("ParseImprovement(%q): %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseImprovement(%q) = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	if _, err := ParseImprovement("bogus"); err == nil {
		t.Error("ParseImprovement accepted bogus name")
	}
}

func TestOptionsString(t *testing.T) {
	cases := []struct {
		o    Options
		want string
	}{
		{OptionsNone(), "No_imp"},
		{OptionsAll(), "All_imps"},
		{OptionsMemory(), "Memory_imps"},
		{OptionsBranch(), "Branch_imps"},
		{Options{BaseUpdate: true}, "base-update"},
		{Options{CallStack: true, FlagReg: true}, "call-stack+flag-reg"},
	}
	for _, tc := range cases {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.o, got, tc.want)
		}
	}
}

func TestAddrModeStrings(t *testing.T) {
	if AddrPlain.String() != "plain" || AddrPreIndex.String() != "pre-index" || AddrPostIndex.String() != "post-index" {
		t.Error("AddrMode strings wrong")
	}
	if AddrPlain.IsBaseUpdate() || !AddrPreIndex.IsBaseUpdate() || !AddrPostIndex.IsBaseUpdate() {
		t.Error("IsBaseUpdate wrong")
	}
}

func TestInferAddrModeDirect(t *testing.T) {
	var tr regTracker
	// Non-memory instructions never infer a mode.
	alu := &cvp.Instruction{Class: cvp.ClassALU, SrcRegs: []uint8{0}, DstRegs: []uint8{0}, DstValues: []uint64{5}}
	if m := inferAddrMode(alu, &tr); m.mode != AddrPlain {
		t.Errorf("ALU inferred as %v", m.mode)
	}
	// SP is never inferred as a base-update register.
	sp := &cvp.Instruction{Class: cvp.ClassLoad, EffAddr: 0x100, MemSize: 8,
		SrcRegs: []uint8{cvp.RegSP}, DstRegs: []uint8{cvp.RegSP}, DstValues: []uint64{0x100}}
	if m := inferAddrMode(sp, &tr); m.mode != AddrPlain {
		t.Errorf("SP writeback inferred as %v", m.mode)
	}
	// Pre-index: new base == effective address.
	pre := &cvp.Instruction{Class: cvp.ClassLoad, EffAddr: 0x200, MemSize: 8,
		SrcRegs: []uint8{3}, DstRegs: []uint8{4, 3}, DstValues: []uint64{9, 0x200}}
	if m := inferAddrMode(pre, &tr); m.mode != AddrPreIndex || m.base != 3 {
		t.Errorf("pre-index inferred as %v base %d", m.mode, m.base)
	}
	// Destination that is not a source is never a base.
	noSrc := &cvp.Instruction{Class: cvp.ClassLoad, EffAddr: 0x200, MemSize: 8,
		SrcRegs: []uint8{3}, DstRegs: []uint8{4}, DstValues: []uint64{0x200}}
	if m := inferAddrMode(noSrc, &tr); m.mode != AddrPlain {
		t.Errorf("non-source destination inferred as %v", m.mode)
	}
}
