package mem

// TLB hierarchy: ChampSim models first-level instruction and data TLBs
// backed by a shared second-level TLB and a fixed-cost page walk. The
// CVP-1 traces include system activity, so address-translation behaviour is
// part of what the Samsung/Qualcomm trace studies could measure (§1).

// PageSize is the translation granularity.
const PageSize = 4096

// PageOf returns the virtual page number of addr.
func PageOf(addr uint64) uint64 { return addr / PageSize }

// TLBConfig parameterizes one translation buffer.
type TLBConfig struct {
	Name    string
	Sets    int
	Ways    int
	Latency uint64
}

// TLBStats counts translation events.
type TLBStats struct {
	Accesses, Hits, Misses uint64
}

// TLB is a set-associative translation buffer. All sets live in one flat
// slice: set s spans entries[s*ways : (s+1)*ways].
type TLB struct {
	cfg     TLBConfig
	entries []tlbEntry
	ways    int
	setMask uint64
	tick    uint64
	stats   TLBStats
}

type tlbEntry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

// NewTLB builds a TLB; Sets must be a power of two.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("mem: TLB sets must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("mem: TLB ways must be positive")
	}
	return &TLB{
		cfg:     cfg,
		setMask: uint64(cfg.Sets - 1),
		entries: make([]tlbEntry, cfg.Sets*cfg.Ways),
		ways:    cfg.Ways,
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// Lookup probes the TLB for the page of addr, returning whether it hit and
// refreshing recency. Insertion on miss is the caller's job (after the next
// level resolves).
func (t *TLB) Lookup(addr uint64) bool {
	vpn := PageOf(addr)
	setIdx := int(vpn & t.setMask)
	set := t.entries[setIdx*t.ways : (setIdx+1)*t.ways]
	t.tick++
	t.stats.Accesses++
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.tick
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	return false
}

// Insert fills the translation for addr, evicting LRU.
func (t *TLB) Insert(addr uint64) {
	vpn := PageOf(addr)
	setIdx := int(vpn & t.setMask)
	set := t.entries[setIdx*t.ways : (setIdx+1)*t.ways]
	t.tick++
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.tick
			return
		}
		if !e.valid {
			victim = i
			break
		}
		if e.lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{vpn: vpn, valid: true, lru: t.tick}
}

// TLBHierarchyConfig sizes the translation structures.
type TLBHierarchyConfig struct {
	ITLB, DTLB, STLB TLBConfig
	// WalkLatency is the page-table walk cost on an STLB miss.
	WalkLatency uint64
}

// DefaultTLBConfig mirrors ChampSim's defaults: 16-set/4-way L1 TLBs, a
// 128-set/12-way shared STLB, and a fixed page-walk cost.
func DefaultTLBConfig() TLBHierarchyConfig {
	return TLBHierarchyConfig{
		ITLB:        TLBConfig{Name: "ITLB", Sets: 16, Ways: 4, Latency: 1},
		DTLB:        TLBConfig{Name: "DTLB", Sets: 16, Ways: 4, Latency: 1},
		STLB:        TLBConfig{Name: "STLB", Sets: 128, Ways: 12, Latency: 8},
		WalkLatency: 120,
	}
}

// TLBHierarchy bundles ITLB/DTLB over a shared STLB.
type TLBHierarchy struct {
	ITLB, DTLB, STLB *TLB
	walk             uint64
}

// NewTLBHierarchy builds the translation hierarchy.
func NewTLBHierarchy(cfg TLBHierarchyConfig) *TLBHierarchy {
	return &TLBHierarchy{
		ITLB: NewTLB(cfg.ITLB),
		DTLB: NewTLB(cfg.DTLB),
		STLB: NewTLB(cfg.STLB),
		walk: cfg.WalkLatency,
	}
}

// TranslateI returns the extra latency of translating an instruction
// address: 0 on an ITLB hit, the STLB latency on an ITLB miss that hits
// the STLB, and the full walk beyond that. Fills happen inline.
func (h *TLBHierarchy) TranslateI(addr uint64) uint64 {
	return h.translate(h.ITLB, addr)
}

// TranslateD is TranslateI for data addresses through the DTLB.
func (h *TLBHierarchy) TranslateD(addr uint64) uint64 {
	return h.translate(h.DTLB, addr)
}

func (h *TLBHierarchy) translate(l1 *TLB, addr uint64) uint64 {
	if l1.Lookup(addr) {
		return 0
	}
	extra := h.STLB.cfg.Latency
	if !h.STLB.Lookup(addr) {
		extra += h.walk
		h.STLB.Insert(addr)
	}
	l1.Insert(addr)
	return extra
}

// ResetStats zeroes all TLB counters.
func (h *TLBHierarchy) ResetStats() {
	h.ITLB.ResetStats()
	h.DTLB.ResetStats()
	h.STLB.ResetStats()
}
