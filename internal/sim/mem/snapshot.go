package mem

// Warmed-state serialization for the checkpointing engine: cache lines and
// replacement metadata, MSHR occupancy, DRAM bank clocks, and TLB entries.
// Statistics counters are included so a pipeline restored mid-trace reports
// the same warm-up-phase numbers as one that replayed the prefix.

import "tracerebase/internal/sim/snap"

// Section tags, one per serialized component.
const (
	snapCache = 0x3e300001
	snapDRAM  = 0x3e300002
	snapTLB   = 0x3e300003
	snapHier  = 0x3e300004
	snapTLBs  = 0x3e300005
)

// StateSnapshotter is the optional interface a prefetcher implements to be
// checkpointable. Stateless prefetchers implement it trivially; a stateful
// prefetcher without it makes the enclosing cache non-checkpointable.
type StateSnapshotter interface {
	Snapshot(w *snap.Writer)
	Restore(r *snap.Reader)
}

// Checkpointable reports whether the cache's full state can be serialized:
// the attached prefetcher, if any, must implement StateSnapshotter.
func (c *Cache) Checkpointable() bool {
	if c.pf == nil {
		return true
	}
	_, ok := c.pf.(StateSnapshotter)
	return ok
}

// Snapshot serializes lines, replacement state, MSHR occupancy, statistics,
// and (when present and checkpointable) prefetcher state.
func (c *Cache) Snapshot(w *snap.Writer) {
	w.Mark(snapCache)
	w.U32(uint32(len(c.lines)))
	for i := range c.lines {
		l := &c.lines[i]
		w.U64(l.tag)
		w.Bool(l.valid)
		w.U64(l.ready)
		w.U64(l.lru)
		w.Bool(l.prefetched)
	}
	w.U64(c.lruTick)
	w.U64s(c.outstanding)
	w.U64(c.stats.Accesses)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.PrefetchIssued)
	w.U64(c.stats.PrefetchFills)
	w.U64(c.stats.UsefulPrefetches)
	w.U64(c.stats.MergedMisses)
	w.U64(c.stats.WriteAccesses)
	w.U64(c.stats.WriteMiss)
	switch p := c.policy.(type) {
	case nil:
		w.U8(0)
	case *SRRIP:
		w.U8(1)
		p.snapshot(w)
	case *DRRIP:
		w.U8(2)
		p.snapshot(w)
	default:
		w.U8(0xff) // forces a restore failure for unknown policies
	}
	if s, ok := c.pf.(StateSnapshotter); ok {
		w.Bool(true)
		s.Snapshot(w)
	} else {
		w.Bool(false)
	}
}

// Restore restores cache state into a cache of identical geometry.
func (c *Cache) Restore(r *snap.Reader) {
	r.Expect(snapCache)
	if n := r.Len(); n != len(c.lines) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range c.lines {
		l := &c.lines[i]
		l.tag = r.U64()
		l.valid = r.Bool()
		l.ready = r.U64()
		l.lru = r.U64()
		l.prefetched = r.Bool()
	}
	c.lruTick = r.U64()
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if cap(c.outstanding) < n {
		c.outstanding = make([]uint64, n)
	}
	c.outstanding = c.outstanding[:n]
	for i := range c.outstanding {
		c.outstanding[i] = r.U64()
	}
	c.stats.Accesses = r.U64()
	c.stats.Hits = r.U64()
	c.stats.Misses = r.U64()
	c.stats.PrefetchIssued = r.U64()
	c.stats.PrefetchFills = r.U64()
	c.stats.UsefulPrefetches = r.U64()
	c.stats.MergedMisses = r.U64()
	c.stats.WriteAccesses = r.U64()
	c.stats.WriteMiss = r.U64()
	kind := r.U8()
	switch p := c.policy.(type) {
	case nil:
		if kind != 0 && r.Err() == nil {
			r.Failf("snapshot geometry mismatch")
			return
		}
	case *SRRIP:
		if kind != 1 {
			r.Failf("snapshot geometry mismatch")
			return
		}
		p.restore(r)
	case *DRRIP:
		if kind != 2 {
			r.Failf("snapshot geometry mismatch")
			return
		}
		p.restore(r)
	}
	hasPF := r.Bool()
	s, ok := c.pf.(StateSnapshotter)
	if hasPF != ok {
		if r.Err() == nil {
			r.Failf("snapshot geometry mismatch")
		}
		return
	}
	if ok {
		s.Restore(r)
	}
}

func (s *SRRIP) snapshot(w *snap.Writer) {
	w.U32(uint32(len(s.rrpv)))
	for _, v := range s.rrpv {
		w.U8(v)
	}
}

func (s *SRRIP) restore(r *snap.Reader) {
	if n := r.Len(); n != len(s.rrpv) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range s.rrpv {
		s.rrpv[i] = r.U8()
	}
}

func (d *DRRIP) snapshot(w *snap.Writer) {
	w.I64(int64(d.psel))
	w.U32(d.brc)
	d.srrip.snapshot(w)
}

func (d *DRRIP) restore(r *snap.Reader) {
	d.psel = int(r.I64())
	d.brc = r.U32()
	d.srrip.restore(r)
}

// Snapshot serializes bank clocks and the access counter.
func (d *DRAM) Snapshot(w *snap.Writer) {
	w.Mark(snapDRAM)
	w.U64s(d.nextFree)
	w.U64(d.accesses)
}

// Restore restores DRAM state.
func (d *DRAM) Restore(r *snap.Reader) {
	r.Expect(snapDRAM)
	r.U64s(d.nextFree)
	d.accesses = r.U64()
}

// Snapshot serializes TLB entries, the LRU clock, and statistics.
func (t *TLB) Snapshot(w *snap.Writer) {
	w.Mark(snapTLB)
	w.U32(uint32(len(t.entries)))
	for i := range t.entries {
		e := &t.entries[i]
		w.U64(e.vpn)
		w.Bool(e.valid)
		w.U64(e.lru)
	}
	w.U64(t.tick)
	w.U64(t.stats.Accesses)
	w.U64(t.stats.Hits)
	w.U64(t.stats.Misses)
}

// Restore restores TLB state into a TLB of identical geometry.
func (t *TLB) Restore(r *snap.Reader) {
	r.Expect(snapTLB)
	if n := r.Len(); n != len(t.entries) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range t.entries {
		e := &t.entries[i]
		e.vpn = r.U64()
		e.valid = r.Bool()
		e.lru = r.U64()
	}
	t.tick = r.U64()
	t.stats.Accesses = r.U64()
	t.stats.Hits = r.U64()
	t.stats.Misses = r.U64()
}

// Checkpointable reports whether every level of the hierarchy can be
// serialized.
func (h *Hierarchy) Checkpointable() bool {
	return h.L1I.Checkpointable() && h.L1D.Checkpointable() &&
		h.L2.Checkpointable() && h.LLC.Checkpointable()
}

// Snapshot serializes all four cache levels and DRAM.
func (h *Hierarchy) Snapshot(w *snap.Writer) {
	w.Mark(snapHier)
	h.L1I.Snapshot(w)
	h.L1D.Snapshot(w)
	h.L2.Snapshot(w)
	h.LLC.Snapshot(w)
	h.DRAM.Snapshot(w)
}

// Restore restores the full hierarchy.
func (h *Hierarchy) Restore(r *snap.Reader) {
	r.Expect(snapHier)
	h.L1I.Restore(r)
	h.L1D.Restore(r)
	h.L2.Restore(r)
	h.LLC.Restore(r)
	h.DRAM.Restore(r)
}

// Snapshot serializes the three TLB levels.
func (t *TLBHierarchy) Snapshot(w *snap.Writer) {
	w.Mark(snapTLBs)
	t.ITLB.Snapshot(w)
	t.DTLB.Snapshot(w)
	t.STLB.Snapshot(w)
}

// Restore restores the translation hierarchy.
func (t *TLBHierarchy) Restore(r *snap.Reader) {
	r.Expect(snapTLBs)
	t.ITLB.Restore(r)
	t.DTLB.Restore(r)
	t.STLB.Restore(r)
}

// ValidTags returns the tags of all valid lines in set order; the
// functional-warming equivalence tests compare the warmed and detailed
// cache images through it.
func (c *Cache) ValidTags() []uint64 {
	var out []uint64
	for i := range c.lines {
		if c.lines[i].valid {
			out = append(out, c.lines[i].tag)
		}
	}
	return out
}

// ValidVPNs returns the virtual page numbers of all valid entries in set
// order, for the warming equivalence tests.
func (t *TLB) ValidVPNs() []uint64 {
	var out []uint64
	for i := range t.entries {
		if t.entries[i].valid {
			out = append(out, t.entries[i].vpn)
		}
	}
	return out
}
