package mem

// Replacement policies. ChampSim ships LRU plus the Cache Replacement
// Championship policies; the simulated LLC can run LRU (default), SRRIP, or
// DRRIP (Jaleel et al.), selected per cache. Thrash-prone workloads — the
// huge-footprint server traces — are where RRIP-family policies diverge
// from LRU.

// Replacement decides victims within a set and observes hits and fills.
type Replacement interface {
	// Name identifies the policy.
	Name() string
	// Hit notes a demand hit on way.
	Hit(set, way int)
	// Fill notes line installation into way (prefetch reports pf=true).
	Fill(set, way int, pf bool)
	// Victim picks the way to evict among ways valid lines; invalid ways
	// are chosen by the cache before consulting the policy.
	Victim(set int) int
}

// NewReplacement constructs a policy by name ("lru", "srrip", "drrip") for
// a cache of the given geometry.
func NewReplacement(name string, sets, ways int) (Replacement, bool) {
	switch name {
	case "lru", "":
		return nil, true // nil = the cache's built-in LRU
	case "srrip":
		return NewSRRIP(sets, ways), true
	case "drrip":
		return NewDRRIP(sets, ways), true
	}
	return nil, false
}

// rripMax is the re-reference interval ceiling (2-bit RRPV).
const rripMax = 3

// SRRIP is Static RRIP: lines insert with a long re-reference prediction
// (rripMax-1) and promote to 0 on hit; victims are lines with RRPV==max,
// aging the set until one exists. The RRPV counters of all sets live in one
// flat slice with a ways stride.
type SRRIP struct {
	rrpv []uint8
	ways int
}

// NewSRRIP builds an SRRIP policy.
func NewSRRIP(sets, ways int) *SRRIP {
	s := &SRRIP{rrpv: make([]uint8, sets*ways), ways: ways}
	for i := range s.rrpv {
		s.rrpv[i] = rripMax
	}
	return s
}

// Name implements Replacement.
func (s *SRRIP) Name() string { return "srrip" }

// Hit implements Replacement.
func (s *SRRIP) Hit(set, way int) { s.rrpv[set*s.ways+way] = 0 }

// Fill implements Replacement: long re-reference interval on insertion —
// streaming lines age out before disturbing the working set.
func (s *SRRIP) Fill(set, way int, pf bool) {
	v := uint8(rripMax - 1)
	if pf {
		v = rripMax // prefetches are the most speculative
	}
	s.rrpv[set*s.ways+way] = v
}

// Victim implements Replacement.
func (s *SRRIP) Victim(set int) int {
	row := s.rrpv[set*s.ways : (set+1)*s.ways]
	for {
		for i, v := range row {
			if v == rripMax {
				return i
			}
		}
		for i := range row {
			row[i]++
		}
	}
}

// DRRIP is Dynamic RRIP: set dueling between SRRIP insertion and bimodal
// (mostly-distant) insertion, with follower sets using the winner.
type DRRIP struct {
	srrip *SRRIP
	// psel is the policy selector: positive favours bimodal insertion.
	psel int
	// leaderMask distinguishes dueling leader sets.
	setsBits uint
	brc      uint32 // bimodal throttle counter
}

// NewDRRIP builds a DRRIP policy.
func NewDRRIP(sets, ways int) *DRRIP {
	bits := uint(0)
	for s := sets; s > 1; s >>= 1 {
		bits++
	}
	return &DRRIP{srrip: NewSRRIP(sets, ways), setsBits: bits}
}

// Name implements Replacement.
func (d *DRRIP) Name() string { return "drrip" }

// leader returns +1 for SRRIP leader sets, -1 for bimodal leaders, 0 for
// followers (simple low-bit constituency).
func (d *DRRIP) leader(set int) int {
	switch set & 31 {
	case 0:
		return +1
	case 1:
		return -1
	default:
		return 0
	}
}

// Hit implements Replacement.
func (d *DRRIP) Hit(set, way int) {
	d.srrip.Hit(set, way)
	// Misses in leader sets train psel at fill time; hits need no
	// bookkeeping beyond promotion.
}

// Fill implements Replacement.
func (d *DRRIP) Fill(set, way int, pf bool) {
	useBimodal := false
	switch d.leader(set) {
	case +1: // SRRIP leader
		if d.psel > -512 {
			d.psel--
		}
	case -1: // bimodal leader
		useBimodal = true
		if d.psel < 511 {
			d.psel++
		}
	default:
		useBimodal = d.psel > 0
	}
	if useBimodal {
		// Bimodal RRIP: insert distant almost always; near 1/32 of
		// the time.
		d.brc++
		if d.brc%32 == 0 {
			d.srrip.rrpv[set*d.srrip.ways+way] = rripMax - 1
		} else {
			d.srrip.rrpv[set*d.srrip.ways+way] = rripMax
		}
		return
	}
	d.srrip.Fill(set, way, pf)
}

// Victim implements Replacement.
func (d *DRRIP) Victim(set int) int { return d.srrip.Victim(set) }

// Shared-LLC insertion classification thresholds: a core is treated as
// thrashing once it has at least sharedProbation fills on record and fewer
// than one hit per sharedReuseShift fills; counters halve every
// sharedEpoch fills so a core can rehabilitate after a phase change.
const (
	sharedProbation  = 32
	sharedReuseShift = 3 // reuse ratio threshold 1/8
	sharedEpoch      = 8192
)

// SharedSRRIP is the core-aware variant of SRRIP for a shared LLC: each
// core's demand fills are classified by that core's observed reuse. Cores
// whose lines get re-referenced insert at the normal long interval
// (rripMax-1); cores that stream — many fills, almost no hits, the
// cache-thrashing neighbor — insert distant (rripMax), so their lines are
// the first victims and a co-runner's working set survives. Victim
// selection and hit promotion are plain SRRIP; only insertion is
// per-core.
type SharedSRRIP struct {
	srrip *SRRIP
	core  int // current requester, set by the owning cache
	fills []uint64
	hits  []uint64
}

// NewSharedSRRIP builds the policy for an n-core shared cache.
func NewSharedSRRIP(n, sets, ways int) *SharedSRRIP {
	return &SharedSRRIP{
		srrip: NewSRRIP(sets, ways),
		fills: make([]uint64, n),
		hits:  make([]uint64, n),
	}
}

// Name implements Replacement.
func (s *SharedSRRIP) Name() string { return "shared-srrip" }

// SetRequester records the core issuing subsequent accesses; the owning
// cache forwards its SetRequester calls here.
func (s *SharedSRRIP) SetRequester(core int) { s.core = core }

// Hit implements Replacement.
func (s *SharedSRRIP) Hit(set, way int) {
	s.hits[s.core]++
	s.srrip.Hit(set, way)
}

// thrashing reports whether the current core's fills should insert distant.
func (s *SharedSRRIP) thrashing() bool {
	f := s.fills[s.core]
	return f >= sharedProbation && s.hits[s.core] < f>>sharedReuseShift
}

// Fill implements Replacement.
func (s *SharedSRRIP) Fill(set, way int, pf bool) {
	v := uint8(rripMax - 1)
	if pf || s.thrashing() {
		v = rripMax
	}
	s.srrip.rrpv[set*s.srrip.ways+way] = v
	s.fills[s.core]++
	if s.fills[s.core] >= sharedEpoch {
		s.fills[s.core] >>= 1
		s.hits[s.core] >>= 1
	}
}

// Victim implements Replacement.
func (s *SharedSRRIP) Victim(set int) int { return s.srrip.Victim(set) }
