package conformance

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"

	"tracerebase/internal/experiments"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
)

// warnLog captures store warnings from concurrent sweep workers.
type warnLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *warnLog) warnf(format string, args ...any) {
	w.mu.Lock()
	fmt.Fprintf(&w.buf, format+"\n", args...)
	w.mu.Unlock()
}

func (w *warnLog) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// CheckSlabTransparency is the differential oracle for the compiled-trace
// store: slabs must be invisible in the output. It runs the same sweep five
// ways — store-off, cold store, warm store (a fresh Store over the same
// directory, modelling a second process), warm store with one slab
// corrupted mid-records, and warm store with one slab truncated — and
// requires byte-identical rendered output (and structurally identical
// results, converter statistics included) from all of them. It also asserts
// the store behaved as claimed: the cold run converted once per
// (trace, option class), the warm run mapped everything from disk without
// converting, and each damaged slab was detected by checksum, discarded
// with a pointed warning, and reconverted — never served, never a crash.
func CheckSlabTransparency(profiles []synth.Profile, instructions int, warmup uint64) error {
	dir, err := os.MkdirTemp("", "tracerebase-slabcheck-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	baseCfg := experiments.SweepConfig{
		Instructions: instructions,
		Warmup:       warmup,
		Parallelism:  2,
		Variants:     nil, // all ten: every converter-option class gets a slab
	}
	render := func(res []experiments.TraceResult) []byte {
		// Figs. 1, 4, and 5 together consume IPC, the converter statistics
		// persisted in the slab meta region, and return-MPKI stats.
		var buf bytes.Buffer
		experiments.RenderFig1(&buf, experiments.Fig1(res))
		experiments.RenderFig4(&buf, experiments.Fig4(res))
		experiments.RenderFig5(&buf, experiments.Fig5(res))
		return buf.Bytes()
	}
	sweep := func(store *experiments.SlabStore) ([]byte, []experiments.TraceResult, error) {
		cfg := baseCfg
		cfg.Slabs = store
		res, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			return nil, nil, err
		}
		return render(res), res, nil
	}
	open := func(warn func(string, ...any)) (*experiments.SlabStore, error) {
		return tracestore.Open(tracestore.Config{Dir: dir, Warn: warn})
	}

	want, wantRes, err := sweep(nil)
	if err != nil {
		return fmt.Errorf("store-off sweep: %w", err)
	}

	jobs := uint64(len(profiles) * len(experiments.Variants()))
	cold, err := open(nil)
	if err != nil {
		return err
	}
	coldOut, coldRes, err := sweep(cold)
	cold.Close()
	if err != nil {
		return fmt.Errorf("cold-store sweep: %w", err)
	}
	if !bytes.Equal(coldOut, want) {
		return fmt.Errorf("cold-store sweep output differs from store-off output")
	}
	if !reflect.DeepEqual(coldRes, wantRes) {
		return fmt.Errorf("cold-store sweep results differ structurally from store-off results")
	}
	if s := cold.Stats(); s.Converts != jobs || s.Hits != 0 {
		return fmt.Errorf("cold store converted %d slabs with %d hits, want %d converts and 0 hits", s.Converts, s.Hits, jobs)
	}

	// A fresh Store over the same directory stands in for a second process:
	// every slab must map from disk, nothing reconverted or resynthesized.
	warm, err := open(nil)
	if err != nil {
		return err
	}
	warmOut, warmRes, err := sweep(warm)
	warm.Close()
	if err != nil {
		return fmt.Errorf("warm-store sweep: %w", err)
	}
	if !bytes.Equal(warmOut, want) {
		return fmt.Errorf("warm-store sweep output differs from store-off output")
	}
	if !reflect.DeepEqual(warmRes, wantRes) {
		return fmt.Errorf("warm-store sweep results differ structurally from store-off results")
	}
	if s := warm.Stats(); s.Converts != 0 || s.DiskHits != jobs {
		return fmt.Errorf("warm store: %d converts, %d disk hits, want 0 and %d", s.Converts, s.DiskHits, jobs)
	}

	// Damage one slab per mode — a byte flipped mid-records, then a
	// truncation — and re-run with a fresh Store each time. The damage must
	// be caught by checksum (or size), warned about, and repaired by
	// reconversion; the rendered output must not move.
	damage := []struct {
		name  string
		apply func(path string) error
	}{
		{"corrupted", func(path string) error {
			buf, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			buf[len(buf)/2] ^= 0xff
			return os.WriteFile(path, buf, 0o644)
		}},
		{"truncated", func(path string) error {
			return os.Truncate(path, 4096+64)
		}},
	}
	for _, d := range damage {
		victim, err := pickSlab(dir)
		if err != nil {
			return err
		}
		if err := d.apply(victim); err != nil {
			return err
		}
		var warns warnLog
		hurt, err := open(warns.warnf)
		if err != nil {
			return err
		}
		hurtOut, _, err := sweep(hurt)
		hurt.Close()
		if err != nil {
			return fmt.Errorf("sweep over %s slab: %w", d.name, err)
		}
		if !bytes.Equal(hurtOut, want) {
			return fmt.Errorf("%s slab leaked into the output", d.name)
		}
		if s := hurt.Stats(); s.Corrupt != 1 || s.Converts != 1 || s.DiskHits != jobs-1 {
			return fmt.Errorf("%s-slab run: %d corrupt, %d converts, %d disk hits, want 1, 1, %d",
				d.name, s.Corrupt, s.Converts, s.DiskHits, jobs-1)
		}
		if w := warns.String(); !strings.Contains(w, "corrupt slab") {
			return fmt.Errorf("%s-slab run produced no pointed warning (got %q)", d.name, w)
		}
		if _, err := os.Stat(victim); err != nil {
			return fmt.Errorf("%s slab was not rewritten after reconversion: %v", d.name, err)
		}
	}
	return nil
}

// pickSlab returns the path of one slab file under dir.
func pickSlab(dir string) (string, error) {
	var found string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if found == "" && !d.IsDir() && strings.HasSuffix(d.Name(), ".slab") {
			found = path
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if found == "" {
		return "", fmt.Errorf("no slab files found under %s", dir)
	}
	return found, nil
}
