package experiments

import (
	"fmt"
	"io"
	"sort"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/stats"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
)

// RenderTable1 prints Table 1: the summary of the proposed trace conversion
// improvements.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: summary of the proposed trace conversion improvements")
	fmt.Fprintf(w, "  %-8s %-14s %s\n", "type", "improvement", "modification to the converter")
	for _, imp := range core.Improvements {
		fmt.Fprintf(w, "  %-8s %-14s %s\n", imp.Kind, imp.Name, imp.Summary)
	}
}

// Table2Row characterizes one IPC-1 trace with all fixes applied (§4.3).
type Table2Row struct {
	Name, CVPName string
	IPC           float64
	// Overall, Direction, Target are the branch MPKIs.
	Overall, Direction, Target float64
	// L1I, L1D, L2, LLC are the memory-hierarchy MPKIs.
	L1I, L1D, L2, LLC float64
	// IPCDeltaPct compares against the original-converter trace.
	IPCDeltaPct float64
	// TargetDeltaPct compares the target MPKI against the original.
	TargetDeltaPct float64
}

// Table2Result is the full characterization plus the summary statistics
// §4.3 quotes.
type Table2Result struct {
	Rows []Table2Row
	// MeanIPCDeltaPct is the average IPC change vs original traces
	// (paper: −2.4%).
	MeanIPCDeltaPct float64
	// TracesBeyond5Pct counts traces whose IPC differs by more than 5%
	// (paper: 19 of 50).
	TracesBeyond5Pct int
	// MeanTargetDeltaPct is the average target-MPKI change (paper: −13%).
	MeanTargetDeltaPct float64
}

// Table2 characterizes the IPC-1 traces on the develop model with all
// fixes, comparing against the original conversion. A nil suite means all
// 50 IPC-1 traces.
func Table2(cfg SweepConfig, suite []synth.IPC1Trace) (Table2Result, error) {
	cfg.Variants = figureVariants(VariantNone, VariantAll)
	if suite == nil {
		suite = synth.IPC1Suite()
	}
	profiles := make([]synth.Profile, len(suite))
	for i, tr := range suite {
		profiles[i] = tr.Profile
	}
	results, err := RunSweep(profiles, cfg)
	if err != nil {
		return Table2Result{}, err
	}
	var out Table2Result
	var ipcDeltas, tgtDeltas []float64
	for i, tr := range results {
		all := tr.Results[VariantAll]
		base := tr.Results[VariantNone]
		st := all.Sim
		row := Table2Row{
			Name:        suite[i].Name,
			CVPName:     suite[i].CVPName,
			IPC:         st.IPC(),
			Overall:     st.BranchMPKI(),
			Direction:   st.DirMPKI(),
			Target:      st.TargetMPKI(),
			L1I:         st.L1I.MPKI(st.Instructions),
			L1D:         st.L1D.MPKI(st.Instructions),
			L2:          st.L2.MPKI(st.Instructions),
			LLC:         st.LLC.MPKI(st.Instructions),
			IPCDeltaPct: 100 * tr.Delta(VariantAll),
		}
		if bt := base.Sim.TargetMPKI(); bt > 0 {
			row.TargetDeltaPct = 100 * (st.TargetMPKI() - bt) / bt
			tgtDeltas = append(tgtDeltas, row.TargetDeltaPct)
		}
		ipcDeltas = append(ipcDeltas, row.IPCDeltaPct)
		if row.IPCDeltaPct > 5 || row.IPCDeltaPct < -5 {
			out.TracesBeyond5Pct++
		}
		out.Rows = append(out.Rows, row)
	}
	out.MeanIPCDeltaPct = stats.Mean(ipcDeltas)
	out.MeanTargetDeltaPct = stats.Mean(tgtDeltas)
	return out, nil
}

// RenderTable2 prints the Table 2 characterization.
func RenderTable2(w io.Writer, t Table2Result) {
	fmt.Fprintln(w, "Table 2: CVP-1 to IPC-1 trace mapping and characterization with the improved converter")
	fmt.Fprintf(w, "  %-19s %-16s %5s | %7s %9s %6s | %6s %6s %6s %6s | %7s\n",
		"IPC-1 trace", "CVP-1 trace", "IPC", "overall", "direction", "target", "L1I", "L1D", "L2", "LLC", "dIPC%")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-19s %-16s %5.2f | %7.2f %9.2f %6.2f | %6.1f %6.1f %6.1f %6.1f | %+6.1f%%\n",
			r.Name, r.CVPName, r.IPC, r.Overall, r.Direction, r.Target, r.L1I, r.L1D, r.L2, r.LLC, r.IPCDeltaPct)
	}
	fmt.Fprintf(w, "  mean IPC change vs original traces: %+.1f%%; traces beyond +/-5%%: %d of %d\n",
		t.MeanIPCDeltaPct, t.TracesBeyond5Pct, len(t.Rows))
	fmt.Fprintf(w, "  mean target-MPKI change: %+.1f%%\n", t.MeanTargetDeltaPct)
}

// Table3Prefetchers lists the eight IPC-1 finalists evaluated in Table 3,
// using this repository's prefetcher names.
var Table3Prefetchers = []string{"epi", "djolt", "fnl-mma", "barca", "pips", "jip", "mana", "tap"}

// prefetcherDisplay maps implementation names to the paper's spellings.
var prefetcherDisplay = map[string]string{
	"epi": "EPI", "djolt": "D-JOLT", "fnl-mma": "FNL+MMA", "barca": "Barça",
	"pips": "PIPS", "jip": "JIP", "mana": "MANA", "tap": "TAP",
}

// Table3Entry is one ranking row.
type Table3Entry struct {
	Rank       int
	Prefetcher string
	// Speedup is the geomean IPC ratio vs the no-prefetcher baseline.
	Speedup float64
}

// Table3Result carries the two rankings of Table 3.
type Table3Result struct {
	// Competition is the ranking on traces converted with the original
	// converter; Fixed on traces with the improvements applied (minus
	// mem-footprint, per the paper's footnote 4: the IPC-1 ChampSim
	// cannot execute multi-address instructions).
	Competition, Fixed []Table3Entry
}

// Table3 re-runs the IPC-1 championship on both trace sets using the IPC-1
// processor model. A nil suite means all 50 IPC-1 traces.
//
// Like RunSweep, Table3 consults cfg.Cache before every simulation:
// generation and conversion are deferred into closures that only a cache
// miss forces, so a fully-cached trace costs no simulation work at all.
func Table3(cfg SweepConfig, suite []synth.IPC1Trace) (Table3Result, error) {
	if err := cfg.fill(); err != nil {
		return Table3Result{}, err
	}
	fixedOpts := core.OptionsAll()
	fixedOpts.MemFootprint = false // footnote 4

	type set struct {
		name  string
		opts  core.Options
		rules champtrace.RuleSet
	}
	sets := []set{
		{"competition", core.OptionsNone(), rulesFor(core.OptionsNone())},
		{"fixed", fixedOpts, rulesFor(fixedOpts)},
	}

	if suite == nil {
		suite = synth.IPC1Suite()
	}
	// speedups[set][prefetcher] = per-trace IPC ratios
	speedups := map[string]map[string][]float64{}
	for _, s := range sets {
		speedups[s.name] = map[string][]float64{}
	}

	for ti, trc := range suite {
		// The trace is generated at most once, and converted at most once
		// per set, no matter how many of the 18 simulations miss — and not
		// at all when every simulation hits the cache. With a slab store
		// the per-set conversion additionally resolves through the store,
		// so a warm run skips it entirely.
		var instrs []cvp.Instruction
		generate := func() ([]cvp.Instruction, error) {
			if instrs != nil {
				return instrs, nil
			}
			var err error
			instrs, err = trc.Profile.GenerateBatch(cfg.Instructions)
			return instrs, err
		}
		for _, s := range sets {
			err := func() error {
				var src *champtrace.ValuesSource
				var convStats core.Stats
				var slab *tracestore.Slab
				defer func() {
					if slab != nil {
						slab.Release()
					}
				}()
				convert := func() error {
					if src != nil {
						return nil
					}
					if cfg.Slabs != nil {
						sl, err := acquireSlab(cfg.Slabs, &trc.Profile, s.opts, cfg.Instructions, generate)
						if err != nil {
							return err
						}
						slab = sl
						convStats = sl.Conv()
						src = champtrace.NewValuesSource(sl.Records())
						return nil
					}
					instrs, err := generate()
					if err != nil {
						return err
					}
					recs, cs, err := core.ConvertAllBatch(cvp.NewValuesSource(instrs), s.opts)
					if err != nil {
						return err
					}
					convStats = cs
					src = champtrace.NewValuesSource(recs)
					return nil
				}
				mkSource := func() (champtrace.Source, func() core.Stats, func()) {
					src.Reset()
					return src, func() core.Stats { return convStats }, func() {}
				}
				runOne := func(pf string) (Result, error) {
					simCfg := sim.ConfigIPC1(pf, s.rules)
					simCfg.NoCycleSkip = cfg.NoSkip
					cfg.applySampling(&simCfg)
					compute := func() (Result, error) {
						if err := convert(); err != nil {
							return Result{}, err
						}
						if cfg.Checkpoints != nil && simCfg.SamplePeriod > 0 && cfg.Warmup > 0 {
							// Only the prefetcher-less baseline is checkpointable
							// (stateful IPC-1 prefetchers lack snapshot support);
							// the rest fall through to a plain sampled run.
							k := checkpointKey(&trc.Profile, s.opts, simCfg, cfg.Instructions, cfg.Warmup)
							res, ok, err := runCheckpointed(cfg.Checkpoints, cfg.ckptGate, k, mkSource, simCfg, cfg.Warmup)
							if err != nil {
								return Result{}, err
							}
							if ok {
								return res, nil
							}
						}
						src.Reset()
						st, err := sim.Run(src, simCfg, cfg.Warmup, 0)
						if err != nil {
							return Result{}, err
						}
						return Result{IPC: st.IPC(), Sim: st, Conv: convStats}, nil
					}
					var res Result
					var err error
					var key resultcache.Key
					if cfg.Cache != nil || cfg.Exp != nil {
						key = cacheKey(&trc.Profile, s.opts, simCfg, cfg.Instructions, cfg.Warmup)
					}
					if cfg.Cache == nil {
						res, err = compute()
					} else {
						res, err = cfg.Cache.GetOrCompute(key, compute)
					}
					if err == nil {
						// The set name ("competition"/"fixed") is the cell's
						// variant; the prefetcher identity column separates
						// the nine models within a set.
						cfg.recordCell(&trc.Profile, s.name, simCfg, key, res)
					}
					return res, err
				}
				base, err := runOne("none")
				if err != nil {
					return err
				}
				for _, pf := range Table3Prefetchers {
					st, err := runOne(pf)
					if err != nil {
						return err
					}
					speedups[s.name][pf] = append(speedups[s.name][pf], st.IPC/base.IPC)
				}
				return nil
			}()
			if err != nil {
				return Table3Result{}, err
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(ti+1, len(suite))
		}
	}

	rank := func(setName string) []Table3Entry {
		entries := make([]Table3Entry, 0, len(Table3Prefetchers))
		for _, pf := range Table3Prefetchers {
			entries = append(entries, Table3Entry{
				Prefetcher: prefetcherDisplay[pf],
				Speedup:    stats.Geomean(speedups[setName][pf]),
			})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Speedup > entries[j].Speedup })
		for i := range entries {
			entries[i].Rank = i + 1
		}
		return entries
	}
	return Table3Result{Competition: rank("competition"), Fixed: rank("fixed")}, nil
}

// RenderTable3 prints the IPC-1 ranking comparison.
func RenderTable3(w io.Writer, t Table3Result) {
	fmt.Fprintln(w, "Table 3: IPC-1 ranking (geomean speedup over no instruction prefetching)")
	fmt.Fprintf(w, "  %-28s | %s\n", "competition traces", "fixed traces")
	for i := range t.Competition {
		c, f := t.Competition[i], t.Fixed[i]
		fmt.Fprintf(w, "  %2d  %-10s %7.4f       | %2d  %-10s %7.4f\n",
			c.Rank, c.Prefetcher, c.Speedup, f.Rank, f.Prefetcher, f.Speedup)
	}
	fmt.Fprintln(w, "  rank moves (competition -> fixed):")
	pos := map[string]int{}
	for _, c := range t.Competition {
		pos[c.Prefetcher] = c.Rank
	}
	for _, f := range t.Fixed {
		if d := pos[f.Prefetcher] - f.Rank; d != 0 {
			fmt.Fprintf(w, "    %-10s %+d (from %d to %d)\n", f.Prefetcher, d, pos[f.Prefetcher], f.Rank)
		}
	}
}
