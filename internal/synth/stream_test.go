package synth

import (
	"io"
	"testing"

	"tracerebase/internal/cvp"
)

func sameCVPInstr(a, b *cvp.Instruction) bool {
	if a.PC != b.PC || a.Class != b.Class || a.EffAddr != b.EffAddr ||
		a.MemSize != b.MemSize || a.Taken != b.Taken || a.Target != b.Target {
		return false
	}
	if len(a.SrcRegs) != len(b.SrcRegs) || len(a.DstRegs) != len(b.DstRegs) ||
		len(a.DstValues) != len(b.DstValues) {
		return false
	}
	for i := range a.SrcRegs {
		if a.SrcRegs[i] != b.SrcRegs[i] {
			return false
		}
	}
	for i := range a.DstRegs {
		if a.DstRegs[i] != b.DstRegs[i] {
			return false
		}
	}
	for i := range a.DstValues {
		if a.DstValues[i] != b.DstValues[i] {
			return false
		}
	}
	return true
}

// TestStreamMatchesGenerate: pulling a trace through Stream in batches of
// any size — aligned or not with the generator's internal flush points —
// yields exactly the Generate(n) sequence, then sticky io.EOF.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, cat := range []Category{ComputeInt, Server} {
		p := PublicProfile(cat, 5)
		const n = 20000
		want, err := p.Generate(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, batchSize := range []int{1, 7, 512, 1000, n + 99} {
			s, err := p.Stream(n)
			if err != nil {
				t.Fatal(err)
			}
			slab := cvp.MakeBatch(batchSize)
			got := 0
			for {
				k, err := s.NextBatch(slab)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if k == 0 {
					t.Fatalf("%s/%d: NextBatch returned 0 with nil error", cat, batchSize)
				}
				for i := 0; i < k; i++ {
					if got >= n {
						t.Fatalf("%s/%d: stream longer than Generate (%d+)", cat, batchSize, got)
					}
					if !sameCVPInstr(&slab[i], want[got]) {
						t.Fatalf("%s/%d: instruction %d differs:\ngot  %+v\nwant %+v",
							cat, batchSize, got, &slab[i], want[got])
					}
					got++
				}
			}
			if got != n {
				t.Fatalf("%s/%d: stream yielded %d instructions, want %d", cat, batchSize, got, n)
			}
			for i := 0; i < 2; i++ {
				if k, err := s.NextBatch(slab); k != 0 || err != io.EOF {
					t.Fatalf("%s/%d: post-EOF NextBatch = (%d, %v)", cat, batchSize, k, err)
				}
			}
			s.Close()
		}
	}
}

// TestStreamCloseEarly: abandoning a stream mid-trace releases it and makes
// further pulls return io.EOF.
func TestStreamCloseEarly(t *testing.T) {
	p := PublicProfile(Crypto, 2)
	s, err := p.Stream(50000)
	if err != nil {
		t.Fatal(err)
	}
	slab := cvp.MakeBatch(64)
	if _, err := s.NextBatch(slab); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if k, err := s.NextBatch(slab); k != 0 || err != io.EOF {
		t.Fatalf("post-Close NextBatch = (%d, %v), want (0, io.EOF)", k, err)
	}
}

// TestGenerateBatchMatchesGenerate: the contiguous-slab generator is
// element-wise identical to Generate.
func TestGenerateBatchMatchesGenerate(t *testing.T) {
	p := PublicProfile(ComputeFP, 9)
	const n = 15000
	want, err := p.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.GenerateBatch(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("GenerateBatch produced %d instructions, want %d", len(got), len(want))
	}
	for i := range got {
		if !sameCVPInstr(&got[i], want[i]) {
			t.Fatalf("instruction %d differs:\ngot  %+v\nwant %+v", i, &got[i], want[i])
		}
	}
}

// TestStreamRejectsInvalid: an invalid profile fails at Stream creation,
// like Generate.
func TestStreamRejectsInvalid(t *testing.T) {
	var p Profile // zero profile is invalid
	if _, err := p.Stream(100); err == nil {
		t.Fatal("Stream accepted an invalid profile")
	}
	if _, err := p.GenerateBatch(100); err == nil {
		t.Fatal("GenerateBatch accepted an invalid profile")
	}
}
