// Prefetch-contest: a miniature IPC-1 championship (§4.4, Table 3). The
// eight contest prefetchers run on a handful of instruction-cache-heavy
// server traces under the IPC-1 processor model, once on traces from the
// original converter ("competition") and once on fixed traces — showing how
// trace fidelity reshuffles a championship ranking.
package main

import (
	"fmt"
	"log"
	"sort"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim"
	"tracerebase/internal/stats"
	"tracerebase/internal/synth"
)

var prefetchers = []string{"epi", "djolt", "fnl-mma", "barca", "pips", "jip", "mana", "tap"}

func main() {
	traces := []string{"server_025", "server_030", "server_033", "server_037"}
	fmt.Printf("mini IPC-1 on %v\n\n", traces)

	type set struct {
		label string
		opts  core.Options
		rules champtrace.RuleSet
	}
	fixedOpts := core.OptionsAll()
	fixedOpts.MemFootprint = false // the IPC-1 ChampSim rejects multi-address records
	sets := []set{
		{"competition traces", core.OptionsNone(), champtrace.RulesOriginal},
		{"fixed traces", fixedOpts, champtrace.RulesPatched},
	}

	speedups := map[string]map[string][]float64{}
	for _, s := range sets {
		speedups[s.label] = map[string][]float64{}
	}

	for _, name := range traces {
		trc, ok := synth.FindIPC1(name)
		if !ok {
			log.Fatalf("trace %s not found", name)
		}
		instrs, err := trc.Profile.Generate(120000)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range sets {
			recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), s.opts)
			if err != nil {
				log.Fatal(err)
			}
			src := champtrace.NewSliceSource(recs)
			base, err := sim.Run(src, sim.ConfigIPC1("none", s.rules), 40000, 0)
			if err != nil {
				log.Fatal(err)
			}
			for _, pf := range prefetchers {
				src.Reset()
				st, err := sim.Run(src, sim.ConfigIPC1(pf, s.rules), 40000, 0)
				if err != nil {
					log.Fatal(err)
				}
				speedups[s.label][pf] = append(speedups[s.label][pf], st.IPC()/base.IPC())
			}
		}
	}

	for _, s := range sets {
		type entry struct {
			pf string
			sp float64
		}
		var ranking []entry
		for _, pf := range prefetchers {
			ranking = append(ranking, entry{pf, stats.Geomean(speedups[s.label][pf])})
		}
		sort.Slice(ranking, func(i, j int) bool { return ranking[i].sp > ranking[j].sp })
		fmt.Printf("%s:\n", s.label)
		for i, e := range ranking {
			fmt.Printf("  %d. %-9s %.4f\n", i+1, e.pf, e.sp)
		}
		fmt.Println()
	}
}
