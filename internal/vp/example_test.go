package vp_test

import (
	"fmt"

	"tracerebase/internal/vp"
)

// ExamplePredictor trains a stride predictor on a loop induction variable —
// the value pattern the CVP-1 traces are full of (base-update address
// streams advance the same way).
func ExamplePredictor() {
	p, err := vp.New("stride")
	if err != nil {
		panic(err)
	}
	var ctx vp.Context
	pc := uint64(0x400100)
	// Train: the site produces 100, 108, 116, ...
	for i := 0; i < 8; i++ {
		p.Update(pc, ctx, uint64(100+8*i))
	}
	val, confident := p.Predict(pc, ctx)
	fmt.Printf("prediction: %d (confident: %v)\n", val, confident)
	// Output:
	// prediction: 164 (confident: true)
}
