package conformance

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"

	"tracerebase/internal/experiments"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/synth"
)

// CheckTierTransparency is the differential oracle for the tiered cache
// backend: no tier composition may be visible in the output. It runs the
// same sweep four ways — cache off, cold tiered (memory+disk), warm
// memory tier (a fresh cache over the same backend, modelling a repeat
// query against a live daemon), and warm remote tier (a second tiered
// stack whose slowest tier is the first stack served over the HTTP wire
// protocol, modelling two chained daemons) — and requires byte-identical
// rendered output from all of them. It also asserts the tiers behaved as
// claimed: both warm runs resolve every cell with zero compute-function
// invocations (so no generation, conversion, or simulation happens), the
// warm-memory run is answered by the memory tier, and the warm-remote run
// pulls every cell across the wire and promotes it into its local tiers.
func CheckTierTransparency(profiles []synth.Profile, instructions int, warmup uint64) error {
	dirA, err := os.MkdirTemp("", "tracerebase-tiercheck-a-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "tracerebase-tiercheck-b-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirB)

	baseCfg := experiments.SweepConfig{
		Instructions: instructions,
		Warmup:       warmup,
		Parallelism:  2,
	}
	render := func(res []experiments.TraceResult) []byte {
		var buf bytes.Buffer
		experiments.RenderFig1(&buf, experiments.Fig1(res))
		experiments.RenderFig5(&buf, experiments.Fig5(res))
		return buf.Bytes()
	}
	sweep := func(cache *experiments.ResultCache) ([]byte, []experiments.TraceResult, error) {
		cfg := baseCfg
		cfg.Cache = cache
		res, err := experiments.RunSweep(profiles, cfg)
		if err != nil {
			return nil, nil, err
		}
		return render(res), res, nil
	}
	jobs := uint64(len(profiles) * len(experiments.Variants()))

	// Off: the reference bytes.
	want, wantRes, err := sweep(nil)
	if err != nil {
		return fmt.Errorf("uncached sweep: %w", err)
	}

	// Cold tiered stack A: memory LRU in front of disk.
	memA := resultcache.NewMemory(0)
	diskA, err := resultcache.NewDisk(resultcache.DiskConfig{Dir: dirA})
	if err != nil {
		return err
	}
	backendA := resultcache.NewTiered(memA, diskA)
	defer backendA.Close()
	cold := experiments.NewResultCache(backendA)
	coldOut, coldRes, err := sweep(cold)
	if err != nil {
		return fmt.Errorf("cold tiered sweep: %w", err)
	}
	if !bytes.Equal(coldOut, want) {
		return fmt.Errorf("cold tiered sweep output differs from uncached output")
	}
	if !reflect.DeepEqual(coldRes, wantRes) {
		return fmt.Errorf("cold tiered sweep results differ structurally from uncached results")
	}
	if s := cold.Stats(); s.Computes != jobs || s.Hits != 0 {
		return fmt.Errorf("cold tiered cache computed %d cells with %d hits, want %d computes and 0 hits", s.Computes, s.Hits, jobs)
	}

	// Warm memory tier: a fresh cache over the same backend stands in for
	// a repeat query against a live daemon — every cell must come from the
	// memory tier without recomputation.
	memBefore := memA.Stat()
	warmMem := experiments.NewResultCache(backendA)
	warmMemOut, warmMemRes, err := sweep(warmMem)
	if err != nil {
		return fmt.Errorf("warm-memory sweep: %w", err)
	}
	if !bytes.Equal(warmMemOut, want) {
		return fmt.Errorf("warm-memory sweep output differs from uncached output")
	}
	if !reflect.DeepEqual(warmMemRes, wantRes) {
		return fmt.Errorf("warm-memory sweep results differ structurally from uncached results")
	}
	if s := warmMem.Stats(); s.Computes != 0 || s.DiskHits != jobs {
		return fmt.Errorf("warm-memory run: %d computes, %d backend hits, want 0 and %d", s.Computes, s.DiskHits, jobs)
	}
	if d := memA.Stat().Hits - memBefore.Hits; d != jobs {
		return fmt.Errorf("warm-memory run: memory tier answered %d of %d lookups", d, jobs)
	}

	// Warm remote tier: stack A exported over the wire protocol becomes
	// the slowest tier of a brand-new stack B — two chained daemons. Every
	// cell must arrive over HTTP, recompute nothing, and be promoted into
	// B's local tiers.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: resultcache.NewHTTPHandler(backendA)}
	go hs.Serve(l)
	defer hs.Close()
	remote, err := resultcache.NewRemote(resultcache.RemoteConfig{BaseURL: "http://" + l.Addr().String(), Retries: -1})
	if err != nil {
		return err
	}
	memB := resultcache.NewMemory(0)
	diskB, err := resultcache.NewDisk(resultcache.DiskConfig{Dir: dirB})
	if err != nil {
		return err
	}
	backendB := resultcache.NewTiered(memB, diskB, remote)
	defer backendB.Close()
	warmRemote := experiments.NewResultCache(backendB)
	warmRemoteOut, warmRemoteRes, err := sweep(warmRemote)
	if err != nil {
		return fmt.Errorf("warm-remote sweep: %w", err)
	}
	if !bytes.Equal(warmRemoteOut, want) {
		return fmt.Errorf("warm-remote sweep output differs from uncached output")
	}
	if !reflect.DeepEqual(warmRemoteRes, wantRes) {
		return fmt.Errorf("warm-remote sweep results differ structurally from uncached results")
	}
	if s := warmRemote.Stats(); s.Computes != 0 || s.DiskHits != jobs {
		return fmt.Errorf("warm-remote run: %d computes, %d backend hits, want 0 and %d", s.Computes, s.DiskHits, jobs)
	}
	if s := remote.Stat(); s.Hits != jobs {
		return fmt.Errorf("warm-remote run: remote tier served %d of %d cells", s.Hits, jobs)
	}
	if s := memB.Stat(); s.Puts != jobs {
		return fmt.Errorf("warm-remote run: %d of %d cells promoted into the local memory tier", s.Puts, jobs)
	}
	return nil
}
