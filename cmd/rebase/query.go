package main

import (
	"flag"
	"fmt"
	"os"

	"tracerebase/internal/experiments"
	"tracerebase/internal/expstore"
	"tracerebase/internal/report"
)

// runQuery is the `rebase query` subcommand: execute a query-language
// string against the columnar experiment store that sweeps populate,
// without running any simulation.
//
//	rebase query 'category=srv variant=all,none metric=ipc group-by=rob stat=p50,p99'
//	rebase query -json 'variant=all group-by=category stat=mean,p99'
//
// A query string is space-separated key=value tokens. `metric` picks the
// numeric column to aggregate (default ipc), `group-by` a comma-separated
// list of string/integer columns to group on, `stat` the aggregates
// (count, sum, mean, geomean, min, max, p50, p90, p95, p99); every other
// token filters a column against a comma-separated value set. Blocks
// whose footer statistics cannot match the filters are pruned without
// reading their data, and only the referenced columns of the surviving
// blocks are materialized; -full-scan forces the brute-force path that
// decodes every block (identical rows, for verification and benchmarks).
func runQuery(args []string) int {
	fs := flag.NewFlagSet("rebase query", flag.ExitOnError)
	var (
		storeDir = fs.String("store-dir", "", "experiment store directory (default <cache dir>/exp)")
		jsonOut  = fs.Bool("json", false, "emit the result as JSON instead of a text table")
		fullScan = fs.Bool("full-scan", false, "decode every block instead of pruning on footer stats (verification baseline)")
		quiet    = fs.Bool("q", false, "suppress corrupt/foreign-block warnings")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fail("query: exactly one query string expected, e.g. rebase query 'variant=all group-by=category stat=mean'")
	}

	dir := *storeDir
	if dir == "" {
		var err error
		dir, err = experiments.DefaultExpStoreDir()
		if err != nil {
			return fail("query: %v", err)
		}
	}
	warn := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "rebase: "+format+"\n", a...)
		}
	}
	store, err := expstore.Open(expstore.Config{Dir: dir, Warn: warn})
	if err != nil {
		return fail("query: %v", err)
	}
	defer store.Close()

	res, err := report.Query(store, fs.Arg(0), *fullScan)
	if err != nil {
		return fail("query: %v", err)
	}
	if *jsonOut {
		if err := report.WriteQueryJSON(os.Stdout, res); err != nil {
			return fail("query: %v", err)
		}
		return 0
	}
	if len(res.Rows) == 0 {
		fmt.Fprintf(os.Stderr, "rebase: no cells match (store %s holds %d blocks); run a sweep first, e.g. rebase -exp all -step 3\n",
			dir, store.Blocks())
	}
	report.RenderQuery(os.Stdout, res)
	return 0
}
