// Package bpred implements the conditional-branch direction predictors used
// by the simulated core: bimodal, gshare, and TAGE-SC-L (the predictor the
// paper configures on ChampSim's develop branch, §4).
package bpred

import "fmt"

// DirectionPredictor predicts taken/not-taken for conditional branches.
// Predict must be called before Update for each dynamic branch, in program
// order; Update trains the predictor with the actual outcome and advances
// any internal history.
type DirectionPredictor interface {
	// Name identifies the predictor.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains with the resolved direction.
	Update(pc uint64, taken bool)
}

// New constructs a predictor by name: "always-taken", "bimodal", "gshare",
// "tage", or "tage-sc-l".
func New(name string) (DirectionPredictor, error) {
	switch name {
	case "always-taken":
		return AlwaysTaken{}, nil
	case "bimodal":
		return NewBimodal(14), nil
	case "gshare":
		return NewGshare(14), nil
	case "tage":
		return NewTAGE(DefaultTAGEConfig()), nil
	case "tage-sc-l", "":
		return NewTAGESCL(), nil
	}
	return nil, fmt.Errorf("bpred: unknown predictor %q", name)
}

// AlwaysTaken is the trivial static predictor.
type AlwaysTaken struct{}

// Name implements DirectionPredictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// Predict implements DirectionPredictor.
func (AlwaysTaken) Predict(pc uint64) bool { return true }

// Update implements DirectionPredictor.
func (AlwaysTaken) Update(pc uint64, taken bool) {}

// counter is a saturating two-bit counter; values 0..3, taken when >= 2.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of two-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits entries, initialized
// weakly taken.
func NewBimodal(bits int) *Bimodal {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

// Name implements DirectionPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)].taken() }

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Gshare XORs a global history register into the table index.
type Gshare struct {
	table   []counter
	mask    uint64
	history uint64
	hbits   uint
}

// NewGshare returns a gshare predictor with 2^bits entries and bits of
// global history.
func NewGshare(bits int) *Gshare {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: uint64(n - 1), hbits: uint(bits)}
}

// Name implements DirectionPredictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) idx(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict implements DirectionPredictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.idx(pc)].taken() }

// Update implements DirectionPredictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
