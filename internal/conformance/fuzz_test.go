package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
	"tracerebase/internal/expstore"
	"tracerebase/internal/synth"
)

// seedCVPBytes encodes a short prefix of a synthetic public trace — the
// seed corpora put real-format, invariant-rich records in front of the
// fuzzers instead of leaving them to rediscover the format byte by byte.
func seedCVPBytes(t testing.TB, cat synth.Category, idx, n int) []byte {
	t.Helper()
	instrs, err := synth.PublicProfile(cat, idx).GenerateBatch(n)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := encodeCVP(instrs)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func addCVPSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	for _, s := range []struct {
		cat synth.Category
		idx int
	}{
		{synth.ComputeInt, 0}, {synth.ComputeFP, 0}, {synth.Crypto, 0}, {synth.Server, 3},
	} {
		raw := seedCVPBytes(f, s.cat, s.idx, 64)
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // mid-record truncation
	}
}

// FuzzCVPDecode checks the CVP-1 decoder on arbitrary input: it must never
// panic or over-read, every record it accepts must satisfy Validate, and
// the accepted prefix must round-trip (decode→encode→decode fixed point).
func FuzzCVPDecode(f *testing.F) {
	addCVPSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := cvp.NewReader(bytes.NewReader(data))
		var instrs []cvp.Instruction
		for len(instrs) < 1<<14 {
			in, err := r.Next()
			if err != nil {
				break
			}
			if verr := in.Validate(); verr != nil {
				t.Fatalf("decoder accepted a record that fails Validate: %v\nrecord: %+v", verr, in)
			}
			instrs = append(instrs, *in)
		}
		if len(instrs) == 0 {
			return
		}
		if err := CheckCVPRoundTrip(instrs); err != nil {
			t.Fatalf("accepted prefix does not round-trip: %v", err)
		}
	})
}

// FuzzChampTraceDecode checks the ChampSim decoder: no panics, scalar and
// batch decoding agree record for record, and the accepted records
// round-trip through encode/decode.
func FuzzChampTraceDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, champtrace.RecordSize-1))
	f.Add(make([]byte, champtrace.RecordSize+3))
	for _, idx := range []int{0, 3} {
		instrs, err := synth.PublicProfile(synth.Server, idx).GenerateBatch(32)
		if err != nil {
			f.Fatal(err)
		}
		recs, _, err := convertAllImps(instrs)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(encodeChamp(recs))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		scalar := champtrace.NewReader(bytes.NewReader(data))
		var recs []champtrace.Instruction
		for len(recs) < 1<<14 {
			in, err := scalar.Next()
			if err != nil {
				break
			}
			recs = append(recs, *in)
		}

		batch := champtrace.NewReader(bytes.NewReader(data))
		dst := champtrace.MakeBatch(5)
		i := 0
		for {
			n, err := batch.NextBatch(dst)
			for k := 0; k < n && i < len(recs); k, i = k+1, i+1 {
				if dst[k] != recs[i] {
					t.Fatalf("batch decode diverges from scalar at record %d", i)
				}
			}
			if err != nil || n == 0 || i >= len(recs) {
				break
			}
		}
		if i != len(recs) {
			t.Fatalf("batch decode yielded %d records, scalar %d", i, len(recs))
		}

		if len(recs) == 0 {
			return
		}
		if err := CheckChampRoundTrip(recs); err != nil {
			t.Fatalf("accepted prefix does not round-trip: %v", err)
		}
	})
}

// seedExpBlock writes one real experiment-store block and returns its
// on-disk bytes, so the fuzzer starts from a valid header, column
// directory, and footer instead of rediscovering the format.
func seedExpBlock(f *testing.F, n int) []byte {
	f.Helper()
	dir := f.TempDir()
	store, err := expstore.Open(expstore.Config{Dir: dir, BlockCells: n})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c := expstore.Cell{
			Trace: "srv_" + string(rune('a'+i%3)), Category: "srv",
			Variant: "All_imps", Config: "develop", Prefetcher: "none",
			ROB: uint64(128 + i), Cores: 1, Instructions: 4000, Warmup: 500,
			IPC: 1.25 + float64(i)/16,
		}
		c.Key[0], c.Key[31] = byte(i), byte(i*7)
		c.Sim.Instructions = 4000
		c.Sim.Cycles = uint64(3000 + 100*i)
		c.Conv.In = 4000
		if err := store.Append(c); err != nil {
			f.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		f.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.expb"))
	if err != nil || len(matches) == 0 {
		f.Fatalf("no block written: %v", err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzExpBlockDecode checks the experiment-store block decoder on
// arbitrary input: it must never panic or over-read, and whatever it
// accepts must decode deterministically.
func FuzzExpBlockDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("EXPB"))
	f.Add(make([]byte, 4096))
	for _, n := range []int{1, 5} {
		raw := seedExpBlock(f, n)
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // mid-column truncation
		flipped := bytes.Clone(raw)
		flipped[len(flipped)/2] ^= 0xff
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cells, err := expstore.DecodeBlock(data)
		if err != nil {
			return
		}
		if len(cells) == 0 {
			t.Fatal("decoder accepted a block with zero cells")
		}
		again, err := expstore.DecodeBlock(data)
		if err != nil {
			t.Fatalf("second decode of an accepted block failed: %v", err)
		}
		if !reflect.DeepEqual(cells, again) {
			t.Fatal("decoding the same block twice gave different cells")
		}
	})
}

// FuzzConvert checks the converter as a differential oracle: for any
// decodable CVP-1 prefix and any improvement combination, the scalar,
// batch, and pooled streaming convert paths must agree exactly and never
// panic.
func FuzzConvert(f *testing.F) {
	for _, s := range []struct {
		cat synth.Category
		idx int
	}{
		{synth.ComputeInt, 0}, {synth.Server, 3},
	} {
		raw := seedCVPBytes(f, s.cat, s.idx, 48)
		for _, bits := range []uint8{0x00, 0x07, 0x38, 0x3f, 0x15} {
			f.Add(raw, bits)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, optBits uint8) {
		r := cvp.NewReader(bytes.NewReader(data))
		var instrs []cvp.Instruction
		for len(instrs) < 1<<12 {
			in, err := r.Next()
			if err != nil {
				break
			}
			instrs = append(instrs, *in)
		}
		if len(instrs) == 0 {
			return
		}
		if err := CheckConvertPaths(instrs, optionsFromBits(optBits)); err != nil {
			t.Fatalf("convert paths diverge under %s: %v", optionsFromBits(optBits), err)
		}
	})
}
