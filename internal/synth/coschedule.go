package synth

// Co-scheduled workload scenarios — multi-core workload mixes that only
// exist at N > 1. Each scenario maps N core slots to profiles; the
// experiments layer simulates them in lockstep over a shared LLC.

import "fmt"

// StressThrash returns the cache-thrashing neighbor: a streaming workload
// whose strided loads sweep a footprint far beyond the LLC with high
// memory-level parallelism and near-perfectly predicted branches. Run next
// to a reuse-friendly workload it evicts the neighbor's working set as fast
// as the DRAM port allows — the canonical destructive co-runner, and the
// workload the shared-srrip policy exists to contain.
func StressThrash() Profile {
	return Profile{
		Name:            "stress_thrash",
		Category:        ComputeInt,
		Seed:            0x7a54,
		NumFuncs:        2,
		FuncBodySites:   64,
		LoopIterations:  50,
		CallDepth:       1,
		DispatchTargets: 1,
		LoadFrac:        0.35,
		StoreFrac:       0.04,
		CondFrac:        0.05,
		BranchBias:      0.995,
		RandomTakenProb: 0.30,
		CondRegFrac:     0.2,
		StrideFrac:      0.95,
		DataFootprint:   32 << 20,
	}
}

// Instance returns a copy of p re-seeded and renamed for one core slot, so
// homogeneous co-schedules (the same workload on every core) still generate
// disjoint address spaces — separate processes, not magic line sharing.
func Instance(p Profile, slot int) Profile {
	q := p
	q.Name = fmt.Sprintf("%s@c%d", p.Name, slot)
	q.Seed = int64(splitmix64(uint64(q.Seed)+uint64(slot)*0x5851f42d4c957f2d) | 1)
	return q
}

// CoScheduleSpecs lists the co-schedule scenario names CoSchedule accepts.
func CoScheduleSpecs() []string { return []string{"thrash", "srvcrypto", "rack"} }

// CoSchedule builds the named n-core scenario, returning one profile per
// core slot:
//
//   - thrash: core 0 runs a reuse-friendly compute_int workload; every
//     other core runs a (re-seeded) cache-thrashing streaming neighbor.
//   - srvcrypto: the srv+crypto co-location mix — even slots run server
//     profiles, odd slots crypto.
//   - rack: a homogeneous throughput rack — n re-seeded instances of one
//     server workload.
func CoSchedule(spec string, n int) ([]Profile, error) {
	if n < 1 {
		return nil, fmt.Errorf("synth: co-schedule needs at least 1 core, got %d", n)
	}
	out := make([]Profile, n)
	switch spec {
	case "thrash":
		out[0] = PublicProfile(ComputeInt, 0)
		for i := 1; i < n; i++ {
			out[i] = Instance(StressThrash(), i)
		}
	case "srvcrypto":
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				out[i] = PublicProfile(Server, (i/2)%numServer)
			} else {
				out[i] = PublicProfile(Crypto, (i/2)%numCrypto)
			}
		}
	case "rack":
		base := PublicProfile(Server, 3)
		for i := 0; i < n; i++ {
			out[i] = Instance(base, i)
		}
	default:
		return nil, fmt.Errorf("synth: unknown co-schedule %q (want one of %v)", spec, CoScheduleSpecs())
	}
	return out, nil
}
