package sim

import (
	"strings"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/synth"
)

// simulate converts a CVP trace with opts and runs it on the develop model.
func simulate(t *testing.T, instrs []*cvp.Instruction, opts core.Options) Stats {
	t.Helper()
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), opts)
	if err != nil {
		t.Fatal(err)
	}
	rules := champtrace.RulesOriginal
	if opts.BranchRegs {
		rules = champtrace.RulesPatched
	}
	st, err := Run(champtrace.NewSliceSource(recs), ConfigDevelop(rules), 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func gen(t *testing.T, p synth.Profile, n int) []*cvp.Instruction {
	t.Helper()
	instrs, err := p.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	return instrs
}

func TestConfigsRun(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 1)
	instrs := gen(t, p, 30000)
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := Run(champtrace.NewSliceSource(recs), ConfigDevelop(champtrace.RulesPatched), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ipc1, err := Run(champtrace.NewSliceSource(recs), ConfigIPC1("next-line", champtrace.RulesPatched), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev.IPC() <= 0 || ipc1.IPC() <= 0 {
		t.Fatalf("IPCs: develop %v, ipc1 %v", dev.IPC(), ipc1.IPC())
	}
	if dev.Instructions == 0 || ipc1.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
	// The IPC-1 model uses ideal targets: zero target mispredictions.
	if ipc1.TargetMispredicts != 0 {
		t.Errorf("IPC-1 model target mispredicts = %d, want 0 (ideal)", ipc1.TargetMispredicts)
	}
}

// TestFlagRegSlowsBranchyTrace verifies the paper's flag-reg direction: a
// trace with hard branches and load-fed compares loses IPC when the flag
// dependency is restored.
func TestFlagRegSlowsBranchyTrace(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 10)
	p.BranchBias = 0.85
	p.BranchOnLoadFrac = 0.5
	instrs := gen(t, p, 60000)
	base := simulate(t, instrs, core.OptionsNone())
	flag := simulate(t, instrs, core.Options{FlagReg: true})
	if flag.IPC() >= base.IPC() {
		t.Fatalf("flag-reg should slow a branchy trace: %.3f -> %.3f", base.IPC(), flag.IPC())
	}
}

// TestBaseUpdateSpeedsWritebackTrace verifies the base-update direction: a
// trace dominated by writeback loads gains IPC when the base register is
// released at ALU latency.
func TestBaseUpdateSpeedsWritebackTrace(t *testing.T) {
	p := synth.PublicProfile(synth.Crypto, 2)
	p.BaseUpdateFrac = 0.5
	instrs := gen(t, p, 60000)
	base := simulate(t, instrs, core.OptionsNone())
	upd := simulate(t, instrs, core.Options{BaseUpdate: true})
	if upd.IPC() <= base.IPC() {
		t.Fatalf("base-update should speed a writeback trace: %.3f -> %.3f", base.IPC(), upd.IPC())
	}
	// The split adds micro-ops: more instructions retire for the same
	// work, which is why §4.3 sees MPKIs dip slightly.
	if upd.Instructions <= base.Instructions {
		t.Errorf("split should increase retired instructions: %d -> %d", base.Instructions, upd.Instructions)
	}
}

// TestCallStackFixesReturnMPKI verifies the Fig. 5 mechanism end to end: a
// BLR-X30-heavy trace has an order of magnitude more return mispredictions
// with the original converter than with the call-stack fix.
func TestCallStackFixesReturnMPKI(t *testing.T) {
	p := synth.PublicProfile(synth.Server, 3) // in the BlrX30 subset
	if p.BlrX30Frac == 0 {
		t.Fatal("srv_3 must be in the call-stack subset")
	}
	instrs := gen(t, p, 60000)
	base := simulate(t, instrs, core.OptionsNone())
	fixed := simulate(t, instrs, core.Options{CallStack: true})
	if base.ReturnMPKI() < 0.5 {
		t.Fatalf("original converter return MPKI = %.2f, want the bug visible", base.ReturnMPKI())
	}
	if fixed.ReturnMPKI() > base.ReturnMPKI()/5 {
		t.Fatalf("call-stack fix: return MPKI %.2f -> %.2f, want order-of-magnitude drop",
			base.ReturnMPKI(), fixed.ReturnMPKI())
	}
	// A trace without the idiom is untouched.
	clean := synth.PublicProfile(synth.Server, 5)
	cInstrs := gen(t, clean, 40000)
	cb := simulate(t, cInstrs, core.OptionsNone())
	cf := simulate(t, cInstrs, core.Options{CallStack: true})
	if cb.ReturnMPKI() > 0.3 {
		t.Errorf("clean trace already suffers return MPKI %.2f", cb.ReturnMPKI())
	}
	if cf.Mispredicts != cb.Mispredicts {
		t.Errorf("call-stack changed a clean trace: %d vs %d mispredicts", cb.Mispredicts, cf.Mispredicts)
	}
}

// TestBranchRegsNeedsPatchedRules demonstrates why the paper patches
// ChampSim: branch-regs traces run under the ORIGINAL deduction rules
// misclassify register-source conditionals as indirect jumps.
func TestBranchRegsNeedsPatchedRules(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 4)
	p.CondRegFrac = 0.8
	instrs := gen(t, p, 40000)
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.Options{BranchRegs: true})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := Run(champtrace.NewSliceSource(recs), ConfigDevelop(champtrace.RulesOriginal), 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Run(champtrace.NewSliceSource(recs), ConfigDevelop(champtrace.RulesPatched), 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Under the original rules the cb(n)z conditionals are treated as
	// indirect jumps: far fewer conditional branches are seen.
	if wrong.CondBranches >= right.CondBranches {
		t.Fatalf("original rules should lose conditionals: %d vs %d", wrong.CondBranches, right.CondBranches)
	}
}

// TestInstructionPrefetchersRankOnIPC1 sanity-checks the Table 3 machinery:
// on an icache-heavy trace, every contest prefetcher beats no prefetching
// under the IPC-1 model.
func TestInstructionPrefetchersRankOnIPC1(t *testing.T) {
	tr, ok := synth.FindIPC1("server_030")
	if !ok {
		t.Fatal("server_030 missing")
	}
	instrs := gen(t, tr.Profile, 60000)
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsNone())
	if err != nil {
		t.Fatal(err)
	}
	src := champtrace.NewSliceSource(recs)
	base, err := Run(src, ConfigIPC1("none", champtrace.RulesOriginal), 15000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.L1I.Misses == 0 {
		t.Fatal("baseline has no L1I misses; trace too small for prefetch study")
	}
	for _, pf := range []string{"next-line", "epi", "djolt", "fnl-mma", "barca", "pips", "jip", "mana", "tap"} {
		src.Reset()
		st, err := Run(src, ConfigIPC1(pf, champtrace.RulesOriginal), 15000, 0)
		if err != nil {
			t.Fatalf("%s: %v", pf, err)
		}
		if st.IPC() < base.IPC()*0.98 {
			t.Errorf("%s: IPC %.3f clearly below no-prefetch %.3f", pf, st.IPC(), base.IPC())
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(champtrace.NewSliceSource(nil), Config{}, 0, 0); err == nil {
		t.Fatal("Run accepted invalid config")
	}
}

// TestTLBPressure: a data working set spanning thousands of pages costs
// translation stalls; disabling the TLB model removes them.
func TestTLBPressure(t *testing.T) {
	p := synth.PublicProfile(synth.ComputeInt, 14)
	p.DataFootprint = 64 << 20 // 16k pages: thrashes DTLB and STLB
	p.StrideFrac = 0.1         // mostly random within the hot/mid tiers
	instrs := gen(t, p, 50000)
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	with := ConfigDevelop(champtrace.RulesPatched)
	without := with
	without.UseTLBs = false
	stWith, err := Run(champtrace.NewSliceSource(recs), with, 15000, 0)
	if err != nil {
		t.Fatal(err)
	}
	stWithout, err := Run(champtrace.NewSliceSource(recs), without, 15000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stWith.DTLBMisses == 0 || stWith.STLBMisses == 0 {
		t.Fatalf("no translation misses recorded: %+v", stWith)
	}
	if stWithout.DTLBMisses != 0 {
		t.Fatalf("TLB-less run recorded %d DTLB misses", stWithout.DTLBMisses)
	}
	if stWith.IPC() >= stWithout.IPC() {
		t.Errorf("translation stalls should cost IPC: %.3f (TLB) vs %.3f (ideal)",
			stWith.IPC(), stWithout.IPC())
	}
}

// TestMultiCoreCheckpointRejected is the regression test for the
// checkpoint/multi-core interaction: the single-core gob snapshot format
// cannot represent an N-core system, so every checkpoint entry point must
// refuse a Cores>1 configuration with a pointed error instead of silently
// mis-restoring one core's state.
func TestMultiCoreCheckpointRejected(t *testing.T) {
	instrs := gen(t, synth.PublicProfile(synth.ComputeInt, 0), 2000)
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigDevelop(champtrace.RulesPatched)
	cfg.Cores = 2
	if Checkpointable(cfg) {
		t.Error("multi-core config reported checkpointable")
	}
	if _, err := WarmCheckpoint(champtrace.NewSliceSource(recs), cfg, 500); err == nil {
		t.Error("WarmCheckpoint accepted a multi-core config")
	} else if !strings.Contains(err.Error(), "single-core") {
		t.Errorf("WarmCheckpoint error is not pointed at the multi-core cause: %v", err)
	}
	if _, err := RunFrom(champtrace.NewSliceSource(recs), cfg, Checkpoint{}, 0); err == nil {
		t.Error("RunFrom accepted a multi-core config")
	} else if !strings.Contains(err.Error(), "single-core") {
		t.Errorf("RunFrom error is not pointed at the multi-core cause: %v", err)
	}
	// The plain single-core entry point must refuse it too.
	if _, err := Run(champtrace.NewSliceSource(recs), cfg, 0, 0); err == nil {
		t.Error("single-core Run accepted Cores=2")
	}
}
