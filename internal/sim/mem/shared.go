package mem

// Multi-core memory sharing: N private L1I/L1D/L2 trees in front of one
// shared LLC, with a bandwidth-limited port between the LLC and DRAM.
//
// The shared LLC reuses the single-core Cache unchanged — one line array,
// one MSHR list, one replacement policy — so cross-core contention falls
// out of the existing mechanics: two cores missing the same line within a
// fill window coalesce via hit-under-fill (MergedMisses), misses to
// different lines compete for the same MSHR pool, and fills from one core
// evict the other's lines under whatever policy the LLC runs. Per-core
// attribution comes from SetRequester + EnablePerCore.

// Port is a bandwidth/queueing model on a memory link: requests issue at
// most one per Interval cycles, and a request arriving while the link is
// busy queues until it frees. Interval 0 makes the port fully transparent
// (a plain pass-through, byte-identical to wiring the levels directly),
// which is the default so single-core-degenerate configurations keep their
// golden outputs.
type Port struct {
	next Level
	// Interval is the minimum cycle spacing between issued requests;
	// 0 disables the model entirely.
	Interval uint64

	nextFree uint64
	requests uint64
	// queued accumulates cycles spent waiting for the link.
	queued uint64
}

// NewPort wraps next behind a link issuing one request per interval cycles.
func NewPort(next Level, interval uint64) *Port {
	return &Port{next: next, Interval: interval}
}

// Access implements Level.
func (p *Port) Access(addr uint64, cycle uint64, kind AccessKind) uint64 {
	if p.Interval == 0 {
		return p.next.Access(addr, cycle, kind)
	}
	p.requests++
	start := max64(cycle, p.nextFree)
	p.queued += start - cycle
	p.nextFree = start + p.Interval
	return p.next.Access(addr, start, kind)
}

// Requests returns the number of requests that crossed the (non-transparent)
// port.
func (p *Port) Requests() uint64 { return p.requests }

// QueuedCycles returns the total cycles requests spent waiting for the link.
func (p *Port) QueuedCycles() uint64 { return p.queued }

// SharedHierarchy is the N-core memory system: per-core private hierarchies
// over one LLC, one LLC↔DRAM port, and one DRAM.
type SharedHierarchy struct {
	// Cores holds one private view per core (L1I/L1D/L2 private, LLC and
	// DRAM pointing at the shared instances, Shared set).
	Cores []*Hierarchy
	LLC   *Cache
	Port  *Port
	DRAM  *DRAM
}

// NewSharedHierarchy builds the shared memory system for n cores from one
// per-core level configuration. cfg.LLC.Policy may additionally name
// "shared-srrip", the core-aware policy that only exists at this level;
// portInterval is the LLC↔DRAM issue spacing (0 = transparent).
func NewSharedHierarchy(n int, cfg HierarchyConfig, portInterval uint64) *SharedHierarchy {
	if n <= 0 {
		panic("mem: shared hierarchy needs at least one core")
	}
	dram := NewDRAM(cfg.DRAMLatency, cfg.DRAMService, cfg.DRAMBanks)
	port := NewPort(dram, portInterval)
	llcCfg := cfg.LLC
	var pol Replacement
	if llcCfg.Policy == "shared-srrip" {
		pol = NewSharedSRRIP(n, llcCfg.Sets, llcCfg.Ways)
		llcCfg.Policy = "" // NewCache would reject the name; install below
	}
	llc := NewCache(llcCfg, port)
	if pol != nil {
		llc.policy = pol
	}
	llc.EnablePerCore(n)
	sh := &SharedHierarchy{LLC: llc, Port: port, DRAM: dram}
	for i := 0; i < n; i++ {
		l2 := NewCache(cfg.L2, llc)
		sh.Cores = append(sh.Cores, &Hierarchy{
			L1I:    NewCache(cfg.L1I, l2),
			L1D:    NewCache(cfg.L1D, l2),
			L2:     l2,
			LLC:    llc,
			DRAM:   dram,
			Shared: true,
		})
	}
	return sh
}

// SetRequester tags the shared levels with the core about to access them.
func (sh *SharedHierarchy) SetRequester(core int) { sh.LLC.SetRequester(core) }
