package experiments

import (
	"fmt"

	"tracerebase/internal/expstore"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// The experiment store records every cell a sweep computes (or serves from
// the result cache) as one row of the columnar expstore, keyed by the same
// content address the result cache uses. Appends are advisory: a store
// write failure degrades to a warning — the sweep result is unaffected —
// and duplicate keys are dropped by the store itself, so warm re-runs do
// not grow it.

// DefaultExpStoreDir resolves the experiment-store root relative to the
// cache root: <cache>/exp.
func DefaultExpStoreDir() (string, error) {
	dir, err := DefaultCacheDir()
	if err != nil {
		return "", err
	}
	return dir + "/exp", nil
}

// storeCell assembles the expstore row for one (trace, variant) cell. The
// identity columns come from the same simulator configuration the dispatch
// path used, so queries group by exactly what ran.
func storeCell(p *synth.Profile, variant string, simCfg sim.Config, instructions int, warmup uint64, key resultcache.Key, res Result) expstore.Cell {
	return expstore.Cell{
		Trace:        p.Name,
		Category:     string(p.Category),
		Variant:      variant,
		Config:       simCfg.Name,
		Prefetcher:   simCfg.L1IPrefetcher,
		ROB:          uint64(simCfg.ROBSize),
		Cores:        1,
		SamplePeriod: simCfg.SamplePeriod,
		Instructions: uint64(instructions),
		Warmup:       warmup,
		Key:          key,
		IPC:          res.IPC,
		Sim:          res.Sim,
		Conv:         res.Conv,
	}
}

// recordCell appends one cell to the sweep's experiment store, if any.
// Failures warn through the store and never fail the sweep.
func (c *SweepConfig) recordCell(p *synth.Profile, variant string, simCfg sim.Config, key resultcache.Key, res Result) {
	if c.Exp == nil {
		return
	}
	// Append errors are already counted and warned by the store.
	_ = c.Exp.Append(storeCell(p, variant, simCfg, c.Instructions, c.Warmup, key, res))
}

// CellKey returns the content address of one (trace, variant) cell as this
// configuration would dispatch it — the handle the report layer uses to
// read sweep results back out of the experiment store.
func (c SweepConfig) CellKey(p synth.Profile, v Variant) (resultcache.Key, error) {
	if err := c.fill(); err != nil {
		return resultcache.Key{}, err
	}
	return cacheKey(&p, v.Opts, c.simConfigFor(v.Opts), c.Instructions, c.Warmup), nil
}

// storeReadBack swaps the in-memory sweep results for their store-read
// copies: after a sweep has appended (or deduped against) every cell, the
// cells are fetched back by content key and replace the engine's own
// values, making the figure pipeline the store's first consumer. Cells the
// store cannot produce (an earlier write failure, a just-dropped corrupt
// block) fall back to the in-memory result with a warning; the returned
// count is the number of such misses, which the store-transparency oracle
// pins to zero.
func storeReadBack(cfg *SweepConfig, out []TraceResult) (int, error) {
	type slot struct {
		ti   int
		name string
	}
	keys := make([]expstore.Key, 0, len(out)*len(cfg.Variants))
	slots := make(map[expstore.Key][]slot)
	for ti := range out {
		for _, v := range cfg.Variants {
			if _, ok := out[ti].Results[v.Name]; !ok {
				continue // failed cell: nothing was appended for it
			}
			key := cacheKey(&out[ti].Profile, v.Opts, cfg.simConfigFor(v.Opts), cfg.Instructions, cfg.Warmup)
			if _, seen := slots[key]; !seen {
				keys = append(keys, key)
			}
			slots[key] = append(slots[key], slot{ti, v.Name})
		}
	}
	cells, err := cfg.Exp.Cells(keys)
	if err != nil {
		return len(keys), fmt.Errorf("experiments: expstore read-back: %w", err)
	}
	misses := 0
	for key, ss := range slots {
		cell, ok := cells[key]
		if !ok {
			misses++
			continue
		}
		res := Result{IPC: cell.IPC, Sim: cell.Sim, Conv: cell.Conv}
		for _, s := range ss {
			out[s.ti].Results[s.name] = res
		}
	}
	return misses, nil
}
