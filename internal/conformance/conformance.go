// Package conformance is the correctness-tooling subsystem of the trace
// rebasing pipeline. PR 1 grew parallel fast paths (batch slab decoding,
// ConvertAppend, the pooled streaming ConverterSource) next to the original
// scalar paths; this package treats every such pair of redundant code paths
// as a differential-testing oracle and every binary decoder as a fuzz
// target, so a regression in the CVP-1 decoder or the converter fails a
// pointed check instead of silently shifting experiment numbers.
//
// The subsystem has four layers:
//
//   - Differential oracles (differential.go): for any CVP-1 instruction
//     slab, the scalar, batch, and streaming convert paths must agree
//     record-for-record and stat-for-stat, and both binary codecs must
//     round-trip (decode→encode→decode is a fixed point).
//   - Metamorphic checks (metamorphic.go): simulating the same trace twice
//     yields identical statistics, a sweep is byte-identical under
//     -parallel 1 and -parallel N, and IPC responds monotonically to
//     resource knobs (ROB size, L1D sets) on synthetic microbenchmarks.
//   - A golden corpus (golden.go, testdata/golden): small checked-in
//     real-format CVP-1 and ChampSim binary traces with golden converted
//     md5s and per-trace simulator counters, regenerated via go generate
//     and embedded in the binary so `rebase -selftest` works anywhere.
//   - Fuzz targets (fuzz_test.go): native Go fuzzing of both decoders and
//     the converter, seeded from internal/synth.
//
// SelfTest bundles the first three layers into the `rebase -selftest` /
// `cmd/conformance` entry point, which can additionally validate
// user-supplied trace files in the field.
package conformance

import (
	"errors"
	"fmt"
	"io"
)

// Report accumulates check outcomes for human-readable selftest output.
// The zero value is ready to use.
type Report struct {
	// Log, when non-nil, receives one line per completed check.
	Log io.Writer

	passed   int
	failures []error
}

// okf records a passing check.
func (r *Report) okf(format string, args ...any) {
	r.passed++
	if r.Log != nil {
		fmt.Fprintf(r.Log, "ok   %s\n", fmt.Sprintf(format, args...))
	}
}

// fail records a failing check.
func (r *Report) fail(err error) {
	r.failures = append(r.failures, err)
	if r.Log != nil {
		fmt.Fprintf(r.Log, "FAIL %v\n", err)
	}
}

// run executes one named check function.
func (r *Report) run(name string, check func() error) {
	if err := check(); err != nil {
		r.fail(fmt.Errorf("%s: %w", name, err))
		return
	}
	r.okf("%s", name)
}

// Passed returns the number of checks that succeeded.
func (r *Report) Passed() int { return r.passed }

// Err returns nil when every check passed, and otherwise the join of every
// failure.
func (r *Report) Err() error { return errors.Join(r.failures...) }
