// Package synth generates synthetic CVP-1 traces standing in for the
// proprietary Qualcomm workloads (135 public + 2013 secret traces, ~500 GB).
//
// The generator is a program-skeleton interpreter: it lays out a synthetic
// program (functions, loop bodies, call sites, branch sites with fixed
// per-PC personalities), then executes it with a deterministic PRNG,
// maintaining an explicit call stack (so call/return pairs align like real
// code) and architectural register values (so the converter's
// addressing-mode inference sees consistent base-register arithmetic).
// Every conversion path studied in the paper is exercised: pre/post-index
// base updates, load pairs, prefetch loads, flag-setting compares with no
// destination, cb(n)z-style conditionals with register sources, BLR-X30
// indirect calls (the call-stack bug trigger), DC ZVA stores, and
// cacheline-crossing accesses.
package synth

import "fmt"

// Category is a CVP-1 workload class.
type Category string

// The four CVP-1 workload categories.
const (
	ComputeInt Category = "compute_int"
	ComputeFP  Category = "compute_fp"
	Crypto     Category = "crypto"
	Server     Category = "srv"
)

// Profile parameterizes one synthetic trace. All fractions are in [0,1].
type Profile struct {
	// Name is the trace name (e.g. "compute_int_17").
	Name string
	// Category is the workload class.
	Category Category
	// Seed drives all generation; the same profile always produces the
	// same trace.
	Seed int64

	// NumFuncs and FuncBodySites control the instruction footprint: the
	// program has NumFuncs functions of FuncBodySites instruction slots
	// each (4 bytes per slot).
	NumFuncs      int
	FuncBodySites int
	// LoopIterations is the mean iteration count of each function's
	// body loop.
	LoopIterations int
	// CallDepth caps recursion into callees.
	CallDepth int

	// LoadFrac and StoreFrac are the fractions of body sites that are
	// loads and stores; CondFrac the fraction that are conditional
	// branches; CallFrac the fraction that are call sites. FPFrac makes
	// ALU sites FP operations instead.
	LoadFrac, StoreFrac, CondFrac, CallFrac, FPFrac float64

	// BranchBias is the probability a conditional site is strongly
	// biased (predictable); the rest are data-dependent random with
	// RandomTakenProb.
	BranchBias      float64
	RandomTakenProb float64
	// CondRegFrac is the fraction of conditional sites that are
	// cb(n)z-style (carry a register source in the CVP trace) rather
	// than flag-based.
	CondRegFrac float64
	// BranchOnLoadFrac is the fraction of conditional sites whose
	// compared value comes from a recent load (exposing the paper's
	// load→branch dependency effect).
	BranchOnLoadFrac float64

	// IndirectCallFrac is the fraction of call sites that are indirect;
	// BlrX30Frac is the fraction of indirect call sites that read AND
	// write X30 — the §3.2.1 misclassification trigger.
	IndirectCallFrac float64
	BlrX30Frac       float64
	// DispatchTargets is the number of distinct targets of each
	// indirect call site (1 = monomorphic).
	DispatchTargets int

	// BaseUpdateFrac is the fraction of load/store sites using pre- or
	// post-indexing writeback; PreIndexFrac splits them.
	BaseUpdateFrac float64
	PreIndexFrac   float64
	// LoadPairFrac is the fraction of load sites that are LDP (two
	// destinations, no writeback); PrefetchFrac the fraction that are
	// software prefetches (no destination).
	LoadPairFrac, PrefetchFrac float64
	// ChaseFrac is the fraction of load sites that pointer-chase (each
	// address depends on the previous load's value).
	ChaseFrac float64
	// StrideFrac is the fraction of load sites streaming with a fixed
	// stride (prefetchable); the rest are random within the footprint.
	StrideFrac float64
	// CrossLineFrac is the fraction of memory sites whose address is
	// offset to straddle a cacheline boundary.
	CrossLineFrac float64
	// ZVAFrac is the fraction of store sites that are DC ZVA 64-byte
	// zeroing stores.
	ZVAFrac float64
	// DataFootprint is the data working set in bytes.
	DataFootprint uint64
}

// Validate reports the first structurally invalid field.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("synth: profile needs a name")
	}
	if p.NumFuncs <= 0 || p.FuncBodySites < 8 {
		return fmt.Errorf("synth: %s: program too small (%d funcs x %d sites)", p.Name, p.NumFuncs, p.FuncBodySites)
	}
	if p.LoopIterations <= 0 || p.CallDepth < 1 {
		return fmt.Errorf("synth: %s: bad loop/depth", p.Name)
	}
	for _, f := range []struct {
		n string
		v float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac}, {"CondFrac", p.CondFrac},
		{"CallFrac", p.CallFrac}, {"FPFrac", p.FPFrac}, {"BranchBias", p.BranchBias},
		{"RandomTakenProb", p.RandomTakenProb}, {"CondRegFrac", p.CondRegFrac},
		{"BranchOnLoadFrac", p.BranchOnLoadFrac}, {"IndirectCallFrac", p.IndirectCallFrac},
		{"BlrX30Frac", p.BlrX30Frac}, {"BaseUpdateFrac", p.BaseUpdateFrac},
		{"PreIndexFrac", p.PreIndexFrac}, {"LoadPairFrac", p.LoadPairFrac},
		{"PrefetchFrac", p.PrefetchFrac}, {"ChaseFrac", p.ChaseFrac},
		{"StrideFrac", p.StrideFrac}, {"CrossLineFrac", p.CrossLineFrac}, {"ZVAFrac", p.ZVAFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("synth: %s: %s = %v out of [0,1]", p.Name, f.n, f.v)
		}
	}
	if s := p.LoadFrac + p.StoreFrac + p.CondFrac + p.CallFrac; s > 0.95 {
		return fmt.Errorf("synth: %s: site fractions sum to %v, leaving no ALU work", p.Name, s)
	}
	if p.DataFootprint == 0 {
		return fmt.Errorf("synth: %s: zero data footprint", p.Name)
	}
	if p.DispatchTargets <= 0 {
		return fmt.Errorf("synth: %s: DispatchTargets must be positive", p.Name)
	}
	return nil
}

// FootprintBytes returns the static code footprint of the program.
func (p *Profile) FootprintBytes() int { return p.NumFuncs * p.FuncBodySites * 4 }
