package cpu

import (
	"bytes"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/cvp"
	"tracerebase/internal/sim/mem"
	"tracerebase/internal/sim/snap"
	"tracerebase/internal/synth"
)

// developConfig mirrors sim.ConfigDevelop (the sim package sits above cpu,
// so the values are restated here) — the configuration whose warmed state
// the equivalence tests compare.
func developConfig() Config {
	return Config{
		Name:            "develop",
		FetchWidth:      6,
		DispatchWidth:   6,
		IssueWidth:      6,
		RetireWidth:     6,
		ROBSize:         352,
		SQSize:          72,
		FTQSize:         64,
		DecodeQueue:     48,
		DecodeLatency:   5,
		RedirectPenalty: 8,
		Decoupled:       true,
		Rules:           champtrace.RulesPatched,
		Predictor:       "tage-sc-l",
		BTBEntries:      16384,
		BTBWays:         8,
		RASSize:         64,
		UseITTAGE:       true,
		Hierarchy:       mem.DefaultHierarchyConfig(),
		L1DPrefetcher:   "ip-stride",
		L2Prefetcher:    "next-line",
		UseTLBs:         true,
	}
}

// synthTrace generates and converts n instructions of a synth profile.
func synthTrace(t *testing.T, p synth.Profile, n int) []*champtrace.Instruction {
	t.Helper()
	instrs, err := p.Generate(n)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := core.ConvertAll(cvp.NewSliceSource(instrs), core.OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func snapshotOf(t *testing.T, s any) []byte {
	t.Helper()
	ss, ok := s.(stateSnapshotter)
	if !ok {
		t.Fatalf("%T does not implement the snapshot codec", s)
	}
	w := &snap.Writer{}
	ss.Snapshot(w)
	return w.Bytes()
}

// tagOverlap returns the fraction of a's valid tags also valid in b.
func tagOverlap(a, b []uint64) float64 {
	if len(a) == 0 {
		return 1
	}
	set := make(map[uint64]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	hit := 0
	for _, v := range a {
		if set[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(a))
}

// TestFunctionalWarmingEquivalence fast-forwards a whole trace through the
// functional warmer and compares the warmed structures against a detailed
// run over the same trace. Program-order structures — direction predictor,
// BTB, RAS, ITTAGE, target stats, ITLB — must match bit-for-bit (their
// update sequences are identical by construction); the data side and L1I
// are timing-dependent (out-of-order issue, store-to-load forwarding, MSHR
// occupancy), so their resident tag sets must agree to a high fraction.
func TestFunctionalWarmingEquivalence(t *testing.T) {
	profiles := []synth.Profile{
		synth.StressIdle(),                  // serialized pointer chase
		synth.PublicProfile(synth.Server, 3), // branchy, indirect-heavy
	}
	for _, prof := range profiles {
		t.Run(prof.Name, func(t *testing.T) {
			recs := synthTrace(t, prof, 12000)

			det, err := New(developConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := det.Run(champtrace.NewSliceSource(recs), 0, 0); err != nil {
				t.Fatal(err)
			}

			warm, err := New(developConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.la.init(champtrace.NewSliceSource(recs)); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.warm(^uint64(0)); err != nil {
				t.Fatal(err)
			}
			if warm.retired != det.retired {
				t.Fatalf("instruction counts diverge: warm %d, detailed %d", warm.retired, det.retired)
			}

			strict := []struct {
				name string
				a, b any
			}{
				{"direction predictor", det.pred, warm.pred},
				{"target predictor", det.tp, warm.tp},
				{"ITLB", det.tlbs.ITLB, warm.tlbs.ITLB},
			}
			for _, c := range strict {
				if !bytes.Equal(snapshotOf(t, c.a), snapshotOf(t, c.b)) {
					t.Errorf("%s state diverges between detailed run and functional warming", c.name)
				}
			}

			loose := []struct {
				name string
				a, b []uint64
				min  float64
			}{
				{"L1I", det.hier.L1I.ValidTags(), warm.hier.L1I.ValidTags(), 0.95},
				{"L1D", det.hier.L1D.ValidTags(), warm.hier.L1D.ValidTags(), 0.75},
				{"L2", det.hier.L2.ValidTags(), warm.hier.L2.ValidTags(), 0.75},
				{"LLC", det.hier.LLC.ValidTags(), warm.hier.LLC.ValidTags(), 0.75},
				{"DTLB", det.tlbs.DTLB.ValidVPNs(), warm.tlbs.DTLB.ValidVPNs(), 0.75},
				{"STLB", det.tlbs.STLB.ValidVPNs(), warm.tlbs.STLB.ValidVPNs(), 0.75},
			}
			for _, c := range loose {
				if ov := tagOverlap(c.a, c.b); ov < c.min {
					t.Errorf("%s warmed-tag overlap %.3f below %.2f (%d detailed tags)", c.name, ov, c.min, len(c.a))
				}
			}
		})
	}
}

// TestCheckpointResumeSampled pins the resume contract for sampled runs:
// resuming from a checkpoint taken at the warm-up boundary reproduces the
// replay-from-start statistics exactly.
func TestCheckpointResumeSampled(t *testing.T) {
	recs := synthTrace(t, synth.PublicProfile(synth.ComputeInt, 5), 40000)
	cfg := developConfig()
	cfg.SamplePeriod = 5000
	cfg.SampleDetail = 1000
	cfg.SampleWarm = 1500
	const warmup, limit = 8000, 40000

	replay, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := replay.Run(champtrace.NewSliceSource(recs), warmup, limit)
	if err != nil {
		t.Fatal(err)
	}
	if want.SampleIntervals == 0 {
		t.Fatal("sampled run recorded no intervals")
	}

	warmer, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := warmer.WarmTo(champtrace.NewSliceSource(recs), warmup)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Consumed != warmup {
		t.Fatalf("checkpoint consumed %d, want %d", ck.Consumed, warmup)
	}

	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.RunFrom(champtrace.NewSliceSource(recs), ck, limit)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resume-from-checkpoint stats diverge from replay:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointResumeExact covers the exact-mode resume path: warming a
// prefix live and continuing must equal restoring the same checkpoint into
// a fresh pipeline and continuing.
func TestCheckpointResumeExact(t *testing.T) {
	recs := synthTrace(t, synth.PublicProfile(synth.ComputeInt, 5), 30000)
	cfg := developConfig()
	const warmup, limit = 6000, 30000

	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := live.WarmTo(champtrace.NewSliceSource(recs), warmup)
	if err != nil {
		t.Fatal(err)
	}
	want, err := live.runExactBody(limit)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.RunFrom(champtrace.NewSliceSource(recs), ck, limit)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("exact resume stats diverge from live continuation:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointGeometryMismatch: restoring into a pipeline whose
// warm-relevant geometry differs must fail loudly, not corrupt state.
func TestCheckpointGeometryMismatch(t *testing.T) {
	recs := synthTrace(t, synth.PublicProfile(synth.ComputeInt, 2), 5000)
	cfg := developConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := p.WarmTo(champtrace.NewSliceSource(recs), 4000)
	if err != nil {
		t.Fatal(err)
	}

	small := cfg
	small.BTBEntries = 1024
	q, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.RestoreCheckpoint(ck); err == nil {
		t.Error("restoring into a smaller BTB succeeded; want geometry error")
	}

	// Core-geometry-only variants share WarmIdentity and restore cleanly.
	narrow := cfg
	narrow.FetchWidth, narrow.DispatchWidth, narrow.IssueWidth, narrow.RetireWidth = 2, 2, 2, 2
	narrow.ROBSize = 64
	if narrow.WarmIdentity() != cfg.WarmIdentity() {
		t.Error("core-geometry change altered WarmIdentity")
	}
	if small.WarmIdentity() == cfg.WarmIdentity() {
		t.Error("BTB geometry change did not alter WarmIdentity")
	}
	r, err := New(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreCheckpoint(ck); err != nil {
		t.Errorf("restoring into a core-geometry variant failed: %v", err)
	}
}

// TestSampledIdentityDisjoint: sampling parameters key the cache identity,
// so sampled and exact results can never collide.
func TestSampledIdentityDisjoint(t *testing.T) {
	exact := developConfig()
	sampled := exact
	sampled.SamplePeriod = 25000
	sampled.SampleDetail = 2000
	sampled.SampleWarm = 6000
	if exact.Identity() == sampled.Identity() {
		t.Error("sampled and exact configurations share an Identity")
	}
	other := sampled
	other.SampleWarm = 0
	if other.Identity() == sampled.Identity() {
		t.Error("different SampleWarm values share an Identity")
	}
}

// TestSampledDeterminism: two identical sampled runs agree exactly.
func TestSampledDeterminism(t *testing.T) {
	recs := synthTrace(t, synth.PublicProfile(synth.Server, 7), 30000)
	cfg := developConfig()
	cfg.SamplePeriod = 4000
	cfg.SampleDetail = 800
	cfg.SampleWarm = 1000
	run := func() Stats {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run(champtrace.NewSliceSource(recs), 3000, 30000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("sampled runs diverge:\n a %+v\n b %+v", a, b)
	}
}
