package resultcache

import (
	"container/list"
	"sync"
	"time"
)

// DefaultMemoryBytes is the in-memory tier budget when MemoryConfig leaves
// MaxBytes unset: large enough to hold every result of a full sweep many
// times over, small enough to stay invisible next to the simulator's own
// working set.
const DefaultMemoryBytes = 256 << 20

// Memory is a bounded in-memory LRU byte store: the fastest tier of a
// Tiered composition, and the one a long-running daemon answers repeat
// queries from. Payloads are stored by reference — callers must treat
// both Put payloads and Get results as immutable.
type Memory struct {
	maxBytes int64

	metrics tierMetrics

	mu    sync.Mutex
	order *list.List // front = most recently used; values are *memEntry
	byKey map[Key]*list.Element
	total int64
}

type memEntry struct {
	key     Key
	payload []byte
}

// NewMemory returns a memory backend bounded at maxBytes (<= 0 selects
// DefaultMemoryBytes).
func NewMemory(maxBytes int64) *Memory {
	if maxBytes <= 0 {
		maxBytes = DefaultMemoryBytes
	}
	return &Memory{
		maxBytes: maxBytes,
		order:    list.New(),
		byKey:    make(map[Key]*list.Element),
	}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Stat implements Backend.
func (m *Memory) Stat() BackendStats {
	s := m.metrics.snapshot(m.Name())
	return s
}

// Len returns the number of resident entries.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Bytes returns the resident payload footprint.
func (m *Memory) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Get implements Backend.
func (m *Memory) Get(key Key) ([]byte, error) {
	start := time.Now()
	m.mu.Lock()
	el, ok := m.byKey[key]
	var payload []byte
	if ok {
		m.order.MoveToFront(el)
		payload = el.Value.(*memEntry).payload
	}
	m.mu.Unlock()
	m.metrics.observeGet(start, ok, len(payload))
	if !ok {
		return nil, ErrNotFound
	}
	return payload, nil
}

// Put implements Backend. An entry larger than the whole budget is
// rejected quietly (stored nowhere) rather than wiping the tier to make
// room for it.
func (m *Memory) Put(key Key, payload []byte) error {
	start := time.Now()
	defer func() { m.metrics.observePut(start, nil, len(payload)) }()
	if int64(len(payload)) > m.maxBytes {
		return nil
	}
	var evicted uint64
	m.mu.Lock()
	if el, ok := m.byKey[key]; ok {
		e := el.Value.(*memEntry)
		m.total += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		m.order.MoveToFront(el)
	} else {
		m.byKey[key] = m.order.PushFront(&memEntry{key: key, payload: payload})
		m.total += int64(len(payload))
	}
	for m.total > m.maxBytes {
		back := m.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*memEntry)
		m.order.Remove(back)
		delete(m.byKey, e.key)
		m.total -= int64(len(e.payload))
		evicted++
	}
	m.mu.Unlock()
	if evicted > 0 {
		m.metrics.addEvictions(evicted)
	}
	return nil
}

// Delete implements Backend.
func (m *Memory) Delete(key Key) error {
	m.metrics.observeDelete()
	m.mu.Lock()
	if el, ok := m.byKey[key]; ok {
		e := el.Value.(*memEntry)
		m.order.Remove(el)
		delete(m.byKey, key)
		m.total -= int64(len(e.payload))
	}
	m.mu.Unlock()
	return nil
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }
