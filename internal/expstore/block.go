package expstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"tracerebase/internal/frame"
)

const (
	// blockHeaderSize is one page: column data starts page-aligned so the
	// mmap view serves fixed-width columns as zero-copy slices with natural
	// alignment.
	blockHeaderSize = 4096

	blockMagic  = "EXPB"
	footerMagic = "EXPF"

	// colAlign is the alignment of every column data region, so float64
	// columns can be viewed in place.
	colAlign = 8
)

// blockHeader is the decoded form of the fixed 4 KiB block header.
//
// On-disk layout (all integers little-endian):
//
//	[0:4)    magic "EXPB"
//	[4:8)    format version (u32)
//	[8:40)   schema key (32 bytes)
//	[40:48)  cell count (u64)
//	[48:56)  footer offset (u64)
//	[56:64)  footer length (u64)
//	[64:68)  CRC-32C of bytes [0:64) (u32)
//	[68:4096) zero padding to the page boundary
//
// Column data regions follow from offset 4096, each 8-byte aligned, in
// schema order; the frame-encoded footer closes the file.
type blockHeader struct {
	cells     int
	footerOff int64
	footerLen int64
}

const blockHeaderCRCOff = 64

// blockCheckedLen is the portion of the header page a reader actually
// parses and checksums: the fixed fields plus their CRC. The rest of the
// page is alignment padding and is never examined, so byte-read accounting
// charges only this much per header.
const blockCheckedLen = blockHeaderCRCOff + 4

func encodeBlockHeader(h blockHeader) []byte {
	buf := make([]byte, blockHeaderSize)
	copy(buf[0:4], blockMagic)
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	copy(buf[8:40], schemaKey[:])
	binary.LittleEndian.PutUint64(buf[40:48], uint64(h.cells))
	binary.LittleEndian.PutUint64(buf[48:56], uint64(h.footerOff))
	binary.LittleEndian.PutUint64(buf[56:64], uint64(h.footerLen))
	crc := frame.Checksum(buf[:blockHeaderCRCOff])
	binary.LittleEndian.PutUint32(buf[blockHeaderCRCOff:blockHeaderCRCOff+4], crc)
	return buf
}

// blockVerdict classifies a parsed block header, mirroring the tracestore
// trichotomy.
type blockVerdict int

const (
	blockOK blockVerdict = iota
	// blockCorrupt: the file is damaged (bad magic, CRC, or impossible
	// geometry) — remove it; the cells re-appear on the next sweep.
	blockCorrupt
	// blockForeign: intact but written by another format version or
	// schema — skip it, never delete it.
	blockForeign
)

func parseBlockHeader(buf []byte, fileSize int64) (blockHeader, blockVerdict) {
	var h blockHeader
	if len(buf) < blockHeaderSize || string(buf[0:4]) != blockMagic {
		return h, blockCorrupt
	}
	crc := frame.Checksum(buf[:blockHeaderCRCOff])
	if binary.LittleEndian.Uint32(buf[blockHeaderCRCOff:blockHeaderCRCOff+4]) != crc {
		return h, blockCorrupt
	}
	if binary.LittleEndian.Uint32(buf[4:8]) != FormatVersion {
		return h, blockForeign
	}
	if !bytes.Equal(buf[8:40], schemaKey[:]) {
		return h, blockForeign
	}
	cells := binary.LittleEndian.Uint64(buf[40:48])
	fOff := binary.LittleEndian.Uint64(buf[48:56])
	fLen := binary.LittleEndian.Uint64(buf[56:64])
	if cells == 0 || cells > math.MaxInt32 ||
		fOff < blockHeaderSize || fLen < frame.MinRecordSize ||
		fOff > uint64(fileSize) || fLen > uint64(fileSize) ||
		fOff+fLen != uint64(fileSize) {
		return h, blockCorrupt
	}
	h.cells = int(cells)
	h.footerOff = int64(fOff)
	h.footerLen = int64(fLen)
	return h, blockOK
}

// colMeta is one column's footer entry: where its data region lives, its
// CRC, and the kind-specific pruning statistics.
type colMeta struct {
	off, length int64
	crc         uint32
	// uint / float statistics (float stored as IEEE-754 bits).
	minU, maxU uint64
	// key statistics.
	minK, maxK Key
	// dictionary, sorted ascending; indices in the data region refer to
	// this order. Doubles as the pruning statistic.
	dict []string
}

// blockMeta is the footer's block-level dedup lineage: enough provenance
// for a query to prove a set of scanned blocks cannot contain duplicate
// content keys, and skip materializing the 32-byte key column entirely.
//
//   - runID identifies the writer run: blocks from one run are mutually
//     dup-free because the writer's seen-set dedups every append.
//   - baseSeq is the writer's view horizon: every block with a smaller
//     sequence number existed when the run started, so its keys were loaded
//     into the seen-set and the run's blocks are dup-free against it.
//   - srcMin/srcMax (compaction outputs only) are the sequence range the
//     output's cells came from. A crash between publishing the output and
//     removing its inputs leaves both on disk; the overlapping ranges flag
//     the pair as dup-suspect so query dedup engages.
//   - mayDup marks a block that itself holds duplicate keys (a compaction
//     output whose inputs were such crash leftovers).
type blockMeta struct {
	runID          uint64
	baseSeq        uint64
	srcMin, srcMax uint64
	hasSrc         bool
	mayDup         bool
}

const (
	footerFlagMayDup   = 1 << 0
	footerFlagSrcRange = 1 << 1
)

// footer payload layout, wrapped in a frame.Encode record with magic
// "EXPF" and the schema key. Column names and kinds are not repeated here:
// the schema key in the frame and the block header already pins them, so
// the directory stores only geometry and statistics, mostly as uvarints —
// footers are read for every block a query considers, pruned or not, and
// their size is the floor of a selective query's byte cost.
//
//	u8  flags (bit 0 mayDup, bit 1 has source range)
//	u64 writer run ID (little-endian)
//	uv  base sequence
//	[flag bit 1] uv source-min sequence, uv source range width
//	uv  column count (must equal the schema's)
//	per column, in schema order:
//	  uv data offset, uv data length (byte region within the file)
//	  u32 CRC-32C of the data region (little-endian)
//	  kind-specific stats:
//	    uint:  uv min, uv max-min
//	    float: u64 min bits, u64 max bits (little-endian)
//	    key:   32-byte min, 32-byte max
//	    dict:  uv n, then n × (uv length, bytes), sorted ascending
func encodeFooterPayload(bm blockMeta, metas []colMeta) []byte {
	var b []byte
	var flags byte
	if bm.mayDup {
		flags |= footerFlagMayDup
	}
	if bm.hasSrc {
		flags |= footerFlagSrcRange
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint64(b, bm.runID)
	b = binary.AppendUvarint(b, bm.baseSeq)
	if bm.hasSrc {
		b = binary.AppendUvarint(b, bm.srcMin)
		b = binary.AppendUvarint(b, bm.srcMax-bm.srcMin)
	}
	b = binary.AppendUvarint(b, uint64(len(metas)))
	for i, m := range metas {
		c := columns[i]
		b = binary.AppendUvarint(b, uint64(m.off))
		b = binary.AppendUvarint(b, uint64(m.length))
		b = binary.LittleEndian.AppendUint32(b, m.crc)
		switch c.kind {
		case kindUint:
			b = binary.AppendUvarint(b, m.minU)
			b = binary.AppendUvarint(b, m.maxU-m.minU)
		case kindFloat:
			b = binary.LittleEndian.AppendUint64(b, m.minU)
			b = binary.LittleEndian.AppendUint64(b, m.maxU)
		case kindKey:
			b = append(b, m.minK[:]...)
			b = append(b, m.maxK[:]...)
		case kindDict:
			b = binary.AppendUvarint(b, uint64(len(m.dict)))
			for _, s := range m.dict {
				b = binary.AppendUvarint(b, uint64(len(s)))
				b = append(b, s...)
			}
		}
	}
	return b
}

// decodeFooterPayload parses and validates a footer payload against the
// compiled schema and the block geometry. Every field is bounds-checked:
// this path is fuzzed with arbitrary bytes.
func decodeFooterPayload(b []byte, h blockHeader) (blockMeta, []colMeta, error) {
	cur := b
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(cur)
		if n <= 0 {
			return 0, false
		}
		cur = cur[n:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(cur) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(cur)
		cur = cur[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(cur) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(cur)
		cur = cur[8:]
		return v, true
	}
	take := func(n int) ([]byte, bool) {
		if n < 0 || len(cur) < n {
			return nil, false
		}
		v := cur[:n]
		cur = cur[n:]
		return v, true
	}
	var bm blockMeta
	fail := func(format string, args ...any) (blockMeta, []colMeta, error) {
		return bm, nil, fmt.Errorf("%w: footer: %s", frame.ErrCorrupt, fmt.Sprintf(format, args...))
	}

	flagb, ok := take(1)
	if !ok {
		return fail("truncated at flags")
	}
	if flagb[0]&^(footerFlagMayDup|footerFlagSrcRange) != 0 {
		return fail("unknown flags %02x", flagb[0])
	}
	bm.mayDup = flagb[0]&footerFlagMayDup != 0
	bm.hasSrc = flagb[0]&footerFlagSrcRange != 0
	run, ok1 := u64()
	base, ok2 := uv()
	if !ok1 || !ok2 {
		return fail("truncated at writer lineage")
	}
	bm.runID, bm.baseSeq = run, base
	if bm.hasSrc {
		lo, ok1 := uv()
		width, ok2 := uv()
		if !ok1 || !ok2 || width > math.MaxUint64-lo {
			return fail("bad source sequence range")
		}
		bm.srcMin, bm.srcMax = lo, lo+width
	}
	n, ok := uv()
	if !ok || int(n) != len(columns) {
		return fail("%d columns, schema has %d", n, len(columns))
	}
	metas := make([]colMeta, len(columns))
	for i := range columns {
		c := &columns[i]
		off, ok1 := uv()
		length, ok2 := uv()
		crc, ok3 := u32()
		if !ok1 || !ok2 || !ok3 {
			return fail("truncated at column %q geometry", c.name)
		}
		if off < blockHeaderSize || off%colAlign != 0 ||
			off > uint64(h.footerOff) || length > uint64(h.footerOff) ||
			off+length > uint64(h.footerOff) {
			return fail("column %q region [%d,+%d) outside data area", c.name, off, length)
		}
		m := &metas[i]
		m.off, m.length, m.crc = int64(off), int64(length), crc
		switch c.kind {
		case kindUint:
			mn, ok1 := uv()
			width, ok2 := uv()
			if !ok1 || !ok2 || width > math.MaxUint64-mn {
				return fail("bad column %q stats", c.name)
			}
			m.minU, m.maxU = mn, mn+width
		case kindFloat:
			mn, ok1 := u64()
			mx, ok2 := u64()
			if !ok1 || !ok2 {
				return fail("truncated at column %q stats", c.name)
			}
			m.minU, m.maxU = mn, mx
			if int(length) != h.cells*8 {
				return fail("float column %q length %d, want %d", c.name, length, h.cells*8)
			}
		case kindKey:
			mn, ok1 := take(KeyBytes)
			mx, ok2 := take(KeyBytes)
			if !ok1 || !ok2 {
				return fail("truncated at column %q stats", c.name)
			}
			copy(m.minK[:], mn)
			copy(m.maxK[:], mx)
			if int(length) != h.cells*KeyBytes {
				return fail("key column %q length %d, want %d", c.name, length, h.cells*KeyBytes)
			}
		case kindDict:
			dn, ok := uv()
			if !ok || dn == 0 || dn > uint64(h.cells) {
				return fail("column %q dictionary size %d for %d cells", c.name, dn, h.cells)
			}
			dict := make([]string, dn)
			for j := range dict {
				sl, ok := uv()
				if !ok {
					return fail("truncated in column %q dictionary", c.name)
				}
				sb, ok := take(int(sl))
				if !ok {
					return fail("truncated in column %q dictionary", c.name)
				}
				dict[j] = string(sb)
				if j > 0 && dict[j] <= dict[j-1] {
					return fail("column %q dictionary not sorted", c.name)
				}
			}
			m.dict = dict
		}
	}
	if len(cur) != 0 {
		return fail("%d trailing bytes", len(cur))
	}
	return bm, metas, nil
}

// KeyBytes is the width of a cell content key.
const KeyBytes = 32

// encodeBlock lays out cells as one complete block file image. Cells are
// written in the order given; callers sort batches by identity columns
// first so footer statistics are tight.
func encodeBlock(cells []Cell, bm blockMeta) ([]byte, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("expstore: empty block")
	}
	metas := make([]colMeta, len(columns))
	var data []byte // column regions, offset blockHeaderSize in the file
	for i := range columns {
		c := &columns[i]
		for len(data)%colAlign != 0 {
			data = append(data, 0)
		}
		start := len(data)
		m := &metas[i]
		switch c.kind {
		case kindDict:
			seen := make(map[string]struct{})
			for k := range cells {
				seen[*c.str(&cells[k])] = struct{}{}
			}
			dict := make([]string, 0, len(seen))
			for s := range seen {
				dict = append(dict, s)
			}
			sort.Strings(dict)
			idx := make(map[string]uint64, len(dict))
			for j, s := range dict {
				idx[s] = uint64(j)
			}
			for k := range cells {
				data = binary.AppendUvarint(data, idx[*c.str(&cells[k])])
			}
			m.dict = dict
		case kindUint:
			var prev uint64
			m.minU, m.maxU = math.MaxUint64, 0
			for k := range cells {
				v := *c.u64(&cells[k])
				data = binary.AppendUvarint(data, zigzag(v-prev))
				prev = v
				m.minU = min(m.minU, v)
				m.maxU = max(m.maxU, v)
			}
		case kindFloat:
			mn, mx := math.Inf(1), math.Inf(-1)
			for k := range cells {
				v := *c.f64(&cells[k])
				data = binary.LittleEndian.AppendUint64(data, math.Float64bits(v))
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			m.minU, m.maxU = math.Float64bits(mn), math.Float64bits(mx)
		case kindKey:
			m.minK = *c.ckey(&cells[0])
			m.maxK = m.minK
			for k := range cells {
				key := *c.ckey(&cells[k])
				data = append(data, key[:]...)
				if bytes.Compare(key[:], m.minK[:]) < 0 {
					m.minK = key
				}
				if bytes.Compare(key[:], m.maxK[:]) > 0 {
					m.maxK = key
				}
			}
		}
		m.off = int64(blockHeaderSize + start)
		m.length = int64(len(data) - start)
		m.crc = frame.Checksum(data[start:])
	}
	footer := frame.Encode(footerMagic, FormatVersion, schemaKey, encodeFooterPayload(bm, metas))
	h := blockHeader{
		cells:     len(cells),
		footerOff: int64(blockHeaderSize + len(data)),
		footerLen: int64(len(footer)),
	}
	out := make([]byte, 0, blockHeaderSize+len(data)+len(footer))
	out = append(out, encodeBlockHeader(h)...)
	out = append(out, data...)
	out = append(out, footer...)
	return out, nil
}

func zigzag(d uint64) uint64 {
	return uint64((int64(d) << 1) ^ (int64(d) >> 63))
}

func unzigzag(z uint64) uint64 {
	return uint64((int64(z) >> 1) ^ -(int64(z) & 1))
}

// openBlock validates the header and footer of a complete block image and
// returns the parsed block metadata and column directory. The error
// distinguishes foreign from corrupt via the verdict.
func openBlock(buf []byte) (blockHeader, blockMeta, []colMeta, blockVerdict, error) {
	h, v := parseBlockHeader(buf, int64(len(buf)))
	if v != blockOK {
		return h, blockMeta{}, nil, v, fmt.Errorf("%w: block header", frame.ErrCorrupt)
	}
	payload, err := frame.Decode(footerMagic, FormatVersion, schemaKey, buf[h.footerOff:h.footerOff+h.footerLen])
	if err != nil {
		return h, blockMeta{}, nil, blockCorrupt, err
	}
	bm, metas, err := decodeFooterPayload(payload, h)
	if err != nil {
		return h, bm, nil, blockCorrupt, err
	}
	return h, bm, metas, blockOK, nil
}

// colRegion returns a column's checked data region within the mapping.
func colRegion(buf []byte, m *colMeta) ([]byte, error) {
	region := buf[m.off : m.off+m.length]
	if got := frame.Checksum(region); got != m.crc {
		return nil, fmt.Errorf("%w: column checksum %08x, want %08x", frame.ErrCorrupt, got, m.crc)
	}
	return region, nil
}

// materializeDict decodes a dictionary column to per-cell dictionary
// indices. The dictionary itself lives in the footer meta.
func materializeDict(buf []byte, m *colMeta, cells int) ([]uint32, error) {
	region, err := colRegion(buf, m)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, cells)
	for i := range out {
		v, n := binary.Uvarint(region)
		if n <= 0 || v >= uint64(len(m.dict)) {
			return nil, fmt.Errorf("%w: bad dictionary index at cell %d", frame.ErrCorrupt, i)
		}
		out[i] = uint32(v)
		region = region[n:]
	}
	if len(region) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in dictionary column", frame.ErrCorrupt, len(region))
	}
	return out, nil
}

// materializeUint decodes a zigzag-delta column to per-cell values.
func materializeUint(buf []byte, m *colMeta, cells int) ([]uint64, error) {
	region, err := colRegion(buf, m)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, cells)
	var prev uint64
	for i := range out {
		z, n := binary.Uvarint(region)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad varint at cell %d", frame.ErrCorrupt, i)
		}
		prev += unzigzag(z)
		out[i] = prev
		region = region[n:]
	}
	if len(region) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in uint column", frame.ErrCorrupt, len(region))
	}
	return out, nil
}

// nativeLE reports whether the host is little-endian, probed once; on LE
// hosts fixed-width columns are served zero-copy from the mapping.
var nativeLE = func() bool {
	probe := uint64(0x01)
	return *(*byte)(unsafe.Pointer(&probe)) == 0x01
}()

// materializeFloat returns a column's float64 values. On little-endian
// hosts the returned slice aliases the mapping (the 8-byte alignment of
// column regions over the page-aligned header makes the view exact); other
// hosts decode a copy.
func materializeFloat(buf []byte, m *colMeta, cells int) ([]float64, error) {
	region, err := colRegion(buf, m)
	if err != nil {
		return nil, err
	}
	if len(region) != cells*8 {
		return nil, fmt.Errorf("%w: float column length %d, want %d", frame.ErrCorrupt, len(region), cells*8)
	}
	if cells == 0 {
		return nil, nil
	}
	if nativeLE && uintptr(unsafe.Pointer(&region[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&region[0])), cells), nil
	}
	out := make([]float64, cells)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(region[i*8:]))
	}
	return out, nil
}

// materializeKeys returns a column's 32-byte keys, zero-copy from the
// mapping (byte arrays have no alignment or endianness constraints).
func materializeKeys(buf []byte, m *colMeta, cells int) ([]Key, error) {
	region, err := colRegion(buf, m)
	if err != nil {
		return nil, err
	}
	if len(region) != cells*KeyBytes {
		return nil, fmt.Errorf("%w: key column length %d, want %d", frame.ErrCorrupt, len(region), cells*KeyBytes)
	}
	if cells == 0 {
		return nil, nil
	}
	return unsafe.Slice((*Key)(unsafe.Pointer(&region[0])), cells), nil
}

// DecodeBlock fully decodes a block image back to its cells, in block
// order. This is the brute-force path: full scans, compaction, and the
// fuzz target go through it.
func DecodeBlock(buf []byte) ([]Cell, error) {
	h, _, metas, v, err := openBlock(buf)
	if v == blockForeign {
		return nil, fmt.Errorf("expstore: foreign block: %w", err)
	}
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, h.cells)
	for i := range columns {
		c := &columns[i]
		switch c.kind {
		case kindDict:
			idx, err := materializeDict(buf, &metas[i], h.cells)
			if err != nil {
				return nil, err
			}
			for k := range cells {
				*c.str(&cells[k]) = metas[i].dict[idx[k]]
			}
		case kindUint:
			vals, err := materializeUint(buf, &metas[i], h.cells)
			if err != nil {
				return nil, err
			}
			for k := range cells {
				*c.u64(&cells[k]) = vals[k]
			}
		case kindFloat:
			vals, err := materializeFloat(buf, &metas[i], h.cells)
			if err != nil {
				return nil, err
			}
			for k := range cells {
				*c.f64(&cells[k]) = vals[k]
			}
		case kindKey:
			keys, err := materializeKeys(buf, &metas[i], h.cells)
			if err != nil {
				return nil, err
			}
			for k := range cells {
				*c.ckey(&cells[k]) = keys[k]
			}
		}
	}
	return cells, nil
}
