package bpred

// Warmed-state serialization for the checkpointing engine (see snap).
// Every predictor serializes its durable tables and histories; per-branch
// scratch set by Predict and consumed by the paired Update is excluded —
// it is dead state between branches, and the warming stepper always runs
// Predict/Update as a pair. The snapshot byte stream of two predictors is
// equal iff their durable state is equal, which the functional-warming
// equivalence tests rely on.

import "tracerebase/internal/sim/snap"

// Section tags, one per serialized component.
const (
	snapAlwaysTaken = 0xb9ed0001
	snapBimodal     = 0xb9ed0002
	snapGshare      = 0xb9ed0003
	snapTAGE        = 0xb9ed0004
	snapTAGESCL     = 0xb9ed0005
)

// Snapshot implements the checkpoint state codec (no durable state).
func (AlwaysTaken) Snapshot(w *snap.Writer) { w.Mark(snapAlwaysTaken) }

// Restore implements the checkpoint state codec.
func (AlwaysTaken) Restore(r *snap.Reader) { r.Expect(snapAlwaysTaken) }

// Snapshot serializes the counter table.
func (b *Bimodal) Snapshot(w *snap.Writer) {
	w.Mark(snapBimodal)
	w.U32(uint32(len(b.table)))
	for _, c := range b.table {
		w.U8(uint8(c))
	}
}

// Restore restores the counter table into a predictor of identical
// geometry.
func (b *Bimodal) Restore(r *snap.Reader) {
	r.Expect(snapBimodal)
	if n := r.Len(); n != len(b.table) {
		r.Failf("bimodal table length mismatch: %d vs %d", n, len(b.table))
		return
	}
	for i := range b.table {
		b.table[i] = counter(r.U8())
	}
}

// Snapshot serializes the counter table and global history.
func (g *Gshare) Snapshot(w *snap.Writer) {
	w.Mark(snapGshare)
	w.U32(uint32(len(g.table)))
	for _, c := range g.table {
		w.U8(uint8(c))
	}
	w.U64(g.history)
}

// Restore restores table and history.
func (g *Gshare) Restore(r *snap.Reader) {
	r.Expect(snapGshare)
	if n := r.Len(); n != len(g.table) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range g.table {
		g.table[i] = counter(r.U8())
	}
	g.history = r.U64()
}

// Snapshot serializes the base bimodal, every tagged table, the folded
// index/tag registers, the global history buffer, and the allocation
// meta-state.
func (t *TAGE) Snapshot(w *snap.Writer) {
	w.Mark(snapTAGE)
	t.base.Snapshot(w)
	w.U32(uint32(len(t.tables)))
	for _, e := range t.tables {
		w.U16(e.tag)
		w.I8(e.ctr)
		w.U8(e.useful)
	}
	// Fold geometry (origLen/foldLen/outPoint) is configuration-derived;
	// only the rolling values are state.
	for _, f := range [][]foldedHistory{t.idxFold, t.tagFold1, t.tagFold2} {
		w.U32(uint32(len(f)))
		for i := range f {
			w.U64(f[i].value)
		}
	}
	w.U64s(t.ghist.bits)
	w.I64(int64(t.allocs))
	w.I8(t.useAltOnNA)
}

// Restore restores TAGE state into a predictor of identical geometry.
func (t *TAGE) Restore(r *snap.Reader) {
	r.Expect(snapTAGE)
	t.base.Restore(r)
	if n := r.Len(); n != len(t.tables) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range t.tables {
		t.tables[i].tag = r.U16()
		t.tables[i].ctr = r.I8()
		t.tables[i].useful = r.U8()
	}
	for _, f := range [][]foldedHistory{t.idxFold, t.tagFold1, t.tagFold2} {
		if n := r.Len(); n != len(f) {
			r.Failf("snapshot geometry mismatch")
			return
		}
		for i := range f {
			f[i].value = r.U64()
		}
	}
	r.U64s(t.ghist.bits)
	t.allocs = int(r.I64())
	t.useAltOnNA = r.I8()
}

// Snapshot serializes the embedded TAGE, loop table, statistical-corrector
// weights, and the SC history register.
func (p *TAGESCL) Snapshot(w *snap.Writer) {
	w.Mark(snapTAGESCL)
	p.tage.Snapshot(w)
	w.U32(uint32(len(p.loop.table)))
	for _, e := range p.loop.table {
		w.U16(e.tag)
		w.U16(e.tripCount)
		w.U16(e.curCount)
		w.U8(e.confidence)
		w.Bool(e.valid)
	}
	w.U32(uint32(len(p.sc)))
	for _, t := range p.sc {
		w.U32(uint32(len(t.weights)))
		for _, v := range t.weights {
			w.I8(v)
		}
	}
	w.U64(p.schist)
}

// Restore restores TAGE-SC-L state.
func (p *TAGESCL) Restore(r *snap.Reader) {
	r.Expect(snapTAGESCL)
	p.tage.Restore(r)
	if n := r.Len(); n != len(p.loop.table) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for i := range p.loop.table {
		e := &p.loop.table[i]
		e.tag = r.U16()
		e.tripCount = r.U16()
		e.curCount = r.U16()
		e.confidence = r.U8()
		e.valid = r.Bool()
	}
	if n := r.Len(); n != len(p.sc) {
		r.Failf("snapshot geometry mismatch")
		return
	}
	for _, t := range p.sc {
		if n := r.Len(); n != len(t.weights) {
			r.Failf("snapshot geometry mismatch")
			return
		}
		for i := range t.weights {
			t.weights[i] = r.I8()
		}
	}
	p.schist = r.U64()
}
