package experiments

import (
	"reflect"
	"testing"

	"tracerebase/internal/core"
	"tracerebase/internal/synth"
	"tracerebase/internal/tracestore"
)

func testSlabStore(t *testing.T, dir string) *SlabStore {
	t.Helper()
	s, err := tracestore.Open(tracestore.Config{Dir: dir})
	if err != nil {
		t.Fatalf("open slab store: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestConverterClasses(t *testing.T) {
	vs := []Variant{
		{"a", core.OptionsNone()},
		{"b", core.OptionsAll()},
		{"c", core.OptionsNone()}, // same bits as a
		{"d", core.Options{FlagReg: true}},
	}
	classOf, classOpts := converterClasses(vs)
	if len(classOpts) != 3 {
		t.Fatalf("got %d classes, want 3", len(classOpts))
	}
	if classOf[0] != classOf[2] {
		t.Fatalf("identical option sets split into classes %d and %d", classOf[0], classOf[2])
	}
	if classOf[0] == classOf[1] || classOf[1] == classOf[3] || classOf[0] == classOf[3] {
		t.Fatalf("distinct option sets merged: %v", classOf)
	}
	for vi, ci := range classOf {
		if classOpts[ci].Bits() != vs[vi].Opts.Bits() {
			t.Fatalf("class %d options do not match variant %d", ci, vi)
		}
	}
	// The standard ten variants all have distinct option bits.
	classOf, classOpts = converterClasses(Variants())
	if len(classOpts) != 10 {
		t.Fatalf("standard variants: %d classes, want 10", len(classOpts))
	}
	_ = classOf
}

// TestRunSweepSlabTransparency: a sweep fed from the slab store must be
// DeepEqual to the streaming-conversion sweep — records, IPC, simulator
// statistics, and converter statistics alike — cold and warm.
func TestRunSweepSlabTransparency(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 2),
		synth.PublicProfile(synth.Crypto, 1),
	}
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone, VariantBranch, VariantAll)

	want, err := RunSweep(profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cold := cfg
	cold.Slabs = testSlabStore(t, dir)
	got, err := RunSweep(profiles, cold)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("slab-fed sweep differs from streaming sweep (cold store)")
	}
	st := cold.Slabs.Stats()
	if st.Converts != uint64(len(profiles)*len(cfg.Variants)) {
		t.Fatalf("cold store converts = %d, want %d (one per trace and class): %+v",
			st.Converts, len(profiles)*len(cfg.Variants), st)
	}

	// A fresh store over the same directory serves every slab from disk.
	warm := cfg
	warm.Slabs = testSlabStore(t, dir)
	got2, err := RunSweep(profiles, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Fatal("slab-fed sweep differs from streaming sweep (warm store)")
	}
	st = warm.Slabs.Stats()
	if st.Converts != 0 || st.DiskHits == 0 {
		t.Fatalf("warm store stats: %+v", st)
	}
}

// TestRunSweepSlabClassSharing: variants with identical converter options
// share one conversion per trace.
func TestRunSweepSlabClassSharing(t *testing.T) {
	profiles := []synth.Profile{synth.PublicProfile(synth.Server, 1)}
	cfg := testSweepConfig()
	// Two variants, same option bits: one class, one conversion.
	cfg.Variants = []Variant{
		{VariantNone, core.OptionsNone()},
		{"No_imp_again", core.OptionsNone()},
	}
	cfg.Slabs = testSlabStore(t, t.TempDir())
	res, err := RunSweep(profiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := cfg.Slabs.Stats(); st.Converts != 1 {
		t.Fatalf("class sharing broken: %d conversions for 1 class: %+v", st.Converts, st)
	}
	a := res[0].Results[VariantNone]
	b := res[0].Results["No_imp_again"]
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical-options variants differ")
	}
}

// TestRunSweepSlabParallelDeterminism: slab-fed sweeps stay byte-identical
// across worker counts, sharing one store.
func TestRunSweepSlabParallelDeterminism(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 2),
		synth.PublicProfile(synth.Server, 3),
	}
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone, VariantAll)
	cfg.Slabs = testSlabStore(t, t.TempDir())

	serial := cfg
	serial.Parallelism = 1
	a, err := RunSweep(profiles, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Parallelism = 4
	b, err := RunSweep(profiles, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("slab-fed parallel sweep differs from serial")
	}
}

// TestRunSweepSlabGenerationError: a failing profile still reports its
// generation error once per trace through the slab path, and healthy
// traces deliver complete results.
func TestRunSweepSlabGenerationError(t *testing.T) {
	bad := synth.Profile{Name: "bad"}
	good := synth.PublicProfile(synth.ComputeInt, 2)
	cfg := testSweepConfig()
	cfg.Variants = figureVariants(VariantNone, VariantAll)
	cfg.Slabs = testSlabStore(t, t.TempDir())

	res, err := RunSweep([]synth.Profile{bad, good}, cfg)
	if err == nil {
		t.Fatal("nil error for invalid profile")
	}
	if len(res[0].Results) != 0 {
		t.Error("failed trace should have empty Results")
	}
	if len(res[1].Results) != len(cfg.Variants) {
		t.Fatalf("healthy trace has %d results, want %d", len(res[1].Results), len(cfg.Variants))
	}
}

// TestMultiSweepSlabTransparency: co-scheduled multi-core sweeps are
// identical with and without the slab store, including the shared-slab
// case of one workload pinned to both cores.
func TestMultiSweepSlabTransparency(t *testing.T) {
	p := synth.PublicProfile(synth.Server, 1)
	workloads := []synth.Profile{p, p} // same profile on both cores: one slab, two refs
	cfg := testSweepConfig()
	cfg.Cores = 2
	cfg.Variants = figureVariants(VariantNone, VariantAll)

	want, err := RunMultiSweep("pair", workloads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Slabs = testSlabStore(t, t.TempDir())
	got, err := RunMultiSweep("pair", workloads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("slab-fed multi-core sweep differs from streaming")
	}
	// One conversion per variant (both cores share the slab), not two.
	if st := cfg.Slabs.Stats(); st.Converts != uint64(len(cfg.Variants)) {
		t.Fatalf("multi-core slab sharing broken: %+v", st)
	}
}

// TestTable3WithSlabs / ablation: the IPC-1 paths produce identical output
// through the store.
func TestTable3SlabTransparency(t *testing.T) {
	suite := synth.IPC1Suite()[:2]
	cfg := testSweepConfig()
	want, err := Table3(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Slabs = testSlabStore(t, t.TempDir())
	got, err := Table3(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("slab-fed Table 3 differs from streaming")
	}
	// Two sets per trace: 2 traces × 2 classes = 4 conversions.
	if st := cfg.Slabs.Stats(); st.Converts != 4 {
		t.Fatalf("Table 3 conversion hoisting broken: %+v", st)
	}
}

func TestSlabKeyDisjointness(t *testing.T) {
	p1 := synth.PublicProfile(synth.ComputeInt, 2)
	p2 := synth.PublicProfile(synth.ComputeInt, 3)
	keys := map[tracestore.Key]string{}
	add := func(name string, k tracestore.Key) {
		if prev, ok := keys[k]; ok {
			t.Fatalf("slab key collision: %s == %s", name, prev)
		}
		keys[k] = name
	}
	add("p1/none/1000", slabKey(&p1, core.OptionsNone(), 1000))
	add("p2/none/1000", slabKey(&p2, core.OptionsNone(), 1000))
	add("p1/all/1000", slabKey(&p1, core.OptionsAll(), 1000))
	add("p1/none/2000", slabKey(&p1, core.OptionsNone(), 2000))
	// Same inputs must agree (content addressing is deterministic).
	if slabKey(&p1, core.OptionsNone(), 1000) != slabKey(&p1, core.OptionsNone(), 1000) {
		t.Fatal("slab key not deterministic")
	}
}
