package cpu

import (
	"fmt"
	"io"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/sim/btb"
	"tracerebase/internal/sim/mem"
)

// uop is one in-flight instruction. Uops live in the pipeline's preallocated
// arena ring and are referred to by 32-bit refs (see uref), never by pointer,
// so the steady-state cycle loop performs no heap allocation and the GC never
// scans pipeline state.
type uop struct {
	ip    uint64
	seq   uint64
	btype champtrace.BranchType
	taken bool
	// target is the actual next IP of a taken branch (trace truth).
	target uint64

	// loadAddrs/storeAddrs are inlined at the trace format's maximum
	// (NumSrcMem/NumDestMem slots), so no per-uop slice is ever allocated;
	// nLoads/nStores give the live prefix.
	loadAddrs  [champtrace.NumSrcMem]uint64
	storeAddrs [champtrace.NumDestMem]uint64
	nLoads     uint8
	nStores    uint8

	// lineReady is the cycle the uop's icache line is available, set at
	// FTQ insertion in decoupled mode (fetch-directed icache access).
	lineReady uint64

	srcRegs [champtrace.NumSrcRegs]uint8
	dstRegs [champtrace.NumDestRegs]uint8
	// deps holds refs to the producers of each source register. A ref is
	// resolved (set to norefs) as soon as it is observed ready, so the
	// scheduler never rechecks a completed producer.
	deps [champtrace.NumSrcRegs]uref

	fetchLine   uint64
	decodeReady uint64
	completed   bool
	complete    uint64 // cycle at which the result is available

	// mispred marks a branch whose direction or target prediction was
	// wrong: instruction supply stalls at this uop until it resolves.
	mispred bool
}

// uref is a 32-bit reference to an arena uop: the low bits (arenaMask) index
// the ring slot, and the full value is the truncated sequence number of the
// referenced uop, so the bits above the slot index act as a generation tag.
// A ref whose value no longer matches the slot's uint32(seq) is stale — the
// producer retired and its slot was recycled — and stale producers are by
// construction complete, so stale refs read as "ready" without any clearing.
// noref (0) means "no dependency"; real seqs start at 1. (Generation
// aliasing would need 2^32 uops between link and check — far beyond any
// simulated interval.)
type uref = uint32

// noref is the nil uref.
const noref uref = 0

type sqEntry struct {
	addr  uint64 // 8-byte-aligned store address
	ready uint64 // cycle the data can be forwarded
	seq   uint64
}

// Pipeline is the simulated core. All queues are fixed-capacity rings over
// preallocated storage: after the structures reach their high-water mark the
// cycle loop allocates nothing.
type Pipeline struct {
	cfg  Config
	pred directionPredictor
	tp   targetPredictor
	hier *mem.Hierarchy
	tlbs *mem.TLBHierarchy
	ipf  iprefetchHook

	// arena is the uop ring: a uop with sequence number s lives in slot
	// uint32(s) & arenaMask. Allocation (bpuFill) and release (retire)
	// are both in sequence order, so the live region is contiguous.
	arena     []uop
	arenaMask uint32

	// Front end.
	la      lookahead
	ftq     []uref // ring, capacity ≥ FTQSize
	ftqMask uint32
	ftqHead uint32
	ftqLen  int
	decq    []uref // ring, capacity ≥ DecodeQueue
	decqMask  uint32
	decqHead  uint32
	decqLen   int
	stalled   bool
	stalledOn uref
	curLine   uint64
	curLineAt uint64 // cycle the current fetch line is available
	// insertLine/insertLineAt implement the decoupled front-end's
	// in-order icache pipeline: the FTQ issues one access per line as
	// entries are enqueued, ahead of fetch.
	insertLine   uint64
	insertLineAt uint64
	// sampleSalt hashes the IPs consumed by functional warming; the
	// sampling loop folds it into its placement RNG so every trace gets
	// its own stratified interval schedule (sample.go). Checkpointed, so
	// a resume draws the same schedule as an uninterrupted run.
	sampleSalt uint64

	// Back end. The ROB needs no storage of its own: it is exactly the
	// oldest robCount live uops of the arena, in sequence order, with the
	// head at sequence p.retired+1.
	robCount int
	// pending holds dispatched-but-not-issued uops in age order, so the
	// scheduler scans only waiting instructions instead of the whole ROB.
	pending []uref
	sq      []sqEntry // ring, capacity ≥ SQSize (power of two)
	sqMask  uint32
	sqHead  uint32
	sqLen   int
	// regProducer tracks the most recent writer of each register id.
	// Entries go stale when the producer retires; staleness is detected
	// by the uref generation check, never by clearing.
	regProducer [256]uref

	// ipfBuf is the reusable scratch the instruction-prefetch hooks append
	// their prefetch addresses into.
	ipfBuf []uint64

	cycle   uint64
	seq     uint64
	retired uint64

	// Event-horizon cycle skipping. nextWake is a monotone next-event
	// register: during each pass the stages min-accumulate the ready cycle
	// of every blocker they observe, and progressed records whether any
	// stage moved a uop. When a full pass makes no progress, Run jumps
	// p.cycle to nextWake instead of ticking — every intermediate cycle is
	// provably dead (see DESIGN.md "The event-horizon invariant").
	nextWake   uint64
	progressed bool

	// stats for the measured region.
	st            Stats
	warmupCycles  uint64
	warmupRetired uint64
	measuring     bool

	// coreID is this core's index in a multi-core system (0 when single).
	// llcBase snapshots the shared LLC's per-core counters at measurement
	// start: shared counters cannot be reset per core, so the measured
	// window is reported as a delta (see beginMeasurement).
	coreID  int
	llcBase mem.Stats
}

// at returns the arena uop a ref points to. The caller is responsible for
// the generation check when the ref may be stale.
func (p *Pipeline) at(r uref) *uop { return &p.arena[r&p.arenaMask] }

// wake lowers the pass's event horizon to cycle c. Every stage that finds
// itself blocked on a future cycle it already knows (a completion time, a
// line fill, a decode latency, a redirect-penalty expiry) must report that
// cycle here, or a zero-progress pass could jump past the moment the stage
// would have unblocked.
func (p *Pipeline) wake(c uint64) {
	if c < p.nextWake {
		p.nextWake = c
	}
}

// Narrow interfaces so the pipeline file does not depend on concrete types
// beyond what it exercises (and tests can substitute).
type directionPredictor interface {
	Name() string
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

type targetPredictor interface {
	Predict(pc uint64, btype champtrace.BranchType) (uint64, bool)
	Resolve(pc uint64, btype champtrace.BranchType, taken bool, predTarget uint64, predKnown bool, actualTarget, fallthroughAddr uint64) bool
	Stats() btb.TargetStats
	ResetStats()
}

type iprefetchHook interface {
	OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64
	OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64
	OnFTQInsert(lineAddr uint64, buf []uint64) []uint64
}

// lookahead wraps the trace source with a one-instruction buffer so each
// branch's actual target (the next instruction's IP) is known when the
// branch is processed — exactly how ChampSim's tracereader derives targets.
// The buffer holds the records by value: sources that recycle their record
// storage (the streaming converter) stay safe, and no per-record pointer
// escapes to the heap.
type lookahead struct {
	src champtrace.Source
	// buf ping-pongs: buf[idx] holds the buffered next instruction, and a
	// pop promotes it to "current" by flipping idx instead of copying the
	// record — the refill from the source is the only copy per pop.
	buf  [2]champtrace.Instruction
	idx  int
	has  bool
	done bool
}

func (l *lookahead) init(src champtrace.Source) error {
	l.src = src
	l.has = false
	l.done = false
	l.idx = 0
	in, err := src.Next()
	if err == io.EOF {
		l.done = true
		return nil
	}
	if err != nil {
		return err
	}
	l.buf[l.idx] = *in
	l.has = true
	return nil
}

// pop returns the next instruction and the IP that follows it in the trace
// (0 at end of trace). The returned pointer aims at the lookahead's own
// buffer and is valid until the next pop.
func (l *lookahead) pop() (*champtrace.Instruction, uint64, error) {
	if !l.has {
		return nil, 0, io.EOF
	}
	cur := &l.buf[l.idx]
	in, err := l.src.Next()
	if err == io.EOF {
		l.has = false
		l.done = true
		return cur, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	l.idx ^= 1
	l.buf[l.idx] = *in
	return cur, l.buf[l.idx].IP, nil
}

// Run simulates the trace. Statistics cover instructions retired after the
// first warmup instructions; the run ends when maxInstructions have retired
// (0 = no limit) or the trace is exhausted and the pipeline drains.
func (p *Pipeline) Run(src champtrace.Source, warmup, maxInstructions uint64) (Stats, error) {
	if p.cfg.Cores > 1 {
		return Stats{}, fmt.Errorf("cpu: configuration %q has Cores=%d; single-core Run cannot simulate it, use NewMulti/MultiPipeline.Run", p.cfg.Name, p.cfg.Cores)
	}
	if p.cfg.SamplePeriod > 0 {
		// Interval sampling (sample.go). The exact path below is not
		// shared with it and remains byte-identical to prior releases.
		return p.runSampled(src, warmup, maxInstructions)
	}
	if err := p.la.init(src); err != nil {
		return Stats{}, err
	}
	p.measuring = warmup == 0
	if p.measuring {
		p.beginMeasurement()
	}
	skip := !p.cfg.NoCycleSkip
	for {
		p.pass()
		if skip && !p.progressed && p.nextWake != ^uint64(0) && p.nextWake > p.cycle+1 {
			// Zero-progress pass with a known horizon: every stage is
			// blocked until at least nextWake, so the intervening cycles
			// cannot change any state. Jump straight there. (Counters
			// accumulate unconditionally; beginMeasurement resets them,
			// exactly like the other warm-up-excluded stats.)
			p.jumpTo(p.nextWake)
		} else {
			p.cycle++
		}

		if !p.measuring && p.retired >= warmup {
			p.measuring = true
			p.beginMeasurement()
		}
		if maxInstructions > 0 && p.retired >= maxInstructions {
			break
		}
		if p.drained() {
			break
		}
	}
	return p.finalize(), nil
}

// pass runs one cycle's stage sequence, resetting the event horizon and
// progress flag first. One pass of one core; the single-core Run loop and
// the multi-core lockstep loop both build on it.
func (p *Pipeline) pass() {
	p.nextWake = ^uint64(0)
	p.progressed = false
	p.retire()
	p.issue()
	p.dispatch()
	p.fetch()
	p.bpuFill()
}

// jumpTo performs an event-horizon jump to cycle wake, accounting the
// skipped span. The caller has established that no stage can make progress
// before wake.
func (p *Pipeline) jumpTo(wake uint64) {
	p.st.SkippedCycles += wake - p.cycle - 1
	p.st.CycleSkips++
	p.cycle = wake
}

// drained reports whether the trace is exhausted and every queue is empty —
// the natural end of a run.
func (p *Pipeline) drained() bool {
	return p.la.done && p.robCount == 0 && p.ftqLen == 0 && p.decqLen == 0
}

// finalize closes the measured region and returns the statistics.
func (p *Pipeline) finalize() Stats {
	p.st.Instructions = p.retired - p.warmupRetired
	p.st.Cycles = p.cycle - p.warmupCycles
	p.collectCacheStats()
	return p.st
}

func (p *Pipeline) beginMeasurement() {
	p.warmupCycles = p.cycle
	p.warmupRetired = p.retired
	// Preserve the measured-region counters only.
	p.st = Stats{}
	p.hier.ResetStats()
	if p.hier.Shared {
		// The shared LLC cannot be reset per core (ResetStats skipped it);
		// snapshot this core's attributed counters instead and report the
		// measured window as a delta in collectCacheStats.
		p.llcBase = p.hier.LLC.CoreStats(p.coreID)
	}
	p.tp.ResetStats()
	if p.tlbs != nil {
		p.tlbs.ResetStats()
	}
}

func (p *Pipeline) collectCacheStats() {
	grab := func(c *mem.Cache) CacheStat {
		s := c.Stats()
		return CacheStat{Accesses: s.Accesses, Misses: s.Misses, UsefulPrefetches: s.UsefulPrefetches}
	}
	p.st.L1I = grab(p.hier.L1I)
	p.st.L1D = grab(p.hier.L1D)
	p.st.L2 = grab(p.hier.L2)
	if p.hier.Shared {
		s := p.hier.LLC.CoreStats(p.coreID).Sub(p.llcBase)
		p.st.LLC = CacheStat{Accesses: s.Accesses, Misses: s.Misses, UsefulPrefetches: s.UsefulPrefetches}
	} else {
		p.st.LLC = grab(p.hier.LLC)
	}
	if p.tlbs != nil {
		p.st.ITLBMisses = p.tlbs.ITLB.Stats().Misses
		p.st.DTLBMisses = p.tlbs.DTLB.Stats().Misses
		p.st.STLBMisses = p.tlbs.STLB.Stats().Misses
	}
	p.st.BTBMisses = p.tp.Stats().BTBMisses
}

// ---- Retire ----

func (p *Pipeline) retire() {
	for n := 0; n < p.cfg.RetireWidth && p.robCount > 0; n++ {
		// The ROB head is the oldest live uop: sequence p.retired+1.
		u := &p.arena[uint32(p.retired+1)&p.arenaMask]
		if !u.completed || u.complete > p.cycle {
			if u.completed {
				// An executing head unblocks retire at its completion
				// cycle; an unissued head is the scheduler's problem and
				// registers its horizon in issue().
				p.wake(u.complete)
			}
			return
		}
		p.progressed = true
		// Stores write the data cache at retirement; the latency is off
		// the critical path (drained from the store buffer) but the
		// access trains caches and prefetchers and counts in MPKI.
		for _, a := range u.storeAddrs[:u.nStores] {
			p.hier.L1D.AccessIP(a, u.ip, p.cycle, mem.Write)
		}
		p.robCount--
		p.retired++
	}
}

// ---- Issue / execute ----

func (p *Pipeline) issue() {
	issued := 0
	keep := p.pending[:0]
	for i, r := range p.pending {
		if issued >= p.cfg.IssueWidth {
			keep = append(keep, p.pending[i:]...)
			break
		}
		u := p.at(r)
		ready, wakeAt := p.depsReady(u)
		if !ready {
			if wakeAt > p.cycle {
				p.wake(wakeAt)
			}
			keep = append(keep, r)
			continue
		}
		issued++
		p.progressed = true
		p.execute(u)
	}
	p.pending = keep
}

// depsReady reports whether all of u's source producers are complete as of
// p.cycle. When they are not but every blocking producer has at least
// executed, the second result is the cycle the last of them completes — the
// uop's wake-up horizon. It is 0 when some producer has not executed yet:
// such a uop has no horizon of its own, but the oldest pending uop always
// does (its producers are strictly older, hence already issued), so a
// zero-progress scheduler pass always registers at least one wake-up.
func (p *Pipeline) depsReady(u *uop) (bool, uint64) {
	ready, wakeAt := true, uint64(0)
	for i := range u.deps {
		r := u.deps[i]
		if r == noref {
			continue
		}
		d := p.at(r)
		if uint32(d.seq) == r {
			if !d.completed {
				return false, 0
			}
			if d.complete > p.cycle {
				ready = false
				if d.complete > wakeAt {
					wakeAt = d.complete
				}
				continue
			}
		}
		// Stale ref (producer retired, slot recycled) or completed
		// producer: resolved for good, never recheck.
		u.deps[i] = noref
	}
	return ready, wakeAt
}

func (p *Pipeline) execute(u *uop) {
	switch {
	case u.nLoads > 0:
		done := uint64(0)
		for _, a := range u.loadAddrs[:u.nLoads] {
			var t uint64
			if fwd, ok := p.forward(a, u.seq); ok {
				t = max64(p.cycle, fwd) + p.cfg.StoreForwardLatency
			} else {
				start := p.cycle
				if p.tlbs != nil {
					start += p.tlbs.TranslateD(a)
				}
				t = p.hier.L1D.AccessIP(a, u.ip, start, mem.Read)
			}
			if t > done {
				done = t
			}
		}
		u.complete = done
	case u.nStores > 0:
		// Address generation; the write happens at retire.
		u.complete = p.cycle + 1
		for _, a := range u.storeAddrs[:u.nStores] {
			p.pushStore(a, u.complete, u.seq)
		}
	default:
		u.complete = p.cycle + 1
	}
	u.completed = true
}

func (p *Pipeline) pushStore(addr, ready, seq uint64) {
	if p.sqLen >= p.cfg.SQSize {
		p.sqHead = (p.sqHead + 1) & p.sqMask
		p.sqLen--
	}
	p.sq[(p.sqHead+uint32(p.sqLen))&p.sqMask] = sqEntry{addr: addr &^ 7, ready: ready, seq: seq}
	p.sqLen++
}

// forward finds the youngest older store to the same 8-byte-aligned address.
func (p *Pipeline) forward(addr, seq uint64) (uint64, bool) {
	key := addr &^ 7
	for i := p.sqLen - 1; i >= 0; i-- {
		e := &p.sq[(p.sqHead+uint32(i))&p.sqMask]
		if e.seq < seq && e.addr == key {
			return e.ready, true
		}
	}
	return 0, false
}

// ---- Dispatch ----

func (p *Pipeline) dispatch() {
	n := 0
	for n < p.cfg.DispatchWidth && p.decqLen > 0 && p.robCount < p.cfg.ROBSize {
		r := p.decq[p.decqHead]
		u := p.at(r)
		if u.decodeReady > p.cycle {
			p.wake(u.decodeReady)
			return
		}
		p.progressed = true
		p.decqHead = (p.decqHead + 1) & p.decqMask
		p.decqLen--
		// Register rename: link sources to their producers and claim
		// destinations.
		for i, reg := range u.srcRegs {
			if reg != champtrace.RegInvalid {
				u.deps[i] = p.regProducer[reg]
			}
		}
		for _, reg := range u.dstRegs {
			if reg != champtrace.RegInvalid {
				p.regProducer[reg] = r
			}
		}
		p.robCount++
		p.pending = append(p.pending, r)
		n++
	}
}

// ---- Fetch ----

func (p *Pipeline) fetch() {
	for n := 0; n < p.cfg.FetchWidth && p.ftqLen > 0 && p.decqLen < p.cfg.DecodeQueue; n++ {
		r := p.ftq[p.ftqHead]
		u := p.at(r)
		if p.cfg.Decoupled {
			// The icache was accessed at FTQ insertion; fetch just
			// waits for the line.
			p.curLineAt = u.lineReady
		} else if u.fetchLine != p.curLine {
			// Coupled front-end: demand access at fetch.
			p.curLine = u.fetchLine
			p.curLineAt = p.accessICache(u.fetchLine)
		}
		if p.curLineAt > p.cycle {
			p.wake(p.curLineAt)
			return // line still in flight: in-order fetch stalls
		}
		p.progressed = true
		p.ftqHead = (p.ftqHead + 1) & p.ftqMask
		p.ftqLen--
		u.decodeReady = p.cycle + p.cfg.DecodeLatency
		p.decq[(p.decqHead+uint32(p.decqLen))&p.decqMask] = r
		p.decqLen++
	}
}

func (p *Pipeline) issueIPrefetches(addrs []uint64) {
	for _, a := range addrs {
		p.hier.L1I.Access(a, p.cycle, mem.Prefetch)
	}
}

// accessICache performs one demand instruction fetch for a line, drives the
// instruction prefetcher, and returns the cycle the line is consumable. The
// L1I hit latency is hidden by the fetch pipeline depth, so resident lines
// are consumable immediately.
func (p *Pipeline) accessICache(line uint64) uint64 {
	cycle := p.cycle
	if p.tlbs != nil {
		cycle += p.tlbs.TranslateI(line)
	}
	hit := p.hier.L1I.Contains(line)
	done := p.hier.L1I.Access(line, cycle, mem.Fetch)
	if hit {
		done -= p.cfg.Hierarchy.L1I.Latency
	}
	if p.ipf != nil {
		p.ipfBuf = p.ipf.OnAccess(line, hit, p.ipfBuf[:0])
		p.issueIPrefetches(p.ipfBuf)
	}
	return done
}

// ---- Branch prediction unit / FTQ fill ----

func (p *Pipeline) bpuFill() {
	// A mispredicted branch blocks instruction supply until it resolves;
	// fetch then resumes after the redirect penalty. The stalled uop may
	// retire before the penalty elapses, but its slot cannot be recycled
	// while supply is stalled, so the ref stays readable.
	if p.stalled {
		u := p.at(p.stalledOn)
		if !u.completed || u.complete+p.cfg.RedirectPenalty > p.cycle {
			if u.completed {
				// The redirect-penalty expiry is known once the branch
				// executes; before that, issue() owns the horizon.
				p.wake(u.complete + p.cfg.RedirectPenalty)
			}
			return
		}
		p.stalled = false
		p.progressed = true
	}
	budget := p.cfg.FTQSize - p.ftqLen
	if !p.cfg.Decoupled {
		// Coupled front-end: the BPU only runs for the lines fetch is
		// about to consume.
		if b := p.cfg.FetchWidth - p.ftqLen; b < budget {
			budget = b
		}
	}
	for i := 0; i < budget; i++ {
		in, nextIP, err := p.la.pop()
		if err == io.EOF || in == nil {
			return
		}
		r, u := p.newUop(in, nextIP)
		p.progressed = true
		if u.btype != champtrace.NotBranch {
			p.processBranch(u)
		}
		p.ftq[(p.ftqHead+uint32(p.ftqLen))&p.ftqMask] = r
		p.ftqLen++
		line := mem.LineAddr(u.ip)
		if p.cfg.Decoupled {
			// Fetch-directed instruction fetch: the FTQ accesses the
			// L1I as entries are enqueued, ahead of fetch, so miss
			// latency overlaps with the FTQ occupancy.
			if line != p.insertLine {
				p.insertLine = line
				p.insertLineAt = p.accessICache(line)
			}
			u.lineReady = p.insertLineAt
		}
		if p.ipf != nil {
			p.ipfBuf = p.ipf.OnFTQInsert(line, p.ipfBuf[:0])
			p.issueIPrefetches(p.ipfBuf)
		}
		if u.mispred {
			p.stalled = true
			p.stalledOn = r
			return
		}
	}
}

// newUop claims the next arena slot and initializes it from the trace
// record. Slot reuse is safe because the arena capacity covers the maximum
// number of in-flight uops (FTQ + decode queue + ROB).
func (p *Pipeline) newUop(in *champtrace.Instruction, nextIP uint64) (uref, *uop) {
	p.seq++
	r := uref(uint32(p.seq))
	u := &p.arena[r&p.arenaMask]
	*u = uop{
		ip:        in.IP,
		seq:       p.seq,
		btype:     champtrace.Classify(in, p.cfg.Rules),
		taken:     in.IsBranch && in.Taken,
		srcRegs:   in.SrcRegs,
		dstRegs:   in.DestRegs,
		fetchLine: mem.LineAddr(in.IP),
	}
	if u.taken {
		u.target = nextIP
	}
	for _, a := range in.SrcMem {
		if a != 0 {
			u.loadAddrs[u.nLoads] = a
			u.nLoads++
		}
	}
	for _, a := range in.DestMem {
		if a != 0 {
			u.storeAddrs[u.nStores] = a
			u.nStores++
		}
	}
	if u.nLoads > 0 {
		p.st.Loads++
	}
	if u.nStores > 0 {
		p.st.Stores++
	}
	return r, u
}

// processBranch runs the direction and target predictors and decides
// whether the branch stalls instruction supply.
func (p *Pipeline) processBranch(u *uop) {
	p.st.Branches++
	if u.taken {
		p.st.TakenBranches++
	}

	dirMispred := false
	if u.btype == champtrace.BranchConditional {
		p.st.CondBranches++
		predTaken := p.pred.Predict(u.ip)
		p.pred.Update(u.ip, u.taken)
		dirMispred = predTaken != u.taken
	}

	predTarget, predKnown := p.tp.Predict(u.ip, u.btype)
	retAddr := u.ip + 4 // sequential address a call's matching return lands on
	targetCorrect := p.tp.Resolve(u.ip, u.btype, u.taken, predTarget, predKnown, u.target, retAddr)

	if u.btype == champtrace.BranchReturn {
		p.st.Returns++
		if u.taken && !targetCorrect {
			p.st.ReturnMispredicts++
		}
	}
	if dirMispred {
		p.st.DirMispredicts++
	}
	if u.taken && !targetCorrect {
		p.st.TargetMispredicts++
	}
	if dirMispred || (u.taken && !targetCorrect) {
		p.st.Mispredicts++
		u.mispred = true
	}

	if p.ipf != nil && u.taken {
		p.ipfBuf = p.ipf.OnBranch(u.ip, u.target, u.btype, p.ipfBuf[:0])
		p.issueIPrefetches(p.ipfBuf)
	}
}

// nextPow2 returns the smallest power of two ≥ n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
