GO ?= go
FUZZTIME ?= 30s

.PHONY: build vet test test-race conformance fuzz-smoke bench-smoke bench bench-compare bench-cache bench-slabs serve bench-serve bench-query

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/...

# Race-check the concurrent layers: the (trace, variant) sweep work queue
# and the pooled streaming converter it drives.
test-race:
	$(GO) test -race ./internal/...

# Full conformance suite: golden corpus, differential battery over the
# 135-trace synthetic suite, and the metamorphic simulator checks.
conformance:
	$(GO) run ./cmd/rebase -selftest

# Run each native fuzz target for FUZZTIME (default 30s). Go only allows
# one -fuzz target per invocation, hence the separate runs.
fuzz-smoke:
	$(GO) test ./internal/conformance -run '^$$' -fuzz '^FuzzCVPDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/conformance -run '^$$' -fuzz '^FuzzChampTraceDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/conformance -run '^$$' -fuzz '^FuzzConvert$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/conformance -run '^$$' -fuzz '^FuzzExpBlockDecode$$' -fuzztime $(FUZZTIME)

# A fast allocation check of the hot convert+simulate path: the streaming
# source must stay well below the materializing baseline, and a resident
# slab hit (BenchmarkSlabLoad) must run at 0 B/op.
bench-smoke:
	$(GO) test -run xxx -bench 'ConvertSimulate|SweepStreaming|BenchmarkMultiCorePipeline$$|BenchmarkSlab' -benchtime 3x .

bench:
	$(GO) test -bench . -benchmem .

# Paired before/after benchmark comparison: runs the simulator-core
# benchmarks on the working tree and on REF (default HEAD, stashing any
# dirty state for the reference run), then prints ns/op, B/op, allocs/op
# deltas. See EXPERIMENTS.md "Benchmark comparison workflow".
#   make bench-compare                # working tree vs HEAD
#   make bench-compare REF=HEAD~1     # working tree vs previous commit
REF ?= HEAD
bench-compare:
	scripts/bench_compare.sh $(REF) $(BENCH)

# Cold/warm result-cache pair against a fresh store: the warm run must be
# near-instant with byte-identical output. See EXPERIMENTS.md "Warm/cold
# cache benchmark workflow"; BENCH_4.json records the headline pair.
STEP ?= 3
bench-cache:
	$(GO) build -o /tmp/rebase-bench ./cmd/rebase
	@dir=$$(mktemp -d); \
	echo "cache dir: $$dir"; \
	/tmp/rebase-bench -exp all -step $(STEP) -cache-dir $$dir >/tmp/bench-cache-cold.out; \
	/tmp/rebase-bench -exp all -step $(STEP) -cache-dir $$dir >/tmp/bench-cache-warm.out; \
	cmp /tmp/bench-cache-cold.out /tmp/bench-cache-warm.out && echo "outputs identical"; \
	rm -rf $$dir

# Run the sweep service in the foreground on the default port with the
# default cache dir. SIGINT/SIGTERM drains in-flight jobs and flushes the
# memory tier before exiting. Point clients (or another daemon's -remote
# tier) at http://127.0.0.1:8344.
ADDR ?= 127.0.0.1:8344
WORKERS ?= 1
serve:
	$(GO) run ./cmd/rebase serve -addr $(ADDR) -workers $(WORKERS)

# Sweep-service latency benchmark: cold submit vs warm memory-tier repeat
# vs remote-tier hit through a chained daemon, every response cmp'd
# byte-identical against the batch CLI. Emits BENCH_9.json; the headline
# is the warm p50 (must sit well under 10ms). See EXPERIMENTS.md
# "Service latency benchmark workflow".
EXP ?= all
SERVE_REPEATS ?= 20
bench-serve:
	scripts/bench_serve.sh $(EXP) $(STEP) $(SERVE_REPEATS)

# Experiment-store query benchmark: populate a fresh store with the full
# -exp all matrix, then compare block-pruned queries against -full-scan
# baselines — identical rows required, with an aggregate bytes-read ratio
# of at least 5x. Emits BENCH_10.json. See EXPERIMENTS.md "Query benchmark
# workflow".
QUERY_REPEATS ?= 10
bench-query:
	scripts/bench_query.sh $(STEP) $(QUERY_REPEATS)

# Slab-cold/slab-warm pair with the result cache disabled, so every
# simulation recomputes and the delta isolates the compiled-trace store
# (generation + conversion hoisted out of the warm run). The warm run must
# be faster with byte-identical output. BENCH_8.json records the headline
# pair. See EXPERIMENTS.md "Warm-slab benchmark workflow".
bench-slabs:
	$(GO) build -o /tmp/rebase-bench ./cmd/rebase
	@dir=$$(mktemp -d); \
	echo "slab dir: $$dir"; \
	time /tmp/rebase-bench -exp all -step $(STEP) -no-cache -trace-store-dir $$dir >/tmp/bench-slabs-cold.out; \
	time /tmp/rebase-bench -exp all -step $(STEP) -no-cache -trace-store-dir $$dir >/tmp/bench-slabs-warm.out; \
	cmp /tmp/bench-slabs-cold.out /tmp/bench-slabs-warm.out && echo "outputs identical"; \
	rm -rf $$dir
