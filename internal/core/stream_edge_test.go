package core

import (
	"io"
	"testing"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/cvp"
)

// TestConverterSourcePointerSurvivalWindow checks the documented pointer
// validity contract at every position of the stream: a record pointer
// returned by Next stays intact for at least convertBatchSize further Next
// calls, including across double-buffer refills. A ring of the last
// convertBatchSize pointers is re-verified as each entry ages out.
func TestConverterSourcePointerSurvivalWindow(t *testing.T) {
	instrs := testCVPStream(3*convertBatchSize+157, 21)
	type saved struct {
		p    *champtrace.Instruction
		want champtrace.Instruction
	}
	ring := make([]saved, convertBatchSize)
	cs := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
	n := 0
	for ; ; n++ {
		rec, err := cs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n >= convertBatchSize {
			old := ring[n%convertBatchSize]
			if *old.p != old.want {
				t.Fatalf("pointer for record %d was clobbered within its %d-call validity window:\n got  %+v\n want %+v",
					n-convertBatchSize, convertBatchSize, *old.p, old.want)
			}
		}
		ring[n%convertBatchSize] = saved{rec, *rec}
	}
	if n <= 2*convertBatchSize {
		t.Fatalf("stream too short (%d records) to cross a refill boundary", n)
	}
	// Every still-in-window pointer must also have survived to EOF; Close
	// has not run yet, so the slabs are still alive.
	for i := range ring {
		if ring[i].p != nil && *ring[i].p != ring[i].want {
			t.Fatalf("trailing pointer %d clobbered before Close", i)
		}
	}
	cs.Close()
}

// TestConverterSourcePoolSlabReuse drains and closes several sources to
// cycle slabs through the pool, then runs two interleaved live sources —
// both necessarily drawing recycled slabs — and requires their streams to
// stay correct and independent. Also pins down the Close contract:
// idempotent, and both stream faces return io.EOF afterwards.
func TestConverterSourcePoolSlabReuse(t *testing.T) {
	instrs := testCVPStream(1200, 22)
	want, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		cs := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
		for {
			if _, err := cs.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		cs.Close()
		cs.Close() // must be idempotent
		if _, err := cs.Next(); err != io.EOF {
			t.Fatalf("post-Close Next error = %v, want io.EOF", err)
		}
		if n, err := cs.NextBatch(champtrace.MakeBatch(4)); n != 0 || err != io.EOF {
			t.Fatalf("post-Close NextBatch = (%d, %v), want (0, io.EOF)", n, err)
		}
	}

	a := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
	b := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
	defer a.Close()
	defer b.Close()
	for i := range want {
		ra, err := a.Next()
		if err != nil {
			t.Fatalf("source a, record %d: %v", i, err)
		}
		rb, err := b.Next()
		if err != nil {
			t.Fatalf("source b, record %d: %v", i, err)
		}
		if *ra != *want[i] {
			t.Fatalf("source a diverges at record %d after pool reuse", i)
		}
		if *rb != *want[i] {
			t.Fatalf("source b diverges at record %d after pool reuse", i)
		}
	}
	if _, err := a.Next(); err != io.EOF {
		t.Fatalf("source a: %v after %d records, want io.EOF", err, len(want))
	}
	if _, err := b.Next(); err != io.EOF {
		t.Fatalf("source b: %v after %d records, want io.EOF", err, len(want))
	}
}

// TestConverterSourceZeroLengthBatch: a zero-length destination is a no-op
// — (0, nil), nothing consumed — and the stream afterwards still delivers
// every record.
func TestConverterSourceZeroLengthBatch(t *testing.T) {
	instrs := testCVPStream(700, 23)
	want, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
	defer cs.Close()
	if n, err := cs.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if n, err := cs.NextBatch([]champtrace.Instruction{}); n != 0 || err != nil {
		t.Fatalf("NextBatch(empty) = (%d, %v), want (0, nil)", n, err)
	}
	slab := champtrace.MakeBatch(64)
	got := 0
	for {
		n, err := cs.NextBatch(slab)
		for i := 0; i < n; i++ {
			if got >= len(want) || slab[i] != *want[got] {
				t.Fatalf("record %d differs after zero-length batches", got)
			}
			got++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if got != len(want) {
		t.Fatalf("zero-length batches consumed records: got %d of %d", got, len(want))
	}
}

// TestConverterSourceSingleRecordBatches: the degenerate batch size of one
// still delivers the exact stream.
func TestConverterSourceSingleRecordBatches(t *testing.T) {
	instrs := testCVPStream(600, 24)
	want, _, err := ConvertAll(cvp.NewSliceSource(instrs), OptionsAll())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConverterSource(cvp.NewSliceSource(instrs), OptionsAll())
	defer cs.Close()
	slab := champtrace.MakeBatch(1)
	for i := 0; ; i++ {
		n, err := cs.NextBatch(slab)
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("EOF after %d records, want %d", i, len(want))
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("record %d: NextBatch filled %d of a 1-slot batch", i, n)
		}
		if i >= len(want) || slab[0] != *want[i] {
			t.Fatalf("record %d differs with single-record batches", i)
		}
	}
}

// TestConverterSourceEmptyInput: a source over zero instructions reports
// io.EOF immediately on both faces and closes cleanly.
func TestConverterSourceEmptyInput(t *testing.T) {
	cs := NewConverterSource(cvp.NewSliceSource(nil), OptionsAll())
	if _, err := cs.Next(); err != io.EOF {
		t.Fatalf("Next on empty input: %v, want io.EOF", err)
	}
	if n, err := cs.NextBatch(champtrace.MakeBatch(8)); n != 0 || err != io.EOF {
		t.Fatalf("NextBatch on empty input = (%d, %v), want (0, io.EOF)", n, err)
	}
	if st := cs.Stats(); st.In != 0 || st.Out != 0 {
		t.Fatalf("empty input accumulated stats: %+v", st)
	}
	cs.Close()
	cs.Close()
}
