package conformance

import (
	"testing"

	"tracerebase/internal/synth"
)

// TestSlabTransparency runs the compiled-trace-store differential oracle at
// test scale: store-off, cold, warm, corrupted-slab, and truncated-slab
// sweeps of the same traces must render byte-identically, and damaged slabs
// must be discarded and reconverted, never served. (The -selftest path runs
// the same oracle at larger scale.)
func TestSlabTransparency(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 3),
		synth.PublicProfile(synth.Server, 5),
	}
	if err := CheckSlabTransparency(profiles, 1500, 300); err != nil {
		t.Fatal(err)
	}
}
