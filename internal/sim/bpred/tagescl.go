package bpred

// TAGE-SC-L: TAGE backed by a loop predictor (L) and a statistical
// corrector (SC), after Seznec's CBP-5 predictor. The loop predictor
// captures regular loop exits that defeat TAGE's history tables; the
// statistical corrector revises TAGE's output when statistically biased
// branches disagree with it.

// loopEntry tracks one loop branch.
type loopEntry struct {
	tag        uint16
	tripCount  uint16 // confirmed iteration count before the exit
	curCount   uint16
	confidence uint8 // confirmations of the same trip count
	valid      bool
}

const (
	loopTableBits  = 8
	loopConfidence = 3
)

// loopPredictor predicts "not taken" (loop exit) on the final iteration of
// loops with stable trip counts, and "taken" otherwise.
type loopPredictor struct {
	table []loopEntry
	// scratch from the last predict call
	hit        bool
	idx        uint64
	prediction bool
}

func newLoopPredictor() *loopPredictor {
	return &loopPredictor{table: make([]loopEntry, 1<<loopTableBits)}
}

func (l *loopPredictor) predict(pc uint64) (pred bool, confident bool) {
	l.idx = (pc >> 2) & (1<<loopTableBits - 1)
	e := &l.table[l.idx]
	tag := uint16((pc >> (2 + loopTableBits)) & 0x3fff)
	l.hit = e.valid && e.tag == tag
	if !l.hit || e.confidence < loopConfidence {
		return false, false
	}
	// Predict exit (not taken) when the next iteration reaches the trip
	// count; taken otherwise.
	l.prediction = e.curCount+1 < e.tripCount
	return l.prediction, true
}

func (l *loopPredictor) update(pc uint64, taken bool) {
	e := &l.table[l.idx]
	tag := uint16((pc >> (2 + loopTableBits)) & 0x3fff)
	if !e.valid || e.tag != tag {
		// Allocate on a not-taken outcome (a loop exit candidate).
		if !taken {
			*e = loopEntry{tag: tag, valid: true}
		}
		return
	}
	if taken {
		e.curCount++
		if e.curCount == 0xffff { // overflow: not a well-behaved loop
			e.valid = false
		}
		return
	}
	// Loop exit: check trip count stability.
	count := e.curCount + 1
	if e.tripCount == count {
		if e.confidence < 7 {
			e.confidence++
		}
	} else {
		e.tripCount = count
		e.confidence = 0
	}
	e.curCount = 0
}

// scTable is one component of the statistical corrector: a history-hashed
// table of signed weights.
type scTable struct {
	weights []int8
	histLen int
	mask    uint64
}

func newSCTable(bits, histLen int) *scTable {
	return &scTable{weights: make([]int8, 1<<bits), histLen: histLen, mask: uint64(1<<bits) - 1}
}

func (s *scTable) index(pc, hist uint64) uint64 {
	h := hist & ((1 << uint(s.histLen)) - 1)
	return ((pc >> 2) ^ h ^ (h >> 7)) & s.mask
}

// TAGESCL combines TAGE, the loop predictor, and the statistical corrector.
type TAGESCL struct {
	tage *TAGE
	loop *loopPredictor
	sc   []*scTable
	// low-order global history for the SC tables.
	schist uint64
	// threshold for overriding TAGE with the SC sum.
	scThreshold int32
	// scratch
	loopPred, loopConf bool
	tagePred           bool
	scSum              int32
	finalPred          bool
}

// NewTAGESCL builds a TAGE-SC-L with the default 64 KB-class TAGE.
func NewTAGESCL() *TAGESCL {
	return &TAGESCL{
		tage: NewTAGE(DefaultTAGEConfig()),
		loop: newLoopPredictor(),
		sc: []*scTable{
			newSCTable(12, 0), // bias table
			newSCTable(12, 6),
			newSCTable(12, 12),
		},
		scThreshold: 6,
	}
}

// Name implements DirectionPredictor.
func (p *TAGESCL) Name() string { return "tage-sc-l" }

// Predict implements DirectionPredictor.
func (p *TAGESCL) Predict(pc uint64) bool {
	p.tagePred = p.tage.Predict(pc)
	p.loopPred, p.loopConf = p.loop.predict(pc)

	pred := p.tagePred
	if p.loopConf {
		pred = p.loopPred
	}

	// Statistical corrector: sum of signed weights, centered on the TAGE
	// prediction.
	p.scSum = 0
	for _, t := range p.sc {
		p.scSum += int32(t.weights[t.index(pc, p.schist)])
	}
	if p.tagePred {
		p.scSum += 2
	} else {
		p.scSum -= 2
	}
	if abs32(p.scSum) > p.scThreshold {
		pred = p.scSum >= 0
	}
	p.finalPred = pred
	return pred
}

// Update implements DirectionPredictor.
func (p *TAGESCL) Update(pc uint64, taken bool) {
	// Train the SC when it disagreed with the outcome or was weak.
	if (p.scSum >= 0) != taken || abs32(p.scSum) <= p.scThreshold {
		for _, t := range p.sc {
			i := t.index(pc, p.schist)
			w := t.weights[i]
			if taken && w < 63 {
				t.weights[i] = w + 1
			} else if !taken && w > -64 {
				t.weights[i] = w - 1
			}
		}
	}
	p.loop.update(pc, taken)
	p.tage.Update(pc, taken)
	p.schist = (p.schist << 1) | b2u(taken)
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
