package cvp

import "io"

// This file implements batch-oriented streaming: value-slab batches of
// instructions that amortize per-record overheads (pointer chasing, one heap
// object per record) across the hot convert/simulate path. A batch is a
// []Instruction whose elements are reused in place — refilling a batch
// recycles each record's register-slice capacity instead of allocating.

// BatchSource is the batch variant of Source: it fills caller-provided
// value slabs instead of returning one *Instruction per call.
//
// NextBatch fills dst with up to len(dst) instructions, reusing each
// element's slice capacity, and returns the number filled. It returns
// (0, io.EOF) when the stream is exhausted; a short batch with a nil error
// means the stream simply paused there (the final batch before EOF is
// typically short). NextBatch never returns io.EOF together with n > 0.
// Errors other than io.EOF may accompany n > 0: dst[:n] holds valid records
// and no further calls should be made.
type BatchSource interface {
	NextBatch(dst []Instruction) (int, error)
}

// DefaultBatchSize is the batch length used by the adapters when the caller
// does not choose one. Large enough to amortize per-batch overheads, small
// enough to stay cache-resident (a record is ~100 bytes plus register
// slices).
const DefaultBatchSize = 512

// MakeBatch allocates a batch of n instructions whose register slices share
// three arena allocations, presized to the encoding maxima. Filling such a
// batch via CopyInto (or any append within capacity) performs no further
// allocation.
func MakeBatch(n int) []Instruction {
	b := make([]Instruction, n)
	srcs := make([]uint8, n*MaxSrcRegs)
	dsts := make([]uint8, n*MaxDstRegs)
	vals := make([]uint64, n*MaxDstRegs)
	for i := range b {
		b[i].SrcRegs = srcs[i*MaxSrcRegs : i*MaxSrcRegs : (i+1)*MaxSrcRegs]
		b[i].DstRegs = dsts[i*MaxDstRegs : i*MaxDstRegs : (i+1)*MaxDstRegs]
		b[i].DstValues = vals[i*MaxDstRegs : i*MaxDstRegs : (i+1)*MaxDstRegs]
	}
	return b
}

// CopyInto deep-copies the instruction into dst, reusing dst's existing
// slice capacity (no allocation when dst's slices are large enough, as in a
// MakeBatch slab or a previously filled record). dst must not alias in.
func (in *Instruction) CopyInto(dst *Instruction) {
	srcRegs := append(dst.SrcRegs[:0], in.SrcRegs...)
	dstRegs := append(dst.DstRegs[:0], in.DstRegs...)
	dstValues := append(dst.DstValues[:0], in.DstValues...)
	*dst = *in
	dst.SrcRegs, dst.DstRegs, dst.DstValues = srcRegs, dstRegs, dstValues
}

// NextBatch implements BatchSource by copying from the in-memory slice.
func (s *SliceSource) NextBatch(dst []Instruction) (int, error) {
	if s.pos >= len(s.instrs) {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && s.pos < len(s.instrs) {
		s.instrs[s.pos].CopyInto(&dst[n])
		s.pos++
		n++
	}
	return n, nil
}

// ValuesSource adapts an in-memory value slab to the Source and BatchSource
// interfaces without copying on Next: the returned pointers alias the slab,
// so callers must treat them as read-only. Multiple ValuesSources may read
// the same slab concurrently (each keeps its own cursor).
type ValuesSource struct {
	instrs []Instruction
	pos    int
}

// NewValuesSource returns a source reading from the value slab instrs.
func NewValuesSource(instrs []Instruction) *ValuesSource {
	return &ValuesSource{instrs: instrs}
}

// Next implements Source. The returned instruction aliases the slab and
// must not be modified.
func (s *ValuesSource) Next() (*Instruction, error) {
	if s.pos >= len(s.instrs) {
		return nil, io.EOF
	}
	in := &s.instrs[s.pos]
	s.pos++
	return in, nil
}

// NextBatch implements BatchSource (copy semantics, like SliceSource).
func (s *ValuesSource) NextBatch(dst []Instruction) (int, error) {
	if s.pos >= len(s.instrs) {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && s.pos < len(s.instrs) {
		s.instrs[s.pos].CopyInto(&dst[n])
		s.pos++
		n++
	}
	return n, nil
}

// Reset rewinds the source to the first instruction.
func (s *ValuesSource) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the slab.
func (s *ValuesSource) Len() int { return len(s.instrs) }

// AsBatchSource adapts src to the batch interface. Sources that already
// implement BatchSource (SliceSource, ValuesSource, synth streams) are
// returned unchanged; others are wrapped with a per-record pull.
func AsBatchSource(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &sourceBatcher{src: src}
}

type sourceBatcher struct {
	src Source
	err error
}

func (b *sourceBatcher) NextBatch(dst []Instruction) (int, error) {
	if b.err != nil {
		return 0, b.err
	}
	n := 0
	for n < len(dst) {
		in, err := b.src.Next()
		if err != nil {
			b.err = err
			if err == io.EOF && n > 0 {
				return n, nil
			}
			return n, err
		}
		in.CopyInto(&dst[n])
		n++
	}
	return n, nil
}

// AsSource adapts a BatchSource to the record-at-a-time Source interface.
// Batch sources that already implement Source are returned unchanged.
// batchSize <= 0 selects DefaultBatchSize.
//
// The adapter double-buffers: an instruction returned by Next remains valid
// for at least batchSize further Next calls (its batch is recycled only
// after the following batch is exhausted), which is enough for consumers
// with bounded lookback such as the simulator's one-instruction lookahead.
func AsSource(bs BatchSource, batchSize int) Source {
	if s, ok := bs.(Source); ok {
		return s
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &batchedSource{
		bs:   bs,
		cur:  MakeBatch(batchSize),
		prev: MakeBatch(batchSize),
	}
}

type batchedSource struct {
	bs        BatchSource
	cur, prev []Instruction
	pos, n    int
	err       error
}

func (s *batchedSource) Next() (*Instruction, error) {
	if s.pos >= s.n {
		if s.err != nil {
			return nil, s.err
		}
		s.cur, s.prev = s.prev, s.cur
		n, err := s.bs.NextBatch(s.cur)
		s.n, s.pos = n, 0
		if err != nil {
			s.err = err
		}
		if n == 0 {
			if s.err == nil {
				s.err = io.EOF
			}
			return nil, s.err
		}
	}
	in := &s.cur[s.pos]
	s.pos++
	return in, nil
}
