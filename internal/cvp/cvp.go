// Package cvp implements the CVP-1 (first Championship Value Prediction)
// trace format: the instruction model, binary encoding, and stream
// reader/writer.
//
// CVP-1 traces were generated at Qualcomm from Aarch64 workloads and released
// after the 2018 championship. Each dynamic instruction record carries the
// program counter, a coarse instruction class, the effective address and
// access size for memory operations, the taken flag and target for branches,
// and the architectural source/destination registers together with the
// 64-bit values written to each destination. The traces are anonymized: the
// exact opcode, addressing mode, instruction bytes, and special-purpose
// registers (most importantly the flags/NZCV register) are absent, which is
// the root cause of every conversion issue studied in the paper.
package cvp

import "fmt"

// InstClass is the coarse instruction classification stored in CVP-1 traces.
type InstClass uint8

// Instruction classes, in the order defined by the CVP-1 trace kit.
const (
	ClassALU InstClass = iota
	ClassLoad
	ClassStore
	ClassCondBranch
	ClassUncondDirect
	ClassUncondIndirect
	ClassFP
	ClassSlowALU
	ClassUndef
)

// NumClasses is the number of valid instruction classes.
const NumClasses = int(ClassUndef) + 1

func (c InstClass) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassCondBranch:
		return "condBranch"
	case ClassUncondDirect:
		return "uncondDirectBranch"
	case ClassUncondIndirect:
		return "uncondIndirectBranch"
	case ClassFP:
		return "fp"
	case ClassSlowALU:
		return "slowAlu"
	case ClassUndef:
		return "undef"
	default:
		return fmt.Sprintf("InstClass(%d)", uint8(c))
	}
}

// IsBranch reports whether the class is one of the three CVP-1 branch
// classes (conditional, unconditional direct, unconditional indirect).
func (c InstClass) IsBranch() bool {
	return c == ClassCondBranch || c == ClassUncondDirect || c == ClassUncondIndirect
}

// IsMem reports whether the class is a load or a store.
func (c InstClass) IsMem() bool { return c == ClassLoad || c == ClassStore }

// Aarch64 architectural register numbering used by the CVP-1 traces.
// General-purpose registers X0..X30 are 0..30; register 31 encodes XZR/SP;
// SIMD registers V0..V31 are 32..63. The flags (NZCV) register is NOT
// representable: the traces only record general-purpose and SIMD registers.
const (
	RegX0   = 0
	RegX29  = 29 // frame pointer
	RegLR   = 30 // X30, the link register
	RegSP   = 31 // XZR / SP slot
	RegV0   = 32
	RegVMax = 63
	// NumRegs is the size of the architectural register file visible in
	// CVP-1 traces.
	NumRegs = 64
)

// Limits of the record encoding.
const (
	// MaxSrcRegs is the largest source-register count the encoding
	// accepts. A handful of Aarch64 instructions (e.g. compare-and-swap
	// pair) read more than four registers; CVP-1 can represent them.
	MaxSrcRegs = 6
	// MaxDstRegs is the largest destination-register count: vector loads
	// (LD3/LD4 with base update) can write several registers, but CVP-1
	// caps the recorded set at three.
	MaxDstRegs = 3
)

// Instruction is one dynamic instruction record from a CVP-1 trace.
type Instruction struct {
	// PC is the virtual address of the instruction.
	PC uint64
	// Class is the coarse instruction class.
	Class InstClass

	// EffAddr is the effective (virtual) address of a load or store.
	// Valid only when Class.IsMem().
	EffAddr uint64
	// MemSize is the per-register transfer size in bytes (1, 2, 4, 8, 16,
	// or 64 for DC ZVA). For load pairs and vector loads this is the size of ONE
	// register's transfer; the trace does not record the total footprint,
	// which is what the mem-footprint improvement reconstructs.
	MemSize uint8

	// Taken reports the outcome of a branch. Valid only for branches.
	Taken bool
	// Target is the target address of a taken branch.
	Target uint64

	// SrcRegs are the architectural source registers.
	SrcRegs []uint8
	// DstRegs are the architectural destination registers.
	DstRegs []uint8
	// DstValues are the values written to each destination register,
	// parallel to DstRegs. These are what make the CVP-1 traces usable
	// for value prediction, and what the improved converter's
	// addressing-mode inference relies on.
	DstValues []uint64
}

// IsLoad reports whether the instruction is a load.
func (in *Instruction) IsLoad() bool { return in.Class == ClassLoad }

// IsStore reports whether the instruction is a store.
func (in *Instruction) IsStore() bool { return in.Class == ClassStore }

// IsBranch reports whether the instruction is any branch class.
func (in *Instruction) IsBranch() bool { return in.Class.IsBranch() }

// ReadsReg reports whether r appears among the source registers.
func (in *Instruction) ReadsReg(r uint8) bool {
	for _, s := range in.SrcRegs {
		if s == r {
			return true
		}
	}
	return false
}

// WritesReg reports whether r appears among the destination registers.
func (in *Instruction) WritesReg(r uint8) bool {
	for _, d := range in.DstRegs {
		if d == r {
			return true
		}
	}
	return false
}

// DstValue returns the value written to register r and whether r is a
// destination of the instruction.
func (in *Instruction) DstValue(r uint8) (uint64, bool) {
	for i, d := range in.DstRegs {
		if d == r {
			return in.DstValues[i], true
		}
	}
	return 0, false
}

// Validate checks the structural invariants of the record and returns a
// descriptive error when one is violated.
func (in *Instruction) Validate() error {
	if int(in.Class) >= NumClasses {
		return fmt.Errorf("cvp: invalid instruction class %d at pc %#x", in.Class, in.PC)
	}
	if len(in.SrcRegs) > MaxSrcRegs {
		return fmt.Errorf("cvp: %d source registers exceeds max %d at pc %#x", len(in.SrcRegs), MaxSrcRegs, in.PC)
	}
	if len(in.DstRegs) > MaxDstRegs {
		return fmt.Errorf("cvp: %d destination registers exceeds max %d at pc %#x", len(in.DstRegs), MaxDstRegs, in.PC)
	}
	if len(in.DstValues) != len(in.DstRegs) {
		return fmt.Errorf("cvp: %d destination values for %d destination registers at pc %#x", len(in.DstValues), len(in.DstRegs), in.PC)
	}
	for _, r := range in.SrcRegs {
		if r >= NumRegs {
			return fmt.Errorf("cvp: source register %d out of range at pc %#x", r, in.PC)
		}
	}
	for _, r := range in.DstRegs {
		if r >= NumRegs {
			return fmt.Errorf("cvp: destination register %d out of range at pc %#x", r, in.PC)
		}
	}
	if in.Class.IsMem() {
		switch in.MemSize {
		case 1, 2, 4, 8, 16, 64: // 64 encodes DC ZVA cacheline-zeroing stores
		default:
			return fmt.Errorf("cvp: invalid access size %d at pc %#x", in.MemSize, in.PC)
		}
	}
	if !in.Class.IsBranch() && in.Taken {
		return fmt.Errorf("cvp: non-branch marked taken at pc %#x", in.PC)
	}
	return nil
}

// Clone returns a deep copy of the instruction.
func (in *Instruction) Clone() *Instruction {
	out := *in
	out.SrcRegs = append([]uint8(nil), in.SrcRegs...)
	out.DstRegs = append([]uint8(nil), in.DstRegs...)
	out.DstValues = append([]uint64(nil), in.DstValues...)
	return &out
}

// Source is a stream of CVP-1 instructions. Next returns io.EOF after the
// final instruction.
type Source interface {
	Next() (*Instruction, error)
}

// SliceSource adapts an in-memory instruction slice to the Source interface.
type SliceSource struct {
	instrs []*Instruction
	pos    int
}

// NewSliceSource returns a Source reading from instrs.
func NewSliceSource(instrs []*Instruction) *SliceSource {
	return &SliceSource{instrs: instrs}
}

// Next implements Source.
func (s *SliceSource) Next() (*Instruction, error) {
	if s.pos >= len(s.instrs) {
		return nil, errEOF
	}
	in := s.instrs[s.pos]
	s.pos++
	return in, nil
}

// Reset rewinds the source to the first instruction.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the source.
func (s *SliceSource) Len() int { return len(s.instrs) }
