package iprefetch

import "tracerebase/internal/champtrace"

// EPI is the Entangling Instruction Prefetcher (Ros & Jimborean, IPC-1
// winner). The insight: to hide the full miss latency, a missing line must
// be prefetched when a line fetched sufficiently EARLIER — the "source" —
// is accessed. The prefetcher therefore entangles each missing line with
// the line that was fetched `distance` accesses before it, and on every
// access to a source line prefetches its entangled destinations.
type EPI struct {
	Base
	// history is a ring of the most recent demand-fetched lines.
	history []uint64
	pos     int
	// distance is how far back in the fetch stream the source is taken.
	distance int
	// table maps a source line to up to entangleWays destination lines.
	table map[uint64]*epiEntry
	// maxEntries bounds the table like a real storage budget.
	maxEntries int
}

type epiEntry struct {
	dst  [4]uint64
	next int
}

// NewEPI returns an entangling prefetcher with contest-like parameters.
func NewEPI() *EPI {
	return &EPI{
		history:    make([]uint64, 64),
		distance:   24,
		table:      make(map[uint64]*epiEntry, 8192),
		maxEntries: 8192,
	}
}

// Name implements Prefetcher.
func (p *EPI) Name() string { return "epi" }

// OnAccess implements Prefetcher.
func (p *EPI) OnAccess(lineAddr uint64, hit bool, buf []uint64) []uint64 {
	// Acting as a source: prefetch everything entangled with this line.
	if e, ok := p.table[lineAddr]; ok {
		for _, d := range e.dst {
			if d != 0 && d != lineAddr {
				buf = append(buf, d)
			}
		}
	}
	if !hit {
		// Entangle this miss with the line fetched `distance` ago.
		src := p.history[(p.pos-p.distance+len(p.history)*2)%len(p.history)]
		if src != 0 && src != lineAddr {
			p.entangle(src, lineAddr)
		}
		// Sequential fallback keeps straight-line code flowing.
		buf = append(buf, lineAddr+LineSize, lineAddr+2*LineSize)
	}
	p.history[p.pos] = lineAddr
	p.pos = (p.pos + 1) % len(p.history)
	return buf
}

func (p *EPI) entangle(src, dst uint64) {
	e, ok := p.table[src]
	if !ok {
		if len(p.table) >= p.maxEntries {
			// Table full: clear it wholesale — a deterministic global reset
			// (cheap and rare) stands in for hardware index eviction, where
			// per-entry map deletion would be iteration-order dependent and
			// break run-to-run determinism.
			clear(p.table)
		}
		e = &epiEntry{}
		p.table[src] = e
	}
	for _, d := range e.dst {
		if d == dst {
			return
		}
	}
	e.dst[e.next] = dst
	e.next = (e.next + 1) % len(e.dst)
}

// OnBranch implements Prefetcher: taken branches to distant targets warm
// the target's neighbourhood.
func (p *EPI) OnBranch(pc, target uint64, btype champtrace.BranchType, buf []uint64) []uint64 {
	if target/LineSize == pc/LineSize {
		return buf
	}
	line := target &^ uint64(LineSize-1)
	return append(buf, line, line+LineSize)
}
