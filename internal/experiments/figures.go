package experiments

import (
	"fmt"
	"io"
	"sort"

	"tracerebase/internal/stats"
)

// fig1Order lists the Fig. 1 bars left to right.
var fig1Order = []string{
	VariantBaseUpdate, VariantMemFootprint, VariantMemRegs, VariantMemory,
	VariantFlagReg, VariantBranchRegs, VariantCallStack, VariantBranch,
	VariantAll,
}

// Fig1Row is one bar of Figure 1: the IPC variation of the geometric mean
// across the CVP-1 public traces for one improvement set.
type Fig1Row struct {
	Variant string
	// GeomeanDeltaPct is 100*(geomean(IPC_variant/IPC_original)-1).
	GeomeanDeltaPct float64
}

// Fig1 computes the Figure 1 series from a sweep.
func Fig1(results []TraceResult) []Fig1Row {
	rows := make([]Fig1Row, 0, len(fig1Order))
	for _, v := range fig1Order {
		ratios := make([]float64, 0, len(results))
		for _, tr := range results {
			if _, ok := tr.Results[v]; !ok {
				continue
			}
			ratios = append(ratios, 1+tr.Delta(v))
		}
		if len(ratios) == 0 {
			continue
		}
		rows = append(rows, Fig1Row{Variant: v, GeomeanDeltaPct: 100 * (stats.Geomean(ratios) - 1)})
	}
	return rows
}

// RenderFig1 prints the Figure 1 bars.
func RenderFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "Figure 1: IPC variation of the geomean IPC across the CVP-1 public traces")
	fmt.Fprintln(w, "          (each improvement vs the original cvp2champsim converter)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %+7.2f%%\n", r.Variant, r.GeomeanDeltaPct)
	}
}

// Fig2Series is one curve of Figure 2: per-trace IPC variation for one
// improvement, sorted from highest increase to highest decrease.
type Fig2Series struct {
	Variant string
	// DeltasPct is sorted descending (the paper sorts each curve
	// independently).
	DeltasPct []float64
	// Above5 and Below5 count traces with |delta| beyond 5%.
	Above5, Below5 int
	// WorstTrace and BestTrace name the extremes.
	WorstTrace, BestTrace string
	WorstPct, BestPct     float64
}

// Fig2 computes the Figure 2 series from a sweep.
func Fig2(results []TraceResult) []Fig2Series {
	var out []Fig2Series
	for _, v := range fig1Order {
		s := Fig2Series{Variant: v}
		for _, tr := range results {
			if _, ok := tr.Results[v]; !ok {
				continue
			}
			d := 100 * tr.Delta(v)
			s.DeltasPct = append(s.DeltasPct, d)
			if d > 5 {
				s.Above5++
			}
			if d < -5 {
				s.Below5++
			}
			if d < s.WorstPct {
				s.WorstPct, s.WorstTrace = d, tr.Profile.Name
			}
			if d > s.BestPct {
				s.BestPct, s.BestTrace = d, tr.Profile.Name
			}
		}
		if len(s.DeltasPct) == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(s.DeltasPct)))
		out = append(out, s)
	}
	return out
}

// RenderFig2 prints the Figure 2 summary and curves.
func RenderFig2(w io.Writer, series []Fig2Series) {
	fmt.Fprintln(w, "Figure 2: per-trace IPC variation, sorted per improvement")
	for _, s := range series {
		fmt.Fprintf(w, "  %-14s >+5%%: %3d traces  <-5%%: %3d traces", s.Variant, s.Above5, s.Below5)
		if s.BestTrace != "" {
			fmt.Fprintf(w, "  best %+6.1f%% (%s)", s.BestPct, s.BestTrace)
		}
		if s.WorstTrace != "" {
			fmt.Fprintf(w, "  worst %+6.1f%% (%s)", s.WorstPct, s.WorstTrace)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "    series:")
		for i, d := range s.DeltasPct {
			if i%10 == 0 {
				fmt.Fprintf(w, "\n      ")
			}
			fmt.Fprintf(w, "%+6.1f ", d)
		}
		fmt.Fprintln(w)
	}
}

// Fig3Row is one x-position of Figure 3: a trace with its baseline branch
// MPKI and the slowdown caused by the two dependency-restoring branch
// improvements.
type Fig3Row struct {
	Trace      string
	BranchMPKI float64
	// FlagRegSlowdownPct and BranchRegsSlowdownPct are positive when the
	// improvement reduces IPC.
	FlagRegSlowdownPct    float64
	BranchRegsSlowdownPct float64
}

// Fig3 computes the Figure 3 rows, sorted by increasing branch MPKI of the
// original traces.
func Fig3(results []TraceResult) []Fig3Row {
	rows := make([]Fig3Row, 0, len(results))
	for _, tr := range results {
		base, ok := tr.Results[VariantNone]
		if !ok {
			continue
		}
		if _, ok := tr.Results[VariantFlagReg]; !ok {
			continue
		}
		rows = append(rows, Fig3Row{
			Trace:                 tr.Profile.Name,
			BranchMPKI:            base.Sim.BranchMPKI(),
			FlagRegSlowdownPct:    -100 * tr.Delta(VariantFlagReg),
			BranchRegsSlowdownPct: -100 * tr.Delta(VariantBranchRegs),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].BranchMPKI < rows[j].BranchMPKI })
	return rows
}

// RenderFig3 prints the Figure 3 table.
func RenderFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: slowdown of flag-reg and branch-regs vs branch MPKI")
	fmt.Fprintln(w, "          (traces sorted by increasing branch MPKI)")
	fmt.Fprintf(w, "  %-18s %10s %12s %12s\n", "trace", "brMPKI", "flag-reg%", "branch-regs%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %10.2f %12.2f %12.2f\n", r.Trace, r.BranchMPKI, r.FlagRegSlowdownPct, r.BranchRegsSlowdownPct)
	}
	lo, hi := splitHalves(rows)
	fmt.Fprintf(w, "  mean slowdown, low-MPKI half:  flag-reg %.2f%%  branch-regs %.2f%%\n", lo[0], lo[1])
	fmt.Fprintf(w, "  mean slowdown, high-MPKI half: flag-reg %.2f%%  branch-regs %.2f%%\n", hi[0], hi[1])
}

func splitHalves(rows []Fig3Row) (lo, hi [2]float64) {
	half := len(rows) / 2
	if half == 0 {
		return
	}
	for i, r := range rows {
		if i < half {
			lo[0] += r.FlagRegSlowdownPct / float64(half)
			lo[1] += r.BranchRegsSlowdownPct / float64(half)
		} else {
			hi[0] += r.FlagRegSlowdownPct / float64(len(rows)-half)
			hi[1] += r.BranchRegsSlowdownPct / float64(len(rows)-half)
		}
	}
	return
}

// Fig4Row is one x-position of Figure 4: a trace with its fraction of
// base-update loads and the speedup from the base-update improvement.
type Fig4Row struct {
	Trace string
	// BaseUpdateLoadPct is the percentage of dynamic instructions that
	// are loads performing base-register writeback.
	BaseUpdateLoadPct float64
	SpeedupPct        float64
}

// Fig4 computes the Figure 4 rows, sorted by increasing base-update load
// fraction.
func Fig4(results []TraceResult) []Fig4Row {
	rows := make([]Fig4Row, 0, len(results))
	for _, tr := range results {
		r, ok := tr.Results[VariantBaseUpdate]
		if !ok {
			continue
		}
		pct := 0.0
		if r.Conv.In > 0 {
			pct = 100 * float64(r.Conv.BaseUpdateLoads) / float64(r.Conv.In)
		}
		rows = append(rows, Fig4Row{
			Trace:             tr.Profile.Name,
			BaseUpdateLoadPct: pct,
			SpeedupPct:        100 * tr.Delta(VariantBaseUpdate),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].BaseUpdateLoadPct < rows[j].BaseUpdateLoadPct })
	return rows
}

// RenderFig4 prints the Figure 4 table.
func RenderFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: speedup of base-update vs fraction of base-update loads")
	fmt.Fprintln(w, "          (traces sorted by increasing base-update load fraction)")
	fmt.Fprintf(w, "  %-18s %14s %10s\n", "trace", "baseupd-loads%", "speedup%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %14.2f %10.2f\n", r.Trace, r.BaseUpdateLoadPct, r.SpeedupPct)
	}
}

// Fig5Row is one trace of Figure 5: return-target MPKI before and after the
// call-stack fix, and the resulting IPC change.
type Fig5Row struct {
	Trace        string
	RetMPKIOrig  float64
	RetMPKIFixed float64
	IPCDeltaPct  float64
}

// Fig5Threshold is the original-converter return MPKI above which a trace
// counts as affected by the call-stack bug (the paper's affected subset has
// return misprediction rates an order of magnitude above the rest).
const Fig5Threshold = 0.5

// Fig5 computes the Figure 5 rows — the traces suffering high return MPKI
// with the original converter — sorted from highest to lowest original
// return MPKI.
func Fig5(results []TraceResult) []Fig5Row {
	var rows []Fig5Row
	for _, tr := range results {
		base, ok := tr.Results[VariantNone]
		if !ok {
			continue
		}
		fixed, ok := tr.Results[VariantCallStack]
		if !ok {
			continue
		}
		if base.Sim.ReturnMPKI() < Fig5Threshold {
			continue
		}
		rows = append(rows, Fig5Row{
			Trace:        tr.Profile.Name,
			RetMPKIOrig:  base.Sim.ReturnMPKI(),
			RetMPKIFixed: fixed.Sim.ReturnMPKI(),
			IPCDeltaPct:  100 * tr.Delta(VariantCallStack),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].RetMPKIOrig > rows[j].RetMPKIOrig })
	return rows
}

// RenderFig5 prints the Figure 5 table.
func RenderFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5: call-stack fix on the affected traces")
	fmt.Fprintln(w, "          (traces sorted by decreasing original RAS MPKI)")
	fmt.Fprintf(w, "  %-18s %12s %12s %10s\n", "trace", "retMPKI-orig", "retMPKI-fix", "IPC delta")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %12.2f %12.2f %+9.2f%%\n", r.Trace, r.RetMPKIOrig, r.RetMPKIFixed, r.IPCDeltaPct)
	}
	if len(rows) > 0 {
		var ratio float64
		n := 0
		for _, r := range rows {
			if r.RetMPKIFixed > 0 {
				ratio += r.RetMPKIOrig / r.RetMPKIFixed
				n++
			}
		}
		fmt.Fprintf(w, "  affected traces: %d", len(rows))
		if n > 0 {
			fmt.Fprintf(w, "; mean MPKI reduction factor %.1fx over %d traces with nonzero fixed MPKI", ratio/float64(n), n)
		}
		fmt.Fprintln(w)
	}
}
