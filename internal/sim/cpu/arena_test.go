package cpu

import (
	"testing"

	"tracerebase/internal/champtrace"
)

// arenaCapOf returns the uop arena capacity of a pipeline.
func arenaCapOf(p *Pipeline) int { return len(p.arena) }

// TestArenaWraparound retires far more instructions than the arena has
// slots, so allocation and retirement wrap the ring many times, with a
// dependency chain that keeps the ROB full across every wrap boundary.
func TestArenaWraparound(t *testing.T) {
	cfg := testConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := arenaCapOf(p)
	n := 20*cap + 37 // many wraps, deliberately not slot-aligned
	instrs := make([]*champtrace.Instruction, n)
	for i := range instrs {
		// Each instruction reads the previous one's destination, so
		// dependency refs are live right up to the wrap boundary.
		instrs[i] = mkALU(0x400000+uint64(i%1024)*4, []uint8{uint8(40 + (i+7)%8)}, uint8(40+i%8))
	}
	st, err := p.Run(champtrace.NewSliceSource(instrs), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != uint64(n) {
		t.Fatalf("retired %d instructions, want %d", st.Instructions, n)
	}
	if p.robCount != 0 || p.ftqLen != 0 || p.decqLen != 0 {
		t.Fatalf("queues not drained: rob=%d ftq=%d decq=%d", p.robCount, p.ftqLen, p.decqLen)
	}
}

// TestArenaFillToCapacity blocks retirement behind a long-latency load so
// the ROB (and with it the arena's live region) fills completely, then
// drains across the ring boundary.
func TestArenaFillToCapacity(t *testing.T) {
	cfg := testConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 4 * arenaCapOf(p)
	instrs := make([]*champtrace.Instruction, n)
	for i := range instrs {
		if i%cfg.ROBSize == 0 {
			// A cold load to a new page stalls retirement long enough
			// for the back of the window to fill.
			instrs[i] = mkLoad(0x400000+uint64(i%1024)*4, uint64(0x9000000+i*4096), 10, uint8(40+i%8))
		} else {
			instrs[i] = mkALU(0x400000+uint64(i%1024)*4, []uint8{10}, uint8(40+i%8))
		}
	}
	st, err := p.Run(champtrace.NewSliceSource(instrs), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != uint64(n) {
		t.Fatalf("retired %d instructions, want %d", st.Instructions, n)
	}
}

// TestStaleGenerationReady exercises the generation-tag staleness rule
// directly: a dependency ref whose sequence tag no longer matches the slot's
// occupant refers to a retired-and-recycled producer and must read as ready,
// while a matching, incomplete occupant must not.
func TestStaleGenerationReady(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cap := uint64(arenaCapOf(p))

	ref := uref(5)
	consumer := &uop{seq: 100}
	consumer.deps[0] = ref

	// Slot 5 recycled: it now holds the uop with seq 5+cap. The ref's tag
	// mismatches, so the original producer retired — ready.
	p.arena[5] = uop{seq: 5 + cap}
	if ready, _ := p.depsReady(consumer); !ready {
		t.Fatal("stale-generation dependency not treated as ready")
	}
	if consumer.deps[0] != noref {
		t.Fatal("stale dependency ref not cleared after resolving")
	}

	// Same slot, matching generation, still executing: not ready, and with
	// no wake-up horizon — the producer's completion cycle is unknown.
	consumer.deps[0] = ref
	p.arena[5] = uop{seq: 5, completed: false}
	if ready, wakeAt := p.depsReady(consumer); ready || wakeAt != 0 {
		t.Fatalf("live incomplete dependency: ready=%v wakeAt=%d, want not ready with no horizon", ready, wakeAt)
	}

	// Matching generation, completed but in the future: not ready, and the
	// horizon is the producer's completion cycle.
	p.arena[5].completed = true
	p.arena[5].complete = 42
	if ready, wakeAt := p.depsReady(consumer); ready || wakeAt != 42 {
		t.Fatalf("executing dependency: ready=%v wakeAt=%d, want not ready with horizon 42", ready, wakeAt)
	}
	if consumer.deps[0] == noref {
		t.Fatal("still-executing dependency ref must stay linked")
	}

	// Matching generation, completed in the past: ready, and resolved.
	p.arena[5].complete = 0
	if ready, _ := p.depsReady(consumer); !ready {
		t.Fatal("completed dependency not treated as ready")
	}
	if consumer.deps[0] != noref {
		t.Fatal("completed dependency ref not cleared after resolving")
	}
}

// TestAncientProducerAfterWrap runs a trace where one early instruction
// writes a register that every later instruction reads. Once the writer's
// slot is recycled the renamed ref goes stale, and consumers must still
// issue (the retired producer is by definition complete).
func TestAncientProducerAfterWrap(t *testing.T) {
	cfg := testConfig()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 8 * arenaCapOf(p)
	instrs := make([]*champtrace.Instruction, n)
	instrs[0] = mkALU(0x400000, []uint8{10}, 60) // sole writer of reg 60
	for i := 1; i < n; i++ {
		instrs[i] = mkALU(0x400000+uint64(i%1024)*4, []uint8{60}, uint8(40+i%4))
	}
	st, err := p.Run(champtrace.NewSliceSource(instrs), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != uint64(n) {
		t.Fatalf("retired %d instructions, want %d", st.Instructions, n)
	}
}
