package conformance

import (
	"testing"

	"tracerebase/internal/synth"
)

// TestTierTransparency runs the tiered-backend differential oracle at test
// scale: cache-off, cold tiered, warm-memory, and warm-remote sweeps of
// the same traces must render byte-identically, with both warm runs
// resolving every cell without a single compute-function invocation.
// (The -selftest path runs the same oracle at larger scale.)
func TestTierTransparency(t *testing.T) {
	profiles := []synth.Profile{
		synth.PublicProfile(synth.ComputeInt, 3),
		synth.PublicProfile(synth.Server, 5),
	}
	if err := CheckTierTransparency(profiles, 1500, 300); err != nil {
		t.Fatal(err)
	}
}
