package experiments

// Checkpoint-first scheduling: when a sweep runs in sampled mode, the
// warmed prefix of every (trace, options) pair is itself a cacheable
// artifact. Checkpoints are produced by the functional warmer, whose state
// evolution depends only on the instruction stream and the warm-relevant
// configuration (sim.Config.WarmIdentity) — never on core geometry — so
// one checkpoint serves every variant that agrees on WarmIdentity: the
// ablation's coupled/decoupled pairs, ad-hoc core-geometry sweeps, and
// re-runs with different sampling periods all resume from the same warmed
// state instead of re-warming the prefix.

import (
	"path/filepath"
	"sync"

	"tracerebase/internal/champtrace"
	"tracerebase/internal/core"
	"tracerebase/internal/resultcache"
	"tracerebase/internal/sim"
	"tracerebase/internal/synth"
)

// CheckpointCache stores warmed-prefix checkpoints by content address. It
// lives in a "checkpoints" subdirectory of the cache root so result and
// checkpoint entries never compete within one eviction budget.
type CheckpointCache = resultcache.Cache[sim.Checkpoint]

// OpenCheckpointCache opens the checkpoint cache under dir ("" = the
// DefaultCacheDir resolution) with the given size bound (0 = the
// resultcache default).
func OpenCheckpointCache(dir string, maxBytes int64) (*CheckpointCache, error) {
	if dir == "" {
		var err error
		dir, err = DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	return resultcache.Open[sim.Checkpoint](
		resultcache.Config{Dir: filepath.Join(dir, "checkpoints"), MaxBytes: maxBytes},
		resultcache.GobCodec[sim.Checkpoint]{},
	)
}

// checkpointKey derives the content address of a warmed-prefix checkpoint.
// It covers everything the warmed state is a function of: the profile (and
// generator version), the converter improvement set, the warm-relevant
// configuration identity — WarmIdentity, not the full Identity, which is
// precisely what lets core-geometry variants share — the generation length
// and warm-up boundary, the schema version, and the code fingerprint.
func checkpointKey(p *synth.Profile, opts core.Options, cfg sim.Config, instructions int, warmup uint64) resultcache.Key {
	ph := profileHash(p)
	oh := optionsHash(opts)
	return resultcache.NewHasher("tracerebase/checkpoint").
		U64(resultcache.SchemaVersion).
		Str(resultcache.Fingerprint()).
		Bytes(ph[:]).
		Bytes(oh[:]).
		Str(cfg.WarmIdentity()).
		U64(uint64(instructions)).
		U64(warmup).
		Sum()
}

// checkpointGate decides whether a cell should warm through the checkpoint
// cache at all. A warmed-prefix checkpoint is megabytes of serialized state;
// computing and persisting one for a key no other cell will ever ask for is
// pure overhead (Table 3's cells, for example, all differ in prefetcher and
// so in WarmIdentity). The gate admits a key only once it is demonstrably
// shared: the first cell to present a key runs plain (unless a previous
// invocation already persisted the checkpoint), and every later cell with
// the same key — proof of sharing within this run — takes the checkpoint
// path. A group of m sharing cells therefore warms its prefix twice (the
// plain first run and the checkpoint compute) instead of m times.
type checkpointGate struct {
	mu   sync.Mutex
	seen map[resultcache.Key]struct{}
}

// admit reports whether key has been presented before.
func (g *checkpointGate) admit(key resultcache.Key) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.seen[key]; ok {
		return true
	}
	if g.seen == nil {
		g.seen = make(map[resultcache.Key]struct{})
	}
	g.seen[key] = struct{}{}
	return false
}

// runCheckpointed simulates one cell resuming from a shared warmed-prefix
// checkpoint, fetching or computing the checkpoint through cache. mkSource
// must return a fresh converted source over the same trace on every call
// (the warm compute and the resume each consume one from the start). The
// returned source's conversion statistics are the full-trace statistics —
// RunFrom converts the checkpointed prefix too, it only skips simulating
// it — so Result.Conv matches the plain path exactly.
//
// ok reports whether the checkpoint path applied; it is false for
// configurations without snapshot support (stateful IPC-1 instruction
// prefetchers) and for keys the gate has not yet seen shared, and the
// caller falls back to a plain run.
func runCheckpointed(cache *CheckpointCache, gate *checkpointGate, key resultcache.Key,
	mkSource func() (champtrace.Source, func() core.Stats, func()),
	simCfg sim.Config, warmup uint64) (res Result, ok bool, err error) {
	if !sim.Checkpointable(simCfg) {
		return Result{}, false, nil
	}
	ck, cached := cache.Get(key)
	if !cached {
		if gate != nil && !gate.admit(key) {
			return Result{}, false, nil
		}
		ck, err = cache.GetOrCompute(key, func() (sim.Checkpoint, error) {
			src, _, cleanup := mkSource()
			defer cleanup()
			return sim.WarmCheckpoint(src, simCfg, warmup)
		})
		if err != nil {
			return Result{}, false, err
		}
	}
	src, convStats, cleanup := mkSource()
	defer cleanup()
	st, err := sim.RunFrom(src, simCfg, ck, 0)
	if err != nil {
		return Result{}, false, err
	}
	return Result{IPC: st.IPC(), Sim: st, Conv: convStats()}, true, nil
}
