package tracerebase

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// TestSlabCrossProcess exercises the compiled-trace store across real
// process boundaries: it builds the rebase binary, runs the same small
// sweep twice sequentially with the result cache disabled (so every
// simulation recomputes) against one temp -trace-store-dir, and asserts the
// runs produce byte-identical stdout while the second run converts nothing
// — the slab files on disk are the only state the two processes share.
func TestSlabCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the rebase binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rebase")
	build := exec.Command("go", "build", "-o", bin, "./cmd/rebase")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	slabDir := filepath.Join(dir, "slabs")
	run := func() (stdout, stderr []byte) {
		cmd := exec.Command(bin, "-exp", "fig1", "-step", "27",
			"-instructions", "4000", "-warmup", "1000",
			"-no-cache", "-trace-store-dir", slabDir)
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout = &outBuf
		cmd.Stderr = &errBuf
		if err := cmd.Run(); err != nil {
			t.Fatalf("rebase: %v\nstderr:\n%s", err, errBuf.Bytes())
		}
		return outBuf.Bytes(), errBuf.Bytes()
	}

	coldOut, coldErr := run()
	warmOut, warmErr := run()
	if !bytes.Equal(coldOut, warmOut) {
		t.Fatalf("slab-warm run output differs from cold run output\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}

	// Stderr carries the slab summary line:
	//   slabs: N hits (M mem, D disk), K misses, C converted, ...
	sum := regexp.MustCompile(`slabs: (\d+) hits \((\d+) mem, (\d+) disk\), (\d+) misses, (\d+) converted`)
	parse := func(stderr []byte) (hits, disk, misses, converts int) {
		m := sum.FindSubmatch(stderr)
		if m == nil {
			t.Fatalf("no slab summary in stderr:\n%s", stderr)
		}
		hits, _ = strconv.Atoi(string(m[1]))
		disk, _ = strconv.Atoi(string(m[3]))
		misses, _ = strconv.Atoi(string(m[4]))
		converts, _ = strconv.Atoi(string(m[5]))
		return hits, disk, misses, converts
	}
	coldHits, _, coldMisses, coldConverts := parse(coldErr)
	if coldHits != 0 || coldConverts == 0 || coldConverts != coldMisses {
		t.Fatalf("cold run: %d hits, %d misses, %d converts; want 0 hits and one convert per miss", coldHits, coldMisses, coldConverts)
	}
	// A prefetched slab counts one disk hit when mapped and a mem hit at
	// use, and a slab evicted from residency before use is re-mapped, so
	// exact hit counts vary; the invariants are zero misses and zero
	// conversions — every record the warm process simulated came off disk.
	warmHits, warmDisk, warmMisses, warmConverts := parse(warmErr)
	if warmConverts != 0 || warmMisses != 0 || warmDisk < coldConverts {
		t.Fatalf("warm run: %d hits (%d disk), %d misses, %d converts; want >=%d disk hits, 0 misses, 0 converts",
			warmHits, warmDisk, warmMisses, warmConverts, coldConverts)
	}

	// The second process must have found real slab files, not re-written
	// them: the store directory holds one .slab per conversion.
	slabs, err := filepath.Glob(filepath.Join(slabDir, "v*", "*", "*.slab"))
	if err != nil || len(slabs) != coldConverts {
		t.Fatalf("found %d slab files (err %v), want %d", len(slabs), err, coldConverts)
	}
}
