package champtrace_test

import (
	"fmt"

	"tracerebase/internal/champtrace"
)

// ExampleClassify shows the §3.2.2 hazard: a conditional branch carrying a
// general-purpose source register (a converted cb(n)z) classifies as an
// indirect jump under stock ChampSim rules and as a conditional under the
// paper's patched rules.
func ExampleClassify() {
	cbz := &champtrace.Instruction{IP: 0x1000, IsBranch: true, Taken: true}
	cbz.AddSrcReg(champtrace.RegInstructionPointer)
	cbz.AddSrcReg(40) // the general-purpose source branch-regs preserves
	cbz.AddDestReg(champtrace.RegInstructionPointer)

	fmt.Println("original rules:", champtrace.Classify(cbz, champtrace.RulesOriginal))
	fmt.Println("patched rules: ", champtrace.Classify(cbz, champtrace.RulesPatched))
	// Output:
	// original rules: indirect-jump
	// patched rules:  conditional
}
